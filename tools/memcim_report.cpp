// memcim-report: offline analysis of memcim bench artifacts.
//
//   memcim-report diff <baseline.json> <current.json>
//                      [--thresholds <file>] [--quiet]
//                      [--series <timeseries.json>]
//   memcim-report monitor <timeseries.json> [--last <n>]
//   memcim-report ledger <bench.json>... [--out <ledger.jsonl>]
//   memcim-report attribution <attr.json>
//
// Exit codes: 0 ok, 1 regression/alert detected, 2 usage or parse
// error.
#include <iostream>
#include <string>
#include <vector>

#include "report/report.h"

namespace {

const char kUsage[] =
    "usage: memcim-report <diff|monitor|ledger|attribution> [args...]\n"
    "  diff <baseline.json> <current.json> [--thresholds <file>] [--quiet]\n"
    "       [--series <timeseries.json>]\n"
    "  monitor <timeseries.json> [--last <n>]\n"
    "  ledger <bench.json>... [--out <ledger.jsonl>]\n"
    "  attribution <attr.json>\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string mode = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  std::string out;
  int code = 2;
  if (mode == "diff") {
    code = memcim::report::diff_command(args, out);
  } else if (mode == "monitor") {
    code = memcim::report::monitor_command(args, out);
  } else if (mode == "ledger") {
    code = memcim::report::ledger_command(args, out);
  } else if (mode == "attribution") {
    code = memcim::report::attribution_command(args, out);
  } else {
    std::cerr << "unknown mode '" << mode << "'\n" << kUsage;
    return 2;
  }
  (code == 2 ? std::cerr : std::cout) << out;
  return code;
}
