// CRS crossbar memory explorer — Section IV.B hands-on:
//
//   * why a passive 1R array stops being readable as it grows (sneak
//     paths, Figure 3),
//   * how the CRS cell fixes it (both states block at low bias),
//   * what the fix costs: destructive reads of '0' and the write-back
//     pulses that follow (Figure 4's read protocol).
//
// Build & run:  ./build/examples/crs_memory_explorer
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "crossbar/crs_memory.h"
#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/vcm.h"

int main() {
  using namespace memcim;
  using namespace memcim::literals;

  // --- 1. passive array margin collapse --------------------------------------
  CrossbarConfig cfg;
  cfg.model = NetworkModel::kLumpedLines;
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;
  TextTable margins({"N", "passive 1R worst-case margin"});
  for (const MarginPoint& p :
       margin_vs_size(VcmDevice(presets::vcm_taox(), 0.0), cfg, rc,
                      {4, 8, 16, 32, 64, 128, 256}))
    margins.add_row({std::to_string(p.size), fixed_string(p.margin, 4)});
  std::cout << margins.to_text()
            << "\"the maximum array is limited to small arrays [76]\"\n\n";

  // --- 2. CRS memory: full read/write protocol -------------------------------
  CrsMemory mem(64, 64, presets::crs_cell());
  Rng rng(0xC25);
  std::vector<bool> pattern(64 * 64);
  for (auto&& bit : pattern) bit = rng.bernoulli(0.4);
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c) mem.write(r, c, pattern[r * 64 + c]);

  std::size_t errors = 0;
  for (std::size_t r = 0; r < 64; ++r)
    for (std::size_t c = 0; c < 64; ++c)
      if (mem.read(r, c) != pattern[r * 64 + c]) ++errors;

  TextTable stats({"CRS 64x64 bank", "value"});
  stats.add_row({"bits stored", "4096"});
  stats.add_row({"read-back errors", std::to_string(errors)});
  stats.add_row({"reads", std::to_string(mem.reads())});
  stats.add_row({"destructive reads ('0' cells)",
                 std::to_string(mem.destructive_reads())});
  stats.add_row({"total pulses (incl. write-back)",
                 std::to_string(mem.total_pulses())});
  stats.add_row({"switching energy", si_string(mem.total_energy().value(), "J")});
  stats.add_row({"bank-serial pulse time",
                 si_string(mem.total_time().value(), "s")});
  std::cout << stats.to_text() << '\n';

  // --- 3. the destructive-read tax -------------------------------------------
  // Reading a '1' is free; reading a '0' flips the cell to ON and a
  // write-back pulse restores it: ~2 extra pulses + 2 fJ per '0' read.
  CrsMemory tax(1, 2, presets::crs_cell());
  tax.write(0, 0, false);
  tax.write(0, 1, true);
  const auto pulses_before = tax.total_pulses();
  (void)tax.read(0, 0);  // destructive
  const auto zero_cost = tax.total_pulses() - pulses_before;
  const auto pulses_mid = tax.total_pulses();
  (void)tax.read(0, 1);  // clean
  const auto one_cost = tax.total_pulses() - pulses_mid;
  std::cout << "read '0' cost: " << zero_cost
            << " pulses (read + write-back); read '1' cost: " << one_cost
            << " pulse\n";
  return 0;
}
