// Quickstart: the memcim tour in ~80 lines.
//
//   1. a memristor device: write it, read it, watch it stay put,
//   2. a crossbar array: store a pattern, sense a cell through the
//      resistive network,
//   3. stateful logic: compute NAND and a 8-bit addition *inside* the
//      memory — the computation-in-memory idea of the paper.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "common/table.h"
#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/vcm.h"
#include "logic/adder.h"
#include "logic/gates.h"
#include "logic/ideal_fabric.h"

int main() {
  using namespace memcim;
  using namespace memcim::literals;

  // --- 1. One memristor -----------------------------------------------------
  VcmDevice cell(presets::vcm_taox(), /*initial_state=*/0.0);
  cell.apply(2.0_V, 200.0_ps);  // one write pulse: HRS -> LRS
  std::cout << "device after SET pulse:  state=" << cell.state()
            << "  (logic " << cell.is_lrs() << ")\n";
  cell.apply(0.3_V, 1.0_s);  // a year of read disturb in spirit
  std::cout << "after 1 s of read bias:  state=" << cell.state()
            << "  (non-volatile)\n\n";

  // --- 2. A crossbar --------------------------------------------------------
  CrossbarConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  CrossbarArray xbar(cfg, VcmDevice(presets::vcm_taox(), 0.0));
  for (std::size_t i = 0; i < 8; ++i) xbar.store_bit(i, i, true);  // identity
  ReadConfig rc;  // grounded-line sensing
  CrossbarArray ref(cfg, VcmDevice(presets::vcm_taox(), 0.0));
  const ReadMeasurement reference = measure_read_margin(ref, 0, 0, rc);
  std::cout << "crossbar read (3,3) = " << read_bit(xbar, 3, 3, rc, reference)
            << ", (3,4) = " << read_bit(xbar, 3, 4, rc, reference)
            << "   [on/off ratio "
            << fixed_string(reference.on_off_ratio, 1) << "]\n\n";

  // --- 3. Compute in memory -------------------------------------------------
  IdealFabric fabric;  // IMPLY cost model: 200 ps / 1 fJ per step
  const Reg a = fabric.alloc(), b = fabric.alloc();
  fabric.set(a, true);
  fabric.set(b, true);
  const Reg nand_out = gate_nand(fabric, a, b);
  std::cout << "NAND(1,1) in-memory = " << fabric.read(nand_out) << "  ["
            << fabric.steps() << " steps, "
            << si_string(fabric.energy().value(), "J") << "]\n";

  fabric.reset_counters();
  const std::uint64_t sum = add_integers(fabric, 25, 17, 8);
  std::cout << "25 + 17 in-memory   = " << sum << "  [" << fabric.steps()
            << " steps, " << si_string(fabric.latency().value(), "s") << ", "
            << si_string(fabric.energy().value(), "J") << "]\n";
  return 0;
}
