// Associative search engine — Section IV.C: memristive CAMs "for
// future high performance search engines" (refs [84, 90, 91]), plus
// the multi-tile CIM machine scaling the same search beyond one array.
//
// Scenario: an in-memory packet-classifier-style rule table.  Rules are
// ternary (prefix wildcards); lookups hit all rules in parallel in one
// search cycle, independent of the table size.
//
// Build & run:  ./build/examples/associative_search
#include <iostream>

#include "arch/cim_machine.h"
#include "common/rng.h"
#include "common/table.h"
#include "device/presets.h"
#include "logic/cam.h"

int main() {
  using namespace memcim;

  // --- ternary rule table on the CRS CAM ------------------------------------
  CamConfig cfg;
  cfg.rows = 16;
  cfg.word_bits = 16;
  cfg.cell = presets::crs_cell();
  CrsCam cam(cfg);

  // Rule i matches keys whose top nibble == i (lower 12 bits wildcard).
  for (std::size_t rule = 0; rule < 16; ++rule) {
    std::vector<CamBit> word(16, CamBit::kDontCare);
    for (std::size_t b = 0; b < 4; ++b)
      word[12 + b] = (rule >> b) & 1u ? CamBit::kOne : CamBit::kZero;
    cam.write_row_ternary(rule, word);
  }

  auto key_bits = [](std::uint16_t v) {
    std::vector<bool> bits(16);
    for (std::size_t i = 0; i < 16; ++i) bits[i] = ((v >> i) & 1) != 0;
    return bits;
  };

  TextTable lookups({"key", "matched rule", "search latency", "energy"});
  Rng rng(0x5EA);
  for (int i = 0; i < 5; ++i) {
    const auto key = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
    const CamSearchResult r = cam.search(key_bits(key));
    lookups.add_row({"0x" + [&] {
                       char buf[8];
                       std::snprintf(buf, sizeof buf, "%04X", key);
                       return std::string(buf);
                     }(),
                     r.matching_rows.empty()
                         ? "none"
                         : std::to_string(r.matching_rows.front()),
                     si_string(r.latency.value(), "s"),
                     si_string(r.energy.value(), "J")});
  }
  std::cout << lookups.to_text()
            << "\nEvery lookup touches all " << cfg.rows
            << " rules simultaneously; latency is 2 pulses whatever the "
               "table size.\n\n";

  // --- scaling out on the multi-tile machine ---------------------------------
  CimMachineConfig mc;
  mc.tiles = 8;
  mc.tile.rows = 32;
  mc.tile.row_bits = 32;
  mc.tile.cell = presets::crs_cell();
  CimMachine machine(mc);

  Rng data_rng(0xDB);
  auto word_bits = [](std::uint64_t v) {
    std::vector<bool> bits(32);
    for (std::size_t i = 0; i < 32; ++i) bits[i] = (v >> i) & 1u;
    return bits;
  };
  const std::uint64_t needle = 0xDEADBEEF;
  const std::size_t needle_row = 123;
  for (std::size_t r = 0; r < machine.capacity_rows(); ++r)
    machine.store(r, word_bits(r == needle_row
                                   ? needle
                                   : static_cast<std::uint64_t>(
                                         data_rng.uniform_int(0, 1LL << 31))));
  const auto hits = machine.search(word_bits(needle));

  TextTable scale({"Multi-tile exact-match scan", "value"});
  scale.add_row({"tiles x rows", std::to_string(mc.tiles) + " x " +
                                     std::to_string(mc.tile.rows)});
  scale.add_row({"records scanned", std::to_string(machine.capacity_rows())});
  scale.add_row({"hit rows", hits.size() == 1 ? std::to_string(hits[0])
                                              : "unexpected"});
  scale.add_row({"wave latency", si_string(machine.stats().latency.value(), "s")});
  scale.add_row({"wave energy", si_string(machine.energy().value(), "J")});
  std::cout << scale.to_text()
            << "\nAll tiles search concurrently — the working set never\n"
               "leaves the crossbars (the Figure 2 proposition).\n";
  return 0;
}
