// Massively-parallel vector addition — the paper's mathematics
// scenario.  A farm of CRS TC-adders executes a batch of 32-bit
// additions with every result checked against native arithmetic, then
// the same batch is priced on both architectures with the Table 2
// models.
//
// Build & run:  ./build/examples/vector_adder
#include <iostream>

#include "arch/cost_model.h"
#include "common/table.h"
#include "device/presets.h"
#include "logic/tc_adder.h"
#include "workloads/parallel_add.h"

int main() {
  using namespace memcim;

  // --- functional run on CRS hardware models --------------------------------
  ParallelAddParams params;
  params.operations = 10'000;
  params.width = 32;
  params.adders = 512;
  Rng rng(0xADD);
  const ParallelAddResult r = run_parallel_add(params, presets::crs_cell(), rng);

  TextTable farm({"CRS TC-adder farm", "value"});
  farm.add_row({"additions", std::to_string(params.operations)});
  farm.add_row({"physical adders", std::to_string(params.adders)});
  farm.add_row({"verified against CPU", r.mismatches == 0 ? "all correct"
                                                          : "MISMATCHES!"});
  farm.add_row({"pulses per addition",
                std::to_string(r.total_pulses / params.operations) +
                    "  (4N+5 = " + std::to_string(CrsTcAdder::steps(32)) + ")"});
  farm.add_row({"devices per adder",
                std::to_string(CrsTcAdder::devices(32)) + "  (N+2)"});
  farm.add_row({"wall latency (batched)", si_string(r.latency.value(), "s")});
  farm.add_row({"switching energy", si_string(r.total_energy.value(), "J")});
  std::cout << farm.to_text() << '\n';

  // --- sample: results stay resident in the crossbar -------------------------
  CrsTcAdder adder(32, presets::crs_cell());
  (void)adder.add(0xCAFE, 0xBEEF);
  std::cout << "0xCAFE + 0xBEEF latched in the sum cells: 0x" << std::hex
            << adder.stored_sum() << std::dec << "  (no readout pulses spent)\n\n";

  // --- architecture verdict at paper scale (10^6 additions) ------------------
  const Table1 t1 = paper_table1();
  const WorkloadSpec spec = math_workload_spec(t1);
  const ArchCost conv = evaluate_conventional(spec, t1);
  const ArchCost cim = evaluate_cim(spec, t1);
  TextTable verdict({"Metric (10^6 x 32-bit adds)", "conventional", "CIM",
                     "gain"});
  verdict.add_row({"time/op", si_string(conv.time_per_op.value(), "s"),
                   si_string(cim.time_per_op.value(), "s"),
                   "CMOS faster per op"});
  verdict.add_row({"energy/op", si_string(conv.energy_per_op.value(), "J"),
                   si_string(cim.energy_per_op.value(), "J"),
                   fixed_string(conv.energy_per_op.value() /
                                    cim.energy_per_op.value(), 0) + "x"});
  verdict.add_row({"energy-delay/op",
                   sci_string(conv.energy_delay_per_op()),
                   sci_string(cim.energy_delay_per_op()),
                   fixed_string(conv.energy_delay_per_op() /
                                    cim.energy_delay_per_op(), 0) + "x"});
  verdict.add_row({"chip area",
                   fixed_string(conv.total_area.value() * 1e6, 1) + " mm2",
                   fixed_string(cim.total_area.value() * 1e6, 3) + " mm2",
                   ""});
  std::cout << verdict.to_text()
            << "\nPer-op latency favours the 252 ps CLA; the system-level\n"
               "energy-delay still favours CIM by >100x (Table 2).\n";
  return 0;
}
