// Full reproduction report generator: runs every analytical evaluation
// in one shot and emits a self-contained markdown report to stdout —
// the tool a reviewer would run first.
//
//   ./build/examples/paper_report > report.md
#include <iostream>

#include "arch/cost_model.h"
#include "arch/taxonomy.h"
#include "common/table.h"
#include "conv/cluster.h"
#include "device/presets.h"
#include "eval/report.h"
#include "eval/table2.h"
#include "workloads/dna.h"
#include "workloads/parallel_add.h"

namespace {

using namespace memcim;

void section_table2() {
  std::cout << "## Table 2 — conventional vs CIM\n\n```\n"
            << render_table2(make_table2(paper_table1()))
            << "```\n\nAudit trail (per-op time/energy and areas):\n\n```\n"
            << render_table2_audit(make_table2(paper_table1())) << "```\n\n";
}

void section_table1() {
  std::cout << "## Table 1 — assumptions\n\n```\n"
            << render_table1(paper_table1()) << "```\n\n";
}

void section_taxonomy() {
  std::cout << "## Figure 1 — working-set taxonomy\n\n```\n";
  TextTable t({"Class", "Working set", "Movement E share"});
  for (const TaxonomyPoint& p : taxonomy_survey())
    t.add_row({to_string(p.cls), p.working_set_location,
               fixed_string(p.movement_energy_share * 100.0, 1) + " %"});
  std::cout << t.to_text() << "```\n\n";
}

void section_functional() {
  std::cout << "## Functional cross-checks\n\n```\n";
  TextTable t({"Check", "result"});
  // TC-adder farm.
  {
    ParallelAddParams params;
    params.operations = 2048;
    params.width = 32;
    params.adders = 128;
    Rng rng(1);
    const auto r = run_parallel_add(params, presets::crs_cell(), rng);
    t.add_row({"CRS TC-adder farm (2048 adds)",
               r.mismatches == 0 ? "all correct, 133 pulses/add"
                                 : "MISMATCHES"});
    t.add_row({"measured energy/add",
               si_string(r.total_energy.value() / 2048.0, "J")});
  }
  // DNA pipeline, exact + tolerant.
  {
    Rng rng(2);
    const std::string genome = generate_genome(30'000, rng);
    ReadSetParams params;
    params.coverage = 2.0;
    params.read_length = 80;
    params.error_rate = 0.015;
    const auto reads = generate_reads(genome, params, rng);
    const MatchStats exact = match_reads(genome, reads, 16);
    const MatchStats tol = match_reads_tolerant(genome, reads, 16, 5, 4);
    t.add_row({"DNA exact pipeline match rate",
               fixed_string(100.0 * double(exact.reads_matched) /
                                double(exact.reads_total),
                            1) +
                   " %"});
    t.add_row({"DNA tolerant pipeline match rate",
               fixed_string(100.0 * double(tol.reads_matched) /
                                double(tol.reads_total),
                            1) +
                   " %"});
    // Measured hit rate.
    SortedIndex index(genome, 16);
    MemoryTrace trace;
    index.attach_trace(&trace);
    for (int q = 0; q < 100; ++q)
      (void)index.lookup(genome.substr(
          static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(genome.size() - 16))),
          16));
    const auto cluster = run_cluster({trace}, CacheConfig{}, {});
    t.add_row({"measured L1 hit rate (sorted-index stream)",
               fixed_string(cluster.hit_rate(), 3)});
  }
  std::cout << t.to_text() << "```\n\n";
}

}  // namespace

int main() {
  std::cout << "# memcim reproduction report\n\n"
            << "Paper: Hamdioui et al., \"Memristor Based "
               "Computation-in-Memory Architecture for Data-Intensive "
               "Applications\", DATE 2015.\n\n";
  section_table1();
  section_table2();
  section_taxonomy();
  section_functional();
  std::cout << "Full figure/ablation series: run `for b in build/bench/*; "
               "do $b; done`.\n";
  return 0;
}
