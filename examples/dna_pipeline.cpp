// DNA short-read matching — the paper's healthcare scenario, end to
// end on a laptop-scale synthetic genome:
//
//   1. generate a reference genome and an error-free + errored read set,
//   2. run today's practical solution (sorted index + binary search) and
//      count the character comparisons it really performs,
//   3. run the CIM alternative: reads matched by parallel in-crossbar
//      comparators on a CimTile,
//   4. feed the measured operation counts through the Table 2 cost
//      models and print the conventional-vs-CIM verdict.
//
// Build & run:  ./build/examples/dna_pipeline
#include <iostream>

#include "arch/cim_tile.h"
#include "arch/cost_model.h"
#include "common/table.h"
#include "device/presets.h"
#include "workloads/dna.h"

int main() {
  using namespace memcim;

  Rng rng(0xD7A);
  const std::string genome = generate_genome(60'000, rng);
  ReadSetParams params;
  params.coverage = 4.0;
  params.read_length = 64;
  params.error_rate = 0.01;
  const auto reads = generate_reads(genome, params, rng);

  // --- conventional pipeline -------------------------------------------------
  const MatchStats stats = match_reads(genome, reads, 16);
  const MatchStats tolerant =
      match_reads_tolerant(genome, reads, 16, /*seeds=*/4, /*max_mismatches=*/3);
  TextTable conv({"Sorted-index pipeline", "exact", "seeded+tolerant"});
  conv.add_row({"genome bases", std::to_string(genome.size()), ""});
  conv.add_row({"reads (1% error rate)", std::to_string(stats.reads_total),
                std::to_string(tolerant.reads_total)});
  conv.add_row({"matched", std::to_string(stats.reads_matched),
                std::to_string(tolerant.reads_matched)});
  conv.add_row({"char comparisons",
                std::to_string(stats.character_comparisons),
                std::to_string(tolerant.character_comparisons)});
  std::cout << conv.to_text()
            << "\nSequencing errors break the exact k-mer pipeline; multi-\n"
               "seed lookup + mismatch tolerance recovers the reads (and on\n"
               "CIM the tolerant compare is one XOR pass + a match-line\n"
               "threshold - see parallel_compare_tolerant).\n\n";

  // --- CIM pipeline: parallel comparators over a tile ------------------------
  // Store 32 reference windows in a tile, compare one read pattern
  // against all of them in a single comparator pass (2 bits/nucleotide).
  const std::size_t window = 16;  // nucleotides per row
  CimTileConfig tile_cfg;
  tile_cfg.rows = 32;
  tile_cfg.row_bits = window * 2;
  tile_cfg.cell = presets::crs_cell();
  CimTile tile(tile_cfg);

  auto encode = [&](const std::string& s, std::size_t from) {
    std::vector<bool> bits;
    bits.reserve(window * 2);
    for (std::size_t i = 0; i < window; ++i) {
      const auto n = static_cast<std::uint8_t>(nucleotide_from_char(s[from + i]));
      bits.push_back(n & 1u);
      bits.push_back(n & 2u);
    }
    return bits;
  };
  const std::size_t key_pos = 12'345;
  for (std::size_t r = 0; r < tile_cfg.rows; ++r)
    tile.store_row(r, encode(genome, key_pos - 7 + r));  // row 7 matches
  const std::vector<bool> matches = tile.parallel_compare(encode(genome, key_pos));
  std::size_t hit_row = tile_cfg.rows;
  for (std::size_t r = 0; r < matches.size(); ++r)
    if (matches[r]) hit_row = r;

  TextTable cim({"CIM tile pipeline", "value"});
  cim.add_row({"rows compared in parallel", std::to_string(tile_cfg.rows)});
  cim.add_row({"matching row", std::to_string(hit_row)});
  cim.add_row({"pass latency", si_string(tile.stats().latency.value(), "s")});
  cim.add_row({"pass energy", si_string(tile.stats().energy.value(), "J")});
  std::cout << cim.to_text() << '\n';

  // --- architecture verdict at paper scale -----------------------------------
  const Table1 t1 = paper_table1();
  const WorkloadSpec spec = dna_workload_spec(t1);
  const ArchCost conv_cost = evaluate_conventional(spec, t1);
  const ArchCost cim_cost = evaluate_cim(spec, t1);
  TextTable verdict({"Full-scale metric (200GB vs 3GB ref)", "conventional",
                     "CIM", "gain"});
  verdict.add_row({"energy-delay/op [J*s]",
                   sci_string(conv_cost.energy_delay_per_op()),
                   sci_string(cim_cost.energy_delay_per_op()),
                   fixed_string(conv_cost.energy_delay_per_op() /
                                    cim_cost.energy_delay_per_op(), 0) + "x"});
  verdict.add_row({"efficiency [ops/J]",
                   sci_string(conv_cost.computing_efficiency()),
                   sci_string(cim_cost.computing_efficiency()),
                   fixed_string(cim_cost.computing_efficiency() /
                                    conv_cost.computing_efficiency(), 0) + "x"});
  verdict.add_row({"total energy [J]", sci_string(conv_cost.total_energy.value()),
                   sci_string(cim_cost.total_energy.value()), ""});
  std::cout << verdict.to_text();
  return 0;
}
