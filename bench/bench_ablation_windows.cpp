// Ablation: window functions of the linear ion-drift model — and the
// paper's Section IV.A warning that "simple memristor models fail to
// predict the correct device behaviour".
//
// We drive each window variant and the nonlinear-kinetics VCM model
// with (a) a full write pulse and (b) a long half-amplitude disturb,
// then report the switching-time-vs-voltage slope.  The ion-drift
// variants switch at *any* voltage (no threshold) — a device like that
// could not hold data next to IMPLY operations; the VCM model's
// exponential kinetics is what makes CIM arrays workable.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_json.h"
#include "common/table.h"
#include "device/linear_ion_drift.h"
#include "device/pcm.h"
#include "device/presets.h"
#include "device/vcm.h"
#include "telemetry/json_writer.h"

namespace {

using namespace memcim;
using namespace memcim::literals;

double time_to_switch(Device& d, Voltage v, Time step, double target,
                      std::size_t max_steps = 2'000'000) {
  std::size_t n = 0;
  while (d.state() < target && n < max_steps) {
    d.apply(v, step);
    ++n;
  }
  return static_cast<double>(n) * step.value();
}

void print_window_dynamics(telemetry::JsonWriter& json) {
  TextTable t({"Model", "t_switch @2V", "t_switch @1V", "ratio",
               "state after 1s @0.3V"});
  const auto emit = [&json](const std::string& model, double t2, double t1,
                            double hold_state) {
    json.begin_object();
    json.key("model").value(model);
    json.key("t_switch_2v_s").value(t2);
    json.key("t_switch_1v_s").value(t1);
    json.key("state_after_hold").value(hold_state);
    json.end_object();
  };
  json.key("models").begin_array();
  for (WindowFunction w :
       {WindowFunction::kNone, WindowFunction::kJoglekar,
        WindowFunction::kBiolek, WindowFunction::kProdromakis}) {
    LinearIonDriftParams p = presets::ion_drift_tio2();
    p.window = w;
    LinearIonDriftDevice d_full(p, 0.01), d_half(p, 0.01), d_hold(p, 0.01);
    const double t2 = time_to_switch(d_full, 2.0_V, 10.0_us, 0.9);
    const double t1 = time_to_switch(d_half, 1.0_V, 10.0_us, 0.9);
    for (int k = 0; k < 1000; ++k) d_hold.apply(0.3_V, 1.0_ms);
    t.add_row({std::string("ion-drift/") + to_string(w),
               si_string(t2, "s"), si_string(t1, "s"),
               fixed_string(t1 / t2, 2),
               fixed_string(d_hold.state(), 3)});
    emit(std::string("ion-drift/") + to_string(w), t2, t1, d_hold.state());
  }
  {
    const VcmParams p = presets::vcm_taox();
    VcmDevice d_full(p, 0.0), d_half(p, 0.0), d_hold(p, 0.0);
    const double t2 = time_to_switch(d_full, 2.0_V, 50.0_ps, 0.99);
    const double t1 = time_to_switch(d_half, 1.0_V, 50.0_ps, 0.99, 400'000);
    d_hold.apply(0.3_V, 1.0_s);
    t.add_row({"VCM (threshold kinetics)", si_string(t2, "s"),
               t1 >= 0.02 ? ">20 us (capped)" : si_string(t1, "s"),
               t1 / t2 > 1e4 ? ">1e4" : fixed_string(t1 / t2, 2),
               fixed_string(d_hold.state(), 3)});
    emit("vcm_threshold_kinetics", t2, t1, d_hold.state());
  }
  {
    // PCM: unipolar heating model — a half-voltage pulse delivers a
    // quarter of the power and falls below the crystallization zone, so
    // the half-select "switching time" is infinite.
    PcmDevice d_full(PcmParams{}, 0.0), d_half(PcmParams{}, 0.0),
        d_hold(PcmParams{}, 0.0);
    const double t2 = time_to_switch(d_full, 1.5_V, 5.0_ns, 0.99);
    const double t1 =
        time_to_switch(d_half, 0.75_V, 5.0_ns, 0.99, 10'000);  // stalls
    for (int k = 0; k < 1000; ++k) d_hold.apply(0.3_V, 1.0_ms);
    t.add_row({"PCM (heating model)", si_string(t2, "s"),
               t1 >= 4e-5 ? "never (sub-heating)" : si_string(t1, "s"),
               "inf", fixed_string(d_hold.state(), 3)});
    emit("pcm_heating_model", t2, t1, d_hold.state());
  }
  json.end_array();
  std::cout << t.to_text() << '\n'
            << "Ion-drift devices creep at ANY bias (state after 1 s at a\n"
               "0.3 V read bias is nonzero -> stored data decays under\n"
               "reads). The VCM threshold model freezes below V_th: this\n"
               "is why \"more complex empirical and physics-based models\n"
               "were developed\" [71, 72].\n\n";
}

void BM_IonDriftStep(benchmark::State& state) {
  LinearIonDriftParams p = presets::ion_drift_tio2();
  p.window = static_cast<WindowFunction>(state.range(0));
  LinearIonDriftDevice d(p, 0.5);
  for (auto _ : state) {
    d.apply(1.0_V, 1.0_ns);
    benchmark::DoNotOptimize(d.state());
  }
}
BENCHMARK(BM_IonDriftStep)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: window functions & model fidelity ===\n\n";
  telemetry::JsonWriter json;
  bench::begin_bench_json(json, "ablation_windows");
  print_window_dynamics(json);
  json.end_object();
  std::ofstream("BENCH_ablation_windows.json") << json.str();
  std::cout << "Wrote BENCH_ablation_windows.json\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
