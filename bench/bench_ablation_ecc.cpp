// Ablation: SECDED ECC vs raw storage under fault injection.
// Section IV.A's endurance/retention numbers are device-level; this
// bench asks the system-level question: given a per-bit fault
// probability per scrub interval, what byte error rate survives with
// and without the Hamming(13,8) protection, and what does it cost?
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_json.h"
#include "common/rng.h"
#include "common/table.h"
#include "crossbar/ecc_memory.h"
#include "device/presets.h"

namespace {

using namespace memcim;

struct TrialResult {
  double byte_error_rate_raw;
  double byte_error_rate_ecc;
  double corrected_per_read;
};

TrialResult run_trial(double p_bit_flip, std::size_t rows, int rounds,
                      std::uint64_t seed) {
  Rng rng(seed);
  EccCrsMemory ecc(rows, presets::crs_cell());
  CrsMemory raw(rows, 8, presets::crs_cell());
  std::vector<std::uint8_t> truth(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    truth[r] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    ecc.write_byte(r, truth[r]);
    for (std::size_t b = 0; b < 8; ++b)
      raw.write(r, b, ((truth[r] >> b) & 1) != 0);
  }

  std::uint64_t raw_errors = 0, ecc_errors = 0, reads = 0;
  for (int round = 0; round < rounds; ++round) {
    // Fault injection: each stored bit flips with probability p.
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t b = 0; b < kEccCodewordBits; ++b)
        if (rng.bernoulli(p_bit_flip)) ecc.inject_error(r, b);
      for (std::size_t b = 0; b < 8; ++b)
        if (rng.bernoulli(p_bit_flip)) {
          const bool cur = raw.read(r, b);
          raw.write(r, b, !cur);
        }
    }
    // Read (and, for ECC, scrub) everything.
    for (std::size_t r = 0; r < rows; ++r) {
      ++reads;
      const auto e = ecc.read_byte(r);
      if (e.uncorrectable || e.data != truth[r]) {
        ++ecc_errors;
        ecc.write_byte(r, truth[r]);  // repair for the next round
      }
      std::uint8_t v = 0;
      for (std::size_t b = 0; b < 8; ++b)
        if (raw.read(r, b)) v |= static_cast<std::uint8_t>(1u << b);
      if (v != truth[r]) {
        ++raw_errors;
        for (std::size_t b = 0; b < 8; ++b)
          raw.write(r, b, ((truth[r] >> b) & 1) != 0);
      }
    }
  }
  TrialResult result;
  result.byte_error_rate_raw =
      static_cast<double>(raw_errors) / static_cast<double>(reads);
  result.byte_error_rate_ecc =
      static_cast<double>(ecc_errors) / static_cast<double>(reads);
  result.corrected_per_read =
      static_cast<double>(ecc.corrected_errors()) / static_cast<double>(reads);
  return result;
}

void print_sweep(telemetry::JsonWriter& w) {
  TextTable t({"p(bit flip)/interval", "raw byte errors", "ECC byte errors",
               "corrections/read", "improvement"});
  w.key("sweep").begin_array();
  for (double p : {1e-4, 1e-3, 1e-2, 5e-2}) {
    const TrialResult r = run_trial(p, 256, 20, 11);
    const double gain = r.byte_error_rate_ecc > 0.0
                            ? r.byte_error_rate_raw / r.byte_error_rate_ecc
                            : 0.0;
    t.add_row({sci_string(p, 0), sci_string(r.byte_error_rate_raw, 2),
               sci_string(r.byte_error_rate_ecc, 2),
               sci_string(r.corrected_per_read, 2),
               r.byte_error_rate_ecc == 0.0
                   ? ">raw/0 (no ECC failures observed)"
                   : fixed_string(gain, 0) + "x"});
    w.begin_object();
    w.key("p_bit_flip").value(p);
    w.key("byte_error_rate_raw").value(r.byte_error_rate_raw);
    w.key("byte_error_rate_ecc").value(r.byte_error_rate_ecc);
    w.key("corrections_per_read").value(r.corrected_per_read);
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "Costs: 13/8 = 1.63x cell overhead, +1 scrub write-back per\n"
               "corrected read.  ECC fails only when >=2 bits of one 13-bit\n"
               "codeword flip within one scrub interval (~p^2 per word) —\n"
               "the standard reliability multiplier memristive banks need\n"
               "to ride out endurance and disturb faults.\n\n";
}

void BM_EccReadScrub(benchmark::State& state) {
  EccCrsMemory mem(64, presets::crs_cell());
  for (std::size_t r = 0; r < 64; ++r)
    mem.write_byte(r, static_cast<std::uint8_t>(r));
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.read_byte(row));
    row = (row + 1) % 64;
  }
}
BENCHMARK(BM_EccReadScrub);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: SECDED ECC vs raw storage ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "ablation_ecc");
  print_sweep(w);
  bench::write_bench_json(w, "ablation_ecc");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
