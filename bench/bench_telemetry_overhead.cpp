// Telemetry overhead bench: proves the instrumentation layer is free
// when disabled and cheap when enabled.
//
// The acceptance guard (checked inline, exit non-zero on trip) bounds
// the *disabled* cost: every instrumented hot-path site costs one
// predictable branch, so the total overhead of a run is
//   events_per_run x per_event_disabled_cost.
// We measure the per-event branch cost in a tight loop, count the
// events a representative workload emits (from an enabled run's own
// counter tallies), time the disabled workload, and require the
// projected overhead to stay below 3 % of the disabled run time.
//
// Besides the guard it writes BENCH_telemetry.json and a sample Chrome
// trace (trace_telemetry.json — load at https://ui.perfetto.dev), and
// registers google-benchmark micro-benches for the primitives.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "workloads/parallel_add.h"

namespace {

using namespace memcim;

[[nodiscard]] std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The representative hot path: a batch of CRS TC-adder additions.
/// Every layer below it is instrumented (fabric steps, cell pulses,
/// spans, thread-pool counters), so its event stream is realistic.
ParallelAddResult run_workload() {
  ParallelAddParams params;
  params.operations = 256;
  params.width = 16;
  params.adders = 32;
  Rng rng(0xBEEF);
  return run_parallel_add(params, CrsCellParams{}, rng);
}

/// Median-of-reps wall time of the workload in nanoseconds.
[[nodiscard]] double time_workload_ns(int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t t0 = steady_ns();
    const ParallelAddResult result = run_workload();
    const std::uint64_t t1 = steady_ns();
    benchmark::DoNotOptimize(result.total_pulses);
    samples.push_back(static_cast<double>(t1 - t0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Per-call cost of Counter::add in the current enabled state, net of
/// the measurement loop itself (an identical loop without the add is
/// timed as baseline and subtracted), floored at 0.05 ns so the guard
/// never multiplies by an implausible zero.
[[nodiscard]] double counter_add_ns() {
  telemetry::Counter& c =
      telemetry::Registry::global().counter("bench.telemetry.probe");
  constexpr std::uint64_t kIters = 1 << 22;
  const std::uint64_t b0 = steady_ns();
  for (std::uint64_t i = 0; i < kIters; ++i) benchmark::ClobberMemory();
  const std::uint64_t b1 = steady_ns();
  const std::uint64_t t0 = steady_ns();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    c.add(1);
    benchmark::ClobberMemory();
  }
  const std::uint64_t t1 = steady_ns();
  const double net =
      static_cast<double>(t1 - t0) - static_cast<double>(b1 - b0);
  return std::max(net / static_cast<double>(kIters), 0.05);
}

/// Carrier loop for the marginal-cost probe: three xorshift rounds of
/// dependent ALU work per iteration, roughly the work between two
/// instrumentation sites on the cell hot path, with an optional
/// Counter::add riding along.
[[nodiscard]] std::uint64_t work_loop(std::uint64_t iters,
                                      telemetry::Counter* c) {
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    if (c != nullptr) c->add(1);
  }
  return x;
}

/// What one Counter::add actually costs *in context*: the same loop is
/// timed with and without the add, so the enabled() check overlaps the
/// carrier work exactly as it does on the real hot path.  Floored at
/// 0.05 ns so the guard never multiplies by an implausible zero.
[[nodiscard]] double counter_add_marginal_ns() {
  telemetry::Counter& c =
      telemetry::Registry::global().counter("bench.telemetry.probe");
  constexpr std::uint64_t kIters = 1 << 23;
  benchmark::DoNotOptimize(work_loop(1 << 12, nullptr));
  benchmark::DoNotOptimize(work_loop(1 << 12, &c));
  const std::uint64_t b0 = steady_ns();
  benchmark::DoNotOptimize(work_loop(kIters, nullptr));
  const std::uint64_t b1 = steady_ns();
  const std::uint64_t t0 = steady_ns();
  benchmark::DoNotOptimize(work_loop(kIters, &c));
  const std::uint64_t t1 = steady_ns();
  const double net =
      static_cast<double>(t1 - t0) - static_cast<double>(b1 - b0);
  return std::max(net / static_cast<double>(kIters), 0.05);
}

/// Per-call cost of a Span open/close pair in the current state.
[[nodiscard]] double span_ns() {
  static telemetry::SpanSite site("bench.telemetry.span_probe");
  constexpr std::uint64_t kIters = 1 << 20;
  const std::uint64_t t0 = steady_ns();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    telemetry::Span span(site);
    benchmark::ClobberMemory();
  }
  const std::uint64_t t1 = steady_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(kIters);
}

/// Upper-bound estimate of the disabled-mode branches one workload run
/// executes, derived from the enabled run's own tallies.  Every
/// instrumented hot-path site batches its metric updates behind a
/// single enabled() check, so one pulse, one fabric micro-op or one
/// span costs exactly one branch when telemetry is off.
[[nodiscard]] double estimate_events(const telemetry::MetricsSnapshot& snap) {
  double events = 0.0;
  events += static_cast<double>(snap.counter("crs_cell.pulses"));
  events += static_cast<double>(snap.counter("crs_cell.stuck_absorbed"));
  events += static_cast<double>(snap.counter("fabric.set"));
  events += static_cast<double>(snap.counter("fabric.imply"));
  events += static_cast<double>(snap.counter("fabric.read"));
  for (const telemetry::CounterSample& c : snap.counters)
    if (c.name.size() > 6 &&
        c.name.compare(c.name.size() - 6, 6, ".calls") == 0)
      events += static_cast<double>(c.value);
  // Pool bookkeeping, workload end-of-run tallies, and anything the
  // explicit terms above miss: 1.25x safety margin.
  return 1.25 * events;
}

struct OverheadReport {
  double counter_disabled_ns = 0.0;
  double counter_marginal_disabled_ns = 0.0;
  double counter_enabled_ns = 0.0;
  double span_disabled_ns = 0.0;
  double span_enabled_ns = 0.0;
  double workload_disabled_ns = 0.0;
  double workload_enabled_ns = 0.0;
  double events_per_run = 0.0;
  double projected_overhead_pct = 0.0;
  bool pass = false;
};

constexpr double kOverheadThresholdPct = 3.0;

OverheadReport measure() {
  OverheadReport rep;

  // Enabled pass first: primitive costs, then one workload run from a
  // clean registry so the tallies describe exactly one run.
  telemetry::set_enabled(true);
  rep.counter_enabled_ns = counter_add_ns();
  rep.span_enabled_ns = span_ns();
  rep.workload_enabled_ns = time_workload_ns(5);
  telemetry::Registry::global().reset();
  run_workload();
  const telemetry::MetricsSnapshot snap =
      telemetry::Registry::global().snapshot();
  rep.events_per_run = estimate_events(snap);

  // Disabled pass: the branch cost and the undisturbed workload time.
  telemetry::set_enabled(false);
  rep.counter_disabled_ns = counter_add_ns();
  rep.counter_marginal_disabled_ns = counter_add_marginal_ns();
  rep.span_disabled_ns = span_ns();
  rep.workload_disabled_ns = time_workload_ns(5);
  telemetry::set_enabled(true);

  // The guard multiplies the *in-context* marginal branch cost — the
  // isolated tight-loop figure cannot overlap neighbouring work and so
  // systematically overstates what the hot path pays.
  rep.projected_overhead_pct = 100.0 * rep.events_per_run *
                               rep.counter_marginal_disabled_ns /
                               rep.workload_disabled_ns;
  rep.pass = rep.projected_overhead_pct < kOverheadThresholdPct;
  return rep;
}

void write_report(const OverheadReport& rep) {
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "telemetry_overhead");
  w.key("threads").value(static_cast<std::uint64_t>(parallel_threads()));
  w.key("per_event_ns").begin_object();
  w.key("counter_add_disabled").value(rep.counter_disabled_ns);
  w.key("counter_add_marginal_disabled").value(rep.counter_marginal_disabled_ns);
  w.key("counter_add_enabled").value(rep.counter_enabled_ns);
  w.key("span_disabled").value(rep.span_disabled_ns);
  w.key("span_enabled").value(rep.span_enabled_ns);
  w.end_object();
  w.key("workload").begin_object();
  w.key("name").value("parallel_add_256x16bit");
  w.key("disabled_ns").value(rep.workload_disabled_ns);
  w.key("enabled_ns").value(rep.workload_enabled_ns);
  w.key("events_per_run").value(rep.events_per_run);
  w.end_object();
  w.key("guard").begin_object();
  w.key("projected_overhead_pct").value(rep.projected_overhead_pct);
  w.key("threshold_pct").value(kOverheadThresholdPct);
  w.key("pass").value(rep.pass);
  w.end_object();
  w.end_object();
  std::ofstream("BENCH_telemetry.json") << w.str();
}

void write_sample_trace() {
  telemetry::set_enabled(true);
  telemetry::start_tracing();
  run_workload();
  telemetry::stop_tracing();
  telemetry::write_chrome_trace("trace_telemetry.json");
}

// --- google-benchmark micro-benches for the primitives ---------------------

void BM_CounterAddDisabled(benchmark::State& state) {
  telemetry::set_enabled(false);
  telemetry::Counter& c =
      telemetry::Registry::global().counter("bench.telemetry.bm_counter");
  for (auto _ : state) {
    c.add(1);
    benchmark::ClobberMemory();
  }
  telemetry::set_enabled(true);
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAddEnabled(benchmark::State& state) {
  telemetry::set_enabled(true);
  telemetry::Counter& c =
      telemetry::Registry::global().counter("bench.telemetry.bm_counter");
  for (auto _ : state) {
    c.add(1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAddEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  telemetry::set_enabled(false);
  static telemetry::SpanSite site("bench.telemetry.bm_span");
  for (auto _ : state) {
    telemetry::Span span(site);
    benchmark::ClobberMemory();
  }
  telemetry::set_enabled(true);
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  telemetry::set_enabled(true);
  static telemetry::SpanSite site("bench.telemetry.bm_span");
  for (auto _ : state) {
    telemetry::Span span(site);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::set_enabled(true);
  telemetry::Histogram& h = telemetry::Registry::global().histogram(
      "bench.telemetry.bm_hist", telemetry::exponential_bounds(1.0, 2.0, 12));
  double v = 1.0;
  for (auto _ : state) {
    h.record(v);
    v = v < 2048.0 ? v * 2.0 : 1.0;
  }
}
BENCHMARK(BM_HistogramRecord);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Telemetry overhead bench ===\n"
            << "thread pool: " << parallel_threads()
            << " workers (override with MEMCIM_THREADS)\n\n";

  const OverheadReport rep = measure();
  std::cout << "counter add: " << rep.counter_disabled_ns
            << " ns disabled isolated, " << rep.counter_marginal_disabled_ns
            << " ns disabled in-context, " << rep.counter_enabled_ns
            << " ns enabled\n"
            << "span:        " << rep.span_disabled_ns << " ns disabled, "
            << rep.span_enabled_ns << " ns enabled\n"
            << "workload:    " << rep.workload_disabled_ns / 1e6
            << " ms disabled, " << rep.workload_enabled_ns / 1e6
            << " ms enabled (" << rep.events_per_run << " events/run)\n"
            << "projected disabled overhead: " << rep.projected_overhead_pct
            << " % (threshold " << kOverheadThresholdPct << " %)\n\n";

  write_report(rep);
  std::cout << "Wrote BENCH_telemetry.json\n";
  write_sample_trace();
  std::cout << "Wrote trace_telemetry.json (load at https://ui.perfetto.dev)\n\n";

  if (!rep.pass) {
    std::cerr << "FAIL: projected disabled-mode overhead "
              << rep.projected_overhead_pct << " % exceeds "
              << kOverheadThresholdPct << " %\n";
    return 1;
  }
  std::cout << "Acceptance: disabled-mode overhead within "
            << kOverheadThresholdPct << " %.\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
