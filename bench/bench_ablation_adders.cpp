// Ablation: memristive adder architectures vs bit width.
//
//   * naive IMPLY ripple adder (gate-level, 43 steps/bit, ~17 regs/bit),
//   * CRS TC-adder (4N+5 steps, N+2 devices — the paper's Table 1 pick),
//   * conventional CLA (252 ps, 208 gates) as the CMOS reference.
//
// The series shows why Table 1 budgets the TC-adder: an order of
// magnitude fewer steps and devices than gate-synthesized IMPLY.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_json.h"
#include "common/rng.h"
#include "common/table.h"
#include "device/presets.h"
#include "logic/adder.h"
#include "logic/ideal_fabric.h"
#include "logic/tc_adder.h"

namespace {

using namespace memcim;

void print_comparison(telemetry::JsonWriter& w) {
  TextTable t({"Width", "IMPLY steps", "IMPLY regs", "TC steps",
               "TC devices", "TC latency", "IMPLY latency", "speedup"});
  w.key("architectures").begin_array();
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const std::size_t imply_steps = ripple_adder_steps(n);
    const std::size_t imply_regs = cost_full_adder().registers * n + 1;
    const std::size_t tc_steps = CrsTcAdder::steps(n);
    const double tc_latency = static_cast<double>(tc_steps) * 200e-12;
    const double imply_latency = static_cast<double>(imply_steps) * 200e-12;
    t.add_row({std::to_string(n), std::to_string(imply_steps),
               std::to_string(imply_regs), std::to_string(tc_steps),
               std::to_string(CrsTcAdder::devices(n)),
               si_string(tc_latency, "s"), si_string(imply_latency, "s"),
               fixed_string(imply_latency / tc_latency, 2) + "x"});
    w.begin_object();
    w.key("width").value(static_cast<std::uint64_t>(n));
    w.key("imply_steps").value(static_cast<std::uint64_t>(imply_steps));
    w.key("imply_registers").value(static_cast<std::uint64_t>(imply_regs));
    w.key("tc_steps").value(static_cast<std::uint64_t>(tc_steps));
    w.key("tc_devices").value(static_cast<std::uint64_t>(CrsTcAdder::devices(n)));
    w.key("tc_latency_s").value(tc_latency);
    w.key("imply_latency_s").value(imply_latency);
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "CMOS CLA reference: 252 ps, 208 gates (Table 1) — faster\n"
               "per op, but volatile, leaky and kept fed through caches;\n"
               "Table 2 shows the system-level reversal.\n\n";
}

void print_energy_measured(telemetry::JsonWriter& w) {
  TextTable t({"Width", "measured energy/add (CRS switching)",
               "Table 1 budget (8 ops/bit x 1 fJ)"});
  Rng rng(5);
  w.key("measured_energy").begin_array();
  for (std::size_t n : {8u, 16u, 32u}) {
    CrsTcAdder adder(n, presets::crs_cell());
    Energy total{0.0};
    const int trials = 50;
    for (int i = 0; i < trials; ++i) {
      const auto a = static_cast<std::uint64_t>(
          rng.uniform_int(0, (1LL << n) - 1));
      const auto b = static_cast<std::uint64_t>(
          rng.uniform_int(0, (1LL << n) - 1));
      total += adder.add(a, b).energy;
    }
    t.add_row({std::to_string(n),
               si_string(total.value() / trials, "J"),
               si_string(8.0 * static_cast<double>(n) * 1e-15, "J")});
    w.begin_object();
    w.key("width").value(static_cast<std::uint64_t>(n));
    w.key("energy_per_add_j").value(total.value() / trials);
    w.key("table1_budget_j").value(8.0 * static_cast<double>(n) * 1e-15);
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "Measured switching energy counts only real transitions, so\n"
               "it lands below the paper's every-op-pays budget.\n\n";
}

void BM_ImplyRippleAdd(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    IdealFabric f;
    benchmark::DoNotOptimize(add_integers(f, 12345, 54321, width));
  }
}
BENCHMARK(BM_ImplyRippleAdd)->Arg(8)->Arg(32);

void BM_TcAdd(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  CrsTcAdder adder(width, memcim::presets::crs_cell());
  for (auto _ : state) {
    benchmark::DoNotOptimize(adder.add(12345, 54321));
  }
}
BENCHMARK(BM_TcAdd)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: adder architectures ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "ablation_adders");
  print_comparison(w);
  print_energy_measured(w);
  bench::write_bench_json(w, "ablation_adders");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
