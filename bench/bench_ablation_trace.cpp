// Ablation: measured vs assumed cache behaviour.  Table 1 *assumes* a
// 50 % hit ratio for the DNA workload; here we replay the sorted-index
// algorithm's real address stream through the Table 1 cache (8 kB,
// 4-way, 64 B lines) and measure it — then re-evaluate the Table 2
// metrics with the measured value.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/cost_model.h"
#include "bench_json.h"
#include "common/table.h"
#include "conv/cluster.h"
#include "workloads/dna.h"

namespace {

using namespace memcim;

struct StreamRates {
  double all, index_only, reference_only;
  std::size_t accesses;
};

StreamRates measure(std::size_t genome_bytes, int queries,
                    std::uint64_t seed) {
  Rng rng(seed);
  const std::string genome = generate_genome(genome_bytes, rng);
  SortedIndex index(genome, 16);
  MemoryTrace trace;
  index.attach_trace(&trace);
  for (int q = 0; q < queries; ++q) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(genome.size() - 16)));
    (void)index.lookup(genome.substr(pos, 16));
  }
  MemoryTrace idx_only, ref_only;
  for (const MemoryAccess& a : trace.accesses()) {
    if (a.address < SortedIndex::kReferenceBase)
      idx_only.record(a.address);
    else if (a.address < SortedIndex::kPatternBase)
      ref_only.record(a.address);
  }
  return {run_cluster({trace}, CacheConfig{}, {}).hit_rate(),
          run_cluster({idx_only}, CacheConfig{}, {}).hit_rate(),
          run_cluster({ref_only}, CacheConfig{}, {}).hit_rate(),
          trace.size()};
}

void print_measured_rates(telemetry::JsonWriter& w) {
  TextTable t({"reference size", "overall hit rate", "index stream",
               "reference stream", "accesses replayed"});
  w.key("measured_rates").begin_array();
  for (std::size_t kb : {64u, 128u, 512u}) {
    const StreamRates r = measure(kb << 10, 200, 17);
    t.add_row({std::to_string(kb) + " kB", fixed_string(r.all, 3),
               fixed_string(r.index_only, 3),
               fixed_string(r.reference_only, 3),
               std::to_string(r.accesses)});
    w.begin_object();
    w.key("reference_kb").value(static_cast<std::uint64_t>(kb));
    w.key("overall_hit_rate").value(r.all);
    w.key("index_stream_hit_rate").value(r.index_only);
    w.key("reference_stream_hit_rate").value(r.reference_only);
    w.key("accesses").value(static_cast<std::uint64_t>(r.accesses));
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "The binary-search *index* stream is the locality killer the\n"
               "paper describes (~0.26-0.32 and falling with scale); the\n"
               "reference bytes keep within-compare streaming locality.  At\n"
               "the paper's full scale (3 GB reference, 24 GB index) the\n"
               "index stream dominates — Table 1's 50% sits between our\n"
               "measured components.\n\n";
}

void print_table2_with_measured_rate(telemetry::JsonWriter& w) {
  const Table1 t = paper_table1();
  const StreamRates r = measure(512 << 10, 200, 17);
  TextTable table({"hit-rate source", "value", "Conv ED/op", "CIM ED/op",
                   "ED gain"});
  w.key("table2_sensitivity").begin_array();
  for (const auto& [label, rate] :
       {std::pair<const char*, double>{"paper assumption", 0.50},
        {"measured overall", r.all},
        {"measured index stream", r.index_only}}) {
    WorkloadSpec spec = dna_workload_spec(t);
    spec.hit_ratio = rate;
    const ArchCost conv = evaluate_conventional(spec, t);
    const ArchCost cim = evaluate_cim(spec, t);
    table.add_row({label, fixed_string(rate, 3),
                   sci_string(conv.energy_delay_per_op(), 3),
                   sci_string(cim.energy_delay_per_op(), 3),
                   fixed_string(conv.energy_delay_per_op() /
                                    cim.energy_delay_per_op(),
                                0) +
                       "x"});
    w.begin_object();
    w.key("source").value(label);
    w.key("hit_rate").value(rate);
    w.key("conv_energy_delay_per_op").value(conv.energy_delay_per_op());
    w.key("cim_energy_delay_per_op").value(cim.energy_delay_per_op());
    w.end_object();
  }
  w.end_array();
  std::cout << table.to_text() << '\n'
            << "CIM's orders-of-magnitude advantage is robust to the hit-\n"
               "rate assumption: even the optimistic overall rate leaves a\n"
               ">10^4x energy-delay gap.\n\n";
}

void BM_TraceReplay(benchmark::State& state) {
  Rng rng(3);
  const std::string genome =
      generate_genome(static_cast<std::size_t>(state.range(0)) << 10, rng);
  SortedIndex index(genome, 16);
  MemoryTrace trace;
  index.attach_trace(&trace);
  for (int q = 0; q < 50; ++q)
    (void)index.lookup(genome.substr(
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(genome.size() - 16))),
        16));
  for (auto _ : state) {
    SetAssociativeCache cache{CacheConfig{}};
    cache.run(trace);
    benchmark::DoNotOptimize(cache.stats().hit_rate());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_TraceReplay)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: measured vs assumed cache hit rates ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "ablation_trace");
  print_measured_rates(w);
  print_table2_with_measured_rate(w);
  bench::write_bench_json(w, "ablation_trace");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
