// Ablation: analog vector-matrix multiplication fidelity — the paper's
// "neural and analogue computing" pointer, quantified.  We sweep array
// size and wire resistance and report the analog error against the
// digital golden product, plus the energy of one analog MAC pass.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_json.h"
#include "common/rng.h"
#include "common/table.h"
#include "crossbar/vmm.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace {

using namespace memcim;

VmmConfig cfg(std::size_t n, NetworkModel model, double wire_ohms) {
  VmmConfig c;
  c.array.rows = n;
  c.array.cols = n;
  c.array.model = model;
  c.array.wire_segment = Resistance(wire_ohms);
  return c;
}

double measure_error(std::size_t n, NetworkModel model, double wire_ohms,
                     std::uint64_t seed) {
  Rng rng(seed);
  CrossbarVmm vmm(cfg(n, model, wire_ohms),
                  VcmDevice(presets::vcm_taox(), 0.0));
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (auto& row : w)
    for (auto& wij : row) wij = rng.uniform(0.0, 1.0);
  vmm.program(w);
  std::vector<double> x(n);
  for (auto& xi : x) xi = rng.uniform(0.0, 1.0);
  return vmm.relative_error(x);
}

void print_error_sweep(telemetry::JsonWriter& json) {
  TextTable t({"N", "ideal wires (lumped)", "2 ohm/seg", "20 ohm/seg",
               "100 ohm/seg"});
  json.key("error_sweep").begin_array();
  for (std::size_t n : {8u, 16u, 32u}) {
    const double lumped_err =
        measure_error(n, NetworkModel::kLumpedLines, 1.0, 1);
    const double err_2 = measure_error(n, NetworkModel::kDistributed, 2.0, 1);
    const double err_20 =
        measure_error(n, NetworkModel::kDistributed, 20.0, 1);
    const double err_100 =
        measure_error(n, NetworkModel::kDistributed, 100.0, 1);
    t.add_row({std::to_string(n), sci_string(lumped_err, 2),
               sci_string(err_2, 2), sci_string(err_20, 2),
               sci_string(err_100, 2)});
    json.begin_object();
    json.key("size").value(static_cast<std::uint64_t>(n));
    json.key("lumped_error").value(lumped_err);
    json.key("distributed_2ohm_error").value(err_2);
    json.key("distributed_20ohm_error").value(err_20);
    json.key("distributed_100ohm_error").value(err_100);
    json.end_object();
  }
  json.end_array();
  std::cout << t.to_text() << '\n'
            << "One analog pass computes N^2 MACs in a single read cycle;\n"
               "IR drop along the wires is the accuracy tax, growing with\n"
               "both N and the segment resistance — the scaling limit of\n"
               "analog CIM that digital (IMPLY/TC-adder) CIM avoids.\n\n";
}

void print_throughput(telemetry::JsonWriter& json) {
  const std::size_t n = 32;
  TextTable t({"Analog MAC pass (32x32)", "value"});
  // 1024 MACs per pass; pass time = one read settle (~1 ns budget),
  // energy = I·V integrated over the pass on all junctions.
  Rng rng(5);
  CrossbarVmm vmm(cfg(n, NetworkModel::kLumpedLines, 1.0),
                  VcmDevice(presets::vcm_taox(), 0.0));
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (auto& row : w)
    for (auto& wij : row) wij = rng.uniform(0.0, 1.0);
  vmm.program(w);
  std::vector<double> x(n);
  for (auto& xi : x) xi = rng.uniform(0.0, 1.0);
  const auto y = vmm.multiply(x);
  double i_total = 0.0;
  for (std::size_t j = 0; j < n; ++j) i_total += y[j];
  t.add_row({"MACs per pass", std::to_string(n * n)});
  t.add_row({"digital TC-adder equivalent",
             std::to_string(n * n) + " adds x 26.6 ns = 27.2 us serialized"});
  t.add_row({"analog pass settle budget", "~1 ns (one read cycle)"});
  t.add_row({"worst output error", sci_string(vmm.relative_error(x), 2)});
  std::cout << t.to_text() << '\n';

  json.key("throughput").begin_object();
  json.key("macs_per_pass").value(static_cast<std::uint64_t>(n * n));
  json.key("total_output_current_a").value(i_total);
  json.key("worst_output_error").value(vmm.relative_error(x));
  json.end_object();
}

void BM_AnalogMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  CrossbarVmm vmm(cfg(n, NetworkModel::kLumpedLines, 1.0),
                  VcmDevice(presets::vcm_taox(), 0.0));
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.5));
  vmm.program(w);
  std::vector<double> x(n, 0.5);
  for (auto _ : state) benchmark::DoNotOptimize(vmm.multiply(x));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_AnalogMultiply)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: analog VMM on the crossbar ===\n\n";
  telemetry::JsonWriter json;
  bench::begin_bench_json(json, "ablation_vmm");
  print_error_sweep(json);
  print_throughput(json);
  bench::write_bench_json(json, "ablation_vmm");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
