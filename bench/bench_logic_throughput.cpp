// Logic-engine throughput bench: quantifies what the packed (bit-
// sliced) execution engine buys over the scalar replay paths and guards
// the speedup in CI.
//
// Three measurements, written to BENCH_logic.json:
//
//  1. Program engine — the paper's 10^6-parallel-addition workload as a
//     recorded 32-bit IMPLY ripple-adder program replayed across 10^6
//     register windows on a single thread: run_program_simd on
//     IdealFabric (measured on a subsample and extrapolated) vs
//     run_program_packed over the full batch.  Acceptance: >= 10x.
//  2. Packed adder farm — run_parallel_add on the compiled TC-adder
//     fast path at MEMCIM_THREADS 1 and 4 (thread-pool scaling of the
//     lane-block fan-out).
//  3. DNA-flavoured CAM sweep — CrsCam search throughput with the
//     bit-sliced match kernel vs the scalar row walk on a 2048-row,
//     24-bit (k=12 bases) ternary table.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <span>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "device/presets.h"
#include "logic/adder.h"
#include "logic/cam.h"
#include "logic/ideal_fabric.h"
#include "logic/packed.h"
#include "logic/program.h"
#include "telemetry/json_writer.h"
#include "workloads/parallel_add.h"

namespace {

using namespace memcim;

[[nodiscard]] std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] CimProgram recorded_adder(std::size_t bits) {
  return record_program(2 * bits, [&](Fabric& f, const std::vector<Reg>& in) {
    const std::span<const Reg> a(in.data(), bits);
    const std::span<const Reg> b(in.data() + bits, bits);
    return ripple_adder(f, a, b).carry_out;
  });
}

[[nodiscard]] std::vector<std::vector<bool>> random_windows(
    std::size_t inputs, std::size_t count, Rng& rng) {
  std::vector<std::vector<bool>> windows(count);
  for (auto& w : windows) {
    w.resize(inputs);
    for (std::size_t i = 0; i < inputs; ++i) w[i] = rng.bernoulli(0.5);
  }
  return windows;
}

constexpr std::size_t kAddBits = 32;
constexpr std::size_t kWindows = 1'000'000;  // paper: 10^6 parallel adds
constexpr std::size_t kScalarSample = 32'768;
constexpr double kSpeedupThreshold = 10.0;

struct ProgramEngineReport {
  std::uint64_t instructions = 0;
  double scalar_sample_ns = 0.0;
  double scalar_extrapolated_ns = 0.0;
  double packed_ns = 0.0;
  double speedup = 0.0;
  bool outputs_match = false;
  bool pass = false;
};

ProgramEngineReport measure_program_engine() {
  ProgramEngineReport rep;
  const CimProgram program = recorded_adder(kAddBits);
  rep.instructions = program.instructions.size();
  Rng rng(0x10610);
  const auto windows = random_windows(program.inputs, kWindows, rng);
  const std::vector<std::vector<bool>> sample(
      windows.begin(), windows.begin() + kScalarSample);

  // Single thread: the acceptance criterion isolates the engine, not
  // the pool.
  set_parallel_threads(1);

  IdealFabric fabric;
  const std::uint64_t s0 = steady_ns();
  const SimdRunResult scalar = run_program_simd(program, fabric, sample);
  const std::uint64_t s1 = steady_ns();
  rep.scalar_sample_ns = static_cast<double>(s1 - s0);
  rep.scalar_extrapolated_ns = rep.scalar_sample_ns *
                               static_cast<double>(kWindows) /
                               static_cast<double>(kScalarSample);

  const PackedProgram compiled = compile_program(program);
  const std::uint64_t p0 = steady_ns();
  const PackedRunResult packed = run_program_packed(compiled, windows);
  const std::uint64_t p1 = steady_ns();
  rep.packed_ns = static_cast<double>(p1 - p0);

  rep.outputs_match = true;
  for (std::size_t w = 0; w < kScalarSample; ++w)
    if (packed.outputs[w] != scalar.outputs[w]) rep.outputs_match = false;

  rep.speedup = rep.scalar_extrapolated_ns / rep.packed_ns;
  rep.pass = rep.outputs_match && rep.speedup >= kSpeedupThreshold;
  set_parallel_threads(0);
  return rep;
}

struct FarmScalingPoint {
  std::size_t threads = 0;
  double ns = 0.0;
  double ops_per_s = 0.0;
  std::uint64_t mismatches = 0;
};

FarmScalingPoint measure_farm(std::size_t threads) {
  set_parallel_threads(threads);
  ParallelAddParams params;
  params.operations = 200'000;
  params.width = 32;
  params.adders = 1024;
  params.engine = AdderEngine::kPacked;
  Rng rng(0xFA2);
  const std::uint64_t t0 = steady_ns();
  const ParallelAddResult result =
      run_parallel_add(params, presets::crs_cell(), rng);
  const std::uint64_t t1 = steady_ns();
  FarmScalingPoint point;
  point.threads = parallel_threads();
  point.ns = static_cast<double>(t1 - t0);
  point.ops_per_s =
      static_cast<double>(params.operations) / (point.ns * 1e-9);
  point.mismatches = result.mismatches;
  set_parallel_threads(0);
  return point;
}

struct CamSweepReport {
  std::size_t rows = 0;
  std::size_t word_bits = 0;
  std::size_t searches = 0;
  double scalar_ns = 0.0;
  double packed_ns = 0.0;
  double speedup = 0.0;
  bool matches_agree = false;
};

CamSweepReport measure_cam_sweep() {
  CamSweepReport rep;
  rep.rows = 2048;
  rep.word_bits = 24;  // k = 12 bases, 2 bits per base
  rep.searches = 20'000;

  CamConfig config;
  config.rows = rep.rows;
  config.word_bits = rep.word_bits;
  config.cell = presets::crs_cell();
  config.packed_match = true;
  CrsCam packed(config);
  config.packed_match = false;
  CrsCam scalar(config);

  Rng fill(0xD9A);
  for (std::size_t row = 0; row < rep.rows; ++row) {
    std::vector<CamBit> word(rep.word_bits);
    for (auto& b : word) {
      const double roll = fill.uniform();
      b = roll < 0.1 ? CamBit::kDontCare
                     : (roll < 0.55 ? CamBit::kZero : CamBit::kOne);
    }
    packed.write_row_ternary(row, word);
    scalar.write_row_ternary(row, word);
  }

  Rng key_rng(0x4E75);
  std::vector<std::vector<bool>> keys(rep.searches);
  for (auto& key : keys) {
    key.resize(rep.word_bits);
    for (std::size_t i = 0; i < rep.word_bits; ++i)
      key[i] = key_rng.bernoulli(0.5);
  }

  std::uint64_t packed_hits = 0, scalar_hits = 0;
  const std::uint64_t p0 = steady_ns();
  for (const auto& key : keys) packed_hits += packed.search(key).matching_rows.size();
  const std::uint64_t p1 = steady_ns();
  const std::uint64_t s0 = steady_ns();
  for (const auto& key : keys) scalar_hits += scalar.search(key).matching_rows.size();
  const std::uint64_t s1 = steady_ns();

  rep.packed_ns = static_cast<double>(p1 - p0);
  rep.scalar_ns = static_cast<double>(s1 - s0);
  rep.speedup = rep.scalar_ns / rep.packed_ns;
  rep.matches_agree = packed_hits == scalar_hits &&
                      packed.total_energy().value() ==
                          scalar.total_energy().value();
  return rep;
}

void write_report(const ProgramEngineReport& engine,
                  const std::vector<FarmScalingPoint>& farm,
                  const CamSweepReport& cam) {
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "logic_throughput");
  w.key("program_engine").begin_object();
  w.key("workload").value("ripple_add_32bit_imply");
  w.key("windows").value(static_cast<std::uint64_t>(kWindows));
  w.key("instructions_per_window").value(engine.instructions);
  w.key("scalar_windows_measured")
      .value(static_cast<std::uint64_t>(kScalarSample));
  w.key("scalar_sample_ns").value(engine.scalar_sample_ns);
  w.key("scalar_extrapolated_ns").value(engine.scalar_extrapolated_ns);
  w.key("packed_ns").value(engine.packed_ns);
  w.key("speedup").value(engine.speedup);
  w.key("outputs_match").value(engine.outputs_match);
  w.key("threshold").value(kSpeedupThreshold);
  w.key("pass").value(engine.pass);
  w.end_object();
  w.key("packed_adder_scaling").begin_array();
  for (const FarmScalingPoint& point : farm) {
    w.begin_object();
    w.key("threads").value(static_cast<std::uint64_t>(point.threads));
    w.key("ns").value(point.ns);
    w.key("ops_per_s").value(point.ops_per_s);
    w.key("mismatches").value(point.mismatches);
    w.end_object();
  }
  w.end_array();
  w.key("cam_sweep").begin_object();
  w.key("rows").value(static_cast<std::uint64_t>(cam.rows));
  w.key("word_bits").value(static_cast<std::uint64_t>(cam.word_bits));
  w.key("searches").value(static_cast<std::uint64_t>(cam.searches));
  w.key("scalar_ns").value(cam.scalar_ns);
  w.key("packed_ns").value(cam.packed_ns);
  w.key("speedup").value(cam.speedup);
  w.key("matches_agree").value(cam.matches_agree);
  w.end_object();
  w.end_object();
  std::ofstream("BENCH_logic.json") << w.str();
}

// --- google-benchmark micro-benches ----------------------------------------

void BM_PackedReplayAdd8(benchmark::State& state) {
  const CimProgram program = recorded_adder(8);
  const PackedProgram compiled = compile_program(program);
  Rng rng(0x8ADD);
  const auto windows = random_windows(program.inputs, 64, rng);
  for (auto _ : state) {
    const PackedRunResult r = run_program_packed(compiled, windows);
    benchmark::DoNotOptimize(r.writes);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PackedReplayAdd8);

void BM_ScalarReplayAdd8(benchmark::State& state) {
  const CimProgram program = recorded_adder(8);
  Rng rng(0x8ADD);
  const auto windows = random_windows(program.inputs, 64, rng);
  for (auto _ : state) {
    IdealFabric fabric;
    const SimdRunResult r = run_program_simd(program, fabric, windows);
    benchmark::DoNotOptimize(r.writes);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ScalarReplayAdd8);

void BM_CamSearch(benchmark::State& state) {
  CamConfig config;
  config.rows = 512;
  config.word_bits = 24;
  config.cell = presets::crs_cell();
  config.packed_match = state.range(0) != 0;
  CrsCam cam(config);
  Rng rng(0xCA4);
  for (std::size_t row = 0; row < config.rows; ++row) {
    std::vector<bool> word(config.word_bits);
    for (std::size_t i = 0; i < config.word_bits; ++i)
      word[i] = rng.bernoulli(0.5);
    cam.write_row(row, word);
  }
  std::vector<bool> key(config.word_bits);
  for (std::size_t i = 0; i < config.word_bits; ++i)
    key[i] = rng.bernoulli(0.5);
  for (auto _ : state) {
    const CamSearchResult r = cam.search(key);
    benchmark::DoNotOptimize(r.matching_rows.data());
  }
}
BENCHMARK(BM_CamSearch)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Logic engine throughput bench ===\n\n";

  const ProgramEngineReport engine = measure_program_engine();
  std::cout << "program engine (32-bit add, " << kWindows
            << " windows, 1 thread):\n"
            << "  scalar  " << engine.scalar_extrapolated_ns / 1e6
            << " ms (extrapolated from " << kScalarSample << " windows)\n"
            << "  packed  " << engine.packed_ns / 1e6 << " ms\n"
            << "  speedup " << engine.speedup << "x (threshold "
            << kSpeedupThreshold << "x, outputs "
            << (engine.outputs_match ? "match" : "MISMATCH") << ")\n\n";

  std::vector<FarmScalingPoint> farm;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    farm.push_back(measure_farm(threads));
    std::cout << "packed adder farm, " << farm.back().threads
              << " thread(s): " << farm.back().ns / 1e6 << " ms ("
              << farm.back().ops_per_s / 1e6 << " M adds/s, "
              << farm.back().mismatches << " mismatches)\n";
  }
  std::cout << "\n";

  const CamSweepReport cam = measure_cam_sweep();
  std::cout << "CAM sweep (" << cam.rows << " rows x " << cam.word_bits
            << " bits, " << cam.searches << " searches): scalar "
            << cam.scalar_ns / 1e6 << " ms, packed " << cam.packed_ns / 1e6
            << " ms, speedup " << cam.speedup << "x, matches "
            << (cam.matches_agree ? "agree" : "DISAGREE") << "\n\n";

  write_report(engine, farm, cam);
  std::cout << "Wrote BENCH_logic.json\n\n";

  bool ok = engine.pass && cam.matches_agree;
  for (const FarmScalingPoint& point : farm) ok = ok && point.mismatches == 0;
  if (!ok) {
    std::cerr << "FAIL: packed engine acceptance (speedup >= "
              << kSpeedupThreshold << "x, outputs match, 0 mismatches)\n";
    return 1;
  }
  std::cout << "Acceptance: packed speedup " << engine.speedup << "x >= "
            << kSpeedupThreshold << "x with bitwise-identical results.\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
