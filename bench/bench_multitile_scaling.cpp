// Multi-tile scaling bench: the TC-adder farm workload sharded over
// mesh fabrics from 1 to 64 tiles, with the host↔tile command traffic
// costed by the NoC co-simulation.  Parallel efficiency comes from the
// *simulated* fabric makespan — eff(T) = makespan(1) / (T · makespan(T))
// — so the number is machine-independent and CI-safe.
//
// Besides the interactive table it writes BENCH_multitile.json and
// enforces the scaling acceptance gate inline: the process exits
// non-zero when efficiency at 16 tiles drops below 0.7 or any sharded
// run's sums diverge from the single-tile baseline.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/table.h"
#include "device/presets.h"
#include "telemetry/attribution.h"
#include "workloads/sharded.h"

namespace {

using namespace memcim;

constexpr std::uint64_t kSeed = 0x5CA1E;
constexpr double kMinEfficiencyAt16 = 0.7;

ParallelAddParams add_params() {
  ParallelAddParams p;
  p.operations = 16384;
  p.width = 32;
  p.adders = 64;  // per-tile farm; batch-aligned sharding keeps slots
  p.engine = AdderEngine::kPacked;
  return p;
}

TileFabricConfig fabric_config(std::size_t width, std::size_t height) {
  TileFabricConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.tile.rows = 4;
  cfg.tile.row_bits = 8;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

struct ScalePoint {
  std::size_t width = 0;
  std::size_t height = 0;
  std::size_t tiles = 0;
  ShardedAddResult result;
  double speedup = 0.0;     ///< makespan(1) / makespan(T)
  double efficiency = 0.0;  ///< speedup / T
};

/// Run the sweep; every configuration re-draws the identical operand
/// stream, so sums must match the 1×1 baseline bit-for-bit.
std::vector<ScalePoint> run_sweep() {
  const std::vector<std::pair<std::size_t, std::size_t>> grids = {
      {1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}, {8, 4}, {8, 8}};
  std::vector<ScalePoint> points;
  for (const auto& [w, h] : grids) {
    TileFabric fabric(fabric_config(w, h));
    Rng rng(kSeed);
    ScalePoint pt;
    pt.width = w;
    pt.height = h;
    pt.tiles = w * h;
    pt.result = sharded_parallel_add(fabric, add_params(), presets::crs_cell(),
                                     rng);
    points.push_back(std::move(pt));
  }
  const double base = static_cast<double>(points.front().result.run.makespan);
  for (ScalePoint& pt : points) {
    pt.speedup = base / static_cast<double>(pt.result.run.makespan);
    pt.efficiency = pt.speedup / static_cast<double>(pt.tiles);
  }
  return points;
}

void print_sweep(const std::vector<ScalePoint>& points) {
  TextTable t({"grid", "tiles", "makespan (cyc)", "latency (us)", "speedup",
               "efficiency", "flits", "hops", "fabric util"});
  for (const ScalePoint& pt : points) {
    const ShardedRunStats& run = pt.result.run;
    t.add_row({std::to_string(pt.width) + "x" + std::to_string(pt.height),
               std::to_string(pt.tiles), std::to_string(run.makespan),
               fixed_string(run.latency.value() * 1e6, 3),
               fixed_string(pt.speedup, 2), fixed_string(pt.efficiency, 3),
               std::to_string(run.flits), std::to_string(run.flit_hops),
               fixed_string(run.fabric_utilization, 3)});
  }
  std::cout << t.to_text() << '\n';
}

void write_json(const std::vector<ScalePoint>& points, double eff16,
                bool pass) {
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "multitile_scaling");
  w.key("seed").value(kSeed);
  const ParallelAddParams p = add_params();
  w.key("workload").begin_object();
  w.key("kind").value("sharded_parallel_add");
  w.key("operations").value(static_cast<std::uint64_t>(p.operations));
  w.key("width_bits").value(static_cast<std::uint64_t>(p.width));
  w.key("adders_per_tile").value(static_cast<std::uint64_t>(p.adders));
  w.end_object();
  w.key("sweep").begin_array();
  for (const ScalePoint& pt : points) {
    const ShardedRunStats& run = pt.result.run;
    w.begin_object();
    w.key("grid_width").value(static_cast<std::uint64_t>(pt.width));
    w.key("grid_height").value(static_cast<std::uint64_t>(pt.height));
    w.key("tiles").value(static_cast<std::uint64_t>(pt.tiles));
    w.key("makespan_cycles").value(run.makespan);
    w.key("latency_s").value(run.latency.value());
    w.key("compute_energy_j").value(run.compute_energy.value());
    w.key("noc_energy_j").value(run.noc_energy.value());
    w.key("flits").value(run.flits);
    w.key("flit_hops").value(run.flit_hops);
    w.key("fabric_utilization").value(run.fabric_utilization);
    w.key("speedup").value(pt.speedup);
    w.key("efficiency").value(pt.efficiency);
    w.end_object();
  }
  w.end_array();
  w.key("acceptance").begin_object();
  w.key("min_efficiency_16").value(kMinEfficiencyAt16);
  w.key("efficiency_16").value(eff16);
  w.key("pass").value(pass);
  w.end_object();
  bench::write_bench_json(w, "multitile");
}

/// The scaling acceptance: sums identical to the baseline everywhere,
/// zero mismatches, and ≥ 0.7 parallel efficiency at 16 tiles.
int check_acceptance(const std::vector<ScalePoint>& points, double* eff16) {
  int failures = 0;
  const std::vector<std::uint64_t>& golden = points.front().result.merged.sums;
  *eff16 = 0.0;
  for (const ScalePoint& pt : points) {
    if (pt.result.merged.sums != golden) {
      std::cerr << "ACCEPTANCE FAIL: sharded sums diverge at " << pt.tiles
                << " tiles\n";
      ++failures;
    }
    if (pt.result.merged.mismatches != 0) {
      std::cerr << "ACCEPTANCE FAIL: " << pt.result.merged.mismatches
                << " adder mismatches at " << pt.tiles << " tiles\n";
      ++failures;
    }
    if (pt.tiles == 16) *eff16 = pt.efficiency;
  }
  if (*eff16 < kMinEfficiencyAt16) {
    std::cerr << "ACCEPTANCE FAIL: efficiency at 16 tiles " << *eff16
              << " < " << kMinEfficiencyAt16 << "\n";
    ++failures;
  }
  return failures;
}

void BM_ShardedAdd(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  ParallelAddParams p = add_params();
  p.operations = 4096;
  for (auto _ : state) {
    TileFabric fabric(fabric_config(side, side));
    Rng rng(kSeed);
    benchmark::DoNotOptimize(
        sharded_parallel_add(fabric, p, presets::crs_cell(), rng));
  }
}
BENCHMARK(BM_ShardedAdd)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Multi-tile CIM fabric scaling (sharded adder farm) ===\n"
            << "thread pool: " << parallel_threads()
            << " workers (override with MEMCIM_THREADS)\n\n";

  // A clean attribution book over exactly the sweep's runs, exported
  // for `memcim-report attribution` (per-layer/tile/shard breakdown).
  telemetry::AttributionBook::global().reset();
  const std::vector<ScalePoint> points = run_sweep();
  print_sweep(points);
  telemetry::write_attribution_json("ATTR_multitile.json");
  std::cout << "Wrote ATTR_multitile.json\n\n";

  double eff16 = 0.0;
  const int failures = check_acceptance(points, &eff16);
  write_json(points, eff16, failures == 0);
  if (failures > 0) {
    std::cerr << failures << " acceptance violation(s)\n";
    return 1;
  }
  std::cout << "Acceptance: sums bitwise-stable across shardings, "
            << "efficiency at 16 tiles = " << fixed_string(eff16, 3) << " >= "
            << kMinEfficiencyAt16 << "\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
