// Ablation: the "massive parallelism" axis.  The paper's CIM claim
// rests on the crossbar's ability to host millions of concurrent units
// ("huge crossbar architectures allowing massive parallelism are
// feasible").  We sweep the number of parallel units on both machines
// for the 10^6-addition workload and report wall time, total energy and
// the silicon area paid for the parallelism.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/cost_model.h"
#include "bench_json.h"
#include "common/table.h"

namespace {

using namespace memcim;

void print_sweep(telemetry::JsonWriter& w) {
  const Table1 t = paper_table1();
  TextTable table({"parallel units", "Conv wall time", "CIM wall time",
                   "CIM/Conv time", "CIM units area"});
  w.key("unit_sweep").begin_array();
  for (double units : {1.0, 1e2, 1e4, 1e6}) {
    WorkloadSpec spec = math_workload_spec(t);
    spec.parallel_units = units;
    const ArchCost conv = evaluate_conventional(spec, t);
    const ArchCost cim = evaluate_cim(spec, t);
    table.add_row(
        {sci_string(units, 0), si_string(conv.total_time.value(), "s"),
         si_string(cim.total_time.value(), "s"),
         fixed_string(cim.total_time.value() / conv.total_time.value(), 2) +
             "x",
         fixed_string(t.cim_adder.area.value() * units * 1e12, 3) + " um2"});
    w.begin_object();
    w.key("parallel_units").value(units);
    w.key("conv_wall_time_s").value(conv.total_time.value());
    w.key("cim_wall_time_s").value(cim.total_time.value());
    w.key("cim_units_area_m2").value(t.cim_adder.area.value() * units);
    w.end_object();
  }
  w.end_array();
  std::cout << table.to_text() << '\n'
            << "CIM is ~3.7x slower at equal unit count (36.2 vs 9.8 ns/op),\n"
               "but a CIM adder occupies 3.4e-3 um2 against ~52 um2 of CMOS\n"
               "CLA + cache share: for the same silicon, CIM fields ~10^4x\n"
               "more units — the area-parallelism trade that wins Table 2.\n\n";

  TextTable equal_area({"same-area comparison", "value"});
  // How many units fit in 1 mm² on each machine?
  const double conv_unit_area =
      static_cast<double>(t.cla.gates) * t.finfet.gate_area.value() +
      t.cache_math.area.value() /
          static_cast<double>(t.clusters_math.units_per_cluster);
  const double cim_unit_area = t.cim_adder.area.value();
  const double conv_units_mm2 = 1e-6 / conv_unit_area;
  const double cim_units_mm2 = 1e-6 / cim_unit_area;
  equal_area.add_row({"conv adders per mm2", sci_string(conv_units_mm2, 2)});
  equal_area.add_row({"CIM adders per mm2", sci_string(cim_units_mm2, 2)});
  equal_area.add_row(
      {"ops/s per mm2 (conv)",
       sci_string(conv_units_mm2 / 9.812e-9, 2)});
  equal_area.add_row(
      {"ops/s per mm2 (CIM)", sci_string(cim_units_mm2 / 36.16e-9, 2)});
  std::cout << equal_area.to_text() << '\n';

  w.key("equal_area").begin_object();
  w.key("conv_adders_per_mm2").value(conv_units_mm2);
  w.key("cim_adders_per_mm2").value(cim_units_mm2);
  w.key("conv_ops_per_s_per_mm2").value(conv_units_mm2 / 9.812e-9);
  w.key("cim_ops_per_s_per_mm2").value(cim_units_mm2 / 36.16e-9);
  w.end_object();
}

void BM_CostSweep(benchmark::State& state) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.parallel_units = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_conventional(spec, t));
    benchmark::DoNotOptimize(evaluate_cim(spec, t));
  }
}
BENCHMARK(BM_CostSweep)->Arg(100)->Arg(1000000);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: parallelism vs area ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "ablation_parallelism");
  print_sweep(w);
  bench::write_bench_json(w, "ablation_parallelism");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
