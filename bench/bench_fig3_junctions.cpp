// Figure 3 — the passive nano-crossbar and its cross-point junction
// options against sneak paths.  We sweep square array sizes and report
// the worst-case read margin for each junction style:
//
//   passive 1R      — bare memristor (sneak paths collapse the margin),
//   1D1R            — diode selector,
//   1S1R            — nonlinear selector,
//   1T1R            — access transistor (gates off unselected cells),
//   CRS             — complementary resistive switch (sneak-free by
//                     construction; shown via its OFF-state current).
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "common/table.h"
#include "crossbar/readout.h"
#include "crossbar/selector.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace {

using namespace memcim;
using namespace memcim::literals;

const std::vector<std::size_t> kSizes{4, 8, 16, 32, 64, 128};

CrossbarConfig lumped() {
  CrossbarConfig cfg;
  cfg.model = NetworkModel::kLumpedLines;
  return cfg;
}

void margin_row(TextTable& t, const char* name, const Device& proto) {
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;  // the passive-crossbar regime
  std::vector<std::string> row{name};
  for (const MarginPoint& p : margin_vs_size(proto, lumped(), rc, kSizes))
    row.push_back(fixed_string(p.margin, 4));
  t.add_row(row);
}

void print_margins() {
  std::vector<std::string> headers{"Junction \\ N"};
  for (std::size_t n : kSizes) headers.push_back(std::to_string(n));
  TextTable t(headers);

  const VcmDevice passive(presets::vcm_taox(), 0.0);
  margin_row(t, "passive 1R", passive);

  const SelectorDevice d1r(
      std::make_unique<VcmDevice>(presets::vcm_taox(), 0.0),
      diode_selector());
  margin_row(t, "1D1R (diode)", d1r);

  const SelectorDevice s1r(
      std::make_unique<VcmDevice>(presets::vcm_taox(), 0.0),
      nonlinear_selector());
  margin_row(t, "1S1R (nonlinear)", s1r);

  const TransistorDevice t1r(
      std::make_unique<VcmDevice>(presets::vcm_taox(), 0.0));
  margin_row(t, "1T1R (transistor)", t1r);

  std::cout << t.to_text() << '\n';

  // CRS: both stored states block at read bias, so the sneak current of
  // a fully-populated array stays at the cell leak level regardless of N.
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kZero);
  const double i0 = std::abs(crs->current(0.3_V).value());
  crs->force_state(CrsState::kOne);
  const double i1 = std::abs(crs->current(0.3_V).value());
  TextTable crs_t({"CRS junction property", "value"});
  crs_t.add_row({"OFF current, state '0' @0.3V", si_string(i0, "A")});
  crs_t.add_row({"OFF current, state '1' @0.3V", si_string(i1, "A")});
  crs_t.add_row({"states distinguishable at low V", "no (sneak-free)"});
  std::cout << crs_t.to_text() << '\n'
            << "Passive 1R margin collapses with N (Flocke-style result);\n"
               "selectors/transistors/CRS keep large arrays readable —\n"
               "the Section IV.B solution classes.\n\n";

  // Bias-scheme class of solutions (ref [80]): the multistage
  // self-referenced read still discriminates on the bare passive array,
  // at the cost of extra pulses and a sense resolution that shrinks ~1/N.
  TextTable ms({"N", "HRS relative drop", "required sense resolution"});
  for (std::size_t n : {8u, 32u, 128u}) {
    CrossbarConfig cfg = lumped();
    cfg.rows = n;
    cfg.cols = n;
    CrossbarArray array(cfg, VcmDevice(presets::vcm_taox(), 0.0));
    ReadConfig rc;
    rc.scheme = BiasScheme::kFloating;
    WriteConfig wc;
    wc.v_write = presets::vcm_taox().v_write;
    wc.pulse = presets::vcm_taox().t_switch;
    const double threshold = calibrate_multistage_threshold(array, rc, wc);
    ms.add_row({std::to_string(n), fixed_string(2.0 * threshold, 4),
                fixed_string(threshold, 4)});
  }
  std::cout << ms.to_text() << '\n'
            << "Multistage reads (write-to-reference + restore, 2 extra\n"
               "pulses) trade time and endurance for sneak immunity on the\n"
               "bare array — the paper's third solution class in action.\n\n";
}

void BM_MarginSweepPassive(benchmark::State& state) {
  const VcmDevice proto(presets::vcm_taox(), 0.0);
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;
  const std::vector<std::size_t> sizes{
      static_cast<std::size_t>(state.range(0))};
  for (auto _ : state)
    benchmark::DoNotOptimize(margin_vs_size(proto, lumped(), rc, sizes));
}
BENCHMARK(BM_MarginSweepPassive)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figure 3: cross-point junction options vs sneak paths ===\n\n"
            << "Worst-case read margin (target HRS, all other cells LRS,\n"
               "floating unaccessed lines), corner cell of an NxN array:\n\n";
  print_margins();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
