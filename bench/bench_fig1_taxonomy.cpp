// Figure 1 — classification of computing systems by working-set
// location, classes (a) main-memory era → (e) computation-in-memory.
// For each class we print the data-movement cost of one representative
// operation: the quantitative story behind the figure's arrows.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/taxonomy.h"
#include "common/table.h"

namespace {

using namespace memcim;

void print_survey() {
  TextTable t({"Class", "Working set", "Access latency", "Access energy",
               "Op latency", "Op energy", "Movement E share",
               "Movement T share"});
  for (const TaxonomyPoint& p : taxonomy_survey()) {
    t.add_row({to_string(p.cls), p.working_set_location,
               si_string(p.access_latency.value(), "s"),
               si_string(p.access_energy.value(), "J"),
               si_string(p.op_latency.value(), "s"),
               si_string(p.op_energy.value(), "J"),
               fixed_string(p.movement_energy_share * 100.0, 1) + " %",
               fixed_string(p.movement_time_share * 100.0, 1) + " %"});
  }
  std::cout << t.to_text() << '\n'
            << "Paper claim (Section II.B): cache/communication energy is "
               "70-90 % on today's machines (class c); CIM removes it.\n\n";
}

void BM_TaxonomySurvey(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(taxonomy_survey());
}
BENCHMARK(BM_TaxonomySurvey);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figure 1: computing systems by working-set location ===\n\n";
  print_survey();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
