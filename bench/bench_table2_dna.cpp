// Table 2, DNA column — energy-delay/op, computing efficiency and
// performance/area for the healthcare (DNA sorted-index sequencing)
// workload on the conventional multi-core vs the CIM crossbar.
//
// Besides the analytical table, this bench runs the *functional*
// scaled-down pipeline (synthetic genome + sorted index + CIM tile
// comparators) so the operation counts driving the model are observed,
// not assumed.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_json.h"
#include "common/table.h"
#include "eval/report.h"
#include "eval/table2.h"
#include "workloads/dna.h"

namespace {

using namespace memcim;

void print_analytical(telemetry::JsonWriter& w) {
  const Table2 table = make_table2(paper_table1());
  TextTable t({"Metric", "Conv (ours)", "CIM (ours)", "Conv (paper)",
               "CIM (paper)", "CIM gain (ours)", "CIM gain (paper)"});
  w.key("analytical").begin_array();
  for (const Table2Entry& e : table.entries) {
    if (std::string(e.workload) != "DNA sequencing") continue;
    t.add_row({e.metric, sci_string(e.conventional), sci_string(e.cim),
               sci_string(e.paper_conventional), sci_string(e.paper_cim),
               sci_string(e.improvement(), 2),
               sci_string(e.paper_improvement(), 2)});
    w.begin_object();
    w.key("metric").value(e.metric);
    w.key("conventional").value(e.conventional);
    w.key("cim").value(e.cim);
    w.key("paper_conventional").value(e.paper_conventional);
    w.key("paper_cim").value(e.paper_cim);
    w.key("improvement").value(e.improvement());
    w.key("paper_improvement").value(e.paper_improvement());
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "Audit trail:\n"
            << render_table2_audit(table) << '\n';
}

void print_functional(telemetry::JsonWriter& w) {
  Rng rng(2015);
  const std::string genome = generate_genome(50'000, rng);
  ReadSetParams params;
  params.coverage = 5.0;
  params.read_length = 100;
  const auto reads = generate_reads(genome, params, rng);
  const MatchStats stats = match_reads(genome, reads, 20);
  const PaperDnaCounts paper = paper_dna_counts();

  TextTable t({"Functional pipeline (scaled down)", "value"});
  t.add_row({"genome bases", std::to_string(genome.size())});
  t.add_row({"short reads", std::to_string(reads.size())});
  t.add_row({"reads matched", std::to_string(stats.reads_matched)});
  t.add_row({"character comparisons",
             std::to_string(stats.character_comparisons)});
  t.add_row({"paper-accounting comparisons (4x)",
             std::to_string(stats.paper_comparisons())});
  t.add_row({"paper full-scale short reads", sci_string(paper.short_reads)});
  t.add_row({"paper full-scale comparisons", sci_string(paper.comparisons)});
  std::cout << t.to_text() << '\n';

  w.key("functional").begin_object();
  w.key("genome_bases").value(static_cast<std::uint64_t>(genome.size()));
  w.key("short_reads").value(static_cast<std::uint64_t>(reads.size()));
  w.key("reads_matched").value(stats.reads_matched);
  w.key("character_comparisons").value(stats.character_comparisons);
  w.key("paper_accounting_comparisons").value(stats.paper_comparisons());
  w.key("paper_full_scale_short_reads").value(paper.short_reads);
  w.key("paper_full_scale_comparisons").value(paper.comparisons);
  w.end_object();
}

void BM_SortedIndexMatching(benchmark::State& state) {
  Rng rng(7);
  const std::string genome =
      generate_genome(static_cast<std::size_t>(state.range(0)), rng);
  ReadSetParams params;
  params.coverage = 2.0;
  params.read_length = 100;
  const auto reads = generate_reads(genome, params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(match_reads(genome, reads, 20));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(reads.size()));
}
BENCHMARK(BM_SortedIndexMatching)->Arg(10'000)->Arg(40'000);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Table 2 / DNA sequencing: conventional vs CIM ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "table2_dna");
  print_analytical(w);
  print_functional(w);
  bench::write_bench_json(w, "table2_dna");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
