// Table 2, math column — 10^6 parallel 32-bit additions, conventional
// CLA clusters vs CIM TC-adders.  This is the column our cost model
// reproduces to the paper's printed precision (see EXPERIMENTS.md);
// the functional section actually executes a scaled batch on CRS
// TC-adder hardware models and cross-checks the analytical energy.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_json.h"
#include "common/table.h"
#include "device/presets.h"
#include "eval/report.h"
#include "eval/table2.h"
#include "workloads/parallel_add.h"

namespace {

using namespace memcim;

void print_analytical(telemetry::JsonWriter& w) {
  const Table2 table = make_table2(paper_table1());
  TextTable t({"Metric", "Conv (ours)", "CIM (ours)", "Conv (paper)",
               "CIM (paper)", "CIM gain (ours)", "CIM gain (paper)"});
  w.key("analytical").begin_array();
  for (const Table2Entry& e : table.entries) {
    if (std::string(e.workload) != "10^6 additions") continue;
    t.add_row({e.metric, sci_string(e.conventional), sci_string(e.cim),
               sci_string(e.paper_conventional), sci_string(e.paper_cim),
               sci_string(e.improvement(), 2),
               sci_string(e.paper_improvement(), 2)});
    w.begin_object();
    w.key("metric").value(e.metric);
    w.key("conventional").value(e.conventional);
    w.key("cim").value(e.cim);
    w.key("paper_conventional").value(e.paper_conventional);
    w.key("paper_cim").value(e.paper_cim);
    w.key("improvement").value(e.improvement());
    w.key("paper_improvement").value(e.paper_improvement());
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "Audit trail:\n"
            << render_table2_audit(table) << '\n';
}

void print_functional(telemetry::JsonWriter& w) {
  ParallelAddParams params;
  params.operations = 4096;
  params.width = 32;
  params.adders = 256;
  Rng rng(2015);
  const auto r = run_parallel_add(params, presets::crs_cell(), rng);

  TextTable t({"Functional CRS TC-adder farm (scaled down)", "value"});
  t.add_row({"additions executed", std::to_string(params.operations)});
  t.add_row({"mismatches vs golden", std::to_string(r.mismatches)});
  t.add_row({"total pulses", std::to_string(r.total_pulses)});
  t.add_row({"pulses per add (4N+5)",
             std::to_string(r.total_pulses / params.operations)});
  t.add_row({"batch latency", si_string(r.latency.value(), "s")});
  t.add_row({"switching energy", si_string(r.total_energy.value(), "J")});
  t.add_row({"energy per add (measured)",
             si_string(r.total_energy.value() /
                           static_cast<double>(params.operations),
                       "J")});
  t.add_row({"energy per add (Table 1 budget)", "256 fJ (8 ops/bit x 32 x 1 fJ)"});
  std::cout << t.to_text() << '\n';

  w.key("functional").begin_object();
  w.key("operations").value(static_cast<std::uint64_t>(params.operations));
  w.key("mismatches").value(r.mismatches);
  w.key("total_pulses").value(r.total_pulses);
  w.key("latency_s").value(r.latency.value());
  w.key("energy_j").value(r.total_energy.value());
  w.key("energy_per_add_j").value(r.total_energy.value() /
                                  static_cast<double>(params.operations));
  w.end_object();
}

void BM_TcAdderFarm(benchmark::State& state) {
  ParallelAddParams params;
  params.operations = static_cast<std::size_t>(state.range(0));
  params.width = 32;
  params.adders = 64;
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(
        run_parallel_add(params, presets::crs_cell(), rng));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcAdderFarm)->Arg(256)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Table 2 / 10^6 additions: conventional vs CIM ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "table2_math");
  print_analytical(w);
  print_functional(w);
  bench::write_bench_json(w, "table2_math");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
