// Serving front-end bench: replay a seeded 1M-request open-loop
// arrival trace through the batched WorkloadService and report
// sustained QPS, per-class p50/p99 latency, shed rate and mean batch
// occupancy — all derived from the deterministic virtual clock, so
// every gated number is machine-independent and CI-safe.
//
// Besides the interactive table it writes BENCH_serving.json and
// enforces the serving acceptance inline: request conservation
// (completed + shed == arrivals), batch-shape invariants, and a
// scalar-reference spot check (a sub-trace replayed request by
// request must match the batched payloads bitwise).  The process
// exits non-zero on any violation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/table.h"
#include "device/presets.h"
#include "monitor/export.h"
#include "monitor/sampler.h"
#include "monitor/slo.h"
#include "serving/service.h"
#include "serving/trace_gen.h"
#include "telemetry/attribution.h"

namespace {

using namespace memcim;
using namespace memcim::serving;

constexpr std::uint64_t kSeed = 0x5E4F;
constexpr std::size_t kRequests = 1'000'000;
constexpr double kMeanGapNs = 100.0;
constexpr std::size_t kScalarCheckRequests = 1500;
constexpr double kMaxShedRate = 0.5;

// Monitoring plane: ~1000 intervals across the baseline makespan.
constexpr VirtualNs kSamplePeriodNs = 100'000;
// Overload drill: 5x the baseline arrival rate into a queue 128x
// smaller — the availability SLO must burn and alert.
constexpr std::size_t kOverloadRequests = 60'000;
constexpr double kOverloadGapNs = 20.0;
constexpr std::size_t kOverloadQueueCapacity = 8;
constexpr VirtualNs kOverloadPeriodNs = 10'000;
// Probe overhead guard: wall-clock delta with/without the sampler.
constexpr std::size_t kOverheadRequests = 100'000;

TileFabricConfig fabric_config() {
  TileFabricConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.tile.rows = 4;
  cfg.tile.row_bits = 16;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

ServingConfig serving_config() {
  ServingConfig cfg;
  cfg.queue_capacity = 1024;
  cfg.workload.add_width = 16;
  cfg.workload.adders_per_tile = 4;
  cfg.workload.cam.rows = 4;
  cfg.workload.cam.word_bits = 16;
  cfg.workload.cam.cell = presets::crs_cell();
  return cfg;
}

TraceParams trace_params(std::size_t requests) {
  TraceParams p;
  p.seed = kSeed;
  p.requests = requests;
  p.mean_interarrival_ns = kMeanGapNs;
  p.kmer_key_bits = 16;
  p.cam_key_bits = 16;
  p.add_width = 16;
  return p;
}

struct World {
  std::vector<std::vector<bool>> kmer_db;
  std::vector<std::vector<bool>> cam_rows;
  World() {
    Rng rng(kSeed ^ 0xD8);
    kmer_db = random_words(16, 16, rng);
    cam_rows = random_words(16, 16, rng);
  }
};

struct ClassReport {
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

ServiceRunResult run_trace(const World& world,
                           const std::vector<Request>& trace,
                           serving::ServiceProbe* probe = nullptr,
                           const ServingConfig& cfg = serving_config()) {
  TileFabric fabric(fabric_config());
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  svc.set_probe(probe);
  return svc.run(trace);
}

void fill_percentiles(std::array<ClassReport, kRequestClasses>& classes) {
  const telemetry::MetricsSnapshot snap =
      telemetry::Registry::global().snapshot();
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    const std::string name =
        std::string("serving.latency_ns.") +
        to_string(static_cast<RequestClass>(c));
    const telemetry::HistogramSample* h = snap.histogram(name);
    if (h == nullptr) continue;
    classes[c].p50_ns = h->p50();
    classes[c].p99_ns = h->p99();
  }
}

void print_report(const ServiceRunStats& stats,
                  const std::array<ClassReport, kRequestClasses>& classes) {
  std::cout << "sustained QPS (virtual): "
            << fixed_string(stats.sustained_qps() / 1e6, 3) << " M/s,  "
            << "shed rate: " << fixed_string(stats.shed_rate(), 4) << ",  "
            << "mean occupancy: " << fixed_string(stats.mean_occupancy(), 2)
            << " lanes\n\n";
  TextTable t({"class", "arrivals", "completed", "shed", "p50 (ns)",
               "p99 (ns)"});
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    const ClassReport& r = classes[c];
    t.add_row({to_string(static_cast<RequestClass>(c)),
               std::to_string(r.arrivals), std::to_string(r.completed),
               std::to_string(r.shed), fixed_string(r.p50_ns, 0),
               fixed_string(r.p99_ns, 0)});
  }
  std::cout << t.to_text() << '\n';
}

/// Replay a short sub-trace both batched and request-by-request; every
/// batched payload must equal the scalar execution bitwise.
bool scalar_spot_check(const World& world) {
  TraceParams params = trace_params(kScalarCheckRequests);
  const std::vector<Request> trace = generate_trace(params);
  const ServiceRunResult batched = run_trace(world, trace);
  ServingConfig cfg = serving_config();
  const std::vector<Response> scalar = scalar_reference(
      fabric_config(), cfg.workload, world.kmer_db, world.cam_rows, trace);
  std::map<std::uint64_t, const Response*> golden;
  for (const Response& r : scalar) golden[r.id] = &r;
  for (const Response& r : batched.responses) {
    const auto it = golden.find(r.id);
    if (it == golden.end() || !payload_equal(r, *it->second)) {
      std::cerr << "ACCEPTANCE FAIL: batched payload for request " << r.id
                << " diverges from the scalar reference\n";
      return false;
    }
  }
  return true;
}

/// Per-class worst-latency responses, exported as OpenMetrics
/// exemplars so the .prom histogram links straight into the
/// Chrome-trace timeline via trace id.
std::vector<monitor::Exemplar> latency_exemplars(
    const ServiceRunResult& result) {
  std::array<const Response*, kRequestClasses> worst{};
  for (const Response& r : result.responses) {
    const std::size_t c = static_cast<std::size_t>(r.cls);
    if (worst[c] == nullptr || r.latency() > worst[c]->latency())
      worst[c] = &r;
  }
  std::vector<monitor::Exemplar> out;
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    if (worst[c] == nullptr) continue;
    monitor::Exemplar ex;
    ex.metric = std::string("serving.latency_ns.") +
                std::string(to_string(static_cast<RequestClass>(c)));
    ex.value = static_cast<double>(worst[c]->latency());
    ex.trace_id = worst[c]->trace_id;
    ex.timestamp_ns = worst[c]->completed;
    out.push_back(ex);
  }
  return out;
}

struct OverloadReport {
  std::uint64_t alerts_fired = 0;
  std::uint64_t burn_rate_alerts = 0;
  double shed_rate = 0.0;
  std::uint64_t intervals = 0;
};

/// Drive the service far past its admission capacity and count what
/// the SLO engine does about it.  A healthy monitoring plane MUST
/// alert here — a drill that stays green fails the bench.
OverloadReport overload_drill(const World& world) {
  TraceParams params = trace_params(kOverloadRequests);
  params.mean_interarrival_ns = kOverloadGapNs;
  ServingConfig cfg = serving_config();
  cfg.queue_capacity = kOverloadQueueCapacity;
  monitor::SloEngine engine(
      monitor::default_serving_slos(kOverloadQueueCapacity));
  monitor::TimeSeriesSampler sampler({kOverloadPeriodNs, 4096}, &engine);
  const std::vector<Request> trace = generate_trace(params);
  const ServiceRunResult result = run_trace(world, trace, &sampler, cfg);
  monitor::write_timeseries_json("TIMESERIES_serving_overload.json", sampler,
                                 &engine);
  OverloadReport report;
  report.alerts_fired = engine.alerts_fired();
  for (const monitor::HealthEvent& e : engine.events())
    if (e.kind == monitor::HealthEventKind::kBurnRateAlert)
      ++report.burn_rate_alerts;
  report.shed_rate = result.stats.shed_rate();
  report.intervals = sampler.total_intervals();
  return report;
}

/// Wall-clock cost of the monitoring plane: the same 100k-request
/// trace with and without the probe attached (best of 3 each, min is
/// the noise-robust estimator).  Floored at 1% so the regression gate
/// compares against a stable baseline instead of timer jitter.
double probe_overhead_pct(const World& world) {
  const std::vector<Request> trace =
      generate_trace(trace_params(kOverheadRequests));
  const auto time_run = [&](serving::ServiceProbe* probe) {
    double best = 0.0;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const ServiceRunResult r = run_trace(world, trace, probe);
      benchmark::DoNotOptimize(r.stats.makespan);
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (i == 0 || s < best) best = s;
    }
    return best;
  };
  const double bare = time_run(nullptr);
  monitor::TimeSeriesSampler sampler({kSamplePeriodNs, 4096});
  const double probed = time_run(&sampler);
  const double pct = bare > 0.0 ? (probed - bare) / bare * 100.0 : 0.0;
  return std::max(pct, 1.0);
}

int check_acceptance(const ServiceRunResult& result, const World& world,
                     bool* scalar_pass) {
  int failures = 0;
  const ServiceRunStats& stats = result.stats;
  if (stats.completed() + stats.shed() != stats.arrivals() ||
      stats.arrivals() != kRequests) {
    std::cerr << "ACCEPTANCE FAIL: request conservation violated ("
              << stats.completed() << " completed + " << stats.shed()
              << " shed != " << kRequests << " arrivals)\n";
    ++failures;
  }
  if (result.responses.size() != stats.completed()) {
    std::cerr << "ACCEPTANCE FAIL: response count diverges from stats\n";
    ++failures;
  }
  for (const Response& r : result.responses) {
    if (r.batch_lanes == 0 || r.batch_lanes > kPackedLanes) {
      std::cerr << "ACCEPTANCE FAIL: batch of " << r.batch_lanes
                << " lanes (limit " << kPackedLanes << ")\n";
      ++failures;
      break;
    }
  }
  if (stats.shed_rate() > kMaxShedRate) {
    std::cerr << "ACCEPTANCE FAIL: shed rate " << stats.shed_rate() << " > "
              << kMaxShedRate << "\n";
    ++failures;
  }
  *scalar_pass = scalar_spot_check(world);
  if (!*scalar_pass) ++failures;
  return failures;
}

struct MonitorReport {
  std::uint64_t baseline_alerts = 0;  ///< must stay 0 on the 1M trace
  std::uint64_t intervals = 0;
  std::uint64_t dropped = 0;
  double overhead_pct = 0.0;
  OverloadReport overload;            ///< must NOT stay quiet
  [[nodiscard]] bool pass() const {
    return baseline_alerts == 0 && overload.burn_rate_alerts > 0;
  }
};

void write_json(const ServiceRunStats& stats,
                const std::array<ClassReport, kRequestClasses>& classes,
                const MonitorReport& monitor, bool scalar_pass, bool pass) {
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "serving");
  w.key("seed").value(kSeed);
  w.key("requests").value(static_cast<std::uint64_t>(kRequests));
  w.key("mean_interarrival_ns").value(kMeanGapNs);
  const ServingConfig cfg = serving_config();
  const TileFabricConfig fab = fabric_config();
  w.key("workload").begin_object();
  w.key("fabric_tiles").value(static_cast<std::uint64_t>(fab.width * fab.height));
  w.key("tile_rows").value(static_cast<std::uint64_t>(fab.tile.rows));
  w.key("row_bits").value(static_cast<std::uint64_t>(fab.tile.row_bits));
  w.key("cam_rows").value(static_cast<std::uint64_t>(cfg.workload.cam.rows));
  w.key("add_width").value(static_cast<std::uint64_t>(cfg.workload.add_width));
  w.key("queue_capacity").value(static_cast<std::uint64_t>(cfg.queue_capacity));
  w.key("window_timeout_ns").value(cfg.coalescer.window_timeout);
  w.key("max_lanes").value(static_cast<std::uint64_t>(cfg.coalescer.max_lanes));
  w.end_object();
  w.key("totals").begin_object();
  w.key("arrivals").value(stats.arrivals());
  w.key("completed").value(stats.completed());
  w.key("shed").value(stats.shed());
  w.key("batches").value(stats.batches);
  w.key("partial_batches").value(stats.partial_batches);
  w.key("flits").value(stats.flits);
  w.key("makespan_ns").value(stats.makespan);
  w.key("busy_ns").value(stats.busy_ns);
  w.key("sustained_qps").value(stats.sustained_qps());
  w.key("shed_rate").value(stats.shed_rate());
  w.key("mean_batch_occupancy").value(stats.mean_occupancy());
  w.key("compute_energy_j").value(stats.compute_energy.value());
  w.key("noc_energy_j").value(stats.noc_energy.value());
  w.end_object();
  w.key("classes").begin_array();
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    const ClassReport& r = classes[c];
    w.begin_object();
    w.key("class").value(to_string(static_cast<RequestClass>(c)));
    w.key("arrivals").value(r.arrivals);
    w.key("completed").value(r.completed);
    w.key("shed").value(r.shed);
    w.key("p50_ns").value(r.p50_ns);
    w.key("p99_ns").value(r.p99_ns);
    w.end_object();
  }
  w.end_array();
  w.key("monitor").begin_object();
  w.key("period_ns").value(kSamplePeriodNs);
  w.key("intervals").value(monitor.intervals);
  w.key("dropped").value(monitor.dropped);
  w.key("overhead_pct").value(monitor.overhead_pct);
  w.end_object();
  w.key("slo").begin_object();
  w.key("alerts_fired").value(monitor.baseline_alerts);
  w.key("overload").begin_object();
  w.key("requests").value(static_cast<std::uint64_t>(kOverloadRequests));
  w.key("mean_interarrival_ns").value(kOverloadGapNs);
  w.key("queue_capacity")
      .value(static_cast<std::uint64_t>(kOverloadQueueCapacity));
  w.key("intervals").value(monitor.overload.intervals);
  w.key("alerts_fired").value(monitor.overload.alerts_fired);
  w.key("burn_rate_alerts").value(monitor.overload.burn_rate_alerts);
  w.key("shed_rate").value(monitor.overload.shed_rate);
  w.end_object();
  w.key("pass").value(monitor.pass());
  w.end_object();
  w.key("acceptance").begin_object();
  w.key("scalar_check_requests")
      .value(static_cast<std::uint64_t>(kScalarCheckRequests));
  w.key("scalar_check_pass").value(scalar_pass);
  w.key("max_shed_rate").value(kMaxShedRate);
  w.key("pass").value(pass);
  w.end_object();
  bench::write_bench_json(w, "serving");
}

void BM_ServeTrace(benchmark::State& state) {
  const std::size_t requests = static_cast<std::size_t>(state.range(0));
  const World world;
  const std::vector<Request> trace = generate_trace(trace_params(requests));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trace(world, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_ServeTrace)->Arg(1000)->Arg(10000);

void BM_ScalarReference(benchmark::State& state) {
  const std::size_t requests = static_cast<std::size_t>(state.range(0));
  const World world;
  const std::vector<Request> trace = generate_trace(trace_params(requests));
  const ServingConfig cfg = serving_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scalar_reference(fabric_config(), cfg.workload,
                                              world.kmer_db, world.cam_rows,
                                              trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_ScalarReference)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Batched request serving (1M-request trace replay) ===\n"
            << "thread pool: " << parallel_threads()
            << " workers (override with MEMCIM_THREADS)\n\n";

  telemetry::set_enabled(true);
  telemetry::Registry::global().reset();
  telemetry::AttributionBook::global().reset();

  const World world;
  const std::vector<Request> trace = generate_trace(trace_params(kRequests));

  // The monitored baseline run: the sampler closes an interval every
  // kSamplePeriodNs of virtual time and the SLO engine judges each
  // one.  The healthy 1M trace must come out with zero alerts.
  monitor::SloEngine engine(
      monitor::default_serving_slos(serving_config().queue_capacity));
  monitor::TimeSeriesSampler sampler({kSamplePeriodNs, 4096}, &engine);
  const ServiceRunResult result = run_trace(world, trace, &sampler);
  monitor::write_timeseries_json("TIMESERIES_serving.json", sampler, &engine);

  std::array<ClassReport, kRequestClasses> classes{};
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    classes[c].arrivals = result.stats.per_class[c].arrivals;
    classes[c].completed = result.stats.per_class[c].completed;
    classes[c].shed = result.stats.per_class[c].shed;
  }
  fill_percentiles(classes);
  print_report(result.stats, classes);

  // OpenMetrics exposition of the run's registry, with the worst
  // per-class latencies as exemplars pointing at their trace ids.
  monitor::write_openmetrics("BENCH_serving.prom",
                             telemetry::Registry::global().snapshot(),
                             latency_exemplars(result));

  MonitorReport mon;
  mon.baseline_alerts = engine.alerts_fired();
  mon.intervals = sampler.total_intervals();
  mon.dropped = sampler.dropped();
  mon.overhead_pct = probe_overhead_pct(world);
  mon.overload = overload_drill(world);
  std::cout << "monitor: " << mon.intervals << " intervals at "
            << kSamplePeriodNs << " ns, " << mon.baseline_alerts
            << " baseline alert(s), probe overhead "
            << fixed_string(mon.overhead_pct, 2) << "%\n"
            << "overload drill: shed rate "
            << fixed_string(mon.overload.shed_rate, 4) << ", "
            << mon.overload.burn_rate_alerts << " burn-rate alert(s), "
            << mon.overload.alerts_fired << " alert(s) total\n\n";

  bool scalar_pass = false;
  int failures = check_acceptance(result, world, &scalar_pass);
  if (mon.baseline_alerts != 0) {
    std::cerr << "ACCEPTANCE FAIL: " << mon.baseline_alerts
              << " SLO alert(s) fired on the healthy baseline trace\n";
    ++failures;
  }
  if (mon.overload.burn_rate_alerts == 0) {
    std::cerr << "ACCEPTANCE FAIL: overload drill fired no burn-rate "
              << "alert (the monitoring plane is asleep)\n";
    ++failures;
  }
  write_json(result.stats, classes, mon, scalar_pass, failures == 0);
  if (failures > 0) {
    std::cerr << failures << " acceptance violation(s)\n";
    return 1;
  }
  std::cout << "Acceptance: conservation holds, batches well-formed, "
            << "scalar spot check (" << kScalarCheckRequests
            << " requests) bitwise equal, SLO plane green on baseline "
            << "and loud under overload\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
