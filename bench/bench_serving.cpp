// Serving front-end bench: replay a seeded 1M-request open-loop
// arrival trace through the batched WorkloadService and report
// sustained QPS, per-class p50/p99 latency, shed rate and mean batch
// occupancy — all derived from the deterministic virtual clock, so
// every gated number is machine-independent and CI-safe.
//
// Besides the interactive table it writes BENCH_serving.json and
// enforces the serving acceptance inline: request conservation
// (completed + shed == arrivals), batch-shape invariants, and a
// scalar-reference spot check (a sub-trace replayed request by
// request must match the batched payloads bitwise).  The process
// exits non-zero on any violation.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/table.h"
#include "device/presets.h"
#include "serving/service.h"
#include "serving/trace_gen.h"

namespace {

using namespace memcim;
using namespace memcim::serving;

constexpr std::uint64_t kSeed = 0x5E4F;
constexpr std::size_t kRequests = 1'000'000;
constexpr double kMeanGapNs = 100.0;
constexpr std::size_t kScalarCheckRequests = 1500;
constexpr double kMaxShedRate = 0.5;

TileFabricConfig fabric_config() {
  TileFabricConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.tile.rows = 4;
  cfg.tile.row_bits = 16;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

ServingConfig serving_config() {
  ServingConfig cfg;
  cfg.queue_capacity = 1024;
  cfg.workload.add_width = 16;
  cfg.workload.adders_per_tile = 4;
  cfg.workload.cam.rows = 4;
  cfg.workload.cam.word_bits = 16;
  cfg.workload.cam.cell = presets::crs_cell();
  return cfg;
}

TraceParams trace_params(std::size_t requests) {
  TraceParams p;
  p.seed = kSeed;
  p.requests = requests;
  p.mean_interarrival_ns = kMeanGapNs;
  p.kmer_key_bits = 16;
  p.cam_key_bits = 16;
  p.add_width = 16;
  return p;
}

struct World {
  std::vector<std::vector<bool>> kmer_db;
  std::vector<std::vector<bool>> cam_rows;
  World() {
    Rng rng(kSeed ^ 0xD8);
    kmer_db = random_words(16, 16, rng);
    cam_rows = random_words(16, 16, rng);
  }
};

struct ClassReport {
  std::uint64_t arrivals = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

ServiceRunResult run_trace(const World& world,
                           const std::vector<Request>& trace) {
  TileFabric fabric(fabric_config());
  WorkloadService svc(fabric, serving_config(), world.kmer_db, world.cam_rows);
  return svc.run(trace);
}

void fill_percentiles(std::array<ClassReport, kRequestClasses>& classes) {
  const telemetry::MetricsSnapshot snap =
      telemetry::Registry::global().snapshot();
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    const std::string name =
        std::string("serving.latency_ns.") +
        to_string(static_cast<RequestClass>(c));
    const telemetry::HistogramSample* h = snap.histogram(name);
    if (h == nullptr) continue;
    classes[c].p50_ns = h->p50();
    classes[c].p99_ns = h->p99();
  }
}

void print_report(const ServiceRunStats& stats,
                  const std::array<ClassReport, kRequestClasses>& classes) {
  std::cout << "sustained QPS (virtual): "
            << fixed_string(stats.sustained_qps() / 1e6, 3) << " M/s,  "
            << "shed rate: " << fixed_string(stats.shed_rate(), 4) << ",  "
            << "mean occupancy: " << fixed_string(stats.mean_occupancy(), 2)
            << " lanes\n\n";
  TextTable t({"class", "arrivals", "completed", "shed", "p50 (ns)",
               "p99 (ns)"});
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    const ClassReport& r = classes[c];
    t.add_row({to_string(static_cast<RequestClass>(c)),
               std::to_string(r.arrivals), std::to_string(r.completed),
               std::to_string(r.shed), fixed_string(r.p50_ns, 0),
               fixed_string(r.p99_ns, 0)});
  }
  std::cout << t.to_text() << '\n';
}

/// Replay a short sub-trace both batched and request-by-request; every
/// batched payload must equal the scalar execution bitwise.
bool scalar_spot_check(const World& world) {
  TraceParams params = trace_params(kScalarCheckRequests);
  const std::vector<Request> trace = generate_trace(params);
  const ServiceRunResult batched = run_trace(world, trace);
  ServingConfig cfg = serving_config();
  const std::vector<Response> scalar = scalar_reference(
      fabric_config(), cfg.workload, world.kmer_db, world.cam_rows, trace);
  std::map<std::uint64_t, const Response*> golden;
  for (const Response& r : scalar) golden[r.id] = &r;
  for (const Response& r : batched.responses) {
    const auto it = golden.find(r.id);
    if (it == golden.end() || !payload_equal(r, *it->second)) {
      std::cerr << "ACCEPTANCE FAIL: batched payload for request " << r.id
                << " diverges from the scalar reference\n";
      return false;
    }
  }
  return true;
}

int check_acceptance(const ServiceRunResult& result, const World& world,
                     bool* scalar_pass) {
  int failures = 0;
  const ServiceRunStats& stats = result.stats;
  if (stats.completed() + stats.shed() != stats.arrivals() ||
      stats.arrivals() != kRequests) {
    std::cerr << "ACCEPTANCE FAIL: request conservation violated ("
              << stats.completed() << " completed + " << stats.shed()
              << " shed != " << kRequests << " arrivals)\n";
    ++failures;
  }
  if (result.responses.size() != stats.completed()) {
    std::cerr << "ACCEPTANCE FAIL: response count diverges from stats\n";
    ++failures;
  }
  for (const Response& r : result.responses) {
    if (r.batch_lanes == 0 || r.batch_lanes > kPackedLanes) {
      std::cerr << "ACCEPTANCE FAIL: batch of " << r.batch_lanes
                << " lanes (limit " << kPackedLanes << ")\n";
      ++failures;
      break;
    }
  }
  if (stats.shed_rate() > kMaxShedRate) {
    std::cerr << "ACCEPTANCE FAIL: shed rate " << stats.shed_rate() << " > "
              << kMaxShedRate << "\n";
    ++failures;
  }
  *scalar_pass = scalar_spot_check(world);
  if (!*scalar_pass) ++failures;
  return failures;
}

void write_json(const ServiceRunStats& stats,
                const std::array<ClassReport, kRequestClasses>& classes,
                bool scalar_pass, bool pass) {
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "serving");
  w.key("seed").value(kSeed);
  w.key("requests").value(static_cast<std::uint64_t>(kRequests));
  w.key("mean_interarrival_ns").value(kMeanGapNs);
  const ServingConfig cfg = serving_config();
  const TileFabricConfig fab = fabric_config();
  w.key("workload").begin_object();
  w.key("fabric_tiles").value(static_cast<std::uint64_t>(fab.width * fab.height));
  w.key("tile_rows").value(static_cast<std::uint64_t>(fab.tile.rows));
  w.key("row_bits").value(static_cast<std::uint64_t>(fab.tile.row_bits));
  w.key("cam_rows").value(static_cast<std::uint64_t>(cfg.workload.cam.rows));
  w.key("add_width").value(static_cast<std::uint64_t>(cfg.workload.add_width));
  w.key("queue_capacity").value(static_cast<std::uint64_t>(cfg.queue_capacity));
  w.key("window_timeout_ns").value(cfg.coalescer.window_timeout);
  w.key("max_lanes").value(static_cast<std::uint64_t>(cfg.coalescer.max_lanes));
  w.end_object();
  w.key("totals").begin_object();
  w.key("arrivals").value(stats.arrivals());
  w.key("completed").value(stats.completed());
  w.key("shed").value(stats.shed());
  w.key("batches").value(stats.batches);
  w.key("partial_batches").value(stats.partial_batches);
  w.key("flits").value(stats.flits);
  w.key("makespan_ns").value(stats.makespan);
  w.key("busy_ns").value(stats.busy_ns);
  w.key("sustained_qps").value(stats.sustained_qps());
  w.key("shed_rate").value(stats.shed_rate());
  w.key("mean_batch_occupancy").value(stats.mean_occupancy());
  w.key("compute_energy_j").value(stats.compute_energy.value());
  w.key("noc_energy_j").value(stats.noc_energy.value());
  w.end_object();
  w.key("classes").begin_array();
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    const ClassReport& r = classes[c];
    w.begin_object();
    w.key("class").value(to_string(static_cast<RequestClass>(c)));
    w.key("arrivals").value(r.arrivals);
    w.key("completed").value(r.completed);
    w.key("shed").value(r.shed);
    w.key("p50_ns").value(r.p50_ns);
    w.key("p99_ns").value(r.p99_ns);
    w.end_object();
  }
  w.end_array();
  w.key("acceptance").begin_object();
  w.key("scalar_check_requests")
      .value(static_cast<std::uint64_t>(kScalarCheckRequests));
  w.key("scalar_check_pass").value(scalar_pass);
  w.key("max_shed_rate").value(kMaxShedRate);
  w.key("pass").value(pass);
  w.end_object();
  bench::write_bench_json(w, "serving");
}

void BM_ServeTrace(benchmark::State& state) {
  const std::size_t requests = static_cast<std::size_t>(state.range(0));
  const World world;
  const std::vector<Request> trace = generate_trace(trace_params(requests));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_trace(world, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_ServeTrace)->Arg(1000)->Arg(10000);

void BM_ScalarReference(benchmark::State& state) {
  const std::size_t requests = static_cast<std::size_t>(state.range(0));
  const World world;
  const std::vector<Request> trace = generate_trace(trace_params(requests));
  const ServingConfig cfg = serving_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scalar_reference(fabric_config(), cfg.workload,
                                              world.kmer_db, world.cam_rows,
                                              trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_ScalarReference)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Batched request serving (1M-request trace replay) ===\n"
            << "thread pool: " << parallel_threads()
            << " workers (override with MEMCIM_THREADS)\n\n";

  telemetry::set_enabled(true);
  telemetry::Registry::global().reset();

  const World world;
  const std::vector<Request> trace = generate_trace(trace_params(kRequests));
  const ServiceRunResult result = run_trace(world, trace);

  std::array<ClassReport, kRequestClasses> classes{};
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    classes[c].arrivals = result.stats.per_class[c].arrivals;
    classes[c].completed = result.stats.per_class[c].completed;
    classes[c].shed = result.stats.per_class[c].shed;
  }
  fill_percentiles(classes);
  print_report(result.stats, classes);

  bool scalar_pass = false;
  const int failures = check_acceptance(result, world, &scalar_pass);
  write_json(result.stats, classes, scalar_pass, failures == 0);
  if (failures > 0) {
    std::cerr << failures << " acceptance violation(s)\n";
    return 1;
  }
  std::cout << "Acceptance: conservation holds, batches well-formed, "
            << "scalar spot check (" << kScalarCheckRequests
            << " requests) bitwise equal\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
