// Ablation: bias schemes (Section IV.B, third sneak-path solution
// class).  For each scheme we report, across array sizes:
//   * worst-case read margin,
//   * read power proxy (selected-row source current),
//   * half-select write disturb after a pulse train.
// The design tension: floating is cheap but unreadable at scale;
// grounded reads cleanly but burns the whole row; V/2 and V/3 trade
// margin against disturb and driver effort.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_json.h"
#include "common/table.h"
#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace {

using namespace memcim;

CrossbarConfig lumped(std::size_t n = 0) {
  CrossbarConfig cfg;
  cfg.model = NetworkModel::kLumpedLines;
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

const BiasScheme kSchemes[] = {BiasScheme::kFloating, BiasScheme::kGrounded,
                               BiasScheme::kVHalf, BiasScheme::kVThird};

void print_read_margins(telemetry::JsonWriter& w) {
  const std::vector<std::size_t> sizes{8, 32, 128};
  std::vector<std::string> headers{"Scheme"};
  for (std::size_t n : sizes) {
    headers.push_back("margin N=" + std::to_string(n));
    headers.push_back("row I N=" + std::to_string(n));
  }
  TextTable t(headers);
  const VcmDevice proto(presets::vcm_taox(), 0.0);
  w.key("read_margins").begin_array();
  for (BiasScheme scheme : kSchemes) {
    std::vector<std::string> row{to_string(scheme)};
    for (std::size_t n : sizes) {
      CrossbarArray array(lumped(n), proto);
      ReadConfig rc;
      rc.scheme = scheme;
      const ReadMeasurement m = measure_read_margin(array, 0, 0, rc);
      row.push_back(fixed_string(m.margin, 4));
      row.push_back(si_string(m.i_source_lrs.value(), "A"));
      w.begin_object();
      w.key("scheme").value(to_string(scheme));
      w.key("size").value(static_cast<std::uint64_t>(n));
      w.key("margin").value(m.margin);
      w.key("row_current_a").value(m.i_source_lrs.value());
      w.end_object();
    }
    t.add_row(row);
  }
  w.end_array();
  std::cout << t.to_text() << '\n';
}

void print_write_disturb(telemetry::JsonWriter& w) {
  TextTable t({"Scheme", "write ok", "max disturb (100 SET pulses)"});
  w.key("write_disturb").begin_array();
  for (BiasScheme scheme : kSchemes) {
    CrossbarArray array(lumped(8), VcmDevice(presets::vcm_taox(), 0.0));
    WriteConfig wc;
    wc.v_write = presets::vcm_taox().v_write;
    wc.pulse = presets::vcm_taox().t_switch;
    wc.scheme = scheme;
    WriteResult last{};
    double worst = 0.0;
    for (int k = 0; k < 100; ++k) {
      last = write_bit(array, 0, 0, true, wc);
      worst = std::max(worst, last.max_disturb);
    }
    // Cumulative: the residual states of all non-target cells.
    double residual = 0.0;
    for (std::size_t r = 0; r < 8; ++r)
      for (std::size_t c = 0; c < 8; ++c)
        if (!(r == 0 && c == 0))
          residual = std::max(residual, array.device(r, c).state());
    t.add_row({to_string(scheme), last.success ? "yes" : "no",
               fixed_string(residual, 4)});
    w.begin_object();
    w.key("scheme").value(to_string(scheme));
    w.key("write_ok").value(last.success);
    w.key("max_residual_disturb").value(residual);
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "Grounded writes put the full V_w across every cell of the\n"
               "selected row — they overwrite it wholesale (disturb 1.0), so\n"
               "grounding is a READ scheme only.  V/2 creeps half-selected\n"
               "cells exponentially slowly; V/3 minimizes the worst stress\n"
               "(V_w/3 < V_th) at the cost of driving every line.\n\n";
}

void BM_MarginMeasurement(benchmark::State& state) {
  const VcmDevice proto(presets::vcm_taox(), 0.0);
  const auto scheme = static_cast<BiasScheme>(state.range(0));
  for (auto _ : state) {
    CrossbarArray array(lumped(32), proto);
    ReadConfig rc;
    rc.scheme = scheme;
    benchmark::DoNotOptimize(measure_read_margin(array, 0, 0, rc));
  }
}
BENCHMARK(BM_MarginMeasurement)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: bias schemes ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "ablation_bias");
  print_read_margins(w);
  print_write_disturb(w);
  bench::write_bench_json(w, "ablation_bias");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
