// Ablation: Table 2 sensitivity to the conventional machine's cache hit
// rate.  The paper fixes 50 % (DNA) and 98 % (math); here we sweep the
// hit rate and ask where — if anywhere — the conventional machine
// catches up with CIM on each metric.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_json.h"
#include "arch/cost_model.h"
#include "common/table.h"
#include "telemetry/json_writer.h"

namespace {

using namespace memcim;

void print_sweep(telemetry::JsonWriter& w) {
  const Table1 t = paper_table1();
  TextTable table({"hit rate", "Conv ED/op", "CIM ED/op", "ED gain",
                   "Conv eff", "CIM eff", "eff gain"});
  w.key("hit_rate_sweep").begin_array();
  for (double hit : {0.10, 0.50, 0.90, 0.98, 0.999, 1.0}) {
    WorkloadSpec spec = math_workload_spec(t);
    spec.hit_ratio = hit;
    const ArchCost conv = evaluate_conventional(spec, t);
    const ArchCost cim = evaluate_cim(spec, t);
    w.begin_object();
    w.key("hit_rate").value(hit);
    w.key("conv_ed_per_op").value(conv.energy_delay_per_op());
    w.key("cim_ed_per_op").value(cim.energy_delay_per_op());
    w.key("conv_efficiency").value(conv.computing_efficiency());
    w.key("cim_efficiency").value(cim.computing_efficiency());
    w.end_object();
    table.add_row(
        {fixed_string(hit, 3), sci_string(conv.energy_delay_per_op(), 3),
         sci_string(cim.energy_delay_per_op(), 3),
         fixed_string(conv.energy_delay_per_op() / cim.energy_delay_per_op(),
                      1) +
             "x",
         sci_string(conv.computing_efficiency(), 3),
         sci_string(cim.computing_efficiency(), 3),
         fixed_string(
             cim.computing_efficiency() / conv.computing_efficiency(), 1) +
             "x"});
  }
  w.end_array();
  std::cout << table.to_text() << '\n'
            << "Even a perfect cache (hit = 1.0) leaves CIM ahead on both\n"
               "energy metrics: the static cache power term never goes away\n"
               "— the paper's \"practically zero leakage\" argument.\n\n";
}

void print_miss_penalty_sweep(telemetry::JsonWriter& w) {
  const Table1 t = paper_table1();
  TextTable table({"miss penalty [cy]", "Conv T/op", "CIM T/op",
                   "CIM latency still worse?"});
  w.key("miss_penalty_sweep").begin_array();
  for (double penalty : {10.0, 50.0, 165.0, 500.0}) {
    Table1 mod = t;
    mod.cache_math.miss_penalty_cycles = penalty;
    const WorkloadSpec spec = math_workload_spec(mod);
    const ArchCost conv = evaluate_conventional(spec, mod);
    const ArchCost cim = evaluate_cim(spec, mod);
    w.begin_object();
    w.key("miss_penalty_cycles").value(penalty);
    w.key("conv_time_per_op_s").value(conv.time_per_op.value());
    w.key("cim_time_per_op_s").value(cim.time_per_op.value());
    w.end_object();
    table.add_row({fixed_string(penalty, 0),
                   si_string(conv.time_per_op.value(), "s"),
                   si_string(cim.time_per_op.value(), "s"),
                   cim.time_per_op > conv.time_per_op ? "yes" : "no"});
  }
  w.end_array();
  std::cout << table.to_text() << '\n'
            << "Per-op latency favours CMOS (252 ps CLA vs 26.6 ns TC-adder)\n"
               "— CIM wins on energy and parallel density, not single-op\n"
               "latency.  This is visible in the paper's own Table 1.\n\n";
}

void BM_SweepPoint(benchmark::State& state) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.hit_ratio = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_conventional(spec, t));
    benchmark::DoNotOptimize(evaluate_cim(spec, t));
  }
}
BENCHMARK(BM_SweepPoint)->Arg(50)->Arg(98);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: cache hit-rate sensitivity (Table 2, math) ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "ablation_cache");
  print_sweep(w);
  print_miss_penalty_sweep(w);
  w.end_object();
  std::ofstream("BENCH_ablation_cache.json") << w.str();
  std::cout << "Wrote BENCH_ablation_cache.json\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
