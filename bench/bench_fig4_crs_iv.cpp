// Figure 4 — the CRS cell I–V characteristic: the butterfly trace with
// thresholds V_th,1..V_th,4 and the state sequence '0' → ON → '1' on
// the positive branch, '1' → ON → '0' on the negative branch.
//
// The trace comes from the circuit-level CRS (two anti-serial VCM
// devices, internal node solved self-consistently), swept
// quasi-statically.  We print the I–V series (decimated) and the
// detected threshold crossings next to the behavioural model's
// configured thresholds.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_json.h"
#include "common/table.h"
#include "device/presets.h"
#include "telemetry/json_writer.h"

namespace {

using namespace memcim;
using namespace memcim::literals;

void print_trace(telemetry::JsonWriter& w) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kZero);
  const auto trace = sweep_iv(*crs, 5.0_V, 120, 100.0_ps);

  TextTable t({"V [V]", "I", "state"});
  w.key("iv_trace").begin_array();
  for (std::size_t i = 0; i < trace.size(); i += 8) {
    t.add_row({fixed_string(trace[i].v.value(), 3),
               si_string(trace[i].i.value(), "A"),
               to_string(trace[i].state)});
    w.begin_object();
    w.key("v").value(trace[i].v.value());
    w.key("i").value(trace[i].i.value());
    w.key("state").value(to_string(trace[i].state));
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n';

  TextTable c({"Crossing", "V [V]", "From", "To"});
  w.key("vcm_crossings").begin_array();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].state == trace[i - 1].state) continue;
    const char* label = "";
    if (trace[i - 1].state == CrsState::kZero &&
        trace[i].state == CrsState::kOn)
      label = "V_th1 ('0'->ON)";
    else if (trace[i - 1].state == CrsState::kOn &&
             trace[i].state == CrsState::kOne)
      label = "V_th2 (ON->'1')";
    else if (trace[i - 1].state == CrsState::kOne &&
             trace[i].state == CrsState::kOn)
      label = "V_th3 ('1'->ON)";
    else if (trace[i - 1].state == CrsState::kOn &&
             trace[i].state == CrsState::kZero)
      label = "V_th4 (ON->'0')";
    c.add_row({label, fixed_string(trace[i].v.value(), 3),
               to_string(trace[i - 1].state), to_string(trace[i].state)});
    w.begin_object();
    w.key("label").value(label);
    w.key("v").value(trace[i].v.value());
    w.key("from").value(to_string(trace[i - 1].state));
    w.key("to").value(to_string(trace[i].state));
    w.end_object();
  }
  w.end_array();
  std::cout << c.to_text() << '\n'
            << "States '0' and '1' are both high-resistive below |V_th1| —\n"
               "\"no parasitic current sneak paths can arise\" (Sec. IV.B).\n"
               "Reading at V_read in (V_th1, V_th2) is destructive for '0'\n"
               "(the ON spike), hence the write-back in CrsMemory.\n\n";
}

void print_ecm_thresholds(telemetry::JsonWriter& w) {
  // The original Linn demonstration used an ECM (Ag) pair; its lower
  // write voltage moves the butterfly thresholds inward.
  auto crs = presets::make_crs_ecm();
  crs->force_state(CrsState::kZero);
  const auto trace = sweep_iv(*crs, 3.0_V, 120, 20.0_ns);
  TextTable c({"ECM-pair crossing", "V [V]"});
  w.key("ecm_crossings").begin_array();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].state == trace[i - 1].state) continue;
    c.add_row({std::string(to_string(trace[i - 1].state)) + " -> " +
                   to_string(trace[i].state),
               fixed_string(trace[i].v.value(), 3)});
    w.begin_object();
    w.key("from").value(to_string(trace[i - 1].state));
    w.key("to").value(to_string(trace[i].state));
    w.key("v").value(trace[i].v.value());
    w.end_object();
  }
  w.end_array();
  std::cout << c.to_text()
            << "\nSame butterfly from the Ag/ECM pair (Linn et al.'s\n"
               "original device), with thresholds set by the ECM write\n"
               "voltage instead of the TaOx one.\n\n";
}

void BM_IvSweep(benchmark::State& state) {
  for (auto _ : state) {
    auto crs = presets::make_crs_vcm();
    crs->force_state(CrsState::kZero);
    benchmark::DoNotOptimize(
        sweep_iv(*crs, 5.0_V, static_cast<std::size_t>(state.range(0)),
                 100.0_ps));
  }
}
BENCHMARK(BM_IvSweep)->Arg(50)->Arg(200);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figure 4: CRS cell I-V characteristic ===\n\n"
            << "Quasi-static sweep 0 -> +5V -> 0 -> -5V -> 0, circuit-level\n"
               "CRS (two anti-serial TaOx VCM devices):\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "fig4_crs_iv");
  print_trace(w);
  print_ecm_thresholds(w);
  w.end_object();
  std::ofstream("BENCH_fig4.json") << w.str();
  std::cout << "Wrote BENCH_fig4.json\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
