// Table 1 — "Assumptions made for conventional and CIM architectures".
// Prints the full assumption registry (the constants every other bench
// consumes), then times the evaluator that consumes them.
#include <benchmark/benchmark.h>

#include <iostream>

#include "eval/report.h"
#include "eval/table2.h"

namespace {

void BM_Table2Evaluation(benchmark::State& state) {
  const memcim::Table1 t = memcim::paper_table1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(memcim::make_table2(t));
  }
}
BENCHMARK(BM_Table2Evaluation);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Table 1: assumption registry (paper, DATE'15) ===\n\n"
            << memcim::render_table1(memcim::paper_table1()) << '\n';
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
