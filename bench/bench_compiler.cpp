// Compiler-pipeline bench: quantifies what the ISA pass pipeline and
// the keyed program cache buy, and guards both in CI.
//
// Three measurements, written to BENCH_compiler.json:
//
//  1. Pass pipeline — PassStats for the three cached workload kernels
//     (64-bit word equality, 32-bit masked equality, 32-bit ripple
//     adder): pulses and registers before/after optimization.
//     Acceptance: >= 5% of the recorded pulses removed on every kernel.
//  2. Compiled replay — the optimized 64-bit word-equality program
//     replayed across 10^6 windows on the packed engine vs the scalar
//     run_program_simd walk of the recorded source (measured on a
//     subsample and extrapolated), single thread.  The non-adder
//     counterpart of bench_logic_throughput's program-engine check.
//     Acceptance: >= 10x with bitwise-identical outputs.
//  3. Program cache — repeated cached_* lookups over the three kernels:
//     every shape compiles once and replays from the cache thereafter.
//     Acceptance: exactly one miss per kernel, everything else hits.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "isa/cache.h"
#include "isa/compiler.h"
#include "isa/kernels.h"
#include "logic/comparator.h"
#include "logic/ideal_fabric.h"
#include "logic/packed.h"
#include "logic/program.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace {

using namespace memcim;

[[nodiscard]] std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] std::vector<std::vector<bool>> random_windows(
    std::size_t inputs, std::size_t count, Rng& rng) {
  std::vector<std::vector<bool>> windows(count);
  for (auto& w : windows) {
    w.resize(inputs);
    for (std::size_t i = 0; i < inputs; ++i) w[i] = rng.bernoulli(0.5);
  }
  return windows;
}

constexpr std::size_t kEqualityBits = 64;
constexpr std::size_t kMaskedBits = 32;
constexpr std::size_t kAdderBits = 32;
constexpr std::size_t kWindows = 1'000'000;
constexpr std::size_t kScalarSample = 32'768;
constexpr double kSpeedupThreshold = 10.0;
/// The acceptance bar from the pipeline tests: >= 5% pulses removed.
constexpr double kReductionThreshold = 0.05;
constexpr std::size_t kCacheLookupsPerKernel = 256;

// --- 1. pass pipeline ------------------------------------------------------

struct KernelReport {
  std::string name;
  std::size_t bits = 0;
  isa::PassStats stats;
  double reduction = 0.0;
  bool pass = false;
};

KernelReport report_kernel(const std::string& name, std::size_t bits,
                           const isa::PassStats& stats) {
  KernelReport rep;
  rep.name = name;
  rep.bits = bits;
  rep.stats = stats;
  rep.reduction = static_cast<double>(stats.pulses_removed()) /
                  static_cast<double>(stats.pulses_before);
  rep.pass = rep.reduction >= kReductionThreshold;
  return rep;
}

std::vector<KernelReport> measure_pipeline() {
  std::vector<KernelReport> reps;
  reps.push_back(report_kernel("word_equality", kEqualityBits,
                               isa::cached_word_equality(kEqualityBits)->stats));
  reps.push_back(
      report_kernel("masked_equality", kMaskedBits,
                    isa::cached_masked_equality(kMaskedBits)->stats));
  reps.push_back(report_kernel("ripple_adder", kAdderBits,
                               isa::cached_ripple_adder(kAdderBits)->stats));
  return reps;
}

// --- 2. compiled replay vs scalar walk -------------------------------------

struct ReplayReport {
  std::uint64_t instructions_source = 0;
  std::uint64_t instructions_optimized = 0;
  double scalar_sample_ns = 0.0;
  double scalar_extrapolated_ns = 0.0;
  double packed_ns = 0.0;
  double speedup = 0.0;
  bool outputs_match = false;
  bool pass = false;
};

ReplayReport measure_replay() {
  ReplayReport rep;
  const std::shared_ptr<const isa::CompiledProgram> kernel =
      isa::cached_word_equality(kEqualityBits);
  rep.instructions_source = kernel->source.instructions.size();
  rep.instructions_optimized = kernel->optimized.instructions.size();

  Rng rng(0xC0DE);
  const auto windows = random_windows(kernel->source.inputs, kWindows, rng);
  const std::vector<std::vector<bool>> sample(
      windows.begin(), windows.begin() + kScalarSample);

  // Single thread: the acceptance criterion isolates the engine, not
  // the pool.
  set_parallel_threads(1);

  IdealFabric fabric;
  const std::uint64_t s0 = steady_ns();
  const SimdRunResult scalar = run_program_simd(kernel->source, fabric, sample);
  const std::uint64_t s1 = steady_ns();
  rep.scalar_sample_ns = static_cast<double>(s1 - s0);
  rep.scalar_extrapolated_ns = rep.scalar_sample_ns *
                               static_cast<double>(kWindows) /
                               static_cast<double>(kScalarSample);

  const std::uint64_t p0 = steady_ns();
  const PackedRunResult packed = run_program_packed(
      kernel->packed_optimized, windows, kernel->run_optimized);
  const std::uint64_t p1 = steady_ns();
  rep.packed_ns = static_cast<double>(p1 - p0);

  rep.outputs_match = true;
  for (std::size_t w = 0; w < kScalarSample; ++w)
    if (packed.outputs[w] != scalar.outputs[w]) rep.outputs_match = false;

  rep.speedup = rep.scalar_extrapolated_ns / rep.packed_ns;
  rep.pass = rep.outputs_match && rep.speedup >= kSpeedupThreshold;
  set_parallel_threads(0);
  return rep;
}

// --- 3. program cache ------------------------------------------------------

struct CacheReport {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  double hit_rate = 0.0;
  bool pass = false;
};

CacheReport measure_cache() {
  isa::ProgramCache& cache = isa::ProgramCache::global();
  cache.clear();
  for (std::size_t i = 0; i < kCacheLookupsPerKernel; ++i) {
    (void)isa::cached_word_equality(kEqualityBits);
    (void)isa::cached_masked_equality(kMaskedBits);
    (void)isa::cached_ripple_adder(kAdderBits);
  }
  CacheReport rep;
  rep.lookups = cache.hits() + cache.misses();
  rep.hits = cache.hits();
  rep.misses = cache.misses();
  rep.entries = cache.size();
  rep.hit_rate = static_cast<double>(rep.hits) /
                 static_cast<double>(rep.lookups);
  // Compile-once: one miss per kernel shape, everything else must hit.
  rep.pass = rep.misses == 3 && rep.entries == 3 &&
             rep.lookups == 3 * kCacheLookupsPerKernel;
  return rep;
}

// --- report ----------------------------------------------------------------

void write_report(const std::vector<KernelReport>& kernels,
                  const ReplayReport& replay, const CacheReport& cache) {
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "compiler");
  w.key("kernels").begin_array();
  for (const KernelReport& k : kernels) {
    w.begin_object();
    w.key("name").value(k.name);
    w.key("bits").value(static_cast<std::uint64_t>(k.bits));
    w.key("pulses_before").value(static_cast<std::uint64_t>(k.stats.pulses_before));
    w.key("pulses_after").value(static_cast<std::uint64_t>(k.stats.pulses_after));
    w.key("pulses_removed")
        .value(static_cast<std::uint64_t>(k.stats.pulses_removed()));
    w.key("reduction").value(k.reduction);
    w.key("registers_before")
        .value(static_cast<std::uint64_t>(k.stats.registers_before));
    w.key("registers_after")
        .value(static_cast<std::uint64_t>(k.stats.registers_after));
    w.key("known_state_removed")
        .value(static_cast<std::uint64_t>(k.stats.known_state_removed));
    w.key("strength_reduced")
        .value(static_cast<std::uint64_t>(k.stats.strength_reduced));
    w.key("implications_fused")
        .value(static_cast<std::uint64_t>(k.stats.implications_fused));
    w.key("dead_removed").value(static_cast<std::uint64_t>(k.stats.dead_removed));
    w.key("clears_inserted")
        .value(static_cast<std::uint64_t>(k.stats.clears_inserted));
    w.key("rounds").value(static_cast<std::uint64_t>(k.stats.rounds));
    w.key("threshold").value(kReductionThreshold);
    w.key("pass").value(k.pass);
    w.end_object();
  }
  w.end_array();
  w.key("replay").begin_object();
  w.key("workload").value("word_equality_64bit");
  w.key("windows").value(static_cast<std::uint64_t>(kWindows));
  w.key("instructions_source").value(replay.instructions_source);
  w.key("instructions_optimized").value(replay.instructions_optimized);
  w.key("scalar_windows_measured")
      .value(static_cast<std::uint64_t>(kScalarSample));
  w.key("scalar_sample_ns").value(replay.scalar_sample_ns);
  w.key("scalar_extrapolated_ns").value(replay.scalar_extrapolated_ns);
  w.key("packed_ns").value(replay.packed_ns);
  w.key("speedup").value(replay.speedup);
  w.key("outputs_match").value(replay.outputs_match);
  w.key("threshold").value(kSpeedupThreshold);
  w.key("pass").value(replay.pass);
  w.end_object();
  w.key("cache").begin_object();
  w.key("lookups").value(cache.lookups);
  w.key("hits").value(cache.hits);
  w.key("misses").value(cache.misses);
  w.key("entries").value(cache.entries);
  w.key("hit_rate").value(cache.hit_rate);
  w.key("pass").value(cache.pass);
  w.end_object();
  // Registry snapshot of the runs above: the compiler.* counters the
  // serving stack exports (docs/TELEMETRY.md) land in the perf record.
  const telemetry::MetricsSnapshot snap =
      telemetry::Registry::global().snapshot();
  w.key("telemetry").begin_object();
  for (const char* name :
       {"compiler.compiles", "compiler.pulses_removed",
        "compiler.registers_saved", "compiler.clears_inserted",
        "compiler.cache.hits", "compiler.cache.misses"})
    w.key(name).value(snap.counter(name));
  w.end_object();
  bench::write_bench_json(w, "compiler");
}

// --- google-benchmark micro-benches ----------------------------------------

void BM_CachedLookup(benchmark::State& state) {
  (void)isa::cached_word_equality(kEqualityBits);  // warm the cache
  for (auto _ : state) {
    auto program = isa::cached_word_equality(kEqualityBits);
    benchmark::DoNotOptimize(program.get());
  }
}
BENCHMARK(BM_CachedLookup);

void BM_OptimizeWordEquality64(benchmark::State& state) {
  const CimProgram program = record_program(
      2 * kEqualityBits, [&](Fabric& f, const std::vector<Reg>& in) {
        const std::span<const Reg> a(in.data(), kEqualityBits);
        const std::span<const Reg> b(in.data() + kEqualityBits, kEqualityBits);
        return word_equality(f, a, b);
      });
  for (auto _ : state) {
    const CimProgram optimized = isa::optimize_program(program, nullptr);
    benchmark::DoNotOptimize(optimized.instructions.data());
  }
}
BENCHMARK(BM_OptimizeWordEquality64);

void BM_CompiledReplayWordEq64(benchmark::State& state) {
  const auto kernel = isa::cached_word_equality(kEqualityBits);
  Rng rng(0x5EED);
  const auto windows = random_windows(kernel->source.inputs, 64, rng);
  for (auto _ : state) {
    const PackedRunResult r = run_program_packed(
        kernel->packed_optimized, windows, kernel->run_optimized);
    benchmark::DoNotOptimize(r.outputs.size());
  }
}
BENCHMARK(BM_CompiledReplayWordEq64);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Compiler pipeline bench ===\n\n";

  const std::vector<KernelReport> kernels = measure_pipeline();
  for (const KernelReport& k : kernels)
    std::cout << k.name << " (" << k.bits << " bits): " << k.stats.pulses_before
              << " -> " << k.stats.pulses_after << " pulses ("
              << k.reduction * 100.0 << "% removed), "
              << k.stats.registers_before << " -> " << k.stats.registers_after
              << " rows\n";
  std::cout << "\n";

  const ReplayReport replay = measure_replay();
  std::cout << "compiled replay (64-bit word equality, " << kWindows
            << " windows, 1 thread):\n"
            << "  scalar  " << replay.scalar_extrapolated_ns / 1e6
            << " ms (extrapolated from " << kScalarSample << " windows)\n"
            << "  packed  " << replay.packed_ns / 1e6 << " ms\n"
            << "  speedup " << replay.speedup << "x (threshold "
            << kSpeedupThreshold << "x, outputs "
            << (replay.outputs_match ? "match" : "MISMATCH") << ")\n\n";

  const CacheReport cache = measure_cache();
  std::cout << "program cache: " << cache.lookups << " lookups, "
            << cache.misses << " compiles, hit rate " << cache.hit_rate * 100.0
            << "%\n\n";

  write_report(kernels, replay, cache);

  bool ok = replay.pass && cache.pass;
  for (const KernelReport& k : kernels) ok = ok && k.pass;
  if (!ok) {
    std::cerr << "FAIL: compiler acceptance (>= "
              << kReductionThreshold * 100.0
              << "% pulses removed per kernel, replay speedup >= "
              << kSpeedupThreshold << "x, compile-once cache)\n";
    return 1;
  }
  std::cout << "Acceptance: every kernel sheds >= "
            << kReductionThreshold * 100.0 << "% pulses, replay "
            << replay.speedup << "x >= " << kSpeedupThreshold
            << "x with bitwise-identical results, cache compiles once.\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
