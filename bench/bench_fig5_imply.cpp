// Figure 5 — the two IMP circuit implementations:
//   (a) load-resistor IMPLY: two memristors + R_G, V_COND/V_SET drive
//       (Borghetti/Kvatinsky; our DeviceFabric),
//   (b) in-array CRS IMP: one CRS cell, ±½V_write inputs on its two
//       terminals (Linn; our CrsFabric).
//
// For both we print the verified truth table with the analog margins,
// the per-IMP pulse cost, and an N-bit adder built from the same gate
// library on each backend — "IMP paves the path to more complex
// memristive in-memory-computing architectures" (Section IV.C).
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "bench_json.h"
#include "common/error.h"
#include "common/table.h"
#include "device/presets.h"
#include "logic/adder.h"
#include "logic/crs_fabric.h"
#include "logic/device_fabric.h"
#include "logic/ideal_fabric.h"
#include "telemetry/json_writer.h"

namespace {

using namespace memcim;

DeviceFabricParams fig5a_params() {
  DeviceFabricParams p;
  p.device = presets::vcm_taox_logic();
  return p;
}

void print_truth_tables(telemetry::JsonWriter& w) {
  TextTable t({"p", "q", "p IMP q", "Fig5(a) result", "Fig5(a) analog q'",
               "Fig5(b) result", "Fig5(b) CRS state"});
  w.key("truth_table").begin_array();
  for (bool p : {false, true})
    for (bool q : {false, true}) {
      DeviceFabric dev(fig5a_params());
      const Reg dp = dev.alloc(), dq = dev.alloc();
      dev.set(dp, p);
      dev.set(dq, q);
      dev.imply(dp, dq);

      CrsFabric crs(presets::crs_cell());
      const Reg cp = crs.alloc(), cq = crs.alloc();
      crs.set(cp, p);
      crs.set(cq, q);
      crs.imply(cp, cq);

      t.add_row({std::to_string(p), std::to_string(q),
                 std::to_string(!p || q), std::to_string(dev.read(dq)),
                 fixed_string(dev.analog_state(dq), 3),
                 std::to_string(crs.read(cq)),
                 to_string(crs.cell(cq).state())});
      w.begin_object();
      w.key("p").value(p);
      w.key("q").value(q);
      w.key("expected").value(!p || q);
      w.key("device_result").value(dev.read(dq));
      w.key("device_analog_q").value(dev.analog_state(dq));
      w.key("crs_result").value(crs.read(cq));
      w.key("crs_state").value(to_string(crs.cell(cq).state()));
      w.end_object();
    }
  w.end_array();
  std::cout << t.to_text() << '\n';
}

void print_costs(telemetry::JsonWriter& w) {
  TextTable t({"Backend", "steps/IMP", "steps/SET",
               "16-bit ripple add steps (measured)", "latency @200ps"});
  w.key("backend_costs").begin_array();
  auto add_row = [&](const char* name, Fabric& probe, Fabric& adder_fabric) {
    probe.reset_counters();
    const Reg p = probe.alloc(), q = probe.alloc();
    probe.set(p, true);
    const std::uint64_t set_steps = probe.steps();
    probe.set(q, false);
    probe.reset_counters();
    probe.imply(p, q);
    const std::uint64_t imp_steps = probe.steps();
    adder_fabric.reset_counters();
    const std::uint64_t sum = add_integers(adder_fabric, 12345, 23456, 16);
    MEMCIM_CHECK(sum == (12345u + 23456u) % 65536u);
    t.add_row({name, std::to_string(imp_steps), std::to_string(set_steps),
               std::to_string(adder_fabric.steps()),
               si_string(adder_fabric.latency().value(), "s")});
    w.begin_object();
    w.key("backend").value(name);
    w.key("steps_per_imp").value(imp_steps);
    w.key("steps_per_set").value(set_steps);
    w.key("ripple_add16_steps").value(adder_fabric.steps());
    w.key("ripple_add16_latency_s").value(adder_fabric.latency().value());
    w.end_object();
  };
  IdealFabric ideal_probe, ideal_add;
  add_row("IMPLY (cost model)", ideal_probe, ideal_add);
  DeviceFabric dev_probe(fig5a_params()), dev_add(fig5a_params());
  add_row("Fig 5(a) device-level", dev_probe, dev_add);
  CrsFabric crs_probe(presets::crs_cell()), crs_add(presets::crs_cell());
  add_row("Fig 5(b) CRS in-array", crs_probe, crs_add);
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "The paper: Fig 5(b) needs only init+operate per IMP and no\n"
               "load resistor — \"superior performance\" [93]; our CrsFabric\n"
               "charges 2 pulses/IMP vs the 1-pulse IMPLY quantum, but each\n"
               "pulse is a plain write with no analog margin tuning.\n\n";
}

void print_adders(telemetry::JsonWriter& w) {
  TextTable t({"Backend", "13+29 = 42: 13 add check", "steps", "writes"});
  w.key("adder_8bit").begin_array();
  const auto emit = [&](const char* name, std::uint64_t r, Fabric& f) {
    t.add_row({name, std::to_string(r), std::to_string(f.steps()),
               std::to_string(f.writes())});
    w.begin_object();
    w.key("backend").value(name);
    w.key("sum").value(r);
    w.key("steps").value(f.steps());
    w.key("writes").value(f.writes());
    w.end_object();
  };
  {
    IdealFabric f;
    emit("IMPLY ideal", add_integers(f, 13, 29, 8), f);
  }
  {
    CrsFabric f(presets::crs_cell());
    emit("CRS in-array", add_integers(f, 13, 29, 8), f);
  }
  w.end_array();
  std::cout << t.to_text() << '\n';
}

void BM_DeviceLevelImp(benchmark::State& state) {
  for (auto _ : state) {
    DeviceFabric f(fig5a_params());
    const Reg p = f.alloc(), q = f.alloc();
    f.set(p, true);
    f.set(q, false);
    f.imply(p, q);
    benchmark::DoNotOptimize(f.read(q));
  }
}
BENCHMARK(BM_DeviceLevelImp);

void BM_CrsImp(benchmark::State& state) {
  for (auto _ : state) {
    CrsFabric f(presets::crs_cell());
    const Reg p = f.alloc(), q = f.alloc();
    f.set(p, true);
    f.set(q, false);
    f.imply(p, q);
    benchmark::DoNotOptimize(f.read(q));
  }
}
BENCHMARK(BM_CrsImp);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figure 5: two IMP implementations ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "fig5_imply");
  print_truth_tables(w);
  print_costs(w);
  print_adders(w);
  w.end_object();
  std::ofstream("BENCH_fig5.json") << w.str();
  std::cout << "Wrote BENCH_fig5.json\n\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
