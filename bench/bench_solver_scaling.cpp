// Ablation: crossbar network-solver scaling — dense LU vs CG backends
// (lumped model), lumped vs distributed fidelity, and the solver
// overhaul (symbolic-once assembly + warm start + thread pool) against
// the pre-overhaul baseline.  This is the infrastructure bench: it
// bounds the array sizes every other experiment can afford.
//
// Besides the interactive tables it writes BENCH_solver.json (in the
// working directory) so the perf trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/table.h"
#include "crossbar/crossbar.h"
#include "device/presets.h"
#include "device/vcm.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace {

using namespace memcim;
using namespace memcim::literals;

CrossbarConfig config(std::size_t n, NetworkModel model) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.model = model;
  return cfg;
}

VcmDevice nonlinear_proto() {
  VcmParams p = presets::vcm_taox();
  p.nonlinearity = 3.0;
  return VcmDevice(p, 1.0);
}

/// Wall-clock of one invocation of `fn`, milliseconds.
template <typename Fn>
double time_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-`reps` wall-clock of `fn`, milliseconds.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double t = time_ms(fn);
    if (i == 0 || t < best) best = t;
  }
  return best;
}

void print_fidelity() {
  TextTable t({"N", "model", "unknowns", "sense current", "iterations"});
  const VcmDevice proto(presets::vcm_taox(), 1.0);
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    for (NetworkModel m :
         {NetworkModel::kLumpedLines, NetworkModel::kDistributed}) {
      CrossbarConfig cfg = config(n, m);
      cfg.wire_segment = 2.0_ohm;
      CrossbarArray array(cfg, proto);
      const LineBias bias =
          access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
      const auto sol = array.solve(bias);
      const std::size_t unknowns =
          m == NetworkModel::kLumpedLines ? 2 * n - 2 : 2 * n * n;
      t.add_row({std::to_string(n), to_string(m), std::to_string(unknowns),
                 si_string(-sol.col_terminal_current[0], "A"),
                 std::to_string(sol.nonlinear_iterations)});
    }
  }
  std::cout << t.to_text() << '\n'
            << "With 2-ohm wire segments the distributed sense current sits\n"
               "within a few percent of the lumped answer at these sizes;\n"
               "wire IR-drop becomes visible from a few hundred ohms per\n"
               "segment (see the crossbar tests).\n\n";
}

struct OverhaulNumbers {
  double baseline_single_ms = 0.0;
  double overhaul_single_ms = 0.0;
  double baseline_train_ms = 0.0;
  double overhaul_train_ms = 0.0;
  std::size_t train_solves = 8;
  double single_speedup = 0.0;
  double train_speedup = 0.0;
};

/// Head-to-head: pre-overhaul solver (per-sweep triplet assembly, cold
/// CG starts) vs the overhauled one (symbolic-once + numeric refresh,
/// warm start) on a nonlinear 128×128 lumped solve — the acceptance
/// workload.  The train variant repeats the solve the way program/
/// verify and transient loops do, where cross-solve warm start pays.
OverhaulNumbers measure_overhaul(std::size_t n) {
  OverhaulNumbers out;
  CrossbarConfig baseline_cfg = config(n, NetworkModel::kLumpedLines);
  baseline_cfg.reuse_structure = false;
  baseline_cfg.warm_start = false;
  CrossbarConfig overhaul_cfg = config(n, NetworkModel::kLumpedLines);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);

  {
    CrossbarArray array(baseline_cfg, nonlinear_proto());
    out.baseline_single_ms =
        best_of(3, [&] { benchmark::DoNotOptimize(array.solve(bias)); });
    out.baseline_train_ms = time_ms([&] {
      for (std::size_t i = 0; i < out.train_solves; ++i)
        benchmark::DoNotOptimize(array.solve(bias));
    });
  }
  {
    CrossbarArray array(overhaul_cfg, nonlinear_proto());
    // Single solve on a fresh array (no cross-solve warm start yet):
    // isolates structure reuse + in-solve CG warm starting.
    out.overhaul_single_ms =
        time_ms([&] { benchmark::DoNotOptimize(array.solve(bias)); });
    out.overhaul_train_ms = time_ms([&] {
      for (std::size_t i = 0; i < out.train_solves; ++i)
        benchmark::DoNotOptimize(array.solve(bias));
    });
  }
  out.single_speedup = out.baseline_single_ms / out.overhaul_single_ms;
  out.train_speedup = out.baseline_train_ms / out.overhaul_train_ms;
  return out;
}

struct DistributedNumbers {
  std::size_t n = 0;
  std::size_t nodes = 0;
  double solve_ms = 0.0;
  bool converged = false;
  std::size_t sweeps = 0;
  double sense_current = 0.0;
};

/// Large-array distributed solves through the CG backend — sizes that
/// were impossible under the old 64×64 dense-LU cap.
DistributedNumbers measure_distributed(std::size_t n) {
  DistributedNumbers out;
  out.n = n;
  out.nodes = 2 * n * n;
  CrossbarConfig cfg = config(n, NetworkModel::kDistributed);
  cfg.wire_segment = 2.0_ohm;
  const VcmDevice proto(presets::vcm_taox(), 1.0);
  CrossbarArray array(cfg, proto);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kVHalf);
  CrossbarSolution sol;
  out.solve_ms = time_ms([&] { sol = array.solve(bias); });
  out.converged = sol.converged;
  out.sweeps = sol.nonlinear_iterations;
  out.sense_current = -sol.col_terminal_current[0];
  return out;
}

void write_json(const OverhaulNumbers& o,
                const std::vector<DistributedNumbers>& dist) {
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "solver_scaling");
  w.key("threads").value(parallel_threads());
  w.key("nonlinear_128_lumped").begin_object();
  w.key("baseline_single_solve_ms").value(o.baseline_single_ms);
  w.key("overhaul_single_solve_ms").value(o.overhaul_single_ms);
  w.key("single_solve_speedup").value(o.single_speedup);
  w.key("train_solves").value(o.train_solves);
  w.key("baseline_train_ms").value(o.baseline_train_ms);
  w.key("overhaul_train_ms").value(o.overhaul_train_ms);
  w.key("train_speedup").value(o.train_speedup);
  w.end_object();
  w.key("distributed_cg").begin_array();
  for (const auto& d : dist) {
    w.begin_object();
    w.key("n").value(d.n);
    w.key("nodes").value(d.nodes);
    w.key("solve_ms").value(d.solve_ms);
    w.key("converged").value(d.converged);
    w.key("sweeps").value(d.sweeps);
    w.key("sense_current_A").value(d.sense_current);
    w.end_object();
  }
  w.end_array();
  // Registry snapshot of the measurement runs above: solver-internal
  // tallies (CG iterations, warm-start hits, backend mix) land in the
  // perf record alongside the wall-clock numbers.
  const telemetry::MetricsSnapshot snap =
      telemetry::Registry::global().snapshot();
  w.key("telemetry").begin_object();
  for (const char* name :
       {"crossbar.solve.count", "crossbar.solve.sweeps",
        "crossbar.assemble.count", "crossbar.warm_start.hits",
        "crossbar.backend.dense", "crossbar.backend.cg", "solver.cg.calls",
        "solver.cg.iterations"})
    w.key(name).value(snap.counter(name));
  w.end_object();
  w.end_object();
  std::ofstream("BENCH_solver.json") << w.str();
  std::cout << "Wrote BENCH_solver.json\n";
}

void print_overhaul() {
  std::cout << "--- Solver overhaul: nonlinear 128x128 lumped solve ---\n";
  const OverhaulNumbers o = measure_overhaul(128);
  TextTable t({"scenario", "baseline", "overhaul", "speedup"});
  t.add_row({"single solve", si_string(o.baseline_single_ms * 1e-3, "s"),
             si_string(o.overhaul_single_ms * 1e-3, "s"),
             fixed_string(o.single_speedup, 2) + "x"});
  t.add_row({"train of " + std::to_string(o.train_solves),
             si_string(o.baseline_train_ms * 1e-3, "s"),
             si_string(o.overhaul_train_ms * 1e-3, "s"),
             fixed_string(o.train_speedup, 2) + "x"});
  std::cout << t.to_text() << '\n';

  std::cout << "--- Distributed model through the CG backend ---\n";
  std::vector<DistributedNumbers> dist;
  for (std::size_t n : {64u, 128u, 256u}) dist.push_back(measure_distributed(n));
  TextTable d({"N", "nodes", "solve", "sweeps", "converged", "sense current"});
  for (const auto& x : dist)
    d.add_row({std::to_string(x.n), std::to_string(x.nodes),
               si_string(x.solve_ms * 1e-3, "s"), std::to_string(x.sweeps),
               x.converged ? "yes" : "no", si_string(x.sense_current, "A")});
  std::cout << d.to_text() << '\n';

  write_json(o, dist);
  std::cout << '\n';
}

void BM_LumpedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VcmDevice proto(presets::vcm_taox(), 1.0);
  CrossbarArray array(config(n, NetworkModel::kLumpedLines), proto);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  for (auto _ : state) benchmark::DoNotOptimize(array.solve(bias));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LumpedSolve)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_DistributedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VcmDevice proto(presets::vcm_taox(), 1.0);
  CrossbarArray array(config(n, NetworkModel::kDistributed), proto);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  for (auto _ : state) benchmark::DoNotOptimize(array.solve(bias));
}
BENCHMARK(BM_DistributedSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_NonlinearSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CrossbarArray array(config(n, NetworkModel::kLumpedLines),
                      nonlinear_proto());
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  for (auto _ : state) benchmark::DoNotOptimize(array.solve(bias));
}
BENCHMARK(BM_NonlinearSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_NonlinearSolveBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  CrossbarConfig cfg = config(n, NetworkModel::kLumpedLines);
  cfg.reuse_structure = false;
  cfg.warm_start = false;
  CrossbarArray array(cfg, nonlinear_proto());
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  for (auto _ : state) benchmark::DoNotOptimize(array.solve(bias));
}
BENCHMARK(BM_NonlinearSolveBaseline)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: network solver scaling & fidelity ===\n"
            << "thread pool: " << parallel_threads()
            << " workers (override with MEMCIM_THREADS)\n\n";
  print_fidelity();
  print_overhaul();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
