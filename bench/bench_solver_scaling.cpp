// Ablation: crossbar network-solver scaling — dense LU vs CG backends
// (lumped model) and lumped vs distributed fidelity.  This is the
// infrastructure bench: it bounds the array sizes every other
// experiment can afford.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.h"
#include "crossbar/crossbar.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace {

using namespace memcim;
using namespace memcim::literals;

CrossbarConfig config(std::size_t n, NetworkModel model) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.model = model;
  return cfg;
}

void print_fidelity() {
  TextTable t({"N", "model", "unknowns", "sense current", "iterations"});
  const VcmDevice proto(presets::vcm_taox(), 1.0);
  for (std::size_t n : {8u, 16u, 32u}) {
    for (NetworkModel m :
         {NetworkModel::kLumpedLines, NetworkModel::kDistributed}) {
      CrossbarConfig cfg = config(n, m);
      cfg.wire_segment = 2.0_ohm;
      CrossbarArray array(cfg, proto);
      const LineBias bias =
          access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
      const auto sol = array.solve(bias);
      const std::size_t unknowns =
          m == NetworkModel::kLumpedLines ? 2 * n - 2 : 2 * n * n;
      t.add_row({std::to_string(n), to_string(m), std::to_string(unknowns),
                 si_string(-sol.col_terminal_current[0], "A"),
                 std::to_string(sol.nonlinear_iterations)});
    }
  }
  std::cout << t.to_text() << '\n'
            << "With 2-ohm wire segments the distributed sense current sits\n"
               "within a few percent of the lumped answer at these sizes;\n"
               "wire IR-drop becomes visible from a few hundred ohms per\n"
               "segment (see the crossbar tests).\n\n";
}

void BM_LumpedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VcmDevice proto(presets::vcm_taox(), 1.0);
  CrossbarArray array(config(n, NetworkModel::kLumpedLines), proto);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  for (auto _ : state) benchmark::DoNotOptimize(array.solve(bias));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LumpedSolve)->Arg(16)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_DistributedSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const VcmDevice proto(presets::vcm_taox(), 1.0);
  CrossbarArray array(config(n, NetworkModel::kDistributed), proto);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  for (auto _ : state) benchmark::DoNotOptimize(array.solve(bias));
}
BENCHMARK(BM_DistributedSolve)->Arg(8)->Arg(16)->Arg(32);

void BM_NonlinearSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VcmParams p = presets::vcm_taox();
  p.nonlinearity = 3.0;
  CrossbarArray array(config(n, NetworkModel::kLumpedLines), VcmDevice(p, 1.0));
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  for (auto _ : state) benchmark::DoNotOptimize(array.solve(bias));
}
BENCHMARK(BM_NonlinearSolve)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: network solver scaling & fidelity ===\n\n";
  print_fidelity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
