// Figure 2 — traditional vs proposed (CIM) architecture.  The figure's
// substance is the communication/computation split: on the traditional
// machine, memory access and cache leakage dominate the per-operation
// budget; in the CIM crossbar both storage and compute share one
// physical location, so the movement term collapses.
//
// We decompose the Table 2 cost model's per-operation time and energy
// into movement vs compute for both workloads and both machines.
#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/cost_model.h"
#include "common/table.h"

namespace {

using namespace memcim;

struct Split {
  double time_movement_share;
  double energy_movement_share;
};

Split conventional_split(const WorkloadSpec& spec, const Table1& t) {
  CacheSpec cache = spec.unit == ComputeUnit::kComparator ? t.cache_dna
                                                          : t.cache_math;
  cache.hit_ratio = spec.hit_ratio;
  const double mem_cycles = spec.reads_per_op * cache.read_cycles() +
                            spec.writes_per_op * cache.write_cycles;
  const double t_mem = mem_cycles * t.finfet.cycle().value();
  const ArchCost cost = evaluate_conventional(spec, t);
  const double t_total = cost.time_per_op.value();
  // Movement energy: cache static power over the full op (the data
  // never being where the compute is) plus leakage while stalled.
  const double e_movement =
      cache.static_power.value() * t_total +
      (cost.energy_per_op.value() -
       cache.static_power.value() * t_total) * (t_mem / t_total);
  return {t_mem / t_total, e_movement / cost.energy_per_op.value()};
}

Split cim_split(const WorkloadSpec& spec, const Table1& t) {
  CacheSpec cache = spec.unit == ComputeUnit::kComparator ? t.cache_dna
                                                          : t.cache_math;
  cache.hit_ratio = spec.hit_ratio;
  const double mem_cycles = spec.reads_per_op * cache.read_cycles() +
                            spec.writes_per_op * cache.write_cycles;
  const double t_mem = mem_cycles * t.finfet.cycle().value();
  const ArchCost cost = evaluate_cim(spec, t);
  // CIM energy is all compute (crossbar writes); movement energy ~0
  // because operands already sit at the compute junctions.
  return {t_mem / cost.time_per_op.value(), 0.0};
}

void print_split() {
  const Table1 t = paper_table1();
  TextTable table({"Workload", "Arch", "Movement time share",
                   "Movement energy share"});
  for (const WorkloadSpec& spec :
       {dna_workload_spec(t), math_workload_spec(t)}) {
    const Split conv = conventional_split(spec, t);
    const Split cim = cim_split(spec, t);
    table.add_row({spec.name, "conventional",
                   fixed_string(conv.time_movement_share * 100.0, 1) + " %",
                   fixed_string(conv.energy_movement_share * 100.0, 1) + " %"});
    table.add_row({spec.name, "cim",
                   fixed_string(cim.time_movement_share * 100.0, 1) + " %",
                   fixed_string(cim.energy_movement_share * 100.0, 1) + " %"});
  }
  std::cout << table.to_text() << '\n'
            << "Conventional: the 70-90 % claim of Section II.B.  CIM: the\n"
               "crossbar holds the working set at the compute junctions, so\n"
               "movement energy vanishes (remaining time share is the CMOS\n"
               "controller interface).\n\n";
}

void BM_SplitEvaluation(benchmark::State& state) {
  const Table1 t = paper_table1();
  const WorkloadSpec spec = math_workload_spec(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conventional_split(spec, t));
    benchmark::DoNotOptimize(cim_split(spec, t));
  }
}
BENCHMARK(BM_SplitEvaluation);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figure 2: traditional vs CIM — where the energy goes ===\n\n";
  print_split();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
