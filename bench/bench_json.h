// Shared BENCH_*.json envelope: every bench binary emits one document
// with the same outer schema so CI and plotting scripts can consume
// any report uniformly:
//
//   {
//     "schema": "memcim-bench-v1",
//     "bench": "<bench name>",
//     ... bench-specific payload keys ...
//   }
//
// Usage: begin_bench_json(w, "table2_dna"), append payload keys, then
// write_bench_json(w, "table2_dna") to close the envelope and write
// BENCH_table2_dna.json into the working directory.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "telemetry/json_writer.h"

namespace memcim::bench {

/// Envelope version; bump when the outer shape changes.
inline constexpr const char* kBenchSchema = "memcim-bench-v1";

/// Open the envelope: the outer object plus the schema/bench keys.
/// The writer must be fresh; the caller appends payload keys next.
inline telemetry::JsonWriter& begin_bench_json(telemetry::JsonWriter& w,
                                               const std::string& name) {
  w.begin_object();
  w.key("schema").value(kBenchSchema);
  w.key("bench").value(name);
  return w;
}

/// Close the envelope and write BENCH_<stem>.json to the working
/// directory (where CI collects artifacts).
inline void write_bench_json(telemetry::JsonWriter& w,
                             const std::string& stem) {
  w.end_object();
  const std::string path = "BENCH_" + stem + ".json";
  std::ofstream(path) << w.str();
  std::cout << "Wrote " << path << "\n";
}

}  // namespace memcim::bench
