// Shared BENCH_*.json envelope: every bench binary emits one document
// with the same outer schema so CI and plotting scripts can consume
// any report uniformly:
//
//   {
//     "schema": "memcim-bench-v1",
//     "bench": "<bench name>",
//     ... bench-specific payload keys ...
//   }
//
// Usage: begin_bench_json(w, "table2_dna"), append payload keys, then
// write_bench_json(w, "table2_dna") to close the envelope and write
// BENCH_table2_dna.json into the working directory.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace memcim::bench {

/// Envelope version; bump when the outer shape changes.
inline constexpr const char* kBenchSchema = "memcim-bench-v1";

/// Stamp the open object with run provenance, so ledger entries and
/// baseline diffs are attributable to a commit and a configuration.
/// MEMCIM_GIT_SHA / MEMCIM_BUILD_TYPE are compile definitions (see
/// bench/CMakeLists.txt); threads and telemetry reflect the process
/// environment at the call.
inline telemetry::JsonWriter& append_provenance(telemetry::JsonWriter& w) {
#ifndef MEMCIM_GIT_SHA
#define MEMCIM_GIT_SHA "unknown"
#endif
#ifndef MEMCIM_BUILD_TYPE
#define MEMCIM_BUILD_TYPE "unknown"
#endif
  w.key("provenance").begin_object();
  w.key("git_sha").value(MEMCIM_GIT_SHA);
  w.key("build_type").value(MEMCIM_BUILD_TYPE);
  const char* threads = std::getenv("MEMCIM_THREADS");
  w.key("memcim_threads").value(threads != nullptr ? threads : "default");
  w.key("telemetry").value(telemetry::enabled());
  w.end_object();
  return w;
}

/// Open the envelope: the outer object plus the schema/bench/provenance
/// keys.  The writer must be fresh; the caller appends payload keys
/// next.
inline telemetry::JsonWriter& begin_bench_json(telemetry::JsonWriter& w,
                                               const std::string& name) {
  w.begin_object();
  w.key("schema").value(kBenchSchema);
  w.key("bench").value(name);
  append_provenance(w);
  return w;
}

/// Close the envelope and write BENCH_<stem>.json to the working
/// directory (where CI collects artifacts).
inline void write_bench_json(telemetry::JsonWriter& w,
                             const std::string& stem) {
  w.end_object();
  const std::string path = "BENCH_" + stem + ".json";
  std::ofstream(path) << w.str();
  std::cout << "Wrote " << path << "\n";
}

}  // namespace memcim::bench
