// Ablation: device variability and wear-out vs array readability.
// Section IV.A leans on memristor endurance (1e10–1e12 cycles) and
// retention (>10 y); this bench quantifies how much conductance spread
// (device-to-device sigma) and how many failed cells the read path
// tolerates before worst-case margins collapse.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_json.h"
#include "common/table.h"
#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/variability.h"
#include "device/vcm.h"

namespace {

using namespace memcim;

CrossbarConfig lumped(std::size_t n) {
  CrossbarConfig cfg;
  cfg.model = NetworkModel::kLumpedLines;
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

/// Population read statistics: with one global sense threshold, the
/// array is readable only while the weakest LRS cell still sources more
/// current than the strongest HRS cell.  A single device's own on/off
/// ratio is immune to a multiplicative gain — it is the *population
/// spread* that closes the sensing window.
struct PopulationMargin {
  double min_lrs;
  double max_hrs;
  [[nodiscard]] double window() const {
    return (min_lrs - max_hrs) / min_lrs;
  }
};

PopulationMargin population_margin(double sigma, std::size_t devices,
                                   std::uint64_t seed) {
  using namespace memcim::literals;
  VariabilityParams vp;
  vp.sigma_d2d = sigma;
  Rng seeder(seed);
  PopulationMargin pm{1e9, 0.0};
  for (std::size_t i = 0; i < devices; ++i) {
    VariableDevice lrs(std::make_unique<VcmDevice>(presets::vcm_taox(), 1.0),
                       vp, seeder.fork());
    VariableDevice hrs(std::make_unique<VcmDevice>(presets::vcm_taox(), 0.0),
                       vp, seeder.fork());
    pm.min_lrs = std::min(pm.min_lrs, lrs.current(1.0_V).value());
    pm.max_hrs = std::max(pm.max_hrs, hrs.current(1.0_V).value());
  }
  return pm;
}

void print_sigma_sweep(telemetry::JsonWriter& w) {
  TextTable t({"sigma_d2d (ln G)", "min LRS I", "max HRS I",
               "population window", "readable (>0.5)?"});
  w.key("sigma_sweep").begin_array();
  for (double sigma : {0.0, 0.2, 0.5, 1.0, 2.0, 3.0, 4.0}) {
    const PopulationMargin pm = population_margin(sigma, 1024, 7);
    t.add_row({fixed_string(sigma, 2), si_string(pm.min_lrs, "A"),
               si_string(pm.max_hrs, "A"), fixed_string(pm.window(), 4),
               pm.window() > 0.5 ? "yes" : "no"});
    w.begin_object();
    w.key("sigma_d2d").value(sigma);
    w.key("min_lrs_a").value(pm.min_lrs);
    w.key("max_hrs_a").value(pm.max_hrs);
    w.key("population_window").value(pm.window());
    w.key("readable").value(pm.window() > 0.5);
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "One multiplicative d2d gain cannot change a single cell's\n"
               "on/off ratio; what kills sensing is the POPULATION overlap\n"
               "under a global threshold.  The 1000x OFF/ON window (3.45\n"
               "decades) absorbs sigma up to ~0.5-0.7 across 1024 cells —\n"
               "comfortably above typical ReRAM reports of 0.3-0.5 — and\n"
               "collapses near sigma ~ 1, where the +/-3.3-sigma tails of\n"
               "the two lognormals meet.\n\n";
}

void print_endurance_failures(telemetry::JsonWriter& w) {
  TextTable t({"failed cells (stuck LRS)", "worst margin", "readable?"});
  w.key("endurance_failures").begin_array();
  for (int failures : {0, 1, 4, 16, 64}) {
    CrossbarArray array(lumped(16), VcmDevice(presets::vcm_taox(), 0.0));
    // Failures land on the sensed column — the worst place.
    int placed = 0;
    for (std::size_t r = 1; r < 16 && placed < failures; ++r)
      for (std::size_t c = 0; c < 16 && placed < failures; ++c) {
        array.device(r, c).set_state(1.0);
        ++placed;
      }
    ReadConfig rc;
    rc.scheme = BiasScheme::kVHalf;
    // Margin of the target at (0,0) with the failure pattern held:
    array.store_bit(0, 0, true);
    const LineBias bias = access_bias(16, 16, 0, 0, rc.v_read, rc.scheme);
    const double i_lrs = -array.solve(bias).col_terminal_current[0];
    array.store_bit(0, 0, false);
    const double i_hrs = -array.solve(bias).col_terminal_current[0];
    const double margin = (i_lrs - i_hrs) / i_lrs;
    t.add_row({std::to_string(failures), fixed_string(margin, 4),
               margin > 0.5 ? "yes" : "no"});
    w.begin_object();
    w.key("failed_cells").value(failures);
    w.key("worst_margin").value(margin);
    w.key("readable").value(margin > 0.5);
    w.end_object();
  }
  w.end_array();
  std::cout << t.to_text() << '\n'
            << "Stuck-at-LRS cells on the sensed column add half-select\n"
               "current under V/2 reads; margin degrades gracefully with\n"
               "the failure count (endurance budget per Section IV.A).\n\n";
}

void BM_VariabilityMargin(benchmark::State& state) {
  const double sigma = static_cast<double>(state.range(0)) / 100.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(population_margin(sigma, 256, seed++));
  }
}
BENCHMARK(BM_VariabilityMargin)->Arg(0)->Arg(50);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Ablation: variability & wear-out vs readability ===\n\n";
  telemetry::JsonWriter w;
  bench::begin_bench_json(w, "ablation_variability");
  print_sigma_sweep(w);
  print_endurance_failures(w);
  bench::write_bench_json(w, "ablation_variability");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
