// Reliability campaign bench: sweep per-site fault rates across every
// CIM structure (SECDED bank, IMPLY adders, TC adder, CAM search,
// crossbar readout, and the two paper workloads) through the
// golden-model differential harness of src/fault/.
//
// Besides the interactive tables it writes BENCH_faults.json (in the
// working directory) and *checks the subsystem's acceptance criteria
// inline* — the process exits non-zero when ECC misses a single- or
// double-bit fault or any rate-0 row diverges, so CI catches silent
// regressions of the fault plumbing itself.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/parallel.h"
#include "common/table.h"
#include "fault/campaign.h"

namespace {

using namespace memcim;

void print_sweep(const std::vector<CampaignTally>& sweep) {
  TextTable t({"target", "rate", "trials", "clean", "corrected", "detected",
               "silent", "armed"});
  for (const CampaignTally& row : sweep)
    t.add_row({row.target, fixed_string(row.rate, 3),
               std::to_string(row.diff.trials), std::to_string(row.diff.clean),
               std::to_string(row.diff.corrected),
               std::to_string(row.diff.detected),
               std::to_string(row.diff.silent),
               std::to_string(row.armed_faults)});
  std::cout << t.to_text() << '\n';
}

void print_silent_fractions(const std::vector<CampaignTally>& sweep) {
  // Pivot: silent-corruption fraction per target as the rate grows —
  // the headline reliability curve (ECC's row stays at 0 long after
  // the unprotected structures start corrupting silently).
  std::map<std::string, std::vector<std::pair<double, double>>> by_target;
  for (const CampaignTally& row : sweep)
    by_target[row.target].emplace_back(row.rate, row.diff.silent_fraction());
  std::cout << "--- silent-corruption fraction by fault rate ---\n";
  TextTable t({"target", "rate", "silent fraction"});
  for (const auto& [target, points] : by_target)
    for (const auto& [rate, fraction] : points)
      t.add_row({target, fixed_string(rate, 3), fixed_string(fraction, 4)});
  std::cout << t.to_text() << '\n';
}

/// The subsystem's acceptance criteria, enforced at bench time.
int check_acceptance(const std::vector<CampaignTally>& sweep) {
  int failures = 0;
  for (const CampaignTally& row : sweep) {
    if (row.rate == 0.0 &&
        (row.diff.silent != 0 || row.diff.clean != row.diff.trials)) {
      std::cerr << "ACCEPTANCE FAIL: rate-0 row diverged for " << row.target
                << " (" << row.diff.silent << " silent of " << row.diff.trials
                << " trials)\n";
      ++failures;
    }
    if (row.single_bit_corrected != row.single_bit_injected) {
      std::cerr << "ACCEPTANCE FAIL: ECC corrected "
                << row.single_bit_corrected << " of "
                << row.single_bit_injected << " single-bit faults at rate "
                << row.rate << "\n";
      ++failures;
    }
    if (row.double_bit_detected != row.double_bit_injected) {
      std::cerr << "ACCEPTANCE FAIL: ECC flagged " << row.double_bit_detected
                << " of " << row.double_bit_injected
                << " double-bit faults at rate " << row.rate << "\n";
      ++failures;
    }
  }
  return failures;
}

void BM_EccCampaign(benchmark::State& state) {
  CampaignConfig config;
  config.ecc_words = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(run_ecc_campaign(config, 0.01));
}
BENCHMARK(BM_EccCampaign)->Arg(128)->Arg(512);

void BM_ImplyAdderCampaign(benchmark::State& state) {
  CampaignConfig config;
  config.adder_trials = 16;
  const bool crs = state.range(0) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(run_imply_adder_campaign(config, 0.01, crs));
}
BENCHMARK(BM_ImplyAdderCampaign)->Arg(0)->Arg(1);

void BM_DnaCampaign(benchmark::State& state) {
  CampaignConfig config;
  config.dna_bases = 160;
  config.dna_reads = 16;
  for (auto _ : state)
    benchmark::DoNotOptimize(run_dna_campaign(config, 0.01));
}
BENCHMARK(BM_DnaCampaign);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Fault-injection reliability campaign ===\n"
            << "thread pool: " << parallel_threads()
            << " workers (override with MEMCIM_THREADS)\n\n";

  const CampaignConfig config;
  const std::vector<CampaignTally> sweep = run_full_campaign(config);
  print_sweep(sweep);
  print_silent_fractions(sweep);

  {
    std::ofstream js("BENCH_faults.json");
    js << campaign_json(config, sweep, [](telemetry::JsonWriter& w) {
      bench::append_provenance(w);
    });
  }
  std::cout << "Wrote BENCH_faults.json\n\n";

  const int failures = check_acceptance(sweep);
  if (failures > 0) {
    std::cerr << failures << " acceptance violation(s)\n";
    return 1;
  }
  std::cout << "Acceptance: rate-0 rows clean, ECC corrected all "
            << "single-bit and flagged all double-bit faults.\n\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
