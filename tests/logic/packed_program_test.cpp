// Differential suite for the packed (bit-sliced) microcode executor:
// run_program_packed must be bitwise-equivalent to run_program_simd on
// the scalar cost-model backends — per-window outputs, latency, energy,
// writes, per-window register-transition counts, and every fabric.* /
// program.* telemetry tally.
#include "logic/packed.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "device/presets.h"
#include "logic/adder.h"
#include "logic/comparator.h"
#include "logic/crs_fabric.h"
#include "logic/device_fabric.h"
#include "logic/gates.h"
#include "logic/ideal_fabric.h"
#include "logic/program.h"
#include "telemetry/telemetry.h"

namespace memcim {
namespace {

using telemetry::Registry;

struct TelemetryGuard {
  ~TelemetryGuard() { telemetry::set_enabled(true); }
};

CimProgram random_program(std::size_t inputs, std::size_t scratch,
                          std::size_t length, Rng& rng) {
  CimProgram p;
  p.inputs = inputs;
  p.registers = inputs + scratch;
  for (std::size_t i = 0; i < length; ++i) {
    CimInstruction inst;
    const auto pick_reg = [&] {
      return static_cast<Reg>(
          rng.uniform_int(0, static_cast<std::int64_t>(p.registers - 1)));
    };
    const double roll = rng.uniform();
    if (roll < 0.2) {
      inst.op = CimOp::kSetFalse;
      inst.a = pick_reg();
    } else if (roll < 0.4) {
      inst.op = CimOp::kSetTrue;
      inst.a = pick_reg();
    } else {
      inst.op = CimOp::kImply;
      inst.a = pick_reg();
      do {
        inst.b = pick_reg();
      } while (inst.b == inst.a);
    }
    p.instructions.push_back(inst);
  }
  p.output = static_cast<Reg>(
      rng.uniform_int(0, static_cast<std::int64_t>(p.registers - 1)));
  return p;
}

/// Reference boolean replay of one window, counting register-value
/// changes (input loads included) — the packed engine's transition
/// book must reproduce these exactly.
struct ReferenceRun {
  bool output = false;
  std::uint64_t transitions = 0;
};

ReferenceRun reference_replay(const CimProgram& p,
                              const std::vector<bool>& inputs) {
  std::vector<bool> regs(p.registers, false);
  ReferenceRun run;
  const auto assign = [&](Reg r, bool v) {
    if (regs[r] != v) {
      regs[r] = v;
      ++run.transitions;
    }
  };
  for (std::size_t i = 0; i < inputs.size(); ++i) assign(i, inputs[i]);
  for (const CimInstruction& inst : p.instructions) {
    switch (inst.op) {
      case CimOp::kSetFalse:
        assign(inst.a, false);
        break;
      case CimOp::kSetTrue:
        assign(inst.a, true);
        break;
      case CimOp::kImply:
        assign(inst.b, !regs[inst.a] || regs[inst.b]);
        break;
    }
  }
  run.output = regs[p.output];
  return run;
}

std::vector<std::vector<bool>> exhaustive_windows(std::size_t inputs) {
  std::vector<std::vector<bool>> windows;
  for (std::uint64_t v = 0; v < (std::uint64_t{1} << inputs); ++v) {
    std::vector<bool> w(inputs);
    for (std::size_t i = 0; i < inputs; ++i) w[i] = ((v >> i) & 1u) != 0;
    windows.push_back(std::move(w));
  }
  return windows;
}

std::vector<std::vector<bool>> random_windows(std::size_t inputs,
                                              std::size_t count, Rng& rng) {
  std::vector<std::vector<bool>> windows(count);
  for (auto& w : windows) {
    w.resize(inputs);
    for (std::size_t i = 0; i < inputs; ++i) w[i] = rng.bernoulli(0.5);
  }
  return windows;
}

CimProgram xor_program() {
  return record_program(2, [](Fabric& f, const std::vector<Reg>& in) {
    return gate_xor(f, in[0], in[1]);
  });
}

CimProgram adder_program(std::size_t bits) {
  return record_program(
      2 * bits, [&](Fabric& f, const std::vector<Reg>& in) {
        const std::span<const Reg> a(in.data(), bits);
        const std::span<const Reg> b(in.data() + bits, bits);
        return ripple_adder(f, a, b).carry_out;
      });
}

CimProgram comparator_program() {
  return record_program(4, [](Fabric& f, const std::vector<Reg>& in) {
    return equality_comparator(f, in[0], in[1], in[2], in[3]);
  });
}

/// The deterministic fabric/program tallies a run books (the slice the
/// packed engine must reproduce; logic.packed.* are additive extras).
std::map<std::string, std::uint64_t> logic_tallies() {
  const telemetry::MetricsSnapshot snap = Registry::global().snapshot();
  std::map<std::string, std::uint64_t> out;
  for (const telemetry::CounterSample& c : snap.counters) {
    if (c.name.rfind("fabric.", 0) == 0 || c.name.rfind("program.", 0) == 0)
      out[c.name] = c.value;
  }
  return out;
}

TEST(PackedCompile, RejectsMalformedPrograms) {
  CimProgram p;
  EXPECT_THROW((void)compile_program(p), Error);  // no registers

  p.registers = 2;
  p.inputs = 1;
  p.output = 2;  // out of range
  EXPECT_THROW((void)compile_program(p), Error);

  p.output = 0;
  p.instructions.push_back({CimOp::kSetTrue, 5, 0});  // reg out of range
  EXPECT_THROW((void)compile_program(p), Error);

  p.instructions.back() = {CimOp::kImply, 0, 7};  // target out of range
  EXPECT_THROW((void)compile_program(p), Error);

  p.instructions.back() = {CimOp::kImply, 0, 1};
  const PackedProgram compiled = compile_program(p);
  EXPECT_EQ(compiled.implies_per_window, 1u);
  EXPECT_EQ(compiled.sets_per_window, 0u);
}

TEST(PackedVsIdeal, RecordedProgramsAgreeBitwise) {
  const struct {
    const char* name;
    CimProgram program;
  } cases[] = {
      {"xor", xor_program()},
      {"adder4", adder_program(4)},
      {"comparator", comparator_program()},
  };
  for (const auto& c : cases) {
    const auto windows = exhaustive_windows(c.program.inputs);
    IdealFabric fabric;
    const SimdRunResult simd = run_program_simd(c.program, fabric, windows);
    const PackedRunResult packed = run_program_packed(c.program, windows);
    ASSERT_EQ(packed.outputs.size(), windows.size()) << c.name;
    for (std::size_t w = 0; w < windows.size(); ++w)
      EXPECT_EQ(packed.outputs[w], simd.outputs[w]) << c.name << " w" << w;
    EXPECT_EQ(packed.writes, simd.writes) << c.name;
    EXPECT_EQ(packed.latency.value(), simd.latency.value()) << c.name;
    EXPECT_EQ(packed.energy.value(), simd.energy.value()) << c.name;
  }
}

TEST(PackedVsIdeal, TelemetryTalliesMatchScalar) {
  TelemetryGuard guard;
  telemetry::set_enabled(true);
  const CimProgram p = adder_program(3);
  const auto windows = exhaustive_windows(p.inputs);  // 64: one full block

  Registry::global().reset();
  IdealFabric fabric;
  (void)run_program_simd(p, fabric, windows);
  const auto scalar = logic_tallies();

  Registry::global().reset();
  (void)run_program_packed(p, windows);
  const auto packed = logic_tallies();

  EXPECT_GT(scalar.at("fabric.steps"), 0u);
  EXPECT_GT(scalar.at("program.imply_steps"), 0u);
  EXPECT_EQ(scalar, packed);
}

TEST(PackedVsReference, RandomProgramsOutputsAndTransitions) {
  Rng rng(0xBEEF5);
  for (int trial = 0; trial < 10; ++trial) {
    const CimProgram p = random_program(4, 4, 40, rng);
    // 130 windows: two full lane blocks plus a partial one.
    const auto windows = random_windows(p.inputs, 130, rng);
    const PackedRunResult packed = run_program_packed(p, windows);
    ASSERT_EQ(packed.transitions.size(), windows.size());
    for (std::size_t w = 0; w < windows.size(); ++w) {
      const ReferenceRun ref = reference_replay(p, windows[w]);
      EXPECT_EQ(packed.outputs[w], ref.output) << "trial " << trial << " w" << w;
      EXPECT_EQ(packed.transitions[w], ref.transitions)
          << "trial " << trial << " w" << w;
    }
  }
}

TEST(PackedVsReference, BlockBoundaryWindowCounts) {
  Rng rng(0x10AD);
  const CimProgram p = random_program(3, 3, 25, rng);
  for (const std::size_t count : {std::size_t{1}, std::size_t{63},
                                  std::size_t{64}, std::size_t{65},
                                  std::size_t{200}}) {
    const auto windows = random_windows(p.inputs, count, rng);
    IdealFabric fabric;
    const SimdRunResult simd = run_program_simd(p, fabric, windows);
    const PackedRunResult packed = run_program_packed(p, windows);
    for (std::size_t w = 0; w < count; ++w)
      EXPECT_EQ(packed.outputs[w], simd.outputs[w]) << count << ":" << w;
    EXPECT_EQ(packed.writes, simd.writes) << count;
    EXPECT_EQ(packed.latency.value(), simd.latency.value()) << count;
  }
}

TEST(PackedVsCrs, TwoStepImplyCostBookMatches) {
  TelemetryGuard guard;
  telemetry::set_enabled(true);
  Rng rng(0xC25);
  const CimProgram p = random_program(3, 4, 30, rng);
  const auto windows = exhaustive_windows(p.inputs);

  Registry::global().reset();
  CrsFabric crs(presets::crs_cell());
  const SimdRunResult simd = run_program_simd(p, crs, windows);
  const auto scalar_tallies = logic_tallies();

  Registry::global().reset();
  PackedRunOptions options;
  options.imply_step_cost = 2;  // CRS IMP: init pulse + operate pulse
  const PackedRunResult packed = run_program_packed(p, windows, options);
  const auto packed_tallies = logic_tallies();

  for (std::size_t w = 0; w < windows.size(); ++w)
    EXPECT_EQ(packed.outputs[w], simd.outputs[w]) << w;
  EXPECT_EQ(packed.writes, simd.writes);
  EXPECT_EQ(packed.latency.value(), simd.latency.value());
  EXPECT_EQ(packed.energy.value(), simd.energy.value());
  EXPECT_EQ(scalar_tallies, packed_tallies);
}

TEST(PackedVsDevice, GateProgramAgrees) {
  const CimProgram p = xor_program();
  const auto windows = exhaustive_windows(p.inputs);
  DeviceFabricParams dp;
  dp.device = presets::vcm_taox_logic();
  DeviceFabric fabric(dp);
  const SimdRunResult simd = run_program_simd(p, fabric, windows);
  const PackedRunResult packed = run_program_packed(p, windows);
  for (std::size_t w = 0; w < windows.size(); ++w)
    EXPECT_EQ(packed.outputs[w], simd.outputs[w]) << w;
  EXPECT_EQ(packed.writes, simd.writes);
  EXPECT_EQ(packed.latency.value(), simd.latency.value());
}

TEST(PackedKillSwitch, DisabledTelemetryBooksNothing) {
  TelemetryGuard guard;
  telemetry::set_enabled(false);
  Registry::global().reset();
  const CimProgram p = xor_program();
  const PackedRunResult packed =
      run_program_packed(p, exhaustive_windows(p.inputs));
  EXPECT_EQ(packed.outputs.size(), 4u);
  const telemetry::MetricsSnapshot snap = Registry::global().snapshot();
  for (const telemetry::CounterSample& c : snap.counters)
    EXPECT_EQ(c.value, 0u) << c.name;
}

}  // namespace
}  // namespace memcim
