#include "logic/gates.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "logic/ideal_fabric.h"

namespace memcim {
namespace {

using namespace memcim::literals;

// Helper: run a 2-input gate for one input combination on a fresh
// fabric and return (result, steps, new registers).
struct GateRun {
  bool value;
  std::uint64_t steps;
  std::size_t registers;
};

template <typename Gate>
GateRun run_gate(Gate gate, bool a, bool b) {
  IdealFabric f;
  const Reg ra = f.alloc();
  const Reg rb = f.alloc();
  f.set(ra, a);
  f.set(rb, b);
  f.reset_counters();
  const std::size_t regs_before = f.size();
  const Reg out = gate(f, ra, rb);
  return {f.read(out), f.steps(), f.size() - regs_before};
}

TEST(Gates, NotTruthAndCost) {
  for (bool a : {false, true}) {
    IdealFabric f;
    const Reg ra = f.alloc();
    f.set(ra, a);
    f.reset_counters();
    const Reg out = gate_not(f, ra);
    EXPECT_EQ(f.read(out), !a);
    EXPECT_EQ(f.steps(), cost_not().steps);
    EXPECT_EQ(f.read(ra), a) << "input must be preserved";
  }
}

TEST(Gates, CopyTruthAndCost) {
  for (bool a : {false, true}) {
    IdealFabric f;
    const Reg ra = f.alloc();
    f.set(ra, a);
    f.reset_counters();
    const Reg out = gate_copy(f, ra);
    EXPECT_EQ(f.read(out), a);
    EXPECT_EQ(f.steps(), cost_copy().steps);
  }
}

// Parameterized truth-table sweep over all two-input gates and all
// four input combinations.
struct GateCase {
  const char* name;
  Reg (*gate)(Fabric&, Reg, Reg);
  bool (*truth)(bool, bool);
  GateCost (*cost)();
  bool preserves_inputs;
};

const GateCase kGateCases[] = {
    {"nand", gate_nand, [](bool a, bool b) { return !(a && b); }, cost_nand,
     true},
    {"and", gate_and, [](bool a, bool b) { return a && b; }, cost_and, true},
    {"or", gate_or, [](bool a, bool b) { return a || b; }, cost_or, true},
    {"nor", gate_nor, [](bool a, bool b) { return !(a || b); }, cost_nor,
     true},
    {"xor_destructive", gate_xor_destructive,
     [](bool a, bool b) { return a != b; }, cost_xor_destructive, false},
    {"xor", gate_xor, [](bool a, bool b) { return a != b; }, cost_xor, true},
    {"xnor", gate_xnor, [](bool a, bool b) { return a == b; }, cost_xnor,
     true},
};

class GateTruth : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruth, AllInputCombinations) {
  const GateCase& gc = GetParam();
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      IdealFabric f;
      const Reg ra = f.alloc();
      const Reg rb = f.alloc();
      f.set(ra, a);
      f.set(rb, b);
      f.reset_counters();
      const std::size_t regs_before = f.size();
      const Reg out = gc.gate(f, ra, rb);
      EXPECT_EQ(f.read(out), gc.truth(a, b))
          << gc.name << '(' << a << ',' << b << ')';
      EXPECT_EQ(f.steps(), gc.cost().steps) << gc.name << " step count";
      EXPECT_EQ(f.size() - regs_before, gc.cost().registers)
          << gc.name << " register count";
      EXPECT_EQ(f.read(ra), a) << gc.name << " must preserve input a";
      if (gc.preserves_inputs) {
        EXPECT_EQ(f.read(rb), b) << gc.name << " must preserve input b";
      }
    }
}

INSTANTIATE_TEST_SUITE_P(AllGates, GateTruth, ::testing::ValuesIn(kGateCases),
                         [](const auto& param_info) {
                           return std::string(param_info.param.name);
                         });

TEST(Gates, PaperXorStepCountIsThirteen) {
  // Table 1: "an XOR takes 13 steps".
  EXPECT_EQ(cost_xor().steps, 13u);
  EXPECT_EQ(cost_xor().registers, 5u);
}

TEST(Gates, NandIsThreeSteps) {
  // Table 1: "an NAND takes 3 steps".
  EXPECT_EQ(cost_nand().steps, 3u);
}

TEST(Gates, WritesEqualStepsOnSingleStepBackend) {
  // Every primitive is one device write on the IMPLY backend.
  IdealFabric f;
  const Reg a = f.alloc();
  const Reg b = f.alloc();
  f.set(a, true);
  f.set(b, false);
  f.reset_counters();
  (void)gate_xor(f, a, b);
  EXPECT_EQ(f.steps(), f.writes());
}

TEST(Gates, LatencyAndEnergyFollowCostModel) {
  LogicCostModel cost;
  cost.t_step = 200.0_ps;
  cost.e_write = 1.0_fJ;
  IdealFabric f(cost);
  const Reg a = f.alloc();
  const Reg b = f.alloc();
  f.set(a, true);
  f.set(b, true);
  f.reset_counters();
  (void)gate_nand(f, a, b);
  EXPECT_NEAR(f.latency().value(), 3 * 200e-12, 1e-18);
  EXPECT_NEAR(f.energy().value(), 3 * 1e-15, 1e-24);
}

TEST(Gates, UnallocatedRegisterThrows) {
  IdealFabric f;
  const Reg a = f.alloc();
  EXPECT_THROW(f.set(a + 1, true), Error);
  EXPECT_THROW(f.imply(a, a + 5), Error);
  EXPECT_THROW((void)f.read(a + 1), Error);
}

}  // namespace
}  // namespace memcim
