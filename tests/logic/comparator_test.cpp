#include "logic/comparator.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "logic/ideal_fabric.h"

namespace memcim {
namespace {

bool run_paper_comparator(bool a1, bool a0, bool b1, bool b0) {
  IdealFabric f;
  const Reg ra1 = f.alloc(), ra0 = f.alloc(), rb1 = f.alloc(),
            rb0 = f.alloc();
  f.set(ra1, a1);
  f.set(ra0, a0);
  f.set(rb1, b1);
  f.set(rb0, b0);
  return f.read(paper_comparator(f, ra1, ra0, rb1, rb0));
}

bool run_equality_comparator(bool a1, bool a0, bool b1, bool b0) {
  IdealFabric f;
  const Reg ra1 = f.alloc(), ra0 = f.alloc(), rb1 = f.alloc(),
            rb0 = f.alloc();
  f.set(ra1, a1);
  f.set(ra0, a0);
  f.set(rb1, b1);
  f.set(rb0, b0);
  return f.read(equality_comparator(f, ra1, ra0, rb1, rb0));
}

TEST(Comparator, PaperCircuitTruthTable) {
  // out = NAND(a1⊕b1, a0⊕b0): 0 exactly when both bit positions differ.
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b) {
      const bool a1 = a & 2, a0 = a & 1, b1 = b & 2, b0 = b & 1;
      const bool expect = !((a1 != b1) && (a0 != b0));
      EXPECT_EQ(run_paper_comparator(a1, a0, b1, b0), expect)
          << "a=" << a << " b=" << b;
    }
}

TEST(Comparator, EqualityCircuitTruthTable) {
  for (int a = 0; a < 4; ++a)
    for (int b = 0; b < 4; ++b) {
      const bool a1 = a & 2, a0 = a & 1, b1 = b & 2, b0 = b & 1;
      EXPECT_EQ(run_equality_comparator(a1, a0, b1, b0), a == b)
          << "a=" << a << " b=" << b;
    }
}

TEST(Comparator, PaperCostSheetMatchesTable1) {
  const ComparatorCost cost = comparator_cost();
  EXPECT_EQ(cost.parallel_steps, 16u);  // 2 XOR in parallel (13) + NAND (3)
  EXPECT_EQ(cost.devices, 13u);         // 2·5 (XOR) + 3 (NAND)
  EXPECT_EQ(cost.serial_steps, 29u);    // 13 + 13 + 3 on one row
}

TEST(Comparator, SerialExecutionStepsMatchCostSheet) {
  IdealFabric f;
  const Reg a1 = f.alloc(), a0 = f.alloc(), b1 = f.alloc(), b0 = f.alloc();
  f.set(a1, true);
  f.set(a0, false);
  f.set(b1, false);
  f.set(b0, true);
  f.reset_counters();
  (void)paper_comparator(f, a1, a0, b1, b0);
  EXPECT_EQ(f.steps(), comparator_cost().serial_steps);
}

TEST(Comparator, WordEqualityMatchesBitwiseCompare) {
  const std::vector<bool> word_a{true, false, true, true, false};
  for (int flip = -1; flip < 5; ++flip) {
    std::vector<bool> word_b = word_a;
    if (flip >= 0) word_b[static_cast<std::size_t>(flip)] = !word_b[static_cast<std::size_t>(flip)];
    IdealFabric f;
    const std::vector<Reg> ra = load_word(f, word_a);
    const std::vector<Reg> rb = load_word(f, word_b);
    const Reg eq = word_equality(f, ra, rb);
    EXPECT_EQ(f.read(eq), flip < 0) << "flip=" << flip;
  }
}

TEST(Comparator, WordEqualityValidatesOperands) {
  IdealFabric f;
  const std::vector<Reg> a = load_word(f, {true, false});
  const std::vector<Reg> b = load_word(f, {true});
  EXPECT_THROW((void)word_equality(f, a, b), Error);
  const std::vector<Reg> empty;
  EXPECT_THROW((void)word_equality(f, empty, empty), Error);
}

TEST(Comparator, LoadWordSetsEveryBit) {
  IdealFabric f;
  const std::vector<bool> bits{true, true, false, true};
  const std::vector<Reg> regs = load_word(f, bits);
  ASSERT_EQ(regs.size(), 4u);
  for (std::size_t i = 0; i < bits.size(); ++i)
    EXPECT_EQ(f.read(regs[i]), bits[i]);
  EXPECT_EQ(f.writes(), 4u);
}

}  // namespace
}  // namespace memcim
