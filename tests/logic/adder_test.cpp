#include "logic/adder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "logic/ideal_fabric.h"

namespace memcim {
namespace {

TEST(Adder, FullAdderTruthTable) {
  for (int in = 0; in < 8; ++in) {
    const bool a = in & 1, b = in & 2, cin = in & 4;
    IdealFabric f;
    const Reg ra = f.alloc(), rb = f.alloc(), rc = f.alloc();
    f.set(ra, a);
    f.set(rb, b);
    f.set(rc, cin);
    f.reset_counters();
    const FullAdderResult r = full_adder(f, ra, rb, rc);
    const int total = int(a) + int(b) + int(cin);
    EXPECT_EQ(f.read(r.sum), total % 2 == 1) << "inputs " << in;
    EXPECT_EQ(f.read(r.carry), total >= 2) << "inputs " << in;
    EXPECT_EQ(f.steps(), cost_full_adder().steps);
  }
}

TEST(Adder, FullAdderCostSheet) {
  // 2 XOR (13) + 2 AND (5) + OR (7) = 43 steps.
  EXPECT_EQ(cost_full_adder().steps, 43u);
  EXPECT_EQ(ripple_adder_steps(32), 1u + 43u * 32u);
}

TEST(Adder, ExhaustiveFourBit) {
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b) {
      IdealFabric f;
      EXPECT_EQ(add_integers(f, a, b, 4), (a + b) & 0xFu)
          << a << " + " << b;
    }
}

TEST(Adder, CarryOutDetected) {
  IdealFabric f;
  std::vector<Reg> a, b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(f.alloc());
    b.push_back(f.alloc());
    f.set(a.back(), true);   // a = 0b1111
    f.set(b.back(), i == 0); // b = 0b0001
  }
  const RippleAdderResult r = ripple_adder(f, a, b);
  EXPECT_TRUE(f.read(r.carry_out));
  for (const Reg s : r.sum) EXPECT_FALSE(f.read(s));  // 15+1 = 16 ≡ 0
}

TEST(Adder, RandomThirtyTwoBit) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = static_cast<std::uint64_t>(
        rng.uniform_int(0, std::numeric_limits<std::int32_t>::max()));
    const auto b = static_cast<std::uint64_t>(
        rng.uniform_int(0, std::numeric_limits<std::int32_t>::max()));
    IdealFabric f;
    EXPECT_EQ(add_integers(f, a, b, 32), (a + b) & 0xFFFFFFFFu);
  }
}

TEST(Adder, StepsScaleLinearlyWithWidth) {
  IdealFabric f4, f8;
  (void)add_integers(f4, 1, 2, 4);
  (void)add_integers(f8, 1, 2, 8);
  // Subtract the 2·width input loads; the adds themselves must match
  // the cost sheet exactly.
  EXPECT_EQ(f4.steps() - 2 * 4, ripple_adder_steps(4));
  EXPECT_EQ(f8.steps() - 2 * 8, ripple_adder_steps(8));
}

TEST(Adder, OperandValidation) {
  IdealFabric f;
  std::vector<Reg> a{f.alloc()};
  std::vector<Reg> b;
  EXPECT_THROW((void)ripple_adder(f, a, b), Error);
  EXPECT_THROW((void)add_integers(f, 1, 2, 0), Error);
  EXPECT_THROW((void)add_integers(f, 1, 2, 65), Error);
}

}  // namespace
}  // namespace memcim
