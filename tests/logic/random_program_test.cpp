// Randomized equivalence: arbitrary IMP micro-programs executed on the
// ideal fabric and on the CRS fabric must agree bit-for-bit — both
// implement the same implication algebra, so any divergence is a
// backend bug.  (The device-level fabric is checked separately through
// the gate library; raw random IMP streams can exceed its analog creep
// budget by construction.)
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "device/presets.h"
#include "fault/fabric_faults.h"
#include "fault/golden.h"
#include "logic/crs_fabric.h"
#include "logic/ideal_fabric.h"
#include "logic/program.h"

namespace memcim {
namespace {

CimProgram random_program(std::size_t inputs, std::size_t scratch,
                          std::size_t length, Rng& rng) {
  CimProgram p;
  p.inputs = inputs;
  p.registers = inputs + scratch;
  for (std::size_t i = 0; i < length; ++i) {
    CimInstruction inst;
    const auto pick_reg = [&] {
      return static_cast<Reg>(rng.uniform_int(
          0, static_cast<std::int64_t>(p.registers - 1)));
    };
    const double roll = rng.uniform();
    if (roll < 0.2) {
      inst.op = CimOp::kSetFalse;
      inst.a = pick_reg();
    } else if (roll < 0.4) {
      inst.op = CimOp::kSetTrue;
      inst.a = pick_reg();
    } else {
      inst.op = CimOp::kImply;
      inst.a = pick_reg();
      do {
        inst.b = pick_reg();
      } while (inst.b == inst.a);
    }
    p.instructions.push_back(inst);
  }
  p.output = static_cast<Reg>(
      rng.uniform_int(0, static_cast<std::int64_t>(p.registers - 1)));
  return p;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, IdealAndCrsBackendsAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const CimProgram p = random_program(3, 4, 30, rng);
    for (std::uint64_t in = 0; in < 8; ++in) {
      const std::vector<bool> inputs{bool(in & 1), bool(in & 2), bool(in & 4)};
      IdealFabric ideal;
      CrsFabric crs(presets::crs_cell());
      const bool expect = run_program(p, ideal, inputs);
      EXPECT_EQ(run_program(p, crs, inputs), expect)
          << "trial " << trial << " inputs " << in;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto& tp_info) {
                           return "seed" + std::to_string(tp_info.param);
                         });

// Seeded property test with divergence shrinking: run random programs
// against stuck-at-corrupted twins; whenever any prefix diverges, the
// shrinker must name the *minimal* failing prefix — verified by
// replaying L−1 (must agree) and L (must differ) directly.
TEST(RandomPrograms, ShrinkerReportsMinimalFailingPrefix) {
  Rng rng(0x5321);
  std::size_t diverged = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const CimProgram p = random_program(3, 4, 30, rng);
    const std::uint64_t plan_seed = rng.engine()();
    const auto make_reference = [] {
      return std::unique_ptr<Fabric>(std::make_unique<IdealFabric>());
    };
    // Each subject replay gets its own injector (kept alive here);
    // identical plans, so every replay sees the same stuck registers.
    std::vector<std::unique_ptr<FabricFaultInjector>> injectors;
    const auto make_subject = [&] {
      FaultPlan plan(p.registers, plan_seed);
      plan.arm({FaultKind::kStuckAtLrs, 0.2, 1.0, 0.0});
      plan.arm({FaultKind::kStuckAtHrs, 0.2, 1.0, 0.0});
      injectors.push_back(
          std::make_unique<FabricFaultInjector>(std::move(plan)));
      auto fabric = std::make_unique<IdealFabric>();
      fabric->attach_faults(injectors.back().get());
      return std::unique_ptr<Fabric>(std::move(fabric));
    };

    for (std::uint64_t in = 0; in < 8; ++in) {
      const std::vector<bool> inputs{bool(in & 1), bool(in & 2), bool(in & 4)};
      const auto prefix =
          minimal_failing_prefix(p, inputs, make_reference, make_subject);
      if (!prefix.has_value()) continue;  // faults masked for this input
      ++diverged;
      const auto replay = [&](std::size_t length) {
        const auto ref = make_reference();
        const auto sub = make_subject();
        return run_program_prefix(p, *ref, inputs, length) !=
               run_program_prefix(p, *sub, inputs, length);
      };
      EXPECT_TRUE(replay(*prefix)) << "trial " << trial << " input " << in;
      if (*prefix > 0) {
        EXPECT_FALSE(replay(*prefix - 1))
            << "not minimal: trial " << trial << " input " << in;
      }
    }
  }
  // With 40% of registers stuck the sweep must actually exercise the
  // shrinker, not vacuously pass.
  EXPECT_GT(diverged, 0u);
}

TEST(RandomPrograms, NoFaultSubjectNeverDiverges) {
  Rng rng(0x5322);
  for (int trial = 0; trial < 10; ++trial) {
    const CimProgram p = random_program(3, 4, 30, rng);
    const auto make_ideal = [] {
      return std::unique_ptr<Fabric>(std::make_unique<IdealFabric>());
    };
    std::vector<std::unique_ptr<FabricFaultInjector>> injectors;
    const auto make_hooked = [&] {
      // Empty plan attached: must be bit-identical to the bare fabric.
      injectors.push_back(
          std::make_unique<FabricFaultInjector>(FaultPlan(p.registers, 9)));
      auto fabric = std::make_unique<IdealFabric>();
      fabric->attach_faults(injectors.back().get());
      return std::unique_ptr<Fabric>(std::move(fabric));
    };
    for (std::uint64_t in = 0; in < 8; ++in) {
      const std::vector<bool> inputs{bool(in & 1), bool(in & 2), bool(in & 4)};
      EXPECT_EQ(minimal_failing_prefix(p, inputs, make_ideal, make_hooked),
                std::nullopt)
          << "trial " << trial << " input " << in;
    }
  }
}

TEST(RandomPrograms, SimdAgreesWithScalarReplay) {
  Rng rng(42);
  const CimProgram p = random_program(3, 3, 20, rng);
  std::vector<std::vector<bool>> windows;
  for (std::uint64_t in = 0; in < 8; ++in)
    windows.push_back({bool(in & 1), bool(in & 2), bool(in & 4)});
  IdealFabric simd_fabric;
  const SimdRunResult simd = run_program_simd(p, simd_fabric, windows);
  for (std::uint64_t in = 0; in < 8; ++in) {
    IdealFabric scalar;
    EXPECT_EQ(simd.outputs[in], run_program(p, scalar, windows[in])) << in;
  }
}

}  // namespace
}  // namespace memcim
