// Randomized equivalence: arbitrary IMP micro-programs executed on the
// ideal fabric and on the CRS fabric must agree bit-for-bit — both
// implement the same implication algebra, so any divergence is a
// backend bug.  (The device-level fabric is checked separately through
// the gate library; raw random IMP streams can exceed its analog creep
// budget by construction.)
#include <gtest/gtest.h>

#include "common/rng.h"
#include "device/presets.h"
#include "logic/crs_fabric.h"
#include "logic/ideal_fabric.h"
#include "logic/program.h"

namespace memcim {
namespace {

CimProgram random_program(std::size_t inputs, std::size_t scratch,
                          std::size_t length, Rng& rng) {
  CimProgram p;
  p.inputs = inputs;
  p.registers = inputs + scratch;
  for (std::size_t i = 0; i < length; ++i) {
    CimInstruction inst;
    const auto pick_reg = [&] {
      return static_cast<Reg>(rng.uniform_int(
          0, static_cast<std::int64_t>(p.registers - 1)));
    };
    const double roll = rng.uniform();
    if (roll < 0.2) {
      inst.op = CimOp::kSetFalse;
      inst.a = pick_reg();
    } else if (roll < 0.4) {
      inst.op = CimOp::kSetTrue;
      inst.a = pick_reg();
    } else {
      inst.op = CimOp::kImply;
      inst.a = pick_reg();
      do {
        inst.b = pick_reg();
      } while (inst.b == inst.a);
    }
    p.instructions.push_back(inst);
  }
  p.output = static_cast<Reg>(
      rng.uniform_int(0, static_cast<std::int64_t>(p.registers - 1)));
  return p;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPrograms, IdealAndCrsBackendsAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const CimProgram p = random_program(3, 4, 30, rng);
    for (std::uint64_t in = 0; in < 8; ++in) {
      const std::vector<bool> inputs{bool(in & 1), bool(in & 2), bool(in & 4)};
      IdealFabric ideal;
      CrsFabric crs(presets::crs_cell());
      const bool expect = run_program(p, ideal, inputs);
      EXPECT_EQ(run_program(p, crs, inputs), expect)
          << "trial " << trial << " inputs " << in;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto& tp_info) {
                           return "seed" + std::to_string(tp_info.param);
                         });

TEST(RandomPrograms, SimdAgreesWithScalarReplay) {
  Rng rng(42);
  const CimProgram p = random_program(3, 3, 20, rng);
  std::vector<std::vector<bool>> windows;
  for (std::uint64_t in = 0; in < 8; ++in)
    windows.push_back({bool(in & 1), bool(in & 2), bool(in & 4)});
  IdealFabric simd_fabric;
  const SimdRunResult simd = run_program_simd(p, simd_fabric, windows);
  for (std::uint64_t in = 0; in < 8; ++in) {
    IdealFabric scalar;
    EXPECT_EQ(simd.outputs[in], run_program(p, scalar, windows[in])) << in;
  }
}

}  // namespace
}  // namespace memcim
