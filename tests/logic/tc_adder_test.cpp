#include "logic/tc_adder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "device/presets.h"

namespace memcim {
namespace {

TEST(TcAdder, PaperCostSheet) {
  // Table 1: 34 devices (N+2, N=32), 133 steps (4N+5, N=32).
  EXPECT_EQ(CrsTcAdder::devices(32), 34u);
  EXPECT_EQ(CrsTcAdder::steps(32), 133u);
}

TEST(TcAdder, ExhaustiveFourBitWithBothCarries) {
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b)
      for (bool cin : {false, true}) {
        CrsTcAdder adder(4, presets::crs_cell());
        const TcAdderResult r = adder.add(a, b, cin);
        const std::uint64_t expect = a + b + (cin ? 1 : 0);
        EXPECT_EQ(r.sum, expect & 0xFu) << a << '+' << b << '+' << cin;
        EXPECT_EQ(r.carry_out, expect > 0xFu) << a << '+' << b << '+' << cin;
      }
}

TEST(TcAdder, PulseCountIsExactlyFourNPlusFive) {
  for (std::size_t width : {1u, 4u, 16u, 32u, 64u}) {
    CrsTcAdder adder(width, presets::crs_cell());
    const TcAdderResult r = adder.add(3, 5);
    EXPECT_EQ(r.pulses, 4 * width + 5) << "width " << width;
    // Schedule is constant-time: a different operand pair costs the same.
    const std::uint64_t all_ones =
        width == 64 ? ~0ull : (1ull << width) - 1;
    const TcAdderResult r2 = adder.add(all_ones, 1);
    EXPECT_EQ(r2.pulses, 4 * width + 5);
  }
}

TEST(TcAdder, LatencyMatchesTable1For32Bit) {
  CrsTcAdder adder(32, presets::crs_cell());
  const TcAdderResult r = adder.add(123456, 654321);
  // 133 steps × 200 ps = 26.6 ns (the paper's "16600 ps" is a typo for
  // 133·200 ps; see DESIGN.md §5).
  EXPECT_NEAR(r.latency.value(), 26.6e-9, 1e-12);
}

TEST(TcAdder, RandomWideAdditions) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 31));
    const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, 1LL << 31));
    CrsTcAdder adder(32, presets::crs_cell());
    const TcAdderResult r = adder.add(a, b);
    EXPECT_EQ(r.sum, (a + b) & 0xFFFFFFFFull);
    EXPECT_EQ(r.carry_out, (a + b) > 0xFFFFFFFFull);
  }
}

TEST(TcAdder, SumStaysResidentInCells) {
  CrsTcAdder adder(8, presets::crs_cell());
  (void)adder.add(100, 55);
  EXPECT_EQ(adder.stored_sum(), 155u);
  // Reading stored_sum is sense-side: issuing it twice changes nothing.
  EXPECT_EQ(adder.stored_sum(), 155u);
}

TEST(TcAdder, EnergyCountsOnlySwitchingEvents) {
  CrsTcAdder adder(8, presets::crs_cell());
  const TcAdderResult r1 = adder.add(0, 0);
  // 0 + 0: no sum cell ever sets, no carry forms; only the prologue /
  // init writes that actually change state cost energy.
  const TcAdderResult r2 = adder.add(255, 255);
  EXPECT_GT(r2.energy.value(), r1.energy.value());
  EXPECT_GT(r2.energy.value(), 0.0);
}

TEST(TcAdder, BackToBackAdditionsIndependent) {
  CrsTcAdder adder(16, presets::crs_cell());
  EXPECT_EQ(adder.add(1000, 2000).sum, 3000u);
  EXPECT_EQ(adder.add(65535, 1).sum, 0u);
  EXPECT_EQ(adder.add(0, 42).sum, 42u);
}

TEST(TcAdder, WidthValidation) {
  EXPECT_THROW(CrsTcAdder(0, presets::crs_cell()), Error);
  EXPECT_THROW(CrsTcAdder(65, presets::crs_cell()), Error);
}

}  // namespace
}  // namespace memcim
