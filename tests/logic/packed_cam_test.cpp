// Differential suite for the bit-sliced CAM match kernel: a packed CAM
// and a scalar CAM driven through identical write / erase / stuck-cell
// sequences must report identical matches, latency, and bitwise-equal
// energy on every search.
#include "logic/cam.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "device/presets.h"

namespace memcim {
namespace {

std::vector<bool> random_key(std::size_t bits, Rng& rng) {
  std::vector<bool> key(bits);
  for (std::size_t i = 0; i < bits; ++i) key[i] = rng.bernoulli(0.5);
  return key;
}

std::vector<CamBit> random_ternary_word(std::size_t bits, Rng& rng) {
  std::vector<CamBit> word(bits);
  for (auto& b : word) {
    const double roll = rng.uniform();
    b = roll < 0.15 ? CamBit::kDontCare
                    : (roll < 0.575 ? CamBit::kZero : CamBit::kOne);
  }
  return word;
}

/// Drive both CAMs through the same mutation, then cross-check a batch
/// of random searches bitwise.
class CamPair {
 public:
  CamPair(std::size_t rows, std::size_t word_bits) {
    CamConfig config;
    config.rows = rows;
    config.word_bits = word_bits;
    config.cell = presets::crs_cell();
    config.packed_match = true;
    packed_.emplace(config);
    config.packed_match = false;
    scalar_.emplace(config);
  }

  template <typename Fn>
  void mutate(Fn&& fn) {
    fn(*packed_);
    fn(*scalar_);
  }

  void cross_check(std::size_t searches, Rng& rng) {
    const std::size_t bits = packed_->config().word_bits;
    for (std::size_t s = 0; s < searches; ++s) {
      const std::vector<bool> key = random_key(bits, rng);
      const CamSearchResult a = packed_->search(key);
      const CamSearchResult b = scalar_->search(key);
      EXPECT_EQ(a.matching_rows, b.matching_rows);
      EXPECT_EQ(a.latency.value(), b.latency.value());
      EXPECT_EQ(a.energy.value(), b.energy.value());
    }
    EXPECT_EQ(packed_->searches(), scalar_->searches());
    EXPECT_EQ(packed_->total_energy().value(), scalar_->total_energy().value());
  }

  CrsCam& packed() { return *packed_; }
  CrsCam& scalar() { return *scalar_; }

 private:
  std::optional<CrsCam> packed_;
  std::optional<CrsCam> scalar_;
};

TEST(PackedCam, RandomTernaryContentsMatchScalar) {
  Rng rng(0xCA3);
  // 100 rows: one full 64-row block plus a partial block.
  CamPair pair(100, 24);
  pair.mutate([&](CrsCam& cam) {
    Rng fill(0x5EED);  // same stream into both instances
    for (std::size_t row = 0; row < cam.config().rows; ++row)
      cam.write_row_ternary(row, random_ternary_word(cam.config().word_bits,
                                                     fill));
  });
  pair.cross_check(200, rng);
}

TEST(PackedCam, EraseAndRewriteTrackScalar) {
  Rng rng(0xE7A5E);
  CamPair pair(70, 16);
  pair.mutate([&](CrsCam& cam) {
    Rng fill(0xF111);
    for (std::size_t row = 0; row < cam.config().rows; ++row)
      cam.write_row_ternary(row,
                            random_ternary_word(cam.config().word_bits, fill));
    // Erase rows straddling the 64-row block boundary, rewrite a few.
    for (const std::size_t row : {std::size_t{0}, std::size_t{63},
                                  std::size_t{64}, std::size_t{69}})
      cam.erase_row(row);
    cam.write_row(63, std::vector<bool>(cam.config().word_bits, true));
    cam.write_row(64, std::vector<bool>(cam.config().word_bits, false));
  });
  pair.cross_check(100, rng);

  const std::vector<bool> ones(16, true);
  EXPECT_EQ(pair.packed().search_first(ones), pair.scalar().search_first(ones));
}

TEST(PackedCam, StuckCellsReflectActualStates) {
  Rng rng(0x57C);
  CamPair pair(66, 12);
  pair.mutate([&](CrsCam& cam) {
    Rng fill(0xA11);
    for (std::size_t row = 0; row < cam.config().rows; ++row)
      cam.write_row_ternary(row,
                            random_ternary_word(cam.config().word_bits, fill));
    // Pin value cells on both sides of the block boundary, then rewrite
    // the rows: the packed index must track the *actual* (stuck) cell
    // states, not the requested word.
    cam.inject_stuck(3, 5, true);
    cam.inject_stuck(65, 0, false);
    cam.write_row(3, std::vector<bool>(cam.config().word_bits, false));
    cam.write_row(65, std::vector<bool>(cam.config().word_bits, true));
  });
  pair.cross_check(150, rng);
}

TEST(PackedCam, DontCareColumnsIgnoreKeyBits) {
  CamConfig config;
  config.rows = 65;
  config.word_bits = 8;
  config.cell = presets::crs_cell();
  config.packed_match = true;
  CrsCam cam(config);
  // Row 64 (first row of the partial block): all don't-care → matches
  // every key.
  cam.write_row_ternary(64, std::vector<CamBit>(8, CamBit::kDontCare));
  Rng rng(0xDC);
  for (int i = 0; i < 16; ++i) {
    const CamSearchResult r = cam.search(random_key(8, rng));
    ASSERT_EQ(r.matching_rows.size(), 1u);
    EXPECT_EQ(r.matching_rows.front(), 64u);
  }
}

}  // namespace
}  // namespace memcim
