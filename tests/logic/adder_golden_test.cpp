// Golden-vector differential tests for the two adder implementations:
// every sum is checked against plain integer addition — exhaustively
// over all 8-bit operand pairs, and with seeded-random 32-bit pairs.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.h"
#include "device/presets.h"
#include "logic/adder.h"
#include "logic/crs_fabric.h"
#include "logic/ideal_fabric.h"
#include "logic/tc_adder.h"

namespace memcim {
namespace {

TEST(AdderGolden, ImplyAdderExhaustive8Bit) {
  for (std::uint64_t a = 0; a < 256; ++a)
    for (std::uint64_t b = 0; b < 256; ++b) {
      IdealFabric fabric;
      ASSERT_EQ(add_integers(fabric, a, b, 8), (a + b) & 0xFFu)
          << a << " + " << b;
    }
}

TEST(AdderGolden, TcAdderExhaustive8Bit) {
  // One physical adder reused across all pairs: the pulse schedule must
  // leave no state behind that corrupts the next add.
  CrsTcAdder adder(8, presets::crs_cell());
  for (std::uint64_t a = 0; a < 256; ++a)
    for (std::uint64_t b = 0; b < 256; ++b) {
      const TcAdderResult r = adder.add(a, b);
      ASSERT_EQ(r.sum, (a + b) & 0xFFu) << a << " + " << b;
      ASSERT_EQ(r.carry_out, (a + b) > 0xFFu) << a << " + " << b;
    }
}

TEST(AdderGolden, ImplyAdderSeededRandom32Bit) {
  Rng rng(0xADDE);
  const std::uint64_t mask = 0xFFFFFFFFull;
  for (int trial = 0; trial < 64; ++trial) {
    const auto a = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask)));
    const auto b = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask)));
    IdealFabric fabric;
    ASSERT_EQ(add_integers(fabric, a, b, 32), (a + b) & mask)
        << a << " + " << b;
  }
}

TEST(AdderGolden, CrsFabricSeededRandom32Bit) {
  Rng rng(0xADDF);
  const std::uint64_t mask = 0xFFFFFFFFull;
  for (int trial = 0; trial < 16; ++trial) {
    const auto a = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask)));
    const auto b = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask)));
    CrsFabric fabric(presets::crs_cell());
    ASSERT_EQ(add_integers(fabric, a, b, 32), (a + b) & mask)
        << a << " + " << b;
  }
}

TEST(AdderGolden, TcAdderSeededRandom32Bit) {
  Rng rng(0xADE0);
  const std::uint64_t mask = 0xFFFFFFFFull;
  CrsTcAdder adder(32, presets::crs_cell());
  for (int trial = 0; trial < 256; ++trial) {
    const auto a = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask)));
    const auto b = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask)));
    const TcAdderResult r = adder.add(a, b);
    ASSERT_EQ(r.sum, (a + b) & mask) << a << " + " << b;
    ASSERT_EQ(r.carry_out, (a + b) > mask) << a << " + " << b;
  }
}

TEST(AdderGolden, CrsFabricExhaustive8BitSampled) {
  // CRS pulses are ~40× pricier than ideal ops; cover the exhaustive
  // grid on a coprime stride so every residue class is visited.
  for (std::uint64_t i = 0; i < 256 * 256; i += 251) {
    const std::uint64_t a = i >> 8, b = i & 0xFFu;
    CrsFabric fabric(presets::crs_cell());
    ASSERT_EQ(add_integers(fabric, a, b, 8), (a + b) & 0xFFu)
        << a << " + " << b;
  }
}

}  // namespace
}  // namespace memcim
