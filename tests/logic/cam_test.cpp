#include "logic/cam.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

CamConfig small_cam() {
  CamConfig cfg;
  cfg.rows = 8;
  cfg.word_bits = 8;
  cfg.cell = presets::crs_cell();
  return cfg;
}

std::vector<bool> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (v >> i) & 1u;
  return bits;
}

TEST(Cam, ExactMatchSingleRow) {
  CrsCam cam(small_cam());
  cam.write_row(3, bits_of(0xAB, 8));
  cam.write_row(5, bits_of(0xCD, 8));
  const CamSearchResult r = cam.search(bits_of(0xAB, 8));
  EXPECT_EQ(r.matching_rows, (std::vector<std::size_t>{3}));
  EXPECT_EQ(cam.search_first(bits_of(0xCD, 8)), 5u);
  EXPECT_FALSE(cam.search_first(bits_of(0xEE, 8)).has_value());
}

TEST(Cam, MultipleMatchesReturnedInRowOrder) {
  CrsCam cam(small_cam());
  for (std::size_t r : {1u, 4u, 6u}) cam.write_row(r, bits_of(0x3C, 8));
  const CamSearchResult r = cam.search(bits_of(0x3C, 8));
  EXPECT_EQ(r.matching_rows, (std::vector<std::size_t>{1, 4, 6}));
}

TEST(Cam, ErasedAndUnwrittenRowsNeverMatch) {
  CrsCam cam(small_cam());
  cam.write_row(0, bits_of(0x00, 8));
  const auto r1 = cam.search(bits_of(0x00, 8));
  EXPECT_EQ(r1.matching_rows, (std::vector<std::size_t>{0}));
  cam.erase_row(0);
  EXPECT_TRUE(cam.search(bits_of(0x00, 8)).matching_rows.empty());
  EXPECT_THROW((void)cam.read_row(0), Error);
}

TEST(Cam, TernaryDontCareBitsMatchBoth) {
  CrsCam cam(small_cam());
  // Row matching 0b0000_10*0: bit1 is don't-care.
  std::vector<CamBit> word(8, CamBit::kZero);
  word[3] = CamBit::kOne;
  word[1] = CamBit::kDontCare;
  cam.write_row_ternary(2, word);
  EXPECT_EQ(cam.search_first(bits_of(0b00001000, 8)), 2u);
  EXPECT_EQ(cam.search_first(bits_of(0b00001010, 8)), 2u);
  EXPECT_FALSE(cam.search_first(bits_of(0b00001100, 8)).has_value());
  const auto readback = cam.read_row(2);
  EXPECT_EQ(readback[1], CamBit::kDontCare);
  EXPECT_EQ(readback[3], CamBit::kOne);
  EXPECT_EQ(readback[0], CamBit::kZero);
}

TEST(Cam, SearchLatencyIndependentOfRowCount) {
  CamConfig big = small_cam();
  big.rows = 128;
  CrsCam small(small_cam()), large(big);
  small.write_row(0, bits_of(1, 8));
  large.write_row(0, bits_of(1, 8));
  const Time t_small = small.search(bits_of(1, 8)).latency;
  const Time t_large = large.search(bits_of(1, 8)).latency;
  EXPECT_EQ(t_small.value(), t_large.value());
  // 2 pulses × 200 ps.
  EXPECT_NEAR(t_small.value(), 400e-12, 1e-15);
}

TEST(Cam, MismatchEnergyScalesWithDischargingCells) {
  CrsCam cam(small_cam());
  cam.write_row(0, bits_of(0x00, 8));
  // Key differing in 1 bit vs 8 bits.
  const Energy e1 = cam.search(bits_of(0x01, 8)).energy;
  const Energy e8 = cam.search(bits_of(0xFF, 8)).energy;
  EXPECT_NEAR(e8.value() / e1.value(), 8.0, 1e-9);
  EXPECT_EQ(cam.searches(), 2u);
  EXPECT_NEAR(cam.total_energy().value(), e1.value() + e8.value(), 1e-24);
}

TEST(Cam, Validation) {
  CrsCam cam(small_cam());
  EXPECT_THROW(cam.write_row(20, bits_of(0, 8)), Error);
  EXPECT_THROW(cam.write_row(0, bits_of(0, 4)), Error);
  EXPECT_THROW((void)cam.search(bits_of(0, 4)), Error);
  CamConfig bad;
  bad.rows = 0;
  EXPECT_THROW(CrsCam{bad}, Error);
}

}  // namespace
}  // namespace memcim
