#include "logic/crs_fabric.h"

#include <gtest/gtest.h>

#include "device/presets.h"
#include "logic/adder.h"
#include "logic/comparator.h"
#include "logic/gates.h"

namespace memcim {
namespace {

TEST(CrsFabric, SetAndReadBack) {
  CrsFabric f(presets::crs_cell());
  const Reg a = f.alloc();
  f.set(a, true);
  EXPECT_TRUE(f.read(a));
  EXPECT_EQ(f.cell(a).state(), CrsState::kOne);
  f.set(a, false);
  EXPECT_FALSE(f.read(a));
}

TEST(CrsFabric, ImpTruthTableOnCrsCells) {
  // Figure 5(b): Z init '1', operate with V_q − V_p; only (1,0) flips.
  for (bool p : {false, true})
    for (bool q : {false, true}) {
      CrsFabric f(presets::crs_cell());
      const Reg rp = f.alloc();
      const Reg rq = f.alloc();
      f.set(rp, p);
      f.set(rq, q);
      f.imply(rp, rq);
      EXPECT_EQ(f.read(rq), !p || q) << "p=" << p << " q=" << q;
      EXPECT_EQ(f.read(rp), p);
    }
}

TEST(CrsFabric, ImpCostsTwoStepsOneWrite) {
  CrsFabric f(presets::crs_cell());
  const Reg p = f.alloc();
  const Reg q = f.alloc();
  f.set(p, true);
  f.set(q, true);
  f.reset_counters();
  f.imply(p, q);
  EXPECT_EQ(f.steps(), 2u);   // init pulse + operate pulse
  EXPECT_EQ(f.writes(), 1u);  // one device written
}

TEST(CrsFabric, GateLibraryRunsOnCrs) {
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      CrsFabric f(presets::crs_cell());
      const Reg ra = f.alloc();
      const Reg rb = f.alloc();
      f.set(ra, a);
      f.set(rb, b);
      EXPECT_EQ(f.read(gate_nand(f, ra, rb)), !(a && b));
      CrsFabric g(presets::crs_cell());
      const Reg ga = g.alloc();
      const Reg gb = g.alloc();
      g.set(ga, a);
      g.set(gb, b);
      EXPECT_EQ(g.read(gate_xor(g, ga, gb)), a != b);
    }
}

TEST(CrsFabric, AdditionOnCrsBackend) {
  CrsFabric f(presets::crs_cell());
  EXPECT_EQ(add_integers(f, 13, 29, 8), 42u);
}

TEST(CrsFabric, ComparatorOnCrsBackend) {
  CrsFabric f(presets::crs_cell());
  const std::vector<Reg> a = load_word(f, {true, false, true});
  const std::vector<Reg> b = load_word(f, {true, false, true});
  EXPECT_TRUE(f.read(word_equality(f, a, b)));
}

TEST(CrsFabric, CellBooksTrackActivity) {
  CrsFabric f(presets::crs_cell());
  const Reg a = f.alloc();
  const Reg b = f.alloc();
  f.set(a, true);
  f.set(b, false);
  f.imply(a, b);
  EXPECT_GE(f.cell_pulses(), 4u);  // 2 sets + init + operate
  EXPECT_GT(f.cell_energy().value(), 0.0);
}

TEST(CrsFabric, LatencyReflectsTwoStepImp) {
  CrsFabric crs(presets::crs_cell());
  const Reg a = crs.alloc();
  const Reg b = crs.alloc();
  crs.set(a, true);
  crs.set(b, false);
  crs.reset_counters();
  (void)gate_nand(crs, a, b);
  // NAND = 1 set + 2 IMP = 1 + 2·2 = 5 steps on the CRS backend.
  EXPECT_EQ(crs.steps(), 5u);
}

}  // namespace
}  // namespace memcim
