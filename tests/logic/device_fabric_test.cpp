#include "logic/device_fabric.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"
#include "logic/gates.h"

namespace memcim {
namespace {

using namespace memcim::literals;

DeviceFabricParams fabric_params() {
  DeviceFabricParams p;
  p.device = presets::vcm_taox_logic();
  return p;
}

TEST(DeviceFabric, SetAndReadBack) {
  DeviceFabric f(fabric_params());
  const Reg a = f.alloc();
  f.set(a, true);
  EXPECT_TRUE(f.read(a));
  EXPECT_GT(f.analog_state(a), 0.9);
  f.set(a, false);
  EXPECT_FALSE(f.read(a));
  EXPECT_LT(f.analog_state(a), 0.1);
}

TEST(DeviceFabric, ImpTruthTableWithRealDevices) {
  // The Figure 5(a) circuit must realize q ← p IMP q for all four
  // input combinations with full digital margins.
  for (bool p : {false, true})
    for (bool q : {false, true}) {
      DeviceFabric f(fabric_params());
      const Reg rp = f.alloc();
      const Reg rq = f.alloc();
      f.set(rp, p);
      f.set(rq, q);
      f.imply(rp, rq);
      EXPECT_EQ(f.read(rq), !p || q) << "p=" << p << " q=" << q;
      EXPECT_EQ(f.read(rp), p) << "P must not be disturbed by V_COND";
    }
}

TEST(DeviceFabric, SharedNodeVoltageRegimes) {
  DeviceFabric f(fabric_params());
  const Reg p = f.alloc();
  const Reg q = f.alloc();
  f.set(p, true);
  f.set(q, false);
  // P LRS pulls the node toward V_COND: Q's drive is squeezed.
  const double vn_hold = f.imp_node_voltage(p, q).value();
  EXPECT_GT(vn_hold, 0.3);
  f.set(p, false);
  // P HRS: node collapses toward ground, Q sees nearly V_SET.
  const double vn_set = f.imp_node_voltage(p, q).value();
  EXPECT_LT(vn_set, 0.15);
}

TEST(DeviceFabric, FalseSetCreepIsBounded) {
  // The p=1, q=0 case must leave q near 0 even after repeated IMPs —
  // the voltage-time margin of the Kvatinsky design rules.
  DeviceFabric f(fabric_params());
  const Reg p = f.alloc();
  const Reg q = f.alloc();
  f.set(p, true);
  f.set(q, false);
  for (int k = 0; k < 3; ++k) f.imply(p, q);
  EXPECT_FALSE(f.read(q));
  EXPECT_LT(f.analog_state(q), 0.3);
}

TEST(DeviceFabric, NandGateOnRealDevices) {
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      DeviceFabric f(fabric_params());
      const Reg ra = f.alloc();
      const Reg rb = f.alloc();
      f.set(ra, a);
      f.set(rb, b);
      const Reg out = gate_nand(f, ra, rb);
      EXPECT_EQ(f.read(out), !(a && b)) << "a=" << a << " b=" << b;
    }
}

TEST(DeviceFabric, NotAndOrGatesOnRealDevices) {
  for (bool a : {false, true}) {
    DeviceFabric f(fabric_params());
    const Reg ra = f.alloc();
    f.set(ra, a);
    EXPECT_EQ(f.read(gate_not(f, ra)), !a);
  }
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      DeviceFabric f(fabric_params());
      const Reg ra = f.alloc();
      const Reg rb = f.alloc();
      f.set(ra, a);
      f.set(rb, b);
      EXPECT_EQ(f.read(gate_or(f, ra, rb)), a || b) << a << ',' << b;
    }
}

TEST(DeviceFabric, CircuitEnergyIsPositiveAndGrows) {
  DeviceFabric f(fabric_params());
  const Reg a = f.alloc();
  const Reg b = f.alloc();
  f.set(a, true);
  f.set(b, false);
  const double e1 = f.circuit_energy().value();
  EXPECT_GT(e1, 0.0);
  f.imply(a, b);
  EXPECT_GT(f.circuit_energy().value(), e1);
}

TEST(DeviceFabric, DesignRuleValidation) {
  DeviceFabricParams p = fabric_params();
  p.v_cond = 1.0_V;  // above the 0.8 V SET threshold
  EXPECT_THROW(DeviceFabric{p}, Error);
  p = fabric_params();
  p.r_g = 1.0_ohm;  // below R_on
  EXPECT_THROW(DeviceFabric{p}, Error);
  p = fabric_params();
  p.r_g = 1e9_ohm;  // above R_off
  EXPECT_THROW(DeviceFabric{p}, Error);
  p = fabric_params();
  p.v_set = 0.5_V;  // below the SET threshold
  EXPECT_THROW(DeviceFabric{p}, Error);
}

}  // namespace
}  // namespace memcim
