#include "logic/program.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"
#include "logic/adder.h"
#include "logic/comparator.h"
#include "logic/crs_fabric.h"
#include "logic/device_fabric.h"
#include "logic/gates.h"
#include "logic/ideal_fabric.h"

namespace memcim {
namespace {

CimProgram xor_program() {
  return record_program(2, [](Fabric& f, const std::vector<Reg>& in) {
    return gate_xor(f, in[0], in[1]);
  });
}

TEST(Program, RecordingCapturesGateSequence) {
  const CimProgram p = xor_program();
  EXPECT_EQ(p.inputs, 2u);
  // 13 micro-ops (the XOR step count) — loading inputs is the runner's
  // job, not the program's.
  EXPECT_EQ(p.length(), 13u);
  EXPECT_EQ(p.registers, 2u + cost_xor().registers);
}

TEST(Program, ReplayMatchesDirectExecution) {
  const CimProgram p = xor_program();
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      IdealFabric f;
      EXPECT_EQ(run_program(p, f, {a, b}), a != b) << a << ',' << b;
    }
}

TEST(Program, ReplayOnAllThreeBackends) {
  const CimProgram p = record_program(2, [](Fabric& f, const std::vector<Reg>& in) {
    return gate_nand(f, in[0], in[1]);
  });
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      IdealFabric ideal;
      EXPECT_EQ(run_program(p, ideal, {a, b}), !(a && b));
      CrsFabric crs(presets::crs_cell());
      EXPECT_EQ(run_program(p, crs, {a, b}), !(a && b));
      DeviceFabricParams dp;
      dp.device = presets::vcm_taox_logic();
      DeviceFabric dev(dp);
      EXPECT_EQ(run_program(p, dev, {a, b}), !(a && b));
    }
}

TEST(Program, RecordedAdderComputesAcrossReplays) {
  const CimProgram adder4 =
      record_program(8, [](Fabric& f, const std::vector<Reg>& in) {
        const std::span<const Reg> a(in.data(), 4);
        const std::span<const Reg> b(in.data() + 4, 4);
        // Result register of the LSB… we need the whole sum; wrap into
        // one output by comparing against a constant is overkill — use
        // the carry-out as the probe output and read sums via the
        // window in the SIMD test below.
        return ripple_adder(f, a, b).carry_out;
      });
  // carry(15 + 1) = 1, carry(7 + 1) = 0 within 4 bits.
  IdealFabric f1, f2;
  EXPECT_TRUE(run_program(adder4, f1,
                          {true, true, true, true, true, false, false, false}));
  EXPECT_FALSE(run_program(adder4, f2,
                           {true, true, true, false, true, false, false, false}));
}

TEST(Program, SimdRunSharesLatencyAcrossWindows) {
  const CimProgram p = xor_program();
  IdealFabric f;
  std::vector<std::vector<bool>> windows{
      {false, false}, {false, true}, {true, false}, {true, true}};
  const SimdRunResult r = run_program_simd(p, f, windows);
  ASSERT_EQ(r.outputs.size(), 4u);
  EXPECT_EQ(r.outputs, (std::vector<bool>{false, true, true, false}));
  // Latency = inputs (2 sets) + 13 program steps, NOT ×4 windows.
  EXPECT_NEAR(r.latency.value(), 15 * 200e-12, 1e-15);
  // Energy covers all four windows.
  EXPECT_NEAR(r.energy.value(), 4 * 15 * 1e-15, 1e-24);
  EXPECT_EQ(r.writes, 60u);
}

TEST(Program, SimdOnCrsBackend) {
  const CimProgram p = record_program(4, [](Fabric& f, const std::vector<Reg>& in) {
    return word_equality(f, std::span<const Reg>(in.data(), 2),
                         std::span<const Reg>(in.data() + 2, 2));
  });
  CrsFabric crs(presets::crs_cell());
  const SimdRunResult r = run_program_simd(
      p, crs,
      {{true, false, true, false},    // equal words
       {true, false, false, false},   // differ
       {false, false, false, false}});
  EXPECT_EQ(r.outputs, (std::vector<bool>{true, false, true}));
}

TEST(Program, Validation) {
  const CimProgram p = xor_program();
  IdealFabric f;
  EXPECT_THROW((void)run_program(p, f, {true}), Error);  // arity
  EXPECT_THROW((void)run_program_simd(p, f, {}), Error);
  CimProgram empty;
  EXPECT_THROW((void)run_program(empty, f, {}), Error);
}

}  // namespace
}  // namespace memcim
