// Property suite: the gate library is backend-independent.  Every gate
// × every input combination must produce identical results on the
// ideal cost-model fabric, the Figure 5(a) device-level fabric and the
// Figure 5(b) CRS fabric — the "same microcode, any memristive
// substrate" property the CIM controller relies on.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "device/presets.h"
#include "logic/adder.h"
#include "logic/comparator.h"
#include "logic/crs_fabric.h"
#include "logic/device_fabric.h"
#include "logic/gates.h"
#include "logic/ideal_fabric.h"

namespace memcim {
namespace {

enum class Backend { kIdeal, kDevice, kCrs };

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kIdeal: return "ideal";
    case Backend::kDevice: return "device";
    case Backend::kCrs: return "crs";
  }
  return "?";
}

std::unique_ptr<Fabric> make_fabric(Backend b) {
  switch (b) {
    case Backend::kIdeal:
      return std::make_unique<IdealFabric>();
    case Backend::kDevice: {
      DeviceFabricParams p;
      p.device = presets::vcm_taox_logic();
      return std::make_unique<DeviceFabric>(p);
    }
    case Backend::kCrs:
      return std::make_unique<CrsFabric>(presets::crs_cell());
  }
  return nullptr;
}

struct GateSpec {
  const char* name;
  Reg (*gate)(Fabric&, Reg, Reg);
  bool (*truth)(bool, bool);
};

const GateSpec kGates[] = {
    {"nand", gate_nand, [](bool a, bool b) { return !(a && b); }},
    {"and", gate_and, [](bool a, bool b) { return a && b; }},
    {"or", gate_or, [](bool a, bool b) { return a || b; }},
    {"nor", gate_nor, [](bool a, bool b) { return !(a || b); }},
    {"xor", gate_xor, [](bool a, bool b) { return a != b; }},
    {"xnor", gate_xnor, [](bool a, bool b) { return a == b; }},
};

using CrossCase = std::tuple<Backend, std::size_t>;

class CrossFabric : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossFabric, GateTruthTableHolds) {
  const auto [backend, gate_idx] = GetParam();
  const GateSpec& spec = kGates[gate_idx];
  for (bool a : {false, true})
    for (bool b : {false, true}) {
      auto fabric = make_fabric(backend);
      const Reg ra = fabric->alloc();
      const Reg rb = fabric->alloc();
      fabric->set(ra, a);
      fabric->set(rb, b);
      const Reg out = spec.gate(*fabric, ra, rb);
      EXPECT_EQ(fabric->read(out), spec.truth(a, b))
          << backend_name(backend) << "::" << spec.name << '(' << a << ','
          << b << ')';
      // Inputs preserved on every backend.
      EXPECT_EQ(fabric->read(ra), a);
      EXPECT_EQ(fabric->read(rb), b);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllGates, CrossFabric,
    ::testing::Combine(::testing::Values(Backend::kIdeal, Backend::kDevice,
                                         Backend::kCrs),
                       ::testing::Range<std::size_t>(0, std::size(kGates))),
    [](const auto& tp_info) {
      return std::string(backend_name(std::get<0>(tp_info.param))) + "_" +
             kGates[std::get<1>(tp_info.param)].name;
    });

// Arithmetic equivalence: the same ripple adder across backends.
class CrossFabricAdder : public ::testing::TestWithParam<Backend> {};

TEST_P(CrossFabricAdder, FourBitAdditionSweep) {
  for (std::uint64_t a = 0; a < 16; a += 3)
    for (std::uint64_t b = 0; b < 16; b += 5) {
      auto fabric = make_fabric(GetParam());
      EXPECT_EQ(add_integers(*fabric, a, b, 4), (a + b) & 0xFu)
          << backend_name(GetParam()) << ' ' << a << '+' << b;
    }
}

TEST_P(CrossFabricAdder, ComparatorEquality) {
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 4; ++y) {
      auto fabric = make_fabric(GetParam());
      const Reg a1 = fabric->alloc(), a0 = fabric->alloc(),
                b1 = fabric->alloc(), b0 = fabric->alloc();
      fabric->set(a1, x & 2);
      fabric->set(a0, x & 1);
      fabric->set(b1, y & 2);
      fabric->set(b0, y & 1);
      const Reg eq = equality_comparator(*fabric, a1, a0, b1, b0);
      EXPECT_EQ(fabric->read(eq), x == y)
          << backend_name(GetParam()) << ' ' << x << " vs " << y;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, CrossFabricAdder,
                         ::testing::Values(Backend::kIdeal, Backend::kDevice,
                                           Backend::kCrs),
                         [](const auto& tp_info) {
                           return std::string(backend_name(tp_info.param));
                         });

}  // namespace
}  // namespace memcim
