#include "logic/interconnect.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

TEST(Interconnect, ConnectDisconnectRoundTrip) {
  ProgrammableInterconnect ic(4, 4, presets::crs_cell());
  EXPECT_FALSE(ic.connected(1, 2));
  ic.connect(1, 2);
  EXPECT_TRUE(ic.connected(1, 2));
  ic.disconnect(1, 2);
  EXPECT_FALSE(ic.connected(1, 2));
}

TEST(Interconnect, PropagateFollowsRouting) {
  ProgrammableInterconnect ic(4, 4, presets::crs_cell());
  ic.program_routing({2, 0, 3, 1});  // a permutation
  EXPECT_TRUE(ic.is_point_to_point());
  const auto out = ic.propagate({true, false, true, false});
  // input0(1)→out2, input1(0)→out0, input2(1)→out3, input3(0)→out1.
  EXPECT_EQ(out, (std::vector<bool>{false, false, true, true}));
}

TEST(Interconnect, WiredOrCombinesDrivers) {
  ProgrammableInterconnect ic(3, 1, presets::crs_cell());
  ic.connect(0, 0);
  ic.connect(2, 0);
  EXPECT_FALSE(ic.is_point_to_point());
  EXPECT_FALSE(ic.propagate({false, true, false})[0]);  // only 1 drives, not connected
  EXPECT_TRUE(ic.propagate({true, false, false})[0]);
  EXPECT_TRUE(ic.propagate({false, false, true})[0]);
}

TEST(Interconnect, ReprogrammingReplacesRoute) {
  ProgrammableInterconnect ic(2, 2, presets::crs_cell());
  ic.program_routing({0, 1});
  ic.program_routing({1, 0});  // swap
  const auto out = ic.propagate({true, false});
  EXPECT_EQ(out, (std::vector<bool>{false, true}));
  EXPECT_TRUE(ic.is_point_to_point());
}

TEST(Interconnect, ProgrammingCostsArePhysical) {
  ProgrammableInterconnect ic(2, 2, presets::crs_cell());
  EXPECT_EQ(ic.programming_pulses(), 0u);
  ic.connect(0, 0);
  EXPECT_EQ(ic.programming_pulses(), 1u);
  EXPECT_DOUBLE_EQ(ic.programming_energy().value(), 1e-15);  // one transition
  ic.connect(0, 0);  // already LRS: pulse spent, no switching energy
  EXPECT_EQ(ic.programming_pulses(), 2u);
  EXPECT_DOUBLE_EQ(ic.programming_energy().value(), 1e-15);
}

TEST(Interconnect, Validation) {
  ProgrammableInterconnect ic(2, 3, presets::crs_cell());
  EXPECT_THROW(ic.connect(2, 0), Error);
  EXPECT_THROW(ic.connect(0, 3), Error);
  EXPECT_THROW((void)ic.propagate({true}), Error);
  EXPECT_THROW(ic.program_routing({0}), Error);
  EXPECT_THROW(ProgrammableInterconnect(0, 1, presets::crs_cell()), Error);
}

// ---------------------------------------------------------------------------
// ResistivePla
// ---------------------------------------------------------------------------

TEST(Pla, SingleProductIsAndOfLiterals) {
  ResistivePla pla(3, 1, 1, presets::crs_cell());
  // term0 = x0 AND NOT x2
  pla.program_product(0, {{0, true}, {2, false}});
  pla.attach_product(0, 0);
  for (int m = 0; m < 8; ++m) {
    const bool x0 = m & 1, x2 = m & 4;
    const std::vector<bool> in{x0, bool(m & 2), x2};
    EXPECT_EQ(pla.evaluate(in)[0], x0 && !x2) << m;
  }
}

TEST(Pla, SumOfProductsXor) {
  // XOR = x0·¬x1 + ¬x0·x1.
  ResistivePla pla(2, 2, 1, presets::crs_cell());
  pla.program_product(0, {{0, true}, {1, false}});
  pla.program_product(1, {{0, false}, {1, true}});
  pla.attach_product(0, 0);
  pla.attach_product(1, 0);
  for (int m = 0; m < 4; ++m) {
    const bool a = m & 1, b = m & 2;
    EXPECT_EQ(pla.evaluate({a, b})[0], a != b) << m;
  }
}

TEST(Pla, MultiOutputSharedProducts) {
  // Full adder on a PLA: sum and carry share the product plane.
  ResistivePla pla(3, 7, 2, presets::crs_cell());
  // Sum = odd parity: 4 minterms.
  const std::vector<std::vector<PlaLiteral>> sum_terms = {
      {{0, true}, {1, false}, {2, false}},
      {{0, false}, {1, true}, {2, false}},
      {{0, false}, {1, false}, {2, true}},
      {{0, true}, {1, true}, {2, true}},
  };
  for (std::size_t t = 0; t < 4; ++t) {
    pla.program_product(t, sum_terms[t]);
    pla.attach_product(t, 0);
  }
  // Carry = majority: ab + ac + bc.
  pla.program_product(4, {{0, true}, {1, true}});
  pla.program_product(5, {{0, true}, {2, true}});
  pla.program_product(6, {{1, true}, {2, true}});
  for (std::size_t t = 4; t < 7; ++t) pla.attach_product(t, 1);
  // The shared minterm abc also feeds carry through terms 4-6.
  for (int m = 0; m < 8; ++m) {
    const int total = (m & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    const std::vector<bool> in{bool(m & 1), bool(m & 2), bool(m & 4)};
    const auto out = pla.evaluate(in);
    EXPECT_EQ(out[0], total % 2 == 1) << m;
    EXPECT_EQ(out[1], total >= 2) << m;
  }
}

TEST(Pla, EmptyProductIsTautology) {
  ResistivePla pla(2, 1, 1, presets::crs_cell());
  pla.program_product(0, {});
  pla.attach_product(0, 0);
  for (int m = 0; m < 4; ++m)
    EXPECT_TRUE(pla.evaluate({bool(m & 1), bool(m & 2)})[0]);
}

TEST(Pla, ReprogrammingChangesFunction) {
  ResistivePla pla(2, 1, 1, presets::crs_cell());
  pla.program_product(0, {{0, true}, {1, true}});  // AND
  pla.attach_product(0, 0);
  EXPECT_FALSE(pla.evaluate({true, false})[0]);
  pla.program_product(0, {{0, true}});  // now just x0
  EXPECT_TRUE(pla.evaluate({true, false})[0]);
  EXPECT_GT(pla.programming_energy().value(), 0.0);
}

TEST(Pla, Validation) {
  ResistivePla pla(2, 1, 1, presets::crs_cell());
  EXPECT_THROW(pla.program_product(1, {}), Error);
  EXPECT_THROW(pla.program_product(0, {{5, true}}), Error);
  EXPECT_THROW(pla.attach_product(0, 3), Error);
  EXPECT_THROW((void)pla.evaluate({true}), Error);
}

}  // namespace
}  // namespace memcim
