#include "logic/lut.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

TEST(Lut, TwoInputGatesViaLookup) {
  CrsLut lut(2, 1, presets::crs_cell());
  lut.program(0, [](std::uint64_t m) {  // XOR truth table
    return ((m & 1u) != 0) != ((m & 2u) != 0);
  });
  EXPECT_FALSE(lut.evaluate_single(0b00));
  EXPECT_TRUE(lut.evaluate_single(0b01));
  EXPECT_TRUE(lut.evaluate_single(0b10));
  EXPECT_FALSE(lut.evaluate_single(0b11));
}

TEST(Lut, MultiOutputFullAdder) {
  // 3 inputs (a, b, cin) → 2 outputs (sum, carry).
  CrsLut lut(3, 2, presets::crs_cell());
  lut.program_all([](std::uint64_t m) {
    const int total = int(m & 1u) + int((m >> 1) & 1u) + int((m >> 2) & 1u);
    return std::vector<bool>{total % 2 == 1, total >= 2};
  });
  for (std::uint64_t m = 0; m < 8; ++m) {
    const int total = int(m & 1u) + int((m >> 1) & 1u) + int((m >> 2) & 1u);
    const auto out = lut.evaluate(m);
    EXPECT_EQ(out[0], total % 2 == 1) << m;
    EXPECT_EQ(out[1], total >= 2) << m;
  }
}

TEST(Lut, RepeatedEvaluationIsStable) {
  // CRS destructive reads must be written back inside the bank.
  CrsLut lut(2, 1, presets::crs_cell());
  lut.program(0, [](std::uint64_t m) { return m == 2; });
  for (int rep = 0; rep < 10; ++rep) {
    EXPECT_TRUE(lut.evaluate_single(2));
    EXPECT_FALSE(lut.evaluate_single(1));
  }
  // Destructive '0' reads happened and were restored.
  EXPECT_GT(lut.memory().destructive_reads(), 0u);
}

TEST(Lut, SixInputParity) {
  CrsLut lut(6, 1, presets::crs_cell());
  lut.program(0, [](std::uint64_t m) { return __builtin_parityll(m) != 0; });
  for (std::uint64_t m = 0; m < 64; ++m)
    EXPECT_EQ(lut.evaluate_single(m), __builtin_parityll(m) != 0) << m;
}

TEST(Lut, CellCountDirectVsDecomposed) {
  // Direct 2^k scaling under the max size.
  EXPECT_EQ(lut_cells_for_function(4, 1, 6), 16u);
  EXPECT_EQ(lut_cells_for_function(6, 1, 6), 64u);
  EXPECT_EQ(lut_cells_for_function(6, 2, 6), 128u);
  // Above the cap: Shannon decomposition beats direct materialization.
  const std::size_t direct_10 = std::size_t{1} << 10;  // 1024 if allowed
  const std::size_t decomposed_10 = lut_cells_for_function(10, 1, 6);
  EXPECT_GT(decomposed_10, 64u);
  EXPECT_LT(decomposed_10, 4 * direct_10);
  // Monotone in inputs.
  EXPECT_GT(lut_cells_for_function(12, 1, 6), decomposed_10);
}

TEST(Lut, Validation) {
  EXPECT_THROW(CrsLut(0, 1, presets::crs_cell()), Error);
  EXPECT_THROW(CrsLut(21, 1, presets::crs_cell()), Error);
  CrsLut lut(2, 1, presets::crs_cell());
  EXPECT_THROW((void)lut.evaluate(4), Error);
  EXPECT_THROW(lut.program(1, [](std::uint64_t) { return true; }), Error);
  CrsLut multi(2, 2, presets::crs_cell());
  EXPECT_THROW((void)multi.evaluate_single(0), Error);
}

}  // namespace
}  // namespace memcim
