#include "eval/table2.h"

#include <gtest/gtest.h>

#include "eval/report.h"

namespace memcim {
namespace {

TEST(Table2, SixEntriesThreeMetricsTwoWorkloads) {
  const Table2 table = make_table2(paper_table1());
  ASSERT_EQ(table.entries.size(), 6u);
  int dna = 0, math = 0;
  for (const auto& e : table.entries) {
    if (std::string(e.workload) == "DNA sequencing") ++dna;
    if (std::string(e.workload) == "10^6 additions") ++math;
  }
  EXPECT_EQ(dna, 3);
  EXPECT_EQ(math, 3);
}

TEST(Table2, CimWinsEveryEnergyMetric) {
  const Table2 table = make_table2(paper_table1());
  for (const auto& e : table.entries) {
    if (std::string(e.metric).find("performance/area") != std::string::npos)
      continue;  // area story is separate
    EXPECT_GT(e.improvement(), 100.0)
        << e.metric << " / " << e.workload
        << ": CIM must win by orders of magnitude";
  }
}

TEST(Table2, MathColumnTracksPaperValues) {
  const Table2 table = make_table2(paper_table1());
  for (const auto& e : table.entries) {
    if (std::string(e.workload) != "10^6 additions") continue;
    if (std::string(e.metric).find("energy-delay") != std::string::npos) {
      EXPECT_NEAR(e.conventional, e.paper_conventional,
                  e.paper_conventional * 0.01);
      EXPECT_NEAR(e.cim, e.paper_cim, e.paper_cim * 0.001);
    }
    if (std::string(e.metric).find("efficiency") != std::string::npos) {
      EXPECT_NEAR(e.conventional, e.paper_conventional,
                  e.paper_conventional * 0.01);
      EXPECT_NEAR(e.cim, e.paper_cim, e.paper_cim * 0.001);
    }
  }
}

TEST(Table2, ImprovementDirectionHandling) {
  Table2Entry e;
  e.conventional = 100.0;
  e.cim = 1.0;
  e.smaller_is_better = true;
  EXPECT_DOUBLE_EQ(e.improvement(), 100.0);
  e.smaller_is_better = false;
  e.conventional = 1.0;
  e.cim = 100.0;
  EXPECT_DOUBLE_EQ(e.improvement(), 100.0);
}

TEST(Table2, RendersWithoutThrowingAndContainsHeadlineNumbers) {
  const Table2 table = make_table2(paper_table1());
  const std::string text = render_table2(table);
  EXPECT_NE(text.find("energy-delay/op"), std::string::npos);
  EXPECT_NE(text.find("1.5043e-18"), std::string::npos);  // paper column
  EXPECT_NE(text.find("3.9063e+12"), std::string::npos);
  const std::string audit = render_table2_audit(table);
  EXPECT_NE(audit.find("conventional"), std::string::npos);
  EXPECT_NE(audit.find("cim"), std::string::npos);
  const std::string t1 = render_table1(paper_table1());
  EXPECT_NE(t1.find("memristor write time"), std::string::npos);
  EXPECT_NE(t1.find("CLA adder gates"), std::string::npos);
}

}  // namespace
}  // namespace memcim
