// The measured-hit-rate experiment: replay the sorted-index algorithm's
// real address stream through the Table 1 cache and compare against the
// paper's assumed 50 %.
#include <gtest/gtest.h>

#include "conv/cluster.h"
#include "workloads/dna.h"

namespace memcim {
namespace {

TEST(DnaTrace, LookupsRecordIndexAndReferenceAccesses) {
  Rng rng(3);
  const std::string genome = generate_genome(4096, rng);
  SortedIndex index(genome, 12);
  MemoryTrace trace;
  index.attach_trace(&trace);
  (void)index.lookup(genome.substr(777, 12));
  ASSERT_FALSE(trace.empty());
  bool saw_index = false, saw_reference = false, saw_pattern = false;
  for (const MemoryAccess& a : trace.accesses()) {
    if (a.address >= SortedIndex::kPatternBase)
      saw_pattern = true;
    else if (a.address >= SortedIndex::kReferenceBase)
      saw_reference = true;
    else if (a.address >= SortedIndex::kIndexBase)
      saw_index = true;
  }
  EXPECT_TRUE(saw_index);
  EXPECT_TRUE(saw_reference);
  EXPECT_TRUE(saw_pattern);
  // Detach stops recording.
  index.attach_trace(nullptr);
  const std::size_t before = trace.size();
  (void)index.lookup(genome.substr(100, 12));
  EXPECT_EQ(trace.size(), before);
}

struct StreamRates {
  double all;
  double index_only;
  double reference_only;
};

StreamRates measure_streams(std::size_t genome_bytes, int queries,
                            std::uint64_t seed) {
  Rng rng(seed);
  const std::string genome = generate_genome(genome_bytes, rng);
  SortedIndex index(genome, 16);
  MemoryTrace trace;
  index.attach_trace(&trace);
  for (int q = 0; q < queries; ++q) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(genome.size() - 16)));
    (void)index.lookup(genome.substr(pos, 16));
  }
  MemoryTrace idx_only, ref_only;
  for (const MemoryAccess& a : trace.accesses()) {
    if (a.address < SortedIndex::kReferenceBase)
      idx_only.record(a.address);
    else if (a.address < SortedIndex::kPatternBase)
      ref_only.record(a.address);
  }
  return {run_cluster({trace}, CacheConfig{}, {}).hit_rate(),
          run_cluster({idx_only}, CacheConfig{}, {}).hit_rate(),
          run_cluster({ref_only}, CacheConfig{}, {}).hit_rate()};
}

TEST(DnaTrace, SortedIndexDestroysIndexStreamLocality) {
  // The paper: the sorted index "results in eliminating available data
  // locality … causing huge number of cache misses".  Measured: the
  // binary-search *index* stream (the pointer chase through the sorted
  // positions) hits < 35 % on the Table 1 cache, while the reference
  // bytes retain within-compare streaming locality.
  const StreamRates r = measure_streams(128 << 10, 200, 17);
  EXPECT_LT(r.index_only, 0.35);
  EXPECT_GT(r.reference_only, 0.7);
  EXPECT_GT(r.all, r.index_only);
}

TEST(DnaTrace, IndexStreamHitRateDegradesWithReferenceSize) {
  // Bigger reference → bigger index → deeper, more scattered searches.
  const StreamRates small = measure_streams(64 << 10, 120, 29);
  const StreamRates large = measure_streams(512 << 10, 120, 29);
  EXPECT_GT(small.index_only, large.index_only);
  // The paper's 50 % assumption sits between our measured index-stream
  // rate (~0.26-0.32) and the overall rate (~0.89): its pessimism is
  // right for the pointer-chase component that dominates full-scale
  // (3 GB reference → 24 GB index, far beyond any cache).
  EXPECT_LT(large.index_only, 0.5);
  EXPECT_GT(large.all, 0.5);
}

}  // namespace
}  // namespace memcim
