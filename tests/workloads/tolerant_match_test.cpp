#include <gtest/gtest.h>

#include "arch/cim_tile.h"
#include "common/error.h"
#include "device/presets.h"
#include "workloads/dna.h"

namespace memcim {
namespace {

TEST(TolerantMatch, ErroredReadsRecoveredBySeedsAndTolerance) {
  Rng rng(61);
  const std::string genome = generate_genome(12'000, rng);
  ReadSetParams params;
  params.coverage = 2.0;
  params.read_length = 96;
  params.error_rate = 0.02;
  const auto reads = generate_reads(genome, params, rng);

  const MatchStats exact = match_reads(genome, reads, 16);
  const MatchStats tolerant =
      match_reads_tolerant(genome, reads, 16, /*seeds=*/6,
                           /*max_mismatches=*/6);
  // ~2 errors per 96-char read: the exact pipeline loses a large
  // fraction, the seeded tolerant pipeline recovers nearly all.
  EXPECT_LT(exact.reads_matched, reads.size());
  EXPECT_GT(tolerant.reads_matched, exact.reads_matched);
  EXPECT_GT(static_cast<double>(tolerant.reads_matched),
            0.95 * static_cast<double>(reads.size()));
}

TEST(TolerantMatch, ZeroToleranceEquivalentOnCleanReads) {
  Rng rng(67);
  const std::string genome = generate_genome(6'000, rng);
  ReadSetParams params;
  params.coverage = 1.0;
  params.read_length = 64;
  const auto reads = generate_reads(genome, params, rng);
  const MatchStats exact = match_reads(genome, reads, 16);
  const MatchStats tolerant = match_reads_tolerant(genome, reads, 16, 1, 0);
  EXPECT_EQ(exact.reads_matched, reads.size());
  EXPECT_EQ(tolerant.reads_matched, reads.size());
}

TEST(TolerantMatch, SeedCountValidation) {
  Rng rng(1);
  const std::string genome = generate_genome(1000, rng);
  EXPECT_THROW((void)match_reads_tolerant(genome, {}, 16, 0, 2), Error);
}

// -- CIM tile tolerant compare ----------------------------------------------

CimTileConfig tile_cfg() {
  CimTileConfig cfg;
  cfg.rows = 6;
  cfg.row_bits = 16;
  cfg.cell = presets::crs_cell();
  return cfg;
}

std::vector<bool> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (v >> i) & 1u;
  return bits;
}

TEST(TolerantCompare, MatchesWithinHammingBudget) {
  CimTile tile(tile_cfg());
  const auto key = bits_of(0b1010101010101010, 16);
  // Rows at Hamming distance 0, 1, 2, 3, 4, 16.
  tile.store_row(0, key);
  auto d1 = key;
  d1[3].flip();
  tile.store_row(1, d1);
  auto d2 = d1;
  d2[7].flip();
  tile.store_row(2, d2);
  auto d3 = d2;
  d3[11].flip();
  tile.store_row(3, d3);
  auto d4 = d3;
  d4[15].flip();
  tile.store_row(4, d4);
  tile.store_row(5, bits_of(0b0101010101010101, 16));

  const auto strict = tile.parallel_compare_tolerant(key, 0);
  EXPECT_EQ(strict, (std::vector<bool>{true, false, false, false, false,
                                       false}));
  const auto loose = tile.parallel_compare_tolerant(key, 2);
  EXPECT_EQ(loose, (std::vector<bool>{true, true, true, false, false,
                                      false}));
  const auto very_loose = tile.parallel_compare_tolerant(key, 4);
  EXPECT_EQ(very_loose, (std::vector<bool>{true, true, true, true, true,
                                           false}));
}

TEST(TolerantCompare, LatencyIsOneXorPassPlusSense) {
  CimTile tile(tile_cfg());
  const auto key = bits_of(0xFFFF, 16);
  for (std::size_t r = 0; r < 6; ++r) tile.store_row(r, key);
  (void)tile.parallel_compare_tolerant(key, 1);
  // (13 XOR steps + 2 sense pulses) × 200 ps, independent of rows/bits.
  EXPECT_NEAR(tile.stats().latency.value(), 15 * 200e-12, 1e-15);
}

TEST(TolerantCompare, EnergyGrowsWithMismatches) {
  CimTile a(tile_cfg()), b(tile_cfg());
  const auto key = bits_of(0x0000, 16);
  for (std::size_t r = 0; r < 6; ++r) {
    a.store_row(r, key);                    // zero mismatches
    b.store_row(r, bits_of(0xFFFF, 16));    // 16 mismatches per row
  }
  (void)a.parallel_compare_tolerant(key, 0);
  (void)b.parallel_compare_tolerant(key, 0);
  EXPECT_GT(b.stats().energy.value(), a.stats().energy.value());
}

}  // namespace
}  // namespace memcim
