#include "workloads/parallel_add.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"
#include "logic/tc_adder.h"

namespace memcim {
namespace {

TEST(ParallelAdd, AllResultsVerifyAgainstGolden) {
  ParallelAddParams params;
  params.operations = 200;
  params.width = 32;
  params.adders = 32;
  Rng rng(31);
  const auto r = run_parallel_add(params, presets::crs_cell(), rng);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.sums.size(), 200u);
}

TEST(ParallelAdd, PulseAccountingMatchesSchedule) {
  ParallelAddParams params;
  params.operations = 64;
  params.width = 16;
  params.adders = 16;
  Rng rng(37);
  const auto r = run_parallel_add(params, presets::crs_cell(), rng);
  // Every add costs exactly 4N+5 pulses.
  EXPECT_EQ(r.total_pulses, 64u * CrsTcAdder::steps(16));
}

TEST(ParallelAdd, LatencyCountsBatchesNotOperations) {
  ParallelAddParams params;
  params.operations = 100;
  params.width = 8;
  params.adders = 25;  // 4 batches
  Rng rng(41);
  const auto r = run_parallel_add(params, presets::crs_cell(), rng);
  const double one_add =
      static_cast<double>(CrsTcAdder::steps(8)) * 200e-12;
  EXPECT_NEAR(r.latency.value(), 4.0 * one_add, 1e-15);
}

TEST(ParallelAdd, EnergyGrowsWithWork) {
  ParallelAddParams small;
  small.operations = 10;
  small.width = 16;
  small.adders = 10;
  ParallelAddParams large = small;
  large.operations = 100;
  large.adders = 10;
  Rng rng1(43), rng2(43);
  const auto rs = run_parallel_add(small, presets::crs_cell(), rng1);
  const auto rl = run_parallel_add(large, presets::crs_cell(), rng2);
  EXPECT_GT(rl.total_energy.value(), rs.total_energy.value() * 5.0);
}

TEST(ParallelAdd, Validation) {
  Rng rng(1);
  ParallelAddParams bad;
  bad.operations = 0;
  EXPECT_THROW((void)run_parallel_add(bad, presets::crs_cell(), rng), Error);
  bad = ParallelAddParams{};
  bad.width = 64;  // needs headroom for the golden check
  EXPECT_THROW((void)run_parallel_add(bad, presets::crs_cell(), rng), Error);
}

}  // namespace
}  // namespace memcim
