#include "workloads/dna.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace memcim {
namespace {

TEST(Dna, NucleotideEncodingRoundTrip) {
  for (char c : {'A', 'C', 'G', 'T'})
    EXPECT_EQ(to_char(nucleotide_from_char(c)), c);
  EXPECT_THROW((void)nucleotide_from_char('X'), Error);
}

TEST(Dna, GenomeGenerationIsSeededAndValid) {
  Rng a(5), b(5), c(6);
  const std::string g1 = generate_genome(1000, a);
  const std::string g2 = generate_genome(1000, b);
  const std::string g3 = generate_genome(1000, c);
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, g3);
  for (char ch : g1)
    EXPECT_TRUE(ch == 'A' || ch == 'C' || ch == 'G' || ch == 'T');
}

TEST(Dna, ReadsSampleTheGenomeAtCoverage) {
  Rng rng(11);
  const std::string genome = generate_genome(10000, rng);
  ReadSetParams params;
  params.coverage = 10.0;
  params.read_length = 100;
  const auto reads = generate_reads(genome, params, rng);
  EXPECT_EQ(reads.size(), 1000u);  // 10 · 10000 / 100
  for (const auto& read : reads) {
    EXPECT_EQ(read.bases.size(), 100u);
    EXPECT_EQ(genome.substr(read.true_position, 100), read.bases);
  }
}

TEST(Dna, ErrorRateInjectsSubstitutions) {
  Rng rng(13);
  const std::string genome = generate_genome(20000, rng);
  ReadSetParams params;
  params.coverage = 5.0;
  params.read_length = 100;
  params.error_rate = 0.05;
  const auto reads = generate_reads(genome, params, rng);
  std::size_t mismatches = 0, total = 0;
  for (const auto& read : reads)
    for (std::size_t i = 0; i < read.bases.size(); ++i) {
      ++total;
      if (read.bases[i] != genome[read.true_position + i]) ++mismatches;
    }
  // 5 % error rate, but ~1/4 of substitutions hit the same base.
  const double observed = double(mismatches) / double(total);
  EXPECT_GT(observed, 0.02);
  EXPECT_LT(observed, 0.06);
}

TEST(Dna, SortedIndexFindsAllOccurrences) {
  const std::string reference = "ACGTACGTAC";
  SortedIndex index(reference, 4);
  EXPECT_EQ(index.entries(), 7u);
  auto hits = index.lookup("ACGT");
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 4}));
  EXPECT_TRUE(index.lookup("TTTT").empty());
  EXPECT_GT(index.character_comparisons(), 0u);
}

TEST(Dna, LookupCountsComparisons) {
  Rng rng(17);
  const std::string genome = generate_genome(4096, rng);
  SortedIndex index(genome, 12);
  const std::uint64_t before = index.character_comparisons();
  (void)index.lookup(genome.substr(100, 12));
  const std::uint64_t per_lookup = index.character_comparisons() - before;
  // Binary search over ~4085 entries: ~12 probes, ≤ 12 chars each,
  // plus the hit-enumeration probes.
  EXPECT_GT(per_lookup, 12u);
  EXPECT_LT(per_lookup, 400u);
}

TEST(Dna, MatchReadsFindsErrorFreeReads) {
  Rng rng(19);
  const std::string genome = generate_genome(8000, rng);
  ReadSetParams params;
  params.coverage = 2.0;
  params.read_length = 64;
  const auto reads = generate_reads(genome, params, rng);
  const MatchStats stats = match_reads(genome, reads, 16);
  EXPECT_EQ(stats.reads_total, reads.size());
  EXPECT_EQ(stats.reads_matched, reads.size());  // no errors injected
  EXPECT_GT(stats.character_comparisons, 0u);
  EXPECT_EQ(stats.paper_comparisons(), 4 * stats.character_comparisons);
}

TEST(Dna, ErroredReadsReduceMatchRate) {
  Rng rng(23);
  const std::string genome = generate_genome(8000, rng);
  ReadSetParams params;
  params.coverage = 2.0;
  params.read_length = 64;
  params.error_rate = 0.10;  // errors likely within the leading k-mer
  const auto reads = generate_reads(genome, params, rng);
  const MatchStats stats = match_reads(genome, reads, 16);
  EXPECT_LT(stats.reads_matched, stats.reads_total);
}

TEST(Dna, PaperCountsExact) {
  const PaperDnaCounts counts = paper_dna_counts();
  EXPECT_DOUBLE_EQ(counts.short_reads, 1.5e9);  // 50·3e9/100
  EXPECT_DOUBLE_EQ(counts.comparisons, 6e9);
}

TEST(Dna, InputValidation) {
  Rng rng(1);
  EXPECT_THROW((void)generate_genome(0, rng), Error);
  const std::string genome = generate_genome(100, rng);
  ReadSetParams bad;
  bad.read_length = 200;  // longer than the genome
  EXPECT_THROW((void)generate_reads(genome, bad, rng), Error);
  EXPECT_THROW(SortedIndex(genome, 0), Error);
  EXPECT_THROW(SortedIndex(genome, 101), Error);
}

}  // namespace
}  // namespace memcim
