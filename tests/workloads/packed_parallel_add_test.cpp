// Differential suite for the packed parallel-add engine: the compiled
// lane-block fast path must reproduce the scalar CrsTcAdder farm
// bitwise — sums, pulses, energy, latency, telemetry tallies — at any
// thread count, and must fall back to the scalar farm whenever fault
// hooks are armed.
#include "workloads/parallel_add.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "device/presets.h"
#include "telemetry/telemetry.h"

namespace memcim {
namespace {

using telemetry::Registry;

struct EnvGuard {
  ~EnvGuard() {
    telemetry::set_enabled(true);
    set_parallel_threads(0);
  }
};

/// Deterministic counter slice: everything except pool scheduling noise
/// (parallel.*) and wall-clock span durations (*.ns).
std::map<std::string, std::uint64_t> deterministic_counters() {
  const telemetry::MetricsSnapshot snap = Registry::global().snapshot();
  std::map<std::string, std::uint64_t> out;
  for (const telemetry::CounterSample& c : snap.counters) {
    if (c.name.rfind("parallel.", 0) == 0) continue;
    if (c.name.size() >= 3 && c.name.rfind(".ns") == c.name.size() - 3)
      continue;
    out[c.name] = c.value;
  }
  return out;
}

/// Drop the packed-engine bookkeeping extras so scalar-vs-packed tally
/// comparisons only see the device/workload books both engines share.
std::map<std::string, std::uint64_t> shared_counters(
    std::map<std::string, std::uint64_t> counters) {
  std::erase_if(counters, [](const auto& kv) {
    return kv.first.rfind("logic.packed.", 0) == 0;
  });
  return counters;
}

struct EngineRun {
  ParallelAddResult result;
  std::map<std::string, std::uint64_t> counters;
};

EngineRun run_engine(std::size_t ops, std::size_t width, std::size_t adders,
                     AdderEngine engine, std::uint64_t seed) {
  Registry::global().reset();
  ParallelAddParams params;
  params.operations = ops;
  params.width = width;
  params.adders = adders;
  params.engine = engine;
  Rng rng(seed);
  EngineRun run;
  run.result = run_parallel_add(params, presets::crs_cell(), rng);
  run.counters = deterministic_counters();
  return run;
}

void expect_bitwise_equal(const ParallelAddResult& a,
                          const ParallelAddResult& b) {
  EXPECT_EQ(a.sums, b.sums);
  EXPECT_EQ(a.total_pulses, b.total_pulses);
  EXPECT_EQ(a.total_energy.value(), b.total_energy.value());
  EXPECT_EQ(a.latency.value(), b.latency.value());
  EXPECT_EQ(a.mismatches, b.mismatches);
}

TEST(PackedParallelAdd, BitwiseMatchesScalarAcrossShapes) {
  EnvGuard guard;
  telemetry::set_enabled(true);
  const struct {
    std::size_t ops, width, adders;
  } shapes[] = {
      {96, 12, 16},    // multiple full batches, sub-block farm
      {130, 1, 20},    // 1-bit adders, ragged final batch
      {257, 33, 64},   // farm exactly one lane block wide
      {300, 63, 130},  // farm spanning three (partial) lane blocks
      {50, 8, 64},     // single partial batch: ops < adders
  };
  std::uint64_t seed = 0xADD5;
  for (const auto& s : shapes) {
    const EngineRun scalar =
        run_engine(s.ops, s.width, s.adders, AdderEngine::kScalar, seed);
    const EngineRun packed =
        run_engine(s.ops, s.width, s.adders, AdderEngine::kPacked, seed);
    EXPECT_FALSE(scalar.result.used_packed_engine);
    EXPECT_TRUE(packed.result.used_packed_engine);
    EXPECT_EQ(packed.result.mismatches, 0u);
    expect_bitwise_equal(scalar.result, packed.result);
    EXPECT_EQ(shared_counters(scalar.counters),
              shared_counters(packed.counters));
    EXPECT_GT(packed.counters.at("crs_cell.transitions"), 0u);
    EXPECT_GT(packed.counters.at("crs_cell.switch_energy_aj"), 0u);
    ++seed;
  }
}

TEST(PackedParallelAdd, ThreadCountInvariance) {
  EnvGuard guard;
  telemetry::set_enabled(true);
  set_parallel_threads(1);
  const EngineRun one = run_engine(500, 24, 96, AdderEngine::kPacked, 0x7E4D);
  set_parallel_threads(4);
  const EngineRun four = run_engine(500, 24, 96, AdderEngine::kPacked, 0x7E4D);
  EXPECT_TRUE(one.result.used_packed_engine);
  EXPECT_TRUE(four.result.used_packed_engine);
  expect_bitwise_equal(one.result, four.result);
  EXPECT_EQ(one.counters, four.counters);
}

TEST(PackedParallelAdd, ArmedHooksForceScalarFallback) {
  EnvGuard guard;
  telemetry::set_enabled(true);
  for (const AdderEngine engine : {AdderEngine::kAuto, AdderEngine::kPacked}) {
    Registry::global().reset();
    ParallelAddParams params;
    params.operations = 64;
    params.width = 10;
    params.adders = 16;
    params.engine = engine;
    params.farm_hook = [](std::vector<CrsTcAdder>&) {};  // armed but benign
    Rng rng(0xFA11);
    const ParallelAddResult hooked =
        run_parallel_add(params, presets::crs_cell(), rng);
    const auto counters = deterministic_counters();
    EXPECT_FALSE(hooked.used_packed_engine);
    EXPECT_EQ(counters.at("logic.packed.adder_fallbacks"), 1u);

    // A benign hook leaves the farm untouched, so the fallback run must
    // equal a plain scalar run with the same seed.
    const EngineRun scalar =
        run_engine(64, 10, 16, AdderEngine::kScalar, 0xFA11);
    expect_bitwise_equal(hooked, scalar.result);
  }
}

TEST(PackedParallelAdd, EngineSelectionReported) {
  EnvGuard guard;
  telemetry::set_enabled(true);
  const EngineRun a = run_engine(32, 16, 8, AdderEngine::kAuto, 0x5E1);
  EXPECT_TRUE(a.result.used_packed_engine);
  // Registered by other tests but must stay zero on a clean packed run.
  const auto fallbacks = a.counters.find("logic.packed.adder_fallbacks");
  EXPECT_EQ(fallbacks == a.counters.end() ? 0u : fallbacks->second, 0u);
  const EngineRun s = run_engine(32, 16, 8, AdderEngine::kScalar, 0x5E1);
  EXPECT_FALSE(s.result.used_packed_engine);
}

TEST(PackedParallelAdd, DisabledTelemetryBooksNothing) {
  EnvGuard guard;
  telemetry::set_enabled(false);
  Registry::global().reset();
  ParallelAddParams params;
  params.operations = 64;
  params.width = 16;
  params.adders = 16;
  params.engine = AdderEngine::kPacked;
  Rng rng(0x0FF);
  const ParallelAddResult result =
      run_parallel_add(params, presets::crs_cell(), rng);
  EXPECT_TRUE(result.used_packed_engine);
  const telemetry::MetricsSnapshot snap = Registry::global().snapshot();
  for (const telemetry::CounterSample& c : snap.counters)
    EXPECT_EQ(c.value, 0u) << c.name;
}

}  // namespace
}  // namespace memcim
