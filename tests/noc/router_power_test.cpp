// The Orion-style router power derivation: every per-event quantum is
// a switched wire capacitance, so the model is checkable in closed
// form against the documented formulas.
#include "noc/noc_params.h"

#include <gtest/gtest.h>

namespace memcim {
namespace {

TEST(RouterPower, QuantaArePositiveAndOrdered) {
  const NocParams params;
  const RouterPowerModel m = RouterPowerModel::derive(params);
  EXPECT_GT(m.buffer_write.value(), 0.0);
  EXPECT_GT(m.buffer_read.value(), 0.0);
  EXPECT_GT(m.xbar_traversal.value(), 0.0);
  EXPECT_GT(m.link_traversal.value(), 0.0);
  // A read is a half-swing of the write's bitline charge.
  EXPECT_DOUBLE_EQ(m.buffer_read.value(), 0.5 * m.buffer_write.value());
  // A millimetre of inter-tile wire dwarfs the in-router crossbar lines.
  EXPECT_GT(m.link_traversal.value(), m.xbar_traversal.value());
}

TEST(RouterPower, MatchesClosedFormDerivation) {
  NocParams params;
  params.flit_payload_bits = 32;
  params.link_length = Length(0.5e-3);
  const RouterPowerModel m = RouterPowerModel::derive(params);

  const double wires = static_cast<double>(params.link_wires());
  EXPECT_DOUBLE_EQ(wires, 33.0);
  const double e_factor =
      0.5 * params.tech.vdd.value() * params.tech.vdd.value();
  const double len_in = 5.0 * wires * params.tech.xbar_cell_pitch.value();
  const double e_chg = params.tech.wire_cap.value() * len_in * e_factor;

  EXPECT_DOUBLE_EQ(m.xbar_traversal.value(),
                   (e_chg + e_chg) * wires * 0.5 + e_chg * 0.5);
  EXPECT_DOUBLE_EQ(m.buffer_write.value(),
                   params.tech.buffer_bit_cap.value() * e_factor * wires);
  EXPECT_DOUBLE_EQ(m.link_traversal.value(),
                   params.tech.wire_cap.value() * params.link_length.value() *
                       e_factor * wires * 0.5);
}

TEST(RouterPower, ScalesWithFlitWidth) {
  NocParams narrow, wide;
  narrow.flit_payload_bits = 32;
  wide.flit_payload_bits = 128;
  const RouterPowerModel n = RouterPowerModel::derive(narrow);
  const RouterPowerModel w = RouterPowerModel::derive(wide);
  EXPECT_GT(w.buffer_write.value(), n.buffer_write.value());
  EXPECT_GT(w.link_traversal.value(), n.link_traversal.value());
  // Crossbar line length grows with wires too, so traversal is
  // superlinear in the flit width.
  EXPECT_GT(w.xbar_traversal.value(), 4.0 * n.xbar_traversal.value());
}

TEST(RouterPower, PaperNocParamsRunAtTheTable1Clock) {
  // paper_noc_params lives in arch/tech_params.h; the contract checked
  // here is the NocParams side: defaults are sane for a 1 GHz fabric.
  const NocParams p;
  EXPECT_DOUBLE_EQ(p.cycle.value(), 1e-9);
  EXPECT_EQ(p.link_wires(), p.flit_payload_bits + 1);
}

}  // namespace
}  // namespace memcim
