// Shard/merge round-trip equality: every sharded workload must
// reproduce its single-tile golden run — for the TC-adder farm
// bitwise in every book (including per-window transition counts), for
// the k-mer search and CAM bank output-identical with reconciled
// energy — with and without fault hooks, at any thread count.
#include "workloads/sharded.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "device/presets.h"
#include "workloads/dna.h"

namespace memcim {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

TileFabricConfig fabric_cfg(std::size_t w, std::size_t h,
                            std::size_t rows = 4, std::size_t row_bits = 16) {
  TileFabricConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.tile.rows = rows;
  cfg.tile.row_bits = row_bits;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

ParallelAddParams add_params() {
  ParallelAddParams p;
  p.operations = 300;  // ragged final batch on purpose
  p.width = 24;
  p.adders = 16;
  return p;
}

/// Draw the operand streams exactly as sharded_parallel_add /
/// run_parallel_add do.
void draw_operands(const ParallelAddParams& p, Rng& rng,
                   std::vector<std::uint64_t>& a,
                   std::vector<std::uint64_t>& b) {
  const std::uint64_t max_operand = (std::uint64_t{1} << p.width) - 1;
  a.assign(p.operations, 0);
  b.assign(p.operations, 0);
  for (std::size_t op = 0; op < p.operations; ++op) {
    a[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
    b[op] = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(max_operand)));
  }
}

void expect_add_bitwise_equal(const ShardedAddResult& x,
                              const ShardedAddResult& y) {
  EXPECT_EQ(x.merged.sums, y.merged.sums);
  EXPECT_EQ(x.merged.total_pulses, y.merged.total_pulses);
  EXPECT_EQ(x.merged.mismatches, y.merged.mismatches);
  EXPECT_EQ(x.merged.transitions, y.merged.transitions);
  EXPECT_EQ(x.merged.total_energy.value(), y.merged.total_energy.value());
  EXPECT_EQ(x.merged.latency.value(), y.merged.latency.value());
  EXPECT_EQ(x.merged.op_energy, y.merged.op_energy);
  EXPECT_EQ(x.shard_transitions, y.shard_transitions);  // per-window tallies
}

TEST(ShardedAdd, MatchesSerialGoldenReplayBitwise) {
  const ParallelAddParams params = add_params();
  const CrsCellParams cell = presets::crs_cell();

  TileFabric fabric(fabric_cfg(2, 2));
  Rng rng_sharded(42);
  const ShardedAddResult sharded =
      sharded_parallel_add(fabric, params, cell, rng_sharded);

  Rng rng_golden(42);
  std::vector<std::uint64_t> op_a, op_b;
  draw_operands(params, rng_golden, op_a, op_b);
  const ShardPlan plan =
      Partitioner::batch_aligned(params.operations, fabric.tiles(), params.adders);
  const ShardedAddResult golden =
      replay_parallel_add_plan(plan, params, cell, op_a, op_b);

  expect_add_bitwise_equal(sharded, golden);
  EXPECT_EQ(sharded.merged.mismatches, 0u);
  EXPECT_TRUE(sharded.merged.used_packed_engine);
  // Fabric books exist and reconcile: compute + NoC, each counted once.
  EXPECT_GT(sharded.run.makespan, 0u);
  EXPECT_GT(sharded.run.flits, 0u);
  EXPECT_EQ(sharded.run.energy().value(),
            (sharded.run.compute_energy + sharded.run.noc_energy).value());
  EXPECT_EQ(sharded.run.compute_energy.value(),
            sharded.merged.total_energy.value());
}

TEST(ShardedAdd, SingleTileFabricEqualsPlainFarmRun) {
  const ParallelAddParams params = add_params();
  const CrsCellParams cell = presets::crs_cell();

  TileFabric fabric(fabric_cfg(1, 1));
  Rng rng_sharded(7);
  const ShardedAddResult sharded =
      sharded_parallel_add(fabric, params, cell, rng_sharded);

  Rng rng_plain(7);
  const ParallelAddResult plain = run_parallel_add(params, cell, rng_plain);

  EXPECT_EQ(sharded.merged.sums, plain.sums);
  EXPECT_EQ(sharded.merged.total_pulses, plain.total_pulses);
  EXPECT_EQ(sharded.merged.transitions, plain.transitions);
  EXPECT_EQ(sharded.merged.total_energy.value(), plain.total_energy.value());
  EXPECT_EQ(sharded.merged.latency.value(), plain.latency.value());
}

TEST(ShardedAdd, GoldenEqualityHoldsUnderArmedFaultHooks) {
  ParallelAddParams params = add_params();
  // Stateless hook, applied identically to every tile's full farm: the
  // same physical slots carry the same stuck cells everywhere.
  params.farm_hook = [](std::vector<CrsTcAdder>& farm) {
    farm[0].inject_stuck(2, true);
    farm[5].inject_stuck(farm[5].fault_sites() - 1, false);
    farm[11].inject_stuck(0, true);
  };
  const CrsCellParams cell = presets::crs_cell();

  TileFabric fabric(fabric_cfg(2, 2));
  Rng rng_sharded(9);
  const ShardedAddResult sharded =
      sharded_parallel_add(fabric, params, cell, rng_sharded);
  EXPECT_FALSE(sharded.merged.used_packed_engine);  // hooks force scalar

  Rng rng_golden(9);
  std::vector<std::uint64_t> op_a, op_b;
  draw_operands(params, rng_golden, op_a, op_b);
  const ShardPlan plan =
      Partitioner::batch_aligned(params.operations, fabric.tiles(), params.adders);
  const ShardedAddResult golden =
      replay_parallel_add_plan(plan, params, cell, op_a, op_b);

  expect_add_bitwise_equal(sharded, golden);
  EXPECT_GT(sharded.merged.mismatches, 0u);  // the faults really bite
}

TEST(ShardedAdd, BitwiseIdenticalAcrossThreadCounts) {
  const ThreadGuard guard;
  const ParallelAddParams params = add_params();
  const CrsCellParams cell = presets::crs_cell();

  auto run_at = [&](std::size_t threads) {
    set_parallel_threads(threads);
    TileFabric fabric(fabric_cfg(2, 2));
    Rng rng(1234);
    return sharded_parallel_add(fabric, params, cell, rng);
  };
  const ShardedAddResult one = run_at(1);
  const ShardedAddResult four = run_at(4);

  expect_add_bitwise_equal(one, four);
  EXPECT_EQ(one.run.makespan, four.run.makespan);
  EXPECT_EQ(one.run.flits, four.run.flits);
  EXPECT_EQ(one.run.flit_hops, four.run.flit_hops);
  EXPECT_EQ(one.run.noc_energy.value(), four.run.noc_energy.value());
  EXPECT_EQ(one.run.compute_energy.value(), four.run.compute_energy.value());
  EXPECT_EQ(one.run.fabric_utilization, four.run.fabric_utilization);
}

// -- k-mer search -------------------------------------------------------------

struct KmerCase {
  std::vector<std::vector<bool>> database;
  std::vector<std::vector<bool>> queries;
};

KmerCase kmer_case(std::size_t rows) {
  Rng rng(0xD4A);
  const std::string genome = generate_genome(rows + 16, rng);
  KmerCase c;
  for (std::size_t r = 0; r < rows; ++r)
    c.database.push_back(encode_kmer(genome, r, 8));
  c.queries.push_back(encode_kmer(genome, 3, 8));
  c.queries.push_back(encode_kmer(genome, 9, 8));
  c.queries.push_back(encode_kmer(genome, rows + 5, 8));  // likely absent
  return c;
}

TEST(ShardedKmerSearch, MatchesSingleTileGolden) {
  TileFabric fabric(fabric_cfg(2, 2, 4, 16));
  const KmerCase c = kmer_case(fabric.tiles() * 4);
  const ShardedSearchResult out =
      sharded_kmer_search(fabric, c.database, c.queries);

  // Golden: one tile holding the whole database.
  CimTileConfig golden_cfg;
  golden_cfg.rows = c.database.size();
  golden_cfg.row_bits = 16;
  golden_cfg.cell = presets::crs_cell();
  CimTile golden(golden_cfg);
  for (std::size_t r = 0; r < c.database.size(); ++r)
    golden.store_row(r, c.database[r]);

  const Energy e0 = golden.stats().energy;
  ASSERT_EQ(out.matches.size(), c.queries.size());
  bool any_hit = false;
  for (std::size_t q = 0; q < c.queries.size(); ++q) {
    const std::vector<bool> m = golden.parallel_compare(c.queries[q]);
    std::vector<std::size_t> golden_rows;
    for (std::size_t r = 0; r < m.size(); ++r)
      if (m[r]) golden_rows.push_back(r);
    EXPECT_EQ(out.matches[q], golden_rows) << "query " << q;
    any_hit = any_hit || !golden_rows.empty();
  }
  EXPECT_TRUE(any_hit);

  // Energy reconciles: same per-row terms, re-associated summation.
  const double golden_energy = (golden.stats().energy - e0).value();
  EXPECT_NEAR(out.run.compute_energy.value(), golden_energy,
              1e-9 * golden_energy + 1e-30);
  EXPECT_GT(out.run.makespan, 0u);
  EXPECT_GT(out.run.noc_energy.value(), 0.0);
}

TEST(ShardedKmerSearch, BitwiseIdenticalAcrossThreadCounts) {
  const ThreadGuard guard;
  auto run_at = [&](std::size_t threads) {
    set_parallel_threads(threads);
    TileFabric fabric(fabric_cfg(2, 2, 4, 16));
    const KmerCase c = kmer_case(fabric.tiles() * 4);
    return sharded_kmer_search(fabric, c.database, c.queries);
  };
  const ShardedSearchResult one = run_at(1);
  const ShardedSearchResult four = run_at(4);
  EXPECT_EQ(one.matches, four.matches);
  EXPECT_EQ(one.run.makespan, four.run.makespan);
  EXPECT_EQ(one.run.compute_energy.value(), four.run.compute_energy.value());
  EXPECT_EQ(one.run.noc_energy.value(), four.run.noc_energy.value());
}

// -- CAM bank -----------------------------------------------------------------

std::vector<bool> word_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (v >> i) & 1u;
  return bits;
}

TEST(ShardedCamBank, MatchesSingleCamGoldenIncludingFaults) {
  TileFabric fabric(fabric_cfg(2, 2));
  CamConfig per_tile;
  per_tile.rows = 4;
  per_tile.word_bits = 12;
  per_tile.cell = presets::crs_cell();
  ShardedCamBank bank(fabric, per_tile);

  CamConfig golden_cfg = per_tile;
  golden_cfg.rows = bank.rows();
  CrsCam golden(golden_cfg);

  // Same faults first, then the same contents, globally addressed.
  bank.inject_stuck(5, 3, true);
  golden.inject_stuck(5, 3, true);
  for (std::size_t r = 0; r < bank.rows(); ++r) {
    const std::vector<bool> word = word_of(r * 2654435761u, 12);
    bank.write_row(r, word);
    golden.write_row(r, word);
  }

  for (std::uint64_t probe : {5ull, 9ull, 100ull}) {
    const std::vector<bool> key = word_of(probe * 2654435761u, 12);
    const ShardedCamBank::BankSearchResult got = bank.search(key);
    const CamSearchResult want = golden.search(key);
    EXPECT_EQ(got.matching_rows, want.matching_rows) << "probe " << probe;
    EXPECT_NEAR(got.run.compute_energy.value(), want.energy.value(),
                1e-9 * want.energy.value() + 1e-30);
    EXPECT_GT(got.run.makespan, 0u);
  }
  // Lifetime books reconcile across the bank.
  Energy lifetime{0.0};
  for (std::size_t t = 0; t < fabric.tiles(); ++t)
    lifetime += bank.cam(t).total_energy();
  EXPECT_EQ(bank.compute_energy().value(), lifetime.value());
}

TEST(ShardedCamBank, BitwiseIdenticalAcrossThreadCounts) {
  const ThreadGuard guard;
  auto run_at = [&](std::size_t threads) {
    set_parallel_threads(threads);
    TileFabric fabric(fabric_cfg(2, 2));
    CamConfig per_tile;
    per_tile.rows = 4;
    per_tile.word_bits = 12;
    per_tile.cell = presets::crs_cell();
    ShardedCamBank bank(fabric, per_tile);
    for (std::size_t r = 0; r < bank.rows(); ++r)
      bank.write_row(r, word_of(r * 40503u, 12));
    return bank.search(word_of(3 * 40503u, 12));
  };
  const ShardedCamBank::BankSearchResult one = run_at(1);
  const ShardedCamBank::BankSearchResult four = run_at(4);
  EXPECT_EQ(one.matching_rows, four.matching_rows);
  EXPECT_EQ(one.run.makespan, four.run.makespan);
  EXPECT_EQ(one.run.compute_energy.value(), four.run.compute_energy.value());
  EXPECT_EQ(one.run.noc_energy.value(), four.run.noc_energy.value());
}

}  // namespace
}  // namespace memcim
