// Cycle-accurate mesh behaviour: XY paths, credit backpressure,
// dependency releases, energy reconstruction and bitwise determinism.
#include "noc/mesh.h"

#include <gtest/gtest.h>

#include <vector>

namespace memcim {
namespace {

NocParams small_params() {
  NocParams p;
  p.flit_payload_bits = 64;
  p.buffer_flits = 4;
  return p;
}

TEST(MeshNoc, SinglePacketFollowsTheXYPath) {
  MeshNoc noc(4, 3, small_params());
  NocPacket pkt;
  pkt.src = noc.node_at(0, 0);
  pkt.dst = noc.node_at(3, 2);
  pkt.flits = 3;
  pkt.fingerprint = 0x1234;
  (void)noc.inject(pkt);
  noc.run_to_completion();

  const NocDelivery& d = noc.deliveries()[0];
  ASSERT_TRUE(d.done);
  EXPECT_FALSE(d.corrupted());
  const std::size_t hops = 3 + 2;  // |dx| + |dy|
  EXPECT_EQ(noc.stats().flit_hops, hops * 3);
  EXPECT_EQ(noc.stats().ejections, 3u);
  EXPECT_GE(d.latency(), hops);

  // XY: east along row 0, then south down column 3 — exactly those
  // links carry traffic, three flit-cycles each.
  std::vector<bool> expect_busy(noc.link_population(), false);
  auto link_id = [&](std::size_t node, NocDir dir) {
    return node * kNocLinkDirs + static_cast<std::size_t>(dir);
  };
  expect_busy[link_id(noc.node_at(0, 0), NocDir::kEast)] = true;
  expect_busy[link_id(noc.node_at(1, 0), NocDir::kEast)] = true;
  expect_busy[link_id(noc.node_at(2, 0), NocDir::kEast)] = true;
  expect_busy[link_id(noc.node_at(3, 0), NocDir::kSouth)] = true;
  expect_busy[link_id(noc.node_at(3, 1), NocDir::kSouth)] = true;
  for (const NocLinkUse& use : noc.link_utilization()) {
    const std::size_t id = link_id(use.node, use.dir);
    if (expect_busy[id])
      EXPECT_EQ(use.busy_cycles, 3u) << "link " << id;
    else
      EXPECT_EQ(use.busy_cycles, 0u) << "link " << id;
  }
}

TEST(MeshNoc, SelfDeliveryWorks) {
  MeshNoc noc(2, 2, small_params());
  NocPacket pkt;
  pkt.src = 3;
  pkt.dst = 3;
  pkt.flits = 2;
  (void)noc.inject(pkt);
  noc.run_to_completion();
  EXPECT_TRUE(noc.deliveries()[0].done);
  EXPECT_EQ(noc.stats().flit_hops, 0u);  // never leaves the router
  EXPECT_EQ(noc.stats().ejections, 2u);
}

TEST(MeshNoc, DependencyReleasesAfterPredecessorDelivery) {
  MeshNoc noc(3, 1, small_params());
  NocPacket cmd;
  cmd.src = 0;
  cmd.dst = 2;
  cmd.flits = 2;
  const std::size_t cmd_handle = noc.inject(cmd);

  NocPacket resp;
  resp.src = 2;
  resp.dst = 0;
  resp.flits = 1;
  resp.after = cmd_handle;
  resp.release = 10;  // tile computes for 10 cycles
  (void)noc.inject(resp);
  noc.run_to_completion();

  const NocDelivery& c = noc.deliveries()[0];
  const NocDelivery& r = noc.deliveries()[1];
  ASSERT_TRUE(c.done && r.done);
  EXPECT_EQ(r.released, c.delivered + 10);
  EXPECT_GE(r.injected, r.released);
  EXPECT_GT(r.delivered, c.delivered + 10);
}

TEST(MeshNoc, ContentionBackpressuresThroughCredits) {
  NocParams params = small_params();
  params.buffer_flits = 1;  // tiny FIFOs: congestion bites immediately
  MeshNoc noc(4, 1, params);
  // Every west node floods node 3 through the same east chain.
  for (std::size_t src = 0; src < 3; ++src) {
    for (std::size_t burst = 0; burst < 4; ++burst) {
      NocPacket pkt;
      pkt.src = src;
      pkt.dst = 3;
      pkt.flits = 4;
      pkt.tag = src * 10 + burst;
      pkt.fingerprint = pkt.tag;
      (void)noc.inject(pkt);
    }
  }
  noc.run_to_completion();
  EXPECT_GT(noc.stats().credit_stalls, 0u);
  for (const NocDelivery& d : noc.deliveries()) EXPECT_TRUE(d.done);
  EXPECT_EQ(noc.stats().ejections, 12u * 4u);
}

TEST(MeshNoc, IdenticalInjectionsAreBitwiseDeterministic) {
  auto drive = [](MeshNoc& noc) {
    for (std::size_t i = 0; i < 12; ++i) {
      NocPacket pkt;
      pkt.src = i % noc.nodes();
      pkt.dst = (i * 7 + 3) % noc.nodes();
      pkt.flits = 1 + i % 5;
      pkt.tag = i;
      pkt.release = i / 3;
      pkt.fingerprint = 0xABCD + i;
      (void)noc.inject(pkt);
    }
    noc.run_to_completion();
  };
  MeshNoc a(3, 3, small_params());
  MeshNoc b(3, 3, small_params());
  drive(a);
  drive(b);
  ASSERT_EQ(a.deliveries().size(), b.deliveries().size());
  for (std::size_t i = 0; i < a.deliveries().size(); ++i) {
    EXPECT_EQ(a.deliveries()[i].injected, b.deliveries()[i].injected);
    EXPECT_EQ(a.deliveries()[i].delivered, b.deliveries()[i].delivered);
  }
  EXPECT_EQ(a.stats().flit_hops, b.stats().flit_hops);
  EXPECT_EQ(a.stats().credit_stalls, b.stats().credit_stalls);
  EXPECT_EQ(a.stats().cycles, b.stats().cycles);
  EXPECT_EQ(a.makespan(), b.makespan());
  EXPECT_DOUBLE_EQ(a.dynamic_energy().value(), b.dynamic_energy().value());
}

TEST(MeshNoc, DynamicEnergyIsExactlyCountsTimesQuanta) {
  MeshNoc noc(3, 2, small_params());
  for (std::size_t i = 0; i < 6; ++i) {
    NocPacket pkt;
    pkt.src = i;
    pkt.dst = 5 - i;
    pkt.flits = 2;
    pkt.fingerprint = i;
    (void)noc.inject(pkt);
  }
  noc.run_to_completion();
  const NocStats& s = noc.stats();
  const RouterPowerModel& p = noc.power();
  const double expected =
      static_cast<double>(s.buffer_writes) * p.buffer_write.value() +
      static_cast<double>(s.buffer_reads) * p.buffer_read.value() +
      static_cast<double>(s.xbar_traversals) * p.xbar_traversal.value() +
      static_cast<double>(s.flit_hops) * p.link_traversal.value();
  EXPECT_DOUBLE_EQ(noc.dynamic_energy().value(), expected);
  EXPECT_GT(expected, 0.0);
}

TEST(MeshNoc, RunToCompletionIsReentrantWithMonotonicClock) {
  MeshNoc noc(2, 2, small_params());
  NocPacket pkt;
  pkt.src = 0;
  pkt.dst = 3;
  pkt.flits = 2;
  (void)noc.inject(pkt);
  noc.run_to_completion();
  const NocCycle first = noc.makespan();

  pkt.release = noc.now();
  (void)noc.inject(pkt);
  noc.run_to_completion();
  EXPECT_GT(noc.makespan(), first);
  EXPECT_TRUE(noc.deliveries()[1].done);
}

}  // namespace
}  // namespace memcim
