// Link-fault model: stuck wires corrupt traversing flits only when the
// carried bit disagrees, the parity wire catches odd flip counts, and
// even flip counts are silent — the failure mode the campaign measures.
#include "noc/mesh.h"

#include <gtest/gtest.h>

namespace memcim {
namespace {

NocParams tiny_params() {
  NocParams p;
  p.flit_payload_bits = 8;  // small word: stuck wires bite often
  return p;
}

std::size_t link_id(std::size_t node, NocDir dir) {
  return node * kNocLinkDirs + static_cast<std::size_t>(dir);
}

/// Drive one east-bound packet over link (0, E) on a fresh 2×1 mesh
/// with the given faults armed; returns the delivery record.
NocDelivery run_one(const std::vector<std::pair<std::size_t, bool>>& faults,
                    std::uint64_t fingerprint, std::size_t flits = 4) {
  MeshNoc noc(2, 1, tiny_params());
  for (const auto& [wire, stuck_one] : faults)
    noc.set_link_fault(link_id(0, NocDir::kEast), wire, stuck_one);
  NocPacket pkt;
  pkt.src = 0;
  pkt.dst = 1;
  pkt.flits = flits;
  pkt.fingerprint = fingerprint;
  (void)noc.inject(pkt);
  noc.run_to_completion();
  return noc.deliveries()[0];
}

TEST(LinkFault, CleanLinkDeliversCleanFlits) {
  const NocDelivery d = run_one({}, 0x5EED);
  EXPECT_TRUE(d.done);
  EXPECT_EQ(d.corrupted_flits, 0u);
  EXPECT_EQ(d.undetected_corrupted_flits, 0u);
}

TEST(LinkFault, SingleStuckWireIsAlwaysParityDetected) {
  // A single stuck data wire flips at most one bit per flit: every
  // corrupted flit has an odd flip count, so parity catches all.
  bool saw_corruption = false;
  for (std::uint64_t fp = 0; fp < 16; ++fp) {
    const NocDelivery d = run_one({{3, true}}, fp);
    EXPECT_EQ(d.undetected_corrupted_flits, 0u) << "fingerprint " << fp;
    if (d.corrupted()) {
      saw_corruption = true;
      EXPECT_TRUE(d.parity_detected());
    }
  }
  EXPECT_TRUE(saw_corruption);  // pseudorandom data must disagree sometimes
}

TEST(LinkFault, TwoStuckWiresCanCorruptSilently) {
  // Two stuck wires can flip two bits of one flit — an even count the
  // parity wire cannot see.  Scan fingerprints until the silent case
  // materialises (deterministic search, no randomness).
  bool saw_silent = false;
  for (std::uint64_t fp = 0; fp < 64 && !saw_silent; ++fp) {
    const NocDelivery d = run_one({{1, true}, {5, true}}, fp, 8);
    saw_silent = d.undetected_corrupted_flits > 0;
  }
  EXPECT_TRUE(saw_silent);
}

TEST(LinkFault, StuckParityWireFlagsCleanFlits) {
  // The last wire is the parity channel; pinning it corrupts the check
  // bit itself — detected corruption with intact payload.
  const std::size_t parity_wire = tiny_params().flit_payload_bits;
  bool saw_corruption = false;
  for (std::uint64_t fp = 0; fp < 16; ++fp) {
    const NocDelivery d = run_one({{parity_wire, true}}, fp);
    EXPECT_EQ(d.undetected_corrupted_flits, 0u);
    saw_corruption = saw_corruption || d.corrupted();
  }
  EXPECT_TRUE(saw_corruption);
}

TEST(LinkFault, FaultOffThePathIsInvisible) {
  // The packet travels east over link (0, E); a fault on the reverse
  // link never touches it.
  MeshNoc noc(2, 1, tiny_params());
  noc.set_link_fault(link_id(1, NocDir::kWest), 2, true);
  NocPacket pkt;
  pkt.src = 0;
  pkt.dst = 1;
  pkt.flits = 6;
  pkt.fingerprint = 0xFEED;
  (void)noc.inject(pkt);
  noc.run_to_completion();
  EXPECT_EQ(noc.deliveries()[0].corrupted_flits, 0u);
}

TEST(LinkFault, EdgeLinksAreNoOpTargets) {
  // Mesh-edge link ids address no physical wire; arming them must be
  // harmless (the campaign population is the full rectangle).
  MeshNoc noc(2, 2, tiny_params());
  noc.set_link_fault(link_id(0, NocDir::kNorth), 0, true);  // off the top
  noc.set_link_fault(link_id(0, NocDir::kWest), 0, true);   // off the left
  NocPacket pkt;
  pkt.src = 0;
  pkt.dst = 3;
  pkt.flits = 2;
  pkt.fingerprint = 7;
  (void)noc.inject(pkt);
  noc.run_to_completion();
  EXPECT_TRUE(noc.deliveries()[0].done);
  EXPECT_EQ(noc.deliveries()[0].corrupted_flits, 0u);
}

}  // namespace
}  // namespace memcim
