// Shard-plan invariants: full coverage, contiguity, balance, batch
// alignment — the properties the golden-equality tests lean on.
#include "arch/partitioner.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace memcim {
namespace {

void expect_covers(const ShardPlan& plan, std::size_t items,
                   std::size_t tiles) {
  ASSERT_EQ(plan.shards.size(), tiles);
  EXPECT_EQ(plan.items, items);
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < tiles; ++t) {
    const Shard& s = plan.shards[t];
    EXPECT_EQ(s.tile, t);
    EXPECT_EQ(s.begin, cursor);
    EXPECT_GE(s.end, s.begin);
    cursor = s.end;
  }
  EXPECT_EQ(cursor, items);
}

TEST(Partitioner, ContiguousCoversAndBalances) {
  const ShardPlan plan = Partitioner::contiguous(103, 8);
  expect_covers(plan, 103, 8);
  // Near-equal: sizes differ by at most one.
  std::size_t smallest = plan.items, largest = 0;
  for (const Shard& s : plan.shards) {
    smallest = std::min(smallest, s.size());
    largest = std::max(largest, s.size());
  }
  EXPECT_LE(largest - smallest, 1u);
  EXPECT_EQ(plan.max_shard(), 13u);
  EXPECT_EQ(plan.active_tiles(), 8u);
}

TEST(Partitioner, ContiguousWithFewerItemsThanTiles) {
  const ShardPlan plan = Partitioner::contiguous(3, 8);
  expect_covers(plan, 3, 8);
  EXPECT_EQ(plan.active_tiles(), 3u);
  EXPECT_EQ(plan.max_shard(), 1u);
}

TEST(Partitioner, BatchAlignedBoundariesAreBatchMultiples) {
  const std::size_t batch = 32;
  const ShardPlan plan = Partitioner::batch_aligned(10 * 32 + 7, 4, batch);
  expect_covers(plan, 327, 4);
  for (const Shard& s : plan.shards) EXPECT_EQ(s.begin % batch, 0u);
  // 11 batches over 4 tiles → 3,3,3,2; the last shard ends ragged.
  EXPECT_EQ(plan.shards[0].size(), 3 * batch);
  EXPECT_EQ(plan.shards[3].size(), 2 * batch - 25);
}

TEST(Partitioner, BatchAlignedPreservesSlotAssignment) {
  // The farm invariant: op → slot is op mod batch, so every op's slot
  // equals its in-shard offset mod batch.
  const std::size_t batch = 16;
  const ShardPlan plan = Partitioner::batch_aligned(160, 3, batch);
  for (const Shard& s : plan.shards)
    for (std::size_t op = s.begin; op < s.end; ++op)
      EXPECT_EQ(op % batch, (op - s.begin) % batch);
}

TEST(Partitioner, SingleTilePlanIsTheWholeRange) {
  const ShardPlan plan = Partitioner::batch_aligned(1000, 1, 64);
  expect_covers(plan, 1000, 1);
  EXPECT_EQ(plan.shards[0].size(), 1000u);
}

TEST(Partitioner, RejectsDegenerateArguments) {
  EXPECT_THROW((void)Partitioner::contiguous(10, 0), Error);
  EXPECT_THROW((void)Partitioner::batch_aligned(10, 2, 0), Error);
}

}  // namespace
}  // namespace memcim
