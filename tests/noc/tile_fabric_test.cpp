// TileFabric: grid construction, clock conversion, busy books and the
// fabric-wide single energy accounting path.
#include "arch/tile_fabric.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

TileFabricConfig small_fabric() {
  TileFabricConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.tile.rows = 4;
  cfg.tile.row_bits = 8;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

std::vector<bool> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (v >> i) & 1u;
  return bits;
}

TEST(TileFabric, GridConstruction) {
  TileFabric fabric(small_fabric());
  EXPECT_EQ(fabric.tiles(), 4u);
  EXPECT_EQ(fabric.host(), 0u);
  EXPECT_EQ(fabric.noc().nodes(), 4u);
  TileFabricConfig bad = small_fabric();
  bad.host = 4;
  EXPECT_THROW(TileFabric{bad}, Error);
}

TEST(TileFabric, ComputeCyclesRoundsUp) {
  TileFabric fabric(small_fabric());  // 1 ns cycle
  EXPECT_EQ(fabric.compute_cycles(Time(0.0)), 0u);
  EXPECT_EQ(fabric.compute_cycles(Time(1e-9)), 1u);
  EXPECT_EQ(fabric.compute_cycles(Time(2.5e-9)), 3u);
  EXPECT_EQ(fabric.compute_cycles(Time(26.6e-9)), 27u);
}

TEST(TileFabric, BusyBooksFeedUtilization) {
  TileFabric fabric(small_fabric());
  // One command/response round trip so the makespan is non-zero.
  NocPacket cmd;
  cmd.src = 0;
  cmd.dst = 3;
  cmd.flits = 2;
  const std::size_t h = fabric.noc().inject(cmd);
  NocPacket resp;
  resp.src = 3;
  resp.dst = 0;
  resp.flits = 2;
  resp.after = h;
  resp.release = 20;
  (void)fabric.noc().inject(resp);
  fabric.noc().run_to_completion();

  fabric.note_busy(3, 20);
  EXPECT_EQ(fabric.busy_cycles(3), 20u);
  const double util = fabric.utilization();
  EXPECT_GT(util, 0.0);
  EXPECT_LT(util, 1.0);  // 20 busy cycles / (4 tiles × makespan > 20)
}

TEST(TileFabric, EnergyIsTilesPlusNocExactly) {
  TileFabric fabric(small_fabric());
  // Tile-side work…
  fabric.tile(1).store_row(0, bits_of(0xA5, 8));
  fabric.tile(1).store_row(1, bits_of(0x5A, 8));
  (void)fabric.tile(1).parallel_compare(bits_of(0xA5, 8));
  fabric.tile(2).store_row(0, bits_of(0x0F, 8));
  // …and NoC traffic.
  NocPacket pkt;
  pkt.src = 0;
  pkt.dst = 3;
  pkt.flits = 4;
  pkt.fingerprint = 99;
  (void)fabric.noc().inject(pkt);
  fabric.noc().run_to_completion();

  Energy tiles{0.0};
  for (std::size_t t = 0; t < fabric.tiles(); ++t)
    tiles += fabric.tile(t).stats().energy;
  EXPECT_GT(tiles.value(), 0.0);
  EXPECT_GT(fabric.noc_energy().value(), 0.0);
  EXPECT_EQ(fabric.tile_energy().value(), tiles.value());
  EXPECT_EQ(fabric.energy().value(),
            (fabric.tile_energy() + fabric.noc_energy()).value());
}

}  // namespace
}  // namespace memcim
