// Attribution-book reconciliation: the per-(layer, tile, shard) books
// recorded by the sharded workloads must reproduce the global cost
// books — pulse and flit columns bitwise, energy columns to within one
// attojoule-quantisation per recorded event — and the whole book must
// be bitwise identical at any MEMCIM_THREADS setting.
#include "telemetry/attribution.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "device/presets.h"
#include "workloads/dna.h"
#include "workloads/sharded.h"

namespace memcim {
namespace {

using telemetry::AttrDelta;
using telemetry::AttrLayer;
using telemetry::AttrRecord;
using telemetry::AttributionBook;
using telemetry::to_attojoules;

struct BookGuard {
  std::size_t threads = parallel_threads();
  BookGuard() {
    telemetry::set_enabled(true);
    AttributionBook::global().reset();
  }
  ~BookGuard() {
    telemetry::set_enabled(true);
    AttributionBook::global().reset();
    set_parallel_threads(threads);
  }
};

TileFabricConfig fabric_cfg(std::size_t rows = 4, std::size_t row_bits = 16) {
  TileFabricConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.tile.rows = rows;
  cfg.tile.row_bits = row_bits;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

ParallelAddParams add_params() {
  ParallelAddParams p;
  p.operations = 128;
  p.width = 16;
  p.adders = 16;
  return p;
}

/// |a - b| <= slack, reported in attojoules.
void expect_aj_near(std::uint64_t a, std::uint64_t b, std::uint64_t slack) {
  const std::uint64_t delta = a > b ? a - b : b - a;
  EXPECT_LE(delta, slack) << a << " vs " << b;
}

TEST(Attribution, ToAttojoulesClampsAndSaturates) {
  EXPECT_EQ(to_attojoules(0.0), 0u);
  EXPECT_EQ(to_attojoules(-0.0), 0u);
  EXPECT_EQ(to_attojoules(1e-18), 1u);
  EXPECT_EQ(to_attojoules(1.5e-18), 2u);  // rounds, not truncates
  // Negative and NaN inputs clamp to 0 instead of wrapping to ~1.8e19.
  EXPECT_EQ(to_attojoules(-1e-9), 0u);
  EXPECT_EQ(to_attojoules(std::numeric_limits<double>::quiet_NaN()), 0u);
  // Past the llround-representable range (> ~9.2 J) saturates, no UB.
  const std::uint64_t sat = to_attojoules(100.0);
  EXPECT_EQ(sat, to_attojoules(std::numeric_limits<double>::infinity()));
  EXPECT_GT(sat, to_attojoules(9.0));
}

TEST(Attribution, AddReconcilesAgainstGlobalBooks) {
  BookGuard guard;
  TileFabric fabric(fabric_cfg());
  Rng rng(42);
  const ShardedAddResult out =
      sharded_parallel_add(fabric, add_params(), presets::crs_cell(), rng);

  const AttributionBook& book = AttributionBook::global();
  const std::uint64_t tiles = fabric.tiles();

  // Pulse and flit columns are exact u64 tallies of the global books.
  EXPECT_EQ(book.layer_totals(AttrLayer::kDevice).pulses,
            out.merged.total_pulses);
  EXPECT_EQ(book.layer_totals(AttrLayer::kNoc).flits, out.run.flits);
  EXPECT_EQ(book.totals().flits, out.run.flits);

  // Energy columns: one llround per recorded event, so the book total
  // sits within one aJ per event of the re-quantised global double.
  expect_aj_near(book.layer_totals(AttrLayer::kLogic).energy_aj,
                 to_attojoules(out.merged.total_energy.value()), tiles);
  expect_aj_near(book.layer_totals(AttrLayer::kNoc).energy_aj,
                 to_attojoules(out.run.noc_energy.value()), tiles + 1);

  // The NoC rows are exactly the quantised per-packet-pair model: the
  // same packet_energy() the mesh's global dynamic_energy() integrates.
  const std::size_t fpb = fabric.config().noc.flit_payload_bits;
  const std::size_t desc_flits = (128 + fpb - 1) / fpb;
  std::uint64_t expected_noc_aj = 0;
  for (std::size_t t = 0; t < tiles; ++t) {
    const Energy pair =
        fabric.noc().packet_energy(fabric.host(), t, desc_flits) +
        fabric.noc().packet_energy(t, fabric.host(), desc_flits);
    expected_noc_aj += to_attojoules(pair.value());
  }
  EXPECT_EQ(book.layer_totals(AttrLayer::kNoc).energy_aj, expected_noc_aj);

  // Arch occupancy: every tile carries busy time under its own shard.
  EXPECT_GT(book.layer_totals(AttrLayer::kArch).span_ns, 0u);
  for (const AttrRecord& r : book.snapshot()) {
    if (r.key.layer != AttrLayer::kArch) continue;
    EXPECT_LT(r.key.tile, tiles);
    EXPECT_EQ(r.key.shard, r.key.tile);
  }

  // The attr.<layer>.* rollup counters mirror the book columns.
  telemetry::Registry& reg = telemetry::Registry::global();
  const telemetry::MetricsSnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counter("attr.noc.flits"),
            book.layer_totals(AttrLayer::kNoc).flits);
  EXPECT_GE(snap.counter("attr.device.pulses"),
            book.layer_totals(AttrLayer::kDevice).pulses);
}

TEST(Attribution, KmerSearchReconciles) {
  BookGuard guard;
  TileFabric fabric(fabric_cfg(4, 16));
  Rng rng(0xD4A);
  const std::string genome = generate_genome(fabric.tiles() * 4 + 16, rng);
  std::vector<std::vector<bool>> database;
  for (std::size_t r = 0; r < fabric.tiles() * 4; ++r)
    database.push_back(encode_kmer(genome, r, 8));
  const std::vector<std::vector<bool>> queries = {
      encode_kmer(genome, 3, 8), encode_kmer(genome, 9, 8)};

  const ShardedSearchResult out =
      sharded_kmer_search(fabric, database, queries);

  const AttributionBook& book = AttributionBook::global();
  EXPECT_EQ(book.layer_totals(AttrLayer::kNoc).flits, out.run.flits);
  expect_aj_near(book.layer_totals(AttrLayer::kCrossbar).energy_aj,
                 to_attojoules(out.run.compute_energy.value()),
                 fabric.tiles());
  EXPECT_EQ(book.layer_totals(AttrLayer::kDevice).pulses, 0u);
}

TEST(Attribution, CamBankReconciles) {
  BookGuard guard;
  TileFabric fabric(fabric_cfg());
  CamConfig per_tile;
  per_tile.rows = 4;
  per_tile.word_bits = 12;
  per_tile.cell = presets::crs_cell();
  ShardedCamBank bank(fabric, per_tile);
  for (std::size_t r = 0; r < bank.rows(); ++r) {
    std::vector<bool> word(12);
    for (std::size_t i = 0; i < word.size(); ++i)
      word[i] = (((r * 2654435761u) >> i) & 1u) != 0;
    bank.write_row(r, word);
  }
  std::vector<bool> key(12);
  for (std::size_t i = 0; i < key.size(); ++i)
    key[i] = (((std::size_t{3} * 2654435761u) >> i) & 1u) != 0;

  const ShardedCamBank::BankSearchResult out = bank.search(key);

  const AttributionBook& book = AttributionBook::global();
  EXPECT_EQ(book.layer_totals(AttrLayer::kNoc).flits, out.run.flits);
  expect_aj_near(book.layer_totals(AttrLayer::kLogic).energy_aj,
                 to_attojoules(out.run.compute_energy.value()),
                 fabric.tiles());
}

TEST(Attribution, BookIsBitwiseIdenticalAcrossThreadCounts) {
  BookGuard guard;
  auto run_at = [&](std::size_t threads) {
    set_parallel_threads(threads);
    AttributionBook::global().reset();
    TileFabric fabric(fabric_cfg());
    Rng rng(1234);
    (void)sharded_parallel_add(fabric, add_params(), presets::crs_cell(),
                               rng);
    return AttributionBook::global().snapshot();
  };
  const std::vector<AttrRecord> one = run_at(1);
  const std::vector<AttrRecord> four = run_at(4);

  ASSERT_EQ(one.size(), four.size());
  ASSERT_FALSE(one.empty());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].key, four[i].key);
    EXPECT_EQ(one[i].delta.energy_aj, four[i].delta.energy_aj);
    EXPECT_EQ(one[i].delta.pulses, four[i].delta.pulses);
    EXPECT_EQ(one[i].delta.flits, four[i].delta.flits);
    EXPECT_EQ(one[i].delta.span_ns, four[i].delta.span_ns);
  }
}

TEST(Attribution, MatchesSerialGoldenReplay) {
  BookGuard guard;
  const ParallelAddParams params = add_params();
  const CrsCellParams cell = presets::crs_cell();

  TileFabric fabric(fabric_cfg());
  Rng rng_sharded(9);
  (void)sharded_parallel_add(fabric, params, cell, rng_sharded);
  const AttributionBook& book = AttributionBook::global();

  // Re-derive the golden books from a serial replay of the same plan.
  Rng rng_golden(9);
  const std::uint64_t max_operand = (std::uint64_t{1} << params.width) - 1;
  std::vector<std::uint64_t> op_a(params.operations), op_b(params.operations);
  for (std::size_t op = 0; op < params.operations; ++op) {
    op_a[op] = static_cast<std::uint64_t>(
        rng_golden.uniform_int(0, static_cast<std::int64_t>(max_operand)));
    op_b[op] = static_cast<std::uint64_t>(
        rng_golden.uniform_int(0, static_cast<std::int64_t>(max_operand)));
  }
  const ShardPlan plan = Partitioner::batch_aligned(
      params.operations, fabric.tiles(), params.adders);
  const ShardedAddResult golden =
      replay_parallel_add_plan(plan, params, cell, op_a, op_b);

  EXPECT_EQ(book.layer_totals(AttrLayer::kDevice).pulses,
            golden.merged.total_pulses);
  expect_aj_near(book.layer_totals(AttrLayer::kLogic).energy_aj,
                 to_attojoules(golden.merged.total_energy.value()),
                 fabric.tiles());
}

TEST(Attribution, DisabledTelemetryRecordsNothing) {
  BookGuard guard;
  telemetry::set_enabled(false);
  TileFabric fabric(fabric_cfg());
  Rng rng(3);
  (void)sharded_parallel_add(fabric, add_params(), presets::crs_cell(), rng);
  EXPECT_TRUE(AttributionBook::global().snapshot().empty());
  const AttrDelta totals = AttributionBook::global().totals();
  EXPECT_EQ(totals.energy_aj, 0u);
  EXPECT_EQ(totals.flits, 0u);
}

}  // namespace
}  // namespace memcim
