#include "crossbar/selector.h"

#include <gtest/gtest.h>

#include <memory>

#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

using namespace memcim::literals;

std::unique_ptr<Device> lrs_vcm() {
  return std::make_unique<VcmDevice>(presets::vcm_taox(), 1.0);
}

TEST(Selector, DiodeForwardReverseAsymmetry) {
  const SelectorIv d = diode_selector();
  const double fwd = d.current(0.7_V).value();
  const double rev = d.current(-0.7_V).value();
  EXPECT_GT(fwd, 1e-6);
  EXPECT_LT(std::abs(rev), 2e-12);  // only the saturation leak
  EXPECT_LT(rev, 0.0);
  EXPECT_DOUBLE_EQ(d.current(Voltage(0.0)).value(), 0.0);
}

TEST(Selector, DiodeExponentOverflowClamped) {
  const SelectorIv d = diode_selector();
  EXPECT_TRUE(std::isfinite(d.current(100.0_V).value()));
}

TEST(Selector, NonlinearSelectorOddAndSuperlinear) {
  const SelectorIv s = nonlinear_selector();
  const double i1 = s.current(0.5_V).value();
  const double i2 = s.current(1.0_V).value();
  EXPECT_DOUBLE_EQ(s.current(-0.5_V).value(), -i1);
  EXPECT_GT(i2 / i1, 10.0);  // far steeper than ohmic doubling
}

TEST(Selector, SeriesStackCurrentContinuity) {
  SelectorDevice stack(lrs_vcm(), nonlinear_selector());
  const Voltage v = 1.0_V;
  const Voltage vd = stack.device_share(v);
  const double i_dev = stack.base().current(vd).value();
  const double i_sel =
      nonlinear_selector().current(Voltage(v.value() - vd.value())).value();
  EXPECT_NEAR(i_dev, i_sel, std::abs(i_dev) * 1e-6 + 1e-15);
  EXPECT_NEAR(stack.current(v).value(), i_dev, 1e-15);
}

TEST(Selector, DiodeStackBlocksReverseSneak) {
  SelectorDevice stack(lrs_vcm(), diode_selector());
  // Reverse bias: the diode eats nearly all the drop.
  const double i_rev = stack.current(-1.0_V).value();
  EXPECT_LT(std::abs(i_rev), 2e-12);
  // Forward: nearly the bare-device current (diode drop ≈ 0.5–0.7 V
  // costs some, but current must still be within an order of magnitude).
  const double i_fwd = stack.current(1.5_V).value();
  EXPECT_GT(i_fwd, 1e-5);
}

TEST(Selector, ApplyForwardWritesReverseDoesNot) {
  const VcmParams p = presets::vcm_taox();
  SelectorDevice stack(std::make_unique<VcmDevice>(p, 0.0), diode_selector());
  // Reverse "write": diode blocks, device must stay HRS.
  stack.apply(Voltage(-p.v_write.value() * 1.5), p.t_switch * 10.0);
  EXPECT_LT(stack.state(), 0.05);
  // Forward write with margin for the diode drop.
  for (int i = 0; i < 20; ++i)
    stack.apply(Voltage(p.v_write.value() + 0.8), p.t_switch);
  EXPECT_TRUE(stack.is_lrs());
}

TEST(Selector, TransistorGateControlsCurrent) {
  TransistorDevice t(lrs_vcm());
  t.set_gate(false);
  const double i_off = t.current(1.0_V).value();
  t.set_gate(true);
  const double i_on = t.current(1.0_V).value();
  EXPECT_GT(i_on / i_off, 1e6);
  // Gate on: current close to bare device (R_on 2 kΩ + 10 kΩ device).
  EXPECT_NEAR(i_on, 1.0 / 12e3, 1.0 / 12e3 * 0.01);
}

TEST(Selector, TransistorOffBlocksWrites) {
  const VcmParams p = presets::vcm_taox();
  TransistorDevice t(std::make_unique<VcmDevice>(p, 0.0));
  t.set_gate(false);
  t.apply(p.v_write * 1.5, p.t_switch * 100.0);
  EXPECT_LT(t.state(), 0.01);
  t.set_gate(true);
  for (int i = 0; i < 10; ++i) t.apply(p.v_write * 1.5, p.t_switch);
  EXPECT_TRUE(t.is_lrs());
}

TEST(Selector, CloneDeepCopiesWrappedDevice) {
  SelectorDevice stack(std::make_unique<VcmDevice>(presets::vcm_taox(), 0.0),
                       nonlinear_selector());
  auto copy = stack.clone();
  stack.set_state(1.0);
  EXPECT_DOUBLE_EQ(copy->state(), 0.0);
  EXPECT_DOUBLE_EQ(stack.state(), 1.0);

  TransistorDevice t(lrs_vcm());
  t.set_gate(true);
  auto tc = t.clone();
  auto* tcd = dynamic_cast<TransistorDevice*>(tc.get());
  ASSERT_NE(tcd, nullptr);
  EXPECT_TRUE(tcd->gate());
}

}  // namespace
}  // namespace memcim
