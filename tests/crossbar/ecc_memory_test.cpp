#include "crossbar/ecc_memory.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

TEST(Ecc, EncodeDecodeRoundTripAllBytes) {
  for (int v = 0; v < 256; ++v) {
    const auto cw = ecc_encode(static_cast<std::uint8_t>(v));
    const EccDecodeResult r = ecc_decode(cw);
    EXPECT_EQ(r.data, v);
    EXPECT_FALSE(r.corrected);
    EXPECT_FALSE(r.uncorrectable);
  }
}

TEST(Ecc, EverySingleBitErrorIsCorrected) {
  // Property: for a sample of bytes, flipping any one of the 13
  // codeword bits still decodes to the original byte.
  for (int v : {0x00, 0xFF, 0xA5, 0x3C, 0x01, 0x80, 0x5A}) {
    const auto clean = ecc_encode(static_cast<std::uint8_t>(v));
    for (std::size_t bit = 0; bit < kEccCodewordBits; ++bit) {
      auto corrupted = clean;
      corrupted[bit] = !corrupted[bit];
      const EccDecodeResult r = ecc_decode(corrupted);
      EXPECT_EQ(r.data, v) << "byte " << v << " bit " << bit;
      EXPECT_TRUE(r.corrected) << "byte " << v << " bit " << bit;
      EXPECT_FALSE(r.uncorrectable);
    }
  }
}

TEST(Ecc, DoubleBitErrorsAreDetected) {
  for (int v : {0x00, 0xFF, 0x96}) {
    const auto clean = ecc_encode(static_cast<std::uint8_t>(v));
    int detected = 0, total = 0;
    for (std::size_t b1 = 0; b1 < kEccCodewordBits; ++b1)
      for (std::size_t b2 = b1 + 1; b2 < kEccCodewordBits; ++b2) {
        auto corrupted = clean;
        corrupted[b1] = !corrupted[b1];
        corrupted[b2] = !corrupted[b2];
        const EccDecodeResult r = ecc_decode(corrupted);
        ++total;
        if (r.uncorrectable) ++detected;
        EXPECT_FALSE(r.corrected && r.data == v && !r.uncorrectable)
            << "double error silently mis-decoded as clean correction";
      }
    EXPECT_EQ(detected, total) << "all double errors must be flagged";
  }
}

TEST(Ecc, EverySingleBitErrorIsCorrectedAllBytes) {
  // Exhaustive over the whole code: 256 bytes × 13 positions.
  for (int v = 0; v < 256; ++v) {
    const auto clean = ecc_encode(static_cast<std::uint8_t>(v));
    for (std::size_t bit = 0; bit < kEccCodewordBits; ++bit) {
      auto corrupted = clean;
      corrupted[bit] = !corrupted[bit];
      const EccDecodeResult r = ecc_decode(corrupted);
      ASSERT_EQ(r.data, v) << "byte " << v << " bit " << bit;
      ASSERT_TRUE(r.corrected) << "byte " << v << " bit " << bit;
      ASSERT_FALSE(r.uncorrectable) << "byte " << v << " bit " << bit;
    }
  }
}

TEST(Ecc, EveryDoubleBitErrorIsDetectedAllBytes) {
  // Exhaustive SECDED acceptance: 256 bytes × C(13,2) = 78 pairs, every
  // one must raise the uncorrectable flag and never report a (silently
  // wrong) correction.
  for (int v = 0; v < 256; ++v) {
    const auto clean = ecc_encode(static_cast<std::uint8_t>(v));
    for (std::size_t b1 = 0; b1 < kEccCodewordBits; ++b1)
      for (std::size_t b2 = b1 + 1; b2 < kEccCodewordBits; ++b2) {
        auto corrupted = clean;
        corrupted[b1] = !corrupted[b1];
        corrupted[b2] = !corrupted[b2];
        const EccDecodeResult r = ecc_decode(corrupted);
        ASSERT_TRUE(r.uncorrectable)
            << "byte " << v << " bits " << b1 << "," << b2;
        ASSERT_FALSE(r.corrected)
            << "byte " << v << " bits " << b1 << "," << b2;
      }
  }
}

TEST(Ecc, TripleErrorsNeverCrashAndNeverDecodeSilently) {
  // ≥3-bit errors are beyond SECDED: some alias to a (wrong) single-bit
  // correction, some to invalid syndromes (13–15) — the decoder must
  // flag the latter as uncorrectable and must never throw.
  const auto clean = ecc_encode(0x6D);
  int invalid_syndrome_cases = 0;
  for (std::size_t b1 = 0; b1 < kEccCodewordBits; ++b1)
    for (std::size_t b2 = b1 + 1; b2 < kEccCodewordBits; ++b2)
      for (std::size_t b3 = b2 + 1; b3 < kEccCodewordBits; ++b3) {
        auto corrupted = clean;
        corrupted[b1] = !corrupted[b1];
        corrupted[b2] = !corrupted[b2];
        corrupted[b3] = !corrupted[b3];
        const EccDecodeResult r = ecc_decode(corrupted);  // must not throw
        if (r.uncorrectable) ++invalid_syndrome_cases;
      }
  EXPECT_GT(invalid_syndrome_cases, 0);
}

TEST(EccMemory, TransparentStorage) {
  EccCrsMemory mem(16, presets::crs_cell());
  for (std::size_t r = 0; r < 16; ++r)
    mem.write_byte(r, static_cast<std::uint8_t>(r * 17));
  for (std::size_t r = 0; r < 16; ++r) {
    const auto result = mem.read_byte(r);
    EXPECT_EQ(result.data, static_cast<std::uint8_t>(r * 17));
    EXPECT_FALSE(result.corrected);
  }
  EXPECT_EQ(mem.corrected_errors(), 0u);
}

TEST(EccMemory, InjectedFaultIsCorrectedAndScrubbed) {
  EccCrsMemory mem(4, presets::crs_cell());
  mem.write_byte(2, 0xB7);
  mem.inject_error(2, 5);
  const auto first = mem.read_byte(2);
  EXPECT_EQ(first.data, 0xB7);
  EXPECT_TRUE(first.corrected);
  EXPECT_EQ(mem.corrected_errors(), 1u);
  // Scrubbing repaired the stored codeword: the next read is clean.
  const auto second = mem.read_byte(2);
  EXPECT_EQ(second.data, 0xB7);
  EXPECT_FALSE(second.corrected);
  EXPECT_EQ(mem.corrected_errors(), 1u);
}

TEST(EccMemory, DoubleFaultFlaggedUncorrectable) {
  EccCrsMemory mem(1, presets::crs_cell());
  mem.write_byte(0, 0x42);
  mem.inject_error(0, 3);
  mem.inject_error(0, 9);
  const auto r = mem.read_byte(0);
  EXPECT_TRUE(r.uncorrectable);
  EXPECT_EQ(mem.uncorrectable_errors(), 1u);
}

TEST(EccMemory, ScrubbingPreventsErrorAccumulation) {
  // One error at a time, read (and scrub) between injections: the bank
  // survives many more faults than its 2-error codeword limit.
  EccCrsMemory mem(1, presets::crs_cell());
  mem.write_byte(0, 0x5C);
  for (std::size_t round = 0; round < 10; ++round) {
    mem.inject_error(0, round % kEccCodewordBits);
    const auto r = mem.read_byte(0);
    EXPECT_EQ(r.data, 0x5C) << "round " << round;
    EXPECT_FALSE(r.uncorrectable);
  }
  EXPECT_EQ(mem.corrected_errors(), 10u);
}

TEST(EccMemory, StuckCellPairStaysUncorrectableAcrossReads) {
  // Permanent double faults (stuck cells, not transient flips): the
  // scrub path writes back but cannot move the pinned devices, so the
  // word must flag uncorrectable on every read — never silently decode.
  EccCrsMemory mem(1, presets::crs_cell());
  const std::uint8_t value = 0x42;  // bits 3 and 9 store 0 → pin to 1
  mem.write_byte(0, value);
  mem.inject_stuck(0, 3, true);
  mem.inject_stuck(0, 9, true);
  for (int round = 0; round < 3; ++round) {
    const auto r = mem.read_byte(0);
    EXPECT_TRUE(r.uncorrectable) << "round " << round;
    EXPECT_FALSE(r.corrected) << "round " << round;
  }
  EXPECT_EQ(mem.uncorrectable_errors(), 3u);
}

TEST(EccMemory, SingleStuckCellIsCorrectedOnEveryRead) {
  EccCrsMemory mem(1, presets::crs_cell());
  const std::uint8_t value = 0x42;
  mem.write_byte(0, value);
  mem.inject_stuck(0, 3, true);  // data bit 0 stored 0, pinned to 1
  for (int round = 0; round < 3; ++round) {
    const auto r = mem.read_byte(0);
    EXPECT_EQ(r.data, value) << "round " << round;
    EXPECT_TRUE(r.corrected) << "round " << round;
    EXPECT_FALSE(r.uncorrectable) << "round " << round;
  }
}

TEST(EccMemory, Validation) {
  EccCrsMemory mem(2, presets::crs_cell());
  EXPECT_THROW(mem.inject_error(0, 13), Error);
  EXPECT_THROW(mem.write_byte(5, 0), Error);
}

}  // namespace
}  // namespace memcim
