#include <gtest/gtest.h>

#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

CrossbarConfig sized(std::size_t n) {
  CrossbarConfig cfg;
  cfg.model = NetworkModel::kLumpedLines;
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

WriteConfig write_cfg() {
  WriteConfig wc;
  wc.v_write = presets::vcm_taox().v_write;
  wc.pulse = presets::vcm_taox().t_switch;
  wc.scheme = BiasScheme::kVHalf;
  return wc;
}

ReadConfig floating_read() {
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;
  return rc;
}

TEST(MultistageRead, RecoversBitsWhereDirectReadFails) {
  // 64×64 passive array, floating lines: the fixed-threshold margin is
  // ≈ 0.03, far too small for a global reference.  The self-referenced
  // multistage read with a calibrated threshold still discriminates.
  const std::size_t n = 64;
  CrossbarArray array(sized(n), VcmDevice(presets::vcm_taox(), 0.0));
  const double threshold =
      calibrate_multistage_threshold(array, floating_read(), write_cfg());
  EXPECT_GT(threshold, 0.0);
  EXPECT_LT(threshold, 0.05);  // the resolution the sense amp must meet

  program_worst_case_pattern(array, 0, 0, /*target_lrs=*/false);
  const auto hrs = multistage_read_bit(array, 0, 0, floating_read(),
                                       write_cfg(), threshold);
  EXPECT_FALSE(hrs.bit);
  EXPECT_GT(hrs.relative_drop, threshold);
  EXPECT_EQ(hrs.extra_pulses, 2u);  // reference write + restore
  EXPECT_FALSE(array.stored_bit(0, 0));  // restored to HRS

  array.store_bit(0, 0, true);
  const auto lrs = multistage_read_bit(array, 0, 0, floating_read(),
                                       write_cfg(), threshold);
  EXPECT_TRUE(lrs.bit);
  EXPECT_LT(lrs.relative_drop, threshold);
  EXPECT_EQ(lrs.extra_pulses, 1u);  // no restore needed
  EXPECT_TRUE(array.stored_bit(0, 0));
}

TEST(MultistageRead, HrsLrsDropsStaySeparated) {
  // The HRS/LRS drop separation survives at sizes where the absolute
  // drop has shrunk to a few percent — self-referencing removes the
  // calibration problem, though the required sense resolution grows
  // with N (documented in readout.h).
  for (std::size_t n : {8u, 32u, 64u}) {
    CrossbarArray array(sized(n), VcmDevice(presets::vcm_taox(), 0.0));
    program_worst_case_pattern(array, 0, 0, false);
    const double hrs_drop =
        multistage_read_bit(array, 0, 0, floating_read(), write_cfg(), -1.0)
            .relative_drop;
    array.store_bit(0, 0, true);
    const double lrs_drop =
        multistage_read_bit(array, 0, 0, floating_read(), write_cfg(), 2.0)
            .relative_drop;
    EXPECT_GT(hrs_drop, 5.0 * std::abs(lrs_drop) + 0.005) << "N=" << n;
  }
}

TEST(MultistageRead, RequiredResolutionGrowsWithArraySize) {
  double drop_small = 0.0, drop_large = 0.0;
  {
    CrossbarArray array(sized(8), VcmDevice(presets::vcm_taox(), 0.0));
    drop_small = 2.0 * calibrate_multistage_threshold(array, floating_read(),
                                                      write_cfg());
  }
  {
    CrossbarArray array(sized(64), VcmDevice(presets::vcm_taox(), 0.0));
    drop_large = 2.0 * calibrate_multistage_threshold(array, floating_read(),
                                                      write_cfg());
  }
  EXPECT_GT(drop_small, 3.0 * drop_large);  // roughly 1/N scaling
}

TEST(MultistageRead, WholePatternRoundTrip) {
  const std::size_t n = 16;
  CrossbarArray array(sized(n), VcmDevice(presets::vcm_taox(), 0.0));
  const double threshold =
      calibrate_multistage_threshold(array, floating_read(), write_cfg());
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      array.store_bit(r, c, (r * 31 + c * 7) % 3 == 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      const bool expect = (r * 31 + c * 7) % 3 == 0;
      EXPECT_EQ(multistage_read_bit(array, r, c, floating_read(), write_cfg(),
                                    threshold)
                    .bit,
                expect)
          << '(' << r << ',' << c << ')';
      // Non-destructive overall: the stored bit survives.
      EXPECT_EQ(array.stored_bit(r, c), expect);
    }
}

}  // namespace
}  // namespace memcim
