#include "crossbar/crossbar.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

using namespace memcim::literals;

VcmDevice lrs_proto() { return VcmDevice(presets::vcm_taox(), 1.0); }

CrossbarConfig lumped(std::size_t n) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.model = NetworkModel::kLumpedLines;
  return cfg;
}

TEST(Crossbar, SingleCellOhmsLaw) {
  CrossbarArray xbar(lumped(1), lrs_proto());
  LineBias bias;
  bias.rows = {Voltage(1.0)};
  bias.cols = {Voltage(0.0)};
  const auto sol = xbar.solve(bias);
  ASSERT_TRUE(sol.converged);
  // R_on = 10 kΩ → 100 µA.
  EXPECT_NEAR(sol.device_current[0], 1e-4, 1e-9);
  EXPECT_NEAR(sol.row_terminal_current[0], 1e-4, 1e-9);
  EXPECT_NEAR(sol.col_terminal_current[0], -1e-4, 1e-9);
}

TEST(Crossbar, SneakPathThroughThreeDevices) {
  // Classic 2×2 sneak path: target (0,0) HRS, other three LRS, floating
  // unaccessed lines.  The sneak path (0,1)-(1,1)-(1,0) is three LRS
  // devices in series: i_sneak ≈ V / (3·R_on).
  CrossbarArray xbar(lumped(2), lrs_proto());
  xbar.store_bit(0, 0, false);
  const LineBias bias = access_bias(2, 2, 0, 0, 1.0_V, BiasScheme::kFloating);
  const auto sol = xbar.solve(bias);
  ASSERT_TRUE(sol.converged);
  const double i_col = -sol.col_terminal_current[0];
  const double i_direct = 1.0 / 10e6;     // HRS target
  const double i_sneak = 1.0 / (3 * 10e3);  // 3 LRS in series
  EXPECT_NEAR(i_col, i_direct + i_sneak, (i_direct + i_sneak) * 0.01);
  // The floating line voltages split the sneak path: intermediate nodes
  // at ~2/3 V and ~1/3 V.
  EXPECT_NEAR(sol.col_voltage[1], 2.0 / 3.0, 0.01);
  EXPECT_NEAR(sol.row_voltage[1], 1.0 / 3.0, 0.01);
}

TEST(Crossbar, GroundedSchemeKillsSneakCurrent) {
  CrossbarArray xbar(lumped(2), lrs_proto());
  xbar.store_bit(0, 0, false);
  const LineBias bias = access_bias(2, 2, 0, 0, 1.0_V, BiasScheme::kGrounded);
  const auto sol = xbar.solve(bias);
  // Unselected cells have 0 V across them → only the HRS leak flows.
  EXPECT_NEAR(-sol.col_terminal_current[0], 1.0 / 10e6, 1e-9);
  EXPECT_NEAR(sol.device_voltage[1 * 2 + 1], 0.0, 1e-9);
}

TEST(Crossbar, VHalfDeviceVoltages) {
  CrossbarArray xbar(lumped(3), lrs_proto());
  const LineBias bias = access_bias(3, 3, 0, 0, 2.0_V, BiasScheme::kVHalf);
  const auto sol = xbar.solve(bias);
  EXPECT_NEAR(sol.device_voltage[0], 2.0, 1e-9);   // selected
  EXPECT_NEAR(sol.device_voltage[1], 1.0, 1e-9);   // half-selected (row)
  EXPECT_NEAR(sol.device_voltage[3], 1.0, 1e-9);   // half-selected (col)
  EXPECT_NEAR(sol.device_voltage[4], 0.0, 1e-9);   // unselected
}

TEST(Crossbar, CurrentConservationAcrossTerminals) {
  CrossbarArray xbar(lumped(4), lrs_proto());
  // Random-ish stored pattern.
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) xbar.store_bit(r, c, (r + c) % 2 == 0);
  const LineBias bias = access_bias(4, 4, 2, 1, 1.5_V, BiasScheme::kVThird);
  const auto sol = xbar.solve(bias);
  const double in = std::accumulate(sol.row_terminal_current.begin(),
                                    sol.row_terminal_current.end(), 0.0);
  const double out = std::accumulate(sol.col_terminal_current.begin(),
                                     sol.col_terminal_current.end(), 0.0);
  EXPECT_NEAR(in + out, 0.0, 1e-12);  // KCL over the whole array
}

TEST(Crossbar, DriverResistanceDroopsLineVoltage) {
  CrossbarConfig cfg = lumped(4);
  cfg.driver = 10.0_kohm;  // comparable to R_on: visible droop
  CrossbarArray xbar(cfg, lrs_proto());
  const LineBias bias = access_bias(4, 4, 0, 0, 1.0_V, BiasScheme::kGrounded);
  const auto sol = xbar.solve(bias);
  // The selected row feeds 4 LRS devices; its node must sag well below 1 V.
  EXPECT_LT(sol.row_voltage[0], 0.9);
  EXPECT_GT(sol.row_voltage[0], 0.1);
  // Terminal current equals the droop over the driver resistance.
  EXPECT_NEAR(sol.row_terminal_current[0],
              (1.0 - sol.row_voltage[0]) / 10e3, 1e-9);
}

TEST(Crossbar, DistributedMatchesLumpedWhenWiresAreIdeal) {
  const std::size_t n = 4;
  CrossbarConfig lump = lumped(n);
  CrossbarConfig dist = lumped(n);
  dist.model = NetworkModel::kDistributed;
  dist.wire_segment = Resistance(1e-6);  // essentially ideal wires
  CrossbarArray a(lump, lrs_proto());
  CrossbarArray b(dist, lrs_proto());
  a.store_bit(1, 2, false);
  b.store_bit(1, 2, false);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kVHalf);
  const auto sa = a.solve(bias);
  const auto sb = b.solve(bias);
  for (std::size_t i = 0; i < n * n; ++i)
    EXPECT_NEAR(sa.device_voltage[i], sb.device_voltage[i], 1e-3);
  EXPECT_NEAR(-sa.col_terminal_current[0], -sb.col_terminal_current[0],
              std::abs(sa.col_terminal_current[0]) * 0.01);
}

TEST(Crossbar, DistributedShowsIrDropAlongLines) {
  CrossbarConfig cfg = lumped(8);
  cfg.model = NetworkModel::kDistributed;
  cfg.wire_segment = 500.0_ohm;  // deliberately resistive wires
  CrossbarArray xbar(cfg, lrs_proto());
  const LineBias bias = access_bias(8, 8, 0, 0, 1.0_V, BiasScheme::kGrounded);
  const auto sol = xbar.solve(bias);
  // Drivers sit at column 0 (rows) and row 0 (cols): the far-corner
  // device (0,7) must see less voltage than the near device (0,0).
  EXPECT_LT(sol.device_voltage[7], sol.device_voltage[0] - 0.05);
  EXPECT_GT(sol.device_voltage[0], 0.5);
}

TEST(Crossbar, ApplyPulseWritesSelectedCellOnly) {
  CrossbarConfig cfg = lumped(4);
  CrossbarArray xbar(cfg, VcmDevice(presets::vcm_taox(), 0.0));
  const VcmParams p = presets::vcm_taox();
  const LineBias bias = access_bias(4, 4, 1, 1, p.v_write, BiasScheme::kVHalf);
  (void)xbar.apply_pulse(bias, p.t_switch);
  EXPECT_TRUE(xbar.device(1, 1).is_lrs());
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      if (r == 1 && c == 1) continue;
      EXPECT_LT(xbar.device(r, c).state(), 0.05)
          << "disturb at (" << r << ',' << c << ')';
    }
}

TEST(Crossbar, PulseEnergyIsAccounted) {
  CrossbarArray xbar(lumped(2), lrs_proto());
  EXPECT_DOUBLE_EQ(xbar.total_device_energy().value(), 0.0);
  const LineBias bias = access_bias(2, 2, 0, 0, 1.0_V, BiasScheme::kGrounded);
  (void)xbar.apply_pulse(bias, 1.0_ns);
  // Selected LRS cell: 1 V² / 10 kΩ · 1 ns = 0.1 pJ (plus row leakage).
  EXPECT_GT(xbar.total_device_energy().value(), 0.9e-13);
}

TEST(Crossbar, NonlinearJunctionsConverge) {
  VcmParams p = presets::vcm_taox();
  p.nonlinearity = 3.0;
  CrossbarConfig cfg = lumped(4);
  CrossbarArray xbar(cfg, VcmDevice(p, 1.0));
  const LineBias bias = access_bias(4, 4, 0, 0, 1.0_V, BiasScheme::kFloating);
  const auto sol = xbar.solve(bias);
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(sol.nonlinear_iterations, 1u);
  // Floating intermediate lines must sit strictly inside (0, 1 V).
  EXPECT_GT(sol.row_voltage[1], 0.0);
  EXPECT_LT(sol.row_voltage[1], 1.0);
}

TEST(Crossbar, LargeArrayUsesIterativeSolverAndConverges) {
  CrossbarArray xbar(lumped(128), lrs_proto());  // 256 floating unknowns → CG
  const LineBias bias =
      access_bias(128, 128, 0, 0, 1.0_V, BiasScheme::kFloating);
  const auto sol = xbar.solve(bias);
  EXPECT_TRUE(sol.converged);
  EXPECT_GT(-sol.col_terminal_current[0], 0.0);
}

TEST(Crossbar, ConfigValidation) {
  CrossbarConfig cfg;  // rows = cols = 0
  EXPECT_THROW(CrossbarArray(cfg, lrs_proto()), Error);
  cfg = lumped(2);
  cfg.damping = 0.0;
  EXPECT_THROW(CrossbarArray(cfg, lrs_proto()), Error);
  cfg = lumped(2);
  cfg.model = NetworkModel::kDistributed;
  cfg.rows = cfg.cols = 512;  // distributed capped at 256×256
  CrossbarArray big(cfg, lrs_proto());
  LineBias bias = access_bias(512, 512, 0, 0, 1.0_V, BiasScheme::kGrounded);
  EXPECT_THROW((void)big.solve(bias), Error);
}

TEST(Crossbar, BiasSizeMismatchThrows) {
  CrossbarArray xbar(lumped(2), lrs_proto());
  LineBias bias;
  bias.rows.assign(3, Voltage(0.0));
  bias.cols.assign(2, Voltage(0.0));
  EXPECT_THROW((void)xbar.solve(bias), Error);
}

TEST(Crossbar, StoreAndReadBackPattern) {
  CrossbarArray xbar(lumped(3), lrs_proto());
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      xbar.store_bit(r, c, (r * 3 + c) % 2 == 0);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(xbar.stored_bit(r, c), (r * 3 + c) % 2 == 0);
}

}  // namespace
}  // namespace memcim
