#include "crossbar/vmm.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

VmmConfig vmm_cfg(std::size_t in, std::size_t out,
                  NetworkModel model = NetworkModel::kLumpedLines) {
  VmmConfig cfg;
  cfg.array.rows = in;
  cfg.array.cols = out;
  cfg.array.model = model;
  return cfg;
}

VcmDevice linear_proto() { return VcmDevice(presets::vcm_taox(), 0.0); }

TEST(Vmm, IdentityMatrixPassesInputsThrough) {
  CrossbarVmm vmm(vmm_cfg(4, 4), linear_proto());
  std::vector<std::vector<double>> eye(4, std::vector<double>(4, 0.0));
  for (std::size_t i = 0; i < 4; ++i) eye[i][i] = 1.0;
  vmm.program(eye);
  const std::vector<double> x{0.1, 0.5, 0.9, 0.0};
  const auto y = vmm.multiply(x);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(y[j], x[j], 1e-9);
}

TEST(Vmm, MatchesGoldenOnIdealWires) {
  Rng rng(314);
  CrossbarVmm vmm(vmm_cfg(8, 6), linear_proto());
  std::vector<std::vector<double>> w(8, std::vector<double>(6));
  for (auto& row : w)
    for (auto& wij : row) wij = rng.uniform(0.0, 1.0);
  vmm.program(w);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(8);
    for (auto& xi : x) xi = rng.uniform(0.0, 1.0);
    const auto analog = vmm.multiply(x);
    const auto exact = vmm.golden(x);
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_NEAR(analog[j], exact[j], 1e-6) << "output " << j;
  }
}

TEST(Vmm, ZeroWeightsGiveZeroOutput) {
  CrossbarVmm vmm(vmm_cfg(4, 3), linear_proto());
  vmm.program(std::vector<std::vector<double>>(4, std::vector<double>(3, 0.0)));
  const auto y = vmm.multiply({1.0, 1.0, 1.0, 1.0});
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Vmm, FullWeightsSumAllInputs) {
  CrossbarVmm vmm(vmm_cfg(5, 2), linear_proto());
  vmm.program(std::vector<std::vector<double>>(5, std::vector<double>(2, 1.0)));
  const auto y = vmm.multiply({0.2, 0.2, 0.2, 0.2, 0.2});
  EXPECT_NEAR(y[0], 1.0, 1e-9);
  EXPECT_NEAR(y[1], 1.0, 1e-9);
}

TEST(Vmm, WireResistanceDegradesAccuracy) {
  Rng rng(99);
  std::vector<std::vector<double>> w(16, std::vector<double>(16));
  for (auto& row : w)
    for (auto& wij : row) wij = rng.uniform(0.3, 1.0);
  std::vector<double> x(16);
  for (auto& xi : x) xi = rng.uniform(0.3, 1.0);

  CrossbarVmm ideal(vmm_cfg(16, 16), linear_proto());
  ideal.program(w);
  VmmConfig resistive = vmm_cfg(16, 16, NetworkModel::kDistributed);
  resistive.array.wire_segment = Resistance(20.0);
  CrossbarVmm wired(resistive, linear_proto());
  wired.program(w);

  EXPECT_LT(ideal.relative_error(x), 1e-8);
  EXPECT_GT(wired.relative_error(x), ideal.relative_error(x) * 100.0);
  // ...but still bounded: ~10 % of full scale at 20 Ω/segment on a
  // dense all-active 16×16 pattern (the IR-drop tax, see
  // bench_ablation_vmm for the sweep).
  EXPECT_LT(wired.relative_error(x), 0.2);
}

TEST(Vmm, ReadVoltageDoesNotDisturbWeights) {
  CrossbarVmm vmm(vmm_cfg(4, 4), linear_proto());
  std::vector<std::vector<double>> w(4, std::vector<double>(4, 0.5));
  vmm.program(w);
  const std::vector<double> x{1.0, 1.0, 1.0, 1.0};
  const auto y1 = vmm.multiply(x);
  for (int rep = 0; rep < 100; ++rep) (void)vmm.multiply(x);
  const auto y2 = vmm.multiply(x);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(y1[j], y2[j]);
}

TEST(Vmm, Validation) {
  CrossbarVmm vmm(vmm_cfg(2, 2), linear_proto());
  EXPECT_THROW(vmm.program({{0.5}}), Error);                 // shape
  EXPECT_THROW(vmm.program({{1.5, 0.0}, {0.0, 0.0}}), Error);  // range
  vmm.program({{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_THROW((void)vmm.multiply({0.5}), Error);            // length
  EXPECT_THROW((void)vmm.multiply({0.5, 2.0}), Error);       // range
}

}  // namespace
}  // namespace memcim
