// Backend-selection, structure-reuse, warm-start and threading tests
// for the crossbar network solver overhaul.
#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "crossbar/crossbar.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

using namespace memcim::literals;

struct PoolGuard {
  ~PoolGuard() { set_parallel_threads(0); }
};

VcmDevice lrs_proto() { return VcmDevice(presets::vcm_taox(), 1.0); }

VcmDevice nonlinear_proto() {
  VcmParams p = presets::vcm_taox();
  p.nonlinearity = 3.0;
  return VcmDevice(p, 1.0);
}

CrossbarConfig base_config(std::size_t n, NetworkModel model) {
  CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.model = model;
  return cfg;
}

void expect_solutions_bitwise_equal(const CrossbarSolution& a,
                                    const CrossbarSolution& b) {
  ASSERT_EQ(a.device_voltage.size(), b.device_voltage.size());
  EXPECT_EQ(a.nonlinear_iterations, b.nonlinear_iterations);
  EXPECT_EQ(a.converged, b.converged);
  for (std::size_t i = 0; i < a.device_voltage.size(); ++i) {
    EXPECT_EQ(a.device_voltage[i], b.device_voltage[i]) << "device v " << i;
    EXPECT_EQ(a.device_current[i], b.device_current[i]) << "device i " << i;
  }
  for (std::size_t r = 0; r < a.row_voltage.size(); ++r) {
    EXPECT_EQ(a.row_voltage[r], b.row_voltage[r]);
    EXPECT_EQ(a.row_terminal_current[r], b.row_terminal_current[r]);
  }
  for (std::size_t c = 0; c < a.col_voltage.size(); ++c) {
    EXPECT_EQ(a.col_voltage[c], b.col_voltage[c]);
    EXPECT_EQ(a.col_terminal_current[c], b.col_terminal_current[c]);
  }
}

// --- Backend crossover ------------------------------------------------------

TEST(SolverBackend, DistributedCgAgreesWithDenseLu) {
  const std::size_t n = 8;  // 128 nodes
  CrossbarConfig dense_cfg = base_config(n, NetworkModel::kDistributed);
  dense_cfg.wire_segment = 200.0_ohm;
  dense_cfg.dense_solver_max_unknowns = 100000;  // force dense LU
  CrossbarConfig cg_cfg = dense_cfg;
  cg_cfg.dense_solver_max_unknowns = 0;  // force CG
  CrossbarArray a(dense_cfg, lrs_proto());
  CrossbarArray b(cg_cfg, lrs_proto());
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      a.store_bit(r, c, (r * n + c) % 3 == 0);
      b.store_bit(r, c, (r * n + c) % 3 == 0);
    }
  const LineBias bias = access_bias(n, n, 2, 3, 1.0_V, BiasScheme::kVHalf);
  const auto sa = a.solve(bias);
  const auto sb = b.solve(bias);
  ASSERT_TRUE(sa.converged);
  ASSERT_TRUE(sb.converged);
  for (std::size_t i = 0; i < n * n; ++i)
    EXPECT_NEAR(sa.device_voltage[i], sb.device_voltage[i], 1e-7);
  for (std::size_t c = 0; c < n; ++c)
    EXPECT_NEAR(sa.col_terminal_current[c], sb.col_terminal_current[c],
                1e-9 + std::abs(sa.col_terminal_current[c]) * 1e-5);
}

TEST(SolverBackend, LumpedCrossoverIsConfigDriven) {
  // 16×16 floating bias → 30 unknowns; force them through CG and
  // through dense LU and require agreement.
  const std::size_t n = 16;
  CrossbarConfig dense_cfg = base_config(n, NetworkModel::kLumpedLines);
  dense_cfg.dense_solver_max_unknowns = 100000;
  CrossbarConfig cg_cfg = dense_cfg;
  cg_cfg.dense_solver_max_unknowns = 0;
  CrossbarArray a(dense_cfg, lrs_proto());
  CrossbarArray b(cg_cfg, lrs_proto());
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kFloating);
  const auto sa = a.solve(bias);
  const auto sb = b.solve(bias);
  ASSERT_TRUE(sa.converged && sb.converged);
  for (std::size_t i = 0; i < n * n; ++i)
    EXPECT_NEAR(sa.device_voltage[i], sb.device_voltage[i], 1e-7);
}

// --- Structure reuse & warm start ------------------------------------------

TEST(SolverBackend, StructureReuseMatchesFreshAssemblyBitwise) {
  for (NetworkModel model :
       {NetworkModel::kLumpedLines, NetworkModel::kDistributed}) {
    const std::size_t n = 8;
    CrossbarConfig reuse_cfg = base_config(n, model);
    reuse_cfg.warm_start = false;
    reuse_cfg.reuse_structure = true;
    CrossbarConfig fresh_cfg = reuse_cfg;
    fresh_cfg.reuse_structure = false;
    CrossbarArray a(reuse_cfg, nonlinear_proto());
    CrossbarArray b(fresh_cfg, nonlinear_proto());
    const LineBias bias =
        access_bias(n, n, 1, 2, 1.0_V, BiasScheme::kFloating);
    expect_solutions_bitwise_equal(a.solve(bias), b.solve(bias));
  }
}

TEST(SolverBackend, WarmStartConvergesToTheSameSolution) {
  const std::size_t n = 12;
  CrossbarConfig warm_cfg = base_config(n, NetworkModel::kLumpedLines);
  warm_cfg.warm_start = true;
  CrossbarConfig cold_cfg = warm_cfg;
  cold_cfg.warm_start = false;
  CrossbarArray warm(warm_cfg, nonlinear_proto());
  CrossbarArray cold(cold_cfg, nonlinear_proto());
  // A sequence of different bias patterns: warm-start reuses the
  // previous solve's line voltages, the answer must not drift.
  for (std::size_t step = 0; step < 4; ++step) {
    const LineBias bias = access_bias(n, n, step % n, (step * 3) % n, 1.0_V,
                                      BiasScheme::kFloating);
    const auto sw = warm.solve(bias);
    const auto sc = cold.solve(bias);
    ASSERT_TRUE(sw.converged);
    ASSERT_TRUE(sc.converged);
    for (std::size_t i = 0; i < n * n; ++i)
      EXPECT_NEAR(sw.device_voltage[i], sc.device_voltage[i], 1e-4)
          << "step " << step << " device " << i;
  }
}

TEST(SolverBackend, WarmStartCutsTransientSweeps) {
  // Identical pulse applied twice: the second solve starts at the
  // first's fixed point and must converge in no more sweeps.
  const std::size_t n = 8;
  CrossbarConfig cfg = base_config(n, NetworkModel::kLumpedLines);
  CrossbarArray xbar(cfg, nonlinear_proto());
  const LineBias bias = access_bias(n, n, 0, 0, 0.2_V, BiasScheme::kFloating);
  const auto first = xbar.solve(bias);
  const auto second = xbar.solve(bias);
  ASSERT_TRUE(first.converged && second.converged);
  EXPECT_LE(second.nonlinear_iterations, first.nonlinear_iterations);
}

// --- Lifted distributed cap -------------------------------------------------

TEST(SolverBackend, Distributed128MatchesLumpedWithIdealWires) {
  // Previously impossible: the distributed model was capped at 64×64.
  const std::size_t n = 128;
  CrossbarConfig lump_cfg = base_config(n, NetworkModel::kLumpedLines);
  CrossbarConfig dist_cfg = base_config(n, NetworkModel::kDistributed);
  dist_cfg.wire_segment = Resistance(1e-6);  // essentially ideal wires
  CrossbarArray a(lump_cfg, lrs_proto());
  CrossbarArray b(dist_cfg, lrs_proto());
  a.store_bit(3, 5, false);
  b.store_bit(3, 5, false);
  const LineBias bias = access_bias(n, n, 0, 0, 1.0_V, BiasScheme::kVHalf);
  const auto sa = a.solve(bias);
  const auto sb = b.solve(bias);
  ASSERT_TRUE(sa.converged);
  ASSERT_TRUE(sb.converged);
  // Sense current through the selected column must agree to ~1 %.
  EXPECT_NEAR(-sa.col_terminal_current[0], -sb.col_terminal_current[0],
              std::abs(sa.col_terminal_current[0]) * 0.01);
  // Spot-check junction voltages across the array.
  for (std::size_t i : {std::size_t{0}, std::size_t{3 * n + 5},
                        std::size_t{n * n - 1}})
    EXPECT_NEAR(sa.device_voltage[i], sb.device_voltage[i], 1e-3);
}

// --- Determinism across thread counts ---------------------------------------

TEST(SolverBackend, SolveIsBitwiseIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  for (NetworkModel model :
       {NetworkModel::kLumpedLines, NetworkModel::kDistributed}) {
    const std::size_t n = 16;
    const CrossbarConfig cfg = base_config(n, model);
    const LineBias bias =
        access_bias(n, n, 1, 1, 1.0_V, BiasScheme::kFloating);

    set_parallel_threads(1);
    CrossbarArray serial_array(cfg, nonlinear_proto());
    const auto serial_sol = serial_array.solve(bias);

    set_parallel_threads(4);
    CrossbarArray threaded_array(cfg, nonlinear_proto());
    const auto threaded_sol = threaded_array.solve(bias);

    expect_solutions_bitwise_equal(serial_sol, threaded_sol);
  }
}

TEST(SolverBackend, PulseTrainIsBitwiseIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const std::size_t n = 8;
  const CrossbarConfig cfg = base_config(n, NetworkModel::kLumpedLines);
  const VcmParams p = presets::vcm_taox();

  const auto run_train = [&](std::size_t threads) {
    set_parallel_threads(threads);
    CrossbarArray xbar(cfg, VcmDevice(p, 0.0));
    for (std::size_t step = 0; step < 3; ++step) {
      const LineBias bias = access_bias(n, n, step, step, p.v_write,
                                        BiasScheme::kVHalf);
      (void)xbar.apply_pulse(bias, p.t_switch);
    }
    std::vector<double> states;
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        states.push_back(xbar.device(r, c).state());
    return states;
  };

  const auto s1 = run_train(1);
  const auto s4 = run_train(4);
  ASSERT_EQ(s1.size(), s4.size());
  for (std::size_t i = 0; i < s1.size(); ++i)
    EXPECT_EQ(s1[i], s4[i]) << "device " << i;
}

}  // namespace
}  // namespace memcim
