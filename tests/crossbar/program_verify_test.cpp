#include <gtest/gtest.h>

#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

CrossbarConfig sized(std::size_t n) {
  CrossbarConfig cfg;
  cfg.model = NetworkModel::kLumpedLines;
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

ReadConfig grounded_read() {
  ReadConfig rc;
  rc.scheme = BiasScheme::kGrounded;
  return rc;
}

TEST(ProgramVerify, FullStrengthPulseVerifiesFirstTry) {
  CrossbarArray array(sized(4), VcmDevice(presets::vcm_taox(), 0.0));
  CrossbarArray scratch(sized(4), VcmDevice(presets::vcm_taox(), 0.0));
  const ReadMeasurement ref = measure_read_margin(scratch, 0, 0, grounded_read());
  WriteConfig wc;
  wc.v_write = presets::vcm_taox().v_write;
  wc.pulse = presets::vcm_taox().t_switch;
  wc.scheme = BiasScheme::kVHalf;
  const auto r = program_verify_write(array, 1, 2, true, wc, grounded_read(), ref);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.write_pulses, 1u);   // initial verify fails, one pulse, done
  EXPECT_EQ(r.verify_reads, 2u);
  EXPECT_TRUE(array.stored_bit(1, 2));
}

TEST(ProgramVerify, WeakPulsesNeedMultipleIterations) {
  // A pulse a third of t_switch under-programs.  On a filamentary
  // (shape-8) device a 1/3-programmed cell still conducts like HRS, so
  // the open-loop write fails its own verification and the closed loop
  // converges after ~2 pulses.  (On the linear-mix device a 1/3 state
  // already senses above the geometric-mean threshold — partial
  // programming is a filamentary-device problem.)
  VcmParams dev = presets::vcm_taox_logic();
  dev.snap_x = 0.0;  // gradual switching: no runaway completion
  CrossbarArray array(sized(4), VcmDevice(dev, 0.0));
  CrossbarArray scratch(sized(4), VcmDevice(dev, 0.0));
  const ReadMeasurement ref = measure_read_margin(scratch, 0, 0, grounded_read());
  WriteConfig weak;
  weak.v_write = dev.v_write;
  weak.pulse = dev.t_switch / 3.0;
  weak.scheme = BiasScheme::kVHalf;

  // Open loop: under-programmed.
  const WriteResult open_loop = write_bit(array, 0, 0, true, weak);
  EXPECT_FALSE(open_loop.success);
  EXPECT_FALSE(array.stored_bit(0, 0));

  // Closed loop on a fresh cell.
  const auto r =
      program_verify_write(array, 2, 2, true, weak, grounded_read(), ref);
  EXPECT_TRUE(r.success);
  EXPECT_GE(r.write_pulses, 2u);
  EXPECT_LE(r.write_pulses, 3u);
  EXPECT_TRUE(array.stored_bit(2, 2));
}

TEST(ProgramVerify, AlreadyCorrectCellCostsOnlyOneRead) {
  CrossbarArray array(sized(4), VcmDevice(presets::vcm_taox(), 0.0));
  CrossbarArray scratch(sized(4), VcmDevice(presets::vcm_taox(), 0.0));
  const ReadMeasurement ref = measure_read_margin(scratch, 0, 0, grounded_read());
  array.store_bit(3, 3, true);
  WriteConfig wc;
  wc.v_write = presets::vcm_taox().v_write;
  wc.pulse = presets::vcm_taox().t_switch;
  const auto r = program_verify_write(array, 3, 3, true, wc, grounded_read(), ref);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.write_pulses, 0u);
  EXPECT_EQ(r.verify_reads, 1u);
}

TEST(ProgramVerify, GivesUpAfterMaxPulses) {
  CrossbarArray array(sized(4), VcmDevice(presets::vcm_taox(), 0.0));
  CrossbarArray scratch(sized(4), VcmDevice(presets::vcm_taox(), 0.0));
  const ReadMeasurement ref = measure_read_margin(scratch, 0, 0, grounded_read());
  WriteConfig hopeless;
  hopeless.v_write = Voltage(0.5);  // sub-threshold: cell never moves
  hopeless.pulse = presets::vcm_taox().t_switch;
  const auto r = program_verify_write(array, 0, 1, true, hopeless,
                                      grounded_read(), ref, 5);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.write_pulses, 5u);
  EXPECT_EQ(r.verify_reads, 6u);
}

}  // namespace
}  // namespace memcim
