#include "crossbar/crs_memory.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "device/presets.h"

namespace memcim {
namespace {

TEST(CrsMemory, RoundTripRandomPattern) {
  CrsMemory mem(8, 8, presets::crs_cell());
  Rng rng(123);
  std::vector<bool> pattern(64);
  for (std::size_t i = 0; i < 64; ++i) pattern[i] = rng.bernoulli(0.5);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c) mem.write(r, c, pattern[r * 8 + c]);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_EQ(mem.read(r, c), pattern[r * 8 + c]);
  // And again: write-back preserved everything.
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_EQ(mem.read(r, c), pattern[r * 8 + c]);
}

TEST(CrsMemory, DestructiveReadsAreCountedAndRestored) {
  CrsMemory mem(2, 2, presets::crs_cell());
  mem.write(0, 0, false);
  mem.write(0, 1, true);
  EXPECT_EQ(mem.destructive_reads(), 0u);
  EXPECT_FALSE(mem.read(0, 0));  // reading '0' is destructive
  EXPECT_EQ(mem.destructive_reads(), 1u);
  EXPECT_TRUE(mem.read(0, 1));  // reading '1' is not
  EXPECT_EQ(mem.destructive_reads(), 1u);
  EXPECT_EQ(mem.cell(0, 0).state(), CrsState::kZero);  // written back
}

TEST(CrsMemory, WordOperations) {
  CrsMemory mem(4, 8, presets::crs_cell());
  const std::vector<bool> word{true, false, true, true,
                               false, false, true, false};
  mem.write_word(2, word);
  EXPECT_EQ(mem.read_word(2), word);
  EXPECT_THROW(mem.write_word(2, std::vector<bool>(5)), Error);
}

TEST(CrsMemory, EnergyAndPulseAccounting) {
  CrsMemory mem(1, 1, presets::crs_cell());
  // Initial state is '0'. Writing '1' costs one transition (1 fJ).
  mem.write(0, 0, true);
  EXPECT_DOUBLE_EQ(mem.total_energy().value(), 1e-15);
  EXPECT_EQ(mem.total_pulses(), 1u);
  // Reading '1': one pulse, no transition.
  (void)mem.read(0, 0);
  EXPECT_DOUBLE_EQ(mem.total_energy().value(), 1e-15);
  EXPECT_EQ(mem.total_pulses(), 2u);
  // Write '0' (one transition), then read '0': read pulse switches to
  // ON (transition) and write-back restores (transition) = 2 more.
  mem.write(0, 0, false);
  (void)mem.read(0, 0);
  EXPECT_DOUBLE_EQ(mem.total_energy().value(), 4e-15);
  EXPECT_EQ(mem.total_pulses(), 5u);
  // 5 pulses × 200 ps.
  EXPECT_NEAR(mem.total_time().value(), 1e-9, 1e-15);
}

TEST(CrsMemory, StatsCounters) {
  CrsMemory mem(2, 2, presets::crs_cell());
  mem.write(0, 0, true);
  mem.write(1, 1, false);
  (void)mem.read(0, 0);
  (void)mem.read(1, 1);
  EXPECT_EQ(mem.writes(), 2u);
  EXPECT_EQ(mem.reads(), 2u);
}

TEST(CrsMemory, BoundsChecked) {
  CrsMemory mem(2, 2, presets::crs_cell());
  EXPECT_THROW(mem.write(2, 0, true), Error);
  EXPECT_THROW((void)mem.read(0, 2), Error);
  EXPECT_THROW((void)mem.cell(5, 5), Error);
  EXPECT_THROW(CrsMemory(0, 2, presets::crs_cell()), Error);
}

}  // namespace
}  // namespace memcim
