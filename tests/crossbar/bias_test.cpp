#include "crossbar/bias.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace memcim {
namespace {

using namespace memcim::literals;

TEST(Bias, FloatingSchemeLeavesUnaccessedLinesFloating) {
  const LineBias b = access_bias(4, 4, 1, 2, 2.0_V, BiasScheme::kFloating);
  ASSERT_EQ(b.rows.size(), 4u);
  ASSERT_EQ(b.cols.size(), 4u);
  EXPECT_EQ(b.rows[1], 2.0_V);
  EXPECT_EQ(b.cols[2], Voltage(0.0));
  for (std::size_t r : {0u, 2u, 3u}) EXPECT_FALSE(b.rows[r].has_value());
  for (std::size_t c : {0u, 1u, 3u}) EXPECT_FALSE(b.cols[c].has_value());
}

TEST(Bias, GroundedSchemeDrivesAllLines) {
  const LineBias b = access_bias(3, 3, 0, 0, 1.0_V, BiasScheme::kGrounded);
  EXPECT_EQ(b.rows[0], 1.0_V);
  EXPECT_EQ(*b.rows[1], Voltage(0.0));
  EXPECT_EQ(*b.rows[2], Voltage(0.0));
  for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(*b.cols[c], Voltage(0.0));
}

TEST(Bias, VHalfSchemeHalfSelectVoltages) {
  const LineBias b = access_bias(3, 3, 1, 1, 2.0_V, BiasScheme::kVHalf);
  EXPECT_EQ(*b.rows[1], 2.0_V);
  EXPECT_EQ(*b.cols[1], Voltage(0.0));
  EXPECT_EQ(*b.rows[0], 1.0_V);
  EXPECT_EQ(*b.cols[0], 1.0_V);
  // Unselected cell (0,0): 1 − 1 = 0 V.  Half-selected (1,0): 2 − 1 = 1 V.
}

TEST(Bias, VThirdSchemeThirdsPattern) {
  const LineBias b = access_bias(3, 3, 0, 0, 3.0_V, BiasScheme::kVThird);
  EXPECT_EQ(*b.rows[0], 3.0_V);
  EXPECT_EQ(*b.cols[0], Voltage(0.0));
  EXPECT_DOUBLE_EQ(b.rows[1]->value(), 1.0);   // V/3
  EXPECT_DOUBLE_EQ(b.cols[1]->value(), 2.0);   // 2V/3
  // Unselected cell (1,1) sees 1 − 2 = −V/3; half-selected row cell
  // (0,1) sees 3 − 2 = V/3; half-selected column cell (1,0) sees V/3.
}

TEST(Bias, NegativeAmplitudeMirrors) {
  const LineBias b = access_bias(2, 2, 0, 0, -2.0_V, BiasScheme::kVHalf);
  EXPECT_EQ(*b.rows[0], -2.0_V);
  EXPECT_DOUBLE_EQ(b.rows[1]->value(), -1.0);
  EXPECT_DOUBLE_EQ(b.cols[1]->value(), -1.0);
}

TEST(Bias, OutOfRangeAccessThrows) {
  EXPECT_THROW((void)access_bias(2, 2, 2, 0, 1.0_V, BiasScheme::kVHalf), Error);
  EXPECT_THROW((void)access_bias(2, 2, 0, 5, 1.0_V, BiasScheme::kVHalf), Error);
}

TEST(Bias, SchemeNames) {
  EXPECT_STREQ(to_string(BiasScheme::kFloating), "floating");
  EXPECT_STREQ(to_string(BiasScheme::kGrounded), "grounded");
  EXPECT_STREQ(to_string(BiasScheme::kVHalf), "v/2");
  EXPECT_STREQ(to_string(BiasScheme::kVThird), "v/3");
}

}  // namespace
}  // namespace memcim
