#include "crossbar/readout.h"

#include <gtest/gtest.h>

#include "crossbar/selector.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

using namespace memcim::literals;

VcmDevice bare_proto() { return VcmDevice(presets::vcm_taox(), 0.0); }

CrossbarConfig lumped() {
  CrossbarConfig cfg;
  cfg.model = NetworkModel::kLumpedLines;
  return cfg;
}

CrossbarConfig sized(std::size_t n) {
  CrossbarConfig cfg = lumped();
  cfg.rows = n;
  cfg.cols = n;
  return cfg;
}

TEST(Readout, WorstCasePatternProgramsAllLrsExceptTarget) {
  CrossbarArray xbar(sized(3), bare_proto());
  program_worst_case_pattern(xbar, 1, 1, /*target_lrs=*/false);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(xbar.stored_bit(r, c), !(r == 1 && c == 1));
}

TEST(Readout, GroundedReadMarginNearIdeal) {
  CrossbarArray xbar(sized(8), bare_proto());
  ReadConfig rc;
  rc.scheme = BiasScheme::kGrounded;
  const auto meas = measure_read_margin(xbar, 0, 0, rc);
  // Grounded sensing sees only the device itself: ratio ≈ R_off/R_on.
  EXPECT_GT(meas.on_off_ratio, 500.0);
  EXPECT_GT(meas.margin, 0.99);
}

TEST(Readout, FloatingMarginDegradesWithArraySize) {
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;
  const auto pts = margin_vs_size(bare_proto(), lumped(), rc, {4, 16, 64});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(pts[0].margin, pts[1].margin);
  EXPECT_GT(pts[1].margin, pts[2].margin);
  // Sneak paths swamp the HRS read well before 64×64 on ohmic devices.
  EXPECT_LT(pts[2].margin, 0.5);
}

TEST(Readout, TransistorJunctionImmuneToArraySize) {
  TransistorDevice proto(std::make_unique<VcmDevice>(presets::vcm_taox(), 0.0));
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;
  const auto pts = margin_vs_size(proto, lumped(), rc, {4, 32});
  // 1T1R: unselected gates off → sneak paths broken; margin stays high.
  EXPECT_GT(pts[0].margin, 0.95);
  EXPECT_GT(pts[1].margin, 0.95);
}

TEST(Readout, NonlinearSelectorBeatsPassiveAtSameSize) {
  const std::size_t n = 32;
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;
  const auto passive =
      margin_vs_size(bare_proto(), lumped(), rc, {n}).front();
  SelectorDevice sel_proto(
      std::make_unique<VcmDevice>(presets::vcm_taox(), 0.0),
      nonlinear_selector());
  const auto with_sel = margin_vs_size(sel_proto, lumped(), rc, {n}).front();
  EXPECT_GT(with_sel.margin, passive.margin);
}

TEST(Readout, ReadBitRecoversStoredPattern) {
  const std::size_t n = 8;
  CrossbarArray xbar(sized(n), bare_proto());
  ReadConfig rc;
  rc.scheme = BiasScheme::kGrounded;
  // Reference from the worst-case corner.
  CrossbarArray ref_array(sized(n), bare_proto());
  const auto ref = measure_read_margin(ref_array, 0, 0, rc);
  // Checkerboard pattern.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) xbar.store_bit(r, c, (r + c) % 2 == 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_EQ(read_bit(xbar, r, c, rc, ref), (r + c) % 2 == 0)
          << "cell (" << r << ',' << c << ')';
}

TEST(Readout, WriteBitSetsAndResets) {
  CrossbarArray xbar(sized(4), bare_proto());
  WriteConfig wc;
  wc.v_write = presets::vcm_taox().v_write;
  wc.pulse = presets::vcm_taox().t_switch;
  wc.scheme = BiasScheme::kVHalf;
  const auto set = write_bit(xbar, 2, 3, true, wc);
  EXPECT_TRUE(set.success);
  EXPECT_TRUE(xbar.stored_bit(2, 3));
  EXPECT_LT(set.max_disturb, 0.02);
  EXPECT_GT(set.array_energy.value(), 0.0);
  const auto reset = write_bit(xbar, 2, 3, false, wc);
  EXPECT_TRUE(reset.success);
  EXPECT_FALSE(xbar.stored_bit(2, 3));
}

TEST(Readout, RepeatedHalfSelectsAccumulateDisturb) {
  // The voltage-time dilemma in action: many same-polarity writes to
  // (0,0) slowly creep the half-selected cells of row 0 upward.
  CrossbarArray xbar(sized(4), bare_proto());
  WriteConfig wc;
  wc.v_write = presets::vcm_taox().v_write;
  wc.pulse = presets::vcm_taox().t_switch;
  wc.scheme = BiasScheme::kVHalf;
  for (int k = 0; k < 100; ++k) (void)write_bit(xbar, 0, 0, true, wc);
  const double crept = xbar.device(0, 1).state();
  EXPECT_GT(crept, 0.01);  // visible creep after 100 pulses
  EXPECT_LT(crept, 0.5);   // but not a flipped bit
}

TEST(Readout, AlternatingWritesCancelHalfSelectCreep) {
  // A balanced SET/RESET write stream leaves half-selected neighbours
  // where they started: the disturb polarity alternates too.
  CrossbarArray xbar(sized(4), bare_proto());
  WriteConfig wc;
  wc.v_write = presets::vcm_taox().v_write;
  wc.pulse = presets::vcm_taox().t_switch;
  wc.scheme = BiasScheme::kVHalf;
  for (int k = 0; k < 50; ++k) {
    (void)write_bit(xbar, 0, 0, true, wc);
    (void)write_bit(xbar, 0, 0, false, wc);
  }
  EXPECT_LT(xbar.device(0, 1).state(), 0.01);
}

TEST(Readout, MaxArraySizeFindsCutoff) {
  ReadConfig rc;
  rc.scheme = BiasScheme::kFloating;
  // Floating-scheme worst-case margins on this device collapse fast:
  // ~0.44 at N=4, ~0.12 at N=16, ~0.03 at N=64 (Flocke-style result).
  const std::vector<std::size_t> sizes{4, 8, 16, 32, 64};
  const std::size_t n_max =
      max_array_size(bare_proto(), lumped(), rc, sizes, 0.1);
  EXPECT_EQ(n_max, 16u);
  // Raising the required margin can only shrink the feasible size.
  const std::size_t stricter =
      max_array_size(bare_proto(), lumped(), rc, sizes, 0.4);
  EXPECT_EQ(stricter, 4u);
  EXPECT_EQ(max_array_size(bare_proto(), lumped(), rc, sizes, 0.99), 0u);
}

}  // namespace
}  // namespace memcim
