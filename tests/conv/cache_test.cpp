#include "conv/cache.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace memcim {
namespace {

CacheConfig tiny() {
  CacheConfig cfg;
  cfg.size_bytes = 512;
  cfg.line_bytes = 64;
  cfg.ways = 2;  // 4 sets
  return cfg;
}

TEST(Cache, GeometryDerivation) {
  SetAssociativeCache c(tiny());
  EXPECT_EQ(c.sets(), 4u);
  const SetAssociativeCache paper{CacheConfig{}};  // 8 kB / 64 B / 4-way
  EXPECT_EQ(paper.sets(), 32u);
}

TEST(Cache, ColdMissThenHit) {
  SetAssociativeCache c(tiny());
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1038));  // same 64 B line
  EXPECT_FALSE(c.access(0x1040));  // next line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder) {
  SetAssociativeCache c(tiny());  // 2 ways
  // Three lines mapping to the same set (set stride = 4 lines = 256 B).
  const std::uint64_t a = 0x0000, b = 0x0100, d = 0x0200;
  (void)c.access(a);
  (void)c.access(b);
  (void)c.access(a);  // a is now MRU
  (void)c.access(d);  // evicts b (LRU)
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, SequentialScanHitsWithinLines) {
  SetAssociativeCache c(CacheConfig{});
  c.run(sequential_trace(0, 4096, 8));  // 512 accesses, 64 lines
  // 8-byte stride in 64-byte lines: 1 miss + 7 hits per line.
  EXPECT_EQ(c.stats().misses, 64u);
  EXPECT_EQ(c.stats().hits, 448u);
  EXPECT_NEAR(c.stats().hit_rate(), 7.0 / 8.0, 1e-12);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  SetAssociativeCache c(CacheConfig{});  // 8 kB
  Rng rng(5);
  // Random accesses over 1 MB: hit rate collapses toward line reuse only.
  c.run(random_trace(0, 1 << 20, 20'000, rng));
  EXPECT_LT(c.stats().hit_rate(), 0.05);
}

TEST(Cache, WorkingSetInsideCacheConverges) {
  SetAssociativeCache c(CacheConfig{});  // 8 kB
  Rng rng(6);
  // Random accesses within 4 kB: after warm-up everything hits.
  c.run(random_trace(0, 4 << 10, 10'000, rng));
  EXPECT_GT(c.stats().hit_rate(), 0.95);
}

TEST(Cache, FlushDropsContents) {
  SetAssociativeCache c(tiny());
  (void)c.access(0x40);
  EXPECT_TRUE(c.contains(0x40));
  c.flush();
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_FALSE(c.access(0x40));  // cold again
}

TEST(Cache, ConfigValidation) {
  CacheConfig bad;
  bad.line_bytes = 48;  // not a power of two
  EXPECT_THROW(SetAssociativeCache{bad}, Error);
  bad = CacheConfig{};
  bad.ways = 0;
  EXPECT_THROW(SetAssociativeCache{bad}, Error);
  bad = CacheConfig{};
  bad.size_bytes = 96;  // smaller than line*ways
  EXPECT_THROW(SetAssociativeCache{bad}, Error);
}

TEST(Trace, Generators) {
  const MemoryTrace seq = sequential_trace(100, 64, 16);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq.accesses()[3].address, 148u);
  Rng rng(2);
  const MemoryTrace rnd = random_trace(1000, 50, 10, rng);
  for (const auto& a : rnd.accesses()) {
    EXPECT_GE(a.address, 1000u);
    EXPECT_LT(a.address, 1050u);
  }
  EXPECT_THROW((void)sequential_trace(0, 10, 0), Error);
}

}  // namespace
}  // namespace memcim
