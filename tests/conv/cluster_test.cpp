#include "conv/cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace memcim {
namespace {

TEST(Cluster, SingleCoreTimingArithmetic) {
  // 1 miss + 7 hits per line over 2 lines (16 accesses, stride 8).
  std::vector<MemoryTrace> traces{sequential_trace(0, 128, 8)};
  ClusterTiming timing;
  const ClusterRunResult r = run_cluster(traces, CacheConfig{}, timing);
  EXPECT_EQ(r.cache.misses, 2u);
  EXPECT_EQ(r.cache.hits, 14u);
  // cycles = 16 compute + 2·165 miss + 14·1 hit = 360.
  EXPECT_DOUBLE_EQ(r.core_cycles[0], 360.0);
  EXPECT_NEAR(r.wall_time.value(), 360e-9, 1e-15);
}

TEST(Cluster, DisjointStreamsContendForSharedCache) {
  // 32 cores each scanning a private 4 kB region: combined working set
  // 128 kB >> 8 kB shared L1 — with a shared cache the per-core hit
  // rate is far below the private-cache ideal... unless streams are
  // line-sequential (spatial hits survive interleaving).  Use random
  // accesses to expose capacity contention.
  Rng rng(9);
  std::vector<MemoryTrace> shared_traces;
  std::vector<MemoryTrace> solo_trace;
  for (int core = 0; core < 32; ++core)
    shared_traces.push_back(random_trace(
        static_cast<std::uint64_t>(core) << 20, 4 << 10, 500, rng));
  Rng rng2(9);
  solo_trace.push_back(random_trace(0, 4 << 10, 500, rng2));

  const auto shared = run_cluster(shared_traces, CacheConfig{}, {});
  const auto solo = run_cluster(solo_trace, CacheConfig{}, {});
  EXPECT_GT(solo.hit_rate(), 0.6);
  EXPECT_LT(shared.hit_rate(), solo.hit_rate() - 0.3);
}

TEST(Cluster, WallTimeIsSlowestCore) {
  std::vector<MemoryTrace> traces(2);
  traces[0] = sequential_trace(0, 64, 8);        // 8 accesses
  traces[1] = sequential_trace(1 << 20, 512, 8); // 64 accesses
  const auto r = run_cluster(traces, CacheConfig{}, {});
  EXPECT_GT(r.core_cycles[1], r.core_cycles[0]);
  EXPECT_NEAR(r.wall_time.value(), r.core_cycles[1] * 1e-9, 1e-15);
}

TEST(Cluster, EmptyClusterRejected) {
  EXPECT_THROW((void)run_cluster({}, CacheConfig{}, {}), Error);
}

}  // namespace
}  // namespace memcim
