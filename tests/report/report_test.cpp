// memcim-report engine: metric flattening, wildcard path gates,
// thresholds parsing, baseline diffs (including the canonical
// synthetic-10%-regression drill CI runs), ledger lines, and the
// attribution table renderer.
#include "report/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/json_parser.h"

namespace memcim::report {
namespace {

using telemetry::JsonValue;
using telemetry::parse_json;

JsonValue parse_ok(const std::string& text) {
  telemetry::JsonParseResult r = parse_json(text);
  EXPECT_TRUE(r.ok) << r.error;
  return std::move(r.value);
}

std::string temp_file(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

TEST(FlattenNumeric, WalksObjectsArraysAndBools) {
  const JsonValue doc = parse_ok(
      R"({"a": 1, "b": {"c": 2.5}, "sweep": [{"x": 3}, {"x": 4}],)"
      R"( "name": "skipped", "flag": true, "nothing": null})");
  const std::vector<FlatMetric> metrics = flatten_numeric(doc);
  ASSERT_EQ(metrics.size(), 5u);
  EXPECT_EQ(metrics[0].path, "a");
  EXPECT_EQ(metrics[0].text, "1");
  EXPECT_EQ(metrics[1].path, "b.c");
  EXPECT_DOUBLE_EQ(metrics[1].value, 2.5);
  EXPECT_EQ(metrics[2].path, "sweep[0].x");
  EXPECT_EQ(metrics[3].path, "sweep[1].x");
  EXPECT_EQ(metrics[4].path, "flag");
  EXPECT_EQ(metrics[4].value, 1.0);
  EXPECT_EQ(metrics[4].text, "true");
}

TEST(MetricPathMatch, LiteralAndWildcard) {
  EXPECT_TRUE(metric_path_match("a.b", "a.b"));
  EXPECT_FALSE(metric_path_match("a.b", "a.bc"));
  EXPECT_TRUE(metric_path_match("sweep[*].flits", "sweep[3].flits"));
  EXPECT_FALSE(metric_path_match("sweep[*].flits", "sweep[3].hops"));
  EXPECT_TRUE(metric_path_match("*", "anything.at[0].all"));
  EXPECT_TRUE(metric_path_match("a*z", "az"));
  EXPECT_TRUE(metric_path_match("a*z", "a.middle.z"));
  EXPECT_FALSE(metric_path_match("a*z", "a.middle.y"));
  EXPECT_TRUE(metric_path_match("*.energy", "noc.energy"));
  EXPECT_FALSE(metric_path_match("", "x"));
}

const char kThresholds[] = R"({
  "schema": "memcim-thresholds-v1",
  "default_rel_tol": 0.05,
  "benches": {
    "logic": {
      "metrics": [
        {"path": "imply.ops", "rel_tol": 0.0},
        {"path": "sweep[*].speedup", "rel_tol": 0.10, "direction": "down"},
        {"path": "model.*", "direction": "up"}
      ]
    }
  }
})";

TEST(Thresholds, ParsesGatesWithDefaults) {
  Thresholds t;
  std::string error;
  ASSERT_TRUE(load_thresholds(parse_ok(kThresholds), "logic", t, error))
      << error;
  EXPECT_DOUBLE_EQ(t.default_rel_tol, 0.05);
  ASSERT_EQ(t.gates.size(), 3u);
  EXPECT_DOUBLE_EQ(t.gates[0].rel_tol, 0.0);
  EXPECT_EQ(t.gates[0].direction, DiffDirection::kAny);
  EXPECT_EQ(t.gates[1].direction, DiffDirection::kDown);
  EXPECT_DOUBLE_EQ(t.gates[2].rel_tol, 0.05);  // inherits the default
  EXPECT_EQ(t.gates[2].direction, DiffDirection::kUp);

  ASSERT_NE(t.gate_for("sweep[7].speedup"), nullptr);
  EXPECT_EQ(t.gate_for("sweep[7].hops"), nullptr);
  ASSERT_NE(t.gate_for("model.energy"), nullptr);
}

TEST(Thresholds, AbsentBenchYieldsNoGates) {
  Thresholds t;
  std::string error;
  ASSERT_TRUE(load_thresholds(parse_ok(kThresholds), "solver", t, error));
  EXPECT_TRUE(t.gates.empty());
}

TEST(Thresholds, RejectsWrongSchemaAndBadGates) {
  Thresholds t;
  std::string error;
  EXPECT_FALSE(load_thresholds(parse_ok(R"({"schema": "x"})"), "b", t, error));
  EXPECT_FALSE(load_thresholds(
      parse_ok(R"({"schema": "memcim-thresholds-v1",
                   "benches": {"b": {"metrics": [{"path": "p",
                                                 "direction": "sideways"}]}}})"),
      "b", t, error));
}

TEST(DiffBenches, DirectionAndToleranceSemantics) {
  Thresholds t;
  std::string error;
  ASSERT_TRUE(load_thresholds(parse_ok(kThresholds), "logic", t, error));

  const JsonValue baseline = parse_ok(
      R"({"bench": "logic", "imply": {"ops": 100},
          "sweep": [{"speedup": 10.0}, {"speedup": 8.0}],
          "model": {"energy": 50.0}, "wall_ns": 12345})");
  // speedup[0] drops 20% (breach), speedup[1] *rises* (direction=down,
  // no breach), model.energy rises 4% (inside 5% default, no breach),
  // wall_ns doubles (ungated, no breach).
  const JsonValue current = parse_ok(
      R"({"bench": "logic", "imply": {"ops": 100},
          "sweep": [{"speedup": 8.0}, {"speedup": 9.0}],
          "model": {"energy": 52.0}, "wall_ns": 24690})");

  const DiffResult result = diff_benches(baseline, current, t);
  EXPECT_EQ(result.bench, "logic");
  ASSERT_EQ(result.breaches.size(), 1u);
  EXPECT_EQ(result.breaches[0].path, "sweep[0].speedup");
  EXPECT_NEAR(result.breaches[0].rel_delta, -0.2, 1e-12);
  EXPECT_FALSE(result.ok());
}

TEST(DiffBenches, GatedMetricMissingEitherSideBreaches) {
  Thresholds t;
  t.gates.push_back({"imply.ops", 0.0, DiffDirection::kAny});
  const JsonValue with = parse_ok(R"({"bench": "logic", "imply": {"ops": 1}})");
  const JsonValue without = parse_ok(R"({"bench": "logic"})");

  EXPECT_FALSE(diff_benches(with, without, t).ok());
  EXPECT_FALSE(diff_benches(without, with, t).ok());
  // Ungated extra metrics are reported, not failed.
  Thresholds none;
  EXPECT_TRUE(diff_benches(with, without, none).ok());
}

TEST(DiffBenches, ZeroBaselineChangeIsInfiniteDelta) {
  Thresholds t;
  t.gates.push_back({"count", 0.5, DiffDirection::kAny});
  const JsonValue baseline = parse_ok(R"({"bench": "b", "count": 0})");
  const JsonValue current = parse_ok(R"({"bench": "b", "count": 3})");
  const DiffResult result = diff_benches(baseline, current, t);
  ASSERT_EQ(result.breaches.size(), 1u);
  EXPECT_TRUE(std::isinf(result.breaches[0].rel_delta));
}

TEST(DiffCommand, DetectsSyntheticTenPercentRegression) {
  // The CI drill: copy BENCH_logic.json, nudge one gated metric 10%,
  // and the diff must exit 1 naming that metric.
  const char kBaseline[] = R"({
    "schema": "memcim-bench-v1", "bench": "logic",
    "imply_sweep": [{"bits": 8, "pulses": 120, "speedup": 4.0}],
    "cam": {"searches": 96, "energy_j": 1.5e-9}
  })";
  const char kRegressed[] = R"({
    "schema": "memcim-bench-v1", "bench": "logic",
    "imply_sweep": [{"bits": 8, "pulses": 132, "speedup": 4.0}],
    "cam": {"searches": 96, "energy_j": 1.5e-9}
  })";
  const char kGates[] = R"({
    "schema": "memcim-thresholds-v1",
    "default_rel_tol": 0.02,
    "benches": {"logic": {"metrics": [
      {"path": "imply_sweep[*].pulses", "direction": "up"},
      {"path": "cam.*"}
    ]}}
  })";
  const std::string base = temp_file("report_base.json", kBaseline);
  const std::string cur = temp_file("report_cur.json", kRegressed);
  const std::string gates = temp_file("report_gates.json", kGates);

  std::string out;
  const int code = diff_command({base, cur, "--thresholds", gates}, out);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("imply_sweep[0].pulses"), std::string::npos) << out;
  EXPECT_NE(out.find("FAIL"), std::string::npos) << out;

  // The unmodified copy passes.
  const int clean = diff_command({base, base, "--thresholds", gates}, out);
  EXPECT_EQ(clean, 0) << out;
}

TEST(DiffCommand, ServingQpsDropOfTenPercentFailsTheGate) {
  // The serving drill: the committed thresholds gate sustained_qps with
  // direction=down and the per-class p99 with direction=up.  A synthetic
  // 10% QPS regression (and the p99 inflation that comes with it) must
  // exit 1 naming the throughput metric; the faithful copy passes.
  const char kBaseline[] = R"({
    "schema": "memcim-bench-v1", "bench": "serving",
    "totals": {"completed": 998000, "sustained_qps": 9.8e6,
               "makespan_ns": 101836734},
    "classes": [{"class": "add", "p50_ns": 2048, "p99_ns": 16384}]
  })";
  const char kRegressed[] = R"({
    "schema": "memcim-bench-v1", "bench": "serving",
    "totals": {"completed": 998000, "sustained_qps": 8.82e6,
               "makespan_ns": 113152000},
    "classes": [{"class": "add", "p50_ns": 2048, "p99_ns": 18500}]
  })";
  const char kGates[] = R"({
    "schema": "memcim-thresholds-v1",
    "default_rel_tol": 0.02,
    "benches": {"serving": {"metrics": [
      {"path": "totals.completed", "rel_tol": 0.0},
      {"path": "totals.sustained_qps", "rel_tol": 0.05, "direction": "down"},
      {"path": "classes[*].p99_ns", "rel_tol": 0.05, "direction": "up"}
    ]}}
  })";
  const std::string base = temp_file("report_serving_base.json", kBaseline);
  const std::string cur = temp_file("report_serving_cur.json", kRegressed);
  const std::string gates = temp_file("report_serving_gates.json", kGates);

  std::string out;
  const int code = diff_command({base, cur, "--thresholds", gates}, out);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("totals.sustained_qps"), std::string::npos) << out;
  EXPECT_NE(out.find("classes[0].p99_ns"), std::string::npos) << out;

  // A QPS *improvement* is not a breach under direction=down.
  const int improved = diff_command({cur, base, "--thresholds", gates}, out);
  EXPECT_EQ(improved, 0) << out;
  EXPECT_EQ(diff_command({base, base, "--thresholds", gates}, out), 0) << out;
}

TEST(DiffCommand, RefusesThresholdsThatResolveZeroGates) {
  // A typo'd (or missing) bench name must not silently disable gating.
  const std::string env = temp_file("report_nogate_env.json",
                                    R"({"bench": "lgoic", "ops": 1})");
  const std::string gates = temp_file("report_nogate_gates.json", R"({
    "schema": "memcim-thresholds-v1",
    "benches": {"logic": {"metrics": [{"path": "ops"}]}}
  })");
  std::string out;
  EXPECT_EQ(diff_command({env, env, "--thresholds", gates}, out), 2);
  EXPECT_NE(out.find("no gates"), std::string::npos) << out;
  // Without --thresholds the same diff is an ungated report and passes.
  EXPECT_EQ(diff_command({env, env}, out), 0) << out;
}

TEST(DiffCommand, UsageAndParseErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(diff_command({}, out), 2);
  EXPECT_EQ(diff_command({"one.json"}, out), 2);
  const std::string bad = temp_file("report_bad.json", "{nope");
  const std::string good = temp_file("report_good.json", R"({"bench":"b"})");
  EXPECT_EQ(diff_command({bad, good}, out), 2);
  EXPECT_EQ(diff_command({good, "/nonexistent/x.json"}, out), 2);
}

TEST(LedgerLine, EmitsCompactSchemaLine) {
  const JsonValue envelope = parse_ok(
      R"({"schema": "memcim-bench-v1", "bench": "logic",
          "provenance": {"git_sha": "abc123", "memcim_threads": "4"},
          "ops": 100, "nested": {"pass": true}})");
  const std::string line = ledger_line(envelope);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const JsonValue parsed = parse_ok(line);
  EXPECT_EQ(parsed.find("schema")->as_string(), "memcim-ledger-v1");
  EXPECT_EQ(parsed.find("bench")->as_string(), "logic");
  EXPECT_EQ(parsed.find("provenance")->find("git_sha")->as_string(), "abc123");
  const JsonValue* metrics = parsed.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("ops")->number_text(), "100");
  EXPECT_EQ(metrics->find("nested.pass")->as_bool(), true);
}

TEST(LedgerCommand, AppendsOneLinePerEnvelope) {
  const std::string bench = temp_file(
      "report_ledger_in.json", R"({"bench": "logic", "ops": 1})");
  const std::string ledger = ::testing::TempDir() + "report_ledger.jsonl";
  std::remove(ledger.c_str());
  std::string out;
  EXPECT_EQ(ledger_command({bench, "--out", ledger}, out), 0);
  EXPECT_EQ(ledger_command({bench, "--out", ledger}, out), 0);
  std::ifstream in(ledger);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(parse_json(line).ok);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(LedgerCommand, ParseErrorAppendsNothing) {
  // All inputs validate before any line is written: a bad second file
  // must leave the ledger untouched, not half-appended.
  const std::string good = temp_file(
      "report_ledger_good.json", R"({"bench": "logic", "ops": 1})");
  const std::string bad = temp_file("report_ledger_bad.json", "{nope");
  const std::string ledger = ::testing::TempDir() + "report_ledger_atomic.jsonl";
  std::remove(ledger.c_str());
  std::string out;
  EXPECT_EQ(ledger_command({good, bad, "--out", ledger}, out), 2);
  std::ifstream in(ledger);
  std::string line;
  EXPECT_FALSE(std::getline(in, line)) << "ledger got a partial append";
}

TEST(AttributionTable, RendersRowsAndTotals) {
  const JsonValue doc = parse_ok(R"({
    "schema": "memcim-attr-v1",
    "rows": [
      {"layer": "device", "tile": 0, "shard": 0,
       "energy_aj": 100, "pulses": 7, "flits": 0, "span_ns": 0},
      {"layer": "arch", "tile": 1, "shard": -1,
       "energy_aj": 0, "pulses": 0, "flits": 0, "span_ns": 99}
    ],
    "totals": {"energy_aj": 100, "pulses": 7, "flits": 0, "span_ns": 99}
  })");
  const std::string table = attribution_table(doc);
  EXPECT_NE(table.find("device"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
  EXPECT_NE(table.find("100"), std::string::npos);
  // Sentinel -1 renders as "-".
  EXPECT_NE(table.find(" - "), std::string::npos) << table;
}

// -- monitoring plane: series columns, diff --series, monitor command --------

const char kTimeseries[] = R"({
  "schema": "memcim-timeseries-v1",
  "period_ns": 10000, "capacity": 4096,
  "total_intervals": 2, "dropped": 0,
  "samples": [
    {"interval": 0, "begin_ns": 0, "end_ns": 10000, "arrivals": 90,
     "admitted": 90, "shed": 0, "completed": 88, "qps": 8800000,
     "shed_rate": 0.0, "occupancy": 40.0, "queue_depth": [1, 0, 1],
     "classes": [{"class": "kmer", "completed": 30, "p99_ns": 16384}]},
    {"interval": 1, "begin_ns": 10000, "end_ns": 20000, "arrivals": 110,
     "admitted": 100, "shed": 10, "completed": 95, "qps": 9500000,
     "shed_rate": 0.0909, "occupancy": 41.5, "queue_depth": [2, 7, 0],
     "classes": [{"class": "kmer", "completed": 35, "p99_ns": 21632}]}
  ],
  "slo": {
    "objectives": [
      {"name": "availability", "kind": "availability", "target_ratio": 0.999,
       "burn_threshold": 10.0, "fast_window": 5, "slow_window": 60}
    ],
    "alerts_fired": 0, "active": false, "events": []
  }
})";

TEST(SeriesColumnFor, MapsServingMetricsToSampleColumns) {
  EXPECT_EQ(series_column_for("totals.sustained_qps"), "qps");
  EXPECT_EQ(series_column_for("totals.shed_rate"), "shed_rate");
  EXPECT_EQ(series_column_for("totals.mean_batch_occupancy"), "occupancy");
  EXPECT_EQ(series_column_for("classes[2].p99_ns"), "classes[2].p99_ns");
  // classes[*].arrivals has no sample column (samples track admitted).
  EXPECT_EQ(series_column_for("classes[0].arrivals"), "");
  EXPECT_EQ(series_column_for("totals.makespan_ns"), "");
  EXPECT_EQ(series_column_for("acceptance.pass"), "");
}

TEST(DiffCommand, SeriesTailPrintsOnBreach) {
  const char kBaseline[] = R"({
    "schema": "memcim-bench-v1", "bench": "serving",
    "totals": {"sustained_qps": 9.8e6}
  })";
  const char kRegressed[] = R"({
    "schema": "memcim-bench-v1", "bench": "serving",
    "totals": {"sustained_qps": 8.0e6}
  })";
  const char kGates[] = R"({
    "schema": "memcim-thresholds-v1",
    "benches": {"serving": {"metrics": [
      {"path": "totals.sustained_qps", "rel_tol": 0.05, "direction": "down"}
    ]}}
  })";
  const std::string base = temp_file("series_base.json", kBaseline);
  const std::string cur = temp_file("series_cur.json", kRegressed);
  const std::string gates = temp_file("series_gates.json", kGates);
  const std::string series = temp_file("series_ts.json", kTimeseries);

  std::string out;
  const int code =
      diff_command({base, cur, "--thresholds", gates, "--series", series}, out);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("recent series for totals.sustained_qps"),
            std::string::npos)
      << out;
  // Both samples' qps values appear in the tail table.
  EXPECT_NE(out.find("8800000"), std::string::npos) << out;
  EXPECT_NE(out.find("9500000"), std::string::npos) << out;

  // No breach → no series output, exit 0.
  EXPECT_EQ(
      diff_command({base, base, "--thresholds", gates, "--series", series},
                   out),
      0);
  EXPECT_EQ(out.find("recent series"), std::string::npos) << out;

  // A bad series file degrades to a warning; the exit code still
  // reflects the diff.
  const std::string junk = temp_file("series_junk.json", "{]");
  EXPECT_EQ(
      diff_command({base, cur, "--thresholds", gates, "--series", junk}, out),
      1);
  EXPECT_NE(out.find("cannot load --series"), std::string::npos) << out;

  // --series without a file name is a usage error.
  EXPECT_EQ(diff_command({base, cur, "--series"}, out), 2);
}

TEST(MonitorCommand, RendersSamplesAndPassesWithoutAlerts) {
  const std::string series = temp_file("monitor_ts.json", kTimeseries);
  std::string out;
  const int code = monitor_command({series}, out);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("2 interval(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("availability"), std::string::npos) << out;
  EXPECT_NE(out.find("PASS"), std::string::npos) << out;
  // Deepest per-sample queue depth is surfaced (interval 1's depth 7).
  EXPECT_NE(out.find("7"), std::string::npos) << out;
}

TEST(MonitorCommand, FiredAlertsExitOne) {
  std::string doc(kTimeseries);
  const std::string needle = "\"alerts_fired\": 0";
  doc.replace(doc.find(needle), needle.size(), "\"alerts_fired\": 2");
  const std::string events_needle = "\"events\": []";
  doc.replace(doc.find(events_needle), events_needle.size(),
              R"("events": [
        {"kind": "burn_rate_alert", "rule": "availability", "at_ns": 20000,
         "interval": 1, "value": 90.9, "threshold": 10.0}
      ])");
  const std::string series = temp_file("monitor_alerting.json", doc);
  std::string out;
  const int code = monitor_command({series}, out);
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("FAIL"), std::string::npos) << out;
  EXPECT_NE(out.find("burn_rate_alert"), std::string::npos) << out;
}

TEST(MonitorCommand, LastFlagLimitsTheTable) {
  const std::string series = temp_file("monitor_last.json", kTimeseries);
  std::string out;
  ASSERT_EQ(monitor_command({series, "--last", "1"}, out), 0) << out;
  EXPECT_NE(out.find("last 1 sample(s)"), std::string::npos) << out;
  // Only interval 1 survives the cut.
  EXPECT_EQ(out.find("8800000"), std::string::npos) << out;
  EXPECT_NE(out.find("9500000"), std::string::npos) << out;
}

TEST(MonitorCommand, SchemaAndUsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(monitor_command({}, out), 2);
  EXPECT_EQ(monitor_command({"a.json", "b.json"}, out), 2);
  const std::string wrong = temp_file("monitor_wrong_schema.json",
                                      R"({"schema": "memcim-bench-v1"})");
  EXPECT_EQ(monitor_command({wrong}, out), 2);
  EXPECT_NE(out.find("memcim-timeseries-v1"), std::string::npos) << out;
  const std::string series = temp_file("monitor_usage.json", kTimeseries);
  EXPECT_EQ(monitor_command({series, "--last"}, out), 2);
  EXPECT_EQ(monitor_command({series, "--last", "0"}, out), 2);
}

}  // namespace
}  // namespace memcim::report
