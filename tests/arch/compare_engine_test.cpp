// Tile compare engines: the compiled (cached-program) default must be
// a drop-in for the legacy scalar walk — bitwise-identical match
// vectors AND an exactly reconciled cost book; the optimized engine
// keeps the matches and carries its own books.
#include <gtest/gtest.h>

#include <vector>

#include "arch/cim_tile.h"
#include "common/rng.h"
#include "device/presets.h"

namespace memcim {
namespace {

std::vector<bool> random_word(std::size_t bits, Rng& rng) {
  std::vector<bool> w(bits);
  for (std::size_t i = 0; i < bits; ++i) w[i] = rng.uniform() < 0.5;
  return w;
}

CimTileConfig tile_config(CompareEngine engine) {
  CimTileConfig cfg;
  cfg.rows = 8;
  cfg.row_bits = 12;
  cfg.cell = presets::crs_cell();
  cfg.compare_engine = engine;
  return cfg;
}

TEST(CompareEngine, CompiledReproducesTheScalarWalkExactly) {
  CimTile scalar(tile_config(CompareEngine::kScalar));
  CimTile compiled(tile_config(CompareEngine::kCompiled));

  Rng rng(0x71EEull);
  for (std::size_t r = 0; r < 8; ++r) {
    const std::vector<bool> row = random_word(12, rng);
    scalar.store_row(r, row);
    compiled.store_row(r, row);
  }

  for (int q = 0; q < 32; ++q) {
    // Mix random keys with exact row hits so matches actually fire.
    const std::vector<bool> key =
        (q % 4 == 0) ? scalar.load_row(static_cast<std::size_t>(q) % 8)
                     : random_word(12, rng);
    EXPECT_EQ(compiled.parallel_compare(key), scalar.parallel_compare(key))
        << "query " << q;
    // Book-exact: same accumulated latency and energy after every query.
    EXPECT_EQ(compiled.stats().latency.value(), scalar.stats().latency.value())
        << "query " << q;
    EXPECT_EQ(compiled.stats().energy.value(), scalar.stats().energy.value())
        << "query " << q;
    EXPECT_EQ(compiled.stats().operations, scalar.stats().operations);
  }
}

TEST(CompareEngine, OptimizedEngineKeepsTheMatchesAndShedsPulses) {
  CimTile scalar(tile_config(CompareEngine::kScalar));
  CimTile optimized(tile_config(CompareEngine::kCompiledOptimized));

  Rng rng(0x0BD7ull);
  for (std::size_t r = 0; r < 8; ++r) {
    const std::vector<bool> row = random_word(12, rng);
    scalar.store_row(r, row);
    optimized.store_row(r, row);
  }

  for (int q = 0; q < 16; ++q) {
    const std::vector<bool> key =
        (q % 4 == 0) ? scalar.load_row(static_cast<std::size_t>(q) % 8)
                     : random_word(12, rng);
    EXPECT_EQ(optimized.parallel_compare(key), scalar.parallel_compare(key))
        << "query " << q;
  }
  // Fewer pulses -> the optimized engine's accumulated energy book is
  // strictly below the scalar walk's (its latency no worse).
  EXPECT_LT(optimized.stats().energy.value(), scalar.stats().energy.value());
  EXPECT_LE(optimized.stats().latency.value(), scalar.stats().latency.value());
}

}  // namespace
}  // namespace memcim
