#include "arch/taxonomy.h"

#include <gtest/gtest.h>

namespace memcim {
namespace {

TEST(Taxonomy, FiveClassesInPaperOrder) {
  const auto survey = taxonomy_survey();
  ASSERT_EQ(survey.size(), 5u);
  EXPECT_EQ(survey.front().cls, SystemClass::kMainMemoryEra);
  EXPECT_EQ(survey.back().cls, SystemClass::kComputationInMemory);
}

TEST(Taxonomy, MovementShareSharpensTowardCim) {
  const auto survey = taxonomy_survey();
  // The pre-cache machine and today's cache-bound machines spend most
  // energy moving data; CIM spends essentially none.
  EXPECT_GT(survey[0].movement_energy_share, 0.99);   // DRAM era
  EXPECT_GT(survey[1].movement_energy_share, 0.95);   // cache era
  // Paper Section II.B: "energy consumption of the cache accesses and
  // communication makes up easily 70% to 90%" — class (c).
  EXPECT_GE(survey[2].movement_energy_share, 0.70);
  EXPECT_LE(survey[2].movement_energy_share, 0.95);
  EXPECT_LT(survey[4].movement_energy_share, 0.01);   // CIM
}

TEST(Taxonomy, AccessLatencyMonotoneExceptPim) {
  const auto survey = taxonomy_survey();
  // (a) → (c) access latency falls as the working set moves closer.
  EXPECT_GT(survey[0].access_latency, survey[1].access_latency);
  EXPECT_GT(survey[1].access_latency, survey[2].access_latency);
  // CIM is the closest of all.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_GT(survey[i].access_latency, survey[4].access_latency);
}

TEST(Taxonomy, OpCostsComposeFromAccessAndCompute) {
  for (const TaxonomyPoint& p : taxonomy_survey()) {
    EXPECT_GT(p.op_latency.value(), p.access_latency.value());
    EXPECT_GT(p.op_energy.value(), p.access_energy.value());
    EXPECT_GT(p.movement_energy_share, 0.0);
    EXPECT_LT(p.movement_energy_share, 1.0);
  }
}

TEST(Taxonomy, LabelsAreDistinct) {
  const auto survey = taxonomy_survey();
  for (std::size_t i = 0; i < survey.size(); ++i)
    for (std::size_t j = i + 1; j < survey.size(); ++j)
      EXPECT_STRNE(to_string(survey[i].cls), to_string(survey[j].cls));
}

}  // namespace
}  // namespace memcim
