// Property suite for the Table 2 cost models: monotonicity and scaling
// relations that must hold for *any* parameter point, swept
// parametrically.  These catch sign errors and unit slips that a few
// pinned golden values cannot.
#include <gtest/gtest.h>

#include "arch/cost_model.h"

namespace memcim {
namespace {

class HitRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(HitRateSweep, ConventionalCostFallsWithHitRate) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.hit_ratio = GetParam();
  const ArchCost at = evaluate_conventional(spec, t);
  spec.hit_ratio = GetParam() + 0.01;
  const ArchCost better = evaluate_conventional(spec, t);
  EXPECT_LT(better.time_per_op.value(), at.time_per_op.value());
  EXPECT_LT(better.energy_per_op.value(), at.energy_per_op.value());
  EXPECT_LT(better.energy_delay_per_op(), at.energy_delay_per_op());
  EXPECT_GT(better.computing_efficiency(), at.computing_efficiency());
}

TEST_P(HitRateSweep, CimAlwaysWinsEnergyMetrics) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.hit_ratio = GetParam();
  const ArchCost conv = evaluate_conventional(spec, t);
  const ArchCost cim = evaluate_cim(spec, t);
  EXPECT_GT(conv.energy_per_op.value(), cim.energy_per_op.value());
  EXPECT_GT(conv.energy_delay_per_op(), cim.energy_delay_per_op());
  // ...while CMOS always wins raw per-op latency (252 ps vs 26.6 ns).
  EXPECT_LT(conv.time_per_op.value(), cim.time_per_op.value());
}

TEST_P(HitRateSweep, CimEnergyIndependentOfHitRate) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.hit_ratio = GetParam();
  const double e1 = evaluate_cim(spec, t).energy_per_op.value();
  spec.hit_ratio = 0.98;
  const double e2 = evaluate_cim(spec, t).energy_per_op.value();
  EXPECT_DOUBLE_EQ(e1, e2);  // non-volatile: no stall leakage term
}

INSTANTIATE_TEST_SUITE_P(Rates, HitRateSweep,
                         ::testing::Values(0.10, 0.30, 0.50, 0.70, 0.90,
                                           0.98),
                         [](const auto& tp_info) {
                           return "hit" + std::to_string(static_cast<int>(
                                              tp_info.param * 100));
                         });

class ParallelismSweep : public ::testing::TestWithParam<double> {};

TEST_P(ParallelismSweep, TotalTimeInverselyProportionalToUnits) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.parallel_units = GetParam();
  const ArchCost one = evaluate_cim(spec, t);
  spec.parallel_units = GetParam() * 10.0;
  const ArchCost ten = evaluate_cim(spec, t);
  EXPECT_NEAR(one.total_time.value() / ten.total_time.value(), 10.0, 0.2);
  // Total energy is work-proportional, not parallelism-dependent.
  EXPECT_DOUBLE_EQ(one.total_energy.value(), ten.total_energy.value());
}

TEST_P(ParallelismSweep, PerOpMetricsIndependentOfUnits) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.parallel_units = GetParam();
  const ArchCost a = evaluate_conventional(spec, t);
  spec.parallel_units = GetParam() * 100.0;
  const ArchCost b = evaluate_conventional(spec, t);
  EXPECT_DOUBLE_EQ(a.energy_delay_per_op(), b.energy_delay_per_op());
  EXPECT_DOUBLE_EQ(a.computing_efficiency(), b.computing_efficiency());
}

INSTANTIATE_TEST_SUITE_P(Units, ParallelismSweep,
                         ::testing::Values(1.0, 10.0, 1e3),
                         [](const auto& tp_info) {
                           return "u" + std::to_string(static_cast<int>(
                                            tp_info.param));
                         });

TEST(CostModelProperty, MissPenaltyMonotone) {
  WorkloadSpec base_spec = math_workload_spec(paper_table1());
  double last_ed = 0.0;
  for (double penalty : {10.0, 50.0, 165.0, 400.0, 1000.0}) {
    Table1 t = paper_table1();
    t.cache_math.miss_penalty_cycles = penalty;
    const double ed =
        evaluate_conventional(base_spec, t).energy_delay_per_op();
    EXPECT_GT(ed, last_ed) << "penalty " << penalty;
    last_ed = ed;
  }
}

TEST(CostModelProperty, MoreReadsCostMore) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  const double base = evaluate_conventional(spec, t).energy_delay_per_op();
  spec.reads_per_op = 4.0;
  EXPECT_GT(evaluate_conventional(spec, t).energy_delay_per_op(), base);
  const double cim_base = evaluate_cim(math_workload_spec(t), t)
                              .energy_delay_per_op();
  EXPECT_GT(evaluate_cim(spec, t).energy_delay_per_op(), cim_base);
}

}  // namespace
}  // namespace memcim
