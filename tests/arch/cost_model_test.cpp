#include "arch/cost_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace memcim {
namespace {

// The math column of Table 2 is the ground truth this model was
// validated against: with Table 1's assumptions the paper's published
// numbers must come out to within a fraction of a percent.

TEST(CostModel, MathColumnTimePerOp) {
  const Table1 t = paper_table1();
  const WorkloadSpec spec = math_workload_spec(t);
  const ArchCost conv = evaluate_conventional(spec, t);
  // 2 reads · (0.98·1 + 0.02·165) cy + 1 write cy at 1 GHz + 252 ps CLA
  // = 2·4.28 + 1 + 0.252 = 9.812 ns.
  EXPECT_NEAR(conv.time_per_op.value(), 9.812e-9, 1e-12);
  const ArchCost cim = evaluate_cim(spec, t);
  // Same memory pattern + 133·200 ps TC-adder = 9.56 + 26.6 = 36.16 ns.
  EXPECT_NEAR(cim.time_per_op.value(), 36.16e-9, 1e-12);
}

TEST(CostModel, MathColumnMatchesPaperTable2) {
  const Table1 t = paper_table1();
  const WorkloadSpec spec = math_workload_spec(t);
  const ArchCost conv = evaluate_conventional(spec, t);
  const ArchCost cim = evaluate_cim(spec, t);
  // Paper: ED conv 1.5043e-18, CIM 9.2570e-21; efficiency conv
  // 6.5226e9, CIM 3.9063e12.  Our model adds the (small) gate dynamic
  // and leakage terms the paper neglects → tolerance 1 %.
  EXPECT_NEAR(conv.energy_delay_per_op(), 1.5043e-18, 1.5043e-18 * 0.01);
  // Exact value 256 fJ · 36.16 ns = 9.25696e-21; the paper prints the
  // rounded 9.2570e-21.
  EXPECT_NEAR(cim.energy_delay_per_op(), 9.2570e-21, 9.2570e-21 * 1e-4);
  EXPECT_NEAR(conv.computing_efficiency(), 6.5226e9, 6.5226e9 * 0.01);
  EXPECT_NEAR(cim.computing_efficiency(), 3.9063e12, 3.9063e12 * 1e-4);
}

TEST(CostModel, CimEnergyIsDynamicOnly) {
  const Table1 t = paper_table1();
  const ArchCost cim = evaluate_cim(math_workload_spec(t), t);
  EXPECT_DOUBLE_EQ(cim.energy_per_op.value(),
                   t.cim_adder.dynamic_energy.value());
}

TEST(CostModel, ConventionalEnergyDominatedByCacheStatic) {
  const Table1 t = paper_table1();
  const ArchCost conv = evaluate_conventional(math_workload_spec(t), t);
  const double cache_term =
      t.cache_math.static_power.value() * conv.time_per_op.value();
  EXPECT_GT(cache_term / conv.energy_per_op.value(), 0.99);
}

TEST(CostModel, DnaColumnOrdersOfMagnitudeImprovement) {
  const Table1 t = paper_table1();
  const WorkloadSpec spec = dna_workload_spec(t);
  const ArchCost conv = evaluate_conventional(spec, t);
  const ArchCost cim = evaluate_cim(spec, t);
  // The paper's qualitative claim: improvements are orders of magnitude.
  EXPECT_GT(conv.energy_delay_per_op() / cim.energy_delay_per_op(), 1e3);
  EXPECT_GT(cim.computing_efficiency() / conv.computing_efficiency(), 1e3);
}

TEST(CostModel, DnaWorkloadCountsMatchPaperFormulas) {
  // no_short_reads = 50·3e9/100 = 1.5e9; comparisons = 4·that = 6e9.
  EXPECT_DOUBLE_EQ(dna_comparison_count(50.0, 3e9, 100.0), 6e9);
  const Table1 t = paper_table1();
  EXPECT_DOUBLE_EQ(dna_workload_spec(t).operations, 6e9);
  EXPECT_DOUBLE_EQ(dna_workload_spec(t).parallel_units, 18750.0 * 32.0);
}

TEST(CostModel, HitRateDrivesConventionalCost) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  const double ed_98 =
      evaluate_conventional(spec, t).energy_delay_per_op();
  spec.hit_ratio = 0.5;
  const double ed_50 =
      evaluate_conventional(spec, t).energy_delay_per_op();
  EXPECT_GT(ed_50 / ed_98, 50.0);  // misses blow up both E and T
}

TEST(CostModel, TotalTimeScalesWithBatches) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  const ArchCost all_parallel = evaluate_cim(spec, t);
  EXPECT_DOUBLE_EQ(all_parallel.total_time.value(),
                   all_parallel.time_per_op.value());  // 1e6 units, 1 batch
  spec.parallel_units = 1e5;  // 10 batches
  const ArchCost batched = evaluate_cim(spec, t);
  EXPECT_NEAR(batched.total_time.value(),
              10.0 * batched.time_per_op.value(), 1e-15);
}

TEST(CostModel, AreasArePositiveAndCimIsSmaller) {
  const Table1 t = paper_table1();
  const WorkloadSpec spec = math_workload_spec(t);
  const ArchCost conv = evaluate_conventional(spec, t);
  const ArchCost cim = evaluate_cim(spec, t);
  EXPECT_GT(conv.total_area.value(), 0.0);
  EXPECT_GT(cim.total_area.value(), 0.0);
  // 10^6 CIM adders + crossbar storage still far below 31250 clusters
  // of CMOS (the paper's area story).
  EXPECT_LT(cim.total_area.value(), conv.total_area.value() / 100.0);
}

TEST(CostModel, InvalidSpecsThrow) {
  const Table1 t = paper_table1();
  WorkloadSpec spec = math_workload_spec(t);
  spec.operations = 0.0;
  EXPECT_THROW((void)evaluate_conventional(spec, t), Error);
  EXPECT_THROW((void)evaluate_cim(spec, t), Error);
  EXPECT_THROW((void)dna_comparison_count(0.0, 3e9, 100.0), Error);
}

TEST(CostModel, Table1Constants) {
  const Table1 t = paper_table1();
  EXPECT_NEAR(t.cla.latency(t.finfet).value(), 252e-12, 1e-15);
  EXPECT_NEAR(t.cim_adder.latency(t.memristor).value(), 26.6e-9, 1e-13);
  EXPECT_NEAR(t.cim_comparator.latency(t.memristor).value(), 3.2e-9, 1e-13);
  EXPECT_NEAR(t.cache_dna.read_cycles(), 83.0, 1e-12);
  EXPECT_NEAR(t.cache_math.read_cycles(), 4.28, 1e-12);
  EXPECT_EQ(t.cim_adder.memristors, 34u);
  EXPECT_EQ(t.cim_comparator.memristors, 13u);
}

}  // namespace
}  // namespace memcim
