#include "arch/cim_tile.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "device/presets.h"

namespace memcim {
namespace {

CimTileConfig small_tile() {
  CimTileConfig cfg;
  cfg.rows = 8;
  cfg.row_bits = 16;
  cfg.cell = presets::crs_cell();
  return cfg;
}

std::vector<bool> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (v >> i) & 1u;
  return bits;
}

TEST(CimTile, StoreLoadRoundTrip) {
  CimTile tile(small_tile());
  const auto word = bits_of(0xBEEF, 16);
  tile.store_row(3, word);
  EXPECT_EQ(tile.load_row(3), word);
}

TEST(CimTile, ParallelCompareFindsMatchingRows) {
  CimTile tile(small_tile());
  Rng rng(99);
  const auto key = bits_of(0x1234, 16);
  std::vector<std::size_t> expected_matches;
  for (std::size_t r = 0; r < 8; ++r) {
    if (r == 2 || r == 5) {
      tile.store_row(r, key);
      expected_matches.push_back(r);
    } else {
      auto other = key;
      other[static_cast<std::size_t>(rng.uniform_int(0, 15))].flip();
      tile.store_row(r, other);
    }
  }
  const std::vector<bool> matches = tile.parallel_compare(key);
  for (std::size_t r = 0; r < 8; ++r)
    EXPECT_EQ(matches[r], r == 2 || r == 5) << "row " << r;
}

TEST(CimTile, CompareLatencyIsOneRowPass) {
  CimTile tile(small_tile());
  const auto key = bits_of(0xFFFF, 16);
  for (std::size_t r = 0; r < 8; ++r) tile.store_row(r, key);
  (void)tile.parallel_compare(key);
  const CimTileStats s1 = tile.stats();
  // All 8 rows compared, but latency is a single row-comparator pass —
  // well under 8× the per-row program length.
  EXPECT_EQ(s1.operations, 8u);
  EXPECT_GT(s1.latency.value(), 0.0);
  // One 16-bit word-equality ≈ (15+16·16) steps · 200 ps < 80 ns.
  EXPECT_LT(s1.latency.value(), 200e-9);
  // Energy is the sum over rows: at least 8× one row's worth of writes.
  EXPECT_GT(s1.energy.value(), 8 * 16 * 1e-15);
}

TEST(CimTile, ParallelAddLaneWise) {
  CimTileConfig cfg = small_tile();
  cfg.row_bits = 32;  // 4 lanes of 8 bits
  CimTile tile(cfg);
  const std::uint64_t a = 0x01020304, b = 0x10FF4060;
  tile.store_row(0, bits_of(a, 32));
  tile.store_row(1, bits_of(b, 32));
  tile.parallel_add(0, 1, 2, 8);
  // Lane-wise byte addition without carry across lanes.
  const std::uint64_t expect = ((0x01 + 0x10) & 0xFF) << 24 |
                               ((0x02 + 0xFF) & 0xFF) << 16 |
                               ((0x03 + 0x40) & 0xFF) << 8 |
                               ((0x04 + 0x60) & 0xFF);
  EXPECT_EQ(tile.load_row(2), bits_of(expect, 32));
}

TEST(CimTile, AddStatsCountLanes) {
  CimTileConfig cfg = small_tile();
  cfg.row_bits = 64;
  CimTile tile(cfg);
  tile.store_row(0, bits_of(123456789, 64));
  tile.store_row(1, bits_of(987654321, 64));
  tile.parallel_add(0, 1, 2, 32);  // 2 lanes
  EXPECT_EQ(tile.stats().operations, 2u);
  // Latency = one 32-bit TC-adder pass (lanes in parallel) = 133·200 ps.
  EXPECT_NEAR(tile.stats().latency.value(), 26.6e-9, 1e-12);
}

TEST(CimTile, FullWidthAddMatchesIntegers) {
  CimTileConfig cfg = small_tile();
  cfg.row_bits = 32;
  CimTile tile(cfg);
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    tile.store_row(0, bits_of(a, 32));
    tile.store_row(1, bits_of(b, 32));
    tile.parallel_add(0, 1, 2, 32);
    EXPECT_EQ(tile.load_row(2), bits_of((a + b) & 0xFFFFFFFF, 32));
  }
}

TEST(CimTile, Validation) {
  CimTile tile(small_tile());
  EXPECT_THROW((void)tile.parallel_compare(bits_of(0, 8)), Error);  // width
  EXPECT_THROW(tile.parallel_add(0, 1, 2, 5), Error);  // 16 % 5 != 0
  EXPECT_THROW(tile.store_row(100, bits_of(0, 16)), Error);
  CimTileConfig bad;
  bad.rows = 0;
  EXPECT_THROW(CimTile{bad}, Error);
}

}  // namespace
}  // namespace memcim
