#include "arch/cim_machine.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

CimMachineConfig machine_cfg() {
  CimMachineConfig cfg;
  cfg.tiles = 4;
  cfg.tile.rows = 8;
  cfg.tile.row_bits = 16;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

std::vector<bool> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (v >> i) & 1u;
  return bits;
}

TEST(CimMachine, GlobalRowAddressingAcrossTiles) {
  CimMachine m(machine_cfg());
  EXPECT_EQ(m.capacity_rows(), 32u);
  m.store(0, bits_of(0x1111, 16));
  m.store(9, bits_of(0x2222, 16));   // tile 1, row 1
  m.store(31, bits_of(0x3333, 16));  // tile 3, row 7
  EXPECT_EQ(m.load(0), bits_of(0x1111, 16));
  EXPECT_EQ(m.load(9), bits_of(0x2222, 16));
  EXPECT_EQ(m.load(31), bits_of(0x3333, 16));
  EXPECT_THROW(m.store(32, bits_of(0, 16)), Error);
}

TEST(CimMachine, SearchSpansAllTiles) {
  CimMachine m(machine_cfg());
  const auto key = bits_of(0xBEEF, 16);
  for (std::size_t r = 0; r < 32; ++r)
    m.store(r, r == 5 || r == 20 ? key : bits_of(r * 2654435761u, 16));
  const auto matches = m.search(key);
  EXPECT_EQ(matches, (std::vector<std::size_t>{5, 20}));
}

TEST(CimMachine, SearchLatencyIsOneWavePlusDispatch) {
  CimMachineConfig one = machine_cfg();
  one.tiles = 1;
  CimMachineConfig four = machine_cfg();
  four.tiles = 4;
  CimMachine m1(one), m4(four);
  const auto key = bits_of(0xAAAA, 16);
  for (std::size_t r = 0; r < m1.capacity_rows(); ++r)
    m1.store(r, bits_of(r, 16));
  for (std::size_t r = 0; r < m4.capacity_rows(); ++r)
    m4.store(r, bits_of(r, 16));
  (void)m1.search(key);
  (void)m4.search(key);
  // Tiles search concurrently: 4 tiles cost the same wave latency.
  EXPECT_NEAR(m1.stats().latency.value(), m4.stats().latency.value(), 1e-15);
  // Energy scales with the searched capacity.
  EXPECT_GT(m4.energy().value(), 3.0 * m1.energy().value());
}

TEST(CimMachine, AddRowsWithinTile) {
  CimMachine m(machine_cfg());
  m.store(0, bits_of(1000, 16));
  m.store(1, bits_of(2345, 16));
  m.add_rows(0, 1, 2, 16);
  EXPECT_EQ(m.load(2), bits_of(3345, 16));
  EXPECT_EQ(m.stats().waves, 1u);
}

TEST(CimMachine, CrossTileAddRejected) {
  CimMachine m(machine_cfg());
  m.store(0, bits_of(1, 16));
  m.store(8, bits_of(2, 16));  // different tile
  EXPECT_THROW(m.add_rows(0, 8, 2, 16), Error);
}

TEST(CimMachine, StatsAccumulateAcrossWaves) {
  CimMachine m(machine_cfg());
  for (std::size_t r = 0; r < 32; ++r) m.store(r, bits_of(r, 16));
  (void)m.search(bits_of(3, 16));
  (void)m.search(bits_of(7, 16));
  EXPECT_EQ(m.stats().waves, 2u);
  EXPECT_EQ(m.stats().operations, 64u);  // 32 rows compared per wave
  EXPECT_GT(m.energy().value(), 0.0);
}

// The accounting contract: machine energy is exactly the sum of the
// live per-tile books plus accumulated dispatch overhead — bitwise, not
// approximately — even when machine waves interleave with direct
// tile(i) operations (which the old delta-accumulation scheme would
// have double counted or missed).
TEST(CimMachine, EnergyReconcilesWithTileBooks) {
  CimMachine m(machine_cfg());
  for (std::size_t r = 0; r < 32; ++r) m.store(r, bits_of(r * 7919u, 16));
  (void)m.search(bits_of(0x0F0F, 16));
  m.add_rows(0, 1, 2, 16);
  // Bypass the machine: drive one tile directly between waves.
  (void)m.tile(2).parallel_compare(bits_of(0x5555, 16));
  (void)m.search(bits_of(0x3C3C, 16));

  Energy tiles{0.0};
  for (std::size_t ti = 0; ti < m.config().tiles; ++ti)
    tiles += m.tile(ti).stats().energy;
  EXPECT_EQ(m.tile_energy().value(), tiles.value());
  const double dispatch = 3.0 * m.config().dispatch_energy.value();
  EXPECT_DOUBLE_EQ(m.dispatch_energy().value(), dispatch);
  EXPECT_EQ(m.energy().value(),
            (m.tile_energy() + m.dispatch_energy()).value());
}

}  // namespace
}  // namespace memcim
