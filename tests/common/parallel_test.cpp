#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace memcim {
namespace {

/// Restores the default pool size when a test exits.
struct PoolGuard {
  ~PoolGuard() { set_parallel_threads(0); }
};

TEST(Parallel, EveryIndexVisitedExactlyOnce) {
  PoolGuard guard;
  set_parallel_threads(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(0, n, 1, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(Parallel, ChunksPartitionTheRange) {
  PoolGuard guard;
  set_parallel_threads(3);
  const std::size_t n = 5000;
  std::vector<int> marks(n, 0);
  parallel_for_chunks(0, n, 64, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) ++marks[i];
  });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0),
            static_cast<int>(n));
}

TEST(Parallel, EmptyAndTinyRanges) {
  PoolGuard guard;
  set_parallel_threads(4);
  bool ran = false;
  parallel_for_chunks(5, 5, 1, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  // A range below 2·grain runs inline on the caller.
  std::vector<int> v(10, 0);
  parallel_for(0, 10, 1024, [&](std::size_t i) { v[i] = 1; });
  EXPECT_EQ(std::accumulate(v.begin(), v.end(), 0), 10);
}

TEST(Parallel, NestedParallelForRunsSerially) {
  PoolGuard guard;
  set_parallel_threads(4);
  const std::size_t outer = 64, inner = 64;
  std::vector<int> cells(outer * inner, 0);
  parallel_for(0, outer, 1, [&](std::size_t i) {
    // Nested call must not deadlock; it runs inline on this worker.
    parallel_for(0, inner, 1,
                 [&, i](std::size_t j) { cells[i * inner + j] = 1; });
  });
  EXPECT_EQ(std::accumulate(cells.begin(), cells.end(), 0),
            static_cast<int>(outer * inner));
}

TEST(Parallel, SetThreadsIsObserved) {
  PoolGuard guard;
  set_parallel_threads(2);
  EXPECT_EQ(parallel_threads(), 2u);
  set_parallel_threads(5);
  EXPECT_EQ(parallel_threads(), 5u);
  set_parallel_threads(1);
  EXPECT_EQ(parallel_threads(), 1u);
}

TEST(Parallel, DisjointWritesAreThreadCountInvariant) {
  PoolGuard guard;
  const std::size_t n = 4096;
  const auto compute = [n] {
    std::vector<double> out(n);
    parallel_for(0, n, 16, [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 1; k <= 50; ++k)
        acc += 1.0 / static_cast<double>(i * 50 + k);
      out[i] = acc;
    });
    return out;
  };
  set_parallel_threads(1);
  const auto serial = compute();
  set_parallel_threads(7);
  const auto threaded = compute();
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], threaded[i]);
}

}  // namespace
}  // namespace memcim
