#include "common/sparse.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace memcim {
namespace {

TEST(Sparse, DuplicateTripletsAreSummed) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 0, 2.5);
  a.add(1, 1, 4.0);
  a.finalize();
  EXPECT_EQ(a.nonzeros(), 2u);
  const auto d = a.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 3.5);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
}

TEST(Sparse, MultiplyMatchesDense) {
  Rng rng(11);
  const std::size_t n = 20;
  SparseMatrix s(n, n);
  for (int k = 0; k < 80; ++k) {
    const auto r = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    s.add(r, c, rng.uniform(-2.0, 2.0));
  }
  s.finalize();
  const Matrix d = s.to_dense();
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto ys = s.multiply(x);
  const auto yd = d.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Sparse, EmptyRowsHandled) {
  SparseMatrix a(3, 3);
  a.add(0, 0, 2.0);
  a.add(2, 2, 5.0);
  a.finalize();
  const auto y = a.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(Sparse, RequiresFinalizeBeforeUse) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  EXPECT_THROW((void)a.multiply({1.0, 1.0}), Error);
  EXPECT_THROW((void)a.nonzeros(), Error);
}

TEST(Sparse, OutOfRangeAddThrows) {
  SparseMatrix a(2, 2);
  EXPECT_THROW(a.add(2, 0, 1.0), Error);
  EXPECT_THROW(a.add(0, 5, 1.0), Error);
}

// Build the graph Laplacian of a path with both ends tied to ground —
// SPD, and structurally identical to crossbar nodal matrices.
SparseMatrix grounded_path_laplacian(std::size_t n, double g) {
  SparseMatrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a.add(i, i, g);
    a.add(i + 1, i + 1, g);
    a.add(i, i + 1, -g);
    a.add(i + 1, i, -g);
  }
  a.add(0, 0, g);          // tie to ground
  a.add(n - 1, n - 1, g);  // tie to ground
  a.finalize();
  return a;
}

TEST(Sparse, CgMatchesLuOnSpdSystem) {
  const std::size_t n = 50;
  const auto a = grounded_path_laplacian(n, 1e-3);
  std::vector<double> b(n, 0.0);
  b[0] = 1e-3;  // inject current at node 0
  const auto x_lu = solve_dense(a.to_dense(), b);
  const auto cg = conjugate_gradient(a, b);
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(cg.x[i], x_lu[i], 1e-6);
}

TEST(Sparse, CgZeroRhsIsZeroSolution) {
  const auto a = grounded_path_laplacian(10, 1.0);
  const auto cg = conjugate_gradient(a, std::vector<double>(10, 0.0));
  EXPECT_TRUE(cg.converged);
  EXPECT_EQ(cg.iterations, 0u);
  for (double v : cg.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Sparse, CgIterationCapRespected) {
  const auto a = grounded_path_laplacian(100, 1.0);
  std::vector<double> b(100, 1.0);
  CgOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 1e-15;
  const auto cg = conjugate_gradient(a, b, opts);
  EXPECT_FALSE(cg.converged);
  EXPECT_EQ(cg.iterations, 2u);
  EXPECT_GT(cg.residual_norm, 0.0);
}

// Numeric-refresh protocol: assemble the pattern once, then rewrite
// values in place.  The refresh must reproduce a from-scratch assembly
// bit for bit when the per-slot accumulation order matches.
TEST(Sparse, NumericRefreshIsBitwiseIdenticalToFreshAssembly) {
  // Awkward values whose sums depend on rounding order — if refresh
  // accumulated in a different order than assembly, bits would differ.
  const double c0 = 1.0 / 3.0, c1 = 1e-17, ga = 0.1, gb = 2.0 / 7.0;

  // Fresh assembly: constants first, then "junction" stamps.
  SparseMatrix fresh(3, 3);
  fresh.add(0, 0, c0);
  fresh.add(2, 2, c1);
  fresh.add(0, 0, ga);
  fresh.add(0, 1, -ga);
  fresh.add(1, 0, -ga);
  fresh.add(1, 1, ga);
  fresh.add(1, 1, gb);
  fresh.add(2, 2, gb);
  fresh.finalize();

  // Structure-reuse path: same pattern with junction stamps structural
  // (zero), then a numeric refresh per "sweep".
  SparseMatrix reused(3, 3);
  reused.add(0, 0, c0);
  reused.add(2, 2, c1);
  reused.add(0, 0, 0.0);
  reused.add(0, 1, 0.0);
  reused.add(1, 0, 0.0);
  reused.add(1, 1, 0.0);
  reused.add(1, 1, 0.0);
  reused.add(2, 2, 0.0);
  reused.finalize();
  const std::vector<double> base = reused.values();

  for (int sweep = 0; sweep < 3; ++sweep) {
    reused.begin_update(base);
    reused.add_to(0, 0, ga);
    reused.add_to(0, 1, -ga);
    reused.add_to(1, 0, -ga);
    reused.add_to(1, 1, ga);
    reused.add_to(1, 1, gb);
    reused.add_to(2, 2, gb);
    ASSERT_EQ(fresh.nonzeros(), reused.nonzeros());
    const auto& vf = fresh.values();
    const auto& vr = reused.values();
    for (std::size_t s = 0; s < vf.size(); ++s)
      EXPECT_EQ(vf[s], vr[s]) << "slot " << s << " sweep " << sweep;
  }
}

TEST(Sparse, SlotResolutionAndIndexedRefresh) {
  SparseMatrix a(2, 3);
  a.add(0, 2, 1.0);
  a.add(1, 0, 2.0);
  a.add(1, 1, 3.0);
  a.finalize();
  const std::size_t s02 = a.slot(0, 2);
  const std::size_t s11 = a.slot(1, 1);
  a.set_slot(s02, 5.0);
  a.add_slot(s11, -1.0);
  EXPECT_DOUBLE_EQ(a.to_dense()(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.to_dense()(1, 1), 2.0);
  // set()/add_to() hit the same slots by coordinate.
  a.set(0, 2, 7.0);
  a.add_to(1, 0, 0.5);
  EXPECT_DOUBLE_EQ(a.values()[s02], 7.0);
  EXPECT_DOUBLE_EQ(a.to_dense()(1, 0), 2.5);
}

TEST(Sparse, RefreshApiErrors) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  EXPECT_THROW(a.begin_update(), Error);      // not finalized yet
  EXPECT_THROW((void)a.slot(0, 0), Error);
  a.finalize();
  EXPECT_THROW((void)a.slot(0, 1), Error);    // not a structural nonzero
  EXPECT_THROW(a.set(1, 0, 1.0), Error);
  EXPECT_THROW(a.add_slot(99, 1.0), Error);
  EXPECT_THROW(a.begin_update({1.0, 2.0}), Error);  // base size mismatch
  a.begin_update();
  EXPECT_DOUBLE_EQ(a.values()[0], 0.0);
}

TEST(Sparse, RefreshedMatrixMultipliesCorrectly) {
  const auto a_fresh = grounded_path_laplacian(30, 2.0);
  SparseMatrix a(30, 30);
  // Same structure, garbage values.
  for (std::size_t i = 0; i + 1 < 30; ++i) {
    a.add(i, i, 9.0);
    a.add(i + 1, i + 1, 9.0);
    a.add(i, i + 1, 9.0);
    a.add(i + 1, i, 9.0);
  }
  a.add(0, 0, 9.0);
  a.add(29, 29, 9.0);
  a.finalize();
  // Refresh to the Laplacian values.
  a.begin_update();
  for (std::size_t i = 0; i + 1 < 30; ++i) {
    a.add_to(i, i, 2.0);
    a.add_to(i + 1, i + 1, 2.0);
    a.add_to(i, i + 1, -2.0);
    a.add_to(i + 1, i, -2.0);
  }
  a.add_to(0, 0, 2.0);
  a.add_to(29, 29, 2.0);
  std::vector<double> x(30);
  for (std::size_t i = 0; i < 30; ++i)
    x[i] = 0.1 * static_cast<double>(i) - 1.0;
  const auto y_fresh = a_fresh.multiply(x);
  const auto y_refreshed = a.multiply(x);
  for (std::size_t i = 0; i < 30; ++i)
    EXPECT_DOUBLE_EQ(y_fresh[i], y_refreshed[i]);
}

TEST(Sparse, CgWarmStartFromExactSolutionConvergesInstantly) {
  const std::size_t n = 200;
  const auto a = grounded_path_laplacian(n, 1e-3);
  std::vector<double> b(n, 0.0);
  b[0] = 1e-3;
  const auto cold = conjugate_gradient(a, b);
  ASSERT_TRUE(cold.converged);
  EXPECT_GT(cold.iterations, 0u);
  CgOptions warm_opts;
  warm_opts.x0 = cold.x;
  const auto warm = conjugate_gradient(a, b, warm_opts);
  EXPECT_TRUE(warm.converged);
  // Seeded with the answer: no iterations (or at most a touch-up).
  EXPECT_LE(warm.iterations, 2u);
}

TEST(Sparse, CgWarmStartSizeMismatchThrows) {
  const auto a = grounded_path_laplacian(10, 1.0);
  CgOptions opts;
  opts.x0.assign(7, 0.0);
  EXPECT_THROW((void)conjugate_gradient(a, std::vector<double>(10, 1.0), opts),
               Error);
}

TEST(Sparse, CgScalesToLargerSystems) {
  const std::size_t n = 2000;
  const auto a = grounded_path_laplacian(n, 5e-4);
  std::vector<double> b(n, 0.0);
  b[n / 2] = 1e-3;
  const auto cg = conjugate_gradient(a, b);
  EXPECT_TRUE(cg.converged);
  // Residual check: ‖b − A·x‖ small relative to ‖b‖.
  const auto ax = a.multiply(cg.x);
  double r2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) r2 += (b[i] - ax[i]) * (b[i] - ax[i]);
  EXPECT_LT(std::sqrt(r2), 1e-10);
}

}  // namespace
}  // namespace memcim
