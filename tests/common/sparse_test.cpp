#include "common/sparse.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace memcim {
namespace {

TEST(Sparse, DuplicateTripletsAreSummed) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 0, 2.5);
  a.add(1, 1, 4.0);
  a.finalize();
  EXPECT_EQ(a.nonzeros(), 2u);
  const auto d = a.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 3.5);
  EXPECT_DOUBLE_EQ(d[1], 4.0);
}

TEST(Sparse, MultiplyMatchesDense) {
  Rng rng(11);
  const std::size_t n = 20;
  SparseMatrix s(n, n);
  for (int k = 0; k < 80; ++k) {
    const auto r = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    s.add(r, c, rng.uniform(-2.0, 2.0));
  }
  s.finalize();
  const Matrix d = s.to_dense();
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  const auto ys = s.multiply(x);
  const auto yd = d.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Sparse, EmptyRowsHandled) {
  SparseMatrix a(3, 3);
  a.add(0, 0, 2.0);
  a.add(2, 2, 5.0);
  a.finalize();
  const auto y = a.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(Sparse, RequiresFinalizeBeforeUse) {
  SparseMatrix a(2, 2);
  a.add(0, 0, 1.0);
  EXPECT_THROW((void)a.multiply({1.0, 1.0}), Error);
  EXPECT_THROW((void)a.nonzeros(), Error);
}

TEST(Sparse, OutOfRangeAddThrows) {
  SparseMatrix a(2, 2);
  EXPECT_THROW(a.add(2, 0, 1.0), Error);
  EXPECT_THROW(a.add(0, 5, 1.0), Error);
}

// Build the graph Laplacian of a path with both ends tied to ground —
// SPD, and structurally identical to crossbar nodal matrices.
SparseMatrix grounded_path_laplacian(std::size_t n, double g) {
  SparseMatrix a(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    a.add(i, i, g);
    a.add(i + 1, i + 1, g);
    a.add(i, i + 1, -g);
    a.add(i + 1, i, -g);
  }
  a.add(0, 0, g);          // tie to ground
  a.add(n - 1, n - 1, g);  // tie to ground
  a.finalize();
  return a;
}

TEST(Sparse, CgMatchesLuOnSpdSystem) {
  const std::size_t n = 50;
  const auto a = grounded_path_laplacian(n, 1e-3);
  std::vector<double> b(n, 0.0);
  b[0] = 1e-3;  // inject current at node 0
  const auto x_lu = solve_dense(a.to_dense(), b);
  const auto cg = conjugate_gradient(a, b);
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(cg.x[i], x_lu[i], 1e-6);
}

TEST(Sparse, CgZeroRhsIsZeroSolution) {
  const auto a = grounded_path_laplacian(10, 1.0);
  const auto cg = conjugate_gradient(a, std::vector<double>(10, 0.0));
  EXPECT_TRUE(cg.converged);
  EXPECT_EQ(cg.iterations, 0u);
  for (double v : cg.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Sparse, CgIterationCapRespected) {
  const auto a = grounded_path_laplacian(100, 1.0);
  std::vector<double> b(100, 1.0);
  CgOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 1e-15;
  const auto cg = conjugate_gradient(a, b, opts);
  EXPECT_FALSE(cg.converged);
  EXPECT_EQ(cg.iterations, 2u);
  EXPECT_GT(cg.residual_norm, 0.0);
}

TEST(Sparse, CgScalesToLargerSystems) {
  const std::size_t n = 2000;
  const auto a = grounded_path_laplacian(n, 5e-4);
  std::vector<double> b(n, 0.0);
  b[n / 2] = 1e-3;
  const auto cg = conjugate_gradient(a, b);
  EXPECT_TRUE(cg.converged);
  // Residual check: ‖b − A·x‖ small relative to ‖b‖.
  const auto ax = a.multiply(cg.x);
  double r2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) r2 += (b[i] - ax[i]) * (b[i] - ax[i]);
  EXPECT_LT(std::sqrt(r2), 1e-10);
}

}  // namespace
}  // namespace memcim
