#include "common/matrix.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace memcim {
namespace {

TEST(Matrix, IdentitySolveReturnsRhs) {
  const auto eye = Matrix::identity(4);
  const std::vector<double> b{1.0, -2.0, 3.5, 0.0};
  EXPECT_EQ(solve_dense(eye, b), b);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const auto y = a.multiply({1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, SolveKnownSystem) {
  // 2x + y = 5;  x + 3y = 10  →  x = 1, y = 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SolveRequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const auto x = solve_dense(a, {2.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Matrix, RandomRoundTrip) {
  Rng rng(7);
  const std::size_t n = 30;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1.0, 1.0);
    a(r, r) += n;  // diagonally dominant → well-conditioned
  }
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-10.0, 10.0);
  const auto b = a.multiply(x_true);
  const auto x = solve_dense(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Matrix, SingularThrows) {
  Matrix a(2, 2);  // rank 1
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, Error);
}

TEST(Matrix, DeterminantWithPivotSign) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  EXPECT_NEAR(LuFactorization{a}.determinant(), -1.0, 1e-12);
  EXPECT_NEAR(LuFactorization{Matrix::identity(5)}.determinant(), 1.0, 1e-12);
}

TEST(Matrix, SizeMismatchChecks) {
  Matrix a(2, 2, 1.0);
  EXPECT_THROW((void)a.multiply({1.0}), Error);
  EXPECT_THROW((void)solve_dense(a, {1.0, 2.0, 3.0}), Error);
  EXPECT_THROW(LuFactorization{Matrix(2, 3)}, Error);
}

TEST(Matrix, MaxAbs) {
  Matrix a(2, 2);
  a(0, 1) = -9.0;
  a(1, 1) = 3.0;
  EXPECT_DOUBLE_EQ(a.max_abs(), 9.0);
}

}  // namespace
}  // namespace memcim
