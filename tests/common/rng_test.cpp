#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace memcim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveAndCoversRange) {
  Rng rng(4);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 4000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng rng(6);
  EXPECT_DOUBLE_EQ(rng.normal(7.0, 0.0), 7.0);
}

TEST(Rng, LognormalMedianProperty) {
  Rng rng(7);
  const int n = 20001;
  std::vector<double> samples(n);
  for (auto& s : samples) s = rng.lognormal_median(10e3, 0.3);
  std::sort(samples.begin(), samples.end());
  // Median of lognormal_median(m, σ) is m.
  EXPECT_NEAR(samples[n / 2], 10e3, 500.0);
  for (double s : samples) EXPECT_GT(s, 0.0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.25)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, ForkProducesDecorrelatedStream) {
  Rng parent(9);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.uniform() == child.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(10);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), Error);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), Error);
  EXPECT_THROW((void)rng.lognormal_median(-1.0, 0.1), Error);
  EXPECT_THROW((void)rng.bernoulli(1.5), Error);
}

}  // namespace
}  // namespace memcim
