#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace memcim {
namespace {

TEST(Table, AlignsColumnsAndAddsRule) {
  TextTable t({"Metric", "Value"});
  t.add_row({"energy", "1.5"});
  t.add_row({"delay-per-operation", "2"});
  const std::string text = t.to_text();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("Metric"), std::string::npos);
  EXPECT_NE(text.find("-------"), std::string::npos);
  // All lines equally wide (aligned columns).
  std::size_t first_nl = text.find('\n');
  std::size_t second_nl = text.find('\n', first_nl + 1);
  EXPECT_EQ(first_nl, second_nl - first_nl - 1);
}

TEST(Table, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(Table, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 10), "name,note\n");
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(TextTable{std::vector<std::string>{}}, Error);
}

}  // namespace
}  // namespace memcim
