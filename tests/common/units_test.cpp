#include "common/units.h"

#include <gtest/gtest.h>

#include "common/table.h"

namespace memcim {
namespace {

using namespace memcim::literals;

TEST(Units, LiteralsScaleToBaseSi) {
  EXPECT_DOUBLE_EQ((200.0_ps).value(), 200e-12);
  EXPECT_DOUBLE_EQ((1.0_fJ).value(), 1e-15);
  EXPECT_DOUBLE_EQ((175.0_nW).value(), 175e-9);
  EXPECT_DOUBLE_EQ((10.0_kohm).value(), 1e4);
  EXPECT_DOUBLE_EQ((1.0_GHz).value(), 1e9);
  EXPECT_DOUBLE_EQ((0.248_um2).value(), 0.248e-12);
  EXPECT_DOUBLE_EQ((5.0_nm).value(), 5e-9);
}

TEST(Units, OhmsLawRoundTrip) {
  const Voltage v = 2.0_V;
  const Resistance r = 10.0_kohm;
  const Current i = v / r;
  EXPECT_DOUBLE_EQ(i.value(), 2e-4);
  EXPECT_DOUBLE_EQ((i * r).value(), v.value());
  const Conductance g = 1.0 / r;
  EXPECT_DOUBLE_EQ((g * v).value(), i.value());
}

TEST(Units, PowerEnergyAlgebra) {
  const Power p = 2.0_V * 1.0_mA;           // 2 mW
  const Energy e = p * 1.0_ns;              // 2 pJ
  EXPECT_DOUBLE_EQ(p.value(), 2e-3);
  EXPECT_DOUBLE_EQ(e.value(), 2e-12);
  const EnergyDelay edp = e * 1.0_ns;
  EXPECT_DOUBLE_EQ(edp.value(), 2e-21);
}

TEST(Units, SameDimensionRatioIsScalarDouble) {
  const double ratio = 1.0_us / 1.0_ns;
  EXPECT_DOUBLE_EQ(ratio, 1000.0);
}

TEST(Units, FrequencyPeriodInverse) {
  const Frequency f = 1.0_GHz;
  const Time period = 1.0 / f;
  EXPECT_DOUBLE_EQ(period.value(), 1e-9);
}

TEST(Units, ComparisonAndArithmetic) {
  EXPECT_LT(1.0_ns, 1.0_us);
  EXPECT_EQ(1.0_ns + 1.0_ns, 2.0_ns);
  EXPECT_EQ(-(1.0_V), Voltage(-1.0));
  Time t = 1.0_ns;
  t += 1.0_ns;
  t *= 2.0;
  EXPECT_DOUBLE_EQ(t.value(), 4e-9);
  EXPECT_DOUBLE_EQ(abs(Voltage(-3.0)).value(), 3.0);
}

TEST(Units, SiStringPicksEngineeringPrefix) {
  EXPECT_EQ(si_string(2.5e-9, "s"), "2.5 ns");
  EXPECT_EQ(si_string(1.5e4, "ohm"), "15 kohm");
  EXPECT_EQ(si_string(0.0, "J"), "0 J");
  EXPECT_EQ(si_string(1e-15, "J"), "1 fJ");
}

TEST(Units, SciAndFixedStrings) {
  EXPECT_EQ(sci_string(2.0210e-6), "2.0210e-06");
  EXPECT_EQ(fixed_string(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace memcim
