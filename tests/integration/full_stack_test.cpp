// Integration tests crossing module boundaries: device models under
// circuit solves under logic programs under architecture bookkeeping.
#include <gtest/gtest.h>

#include "arch/cim_machine.h"
#include "arch/cim_tile.h"
#include "arch/cost_model.h"
#include "crossbar/crs_memory.h"
#include "crossbar/readout.h"
#include "device/presets.h"
#include "device/vcm.h"
#include "logic/cam.h"
#include "logic/lut.h"
#include "logic/interconnect.h"
#include "logic/tc_adder.h"
#include "workloads/dna.h"

namespace memcim {
namespace {

std::vector<bool> encode_nucleotides(const std::string& s, std::size_t from,
                                     std::size_t count) {
  std::vector<bool> bits;
  bits.reserve(count * 2);
  for (std::size_t i = 0; i < count; ++i) {
    const auto n = static_cast<std::uint8_t>(nucleotide_from_char(s[from + i]));
    bits.push_back(n & 1u);
    bits.push_back(n & 2u);
  }
  return bits;
}

// DNA matching: the CIM tile's parallel comparators and the CAM must
// agree with direct string comparison on reference windows.
TEST(Integration, DnaWindowMatchingAcrossThreeEngines) {
  Rng rng(101);
  const std::string genome = generate_genome(2000, rng);
  const std::size_t window = 12;
  const std::size_t n_windows = 24;
  const std::size_t base = 500;

  CimTileConfig tile_cfg;
  tile_cfg.rows = n_windows;
  tile_cfg.row_bits = window * 2;
  tile_cfg.cell = presets::crs_cell();
  CimTile tile(tile_cfg);

  CamConfig cam_cfg;
  cam_cfg.rows = n_windows;
  cam_cfg.word_bits = window * 2;
  cam_cfg.cell = presets::crs_cell();
  CrsCam cam(cam_cfg);

  for (std::size_t w = 0; w < n_windows; ++w) {
    const auto bits = encode_nucleotides(genome, base + w, window);
    tile.store_row(w, bits);
    cam.write_row(w, bits);
  }

  for (std::size_t probe = 0; probe < n_windows; probe += 5) {
    const auto key = encode_nucleotides(genome, base + probe, window);
    const std::vector<bool> tile_matches = tile.parallel_compare(key);
    const CamSearchResult cam_matches = cam.search(key);
    for (std::size_t w = 0; w < n_windows; ++w) {
      const bool direct =
          genome.compare(base + w, window, genome, base + probe, window) == 0;
      EXPECT_EQ(tile_matches[w], direct) << "tile row " << w;
      const bool in_cam =
          std::find(cam_matches.matching_rows.begin(),
                    cam_matches.matching_rows.end(),
                    w) != cam_matches.matching_rows.end();
      EXPECT_EQ(in_cam, direct) << "cam row " << w;
    }
  }
}

// Numbers written through the crossbar write path, read back through the
// sense path, added on the TC-adder, and stored into CRS memory.
TEST(Integration, CrossbarToAdderToMemoryPipeline) {
  const std::size_t bits = 8;
  CrossbarConfig cfg;
  cfg.rows = 2;
  cfg.cols = bits;
  CrossbarArray xbar(cfg, VcmDevice(presets::vcm_taox(), 0.0));
  WriteConfig wc;
  wc.v_write = presets::vcm_taox().v_write;
  wc.pulse = presets::vcm_taox().t_switch;
  wc.scheme = BiasScheme::kVHalf;
  const std::uint64_t a = 173, b = 58;
  for (std::size_t i = 0; i < bits; ++i) {
    ASSERT_TRUE(write_bit(xbar, 0, i, (a >> i) & 1u, wc).success);
    ASSERT_TRUE(write_bit(xbar, 1, i, (b >> i) & 1u, wc).success);
  }

  // Sense with a reference measured on a scratch array of the same shape.
  ReadConfig rc;
  rc.scheme = BiasScheme::kGrounded;
  CrossbarArray scratch(cfg, VcmDevice(presets::vcm_taox(), 0.0));
  const ReadMeasurement ref = measure_read_margin(scratch, 0, 0, rc);
  std::uint64_t a_read = 0, b_read = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    if (read_bit(xbar, 0, i, rc, ref)) a_read |= 1u << i;
    if (read_bit(xbar, 1, i, rc, ref)) b_read |= 1u << i;
  }
  ASSERT_EQ(a_read, a);
  ASSERT_EQ(b_read, b);

  CrsTcAdder adder(bits, presets::crs_cell());
  const TcAdderResult sum = adder.add(a_read, b_read);
  EXPECT_EQ(sum.sum, (a + b) & 0xFFu);

  CrsMemory result_store(1, bits, presets::crs_cell());
  std::vector<bool> sum_bits(bits);
  for (std::size_t i = 0; i < bits; ++i) sum_bits[i] = (sum.sum >> i) & 1u;
  result_store.write_word(0, sum_bits);
  EXPECT_EQ(result_store.read_word(0), sum_bits);
}

// A PLA and a LUT programmed with the same function agree on every
// input — two independent memristive logic substrates cross-checked.
TEST(Integration, PlaAndLutAgreeOnArbitraryFunctions) {
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    // Random 3-input truth table.
    std::vector<bool> truth(8);
    for (auto&& bit : truth) bit = rng.bernoulli(0.5);

    CrsLut lut(3, 1, presets::crs_cell());
    lut.program(0, [&](std::uint64_t m) { return truth[m]; });

    // PLA: one product per true minterm.
    const auto n_true = static_cast<std::size_t>(
        std::count(truth.begin(), truth.end(), true));
    ResistivePla pla(3, std::max<std::size_t>(n_true, 1), 1,
                     presets::crs_cell());
    std::size_t term = 0;
    for (std::uint64_t m = 0; m < 8; ++m) {
      if (!truth[m]) continue;
      std::vector<PlaLiteral> lits;
      for (std::size_t v = 0; v < 3; ++v)
        lits.push_back({v, ((m >> v) & 1u) != 0});
      pla.program_product(term, lits);
      pla.attach_product(term, 0);
      ++term;
    }

    for (std::uint64_t m = 0; m < 8; ++m) {
      const std::vector<bool> in{bool(m & 1), bool(m & 2), bool(m & 4)};
      const bool expected = truth[m];
      EXPECT_EQ(lut.evaluate_single(m), expected) << "trial " << trial;
      if (n_true > 0) {
        EXPECT_EQ(pla.evaluate(in)[0], expected) << "trial " << trial;
      }
    }
  }
}

// Functional workload measurements feed the analytical model: using the
// *observed* comparison count from the scaled pipeline instead of the
// paper's closed form changes the metrics' magnitude but never the
// CIM-vs-conventional ordering.
TEST(Integration, MeasuredWorkloadKeepsTable2Ordering) {
  Rng rng(55);
  const std::string genome = generate_genome(20'000, rng);
  ReadSetParams params;
  params.coverage = 2.0;
  params.read_length = 50;
  const auto reads = generate_reads(genome, params, rng);
  const MatchStats stats = match_reads(genome, reads, 16);
  ASSERT_GT(stats.paper_comparisons(), 0u);

  const Table1 t = paper_table1();
  WorkloadSpec spec = dna_workload_spec(t);
  spec.operations = static_cast<double>(stats.paper_comparisons());
  spec.parallel_units = 64.0;  // small machine
  const ArchCost conv = evaluate_conventional(spec, t);
  const ArchCost cim = evaluate_cim(spec, t);
  EXPECT_GT(conv.energy_delay_per_op() / cim.energy_delay_per_op(), 1e3);
  EXPECT_GT(cim.computing_efficiency() / conv.computing_efficiency(), 1e3);
  EXPECT_GT(conv.total_energy.value(), cim.total_energy.value());
}

// The multi-tile machine equals per-tile results composed by hand.
TEST(Integration, MachineSearchEqualsManualTileSearches) {
  CimMachineConfig mc;
  mc.tiles = 3;
  mc.tile.rows = 4;
  mc.tile.row_bits = 8;
  mc.tile.cell = presets::crs_cell();
  CimMachine machine(mc);

  std::vector<CimTile> manual;
  for (std::size_t i = 0; i < 3; ++i) manual.emplace_back(mc.tile);

  Rng rng(31);
  std::vector<std::vector<bool>> words;
  for (std::size_t r = 0; r < 12; ++r) {
    std::vector<bool> w(8);
    for (auto&& bit : w) bit = rng.bernoulli(0.5);
    words.push_back(w);
    machine.store(r, w);
    manual[r / 4].store_row(r % 4, w);
  }
  const auto& key = words[7];
  const auto machine_hits = machine.search(key);
  std::vector<std::size_t> manual_hits;
  for (std::size_t ti = 0; ti < 3; ++ti) {
    const auto m = manual[ti].parallel_compare(key);
    for (std::size_t r = 0; r < 4; ++r)
      if (m[r]) manual_hits.push_back(ti * 4 + r);
  }
  EXPECT_EQ(machine_hits, manual_hits);
}

}  // namespace
}  // namespace memcim
