// Shared fixtures for the serving suite: a small 2×2 fabric, matching
// workload shapes, and seeded database/trace builders.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "device/presets.h"
#include "serving/service.h"
#include "serving/trace_gen.h"

namespace memcim::serving::testutil {

inline TileFabricConfig small_fabric() {
  TileFabricConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.tile.rows = 4;
  cfg.tile.row_bits = 16;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

inline ServingWorkloadConfig small_workload() {
  ServingWorkloadConfig w;
  w.add_width = 16;
  w.adders_per_tile = 4;
  w.cam.rows = 4;
  w.cam.word_bits = 16;
  w.cam.cell = presets::crs_cell();
  return w;
}

inline ServingConfig small_config() {
  ServingConfig cfg;
  cfg.queue_capacity = 256;
  cfg.workload = small_workload();
  return cfg;
}

inline TraceParams small_trace_params() {
  TraceParams p;
  p.kmer_key_bits = 16;
  p.cam_key_bits = 16;
  p.add_width = 16;
  return p;
}

inline std::vector<bool> bits_of(std::uint64_t v, std::size_t n) {
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (v >> i) & 1u;
  return bits;
}

/// Seeded content for the small fabric (16 k-mer rows, 16 CAM rows).
struct SmallWorld {
  std::vector<std::vector<bool>> kmer_db;
  std::vector<std::vector<bool>> cam_rows;
  explicit SmallWorld(std::uint64_t seed = 0xD8) {
    Rng rng(seed);
    kmer_db = random_words(16, 16, rng);
    cam_rows = random_words(16, 16, rng);
  }
};

inline Request make_request(RequestClass cls, std::uint64_t id,
                            VirtualNs arrival) {
  Request r;
  r.cls = cls;
  r.id = id;
  r.arrival = arrival;
  if (cls == RequestClass::kAddition) {
    r.add_a = (id * 7919u) & 0xFFFFu;
    r.add_b = (id * 104729u) & 0xFFFFu;
  } else {
    r.key = bits_of(id * 2654435761u, 16);
  }
  return r;
}

}  // namespace memcim::serving::testutil
