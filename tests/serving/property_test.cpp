// Property-based coalescer/service tests: seeded mt19937_64 trace
// fuzzing (200+ iterations) of the serving invariants, with
// minimal-failing-prefix shrinking on violation — a failure reports
// the shortest request sequence that still breaks the property.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <random>
#include <set>
#include <sstream>

#include "serving/service.h"
#include "serving/trace_gen.h"
#include "serving_test_util.h"

namespace memcim::serving {
namespace {

using testutil::SmallWorld;

constexpr std::size_t kIterations = 200;

struct FuzzCase {
  TraceParams trace;
  std::size_t queue_capacity = 256;
  VirtualNs window_timeout = 20'000;
};

FuzzCase draw_case(std::mt19937_64& meta, std::size_t max_requests) {
  FuzzCase fc;
  fc.trace = testutil::small_trace_params();
  fc.trace.seed = meta();
  fc.trace.requests = 1 + meta() % max_requests;
  fc.trace.mean_interarrival_ns = 20.0 + static_cast<double>(meta() % 2000);
  fc.queue_capacity = 4 + meta() % 128;
  fc.window_timeout = 100 + meta() % 40'000;
  return fc;
}

ServiceRunResult run_case(const FuzzCase& fc,
                          const std::vector<Request>& trace) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  ServingConfig cfg = testutil::small_config();
  cfg.queue_capacity = fc.queue_capacity;
  cfg.coalescer.window_timeout = fc.window_timeout;
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  return svc.run(trace);
}

/// Assert `holds` on the full trace; on violation, shrink to the
/// minimal failing prefix and fail with it.
void check_with_shrinking(
    const std::vector<Request>& trace, std::size_t iteration,
    const std::function<bool(const std::vector<Request>&)>& holds) {
  if (holds(trace)) return;
  const auto minimal = minimal_failing_trace_prefix(trace, holds);
  ASSERT_TRUE(minimal.has_value());
  std::ostringstream os;
  for (std::size_t i = 0; i < *minimal; ++i)
    os << " #" << trace[i].id << ":" << to_string(trace[i].cls) << "@"
       << trace[i].arrival;
  FAIL() << "property violated at iteration " << iteration
         << "; minimal failing prefix (" << *minimal << " of " << trace.size()
         << " requests):" << os.str();
}

TEST(ServingProperty, EveryAdmittedRequestLandsInExactlyOneBatch) {
  std::mt19937_64 meta(0xA11CE);
  for (std::size_t iter = 0; iter < kIterations; ++iter) {
    const FuzzCase fc = draw_case(meta, 150);
    const std::vector<Request> trace = generate_trace(fc.trace);
    check_with_shrinking(trace, iter, [&](const std::vector<Request>& t) {
      const ServiceRunResult result = run_case(fc, t);
      std::set<std::uint64_t> responded;
      for (const Response& r : result.responses)
        if (!responded.insert(r.id).second) return false;  // duplicate
      std::set<std::uint64_t> shed;
      for (const ShedRecord& s : result.shed)
        if (!shed.insert(s.id).second) return false;
      // Disjoint, and together exactly the arrival set.
      if (responded.size() + shed.size() != t.size()) return false;
      for (const Request& req : t) {
        const bool in_resp = responded.count(req.id) != 0;
        const bool in_shed = shed.count(req.id) != 0;
        if (in_resp == in_shed) return false;
      }
      return true;
    });
  }
}

TEST(ServingProperty, BatchesNeverMixClassesNorExceedTheLaneLimit) {
  std::mt19937_64 meta(0xB0B);
  for (std::size_t iter = 0; iter < kIterations; ++iter) {
    const FuzzCase fc = draw_case(meta, 150);
    const std::vector<Request> trace = generate_trace(fc.trace);
    check_with_shrinking(trace, iter, [&](const std::vector<Request>& t) {
      const ServiceRunResult result = run_case(fc, t);
      struct Group {
        RequestClass cls{};
        std::uint32_t lanes = 0;
        VirtualNs dispatched = 0;
        std::size_t members = 0;
      };
      std::map<std::uint64_t, Group> batches;
      for (const Response& r : result.responses) {
        auto [it, fresh] = batches.try_emplace(r.batch_seq);
        if (fresh) {
          it->second = {r.cls, r.batch_lanes, r.dispatched, 0};
        } else if (it->second.cls != r.cls ||
                   it->second.lanes != r.batch_lanes ||
                   it->second.dispatched != r.dispatched) {
          return false;  // mixed class or inconsistent batch stamps
        }
        ++it->second.members;
      }
      for (const auto& [seq, g] : batches) {
        (void)seq;
        if (g.lanes == 0 || g.lanes > kPackedLanes) return false;
        if (g.members != g.lanes) return false;
      }
      return true;
    });
  }
}

TEST(ServingProperty, BatchedPayloadsEqualScalarReferenceBitwise) {
  std::mt19937_64 meta(0xFACADE);
  const SmallWorld world;
  for (std::size_t iter = 0; iter < kIterations; ++iter) {
    const FuzzCase fc = draw_case(meta, 40);
    const std::vector<Request> trace = generate_trace(fc.trace);
    check_with_shrinking(trace, iter, [&](const std::vector<Request>& t) {
      const ServiceRunResult batched = run_case(fc, t);
      const std::vector<Response> scalar = scalar_reference(
          testutil::small_fabric(), testutil::small_workload(), world.kmer_db,
          world.cam_rows, t);
      std::map<std::uint64_t, const Response*> golden;
      for (const Response& r : scalar) golden[r.id] = &r;
      // Every served response must equal its unbatched scalar run.
      for (const Response& r : batched.responses)
        if (!payload_equal(r, *golden.at(r.id))) return false;
      return true;
    });
  }
}

TEST(ServingProperty, ShrinkerReportsTheExactMinimalPrefix) {
  TraceParams params = testutil::small_trace_params();
  params.seed = 0x517;
  params.requests = 200;
  const std::vector<Request> trace = generate_trace(params);
  // Synthetic property: "the trace contains no CAM search".  The
  // minimal failing prefix is exactly the first CAM request's index+1.
  std::size_t first_cam = trace.size();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].cls == RequestClass::kCamSearch) {
      first_cam = i;
      break;
    }
  }
  ASSERT_LT(first_cam, trace.size());  // the mix makes one all but certain
  const auto minimal = minimal_failing_trace_prefix(
      trace, [](const std::vector<Request>& t) {
        return std::none_of(t.begin(), t.end(), [](const Request& r) {
          return r.cls == RequestClass::kCamSearch;
        });
      });
  ASSERT_TRUE(minimal.has_value());
  EXPECT_EQ(*minimal, first_cam + 1);
}

TEST(ServingProperty, ShrinkerReturnsNulloptWhenThePropertyHolds) {
  TraceParams params = testutil::small_trace_params();
  params.requests = 50;
  const std::vector<Request> trace = generate_trace(params);
  const auto minimal = minimal_failing_trace_prefix(
      trace, [](const std::vector<Request>&) { return true; });
  EXPECT_FALSE(minimal.has_value());
}

}  // namespace
}  // namespace memcim::serving
