// Coalescer: window-close policy — full windows close instantly,
// partial windows on the starvation timeout, deterministic class
// selection, FIFO ordering, monotone sequence numbers.
#include "serving/coalescer.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "serving_test_util.h"

namespace memcim::serving {
namespace {

using testutil::make_request;

std::vector<AdmissionQueue> make_queues(std::size_t capacity = 256) {
  std::vector<AdmissionQueue> queues;
  for (std::size_t c = 0; c < kRequestClasses; ++c)
    queues.emplace_back(capacity);
  return queues;
}

void fill(std::vector<AdmissionQueue>& queues, RequestClass cls,
          std::size_t count, VirtualNs first_arrival,
          std::uint64_t first_id = 0) {
  auto& q = queues[static_cast<std::size_t>(cls)];
  for (std::size_t i = 0; i < count; ++i)
    ASSERT_TRUE(q.try_push(
        make_request(cls, first_id + i, first_arrival + i)));
}

TEST(Coalescer, FullWindowClosesImmediately) {
  Coalescer co(CoalescerPolicy{});
  auto queues = make_queues();
  fill(queues, RequestClass::kAddition, kPackedLanes, 1000);
  const auto cls = co.ready(queues, 1000 + kPackedLanes - 1);
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, RequestClass::kAddition);
}

TEST(Coalescer, PartialWindowWaitsForTheTimeout) {
  CoalescerPolicy policy;
  policy.window_timeout = 500;
  Coalescer co(policy);
  auto queues = make_queues();
  fill(queues, RequestClass::kKmerQuery, 3, 1000);
  EXPECT_FALSE(co.ready(queues, 1000).has_value());
  EXPECT_FALSE(co.ready(queues, 1499).has_value());
  const auto cls = co.ready(queues, 1500);  // head waited the timeout
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, RequestClass::kKmerQuery);
}

TEST(Coalescer, NextDeadlineIsHeadArrivalPlusTimeout) {
  CoalescerPolicy policy;
  policy.window_timeout = 700;
  Coalescer co(policy);
  auto queues = make_queues();
  EXPECT_EQ(co.next_deadline(queues), kNever);
  fill(queues, RequestClass::kCamSearch, 2, 2000);
  fill(queues, RequestClass::kAddition, 1, 1500);
  EXPECT_EQ(co.next_deadline(queues), 1500u + 700u);
  // ready() at the deadline instant is guaranteed to fire.
  EXPECT_TRUE(co.ready(queues, co.next_deadline(queues)).has_value());
}

TEST(Coalescer, FullWindowsOutrankTimedOutPartials) {
  CoalescerPolicy policy;
  policy.window_timeout = 100;
  Coalescer co(policy);
  auto queues = make_queues();
  // kmer head is older and long past its timeout; the add window is
  // full — the full window still wins the dispatch slot.
  fill(queues, RequestClass::kKmerQuery, 1, 0);
  fill(queues, RequestClass::kAddition, kPackedLanes, 5000);
  const auto cls = co.ready(queues, 6000);
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, RequestClass::kAddition);
}

TEST(Coalescer, EarliestHeadArrivalWinsTiesOnClassId) {
  CoalescerPolicy policy;
  policy.window_timeout = 10;
  Coalescer co(policy);
  auto queues = make_queues();
  // Both partial, both timed out; cam's head is older → cam wins.
  fill(queues, RequestClass::kCamSearch, 2, 100);
  fill(queues, RequestClass::kAddition, 2, 200);
  auto cls = co.ready(queues, 100000);
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, RequestClass::kCamSearch);
  // Same head arrival in kmer (class 0) and add (class 2) → class 0.
  auto tie_queues = make_queues();
  fill(tie_queues, RequestClass::kAddition, 2, 100);
  fill(tie_queues, RequestClass::kKmerQuery, 2, 100);
  cls = co.ready(tie_queues, 100000);
  ASSERT_TRUE(cls.has_value());
  EXPECT_EQ(*cls, RequestClass::kKmerQuery);
}

TEST(Coalescer, CloseRespectsMaxLanesAndFifo) {
  Coalescer co(CoalescerPolicy{});
  auto queues = make_queues();
  fill(queues, RequestClass::kAddition, 100, 0);
  const Batch batch = co.close(queues, RequestClass::kAddition, 4000);
  EXPECT_EQ(batch.lanes(), kPackedLanes);
  EXPECT_FALSE(batch.partial);
  EXPECT_EQ(batch.formed, 4000u);
  for (std::size_t i = 0; i < batch.lanes(); ++i)
    EXPECT_EQ(batch.requests[i].id, i);
  EXPECT_EQ(queues[2].size(), 100u - kPackedLanes);
  EXPECT_EQ(queues[2].front().id, kPackedLanes);
}

TEST(Coalescer, CloseUnderFullMarksThePartialFlag) {
  Coalescer co(CoalescerPolicy{});
  auto queues = make_queues();
  fill(queues, RequestClass::kCamSearch, 5, 0);
  const Batch batch = co.close(queues, RequestClass::kCamSearch, 100);
  EXPECT_EQ(batch.lanes(), 5u);
  EXPECT_TRUE(batch.partial);
  EXPECT_TRUE(queues[1].empty());
}

TEST(Coalescer, BatchSequenceNumbersAreMonotone) {
  Coalescer co(CoalescerPolicy{});
  auto queues = make_queues();
  fill(queues, RequestClass::kAddition, 10, 0);
  fill(queues, RequestClass::kKmerQuery, 10, 0);
  const Batch b0 = co.close(queues, RequestClass::kAddition, 50);
  const Batch b1 = co.close(queues, RequestClass::kKmerQuery, 60);
  EXPECT_EQ(b0.seq, 0u);
  EXPECT_EQ(b1.seq, 1u);
}

TEST(Coalescer, SmallerMaxLanesPolicyIsHonoured) {
  CoalescerPolicy policy;
  policy.max_lanes = 8;
  Coalescer co(policy);
  auto queues = make_queues();
  fill(queues, RequestClass::kAddition, 8, 0);
  EXPECT_TRUE(co.ready(queues, 0).has_value());  // full at 8 lanes
  const Batch batch = co.close(queues, RequestClass::kAddition, 0);
  EXPECT_EQ(batch.lanes(), 8u);
  EXPECT_FALSE(batch.partial);
}

TEST(Coalescer, InvalidPolicyAndMisuseThrow) {
  CoalescerPolicy zero;
  zero.max_lanes = 0;
  EXPECT_THROW(Coalescer{zero}, Error);
  CoalescerPolicy wide;
  wide.max_lanes = kPackedLanes + 1;
  EXPECT_THROW(Coalescer{wide}, Error);
  Coalescer co(CoalescerPolicy{});
  auto queues = make_queues();
  EXPECT_THROW((void)co.close(queues, RequestClass::kAddition, 0), Error);
}

}  // namespace
}  // namespace memcim::serving
