// WorkloadService: end-to-end request flow on the virtual clock —
// correct payloads per class, backpressure, starvation guard, FIFO
// ordering, stats books, and the serving.* telemetry contract.
#include "serving/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.h"
#include "serving_test_util.h"
#include "telemetry/telemetry.h"

namespace memcim::serving {
namespace {

using testutil::bits_of;
using testutil::make_request;
using testutil::SmallWorld;

TEST(WorkloadService, AdditionResponsesMatchNativeSums) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 20; ++i)
    trace.push_back(make_request(RequestClass::kAddition, i, 100));
  const ServiceRunResult result = svc.run(trace);
  ASSERT_EQ(result.responses.size(), 20u);
  std::map<std::uint64_t, const Request*> by_id;
  for (const Request& r : trace) by_id[r.id] = &r;
  for (const Response& resp : result.responses) {
    const Request& req = *by_id.at(resp.id);
    EXPECT_EQ(resp.sum, (req.add_a + req.add_b) & 0xFFFFu);
    EXPECT_TRUE(resp.matches.empty());
  }
}

TEST(WorkloadService, KmerQueryReportsPlantedGlobalRows) {
  TileFabric fabric(testutil::small_fabric());
  SmallWorld world;
  const std::vector<bool> needle = bits_of(0xBEEF, 16);
  world.kmer_db[3] = needle;   // tile 0, row 3
  world.kmer_db[9] = needle;   // tile 2, row 1
  world.kmer_db[14] = needle;  // tile 3, row 2
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  Request query = make_request(RequestClass::kKmerQuery, 0, 50);
  query.key = needle;
  const ServiceRunResult result = svc.run({query});
  ASSERT_EQ(result.responses.size(), 1u);
  EXPECT_EQ(result.responses[0].matches,
            (std::vector<std::size_t>{3, 9, 14}));
}

TEST(WorkloadService, CamSearchReportsPlantedGlobalRows) {
  TileFabric fabric(testutil::small_fabric());
  SmallWorld world;
  const std::vector<bool> needle = bits_of(0xCAFE, 16);
  world.cam_rows[2] = needle;   // CAM bank 0, row 2
  world.cam_rows[13] = needle;  // CAM bank 3, row 1
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  Request query = make_request(RequestClass::kCamSearch, 7, 50);
  query.key = needle;
  const ServiceRunResult result = svc.run({query});
  ASSERT_EQ(result.responses.size(), 1u);
  EXPECT_EQ(result.responses[0].matches, (std::vector<std::size_t>{2, 13}));
}

TEST(WorkloadService, FullQueueShedsTypedErrorAndKeepsAcceptedWork) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  ServingConfig cfg = testutil::small_config();
  cfg.queue_capacity = 8;
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 30; ++i)
    trace.push_back(make_request(RequestClass::kAddition, i, 100));
  const ServiceRunResult result = svc.run(trace);
  // The first 8 same-instant arrivals are admitted, the rest shed with
  // the typed reason; every admitted request still completes.
  ASSERT_EQ(result.responses.size(), 8u);
  ASSERT_EQ(result.shed.size(), 22u);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(result.responses[i].id, i);
  for (std::size_t i = 0; i < result.shed.size(); ++i) {
    EXPECT_EQ(result.shed[i].id, 8 + i);
    EXPECT_EQ(result.shed[i].reason, ShedReason::kQueueFull);
    EXPECT_EQ(result.shed[i].queue_depth, 8u);
    EXPECT_EQ(result.shed[i].at, 100u);
  }
  EXPECT_EQ(result.stats.arrivals(), 30u);
  EXPECT_EQ(result.stats.shed(), 22u);
  EXPECT_EQ(result.stats.completed(), 8u);
  EXPECT_DOUBLE_EQ(result.stats.shed_rate(), 22.0 / 30.0);
}

TEST(WorkloadService, LoneRequestDispatchesAtThePartialWindowTimeout) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  ServingConfig cfg = testutil::small_config();
  cfg.coalescer.window_timeout = 5000;
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  const ServiceRunResult result =
      svc.run({make_request(RequestClass::kAddition, 0, 100)});
  ASSERT_EQ(result.responses.size(), 1u);
  const Response& resp = result.responses[0];
  // No co-arrivals ever show up: the starvation guard dispatches the
  // singleton window exactly when its head has waited the timeout.
  EXPECT_EQ(resp.dispatched, 100u + 5000u);
  EXPECT_GT(resp.completed, resp.dispatched);
  EXPECT_EQ(resp.batch_lanes, 1u);
  EXPECT_EQ(result.stats.partial_batches, 1u);
}

TEST(WorkloadService, FifoOrderWithinAClassIsPreserved) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < 150; ++i)
    trace.push_back(make_request(RequestClass::kAddition, i, 10 * i));
  const ServiceRunResult result = svc.run(trace);
  ASSERT_EQ(result.responses.size(), 150u);
  for (std::size_t i = 0; i < result.responses.size(); ++i)
    EXPECT_EQ(result.responses[i].id, i);
  for (std::size_t i = 1; i < result.responses.size(); ++i)
    EXPECT_LE(result.responses[i - 1].dispatched,
              result.responses[i].dispatched);
}

TEST(WorkloadService, FullWindowDispatchesAtItsArrivalInstant) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  std::vector<Request> trace;
  for (std::uint64_t i = 0; i < kPackedLanes; ++i)
    trace.push_back(make_request(RequestClass::kAddition, i, 500));
  const ServiceRunResult result = svc.run(trace);
  ASSERT_EQ(result.responses.size(), kPackedLanes);
  for (const Response& resp : result.responses) {
    EXPECT_EQ(resp.dispatched, 500u);  // no timeout wait for full windows
    EXPECT_EQ(resp.batch_lanes, kPackedLanes);
  }
  EXPECT_EQ(result.stats.batches, 1u);
  EXPECT_EQ(result.stats.partial_batches, 0u);
  EXPECT_DOUBLE_EQ(result.stats.mean_occupancy(),
                   static_cast<double>(kPackedLanes));
}

TEST(WorkloadService, StatsBooksAreInternallyConsistent) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  TraceParams params = testutil::small_trace_params();
  params.requests = 500;
  params.mean_interarrival_ns = 200.0;
  const std::vector<Request> trace = generate_trace(params);
  const ServiceRunResult result = svc.run(trace);
  const ServiceRunStats& stats = result.stats;
  EXPECT_EQ(stats.arrivals(), 500u);
  EXPECT_EQ(stats.arrivals(), stats.completed() + stats.shed());
  EXPECT_EQ(stats.completed(), result.responses.size());
  EXPECT_EQ(stats.shed(), result.shed.size());
  EXPECT_EQ(stats.total_lanes, stats.completed());
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.makespan, 0u);
  EXPECT_LE(stats.busy_ns, stats.makespan);
  EXPECT_GT(stats.sustained_qps(), 0.0);
  EXPECT_GT(stats.flits, 0u);
  EXPECT_GT(stats.compute_energy.value(), 0.0);
  EXPECT_GT(stats.noc_energy.value(), 0.0);
}

TEST(WorkloadService, ServingCountersMatchTheRunStats) {
  telemetry::set_enabled(true);
  telemetry::Registry::global().reset();
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  ServingConfig cfg = testutil::small_config();
  cfg.queue_capacity = 32;
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  TraceParams params = testutil::small_trace_params();
  params.requests = 300;
  params.mean_interarrival_ns = 50.0;  // hot enough to shed
  const ServiceRunResult result = svc.run(generate_trace(params));
  const telemetry::MetricsSnapshot snap =
      telemetry::Registry::global().snapshot();
  EXPECT_EQ(snap.counter("serving.arrivals"), result.stats.arrivals());
  EXPECT_EQ(snap.counter("serving.admitted"), result.stats.completed());
  EXPECT_EQ(snap.counter("serving.shed"), result.stats.shed());
  EXPECT_EQ(snap.counter("serving.completed"), result.stats.completed());
  EXPECT_EQ(snap.counter("serving.batches"), result.stats.batches);
  EXPECT_EQ(snap.counter("serving.batches_partial"),
            result.stats.partial_batches);
  EXPECT_EQ(snap.counter("serving.batch_lanes"), result.stats.total_lanes);
  EXPECT_EQ(snap.counter("serving.flits"), result.stats.flits);
  EXPECT_EQ(snap.counter("serving.dispatch.calls"), result.stats.batches);
  const telemetry::HistogramSample* occupancy =
      snap.histogram("serving.batch.occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_EQ(occupancy->count, result.stats.batches);
  std::uint64_t latency_count = 0;
  for (const char* name :
       {"serving.latency_ns.kmer", "serving.latency_ns.cam",
        "serving.latency_ns.add"}) {
    const telemetry::HistogramSample* h = snap.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    latency_count += h->count;
  }
  EXPECT_EQ(latency_count, result.stats.completed());
}

TEST(WorkloadService, UnsortedTraceIsRejected) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  std::vector<Request> trace;
  trace.push_back(make_request(RequestClass::kAddition, 0, 900));
  trace.push_back(make_request(RequestClass::kAddition, 1, 100));
  EXPECT_THROW((void)svc.run(trace), Error);
}

TEST(WorkloadService, MismatchedDatabaseShapesAreRejected) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  std::vector<std::vector<bool>> short_db = world.kmer_db;
  short_db.pop_back();  // 15 rows for a 16-row fabric
  EXPECT_THROW(WorkloadService(fabric, testutil::small_config(), short_db,
                               world.cam_rows),
               Error);
  std::vector<std::vector<bool>> wide_cam = world.cam_rows;
  wide_cam[0].push_back(true);  // 17-bit word in a 16-bit CAM
  EXPECT_THROW(WorkloadService(fabric, testutil::small_config(), world.kmer_db,
                               wide_cam),
               Error);
}

}  // namespace
}  // namespace memcim::serving
