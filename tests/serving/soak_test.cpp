// Deterministic soak: a 100k-request virtual-clock run is bitwise
// identical under MEMCIM_THREADS 1 vs 4 — responses, shed records,
// run stats, and the deterministic telemetry slice all match exactly.
// CI reruns this suite under ASan+UBSan.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/parallel.h"
#include "isa/cache.h"
#include "serving/service.h"
#include "serving/trace_gen.h"
#include "serving_test_util.h"
#include "telemetry/telemetry.h"

namespace memcim::serving {
namespace {

using testutil::SmallWorld;

TraceParams soak_params(std::size_t requests) {
  TraceParams p = testutil::small_trace_params();
  p.requests = requests;
  p.mean_interarrival_ns = 100.0;
  return p;
}

ServingConfig soak_config() {
  ServingConfig cfg = testutil::small_config();
  cfg.queue_capacity = 1024;
  return cfg;
}

ServiceRunResult run_soak(const std::vector<Request>& trace) {
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  WorkloadService svc(fabric, soak_config(), world.kmer_db, world.cam_rows);
  return svc.run(trace);
}

/// Full-field response equality minus trace_id (root-context ids are
/// process-unique, not run-reproducible).
bool identical_response(const Response& a, const Response& b) {
  return payload_equal(a, b) && a.arrival == b.arrival &&
         a.dispatched == b.dispatched && a.completed == b.completed &&
         a.batch_seq == b.batch_seq && a.batch_lanes == b.batch_lanes;
}

bool identical_shed(const ShedRecord& a, const ShedRecord& b) {
  return a.id == b.id && a.cls == b.cls && a.reason == b.reason &&
         a.at == b.at && a.queue_depth == b.queue_depth;
}

/// Every counter except the schedule-dependent ones (thread-pool
/// bookkeeping under "parallel." and wall-time aggregates "*.ns").
std::map<std::string, std::uint64_t> deterministic_counters(
    const telemetry::MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> out;
  for (const telemetry::CounterSample& c : snap.counters) {
    if (c.name.rfind("parallel.", 0) == 0) continue;
    if (c.name.size() >= 3 &&
        c.name.compare(c.name.size() - 3, 3, ".ns") == 0)
      continue;
    out[c.name] = c.value;
  }
  return out;
}

/// The serving.* histograms (all virtual-clock valued → deterministic).
std::map<std::string, std::vector<std::uint64_t>> serving_histograms(
    const telemetry::MetricsSnapshot& snap) {
  std::map<std::string, std::vector<std::uint64_t>> out;
  for (const telemetry::HistogramSample& h : snap.histograms)
    if (h.name.rfind("serving.", 0) == 0) out[h.name] = h.bucket_counts;
  return out;
}

TEST(ServingSoak, HundredThousandRequestsBitwiseInvariantAcrossThreads) {
  TraceParams params = soak_params(100'000);
  params.seed = 0xDEE9;
  const std::vector<Request> trace = generate_trace(params);

  telemetry::set_enabled(true);
  const std::size_t prev_threads = parallel_threads();

  // The process-global program cache is warm after any earlier test, so
  // both runs must start cold for the compiler.* counters to match.
  set_parallel_threads(1);
  telemetry::Registry::global().reset();
  isa::ProgramCache::global().clear();
  const ServiceRunResult one = run_soak(trace);
  const telemetry::MetricsSnapshot snap_one =
      telemetry::Registry::global().snapshot();

  set_parallel_threads(4);
  telemetry::Registry::global().reset();
  isa::ProgramCache::global().clear();
  const ServiceRunResult four = run_soak(trace);
  const telemetry::MetricsSnapshot snap_four =
      telemetry::Registry::global().snapshot();

  set_parallel_threads(prev_threads);

  // Responses: same count, same order, every field identical.
  ASSERT_EQ(one.responses.size(), four.responses.size());
  for (std::size_t i = 0; i < one.responses.size(); ++i)
    ASSERT_TRUE(identical_response(one.responses[i], four.responses[i]))
        << "response " << i << " diverged across thread counts";

  // Shed records: identical stream.
  ASSERT_EQ(one.shed.size(), four.shed.size());
  for (std::size_t i = 0; i < one.shed.size(); ++i)
    ASSERT_TRUE(identical_shed(one.shed[i], four.shed[i]))
        << "shed record " << i << " diverged across thread counts";

  // Run stats: the ledger-able metrics are bit-for-bit equal.
  EXPECT_EQ(one.stats.batches, four.stats.batches);
  EXPECT_EQ(one.stats.partial_batches, four.stats.partial_batches);
  EXPECT_EQ(one.stats.total_lanes, four.stats.total_lanes);
  EXPECT_EQ(one.stats.flits, four.stats.flits);
  EXPECT_EQ(one.stats.makespan, four.stats.makespan);
  EXPECT_EQ(one.stats.busy_ns, four.stats.busy_ns);
  EXPECT_EQ(one.stats.compute_energy, four.stats.compute_energy);
  EXPECT_EQ(one.stats.noc_energy, four.stats.noc_energy);
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    EXPECT_EQ(one.stats.per_class[c].arrivals, four.stats.per_class[c].arrivals);
    EXPECT_EQ(one.stats.per_class[c].admitted, four.stats.per_class[c].admitted);
    EXPECT_EQ(one.stats.per_class[c].shed, four.stats.per_class[c].shed);
    EXPECT_EQ(one.stats.per_class[c].completed,
              four.stats.per_class[c].completed);
  }
  EXPECT_EQ(one.stats.sustained_qps(), four.stats.sustained_qps());
  EXPECT_EQ(one.stats.mean_occupancy(), four.stats.mean_occupancy());

  // Telemetry: the deterministic counter slice and every serving.*
  // histogram are identical.
  EXPECT_EQ(deterministic_counters(snap_one), deterministic_counters(snap_four));
  EXPECT_EQ(serving_histograms(snap_one), serving_histograms(snap_four));
}

TEST(ServingSoak, LedgerMetricsStayInSaneRanges) {
  TraceParams params = soak_params(10'000);
  params.seed = 0x10AD;
  const ServiceRunResult result = run_soak(generate_trace(params));
  const ServiceRunStats& stats = result.stats;
  EXPECT_EQ(stats.arrivals(), 10'000u);
  EXPECT_GT(stats.completed(), 0u);
  EXPECT_GT(stats.sustained_qps(), 0.0);
  EXPECT_GT(stats.mean_occupancy(), 0.0);
  EXPECT_LE(stats.mean_occupancy(), 64.0);
  EXPECT_GE(stats.shed_rate(), 0.0);
  EXPECT_LT(stats.shed_rate(), 1.0);
  EXPECT_LE(stats.busy_ns, stats.makespan);
  telemetry::set_enabled(true);
  telemetry::Registry::global().reset();
  (void)run_soak(generate_trace(params));
  const telemetry::MetricsSnapshot snap =
      telemetry::Registry::global().snapshot();
  for (const char* name :
       {"serving.latency_ns.kmer", "serving.latency_ns.cam",
        "serving.latency_ns.add"}) {
    const telemetry::HistogramSample* h = snap.histogram(name);
    ASSERT_NE(h, nullptr) << name;
    if (h->count == 0) continue;
    EXPECT_LE(h->p50(), h->p95()) << name;
    EXPECT_LE(h->p95(), h->p99()) << name;
    EXPECT_GE(h->p50(), h->min) << name;
    EXPECT_LE(h->p99(), h->max) << name;
  }
}

TEST(ServingSoak, OverloadNeverDeadlocksAndAlwaysDrains) {
  // A deliberately tiny queue under a hot arrival stream: the service
  // must shed loudly, never stall, and drain every admitted request.
  TraceParams params = soak_params(10'000);
  params.seed = 0xF100D;
  params.mean_interarrival_ns = 20.0;
  const std::vector<Request> trace = generate_trace(params);
  TileFabric fabric(testutil::small_fabric());
  const SmallWorld world;
  ServingConfig cfg = soak_config();
  cfg.queue_capacity = 8;
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  const ServiceRunResult result = svc.run(trace);
  EXPECT_GT(result.stats.shed(), 0u);
  EXPECT_EQ(result.stats.completed() + result.stats.shed(), 10'000u);
  EXPECT_EQ(result.responses.size(), result.stats.completed());
}

}  // namespace
}  // namespace memcim::serving
