// AdmissionQueue: the backpressure contract — hard capacity bound,
// typed refusal that leaves the queue untouched, FIFO-only drain.
#include "serving/queue.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "serving_test_util.h"

namespace memcim::serving {
namespace {

using testutil::make_request;

TEST(AdmissionQueue, CapacityIsAHardBound) {
  AdmissionQueue q(3);
  EXPECT_EQ(q.capacity(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_TRUE(q.try_push(make_request(RequestClass::kAddition, i, i)));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(make_request(RequestClass::kAddition, 99, 99)));
  EXPECT_EQ(q.size(), 3u);
}

TEST(AdmissionQueue, RefusedPushLeavesQueueUntouched) {
  AdmissionQueue q(2);
  ASSERT_TRUE(q.try_push(make_request(RequestClass::kAddition, 10, 100)));
  ASSERT_TRUE(q.try_push(make_request(RequestClass::kAddition, 11, 200)));
  ASSERT_FALSE(q.try_push(make_request(RequestClass::kAddition, 12, 300)));
  // Head and depth are bit-for-bit what they were before the refusal.
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().id, 10u);
  EXPECT_EQ(q.oldest_arrival(), 100u);
}

TEST(AdmissionQueue, DrainsInFifoOrder) {
  AdmissionQueue q(8);
  for (std::uint64_t i = 0; i < 8; ++i)
    ASSERT_TRUE(q.try_push(make_request(RequestClass::kCamSearch, i, 10 * i)));
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(q.front().id, i);
    EXPECT_EQ(q.pop().id, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(AdmissionQueue, OldestArrivalTracksTheHead) {
  AdmissionQueue q(4);
  EXPECT_EQ(q.oldest_arrival(), kNever);
  ASSERT_TRUE(q.try_push(make_request(RequestClass::kKmerQuery, 0, 500)));
  ASSERT_TRUE(q.try_push(make_request(RequestClass::kKmerQuery, 1, 900)));
  EXPECT_EQ(q.oldest_arrival(), 500u);
  (void)q.pop();
  EXPECT_EQ(q.oldest_arrival(), 900u);
  (void)q.pop();
  EXPECT_EQ(q.oldest_arrival(), kNever);
}

TEST(AdmissionQueue, EmptyAccessThrows) {
  AdmissionQueue q(1);
  EXPECT_THROW((void)q.front(), Error);
  EXPECT_THROW((void)q.pop(), Error);
}

TEST(AdmissionQueue, ZeroCapacityIsRejected) {
  EXPECT_THROW(AdmissionQueue{0}, Error);
}

TEST(AdmissionQueue, AcceptedWorkSurvivesShedPressure) {
  // Interleave refused pushes with accepted ones: everything accepted
  // drains exactly once, nothing refused ever appears.
  AdmissionQueue q(4);
  std::vector<std::uint64_t> accepted;
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (q.try_push(make_request(RequestClass::kAddition, i, i))) {
      accepted.push_back(i);
    }
  }
  EXPECT_EQ(accepted.size(), 4u);
  std::vector<std::uint64_t> drained;
  while (!q.empty()) drained.push_back(q.pop().id);
  EXPECT_EQ(drained, accepted);
}

}  // namespace
}  // namespace memcim::serving
