// Compiled serving engines: switching the CAM path to the cached
// masked-equality program and the adder path to the cached IMP ripple
// adder must leave every response payload bitwise identical to the
// device engines — only the cost books (IMP model vs device model) may
// differ.
#include <gtest/gtest.h>

#include <vector>

#include "serving/dispatcher.h"
#include "serving_test_util.h"

namespace memcim::serving {
namespace {

using testutil::SmallWorld;
using testutil::make_request;

Batch make_batch(RequestClass cls, std::size_t lanes) {
  Batch b;
  b.cls = cls;
  b.seq = 1;
  for (std::size_t i = 0; i < lanes; ++i)
    b.requests.push_back(make_request(cls, 100 + i, 0));
  return b;
}

ServingWorkloadConfig compiled_workload() {
  ServingWorkloadConfig w = testutil::small_workload();
  w.cam_engine = CamEngine::kCompiled;
  w.add_engine = AddEngine::kCompiledImply;
  return w;
}

class CompiledEngines : public ::testing::Test {
 protected:
  CompiledEngines()
      : device_fabric_(testutil::small_fabric()),
        compiled_fabric_(testutil::small_fabric()),
        device_(device_fabric_, testutil::small_workload(), world_.kmer_db,
                world_.cam_rows),
        compiled_(compiled_fabric_, compiled_workload(), world_.kmer_db,
                  world_.cam_rows) {}

  SmallWorld world_;
  TileFabric device_fabric_;
  TileFabric compiled_fabric_;
  BatchDispatcher device_;
  BatchDispatcher compiled_;
};

TEST_F(CompiledEngines, CamSearchPayloadsAreIdentical) {
  for (std::size_t lanes : {1u, 3u, 8u}) {
    const Batch batch = make_batch(RequestClass::kCamSearch, lanes);
    const BatchExecution a = device_.execute(batch);
    const BatchExecution b = compiled_.execute(batch);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i)
      EXPECT_EQ(a.responses[i].matches, b.responses[i].matches)
          << "lanes " << lanes << " response " << i;
  }
}

TEST_F(CompiledEngines, AdditionPayloadsAreIdentical) {
  for (std::size_t lanes : {1u, 5u, 16u}) {
    const Batch batch = make_batch(RequestClass::kAddition, lanes);
    const BatchExecution a = device_.execute(batch);
    const BatchExecution b = compiled_.execute(batch);
    ASSERT_EQ(a.responses.size(), b.responses.size());
    for (std::size_t i = 0; i < a.responses.size(); ++i) {
      EXPECT_EQ(a.responses[i].sum, b.responses[i].sum)
          << "lanes " << lanes << " response " << i;
      const Request& r = batch.requests[i];
      // Both engines report sums mod 2^add_width (the TC-farm contract).
      EXPECT_EQ(b.responses[i].sum, (r.add_a + r.add_b) & 0xFFFFu);
    }
  }
}

TEST_F(CompiledEngines, KmerPathIsSharedAndIdentical) {
  // The k-mer path always runs the compiled tile engine; both configs
  // must agree bit for bit (and with the same books).
  const Batch batch = make_batch(RequestClass::kKmerQuery, 4);
  const BatchExecution a = device_.execute(batch);
  const BatchExecution b = compiled_.execute(batch);
  for (std::size_t i = 0; i < a.responses.size(); ++i)
    EXPECT_EQ(a.responses[i].matches, b.responses[i].matches);
  EXPECT_EQ(a.compute_energy.value(), b.compute_energy.value());
  EXPECT_EQ(a.service_cycles, b.service_cycles);
}

}  // namespace
}  // namespace memcim::serving
