#include "device/fit.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

using namespace memcim::literals;

TEST(Fit, RecoversKnownKineticsExactly) {
  // Synthesize noiseless points from the model's own law and fit them.
  const VcmParams truth = presets::vcm_taox();  // t0=200ps, v0=0.15, Vw=2
  std::vector<SwitchingPoint> points;
  for (double v : {1.0, 1.4, 1.8, 2.2}) {
    const double t = truth.t_switch.value() *
                     std::exp(-(v - truth.v_write.value()) /
                              truth.kinetics_v0.value());
    points.push_back({Voltage(v), Time(t)});
  }
  const VcmKineticsFit fit = fit_vcm_kinetics(points, truth.v_write);
  EXPECT_NEAR(fit.kinetics_v0.value(), 0.15, 1e-9);
  EXPECT_NEAR(fit.t_switch.value(), 200e-12, 1e-18);
  EXPECT_NEAR(fit.log_rmse, 0.0, 1e-9);
}

TEST(Fit, RoundTripThroughSimulatedMeasurements) {
  // Measure the simulated device at several biases, fit, and check the
  // calibrated model reproduces the original behaviour.
  const VcmParams truth = presets::vcm_taox();
  std::vector<SwitchingPoint> points;
  for (double v : {1.2, 1.6, 2.0}) {
    points.push_back({Voltage(v),
                      measure_switching_time(truth, Voltage(v), 5.0_ps)});
  }
  const VcmParams calibrated = calibrated_vcm(truth, points);
  // Discretization bias of the 5 ps sampling is the only error source.
  EXPECT_NEAR(calibrated.kinetics_v0.value(), truth.kinetics_v0.value(),
              0.01);
  EXPECT_NEAR(calibrated.t_switch.value(), truth.t_switch.value(), 10e-12);
  // Behavioural check at an unseen voltage.
  const Time t_true = measure_switching_time(truth, 1.4_V, 5.0_ps);
  const Time t_cal = measure_switching_time(calibrated, 1.4_V, 5.0_ps);
  EXPECT_NEAR(t_cal.value(), t_true.value(), t_true.value() * 0.05);
}

TEST(Fit, PaperTaoxPointAnchorsTheModel) {
  // Ref [42]: sub-ns switching for TaOx at write bias; with a second
  // point an octave down in voltage the fit lands near the preset.
  const std::vector<SwitchingPoint> points{
      {2.0_V, 200.0_ps},
      {1.5_V, Time(200e-12 * std::exp(0.5 / 0.15))},
  };
  const VcmKineticsFit fit = fit_vcm_kinetics(points, 2.0_V);
  EXPECT_NEAR(fit.kinetics_v0.value(), 0.15, 1e-6);
  EXPECT_NEAR(fit.t_switch.value(), 200e-12, 1e-15);
}

TEST(Fit, Validation) {
  EXPECT_THROW((void)fit_vcm_kinetics({{2.0_V, 1.0_ns}}, 2.0_V), Error);
  // Same voltage twice: singular regression.
  EXPECT_THROW((void)fit_vcm_kinetics(
                   {{2.0_V, 1.0_ns}, {2.0_V, 2.0_ns}}, 2.0_V),
               Error);
  // Inverted characteristic (slower at higher V) is rejected.
  EXPECT_THROW((void)fit_vcm_kinetics(
                   {{1.0_V, 1.0_ns}, {2.0_V, 5.0_ns}}, 2.0_V),
               Error);
  // Sub-threshold measurement request.
  EXPECT_THROW((void)measure_switching_time(presets::vcm_taox(), 0.5_V,
                                            10.0_ps),
               Error);
}

}  // namespace
}  // namespace memcim
