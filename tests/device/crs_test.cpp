#include "device/crs.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

using namespace memcim::literals;

// ---------------------------------------------------------------------------
// Behavioural CrsCell.
// ---------------------------------------------------------------------------

TEST(CrsCell, WriteThenReadOne) {
  CrsCell cell(presets::crs_cell());
  cell.write(true);
  EXPECT_EQ(cell.state(), CrsState::kOne);
  const auto r = cell.read();
  EXPECT_TRUE(r.bit);
  EXPECT_FALSE(r.destructive);
  EXPECT_EQ(cell.state(), CrsState::kOne);  // '1' read is non-destructive
  EXPECT_DOUBLE_EQ(r.spike.value(), 0.0);
}

TEST(CrsCell, ReadZeroIsDestructiveWithSpike) {
  CrsCell cell(presets::crs_cell(), CrsState::kZero);
  const auto r = cell.read();
  EXPECT_FALSE(r.bit);
  EXPECT_TRUE(r.destructive);
  EXPECT_EQ(cell.state(), CrsState::kOn);  // paper: '0' switches to ON
  EXPECT_GT(r.spike.value(), 0.0);
}

TEST(CrsCell, ReadWithWritebackRestoresZero) {
  CrsCell cell(presets::crs_cell(), CrsState::kZero);
  const auto r = cell.read_with_writeback();
  EXPECT_TRUE(r.destructive);
  EXPECT_EQ(cell.state(), CrsState::kZero);
  // Re-read gives the same answer.
  const auto r2 = cell.read_with_writeback();
  EXPECT_FALSE(r2.bit);
  EXPECT_EQ(cell.state(), CrsState::kZero);
}

TEST(CrsCell, LowBiasNeverDisturbs) {
  // "The internal memory states '0' and '1' of a CRS cell are
  // indistinguishable at low voltages" — and untouched by them.
  for (CrsState s : {CrsState::kZero, CrsState::kOne}) {
    CrsCell cell(presets::crs_cell(), s);
    cell.apply_pulse(0.9_V);    // below v_th1
    cell.apply_pulse(-0.9_V);   // above v_th3
    EXPECT_EQ(cell.state(), s);
    EXPECT_EQ(cell.transitions(), 0u);
  }
}

TEST(CrsCell, FullWritePathsFromEveryState) {
  for (CrsState s : {CrsState::kZero, CrsState::kOne, CrsState::kOn}) {
    CrsCell c1(presets::crs_cell(), s);
    c1.write(true);
    EXPECT_EQ(c1.state(), CrsState::kOne) << "from " << to_string(s);
    CrsCell c0(presets::crs_cell(), s);
    c0.write(false);
    EXPECT_EQ(c0.state(), CrsState::kZero) << "from " << to_string(s);
  }
}

TEST(CrsCell, IntermediatePositivePulseOnlyHalfSwitches) {
  CrsCell cell(presets::crs_cell(), CrsState::kZero);
  cell.apply_pulse(1.5_V);  // v_th1 < v < v_th2
  EXPECT_EQ(cell.state(), CrsState::kOn);
  cell.apply_pulse(1.5_V);  // staying in ON
  EXPECT_EQ(cell.state(), CrsState::kOn);
  cell.apply_pulse(2.5_V);  // complete the transition
  EXPECT_EQ(cell.state(), CrsState::kOne);
}

TEST(CrsCell, NegativeBranchMirrors) {
  CrsCell cell(presets::crs_cell(), CrsState::kOne);
  cell.apply_pulse(-1.5_V);
  EXPECT_EQ(cell.state(), CrsState::kOn);
  cell.apply_pulse(-2.5_V);
  EXPECT_EQ(cell.state(), CrsState::kZero);
}

TEST(CrsCell, EnergyCountsTransitionsOnly) {
  CrsCell cell(presets::crs_cell(), CrsState::kZero);
  cell.apply_pulse(0.5_V);  // no transition
  EXPECT_DOUBLE_EQ(cell.energy().value(), 0.0);
  cell.write(true);  // 0 → 1: one transition
  EXPECT_DOUBLE_EQ(cell.energy().value(), 1e-15);
  cell.write(true);  // already 1: no energy
  EXPECT_DOUBLE_EQ(cell.energy().value(), 1e-15);
  EXPECT_EQ(cell.transitions(), 1u);
  EXPECT_EQ(cell.pulses(), 3u);
}

TEST(CrsCell, InvalidThresholdsRejected) {
  CrsCellParams p = presets::crs_cell();
  p.v_read = 2.5_V;  // outside (v_th1, v_th2)
  EXPECT_THROW(CrsCell{p}, Error);
  p = presets::crs_cell();
  p.v_th2 = 0.5_V;  // below v_th1
  EXPECT_THROW(CrsCell{p}, Error);
  p = presets::crs_cell();
  p.v_th4 = -0.5_V;  // above v_th3
  EXPECT_THROW(CrsCell{p}, Error);
}

// ---------------------------------------------------------------------------
// Circuit-level CrsDevice.
// ---------------------------------------------------------------------------

TEST(CrsDevice, ForceStateMapsToConstituents) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kOne);
  EXPECT_EQ(crs->logic_state(), CrsState::kOne);
  EXPECT_TRUE(crs->device_a().is_lrs());
  EXPECT_FALSE(crs->device_b().is_lrs());
  crs->force_state(CrsState::kZero);
  EXPECT_EQ(crs->logic_state(), CrsState::kZero);
  crs->force_state(CrsState::kOn);
  EXPECT_EQ(crs->logic_state(), CrsState::kOn);
}

TEST(CrsDevice, SplitVoltageConservesTotal) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kZero);
  const Voltage v = 1.2_V;
  const Voltage va = crs->split_voltage(v);
  // Currents through both constituents must match at the solution.
  const double ia = crs->device_a().current(va).value();
  const double ib = crs->device_b().current(v - va).value();
  EXPECT_NEAR(ia, ib, std::abs(ia) * 1e-6 + 1e-15);
  EXPECT_GE(va.value(), 0.0);
  EXPECT_LE(va.value(), v.value());
}

TEST(CrsDevice, HrsDeviceTakesMostOfTheDrop) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kZero);  // A:HRS, B:LRS
  const Voltage va = crs->split_voltage(1.0_V);
  EXPECT_GT(va.value(), 0.9);  // nearly all across the HRS device A
}

TEST(CrsDevice, BothLogicStatesBlockAtLowBias) {
  // The defining CRS property: '0' and '1' are both high-resistive at
  // read-disturb-free voltages, so no sneak paths.
  for (CrsState s : {CrsState::kZero, CrsState::kOne}) {
    auto crs = presets::make_crs_vcm();
    crs->force_state(s);
    const Current i = crs->current(0.3_V);
    // Below a microamp — two orders under the ON current.
    EXPECT_LT(std::abs(i.value()), 1e-6) << to_string(s);
  }
  auto on = presets::make_crs_vcm();
  on->force_state(CrsState::kOn);
  EXPECT_GT(on->current(0.3_V).value(), 1e-5);
}

TEST(CrsDevice, PositiveWritePulseReachesOneViaOn) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kZero);
  // Drive hard positive long enough to SET A and then RESET B.
  const VcmParams p = presets::vcm_taox();
  for (int step = 0; step < 200; ++step)
    crs->apply(2.0 * p.v_write, p.t_switch);
  EXPECT_EQ(crs->logic_state(), CrsState::kOne);
}

TEST(CrsDevice, NegativeWritePulseReturnsToZero) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kOne);
  const VcmParams p = presets::vcm_taox();
  for (int step = 0; step < 200; ++step)
    crs->apply(-2.0 * p.v_write, p.t_switch);
  EXPECT_EQ(crs->logic_state(), CrsState::kZero);
}

TEST(CrsDevice, CloneDeepCopies) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kOne);
  auto copy = crs->clone();
  crs->force_state(CrsState::kZero);
  auto* copy_crs = dynamic_cast<CrsDevice*>(copy.get());
  ASSERT_NE(copy_crs, nullptr);
  EXPECT_EQ(copy_crs->logic_state(), CrsState::kOne);
}

TEST(CrsDevice, EcmPairAlsoFormsValidCrs) {
  // The original Linn et al. demonstration used ECM (Ag) cells; the
  // same anti-serial construction must show the same state logic.
  auto crs = presets::make_crs_ecm();
  EXPECT_EQ(crs->logic_state(), CrsState::kZero);  // factory state
  for (CrsState s : {CrsState::kZero, CrsState::kOne}) {
    crs->force_state(s);
    EXPECT_LT(std::abs(crs->current(0.1_V).value()), 1e-6) << to_string(s);
  }
  // Hard positive drive takes '0' through ON to '1' (ECM is slower:
  // scale pulses by its 10 ns switching time).
  crs->force_state(CrsState::kZero);
  const EcmParams p = presets::ecm_ag();
  for (int step = 0; step < 400; ++step)
    crs->apply(2.0 * p.v_write, p.t_switch);
  EXPECT_EQ(crs->logic_state(), CrsState::kOne);
}

TEST(CrsDevice, IvSweepProducesButterfly) {
  auto crs = presets::make_crs_vcm();
  crs->force_state(CrsState::kZero);
  const auto trace = sweep_iv(*crs, 5.0_V, 50, 100.0_ps);
  ASSERT_EQ(trace.size(), 200u);
  // Somewhere on the positive leg the cell passes through ON...
  bool saw_on = false, saw_one = false;
  for (const auto& pt : trace) {
    if (pt.state == CrsState::kOn) saw_on = true;
    if (pt.state == CrsState::kOne) saw_one = true;
  }
  EXPECT_TRUE(saw_on);
  EXPECT_TRUE(saw_one);
  // ...and the sweep ends back in '0' (negative leg restores it).
  EXPECT_EQ(trace.back().state, CrsState::kZero);
}

}  // namespace
}  // namespace memcim
