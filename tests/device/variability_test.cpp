#include "device/variability.h"

#include <gtest/gtest.h>

#include <memory>

#include "device/presets.h"
#include "device/vcm.h"

namespace memcim {
namespace {

using namespace memcim::literals;

std::unique_ptr<Device> fresh_vcm(double x = 0.0) {
  return std::make_unique<VcmDevice>(presets::vcm_taox(), x);
}

TEST(Variability, NoParamsIsTransparent) {
  VariableDevice d(fresh_vcm(1.0), VariabilityParams{}, Rng(1));
  EXPECT_DOUBLE_EQ(d.gain(), 1.0);
  VcmDevice ref(presets::vcm_taox(), 1.0);
  EXPECT_DOUBLE_EQ(d.current(0.3_V).value(), ref.current(0.3_V).value());
}

TEST(Variability, D2dGainIsSeedDeterministic) {
  VariabilityParams p;
  p.sigma_d2d = 0.3;
  VariableDevice a(fresh_vcm(), p, Rng(42));
  VariableDevice b(fresh_vcm(), p, Rng(42));
  VariableDevice c(fresh_vcm(), p, Rng(43));
  EXPECT_DOUBLE_EQ(a.gain(), b.gain());
  EXPECT_NE(a.gain(), c.gain());
  EXPECT_NE(a.gain(), 1.0);
  EXPECT_GT(a.gain(), 0.0);
}

TEST(Variability, C2cGainRedrawnOnSwitchEvent) {
  VariabilityParams p;
  p.sigma_c2c = 0.2;
  VariableDevice d(fresh_vcm(0.0), p, Rng(7));
  const double g0 = d.gain();
  // Full SET: crosses the 0.5 threshold → one switching event.
  d.apply(2.0_V, 200.0_ps);
  EXPECT_NE(d.gain(), g0);
  const double g1 = d.gain();
  // Sub-threshold hold: no event, no redraw.
  d.apply(0.1_V, 1.0_ns);
  EXPECT_DOUBLE_EQ(d.gain(), g1);
}

TEST(Variability, EnduranceWearOutSticksDevice) {
  VariabilityParams p;
  p.endurance_cycles = 4;
  p.fail_to_lrs = true;
  VariableDevice d(fresh_vcm(0.0), p, Rng(3));
  for (int cycle = 0; cycle < 3; ++cycle) {
    d.apply(2.0_V, 200.0_ps);   // SET
    d.apply(-2.0_V, 200.0_ps);  // RESET
  }
  EXPECT_TRUE(d.failed());
  EXPECT_DOUBLE_EQ(d.state(), 1.0);  // stuck at LRS
  d.apply(-2.0_V, 1.0_ns);           // further writes do nothing
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
  d.set_state(0.0);  // even direct set is refused after failure
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
}

TEST(Variability, FailToHrsOption) {
  VariabilityParams p;
  p.endurance_cycles = 1;
  p.fail_to_lrs = false;
  VariableDevice d(fresh_vcm(0.0), p, Rng(3));
  d.apply(2.0_V, 200.0_ps);
  EXPECT_TRUE(d.failed());
  EXPECT_DOUBLE_EQ(d.state(), 0.0);
}

TEST(Variability, RetentionDriftsTowardMidAtZeroBias) {
  VariabilityParams p;
  p.retention_tau = 1.0_s;
  VariableDevice d(fresh_vcm(1.0), p, Rng(5));
  d.apply(Voltage(0.0), 2.0_s);
  EXPECT_LT(d.state(), 1.0);
  EXPECT_GT(d.state(), 0.5);
  // Long idle: converges to the unreadable mid state.
  d.apply(Voltage(0.0), 100.0_s);
  EXPECT_NEAR(d.state(), 0.5, 1e-6);
}

TEST(Variability, RetentionDoesNotApplyUnderActiveBias) {
  VariabilityParams p;
  p.retention_tau = 1.0_s;
  VariableDevice d(fresh_vcm(1.0), p, Rng(5));
  d.apply(0.5_V, 2.0_s);  // read-level bias, sub-threshold but not ~0
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
}

TEST(Variability, CloneCopiesFailureAndGain) {
  VariabilityParams p;
  p.sigma_d2d = 0.25;
  p.endurance_cycles = 1;
  VariableDevice d(fresh_vcm(0.0), p, Rng(11));
  d.apply(2.0_V, 200.0_ps);
  ASSERT_TRUE(d.failed());
  auto c = d.clone();
  auto* vc = dynamic_cast<VariableDevice*>(c.get());
  ASSERT_NE(vc, nullptr);
  EXPECT_TRUE(vc->failed());
  EXPECT_DOUBLE_EQ(vc->gain(), d.gain());
}

}  // namespace
}  // namespace memcim
