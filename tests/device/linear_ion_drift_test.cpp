#include "device/linear_ion_drift.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

using namespace memcim::literals;

LinearIonDriftParams params_with(WindowFunction w) {
  LinearIonDriftParams p = presets::ion_drift_tio2();
  p.window = w;
  return p;
}

TEST(IonDrift, ResistanceEndpoints) {
  LinearIonDriftDevice hrs(presets::ion_drift_tio2(), 0.0);
  LinearIonDriftDevice lrs(presets::ion_drift_tio2(), 1.0);
  EXPECT_DOUBLE_EQ(hrs.resistance().value(), 16e3);
  EXPECT_DOUBLE_EQ(lrs.resistance().value(), 100.0);
}

TEST(IonDrift, OhmicCurrent) {
  LinearIonDriftDevice d(presets::ion_drift_tio2(), 1.0);
  EXPECT_DOUBLE_EQ(d.current(1.0_V).value(), 1.0 / 100.0);
  EXPECT_DOUBLE_EQ(d.current(-1.0_V).value(), -1.0 / 100.0);
}

TEST(IonDrift, PositiveBiasGrowsState) {
  LinearIonDriftDevice d(params_with(WindowFunction::kNone), 0.1);
  const double x0 = d.state();
  for (int i = 0; i < 100; ++i) d.apply(1.0_V, 1.0_us);
  EXPECT_GT(d.state(), x0);
}

TEST(IonDrift, NegativeBiasShrinksState) {
  LinearIonDriftDevice d(params_with(WindowFunction::kNone), 0.9);
  for (int i = 0; i < 100; ++i) d.apply(-1.0_V, 1.0_us);
  EXPECT_LT(d.state(), 0.9);
}

TEST(IonDrift, StateStaysInUnitInterval) {
  LinearIonDriftDevice d(params_with(WindowFunction::kNone), 0.5);
  for (int i = 0; i < 1000; ++i) d.apply(5.0_V, 10.0_us);
  EXPECT_LE(d.state(), 1.0);
  for (int i = 0; i < 1000; ++i) d.apply(-5.0_V, 10.0_us);
  EXPECT_GE(d.state(), 0.0);
}

TEST(IonDrift, JoglekarWindowShape) {
  LinearIonDriftDevice d(params_with(WindowFunction::kJoglekar));
  EXPECT_DOUBLE_EQ(d.window_value(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.window_value(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.window_value(1.0, 1.0), 0.0);
}

TEST(IonDrift, BiolekWindowIsDirectionDependent) {
  LinearIonDriftDevice d(params_with(WindowFunction::kBiolek));
  // Near x=1: growth (i>0) is blocked, shrink (i<0) is free.
  EXPECT_NEAR(d.window_value(1.0, +1.0), 0.0, 1e-12);
  EXPECT_NEAR(d.window_value(1.0, -1.0), 1.0, 1e-12);
  // Near x=0: the mirror situation.
  EXPECT_NEAR(d.window_value(0.0, -1.0), 0.0, 1e-12);
  EXPECT_NEAR(d.window_value(0.0, +1.0), 1.0, 1e-12);
}

TEST(IonDrift, ProdromakisWindowPeaksAtCenter) {
  auto p = params_with(WindowFunction::kProdromakis);
  p.window_p = 2.0;
  p.window_j = 1.0;
  LinearIonDriftDevice d(p);
  const double center = d.window_value(0.5, 1.0);
  const double edge = d.window_value(0.0, 1.0);
  EXPECT_GT(center, edge);
  EXPECT_GT(center, 0.0);
}

// Parameterized sweep: every window keeps the state inside [0,1] and
// preserves the drift direction.
class WindowSweep : public ::testing::TestWithParam<WindowFunction> {};

TEST_P(WindowSweep, DriftDirectionAndBounds) {
  LinearIonDriftDevice d(params_with(GetParam()), 0.3);
  const double x0 = d.state();
  for (int i = 0; i < 50; ++i) d.apply(1.2_V, 1.0_us);
  EXPECT_GE(d.state(), x0);
  EXPECT_LE(d.state(), 1.0);
  const double x1 = d.state();
  for (int i = 0; i < 50; ++i) d.apply(-1.2_V, 1.0_us);
  EXPECT_LE(d.state(), x1);
  EXPECT_GE(d.state(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowSweep,
                         ::testing::Values(WindowFunction::kNone,
                                           WindowFunction::kJoglekar,
                                           WindowFunction::kBiolek,
                                           WindowFunction::kProdromakis),
                         [](const auto& param_info) {
                           return to_string(param_info.param);
                         });

TEST(IonDrift, EnergyAccumulates) {
  LinearIonDriftDevice d(presets::ion_drift_tio2(), 1.0);
  EXPECT_DOUBLE_EQ(d.energy_dissipated().value(), 0.0);
  d.apply(1.0_V, 1.0_ns);
  // P = V²/R = 1/100 W for 1 ns → 10 pJ.
  EXPECT_NEAR(d.energy_dissipated().value(), 1e-11, 1e-13);
  d.reset_energy();
  EXPECT_DOUBLE_EQ(d.energy_dissipated().value(), 0.0);
}

TEST(IonDrift, SwitchCountIncrementsOnCrossing) {
  LinearIonDriftDevice d(params_with(WindowFunction::kNone), 0.45);
  EXPECT_EQ(d.switch_count(), 0u);
  while (d.state() < 0.5) d.apply(1.0_V, 1.0_us);
  EXPECT_EQ(d.switch_count(), 1u);
}

TEST(IonDrift, CloneIsIndependent) {
  LinearIonDriftDevice d(params_with(WindowFunction::kNone), 0.2);
  auto copy = d.clone();
  d.apply(1.0_V, 100.0_us);
  EXPECT_NE(copy->state(), d.state());
  EXPECT_DOUBLE_EQ(copy->state(), 0.2);
}

TEST(IonDrift, ParameterValidation) {
  LinearIonDriftParams p = presets::ion_drift_tio2();
  p.r_on = Resistance(0.0);
  EXPECT_THROW(LinearIonDriftDevice{p}, Error);
  p = presets::ion_drift_tio2();
  p.r_off = 50.0_ohm;  // < r_on
  EXPECT_THROW(LinearIonDriftDevice{p}, Error);
  p = presets::ion_drift_tio2();
  p.window_p = 0.5;  // must be >= 1
  EXPECT_THROW(LinearIonDriftDevice{p}, Error);
}

TEST(IonDrift, ConductanceChordAtZeroUsesProbe) {
  LinearIonDriftDevice d(presets::ion_drift_tio2(), 1.0);
  EXPECT_NEAR(d.conductance(Voltage(0.0)).value(), 1.0 / 100.0, 1e-9);
}

}  // namespace
}  // namespace memcim
