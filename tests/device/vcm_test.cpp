#include "device/vcm.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

using namespace memcim::literals;

TEST(Vcm, SubThresholdStateFrozen) {
  VcmDevice d(presets::vcm_taox(), 0.3);
  // Non-volatility: days of read-level bias change nothing.
  d.apply(0.5_V, 1.0_s);
  EXPECT_DOUBLE_EQ(d.state(), 0.3);
  d.apply(-0.5_V, 1.0_s);
  EXPECT_DOUBLE_EQ(d.state(), 0.3);
  EXPECT_EQ(d.switching_rate(0.79_V), 0.0);
  EXPECT_EQ(d.switching_rate(-0.79_V), 0.0);
}

TEST(Vcm, FullSetAtWriteVoltageInSwitchTime) {
  const VcmParams p = presets::vcm_taox();
  VcmDevice d(p, 0.0);
  d.apply(p.v_write, p.t_switch);  // one 200 ps pulse at 2 V
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
  EXPECT_EQ(d.switch_count(), 1u);
}

TEST(Vcm, FullResetAtNegativeWriteVoltage) {
  const VcmParams p = presets::vcm_taox();
  VcmDevice d(p, 1.0);
  d.apply(-p.v_write, p.t_switch);
  EXPECT_DOUBLE_EQ(d.state(), 0.0);
}

TEST(Vcm, HalfSelectDisturbIsExponentiallySlow) {
  const VcmParams p = presets::vcm_taox();
  VcmDevice d(p, 0.0);
  // A half-selected cell sees v_write/2 = 1 V (above the 0.8 V
  // threshold, so it *does* creep — the voltage-time dilemma).
  d.apply(p.v_write / 2.0, p.t_switch);
  EXPECT_GT(d.state(), 0.0);
  EXPECT_LT(d.state(), 0.01);  // > 100× slower than a full write
}

TEST(Vcm, KineticsExponentialInOverdrive) {
  VcmDevice d(presets::vcm_taox(), 0.0);
  const double r1 = d.switching_rate(1.5_V);
  const double r2 = d.switching_rate(1.65_V);  // +v0 = one e-fold
  EXPECT_NEAR(r2 / r1, std::exp(1.0), 1e-9);
}

TEST(Vcm, LinearIvWhenNonlinearityZero) {
  VcmDevice d(presets::vcm_taox(), 1.0);
  const double g = d.params().g_on.value();
  EXPECT_NEAR(d.current(0.4_V).value(), g * 0.4, g * 1e-9);
  EXPECT_NEAR(d.current(-0.4_V).value(), -g * 0.4, g * 1e-9);
}

TEST(Vcm, NonlinearIvSuppressesHalfSelectCurrent) {
  VcmParams p = presets::vcm_taox();
  p.nonlinearity = 3.0;  // 1/V
  VcmDevice d(p, 1.0);
  const double i_full = d.current(2.0_V).value();
  const double i_half = d.current(1.0_V).value();
  // Ohmic device: ratio exactly 2; nonlinear: substantially more.
  EXPECT_GT(i_full / i_half, 3.0);
  // Still odd-symmetric.
  EXPECT_DOUBLE_EQ(d.current(-1.0_V).value(), -i_half);
}

TEST(Vcm, StateConductanceInterpolatesLinearly) {
  VcmDevice d(presets::vcm_taox(), 0.5);
  const auto& p = d.params();
  const double expect = 0.5 * (p.g_on.value() + p.g_off.value());
  EXPECT_NEAR(d.state_conductance().value(), expect, 1e-15);
}

TEST(Vcm, CloneAndSetState) {
  VcmDevice d(presets::vcm_taox(), 0.0);
  auto c = d.clone();
  c->set_state(1.0);
  EXPECT_DOUBLE_EQ(d.state(), 0.0);
  EXPECT_DOUBLE_EQ(c->state(), 1.0);
  c->set_state(2.0);  // clamped
  EXPECT_DOUBLE_EQ(c->state(), 1.0);
}

TEST(Vcm, FilamentaryShapeSuppressesPartialConductance) {
  VcmParams p = presets::vcm_taox();
  p.conductance_shape = 8.0;
  VcmDevice half(p, 0.5);
  VcmDevice half_linear(presets::vcm_taox(), 0.5);
  // Linear mix at x=0.5 conducts ~half of G_on; shape-8 keeps the
  // half-formed filament near G_off.
  EXPECT_GT(half_linear.state_conductance().value() /
                half.state_conductance().value(),
            50.0);
  // Endpoints unchanged.
  VcmDevice lrs(p, 1.0);
  EXPECT_DOUBLE_EQ(lrs.state_conductance().value(), p.g_on.value());
}

TEST(Vcm, SnapCompletesTransitionsPastThreshold) {
  const VcmParams p = presets::vcm_taox_logic();  // snap_x = 0.3
  VcmDevice d(p, 0.0);
  // A pulse that would reach x ≈ 0.35 gradually snaps to 1.
  d.apply(p.v_write, p.t_switch * 0.35);
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
  // A pulse below the snap point stays partial.
  VcmDevice e(p, 0.0);
  e.apply(p.v_write, p.t_switch * 0.2);
  EXPECT_NEAR(e.state(), 0.2, 1e-9);
  // Symmetric on RESET: crossing (1 − snap) downward completes to 0.
  VcmDevice f(p, 1.0);
  f.apply(-p.v_write, p.t_switch * 0.35);
  EXPECT_DOUBLE_EQ(f.state(), 0.0);
}

TEST(Vcm, ShapeAndSnapValidation) {
  VcmParams p = presets::vcm_taox();
  p.conductance_shape = 0.5;  // must be >= 1
  EXPECT_THROW(VcmDevice{p}, Error);
  p = presets::vcm_taox();
  p.snap_x = 0.6;  // must be < 0.5
  EXPECT_THROW(VcmDevice{p}, Error);
}

TEST(Vcm, HfoxPresetIsSlowerThanTaox) {
  EXPECT_GT(presets::vcm_hfox().t_switch.value(),
            presets::vcm_taox().t_switch.value());
}

TEST(Vcm, ParameterValidation) {
  VcmParams p = presets::vcm_taox();
  p.v_th_set = Voltage(-0.1);
  EXPECT_THROW(VcmDevice{p}, Error);
  p = presets::vcm_taox();
  p.v_write = 0.5_V;  // below threshold
  EXPECT_THROW(VcmDevice{p}, Error);
  p = presets::vcm_taox();
  p.g_off = Conductance(0.0);
  EXPECT_THROW(VcmDevice{p}, Error);
}

}  // namespace
}  // namespace memcim
