#include "device/pcm.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace memcim {
namespace {

using namespace memcim::literals;

TEST(Pcm, SetPulseCrystallizes) {
  PcmDevice d(PcmParams{}, 0.0);
  // 1.5 V is above the ovonic threshold (so the amorphous cell
  // conducts and heats) and inside the crystallization power zone.
  d.apply(1.5_V, 100.0_ns);  // one t_set-long pulse
  EXPECT_TRUE(d.is_lrs());
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
}

TEST(Pcm, ResetPulseMeltQuenches) {
  PcmDevice d(PcmParams{}, 1.0);
  d.apply(3.0_V, 1.0_ns);  // melt power, quench-fast
  EXPECT_FALSE(d.is_lrs());
  EXPECT_DOUBLE_EQ(d.state(), 0.0);
}

TEST(Pcm, UnipolarSwitchingIgnoresPolarity) {
  // Unlike VCM/ECM, negative pulses do exactly what positive ones do.
  PcmDevice set_neg(PcmParams{}, 0.0);
  set_neg.apply(-1.5_V, 100.0_ns);
  EXPECT_TRUE(set_neg.is_lrs());
  PcmDevice reset_neg(PcmParams{}, 1.0);
  reset_neg.apply(-3.0_V, 1.0_ns);
  EXPECT_FALSE(reset_neg.is_lrs());
}

TEST(Pcm, ReadBiasDoesNotDisturb) {
  PcmDevice lrs(PcmParams{}, 1.0);
  PcmDevice hrs(PcmParams{}, 0.0);
  for (int k = 0; k < 1000; ++k) {
    lrs.apply(0.3_V, 1.0_us);
    hrs.apply(0.3_V, 1.0_us);
  }
  EXPECT_DOUBLE_EQ(lrs.state(), 1.0);
  EXPECT_DOUBLE_EQ(hrs.state(), 0.0);
}

TEST(Pcm, OvonicThresholdSnapsAmorphousConductive) {
  PcmDevice d(PcmParams{}, 0.0);
  const double g_low = d.effective_conductance(0.5_V).value();
  const double g_high = d.effective_conductance(1.3_V).value();
  EXPECT_GT(g_high / g_low, 50.0);
  EXPECT_DOUBLE_EQ(g_high, d.params().g_on.value());
  // Crystalline cells conduct the same below and above threshold.
  PcmDevice c(PcmParams{}, 1.0);
  EXPECT_NEAR(c.effective_conductance(0.5_V).value(),
              c.effective_conductance(1.3_V).value(), 1e-9);
}

TEST(Pcm, AmorphousResistanceDriftsUpward) {
  PcmDevice d(PcmParams{}, 0.0);
  const double g_young = d.effective_conductance(0.1_V).value();
  // Age the cell 1 s at read bias (sub-heating).
  for (int k = 0; k < 100; ++k) d.apply(0.1_V, 10.0_ms);
  const double g_old = d.effective_conductance(0.1_V).value();
  EXPECT_LT(g_old, g_young);
  // ν = 0.05 over 6 decades: factor (1e6)^0.05 ≈ 2.
  EXPECT_NEAR(g_young / g_old, std::pow(1e6, 0.05), 0.1);
  EXPECT_GT(d.amorphous_age().value(), 0.99);
}

TEST(Pcm, MeltRestartsDriftClock) {
  PcmDevice d(PcmParams{}, 0.0);
  for (int k = 0; k < 100; ++k) d.apply(0.1_V, 10.0_ms);  // age 1 s
  EXPECT_GT(d.amorphous_age().value(), 0.99);
  d.apply(3.0_V, 1.0_ns);  // re-melt
  EXPECT_NEAR(d.amorphous_age().value(), 1e-6, 1e-12);
}

TEST(Pcm, SetSlowerThanReset) {
  // The famous PCM asymmetry: crystallization is ~100× slower than
  // melt-quench.
  const PcmParams p;
  EXPECT_GT(p.t_set.value() / p.t_reset.value(), 50.0);
  PcmDevice d(PcmParams{}, 0.0);
  d.apply(1.5_V, 10.0_ns);  // a RESET-length pulse cannot SET
  EXPECT_FALSE(d.is_lrs());
}

TEST(Pcm, CloneAndValidation) {
  PcmDevice d(PcmParams{}, 0.7);
  auto c = d.clone();
  d.set_state(0.0);
  EXPECT_DOUBLE_EQ(c->state(), 0.7);
  PcmParams bad;
  bad.p_melt = Power(1e-6);  // below crystallize
  EXPECT_THROW(PcmDevice{bad}, Error);
  bad = PcmParams{};
  bad.g_off = Conductance(0.0);
  EXPECT_THROW(PcmDevice{bad}, Error);
}

}  // namespace
}  // namespace memcim
