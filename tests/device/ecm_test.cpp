#include "device/ecm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "device/presets.h"

namespace memcim {
namespace {

using namespace memcim::literals;

TEST(Ecm, ExponentialGapConductance) {
  EcmDevice d(presets::ecm_ag(), 0.5);
  const auto& p = d.params();
  // At half filament the conductance is the geometric mean.
  const double geo = std::sqrt(p.g_on.value() * p.g_off.value());
  EXPECT_NEAR(d.state_conductance().value(), geo, geo * 1e-9);
}

TEST(Ecm, ConductanceEndpoints) {
  EcmDevice hrs(presets::ecm_ag(), 0.0);
  EcmDevice lrs(presets::ecm_ag(), 1.0);
  EXPECT_NEAR(hrs.state_conductance().value(), 1.0 / 100e6, 1e-12);
  EXPECT_NEAR(lrs.state_conductance().value(), 1.0 / 25e3, 1e-9);
}

TEST(Ecm, FullSetAtWriteVoltage) {
  const EcmParams p = presets::ecm_ag();
  EcmDevice d(p, 0.0);
  d.apply(p.v_write, p.t_switch);
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
}

TEST(Ecm, ResetIsSlowerByAsymmetryFactor) {
  const EcmParams p = presets::ecm_ag();
  EcmDevice d(p, 1.0);
  d.apply(-p.v_write, p.t_switch);
  // After one SET-duration pulse only 1/asymmetry of the filament is gone.
  EXPECT_NEAR(d.state(), 1.0 - 1.0 / p.reset_asymmetry, 1e-9);
  d.apply(-p.v_write, p.t_switch * (p.reset_asymmetry - 1.0));
  EXPECT_NEAR(d.state(), 0.0, 1e-12);
}

TEST(Ecm, SubThresholdFrozen) {
  EcmDevice d(presets::ecm_ag(), 0.4);
  d.apply(0.2_V, 1.0_s);
  d.apply(-0.1_V, 1.0_s);
  EXPECT_DOUBLE_EQ(d.state(), 0.4);
}

TEST(Ecm, SinhKineticsStronglyNonlinear) {
  EcmDevice d(presets::ecm_ag(), 0.0);
  const EcmParams& p = d.params();
  const double r_half = d.growth_rate(p.v_write / 2.0);
  const double r_full = d.growth_rate(p.v_write);
  // sinh kinetics: doubling voltage multiplies the rate far more than 2×.
  EXPECT_GT(r_full / r_half, 50.0);
}

TEST(Ecm, GrowthRateSignConvention) {
  EcmDevice d(presets::ecm_ag(), 0.5);
  EXPECT_GT(d.growth_rate(1.0_V), 0.0);
  EXPECT_LT(d.growth_rate(-1.0_V), 0.0);
  EXPECT_EQ(d.growth_rate(0.0_V), 0.0);
}

TEST(Ecm, RateNormalizationAtWriteVoltage) {
  EcmDevice d(presets::ecm_ag(), 0.0);
  const EcmParams& p = d.params();
  EXPECT_NEAR(d.growth_rate(p.v_write) * p.t_switch.value(), 1.0, 1e-9);
}

TEST(Ecm, CurrentFollowsStateConductance) {
  EcmDevice d(presets::ecm_ag(), 1.0);
  EXPECT_NEAR(d.current(0.1_V).value(), 0.1 / 25e3, 1e-12);
}

TEST(Ecm, ParameterValidation) {
  EcmParams p = presets::ecm_ag();
  p.reset_asymmetry = 0.5;
  EXPECT_THROW(EcmDevice{p}, Error);
  p = presets::ecm_ag();
  p.v_th_reset = 0.1_V;  // must be negative
  EXPECT_THROW(EcmDevice{p}, Error);
}

TEST(Ecm, CloneIndependence) {
  EcmDevice d(presets::ecm_ag(), 0.0);
  auto c = d.clone();
  d.apply(1.0_V, 10.0_ns);
  EXPECT_DOUBLE_EQ(c->state(), 0.0);
  EXPECT_DOUBLE_EQ(d.state(), 1.0);
}

}  // namespace
}  // namespace memcim
