// FabricFaultInjector on live fabrics: stuck-at pinning, write vetoes,
// read disturbs, and the bit-identical rate-0 guarantee.
#include <gtest/gtest.h>

#include "device/presets.h"
#include "fault/fabric_faults.h"
#include "logic/adder.h"
#include "logic/crs_fabric.h"
#include "logic/ideal_fabric.h"

namespace memcim {
namespace {

TEST(FabricFaults, StuckRegisterPinsThroughSet) {
  FaultPlan plan(4, 1);
  plan.arm({FaultKind::kStuckAtLrs, 1.0, 1.0, 0.0});  // every reg stuck 1
  FabricFaultInjector injector(std::move(plan));
  IdealFabric fabric;
  fabric.attach_faults(&injector);
  const Reg r = fabric.alloc();
  fabric.set(r, false);
  EXPECT_TRUE(fabric.read(r));  // the write could not move it
}

TEST(FabricFaults, StuckAtHrsReadsZero) {
  FaultPlan plan(4, 2);
  plan.arm({FaultKind::kStuckAtHrs, 1.0, 1.0, 0.0});
  FabricFaultInjector injector(std::move(plan));
  CrsFabric fabric(presets::crs_cell());
  fabric.attach_faults(&injector);
  const Reg r = fabric.alloc();
  fabric.set(r, true);
  EXPECT_FALSE(fabric.read(r));
}

TEST(FabricFaults, CertainWriteFailVetoesEverySet) {
  FaultPlan plan(4, 3);
  plan.arm({FaultKind::kWriteFail, 1.0, 1.0, 0.0});  // event_prob 1
  FabricFaultInjector injector(std::move(plan));
  IdealFabric fabric;
  fabric.attach_faults(&injector);
  const Reg r = fabric.alloc();
  fabric.set(r, true);
  EXPECT_FALSE(fabric.read(r));  // power-on value survives
  EXPECT_GT(injector.vetoed_writes(), 0u);
}

TEST(FabricFaults, CertainReadDisturbFlipsEveryRead) {
  FaultPlan plan(4, 4);
  plan.arm({FaultKind::kReadDisturb, 1.0, 1.0, 0.0});
  FabricFaultInjector injector(std::move(plan));
  IdealFabric fabric;
  fabric.attach_faults(&injector);
  const Reg r = fabric.alloc();
  fabric.set(r, true);
  EXPECT_FALSE(fabric.read(r));
  EXPECT_EQ(injector.disturbed_reads(), 1u);
}

TEST(FabricFaults, EmptyPlanIsBitIdenticalToNoHooks) {
  // Rate 0 with the injector attached must reproduce the bare fabric
  // exactly — the acceptance criterion behind every 0.0 campaign row.
  for (std::uint64_t a = 0; a < 16; ++a)
    for (std::uint64_t b = 0; b < 16; ++b) {
      IdealFabric bare;
      const std::uint64_t expect = add_integers(bare, a, b, 4);

      FabricFaultInjector injector(FaultPlan(1024, 77));
      IdealFabric hooked;
      hooked.attach_faults(&injector);
      EXPECT_EQ(add_integers(hooked, a, b, 4), expect) << a << "+" << b;
      EXPECT_EQ(hooked.steps(), bare.steps());
      EXPECT_EQ(hooked.writes(), bare.writes());
    }
}

TEST(FabricFaults, StuckSumBitCorruptsAddition) {
  // Pin one low register (the a-operand word) and check the ripple
  // adder actually computes with the corrupted operand.
  FaultPlan plan(1, 9);
  plan.arm({FaultKind::kStuckAtLrs, 1.0, 1.0, 0.0});  // reg 0 stuck 1
  FabricFaultInjector injector(std::move(plan));
  IdealFabric fabric;
  fabric.attach_faults(&injector);
  // a = 0 loads regs {0..3} with 0, but reg 0 is pinned to 1 → a = 1.
  EXPECT_EQ(add_integers(fabric, 0, 2, 4), 3u);
}

}  // namespace
}  // namespace memcim
