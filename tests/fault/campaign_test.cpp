// Campaign-level acceptance: the rate-0 rows are 100% clean, ECC
// corrects every single-bit fault and flags every double-bit fault,
// and the whole sweep is reproducible bit-for-bit — across runs and
// across thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "fault/campaign.h"

namespace memcim {
namespace {

/// A scaled-down sweep the full suite can afford to run repeatedly.
CampaignConfig small_config() {
  CampaignConfig config;
  config.seed = 0x5EED;
  config.rates = {0.0, 0.02};
  config.ecc_words = 64;
  config.adder_trials = 12;
  config.adder_bits = 6;
  config.cam_rows = 16;
  config.cam_bits = 12;
  config.cam_searches = 24;
  config.readout_size = 4;
  config.dna_bases = 96;
  config.dna_k = 8;
  config.dna_reads = 16;
  config.add_ops = 32;
  config.add_width = 8;
  config.add_adders = 8;
  config.noc_mesh = 3;
  config.noc_payload_bits = 8;
  config.noc_packets = 32;
  return config;
}

bool same_tally(const CampaignTally& a, const CampaignTally& b) {
  return a.target == b.target && a.rate == b.rate &&
         a.diff.trials == b.diff.trials && a.diff.clean == b.diff.clean &&
         a.diff.corrected == b.diff.corrected &&
         a.diff.detected == b.diff.detected &&
         a.diff.silent == b.diff.silent &&
         a.armed_faults == b.armed_faults &&
         a.single_bit_injected == b.single_bit_injected &&
         a.single_bit_corrected == b.single_bit_corrected &&
         a.double_bit_injected == b.double_bit_injected &&
         a.double_bit_detected == b.double_bit_detected;
}

TEST(FaultCampaign, ZeroRateRowsAreAllClean) {
  const auto sweep = run_full_campaign(small_config());
  std::size_t zero_rows = 0;
  for (const CampaignTally& t : sweep) {
    if (t.rate != 0.0) continue;
    ++zero_rows;
    EXPECT_EQ(t.armed_faults, 0u) << t.target;
    EXPECT_EQ(t.diff.silent, 0u) << t.target;
    EXPECT_EQ(t.diff.detected, 0u) << t.target;
    EXPECT_EQ(t.diff.corrected, 0u) << t.target;
    EXPECT_EQ(t.diff.clean, t.diff.trials) << t.target;
    EXPECT_GT(t.diff.trials, 0u) << t.target;
  }
  EXPECT_EQ(zero_rows, 9u);  // every target contributes a golden row
}

TEST(FaultCampaign, EccCorrectsAllSinglesAndFlagsAllDoubles) {
  CampaignConfig config = small_config();
  config.ecc_words = 512;
  std::uint64_t singles = 0, doubles = 0;
  // 0.2 per-site arming makes multi-bit words common: mean effective
  // flips per 13-bit word ≈ 1.3.
  for (const double rate : {0.05, 0.1, 0.2}) {
    const CampaignTally t = run_ecc_campaign(config, rate);
    EXPECT_EQ(t.single_bit_corrected, t.single_bit_injected) << rate;
    EXPECT_EQ(t.double_bit_detected, t.double_bit_injected) << rate;
    singles += t.single_bit_injected;
    doubles += t.double_bit_injected;
  }
  // The sweep must actually have exercised both classes.
  EXPECT_GT(singles, 50u);
  EXPECT_GT(doubles, 10u);
}

TEST(FaultCampaign, FaultsActuallyBite) {
  // At a heavy rate the sweep must produce divergences — otherwise the
  // injection plumbing is a no-op and the zero-rate test proves nothing.
  CampaignConfig config = small_config();
  config.rates = {0.2};
  const auto sweep = run_full_campaign(config);
  std::uint64_t armed = 0, non_clean = 0;
  for (const CampaignTally& t : sweep) {
    armed += t.armed_faults;
    non_clean += t.diff.silent + t.diff.detected + t.diff.corrected;
  }
  EXPECT_GT(armed, 0u);
  EXPECT_GT(non_clean, 0u);
}

TEST(FaultCampaign, NocLinkCampaignDetectsStuckWires) {
  CampaignConfig config = small_config();
  // Rate 0: the mesh is clean and every delivery is a clean trial.
  const CampaignTally clean = run_noc_link_campaign(config, 0.0);
  EXPECT_EQ(clean.target, "noc_link");
  EXPECT_EQ(clean.armed_faults, 0u);
  EXPECT_EQ(clean.diff.trials, config.noc_packets);
  EXPECT_EQ(clean.diff.clean, clean.diff.trials);
  // A heavy rate arms stuck wires that corrupt traffic; a single stuck
  // wire is parity-detected, so detections must dominate. Silent cases
  // (even flip counts from multiple stuck wires) are possible but the
  // plumbing must at least see corruption.
  const CampaignTally hot = run_noc_link_campaign(config, 0.25);
  EXPECT_GT(hot.armed_faults, 0u);
  EXPECT_EQ(hot.diff.trials, config.noc_packets);
  EXPECT_GT(hot.diff.detected, 0u);
  EXPECT_LT(hot.diff.clean, hot.diff.trials);
}

TEST(FaultCampaign, SweepIsReproducibleAcrossRuns) {
  const CampaignConfig config = small_config();
  const auto a = run_full_campaign(config);
  const auto b = run_full_campaign(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_tally(a[i], b[i])) << a[i].target << " @ " << a[i].rate;
}

TEST(FaultCampaign, SweepIsIndependentOfThreadCount) {
  const CampaignConfig config = small_config();
  const std::size_t before = parallel_threads();
  set_parallel_threads(1);
  const auto serial = run_full_campaign(config);
  set_parallel_threads(4);
  const auto threaded = run_full_campaign(config);
  set_parallel_threads(before);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_TRUE(same_tally(serial[i], threaded[i]))
        << serial[i].target << " @ " << serial[i].rate;
}

TEST(FaultCampaign, JsonReportsAcceptanceVerdict) {
  const CampaignConfig config = small_config();
  const auto sweep = run_full_campaign(config);
  const std::string js = campaign_json(config, sweep);
  EXPECT_NE(js.find("\"bench\": \"fault_campaign\""), std::string::npos);
  EXPECT_NE(js.find("\"zero_rate_silent\": 0"), std::string::npos);
  EXPECT_NE(js.find("\"pass\": true"), std::string::npos);
  // One sweep entry per (target, rate) pair.
  std::size_t entries = 0;
  for (std::size_t pos = js.find("\"target\""); pos != std::string::npos;
       pos = js.find("\"target\"", pos + 1))
    ++entries;
  EXPECT_EQ(entries, sweep.size());
}

}  // namespace
}  // namespace memcim
