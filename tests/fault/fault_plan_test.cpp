// FaultPlan: seeded reproducibility, arming statistics and per-site
// event streams — the properties every campaign result rests on.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_model.h"

namespace memcim {
namespace {

TEST(FaultPlan, ZeroRateArmsNothing) {
  const FaultPlan plan = FaultPlan::draw(
      1024, 7, {{FaultKind::kStuckAtLrs, 0.0, 1.0, 0.0},
                {FaultKind::kWriteFail, 0.0, 1.0, 0.0}});
  EXPECT_EQ(plan.armed_count(), 0u);
  for (std::size_t site = 0; site < 1024; site += 97) {
    EXPECT_FALSE(plan.stuck_bit(site).has_value());
    EXPECT_EQ(plan.drift_at(site), 0.0);
  }
}

TEST(FaultPlan, SameSeedSamePlan) {
  const std::vector<FaultSpec> specs{{FaultKind::kStuckAtLrs, 0.05, 1.0, 0.0},
                                     {FaultKind::kStuckAtHrs, 0.05, 1.0, 0.0},
                                     {FaultKind::kReadDisturb, 0.02, 0.5, 0.0}};
  const FaultPlan a = FaultPlan::draw(4096, 1234, specs);
  const FaultPlan b = FaultPlan::draw(4096, 1234, specs);
  ASSERT_EQ(a.armed_count(), b.armed_count());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (std::size_t i = 0; i < a.armed_count(); ++i) {
    EXPECT_EQ(a.armed()[i].site, b.armed()[i].site);
    EXPECT_EQ(a.armed()[i].kind, b.armed()[i].kind);
  }
}

TEST(FaultPlan, DifferentSeedDifferentPlan) {
  const std::vector<FaultSpec> specs{{FaultKind::kStuckAtLrs, 0.05, 1.0, 0.0}};
  const FaultPlan a = FaultPlan::draw(4096, 1, specs);
  const FaultPlan b = FaultPlan::draw(4096, 2, specs);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(FaultPlan, ArmingRateIsStatisticallyPlausible) {
  const FaultPlan plan =
      FaultPlan::draw(20000, 99, {{FaultKind::kStuckAtLrs, 0.1, 1.0, 0.0}});
  // Binomial(20000, 0.1): mean 2000, σ ≈ 42.  ±6σ keeps the test
  // deterministic-robust while still catching a broken Bernoulli.
  EXPECT_GT(plan.armed_count(), 1750u);
  EXPECT_LT(plan.armed_count(), 2250u);
}

TEST(FaultPlan, StuckBitMatchesKind) {
  FaultPlan plan(4096, 5);
  plan.arm({FaultKind::kStuckAtLrs, 0.1, 1.0, 0.0});
  ASSERT_GT(plan.armed_count(), 0u);
  for (const ArmedFault& f : plan.armed()) {
    const auto stuck = plan.stuck_bit(f.site);
    ASSERT_TRUE(stuck.has_value());
    EXPECT_TRUE(*stuck);  // LRS reads logic 1
  }
}

TEST(FaultPlan, EventStreamsArePerSiteDeterministic) {
  const std::vector<FaultSpec> specs{{FaultKind::kReadDisturb, 1.0, 0.5, 0.0}};
  FaultPlan a = FaultPlan::draw(8, 42, specs);
  FaultPlan b = FaultPlan::draw(8, 42, specs);
  // Interleave site queries differently in the two plans: per-site
  // outcomes must still agree event-for-event (thread-order freedom).
  std::vector<std::vector<bool>> seq_a(8), seq_b(8);
  for (int round = 0; round < 16; ++round)
    for (std::size_t site = 0; site < 8; ++site)
      seq_a[site].push_back(a.read_disturbed(site));
  for (std::size_t site = 8; site-- > 0;)
    for (int round = 0; round < 16; ++round)
      seq_b[site].push_back(b.read_disturbed(site));
  EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultPlan, SitesOutsidePopulationAreFaultFree) {
  FaultPlan plan = FaultPlan::draw(16, 3, {{FaultKind::kStuckAtLrs, 1.0, 1.0, 0.0},
                                           {FaultKind::kWriteFail, 1.0, 1.0, 0.0}});
  EXPECT_FALSE(plan.stuck_bit(1000).has_value());
  EXPECT_FALSE(plan.write_fails(1000));
  EXPECT_FALSE(plan.read_disturbed(1000));
}

TEST(FaultPlan, LaterStuckSpecWinsOnConflict) {
  FaultPlan plan(64, 11);
  plan.arm({FaultKind::kStuckAtLrs, 1.0, 1.0, 0.0});
  plan.arm({FaultKind::kStuckAtHrs, 1.0, 1.0, 0.0});
  for (std::size_t site = 0; site < 64; ++site) {
    const auto stuck = plan.stuck_bit(site);
    ASSERT_TRUE(stuck.has_value());
    EXPECT_FALSE(*stuck);  // the later HRS arm overrides
  }
}

}  // namespace
}  // namespace memcim
