// The golden-model differential harness: prefix replay, divergence
// shrinking and whole-run classification.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "device/presets.h"
#include "fault/fabric_faults.h"
#include "fault/golden.h"
#include "logic/crs_fabric.h"
#include "logic/ideal_fabric.h"

namespace memcim {
namespace {

/// Subject factory whose fabrics share one stuck-at plan; the injectors
/// are kept alive here because fabrics do not own their hooks.
class StuckFactory {
 public:
  StuckFactory(std::size_t site, bool stuck_one)
      : site_(site), stuck_one_(stuck_one) {}

  [[nodiscard]] FabricFactory factory() {
    return [this] {
      auto fabric = std::make_unique<IdealFabric>();
      injectors_.push_back(std::make_unique<PinOne>(site_, stuck_one_));
      fabric->attach_faults(injectors_.back().get());
      return std::unique_ptr<Fabric>(std::move(fabric));
    };
  }

 private:
  /// Minimal hooks: exactly one register pinned, no transients.
  class PinOne final : public FabricFaultHooks {
   public:
    PinOne(Reg site, bool value) : site_(site), value_(value) {}
    [[nodiscard]] std::optional<bool> stuck_value(Reg r) const override {
      return r == site_ ? std::optional<bool>(value_) : std::nullopt;
    }
    [[nodiscard]] bool write_fails(Reg) override { return false; }
    [[nodiscard]] bool disturb_read(Reg, bool sensed) override {
      return sensed;
    }

   private:
    Reg site_;
    bool value_;
  };

  std::size_t site_;
  bool stuck_one_;
  std::vector<std::unique_ptr<PinOne>> injectors_;
};

FabricFactory ideal_factory() {
  return [] { return std::unique_ptr<Fabric>(std::make_unique<IdealFabric>()); };
}

CimProgram three_reg_program() {
  CimProgram p;
  p.inputs = 1;
  p.registers = 3;
  p.instructions = {{CimOp::kSetTrue, 1, 0},
                    {CimOp::kImply, 1, 2}};
  p.output = 2;
  return p;
}

TEST(GoldenDiff, IdenticalFabricsNeverDiverge) {
  const CimProgram p = three_reg_program();
  EXPECT_EQ(minimal_failing_prefix(p, {false}, ideal_factory(),
                                   ideal_factory()),
            std::nullopt);
}

TEST(GoldenDiff, ShrinkerFindsTheFirstInstructionThatMatters) {
  const CimProgram p = three_reg_program();
  // Register 1 stuck at 0: the input load (prefix 0) agrees with the
  // golden run (power-on 0), instruction 0 (SetTrue r1) is the first
  // to touch the broken device.
  StuckFactory subject(1, false);
  const auto prefix =
      minimal_failing_prefix(p, {false}, ideal_factory(), subject.factory());
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*prefix, 1u);
}

TEST(GoldenDiff, ShrinkerSeesDivergenceLaterRemasked) {
  // SetTrue r1 then SetFalse r1: the final states agree (both 0), but
  // the intermediate state after instruction 0 does not — the linear
  // scan must still report prefix 1.
  CimProgram p;
  p.inputs = 1;
  p.registers = 2;
  p.instructions = {{CimOp::kSetTrue, 1, 0}, {CimOp::kSetFalse, 1, 0}};
  p.output = 1;
  StuckFactory subject(1, false);
  const auto prefix =
      minimal_failing_prefix(p, {false}, ideal_factory(), subject.factory());
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*prefix, 1u);

  // …while the whole-run classification calls it clean: the fault is
  // masked at the output.
  IdealFabric golden;
  FabricFaultInjector injector(FaultPlan(2, 0));
  IdealFabric subject_fabric;  // empty plan: equivalent run
  subject_fabric.attach_faults(&injector);
  EXPECT_EQ(diff_program_run(p, {false}, golden, subject_fabric),
            DiffOutcome::kClean);
}

TEST(GoldenDiff, InputLoadDivergenceIsPrefixZero) {
  const CimProgram p = three_reg_program();
  // Register 0 (the input register) stuck at 1 with input 0: the load
  // itself already diverges → minimal prefix 0.
  StuckFactory subject(0, true);
  const auto prefix =
      minimal_failing_prefix(p, {false}, ideal_factory(), subject.factory());
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*prefix, 0u);
}

TEST(GoldenDiff, PrefixReplayOfFullProgramMatchesRunProgram) {
  Rng rng(31);
  CimProgram p;
  p.inputs = 2;
  p.registers = 5;
  for (int i = 0; i < 20; ++i) {
    CimInstruction inst;
    const double roll = rng.uniform();
    const auto pick = [&] {
      return static_cast<Reg>(rng.uniform_int(0, 4));
    };
    if (roll < 0.25) {
      inst.op = CimOp::kSetTrue;
      inst.a = pick();
    } else if (roll < 0.5) {
      inst.op = CimOp::kSetFalse;
      inst.a = pick();
    } else {
      inst.op = CimOp::kImply;
      inst.a = pick();
      do { inst.b = pick(); } while (inst.b == inst.a);
    }
    p.instructions.push_back(inst);
  }
  p.output = 3;
  for (std::uint64_t in = 0; in < 4; ++in) {
    const std::vector<bool> inputs{bool(in & 1), bool(in & 2)};
    IdealFabric replay;
    const std::vector<bool> state =
        run_program_prefix(p, replay, inputs, p.length());
    IdealFabric direct;
    EXPECT_EQ(state[p.output], run_program(p, direct, inputs)) << in;
  }
}

TEST(GoldenDiff, CrsBackendIsCleanAgainstIdealGolden) {
  const CimProgram p = three_reg_program();
  for (const bool in : {false, true}) {
    IdealFabric golden;
    CrsFabric subject(presets::crs_cell());
    EXPECT_EQ(diff_program_run(p, {in}, golden, subject),
              DiffOutcome::kClean);
  }
}

TEST(GoldenDiff, TallyBooksEveryOutcomeOnce) {
  DiffTally tally;
  tally.add(DiffOutcome::kClean);
  tally.add(DiffOutcome::kCorrected);
  tally.add(DiffOutcome::kDetected);
  tally.add(DiffOutcome::kSilent);
  tally.add(DiffOutcome::kSilent);
  EXPECT_EQ(tally.trials, 5u);
  EXPECT_EQ(tally.clean, 1u);
  EXPECT_EQ(tally.corrected, 1u);
  EXPECT_EQ(tally.detected, 1u);
  EXPECT_EQ(tally.silent, 2u);
  EXPECT_DOUBLE_EQ(tally.silent_fraction(), 0.4);

  DiffTally other;
  other.add(DiffOutcome::kClean);
  tally.merge(other);
  EXPECT_EQ(tally.trials, 6u);
  EXPECT_EQ(tally.clean, 2u);
}

}  // namespace
}  // namespace memcim
