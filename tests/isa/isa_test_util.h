// Shared helpers for the ISA suite: a seeded random-program generator
// (ISA-valid by construction) and structural program equality.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "logic/program.h"

namespace memcim::isa::testutil {

/// A random but always-valid program: `inputs` operands, `scratch`
/// extra registers, `length` instructions; with `multi_output` the
/// program sometimes declares a multi-register result list.
inline CimProgram random_program(std::size_t inputs, std::size_t scratch,
                                 std::size_t length, Rng& rng,
                                 bool multi_output = false) {
  CimProgram p;
  p.inputs = inputs;
  p.registers = inputs + scratch;
  const auto pick_reg = [&] {
    return static_cast<Reg>(
        rng.uniform_int(0, static_cast<std::int64_t>(p.registers - 1)));
  };
  for (std::size_t i = 0; i < length; ++i) {
    CimInstruction inst;
    // A 1-register window cannot host a two-operand IMP.
    const double roll = p.registers < 2 ? rng.uniform(0.0, 0.4) : rng.uniform();
    if (roll < 0.2) {
      inst.op = CimOp::kSetFalse;
      inst.a = pick_reg();
    } else if (roll < 0.4) {
      inst.op = CimOp::kSetTrue;
      inst.a = pick_reg();
    } else {
      inst.op = CimOp::kImply;
      inst.a = pick_reg();
      do {
        inst.b = pick_reg();
      } while (inst.b == inst.a);
    }
    p.instructions.push_back(inst);
  }
  p.output = pick_reg();
  if (multi_output && rng.uniform() < 0.5) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t i = 0; i < n; ++i) p.outputs.push_back(pick_reg());
    p.output = p.outputs.front();
  }
  return p;
}

inline void expect_programs_equal(const CimProgram& a, const CimProgram& b) {
  EXPECT_EQ(a.registers, b.registers);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.outputs, b.outputs);
  ASSERT_EQ(a.instructions.size(), b.instructions.size());
  for (std::size_t i = 0; i < a.instructions.size(); ++i) {
    EXPECT_EQ(a.instructions[i].op, b.instructions[i].op) << "instruction " << i;
    EXPECT_EQ(a.instructions[i].a, b.instructions[i].a) << "instruction " << i;
    EXPECT_EQ(a.instructions[i].b, b.instructions[i].b) << "instruction " << i;
  }
}

}  // namespace memcim::isa::testutil
