// Text format: disassemble/assemble round-trips every valid program
// (seeded property, 200+ programs), hand-written listings parse with
// comments and flexible whitespace, and malformed input fails with a
// line-numbered diagnostic.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "isa/assembler.h"
#include "isa_test_util.h"

namespace memcim::isa {
namespace {

using testutil::expect_programs_equal;
using testutil::random_program;

TEST(IsaAssembler, RoundTripsRandomProgramsExactly) {
  Rng rng(0xA55Eull);
  for (int trial = 0; trial < 200; ++trial) {
    const auto inputs = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const auto scratch = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const auto length = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const CimProgram p = random_program(inputs, scratch, length, rng,
                                        /*multi_output=*/true);
    expect_programs_equal(p, assemble(disassemble(p)));
  }
}

TEST(IsaAssembler, ParsesHandWrittenListing) {
  const std::string text =
      "; 2-input AND from the gate library\n"
      ".inputs 2            ; directives in any order\n"
      "\n"
      ".registers 7\n"
      ".output r6\n"
      "  SET0 r2\n"
      "\tIMP r0   r2  ; r2 <- !r0 | r2\n"
      "SET1 r6\n";
  const CimProgram p = assemble(text);
  EXPECT_EQ(p.registers, 7u);
  EXPECT_EQ(p.inputs, 2u);
  EXPECT_EQ(p.output, 6u);
  EXPECT_TRUE(p.outputs.empty());
  ASSERT_EQ(p.instructions.size(), 3u);
  EXPECT_EQ(p.instructions[0].op, CimOp::kSetFalse);
  EXPECT_EQ(p.instructions[0].a, 2u);
  EXPECT_EQ(p.instructions[1].op, CimOp::kImply);
  EXPECT_EQ(p.instructions[1].a, 0u);
  EXPECT_EQ(p.instructions[1].b, 2u);
  EXPECT_EQ(p.instructions[2].op, CimOp::kSetTrue);
  EXPECT_EQ(p.instructions[2].a, 6u);
}

TEST(IsaAssembler, ParsesMultiOutputDirective) {
  const CimProgram p = assemble(
      ".registers 5\n.inputs 2\n.outputs r2 r3 r4\nSET1 r2\n");
  EXPECT_EQ(p.outputs, (std::vector<Reg>{2, 3, 4}));
  EXPECT_EQ(p.output, 2u);
}

TEST(IsaAssembler, RejectsMalformedListings) {
  // Missing .registers / missing .output.
  EXPECT_THROW((void)assemble(".inputs 1\n.output r0\n"), Error);
  EXPECT_THROW((void)assemble(".registers 4\n.inputs 1\n"), Error);
  // Directive after the first instruction.
  EXPECT_THROW(
      (void)assemble(".registers 4\n.output r0\nSET0 r1\n.inputs 1\n"), Error);
  // Unknown directive / mnemonic.
  EXPECT_THROW((void)assemble(".window 4\n.output r0\n"), Error);
  EXPECT_THROW((void)assemble(".registers 4\n.output r0\nNAND r0 r1\n"),
               Error);
  // Operand arity and register syntax.
  EXPECT_THROW((void)assemble(".registers 4\n.output r0\nSET0 r1 r2\n"),
               Error);
  EXPECT_THROW((void)assemble(".registers 4\n.output r0\nIMP r1\n"), Error);
  EXPECT_THROW((void)assemble(".registers 4\n.output r0\nIMP r1 x2\n"), Error);
  EXPECT_THROW((void)assemble(".registers 4\n.output r0\nSET0 r1x\n"), Error);
  // Structurally invalid despite clean syntax (register out of range).
  EXPECT_THROW((void)assemble(".registers 4\n.output r9\n"), Error);
  EXPECT_THROW((void)assemble(".registers 4\n.output r0\nIMP r1 r7\n"), Error);
}

TEST(IsaAssembler, DiagnosticsNameTheOffendingLine) {
  try {
    (void)assemble(".registers 4\n.output r0\nSET0 r1\nBOGUS r2\n");
    FAIL() << "expected an assembler diagnostic";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace memcim::isa
