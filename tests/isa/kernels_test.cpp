// Cached workload kernels: the compiled CAM bank matches the CRS
// device CAM row for row (binary, ternary and erased rows), the
// compiled adder matches native addition, and the packed replay books
// reconcile exactly with a scalar run_program_simd of the same
// program.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "device/presets.h"
#include "isa/kernels.h"
#include "logic/ideal_fabric.h"
#include "logic/packed.h"

namespace memcim::isa {
namespace {

std::vector<bool> random_word(std::size_t bits, Rng& rng) {
  std::vector<bool> w(bits);
  for (std::size_t i = 0; i < bits; ++i) w[i] = rng.uniform() < 0.5;
  return w;
}

TEST(CompiledCamBank, MatchesCrsCamOnBinaryTernaryAndErasedRows) {
  constexpr std::size_t kRows = 16;
  constexpr std::size_t kBits = 8;
  CamConfig device_config;
  device_config.rows = kRows;
  device_config.word_bits = kBits;
  device_config.cell = presets::crs_cell();
  CrsCam device(device_config);
  CompiledCamBank compiled(kRows, kBits);

  Rng rng(0xCA3Bull);
  for (std::size_t r = 0; r < kRows; ++r) {
    if (r % 4 == 3) continue;  // leave every 4th row invalid
    if (r % 4 == 2) {
      std::vector<CamBit> word(kBits);
      for (std::size_t i = 0; i < kBits; ++i) {
        const double roll = rng.uniform();
        word[i] = roll < 0.3   ? CamBit::kDontCare
                  : roll < 0.65 ? CamBit::kOne
                                : CamBit::kZero;
      }
      device.write_row_ternary(r, word);
      compiled.write_row_ternary(r, word);
    } else {
      const std::vector<bool> word = random_word(kBits, rng);
      device.write_row(r, word);
      compiled.write_row(r, word);
    }
  }
  // Rewrite-then-erase must leave the row matching nothing.
  device.write_row(7, random_word(kBits, rng));
  compiled.write_row(7, random_word(kBits, rng));
  device.erase_row(7);
  compiled.erase_row(7);

  for (int q = 0; q < 64; ++q) {
    const std::vector<bool> key = random_word(kBits, rng);
    const CamSearchResult d = device.search(key);
    const CamBankSearchResult c = compiled.search(key);
    EXPECT_EQ(c.matching_rows, d.matching_rows) << "query " << q;
    EXPECT_GT(c.books.pulses_per_window, 0u);
  }
  // Replaying the unoptimized source form finds the same rows too.
  CompiledCamBank source_form(kRows, kBits, CompileOptions{},
                              /*optimize_replay=*/false);
  for (std::size_t r = 0; r < kRows; ++r) {
    if (r == 7 || r % 4 == 3) continue;
    std::vector<CamBit> row(kBits);
    for (std::size_t i = 0; i < kBits; ++i) row[i] = device.read_row(r)[i];
    source_form.write_row_ternary(r, row);
  }
  for (int q = 0; q < 16; ++q) {
    const std::vector<bool> key = random_word(kBits, rng);
    EXPECT_EQ(source_form.search(key).matching_rows,
              device.search(key).matching_rows)
        << "source-form query " << q;
  }
}

TEST(CompiledAdd, MatchesNativeAdditionOnBothForms) {
  constexpr std::size_t kWidth = 12;
  constexpr std::size_t kOps = 100;
  Rng rng(0xADD5ull);
  std::vector<std::uint64_t> a(kOps), b(kOps);
  const std::uint64_t mask = (std::uint64_t{1} << kWidth) - 1;
  for (std::size_t i = 0; i < kOps; ++i) {
    a[i] = static_cast<std::uint64_t>(
               rng.uniform_int(0, static_cast<std::int64_t>(mask)));
    b[i] = static_cast<std::uint64_t>(
               rng.uniform_int(0, static_cast<std::int64_t>(mask)));
  }
  for (const bool optimized : {true, false}) {
    const CompiledAddResult r =
        run_compiled_add(kWidth, a, b, CompileOptions{}, optimized);
    ASSERT_EQ(r.sums.size(), kOps);
    for (std::size_t i = 0; i < kOps; ++i)
      EXPECT_EQ(r.sums[i], a[i] + b[i])
          << (optimized ? "optimized" : "source") << " op " << i;
    EXPECT_GT(r.books.writes, 0u);
    EXPECT_GT(r.books.latency.value(), 0.0);
  }
}

TEST(CachedKernels, SecondLookupReturnsTheSameArtifact) {
  const auto first = cached_word_equality(9);
  const auto second = cached_word_equality(9);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_NE(first.get(), cached_word_equality(10).get());
}

TEST(CachedKernels, OptimizedFormsShedPulsesOnEveryKernel) {
  EXPECT_GE(cached_word_equality(32)->stats.pulses_removed() * 20,
            cached_word_equality(32)->stats.pulses_before);
  EXPECT_GE(cached_masked_equality(32)->stats.pulses_removed() * 20,
            cached_masked_equality(32)->stats.pulses_before);
  EXPECT_GE(cached_ripple_adder(32)->stats.pulses_removed() * 20,
            cached_ripple_adder(32)->stats.pulses_before);
}

/// The packed-engine guarantee the tile/serving wiring relies on:
/// packed replay of a compiled form reconciles EXACTLY (outputs,
/// latency, energy, writes) with a scalar SIMD replay of that same
/// form on an equally-costed fabric.
TEST(CachedKernels, PackedBooksReconcileWithScalarSimdReplay) {
  const auto program = cached_word_equality(8);
  Rng rng(0xB00Cull);
  std::vector<std::vector<bool>> windows(24);
  for (auto& w : windows) w = random_word(16, rng);

  for (const bool optimized : {false, true}) {
    const PackedProgram& packed =
        optimized ? program->packed_optimized : program->packed_source;
    const PackedRunOptions& run_options =
        optimized ? program->run_optimized : program->run_source;
    const CimProgram& form = optimized ? program->optimized : program->source;

    const PackedRunResult fast = run_program_packed(packed, windows,
                                                    run_options);
    IdealFabric scalar;  // default cost model == default CompileOptions
    const SimdRunResult slow = run_program_simd(form, scalar, windows);

    EXPECT_EQ(fast.outputs, slow.outputs);
    EXPECT_EQ(fast.writes, slow.writes);
    EXPECT_EQ(fast.latency.value(), slow.latency.value());
    EXPECT_EQ(fast.energy.value(), slow.energy.value());
  }
}

/// Multi-output flavour: the adder's packed wide outputs and books
/// reconcile with run_program_simd_wide.
TEST(CachedKernels, WideBooksReconcileForTheAdder) {
  const auto program = cached_ripple_adder(6);
  Rng rng(0x5DDEull);
  std::vector<std::vector<bool>> windows(17);
  for (auto& w : windows) w = random_word(12, rng);

  PackedRunOptions run_options = program->run_optimized;
  const PackedRunResult fast =
      run_program_packed(program->packed_optimized, windows, run_options);
  IdealFabric scalar;
  const SimdWideResult slow =
      run_program_simd_wide(program->optimized, scalar, windows);

  EXPECT_EQ(fast.wide, slow.outputs);
  EXPECT_EQ(fast.writes, slow.writes);
  EXPECT_EQ(fast.latency.value(), slow.latency.value());
  EXPECT_EQ(fast.energy.value(), slow.energy.value());
}

}  // namespace
}  // namespace memcim::isa
