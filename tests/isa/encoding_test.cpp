// Binary wire format: encode/decode round-trips every valid program
// exactly (seeded property, 200+ programs), and the decoder rejects
// corrupt images with a diagnostic instead of mis-parsing them.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "isa/isa.h"
#include "isa_test_util.h"

namespace memcim::isa {
namespace {

using testutil::expect_programs_equal;
using testutil::random_program;

TEST(IsaEncoding, RoundTripsRandomProgramsExactly) {
  Rng rng(0x15A0ull);
  for (int trial = 0; trial < 200; ++trial) {
    const auto inputs = static_cast<std::size_t>(rng.uniform_int(0, 4));
    const auto scratch = static_cast<std::size_t>(rng.uniform_int(1, 9));
    const auto length = static_cast<std::size_t>(rng.uniform_int(0, 40));
    const CimProgram p = random_program(inputs, scratch, length, rng,
                                        /*multi_output=*/true);
    const CimProgram via_words = decode_program(encode_program(p));
    expect_programs_equal(p, via_words);
    const CimProgram via_bytes = decode_program_bytes(encode_program_bytes(p));
    expect_programs_equal(p, via_bytes);
  }
}

TEST(IsaEncoding, ImageLayoutMatchesTheDocumentedHeader) {
  CimProgram p;
  p.registers = 5;
  p.inputs = 2;
  p.output = 4;
  p.instructions = {{CimOp::kSetFalse, 2, 0},
                    {CimOp::kImply, 0, 2},
                    {CimOp::kSetTrue, 4, 0}};
  const std::vector<std::uint32_t> words = encode_program(p);
  ASSERT_EQ(words.size(), kHeaderWords + 1 + p.instructions.size());
  EXPECT_EQ(words[0], kMagic);
  EXPECT_EQ(words[1], kVersion);
  EXPECT_EQ(words[2], 5u);  // registers
  EXPECT_EQ(words[3], 2u);  // inputs
  EXPECT_EQ(words[4], 0u);  // output count (0 => one legacy register)
  EXPECT_EQ(words[5], 3u);  // instructions
  EXPECT_EQ(words[6], 4u);  // the legacy output register
  // op<<28 | a<<14 | b
  EXPECT_EQ(words[7], (0u << 28) | (2u << 14));
  EXPECT_EQ(words[8], (2u << 28) | (0u << 14) | 2u);
  EXPECT_EQ(words[9], (1u << 28) | (4u << 14));
}

TEST(IsaEncoding, MultiOutputImageCarriesTheResultList) {
  CimProgram p;
  p.registers = 6;
  p.inputs = 2;
  p.outputs = {3, 4, 5};
  p.output = 3;
  const std::vector<std::uint32_t> words = encode_program(p);
  ASSERT_EQ(words.size(), kHeaderWords + 3);
  EXPECT_EQ(words[4], 3u);
  EXPECT_EQ(words[6], 3u);
  EXPECT_EQ(words[7], 4u);
  EXPECT_EQ(words[8], 5u);
}

std::vector<std::uint32_t> small_image() {
  CimProgram p;
  p.registers = 3;
  p.inputs = 1;
  p.output = 2;
  p.instructions = {{CimOp::kImply, 0, 2}};
  return encode_program(p);
}

TEST(IsaEncoding, RejectsCorruptImages) {
  const std::vector<std::uint32_t> good = small_image();
  EXPECT_NO_THROW((void)decode_program(good));

  std::vector<std::uint32_t> bad = good;
  bad[0] ^= 1u;  // magic
  EXPECT_THROW((void)decode_program(bad), Error);

  bad = good;
  bad[1] = kVersion + 1;  // future version
  EXPECT_THROW((void)decode_program(bad), Error);

  bad = good;
  bad.pop_back();  // truncated
  EXPECT_THROW((void)decode_program(bad), Error);

  bad = good;
  bad.push_back(0u);  // trailing garbage
  EXPECT_THROW((void)decode_program(bad), Error);

  EXPECT_THROW((void)decode_program({}), Error);

  bad = good;
  bad.back() = 3u << 28;  // invalid opcode
  EXPECT_THROW((void)decode_program(bad), Error);

  bad = good;
  bad.back() = (0u << 28) | (1u << 14) | 1u;  // SET with nonzero b field
  EXPECT_THROW((void)decode_program(bad), Error);

  bad = good;
  bad.back() = (2u << 28) | (7u << 14) | 2u;  // register out of range
  EXPECT_THROW((void)decode_program(bad), Error);
}

TEST(IsaEncoding, RejectsRaggedByteStreams) {
  std::vector<std::uint8_t> bytes = encode_program_bytes(
      decode_program(small_image()));
  bytes.pop_back();
  EXPECT_THROW((void)decode_program_bytes(bytes), Error);
}

TEST(IsaValidation, RejectsStructurallyInvalidPrograms) {
  CimProgram p;
  EXPECT_THROW(validate_program(p), Error);  // zero registers

  p.registers = kMaxRegisters + 1;
  EXPECT_THROW(validate_program(p), Error);  // over the 14-bit field

  p.registers = 4;
  p.inputs = 5;
  EXPECT_THROW(validate_program(p), Error);  // inputs > registers

  p.inputs = 2;
  p.output = 4;
  EXPECT_THROW(validate_program(p), Error);  // output out of range

  p.output = 0;
  p.outputs = {1, 4};
  EXPECT_THROW(validate_program(p), Error);  // listed output out of range

  p.outputs.clear();
  p.instructions = {{CimOp::kSetTrue, 4, 0}};
  EXPECT_THROW(validate_program(p), Error);  // operand a out of range

  p.instructions = {{CimOp::kImply, 0, 4}};
  EXPECT_THROW(validate_program(p), Error);  // operand b out of range

  p.instructions = {{CimOp::kImply, 0, 3}};
  EXPECT_NO_THROW(validate_program(p));
}

}  // namespace
}  // namespace memcim::isa
