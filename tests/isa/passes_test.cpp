// Optimization passes: every pass (and the full pipeline) is
// semantics-preserving — bitwise-identical outputs vs the unoptimized
// replay on the ideal, device-level and CRS fabrics — and the pipeline
// actually earns its keep on the recorded workload kernels (>= 5% of
// the word-equality pulses removed, window compacted).
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "device/presets.h"
#include "isa/passes.h"
#include "isa_test_util.h"
#include "logic/adder.h"
#include "logic/comparator.h"
#include "logic/crs_fabric.h"
#include "logic/device_fabric.h"
#include "logic/gates.h"
#include "logic/ideal_fabric.h"

namespace memcim::isa {
namespace {

using testutil::random_program;

using PassFn = std::function<CimProgram(const CimProgram&, PassStats*)>;

const std::vector<std::pair<std::string, PassFn>>& all_passes() {
  static const std::vector<std::pair<std::string, PassFn>> passes = {
      {"known_state",
       [](const CimProgram& p, PassStats* s) { return known_state_pass(p, s); }},
      {"dead_pulse",
       [](const CimProgram& p, PassStats* s) {
         return dead_pulse_elimination(p, s);
       }},
      {"compact",
       [](const CimProgram& p, PassStats* s) { return compact_registers(p, s); }},
      {"pipeline",
       [](const CimProgram& p, PassStats* s) { return optimize_program(p, s); }},
  };
  return passes;
}

std::vector<bool> random_inputs(std::size_t n, Rng& rng) {
  std::vector<bool> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.uniform() < 0.5;
  return in;
}

/// Replay `a` and `b` on fresh instances of the given fabric type and
/// require identical result bits.
template <typename FabricT, typename... Args>
void expect_same_outputs(const CimProgram& a, const CimProgram& b,
                         const std::vector<bool>& inputs,
                         const std::string& label, Args&&... args) {
  FabricT fa(args...);
  FabricT fb(args...);
  EXPECT_EQ(run_program_wide(a, fa, inputs), run_program_wide(b, fb, inputs))
      << label;
}

/// Every pass is differential-tested against the untouched program on
/// the ideal and CRS backends (raw random IMP streams are outside the
/// device fabric's analog creep budget, exactly as in
/// tests/logic/random_program_test.cpp — recorded gate-library programs
/// cover the device backend below).
TEST(IsaPasses, RandomProgramsStayEquivalentOnIdealAndCrs) {
  Rng rng(0x9A55ull);
  for (int trial = 0; trial < 25; ++trial) {
    const CimProgram p = random_program(3, 5, 30, rng, /*multi_output=*/true);
    for (const auto& [name, pass] : all_passes()) {
      const CimProgram q = pass(p, nullptr);
      for (std::uint64_t in = 0; in < 8; ++in) {
        const std::vector<bool> inputs{bool(in & 1), bool(in & 2),
                                       bool(in & 4)};
        const std::string label =
            name + " trial " + std::to_string(trial) + " inputs " +
            std::to_string(in);
        expect_same_outputs<IdealFabric>(p, q, inputs, label);
        expect_same_outputs<CrsFabric>(p, q, inputs, label,
                                       presets::crs_cell());
      }
    }
  }
}

CimProgram record_word_equality(std::size_t bits) {
  return record_program(2 * bits, [&](Fabric& f, const std::vector<Reg>& in) {
    const std::span<const Reg> a(in.data(), bits);
    const std::span<const Reg> b(in.data() + bits, bits);
    return word_equality(f, a, b);
  });
}

CimProgram record_ripple_adder(std::size_t bits) {
  return record_program_multi(
      2 * bits, [&](Fabric& f, const std::vector<Reg>& in) {
        const std::span<const Reg> a(in.data(), bits);
        const std::span<const Reg> b(in.data() + bits, bits);
        RippleAdderResult r = ripple_adder(f, a, b);
        std::vector<Reg> outs = std::move(r.sum);
        outs.push_back(r.carry_out);
        return outs;
      });
}

std::vector<std::pair<std::string, CimProgram>> recorded_kernels() {
  std::vector<std::pair<std::string, CimProgram>> kernels;
  kernels.emplace_back("and", record_program(2, [](Fabric& f,
                                                   const std::vector<Reg>& in) {
                         return gate_and(f, in[0], in[1]);
                       }));
  kernels.emplace_back("xnor", record_program(2, [](Fabric& f,
                                                    const std::vector<Reg>& in) {
                         return gate_xnor(f, in[0], in[1]);
                       }));
  kernels.emplace_back("word_equality8", record_word_equality(8));
  kernels.emplace_back("ripple_adder6", record_ripple_adder(6));
  return kernels;
}

/// Recorded gate-library kernels run on all THREE backends, optimized
/// vs source, over random operand vectors.
TEST(IsaPasses, RecordedKernelsStayEquivalentOnAllFabrics) {
  Rng rng(0xFAB5ull);
  for (const auto& [kernel_name, p] : recorded_kernels()) {
    for (const auto& [pass_name, pass] : all_passes()) {
      const CimProgram q = pass(p, nullptr);
      for (int vec = 0; vec < 16; ++vec) {
        const std::vector<bool> inputs = random_inputs(p.inputs, rng);
        const std::string label = kernel_name + "/" + pass_name + " vector " +
                                  std::to_string(vec);
        expect_same_outputs<IdealFabric>(p, q, inputs, label);
        expect_same_outputs<CrsFabric>(p, q, inputs, label,
                                       presets::crs_cell());
        DeviceFabricParams dp;
        dp.device = presets::vcm_taox_logic();
        expect_same_outputs<DeviceFabric>(p, q, inputs, label, dp);
      }
    }
  }
}

TEST(IsaPasses, KnownStateDropsRedundantSetsOnFreshRegisters) {
  // Every gate starts by clearing its freshly allocated work registers;
  // on a fresh window those clears are no-ops the pass must fold away.
  CimProgram p;
  p.inputs = 1;
  p.registers = 3;
  p.output = 1;
  p.instructions = {{CimOp::kSetFalse, 1, 0},   // fresh r1 already 0
                    {CimOp::kImply, 0, 1},
                    {CimOp::kSetTrue, 2, 0},
                    {CimOp::kSetTrue, 2, 0}};   // second set is a no-op
  PassStats stats;
  const CimProgram q = known_state_pass(p, &stats);
  EXPECT_EQ(q.instructions.size(), 2u);
  EXPECT_EQ(stats.known_state_removed, 2u);
}

TEST(IsaPasses, KnownStateStrengthReducesImplyFromKnownZero) {
  // r1 is scratch and still fresh-zero, so IMP r1 r2 always sets r2.
  CimProgram p;
  p.inputs = 1;
  p.registers = 3;
  p.output = 2;
  p.instructions = {{CimOp::kImply, 1, 2}};
  PassStats stats;
  const CimProgram q = known_state_pass(p, &stats);
  ASSERT_EQ(q.instructions.size(), 1u);
  EXPECT_EQ(q.instructions[0].op, CimOp::kSetTrue);
  EXPECT_EQ(q.instructions[0].a, 2u);
  EXPECT_EQ(stats.strength_reduced, 1u);
}

TEST(IsaPasses, KnownStateFusesReestablishedImplications) {
  // The second IMP re-establishes an implication that nothing
  // invalidated (imply is monotone), so it cannot change any state.
  CimProgram p;
  p.inputs = 3;
  p.registers = 4;
  p.output = 2;
  p.instructions = {{CimOp::kImply, 0, 2},
                    {CimOp::kImply, 1, 2},
                    {CimOp::kImply, 0, 2}};
  PassStats stats;
  const CimProgram q = known_state_pass(p, &stats);
  EXPECT_EQ(q.instructions.size(), 2u);
  EXPECT_EQ(stats.implications_fused, 1u);
}

TEST(IsaPasses, DeadPulseEliminationDropsUnobservedWrites) {
  CimProgram p;
  p.inputs = 1;
  p.registers = 4;
  p.output = 2;
  p.instructions = {{CimOp::kSetTrue, 3, 0},  // r3 never observed
                    {CimOp::kImply, 0, 2},
                    {CimOp::kImply, 1, 3}};   // still dead: r3 unread after
  PassStats stats;
  const CimProgram q = dead_pulse_elimination(p, &stats);
  ASSERT_EQ(q.instructions.size(), 1u);
  EXPECT_EQ(q.instructions[0].op, CimOp::kImply);
  EXPECT_EQ(stats.dead_removed, 2u);
}

TEST(IsaPasses, CompactionShrinksTheWordEqualityWindow) {
  const CimProgram p = record_word_equality(8);
  PassStats stats;
  const CimProgram q = compact_registers(p, &stats);
  EXPECT_LT(q.registers, p.registers);
  EXPECT_EQ(stats.registers_before, p.registers);
  EXPECT_EQ(stats.registers_after, q.registers);
  EXPECT_GT(stats.registers_saved(), 0u);
}

TEST(IsaPasses, PipelineCutsAtLeastFivePercentOfWordEqualityPulses) {
  const CimProgram p = record_word_equality(64);
  PassStats stats;
  const CimProgram q = optimize_program(p, &stats);
  EXPECT_EQ(stats.pulses_before, p.length());
  EXPECT_EQ(stats.pulses_after, q.length());
  // The acceptance bar: >= 5% of the recorded pulses removed.
  EXPECT_GE(stats.pulses_removed() * 20, stats.pulses_before);
  EXPECT_LE(q.registers, p.registers);
  EXPECT_GE(stats.rounds, 1u);
}

TEST(IsaPasses, RowBudgetForcesRecycledRowsToClear) {
  // r2 and r3 rely on fresh-row zero.  With 3 rows, r3 must recycle
  // r1's expired row and gets the explicit SET0 restoring the zero.
  CimProgram p;
  p.inputs = 1;
  p.registers = 4;
  p.output = 3;
  p.instructions = {{CimOp::kSetTrue, 1, 0},
                    {CimOp::kImply, 1, 2},
                    {CimOp::kImply, 0, 2},
                    {CimOp::kImply, 2, 3}};
  PassStats stats;
  const CimProgram q = compact_registers(p, &stats, /*max_rows=*/3);
  EXPECT_EQ(q.registers, 3u);
  EXPECT_EQ(stats.clears_inserted, 1u);
  EXPECT_EQ(q.instructions.size(), p.instructions.size() + 1);
  for (const bool in : {false, true}) {
    expect_same_outputs<IdealFabric>(p, q, {in}, "budgeted compaction");
    expect_same_outputs<CrsFabric>(p, q, {in}, "budgeted compaction",
                                   presets::crs_cell());
  }
  // Unbudgeted, both zero-reliant registers keep fresh rows: no clears.
  PassStats free_stats;
  const CimProgram full = compact_registers(p, &free_stats);
  EXPECT_EQ(free_stats.clears_inserted, 0u);
  EXPECT_EQ(full.instructions.size(), p.instructions.size());

  // A budget below the peak number of live registers cannot be met.
  EXPECT_THROW((void)compact_registers(p, nullptr, 2), Error);
  // Nor can one below the input ABI rows.
  EXPECT_THROW((void)compact_registers(p, nullptr, 0), Error);
}

TEST(IsaPasses, PipelineReducesTheRippleAdderToo) {
  const CimProgram p = record_ripple_adder(16);
  PassStats stats;
  const CimProgram q = optimize_program(p, &stats);
  EXPECT_LE(q.length(), p.length());
  EXPECT_GE(stats.pulses_removed() * 20, stats.pulses_before);
}

}  // namespace
}  // namespace memcim::isa
