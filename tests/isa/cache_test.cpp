// Program cache: hit/miss accounting, key separation across workload,
// shape, fabric signature and optimize flag, and a builder that runs
// exactly once per key even under concurrent lookups.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "isa/cache.h"
#include "logic/gates.h"

namespace memcim::isa {
namespace {

CimProgram build_and_gate() {
  return record_program(2, [](Fabric& f, const std::vector<Reg>& in) {
    return gate_and(f, in[0], in[1]);
  });
}

ProgramKey key_of(const std::string& workload, std::uint64_t shape,
                  const CompileOptions& options) {
  ProgramKey key;
  key.workload = workload;
  key.shape = shape;
  key.fabric_sig = fabric_signature(options);
  key.optimize = options.optimize;
  return key;
}

TEST(ProgramCache, MissCompilesThenHitsReturnTheSameArtifact) {
  ProgramCache cache;
  const CompileOptions options;
  const ProgramKey key = key_of("test.and", 2, options);

  int builds = 0;
  const auto builder = [&] {
    ++builds;
    return build_and_gate();
  };
  const auto first = cache.get_or_compile(key, builder, options);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  const auto second = cache.get_or_compile(key, builder, options);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.get(), second.get());  // literally the same artifact

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(ProgramCache, EveryKeyComponentSeparatesArtifacts) {
  ProgramCache cache;
  CompileOptions options;
  const auto builder = [] { return build_and_gate(); };

  (void)cache.get_or_compile(key_of("test.and", 2, options), builder, options);
  // Different workload name.
  (void)cache.get_or_compile(key_of("test.or", 2, options), builder, options);
  // Different shape.
  (void)cache.get_or_compile(key_of("test.and", 3, options), builder, options);
  // Different fabric quanta.
  CompileOptions crs = options;
  crs.imply_step_cost = 2;
  EXPECT_NE(fabric_signature(options), fabric_signature(crs));
  (void)cache.get_or_compile(key_of("test.and", 2, crs), builder, crs);
  // Different cost-model quanta.
  CompileOptions hot = options;
  hot.cost.e_write = hot.cost.e_write * 2.0;
  EXPECT_NE(fabric_signature(options), fabric_signature(hot));
  (void)cache.get_or_compile(key_of("test.and", 2, hot), builder, hot);
  // Optimize flag.
  CompileOptions raw = options;
  raw.optimize = false;
  (void)cache.get_or_compile(key_of("test.and", 2, raw), builder, raw);

  EXPECT_EQ(cache.size(), 6u);
  EXPECT_EQ(cache.misses(), 6u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ProgramCache, ConcurrentLookupsBuildExactlyOnce) {
  ProgramCache cache;
  const CompileOptions options;
  const ProgramKey key = key_of("test.concurrent", 2, options);

  std::atomic<int> builds{0};
  const auto builder = [&] {
    builds.fetch_add(1, std::memory_order_relaxed);
    return build_and_gate();
  };

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CompiledProgram>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&, i] {
        results[static_cast<std::size_t>(i)] =
            cache.get_or_compile(key, builder, options);
      });
    for (std::thread& t : threads) t.join();
  }

  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), static_cast<std::uint64_t>(kThreads - 1));
  for (const auto& r : results) EXPECT_EQ(r.get(), results[0].get());
}

TEST(ProgramCache, GlobalCacheIsAProcessSingleton) {
  EXPECT_EQ(&ProgramCache::global(), &ProgramCache::global());
}

}  // namespace
}  // namespace memcim::isa
