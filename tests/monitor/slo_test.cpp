// SloEngine semantics: multi-window burn-rate alerting (fast AND slow
// must both burn), edge-triggered fire/resolve pairs, and the three
// watchdog rules, all over synthetic interval inputs.
#include "monitor/slo.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace memcim::monitor {
namespace {

SloConfig availability_only(double target = 0.99, double threshold = 10.0,
                            std::size_t fast = 2, std::size_t slow = 4) {
  SloConfig cfg;
  SloObjective o;
  o.name = "availability";
  o.kind = SloKind::kAvailability;
  o.target_ratio = target;
  o.burn_threshold = threshold;
  o.fast_window = fast;
  o.slow_window = slow;
  cfg.objectives.push_back(o);
  return cfg;
}

SloEngine::IntervalInput interval(std::uint64_t index, std::uint64_t arrivals,
                                  std::uint64_t shed) {
  SloEngine::IntervalInput in;
  in.begin = index * 1000;
  in.end = (index + 1) * 1000;
  in.interval = index;
  in.arrivals = arrivals;
  in.shed = shed;
  in.completed = arrivals - shed;
  return in;
}

TEST(SloEngine, HealthyTrafficNeverAlerts) {
  SloEngine engine(availability_only());
  for (std::uint64_t i = 0; i < 100; ++i)
    engine.observe(interval(i, 1000, 0));
  EXPECT_EQ(engine.alerts_fired(), 0u);
  EXPECT_TRUE(engine.events().empty());
  EXPECT_FALSE(engine.any_active());
}

TEST(SloEngine, SustainedBurnFiresOnceAndResolvesOnce) {
  // target 0.99 → error budget 0.01; shedding half of all arrivals is
  // burn 50, far past threshold 10.
  SloEngine engine(availability_only());
  std::uint64_t i = 0;
  for (; i < 10; ++i) engine.observe(interval(i, 1000, 500));
  ASSERT_EQ(engine.alerts_fired(), 1u);  // edge-triggered, not per interval
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].kind, HealthEventKind::kBurnRateAlert);
  EXPECT_EQ(engine.events()[0].rule, "availability");
  EXPECT_TRUE(engine.any_active());

  // Recovery: both windows must drain below threshold, then resolve.
  for (std::uint64_t j = 0; j < 10; ++j) engine.observe(interval(i + j, 1000, 0));
  ASSERT_EQ(engine.events().size(), 2u);
  EXPECT_EQ(engine.events()[1].kind, HealthEventKind::kBurnRateResolved);
  EXPECT_FALSE(engine.any_active());
  EXPECT_EQ(engine.alerts_fired(), 1u);  // resolves don't count as alerts
}

TEST(SloEngine, SlowWindowSuppressesOneIntervalBlip) {
  // A long healthy history, then a single bad interval: the fast
  // window burns but the slow window absorbs it — no alert.
  SloEngine engine(availability_only(0.99, 10.0, 1, 8));
  for (std::uint64_t i = 0; i < 8; ++i) engine.observe(interval(i, 1000, 0));
  engine.observe(interval(8, 1000, 500));
  EXPECT_EQ(engine.alerts_fired(), 0u);
}

TEST(SloEngine, LatencyObjectiveUsesClassCounts) {
  SloConfig cfg;
  SloObjective o;
  o.name = "latency.kmer";
  o.kind = SloKind::kLatency;
  o.cls = RequestClass::kKmerQuery;
  o.target_ratio = 0.9;
  o.burn_threshold = 2.0;
  o.fast_window = 2;
  o.slow_window = 2;
  cfg.objectives.push_back(o);
  SloEngine engine(cfg);
  const std::size_t ci = static_cast<std::size_t>(RequestClass::kKmerQuery);
  for (std::uint64_t i = 0; i < 4; ++i) {
    SloEngine::IntervalInput in = interval(i, 100, 0);
    in.class_completed[ci] = 100;
    in.class_bad_latency[ci] = 50;  // bad fraction 0.5 / budget 0.1 = burn 5
    engine.observe(in);
  }
  EXPECT_EQ(engine.alerts_fired(), 1u);
  EXPECT_EQ(engine.events()[0].rule, "latency.kmer");
}

TEST(SloEngine, EmptyIntervalsBurnNothing) {
  SloEngine engine(availability_only());
  for (std::uint64_t i = 0; i < 20; ++i) engine.observe(interval(i, 0, 0));
  EXPECT_EQ(engine.alerts_fired(), 0u);
}

TEST(SloEngine, StallWatchdogCountsConsecutiveIntervals) {
  SloConfig cfg;
  cfg.watchdog.stall_intervals = 3;
  SloEngine engine(cfg);
  SloEngine::IntervalInput stuck = interval(0, 0, 0);
  stuck.queue_depth[0] = 4;  // queued work, zero completions
  engine.observe(stuck);
  engine.observe(stuck);
  EXPECT_TRUE(engine.events().empty());  // run of 2 < 3
  engine.observe(stuck);
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].kind, HealthEventKind::kStall);

  SloEngine::IntervalInput moving = interval(3, 10, 0);
  moving.completed = 10;
  engine.observe(moving);
  ASSERT_EQ(engine.events().size(), 2u);
  EXPECT_EQ(engine.events()[1].kind, HealthEventKind::kStallResolved);
}

TEST(SloEngine, QueueHighWaterIsLevelTriggered) {
  SloConfig cfg;
  cfg.watchdog.queue_high_water = 8;
  SloEngine engine(cfg);
  SloEngine::IntervalInput in = interval(0, 10, 0);
  in.queue_depth[1] = 7;
  engine.observe(in);
  EXPECT_TRUE(engine.events().empty());
  in.queue_depth[1] = 8;  // reaches the mark
  engine.observe(in);
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].kind, HealthEventKind::kQueueHighWater);
  EXPECT_EQ(engine.events()[0].value, 8.0);
  in.queue_depth[1] = 0;
  engine.observe(in);
  EXPECT_EQ(engine.events().back().kind,
            HealthEventKind::kQueueHighWaterResolved);
}

TEST(SloEngine, ShedSpikeNeedsMinimumArrivals) {
  SloConfig cfg;
  cfg.watchdog.shed_spike_rate = 0.5;
  cfg.watchdog.shed_spike_min_arrivals = 100;
  SloEngine engine(cfg);
  engine.observe(interval(0, 10, 9));  // 90% shed but only 10 arrivals
  EXPECT_TRUE(engine.events().empty());
  engine.observe(interval(1, 200, 150));  // 75% shed over 200 arrivals
  ASSERT_EQ(engine.events().size(), 1u);
  EXPECT_EQ(engine.events()[0].kind, HealthEventKind::kShedSpike);
}

TEST(SloEngine, RejectsDegenerateObjectives) {
  SloConfig bad_target = availability_only();
  bad_target.objectives[0].target_ratio = 1.0;
  EXPECT_THROW(SloEngine{bad_target}, Error);

  SloConfig bad_windows = availability_only();
  bad_windows.objectives[0].fast_window = 10;
  bad_windows.objectives[0].slow_window = 5;
  EXPECT_THROW(SloEngine{bad_windows}, Error);

  SloConfig bad_threshold = availability_only();
  bad_threshold.objectives[0].burn_threshold = 0.0;
  EXPECT_THROW(SloEngine{bad_threshold}, Error);
}

TEST(SloEngine, DefaultServingSlosShape) {
  const SloConfig cfg = default_serving_slos(64);
  // Availability plus one latency objective per request class.
  ASSERT_EQ(cfg.objectives.size(), 1u + kRequestClasses);
  EXPECT_EQ(cfg.objectives[0].kind, SloKind::kAvailability);
  EXPECT_EQ(cfg.watchdog.queue_high_water, 64u);
  EXPECT_GT(cfg.watchdog.stall_intervals, 0u);
}

}  // namespace
}  // namespace memcim::monitor
