// TimeSeriesSampler against the real serving stack: interval
// partitioning, exact per-interval sums, ring eviction accounting,
// SLO wiring, the kill switch, and instant events on the trace
// timeline.
#include "monitor/sampler.h"

#include <gtest/gtest.h>

#include <string>

#include "../serving/serving_test_util.h"
#include "common/error.h"
#include "monitor/slo.h"
#include "telemetry/trace_export.h"

namespace memcim::monitor {
namespace {

using serving::Request;
using serving::ServiceRunResult;
using serving::ServingConfig;
using serving::TraceParams;
using serving::WorkloadService;
namespace testutil = serving::testutil;

ServiceRunResult run_sampled(serving::ServiceProbe* probe,
                             std::size_t requests = 2000,
                             double mean_gap_ns = 200.0,
                             std::size_t queue_capacity = 256) {
  TileFabric fabric(testutil::small_fabric());
  const testutil::SmallWorld world;
  ServingConfig cfg = testutil::small_config();
  cfg.queue_capacity = queue_capacity;
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  svc.set_probe(probe);
  TraceParams params = testutil::small_trace_params();
  params.seed = 0x5A11;
  params.requests = requests;
  params.mean_interarrival_ns = mean_gap_ns;
  return svc.run(serving::generate_trace(params));
}

TEST(TimeSeriesSampler, IntervalsPartitionTheRunExactly) {
  telemetry::set_enabled(true);
  TimeSeriesSampler sampler({10'000, 4096});
  const ServiceRunResult result = run_sampled(&sampler);

  ASSERT_FALSE(sampler.samples().empty());
  EXPECT_EQ(sampler.dropped(), 0u);
  EXPECT_EQ(sampler.total_intervals(), sampler.samples().size());

  // Contiguous [begin, end) intervals from virtual 0, period-spaced
  // except the final partial one.
  std::uint64_t expect_begin = 0;
  std::uint64_t arrivals = 0, shed = 0, completed = 0, batches = 0;
  for (const Sample& s : sampler.samples()) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_GT(s.end, s.begin);
    EXPECT_LE(s.end - s.begin, 10'000u);
    expect_begin = s.end;
    arrivals += s.arrivals;
    shed += s.shed;
    completed += s.completed;
    batches += s.batches;
    std::uint64_t class_completed = 0;
    for (const Sample::PerClass& pc : s.classes) class_completed += pc.completed;
    EXPECT_EQ(class_completed, s.completed);
  }
  // The series sums reproduce the run totals exactly — no sample lost
  // to boundary arithmetic.
  EXPECT_EQ(arrivals, result.stats.arrivals());
  EXPECT_EQ(shed, result.stats.shed());
  EXPECT_EQ(completed, result.stats.completed());
  EXPECT_EQ(batches, result.stats.batches);
  EXPECT_GE(sampler.samples().back().end, result.stats.makespan);
}

TEST(TimeSeriesSampler, IntervalQuantilesAreIntervalLocal) {
  telemetry::set_enabled(true);
  TimeSeriesSampler sampler({10'000, 4096});
  run_sampled(&sampler);
  bool saw_quantile = false;
  for (const Sample& s : sampler.samples()) {
    for (const Sample::PerClass& pc : s.classes) {
      if (pc.completed == 0) {
        EXPECT_EQ(pc.p50_ns, 0.0);
        continue;
      }
      saw_quantile = true;
      EXPECT_GT(pc.p50_ns, 0.0);
      EXPECT_LE(pc.p50_ns, pc.p99_ns);
      EXPECT_LE(pc.p95_ns, pc.p99_ns);
    }
  }
  EXPECT_TRUE(saw_quantile);
}

TEST(TimeSeriesSampler, RingEvictsOldestAndCountsDrops) {
  telemetry::set_enabled(true);
  TimeSeriesSampler sampler({5'000, 4});
  run_sampled(&sampler);
  ASSERT_GT(sampler.total_intervals(), 4u);
  EXPECT_EQ(sampler.samples().size(), 4u);
  EXPECT_EQ(sampler.dropped(), sampler.total_intervals() - 4u);
  // Survivors are the newest intervals, indices intact.
  EXPECT_EQ(sampler.samples().back().interval, sampler.total_intervals() - 1);
}

TEST(TimeSeriesSampler, DisabledTelemetryRecordsNothing) {
  telemetry::set_enabled(false);
  TimeSeriesSampler sampler({10'000, 4096});
  run_sampled(&sampler);
  telemetry::set_enabled(true);
  EXPECT_TRUE(sampler.samples().empty());
  EXPECT_EQ(sampler.total_intervals(), 0u);
}

TEST(TimeSeriesSampler, OverloadDrivesSloAlertsAndInstantEvents) {
  telemetry::set_enabled(true);
  telemetry::start_tracing();
  SloEngine engine(default_serving_slos(8));
  TimeSeriesSampler sampler({2'000, 4096}, &engine);
  // 10x the arrival rate into a tiny queue: mass shedding.
  run_sampled(&sampler, 4000, 20.0, 8);
  telemetry::stop_tracing();

  EXPECT_GT(engine.alerts_fired(), 0u);
  bool burn = false;
  for (const HealthEvent& e : engine.events())
    burn = burn || e.kind == HealthEventKind::kBurnRateAlert;
  EXPECT_TRUE(burn);

  // Every health event landed on the trace timeline as an instant.
  std::size_t instants = 0;
  for (const telemetry::TraceEvent& e : telemetry::collected_trace())
    if (e.phase == 'i') ++instants;
  EXPECT_EQ(instants, engine.events().size());
}

TEST(TimeSeriesSampler, HealthyRunStaysGreen) {
  telemetry::set_enabled(true);
  SloEngine engine(default_serving_slos(256));
  TimeSeriesSampler sampler({10'000, 4096}, &engine);
  run_sampled(&sampler);
  EXPECT_EQ(engine.alerts_fired(), 0u);
}

TEST(TimeSeriesSampler, RejectsDegenerateConfig) {
  EXPECT_THROW(TimeSeriesSampler({0, 16}), Error);
  EXPECT_THROW(TimeSeriesSampler({1000, 0}), Error);
}

}  // namespace
}  // namespace memcim::monitor
