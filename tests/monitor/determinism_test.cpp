// The monitoring plane's headline guarantee: the whole time series —
// every interval delta, every derived rate, every SLO verdict — is
// bitwise identical at any MEMCIM_THREADS setting, because every
// input is an exact u64 tally on the virtual clock.  A 100k-request
// soak at 1 vs 4 worker threads must produce byte-identical
// memcim-timeseries-v1 documents and identical HealthEvent sequences.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../serving/serving_test_util.h"
#include "common/parallel.h"
#include "monitor/export.h"
#include "monitor/sampler.h"
#include "monitor/slo.h"

namespace memcim::monitor {
namespace {

using serving::ServingConfig;
using serving::TraceParams;
using serving::WorkloadService;
namespace testutil = serving::testutil;

constexpr std::size_t kSoakRequests = 100'000;

struct SoakResult {
  std::string timeseries;  ///< full memcim-timeseries-v1 document
  std::vector<HealthEvent> events;
  std::uint64_t alerts = 0;
};

SoakResult run_soak(std::size_t threads, std::size_t queue_capacity,
                    double mean_gap_ns) {
  set_parallel_threads(threads);
  TileFabric fabric(testutil::small_fabric());
  const testutil::SmallWorld world;
  ServingConfig cfg = testutil::small_config();
  cfg.queue_capacity = queue_capacity;
  WorkloadService svc(fabric, cfg, world.kmer_db, world.cam_rows);
  SloEngine engine(default_serving_slos(queue_capacity));
  TimeSeriesSampler sampler({10'000, 1 << 14}, &engine);
  svc.set_probe(&sampler);
  TraceParams params = testutil::small_trace_params();
  params.seed = 0x50AC;
  params.requests = kSoakRequests;
  params.mean_interarrival_ns = mean_gap_ns;
  const serving::ServiceRunResult result =
      svc.run(serving::generate_trace(params));
  (void)result;
  SoakResult out;
  out.timeseries = timeseries_json(sampler, &engine);
  out.events = engine.events();
  out.alerts = engine.alerts_fired();
  return out;
}

/// Byte compare with a bounded failure report.  Never hand the two
/// multi-megabyte documents to EXPECT_EQ: gtest's failure diff is
/// quadratic in line count and a genuine mismatch would stall the
/// suite for minutes before printing anything.
void expect_bitwise_equal(const std::string& one, const std::string& four) {
  if (one == four) return;
  std::size_t i = 0;
  while (i < one.size() && i < four.size() && one[i] == four[i]) ++i;
  const std::size_t from = i > 120 ? i - 120 : 0;
  ADD_FAILURE() << "time series diverge at byte " << i << " (sizes "
                << one.size() << " vs " << four.size() << ")\n one: ..."
                << one.substr(from, 240) << "\nfour: ..."
                << four.substr(from, 240);
}

bool events_equal(const std::vector<HealthEvent>& a,
                  const std::vector<HealthEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].rule != b[i].rule ||
        a[i].at != b[i].at || a[i].interval != b[i].interval ||
        a[i].value != b[i].value || a[i].threshold != b[i].threshold)
      return false;
  }
  return true;
}

struct ThreadGuard {
  std::size_t threads = parallel_threads();
  ~ThreadGuard() { set_parallel_threads(threads); }
};

TEST(MonitorDeterminism, HealthySoakBitwiseAcrossThreadCounts) {
  ThreadGuard guard;
  telemetry::set_enabled(true);
  const SoakResult t1 = run_soak(1, 256, 200.0);
  const SoakResult t4 = run_soak(4, 256, 200.0);
  expect_bitwise_equal(t1.timeseries, t4.timeseries);
  EXPECT_TRUE(events_equal(t1.events, t4.events));
  EXPECT_EQ(t1.alerts, 0u);
  EXPECT_EQ(t4.alerts, 0u);
}

TEST(MonitorDeterminism, OverloadedSoakAlertsIdentically) {
  ThreadGuard guard;
  telemetry::set_enabled(true);
  // Tiny queue + 10x rate: the alert sequence itself (kinds, rules,
  // virtual instants, burn values) must be schedule-invariant too.
  const SoakResult t1 = run_soak(1, 8, 20.0);
  const SoakResult t4 = run_soak(4, 8, 20.0);
  expect_bitwise_equal(t1.timeseries, t4.timeseries);
  ASSERT_TRUE(events_equal(t1.events, t4.events));
  EXPECT_GT(t1.alerts, 0u);
}

}  // namespace
}  // namespace memcim::monitor
