// Export surfaces: the memcim-timeseries-v1 JSON document must
// round-trip through the strict parser with every declared field, and
// the OpenMetrics exposition must follow the text format (typed
// families, cumulative buckets, exemplars, "# EOF").
#include "monitor/export.h"

#include <gtest/gtest.h>

#include <string>

#include "../serving/serving_test_util.h"
#include "monitor/sampler.h"
#include "monitor/slo.h"
#include "telemetry/json_parser.h"

namespace memcim::monitor {
namespace {

using serving::ServingConfig;
using serving::TraceParams;
using serving::WorkloadService;
using telemetry::JsonValue;
namespace testutil = serving::testutil;

void run_sampled(serving::ServiceProbe* probe) {
  TileFabric fabric(testutil::small_fabric());
  const testutil::SmallWorld world;
  WorkloadService svc(fabric, testutil::small_config(), world.kmer_db,
                      world.cam_rows);
  svc.set_probe(probe);
  TraceParams params = testutil::small_trace_params();
  params.seed = 0xE4;
  params.requests = 1000;
  params.mean_interarrival_ns = 200.0;
  const serving::ServiceRunResult result =
      svc.run(serving::generate_trace(params));
  (void)result;
}

TEST(TimeseriesJson, StrictParserRoundTrip) {
  telemetry::set_enabled(true);
  SloEngine engine(default_serving_slos(256));
  TimeSeriesSampler sampler({10'000, 4096}, &engine);
  run_sampled(&sampler);

  const std::string json = timeseries_json(sampler, &engine);
  const telemetry::JsonParseResult parsed = telemetry::parse_json(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue& doc = parsed.value;

  const JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "memcim-timeseries-v1");
  EXPECT_EQ(doc.find("period_ns")->as_double(), 10'000.0);
  ASSERT_NE(doc.find("samples"), nullptr);
  const telemetry::JsonArray& samples = doc.find("samples")->as_array();
  ASSERT_EQ(samples.size(), sampler.samples().size());

  // Every declared sample field present with the recorded value.
  const Sample& s0 = sampler.samples().front();
  const JsonValue& j0 = samples.front();
  for (const char* key :
       {"interval", "begin_ns", "end_ns", "arrivals", "admitted", "shed",
        "completed", "batches", "partial_batches", "batch_lanes", "flits",
        "energy_aj", "pulses", "qps", "shed_rate", "occupancy"})
    ASSERT_NE(j0.find(key), nullptr) << key;
  EXPECT_EQ(j0.find("arrivals")->as_double(),
            static_cast<double>(s0.arrivals));
  ASSERT_EQ(j0.find("queue_depth")->as_array().size(), kRequestClasses);
  ASSERT_EQ(j0.find("classes")->as_array().size(), kRequestClasses);
  const JsonValue& c0 = j0.find("classes")->as_array()[0];
  for (const char* key :
       {"class", "admitted", "shed", "completed", "p50_ns", "p95_ns",
        "p99_ns"})
    ASSERT_NE(c0.find(key), nullptr) << key;

  // SLO block: objectives, alert count, event list.
  const JsonValue* slo = doc.find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->find("objectives")->as_array().size(),
            engine.config().objectives.size());
  EXPECT_EQ(slo->find("alerts_fired")->as_double(),
            static_cast<double>(engine.alerts_fired()));
  ASSERT_NE(slo->find("events"), nullptr);
}

TEST(TimeseriesJson, OmitsSloBlockWithoutEngine) {
  telemetry::set_enabled(true);
  TimeSeriesSampler sampler({10'000, 4096});
  run_sampled(&sampler);
  const telemetry::JsonParseResult parsed =
      telemetry::parse_json(timeseries_json(sampler, nullptr));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.find("slo"), nullptr);
}

TEST(OpenMetrics, FormatsFamiliesAndTerminator) {
  telemetry::MetricsSnapshot snap;
  snap.counters = {{"serving.arrivals", 42}};
  snap.gauges = {{"queue.depth", 3.5}};
  telemetry::HistogramSample h;
  h.name = "serving.latency_ns.kmer";
  h.upper_bounds = {64.0, 128.0};
  h.bucket_counts = {2, 1, 1};
  h.count = 4;
  snap.histograms = {h};

  const std::string text = openmetrics_text(snap);
  EXPECT_NE(text.find("# TYPE memcim_serving_arrivals counter\n"
                      "memcim_serving_arrivals_total 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE memcim_queue_depth gauge\nmemcim_queue_depth "
                      "3.5\n"),
            std::string::npos)
      << text;
  // Cumulative buckets with le labels, +Inf overflow, then _count.
  EXPECT_NE(text.find("memcim_serving_latency_ns_kmer_bucket{le=\"64\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("memcim_serving_latency_ns_kmer_bucket{le=\"128\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("memcim_serving_latency_ns_kmer_bucket{le=\"+Inf\"} 4\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("memcim_serving_latency_ns_kmer_count 4\n"),
            std::string::npos)
      << text;
  // The exposition MUST end with the OpenMetrics terminator.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, ExemplarLandsInItsBucket) {
  telemetry::MetricsSnapshot snap;
  telemetry::HistogramSample h;
  h.name = "serving.latency_ns.add";
  h.upper_bounds = {64.0, 128.0};
  h.bucket_counts = {1, 2, 0};
  h.count = 3;
  snap.histograms = {h};

  Exemplar ex;
  ex.metric = "serving.latency_ns.add";
  ex.value = 100.0;  // bucket (64, 128]
  ex.trace_id = 0xABCDEF;
  ex.timestamp_ns = 777;
  const std::string text = openmetrics_text(snap, {ex});
  EXPECT_NE(
      text.find("memcim_serving_latency_ns_add_bucket{le=\"128\"} 3 "
                "# {trace_id=\"11259375\"} 100 777\n"),
      std::string::npos)
      << text;
  // Not attached to the first bucket.
  EXPECT_NE(text.find("memcim_serving_latency_ns_add_bucket{le=\"64\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(OpenMetrics, ZeroTraceIdExemplarIsSkipped) {
  telemetry::MetricsSnapshot snap;
  telemetry::HistogramSample h;
  h.name = "m";
  h.upper_bounds = {1.0};
  h.bucket_counts = {1, 0};
  h.count = 1;
  snap.histograms = {h};
  Exemplar ex;
  ex.metric = "m";
  ex.value = 0.5;
  ex.trace_id = 0;
  const std::string text = openmetrics_text(snap, {ex});
  EXPECT_EQ(text.find("trace_id"), std::string::npos);
}

}  // namespace
}  // namespace memcim::monitor
