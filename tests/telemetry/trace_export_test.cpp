// Trace-session and exporter tests: span aggregates, well-formed
// nesting under concurrent workers, Chrome trace JSON, the metrics
// JSON/CSV exporters, and the JsonWriter primitive they share.
#include "telemetry/trace_export.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace memcim {
namespace {

using telemetry::Registry;

struct StateGuard {
  std::size_t threads = parallel_threads();
  ~StateGuard() {
    telemetry::stop_tracing();
    telemetry::set_enabled(true);
    set_parallel_threads(threads);
  }
};

TEST(Span, FeedsCallAndTimeAggregates) {
  StateGuard guard;
  telemetry::set_enabled(true);
  static telemetry::SpanSite site("test.span.aggregate");
  telemetry::Counter& calls =
      Registry::global().counter("test.span.aggregate.calls");
  calls.reset();
  for (int i = 0; i < 5; ++i) telemetry::Span span(site);
  EXPECT_EQ(calls.value(), 5u);
}

TEST(Span, DisabledSpansAreInvisible) {
  StateGuard guard;
  static telemetry::SpanSite site("test.span.disabled");
  telemetry::Counter& calls =
      Registry::global().counter("test.span.disabled.calls");
  calls.reset();
  telemetry::set_enabled(false);
  { telemetry::Span span(site); }
  EXPECT_EQ(calls.value(), 0u);
}

TEST(TraceSession, CollectsEveryClosedSpan) {
  StateGuard guard;
  telemetry::set_enabled(true);
  static telemetry::SpanSite site("test.trace.simple");
  telemetry::start_tracing();
  for (int i = 0; i < 3; ++i) telemetry::Span span(site);
  telemetry::stop_tracing();
  const std::vector<telemetry::TraceEvent> events =
      telemetry::collected_trace();
  std::size_t ours = 0;
  for (const telemetry::TraceEvent& e : events)
    if (*e.name == "test.trace.simple") ++ours;
  EXPECT_EQ(ours, 3u);
  // A new session clears the buffer.
  telemetry::start_tracing();
  telemetry::stop_tracing();
  EXPECT_TRUE(telemetry::collected_trace().empty());
}

TEST(TraceSession, NestingIsWellFormedUnderConcurrentWorkers) {
  StateGuard guard;
  telemetry::set_enabled(true);
  set_parallel_threads(4);
  static telemetry::SpanSite outer_site("test.trace.outer");
  static telemetry::SpanSite inner_site("test.trace.inner");

  telemetry::start_tracing();
  parallel_for(0, 64, 4, [](std::size_t) {
    telemetry::Span outer(outer_site);
    for (int j = 0; j < 3; ++j) telemetry::Span inner(inner_site);
  });
  telemetry::stop_tracing();

  const std::vector<telemetry::TraceEvent> events =
      telemetry::collected_trace();
  std::size_t outers = 0, inners = 0;
  for (const telemetry::TraceEvent& e : events) {
    if (*e.name == "test.trace.outer") ++outers;
    if (*e.name == "test.trace.inner") ++inners;
  }
  EXPECT_EQ(outers, 64u);
  EXPECT_EQ(inners, 192u);

  // Per thread, events must nest like balanced brackets: each event
  // lies entirely within its enclosing span and its recorded depth is
  // exactly the number of open ancestors.  collected_trace() sorts by
  // (tid, ts_ns, depth), so a parent precedes its children.
  std::map<std::uint32_t, std::vector<telemetry::TraceEvent>> by_tid;
  for (const telemetry::TraceEvent& e : events) by_tid[e.tid].push_back(e);
  for (const auto& [tid, thread_events] : by_tid) {
    std::vector<telemetry::TraceEvent> stack;
    for (const telemetry::TraceEvent& e : thread_events) {
      while (!stack.empty() &&
             stack.back().ts_ns + stack.back().dur_ns <= e.ts_ns)
        stack.pop_back();
      if (!stack.empty()) {
        EXPECT_GE(e.ts_ns, stack.back().ts_ns);
        EXPECT_LE(e.ts_ns + e.dur_ns,
                  stack.back().ts_ns + stack.back().dur_ns)
            << "span escapes its parent on tid " << tid;
      }
      EXPECT_EQ(e.depth, stack.size()) << "depth mismatch on tid " << tid;
      stack.push_back(e);
    }
  }
}

TEST(ChromeTrace, ExportsCompleteEventsPerfettoCanLoad) {
  StateGuard guard;
  telemetry::set_enabled(true);
  static telemetry::SpanSite site("test.trace.export");
  telemetry::start_tracing();
  { telemetry::Span span(site); }
  telemetry::stop_tracing();

  const std::string js =
      telemetry::chrome_trace_json(telemetry::collected_trace());
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"test.trace.export\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(js.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  // Balanced braces — the document parses as one JSON object.
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'),
            std::count(js.begin(), js.end(), '}'));
}

TEST(MetricsExport, JsonAndCsvCarryTheSnapshot) {
  StateGuard guard;
  telemetry::set_enabled(true);
  Registry::global().counter("test.export.counter").reset();
  Registry::global().counter("test.export.counter").add(42);
  telemetry::Histogram& h =
      Registry::global().histogram("test.export.hist", {1.0, 2.0});
  h.reset();
  h.record(1.5);

  const telemetry::MetricsSnapshot snap = Registry::global().snapshot();
  const std::string js = telemetry::metrics_json(snap);
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"test.export.counter\": 42"), std::string::npos);
  EXPECT_NE(js.find("\"test.export.hist\""), std::string::npos);

  const std::string csv = telemetry::metrics_csv(snap);
  EXPECT_NE(csv.find("counter,test.export.counter,42"), std::string::npos);
  EXPECT_NE(csv.find("test.export.hist"), std::string::npos);
}

TEST(JsonWriterTest, ProducesExactPrettyJson) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("name").value("memcim");
  w.key("rate").value(0.001);
  w.key("ok").value(true);
  w.key("list").begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"name\": \"memcim\",\n"
            "  \"rate\": 0.001,\n"
            "  \"ok\": true,\n"
            "  \"list\": [\n"
            "    1,\n"
            "    2\n"
            "  ]\n"
            "}\n");
}

TEST(JsonWriterTest, EscapesStringsAndRejectsNonFinite) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\nd");
  w.key("inf").value(std::numeric_limits<double>::infinity());
  w.end_object();
  const std::string js = w.str();
  EXPECT_NE(js.find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
  EXPECT_NE(js.find("\"inf\": null"), std::string::npos);
}

}  // namespace
}  // namespace memcim
