// Causal trace propagation: spans form parent/child trees under one
// trace id, contexts follow work across the thread pool and onto NoC
// packets, and the Chrome-trace export carries tile process metadata
// plus flow arrows for cross-thread/cross-tile dispatch edges.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/tile_fabric.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "device/presets.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "workloads/sharded.h"

namespace memcim {
namespace {

struct StateGuard {
  std::size_t threads = parallel_threads();
  ~StateGuard() {
    telemetry::stop_tracing();
    telemetry::set_enabled(true);
    set_parallel_threads(threads);
  }
};

std::vector<telemetry::TraceEvent> events_named(
    const std::vector<telemetry::TraceEvent>& events, std::string_view name) {
  std::vector<telemetry::TraceEvent> out;
  for (const telemetry::TraceEvent& e : events)
    if (*e.name == name) out.push_back(e);
  return out;
}

TEST(TraceContext, RootContextAndSpanIdsAreUnique) {
  StateGuard guard;
  telemetry::set_enabled(true);
  const telemetry::TraceContext a = telemetry::new_root_context();
  const telemetry::TraceContext b = telemetry::new_root_context();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, 0u);
  EXPECT_NE(telemetry::new_span_id(), telemetry::new_span_id());
}

TEST(TraceContext, DisabledTelemetryYieldsNoContext) {
  StateGuard guard;
  telemetry::set_enabled(false);
  EXPECT_FALSE(telemetry::new_root_context().valid());
  EXPECT_FALSE(telemetry::current_trace_context().valid());
}

TEST(TraceContext, ScopeInstallsAndRestores) {
  StateGuard guard;
  telemetry::set_enabled(true);
  const telemetry::TraceContext before = telemetry::current_trace_context();
  const telemetry::TraceContext root = telemetry::new_root_context();
  {
    const telemetry::TraceContextScope scope(root);
    EXPECT_EQ(telemetry::current_trace_context().trace_id, root.trace_id);
  }
  EXPECT_EQ(telemetry::current_trace_context().trace_id, before.trace_id);
}

TEST(TraceContext, NestedSpansFormAParentChildTree) {
  StateGuard guard;
  telemetry::set_enabled(true);
  static telemetry::SpanSite outer_site("test.ctx.outer");
  static telemetry::SpanSite inner_site("test.ctx.inner");

  telemetry::start_tracing();
  {
    const telemetry::TraceContextScope root(telemetry::new_root_context());
    telemetry::Span outer(outer_site);
    telemetry::Span inner(inner_site);
  }
  telemetry::stop_tracing();

  const std::vector<telemetry::TraceEvent> events =
      telemetry::collected_trace();
  const auto outer_events = events_named(events, "test.ctx.outer");
  const auto inner_events = events_named(events, "test.ctx.inner");
  ASSERT_EQ(outer_events.size(), 1u);
  ASSERT_EQ(inner_events.size(), 1u);
  EXPECT_NE(outer_events[0].trace_id, 0u);
  EXPECT_EQ(outer_events[0].trace_id, inner_events[0].trace_id);
  EXPECT_EQ(outer_events[0].parent_span, 0u);  // root span of the trace
  EXPECT_NE(outer_events[0].span_id, 0u);
  EXPECT_EQ(inner_events[0].parent_span, outer_events[0].span_id);
  EXPECT_NE(inner_events[0].span_id, outer_events[0].span_id);
}

TEST(TraceContext, PropagatesAcrossThreadPoolWorkers) {
  StateGuard guard;
  telemetry::set_enabled(true);
  set_parallel_threads(4);
  static telemetry::SpanSite dispatch_site("test.ctx.dispatch");
  static telemetry::SpanSite worker_site("test.ctx.worker");

  telemetry::start_tracing();
  {
    const telemetry::TraceContextScope root(telemetry::new_root_context());
    telemetry::Span dispatch(dispatch_site);
    parallel_for(0, 8, 1, [&](std::size_t) {
      telemetry::Span work(worker_site);
    });
  }
  telemetry::stop_tracing();

  const std::vector<telemetry::TraceEvent> events =
      telemetry::collected_trace();
  const auto dispatch_events = events_named(events, "test.ctx.dispatch");
  const auto worker_events = events_named(events, "test.ctx.worker");
  ASSERT_EQ(dispatch_events.size(), 1u);
  ASSERT_EQ(worker_events.size(), 8u);
  for (const telemetry::TraceEvent& e : worker_events) {
    EXPECT_EQ(e.trace_id, dispatch_events[0].trace_id);
    EXPECT_EQ(e.parent_span, dispatch_events[0].span_id);
  }
}

TileFabricConfig small_fabric() {
  TileFabricConfig cfg;
  cfg.width = 2;
  cfg.height = 2;
  cfg.tile.rows = 4;
  cfg.tile.row_bits = 16;
  cfg.tile.cell = presets::crs_cell();
  return cfg;
}

TEST(TraceContext, ShardedRunEmitsNocPacketSpansInTheTree) {
  StateGuard guard;
  telemetry::set_enabled(true);
  TileFabric fabric(small_fabric());
  ParallelAddParams params;
  params.operations = 64;
  params.width = 16;
  params.adders = 16;
  Rng rng(11);

  telemetry::Registry::global().counter("trace.noc_packets").reset();
  telemetry::start_tracing();
  const ShardedAddResult out =
      sharded_parallel_add(fabric, params, presets::crs_cell(), rng);
  telemetry::stop_tracing();
  ASSERT_NE(out.run.trace_id, 0u);

  const std::vector<telemetry::TraceEvent> events =
      telemetry::collected_trace();
  const auto workload = events_named(events, "workload.sharded_add");
  ASSERT_EQ(workload.size(), 1u);
  EXPECT_EQ(workload[0].trace_id, out.run.trace_id);

  // Shard compute spans: one per tile, tile-tagged, under the workload.
  const auto compute = events_named(events, "workload.shard_compute");
  ASSERT_EQ(compute.size(), fabric.tiles());
  std::vector<std::uint64_t> compute_ids;
  for (const telemetry::TraceEvent& e : compute) {
    EXPECT_EQ(e.trace_id, out.run.trace_id);
    EXPECT_EQ(e.parent_span, workload[0].span_id);
    EXPECT_LT(e.tile, fabric.tiles());
    compute_ids.push_back(e.span_id);
  }

  // NoC packet spans: one per delivered packet (cmd + resp per tile),
  // parented under the injecting span, on the destination tile.
  const auto packets = events_named(events, "noc.packet");
  ASSERT_EQ(packets.size(), 2 * fabric.tiles());
  std::size_t cmd_like = 0, resp_like = 0;
  for (const telemetry::TraceEvent& e : packets) {
    EXPECT_EQ(e.trace_id, out.run.trace_id);
    if (e.parent_span == workload[0].span_id) {
      ++cmd_like;  // host -> tile command
      EXPECT_LT(e.tile, fabric.tiles());
    } else {
      // tile -> host response, parented under that tile's compute span.
      EXPECT_NE(std::find(compute_ids.begin(), compute_ids.end(),
                          e.parent_span),
                compute_ids.end());
      ++resp_like;
    }
  }
  EXPECT_EQ(cmd_like, fabric.tiles());
  EXPECT_EQ(resp_like, fabric.tiles());
  EXPECT_EQ(telemetry::Registry::global().counter("trace.noc_packets").value(),
            0u + 2 * fabric.tiles());
}

TEST(ChromeTraceExport, EmitsTileProcessMetadataAndFlowArrows) {
  StateGuard guard;
  telemetry::set_enabled(true);
  TileFabric fabric(small_fabric());  // registers tile labels
  ParallelAddParams params;
  params.operations = 64;
  params.width = 16;
  params.adders = 16;
  Rng rng(5);

  telemetry::start_tracing();
  const ShardedAddResult out =
      sharded_parallel_add(fabric, params, presets::crs_cell(), rng);
  telemetry::stop_tracing();
  ASSERT_NE(out.run.trace_id, 0u);

  const std::string json =
      telemetry::chrome_trace_json(telemetry::collected_trace());
  // Process metadata: the host plus the tile coordinates.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"host\""), std::string::npos);
  EXPECT_NE(json.find("tile (0,0)"), std::string::npos);
  EXPECT_NE(json.find("tile (1,1)"), std::string::npos);
  // Thread metadata names every worker lane.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("worker "), std::string::npos);
  // Cross-pid parent/child edges export as s/f flow pairs.
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("memcim.flow"), std::string::npos);
  // Span args carry the tree coordinates.
  EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span\""), std::string::npos);
}

}  // namespace
}  // namespace memcim
