// Regression tests for the stuck-cell energy bookkeeping contract:
// "stuck means energy stops accruing" must hold identically in the
// device book (CrsCell::energy), the fabric pin path, and the
// telemetry registry — a pinned register never accrues switching
// energy through any of them.
#include <gtest/gtest.h>

#include <cmath>

#include "device/crs.h"
#include "fault/fabric_faults.h"
#include "fault/fault_model.h"
#include "logic/crs_fabric.h"
#include "telemetry/telemetry.h"

namespace memcim {
namespace {

using telemetry::Registry;

struct EnabledGuard {
  ~EnabledGuard() { telemetry::set_enabled(true); }
};

TEST(EnergyBookkeeping, SetStateIsSilent) {
  CrsCell cell{CrsCellParams{}};
  // Accrue some real switching history first.
  cell.apply_pulse(Voltage{2.5});
  const Energy energy_before = cell.energy();
  const std::uint64_t transitions_before = cell.transitions();
  const std::uint64_t pulses_before = cell.pulses();
  EXPECT_GT(transitions_before, 0u);

  cell.set_state(CrsState::kZero);
  cell.set_state(CrsState::kOne);
  EXPECT_EQ(cell.state(), CrsState::kOne);
  EXPECT_EQ(cell.energy().value(), energy_before.value());
  EXPECT_EQ(cell.transitions(), transitions_before);
  EXPECT_EQ(cell.pulses(), pulses_before);
}

TEST(EnergyBookkeeping, StuckCellIgnoresSetState) {
  CrsCell cell{CrsCellParams{}};
  cell.force_stuck(CrsState::kZero);
  cell.set_state(CrsState::kOne);
  EXPECT_EQ(cell.state(), CrsState::kZero);
}

TEST(EnergyBookkeeping, StuckRegisterAccruesNoCellEnergy) {
  CrsFabric fabric{CrsCellParams{}};
  const Reg a = fabric.alloc();
  const Reg b = fabric.alloc();

  // Reg a is stuck-at-LRS (logic 1); reg b is beyond the plan
  // population and stays fault-free.
  FaultPlan plan(1, 7);
  plan.arm({FaultKind::kStuckAtLrs, 1.0, 1.0, 0.0});
  FabricFaultInjector injector(std::move(plan));
  fabric.attach_faults(&injector);

  const Energy stuck_before = fabric.cell(a).energy();
  fabric.set(a, false);  // pulse lands, state pinned, no switching
  fabric.set(a, true);
  fabric.imply(b, a);    // a as target: pinned
  fabric.imply(a, b);    // a as input: pin fixup only
  EXPECT_EQ(fabric.cell(a).energy().value(), stuck_before.value());
  EXPECT_TRUE(fabric.read(a));

  // The cost-model books still charge the pulses (energy is spent
  // driving the line), only the *device switching* book stays flat.
  EXPECT_GT(fabric.writes(), 0u);
}

TEST(EnergyBookkeeping, TelemetryAgreesWithDeviceEnergyBook) {
  EnabledGuard guard;
  telemetry::set_enabled(true);
  Registry::global().reset();

  CrsFabric fabric{CrsCellParams{}};
  const Reg a = fabric.alloc();
  const Reg b = fabric.alloc();

  FaultPlan plan(1, 7);
  plan.arm({FaultKind::kStuckAtLrs, 1.0, 1.0, 0.0});
  FabricFaultInjector injector(std::move(plan));
  fabric.attach_faults(&injector);

  fabric.set(b, true);
  fabric.set(a, false);
  fabric.imply(a, b);
  fabric.imply(b, a);
  fabric.set(b, false);

  // The registry's attojoule tally must equal the device book exactly:
  // both count the same transitions at the same 1 fJ quantum.
  const std::uint64_t tallied_aj =
      Registry::global().snapshot().counter("crs_cell.switch_energy_aj");
  const auto device_aj = static_cast<std::uint64_t>(
      std::llround(fabric.cell_energy().value() * 1e18));
  EXPECT_EQ(tallied_aj, device_aj);

  // And a fully pinned fabric accrues nothing anywhere.
  Registry::global().reset();
  CrsFabric pinned{CrsCellParams{}};
  const Reg r = pinned.alloc();
  FaultPlan all_stuck(1, 3);
  all_stuck.arm({FaultKind::kStuckAtLrs, 1.0, 1.0, 0.0});
  FabricFaultInjector pinned_injector(std::move(all_stuck));
  pinned.attach_faults(&pinned_injector);
  const Energy before = pinned.cell(r).energy();
  pinned.set(r, false);
  pinned.set(r, true);
  EXPECT_EQ(pinned.cell(r).energy().value(), before.value());
  EXPECT_EQ(
      Registry::global().snapshot().counter("crs_cell.switch_energy_aj"),
      0u);
}

}  // namespace
}  // namespace memcim
