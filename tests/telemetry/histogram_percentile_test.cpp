// Histogram percentile + snapshot-merge semantics: exact-bucket
// quantiles (upper bound of the bucket holding the rank-th sample,
// clamped to the observed max) and bucket-wise sample accumulation.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "telemetry/telemetry.h"

namespace memcim::telemetry {
namespace {

HistogramSample sample_of(std::vector<double> bounds,
                          std::vector<std::uint64_t> buckets, double min,
                          double max) {
  HistogramSample s;
  s.name = "test";
  s.upper_bounds = std::move(bounds);
  s.bucket_counts = std::move(buckets);
  for (const std::uint64_t c : s.bucket_counts) s.count += c;
  s.min = min;
  s.max = max;
  return s;
}

TEST(HistogramPercentile, EmptyHistogramIsZero) {
  const HistogramSample s = sample_of({1.0, 2.0}, {0, 0, 0}, 0.0, 0.0);
  EXPECT_EQ(s.percentile(50.0), 0.0);
  EXPECT_EQ(s.p99(), 0.0);
}

TEST(HistogramPercentile, PicksBucketUpperBound) {
  // 10 samples: 4 in (<=1], 4 in (1,2], 2 in (2,4].
  const HistogramSample s =
      sample_of({1.0, 2.0, 4.0}, {4, 4, 2, 0}, 0.25, 3.5);
  EXPECT_EQ(s.percentile(10.0), 1.0);  // rank 1 -> first bucket
  EXPECT_EQ(s.percentile(40.0), 1.0);  // rank 4 -> still first bucket
  EXPECT_EQ(s.p50(), 2.0);             // rank 5 -> second bucket
  EXPECT_EQ(s.percentile(80.0), 2.0);  // rank 8 -> second bucket
  // rank 9/10 land in the (2,4] bucket, clamped to the observed max.
  EXPECT_EQ(s.percentile(90.0), 3.5);
  EXPECT_EQ(s.p99(), 3.5);
}

TEST(HistogramPercentile, OverflowBucketResolvesToMax) {
  const HistogramSample s = sample_of({1.0}, {1, 3}, 0.5, 100.0);
  EXPECT_EQ(s.percentile(25.0), 1.0);
  EXPECT_EQ(s.p95(), 100.0);
}

TEST(HistogramPercentile, ExtremeQuantilesClampToFirstAndLastRank) {
  const HistogramSample s = sample_of({1.0, 2.0}, {2, 2, 0}, 0.1, 1.9);
  EXPECT_EQ(s.percentile(0.0), 1.0);    // rank clamps to 1
  EXPECT_EQ(s.percentile(100.0), 1.9);  // rank = count, clamped to max
}

TEST(HistogramMerge, AccumulatesBucketsAndUnionsMinMax) {
  HistogramSample a = sample_of({1.0, 2.0}, {3, 1, 0}, 0.2, 1.5);
  const HistogramSample b = sample_of({1.0, 2.0}, {1, 2, 4}, 0.1, 9.0);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count, 11u);
  EXPECT_EQ(a.bucket_counts, (std::vector<std::uint64_t>{4, 3, 4}));
  EXPECT_EQ(a.min, 0.1);
  EXPECT_EQ(a.max, 9.0);
  EXPECT_EQ(a.p99(), 9.0);
}

TEST(HistogramMerge, EmptyLeftTakesRightMinMax) {
  // An empty snapshot's min/max are +inf/-inf; merging must adopt the
  // other side's observed extremes, not keep the sentinels.
  HistogramSample a = sample_of({1.0}, {0, 0}, 0.0, 0.0);
  a.min = std::numeric_limits<double>::infinity();
  a.max = -std::numeric_limits<double>::infinity();
  const HistogramSample b = sample_of({1.0}, {2, 0}, 0.3, 0.7);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.min, 0.3);
  EXPECT_EQ(a.max, 0.7);
}

TEST(HistogramMerge, RejectsMismatchedBounds) {
  HistogramSample a = sample_of({1.0, 2.0}, {1, 1, 0}, 0.5, 1.5);
  const HistogramSample untouched = a;
  const HistogramSample b = sample_of({1.0, 4.0}, {1, 1, 0}, 0.5, 1.5);
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a.count, untouched.count);
  EXPECT_EQ(a.bucket_counts, untouched.bucket_counts);
}

TEST(HistogramPercentile, LiveHistogramThroughSnapshot) {
  set_enabled(true);
  Histogram& h = Registry::global().histogram(
      "test.percentile.live", exponential_bounds(1.0, 2.0, 8));
  h.reset();
  for (int i = 0; i < 90; ++i) h.record(1.0);   // <=1
  for (int i = 0; i < 9; ++i) h.record(3.0);    // <=4
  h.record(200.0);                              // <=256
  const MetricsSnapshot snap = Registry::global().snapshot();
  const HistogramSample* s = snap.histogram("test.percentile.live");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 100u);
  EXPECT_EQ(s->p50(), 1.0);
  EXPECT_EQ(s->p95(), 4.0);
  EXPECT_EQ(s->p99(), 4.0);
  EXPECT_EQ(s->percentile(100.0), 200.0);  // clamped to the observed max
  h.reset();
}

}  // namespace
}  // namespace memcim::telemetry
