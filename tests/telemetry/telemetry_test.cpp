// Core telemetry tests: registry semantics, counter sharding,
// histogram bucketing, the disabled-mode kill switch, and the headline
// determinism guarantee — bitwise-identical tallies at any
// MEMCIM_THREADS for the schedule-independent metric set.
#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/parallel.h"
#include "common/rng.h"
#include "workloads/parallel_add.h"

namespace memcim {
namespace {

using telemetry::Registry;

/// RAII guard: restore telemetry enablement and thread count after a
/// test that flips them.
struct StateGuard {
  std::size_t threads = parallel_threads();
  ~StateGuard() {
    telemetry::set_enabled(true);
    set_parallel_threads(threads);
  }
};

TEST(Counter, AccumulatesAndResets) {
  telemetry::set_enabled(true);
  telemetry::Counter c("test.counter.basic");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsSumExactly) {
  StateGuard guard;
  telemetry::set_enabled(true);
  set_parallel_threads(4);
  telemetry::Counter c("test.counter.concurrent");
  parallel_for(0, 10000, 16, [&](std::size_t) { c.add(3); });
  EXPECT_EQ(c.value(), 30000u);
}

TEST(Gauge, LastWriteWins) {
  telemetry::set_enabled(true);
  telemetry::Gauge g("test.gauge");
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsByFirstMatchingBound) {
  telemetry::set_enabled(true);
  telemetry::Histogram h("test.hist", {1.0, 10.0, 100.0});
  h.record(0.5);    // <= 1
  h.record(1.0);    // <= 1 (inclusive)
  h.record(5.0);    // <= 10
  h.record(1000.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.min(), 0.5);
  EXPECT_EQ(h.max(), 1000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, ExponentialBoundsAreGeometric) {
  const std::vector<double> b = telemetry::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST(RegistryTest, SameNameResolvesToSameMetric) {
  telemetry::Counter& a = Registry::global().counter("test.registry.same");
  telemetry::Counter& b = Registry::global().counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  telemetry::Histogram& h1 =
      Registry::global().histogram("test.registry.hist", {1.0, 2.0});
  // Later calls ignore the bounds argument.
  telemetry::Histogram& h2 =
      Registry::global().histogram("test.registry.hist", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotIsSortedAndLooksUpByName) {
  telemetry::set_enabled(true);
  Registry::global().counter("test.snap.b").add(2);
  Registry::global().counter("test.snap.a").add(1);
  const telemetry::MetricsSnapshot snap = Registry::global().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  EXPECT_GE(snap.counter("test.snap.a"), 1u);
  EXPECT_GE(snap.counter("test.snap.b"), 2u);
  EXPECT_EQ(snap.counter("test.snap.absent"), 0u);
  EXPECT_EQ(snap.histogram("test.snap.absent"), nullptr);
}

TEST(KillSwitch, DisabledModeRecordsNothing) {
  StateGuard guard;
  telemetry::set_enabled(false);
  EXPECT_FALSE(telemetry::enabled());

  telemetry::Counter& c = Registry::global().counter("test.kill.counter");
  telemetry::Gauge& g = Registry::global().gauge("test.kill.gauge");
  telemetry::Histogram& h =
      Registry::global().histogram("test.kill.hist", {1.0});
  c.reset();
  g.reset();
  h.reset();
  c.add(7);
  g.set(1.5);
  h.record(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(KillSwitch, DisabledWorkloadLeavesSnapshotZeroed) {
  StateGuard guard;
  telemetry::set_enabled(false);
  Registry::global().reset();

  ParallelAddParams params;
  params.operations = 32;
  params.width = 8;
  params.adders = 8;
  Rng rng(1);
  const ParallelAddResult result = run_parallel_add(params, CrsCellParams{}, rng);
  EXPECT_EQ(result.mismatches, 0u);

  const telemetry::MetricsSnapshot snap = Registry::global().snapshot();
  for (const telemetry::CounterSample& c : snap.counters)
    EXPECT_EQ(c.value, 0u) << c.name;
  for (const telemetry::HistogramSample& h : snap.histograms)
    EXPECT_EQ(h.count, 0u) << h.name;
}

/// The deterministic slice of a snapshot: every counter except the
/// schedule-dependent ones (the thread pool's own bookkeeping under
/// "parallel." and all wall-time aggregates "*.ns").
std::map<std::string, std::uint64_t> deterministic_counters(
    const telemetry::MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> out;
  for (const telemetry::CounterSample& c : snap.counters) {
    if (c.name.rfind("parallel.", 0) == 0) continue;
    if (c.name.size() >= 3 &&
        c.name.compare(c.name.size() - 3, 3, ".ns") == 0)
      continue;
    out[c.name] = c.value;
  }
  return out;
}

TEST(Determinism, TalliesAreIdenticalAcrossThreadCounts) {
  StateGuard guard;
  telemetry::set_enabled(true);

  auto run_and_snapshot = [](std::size_t threads) {
    set_parallel_threads(threads);
    Registry::global().reset();
    ParallelAddParams params;
    params.operations = 96;
    params.width = 12;
    params.adders = 16;
    Rng rng(0xD15EA5E);
    const ParallelAddResult result =
        run_parallel_add(params, CrsCellParams{}, rng);
    EXPECT_EQ(result.mismatches, 0u);
    return deterministic_counters(Registry::global().snapshot());
  };

  const auto serial = run_and_snapshot(1);
  const auto parallel4 = run_and_snapshot(4);

  // Non-trivial tallies actually flowed through the instrumented layers.
  EXPECT_GT(serial.at("crs_cell.pulses"), 0u);
  EXPECT_GT(serial.at("crs_cell.transitions"), 0u);
  EXPECT_GT(serial.at("crs_cell.switch_energy_aj"), 0u);
  EXPECT_EQ(serial.at("workload.parallel_add.calls"), 1u);
  EXPECT_EQ(serial.at("workload.parallel_add.ops"), 96u);

  EXPECT_EQ(serial, parallel4);
}

}  // namespace
}  // namespace memcim
