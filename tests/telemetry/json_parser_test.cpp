// The strict JSON parser against JsonWriter: escaping edge cases,
// RFC 8259 rejections, and a seeded fuzz round-trip — random documents
// emitted by the writer must parse back structurally identical and
// survive a parse -> to_compact_json -> parse cycle byte-for-byte.
#include "telemetry/json_parser.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "telemetry/json_writer.h"

namespace memcim::telemetry {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonParseResult r = parse_json(text);
  EXPECT_TRUE(r.ok) << r.error << " at byte " << r.offset << " in: " << text;
  return std::move(r.value);
}

void expect_rejected(const std::string& text) {
  const JsonParseResult r = parse_json(text);
  EXPECT_FALSE(r.ok) << "accepted: " << text;
}

TEST(JsonParser, ScalarsAndStructure) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_EQ(parse_ok("true").as_bool(), true);
  EXPECT_EQ(parse_ok("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_ok("-12.5e2").as_double(), -1250.0);
  EXPECT_EQ(parse_ok("-12.5e2").number_text(), "-12.5e2");
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");

  const JsonValue doc = parse_ok(R"({"a": [1, 2, {"b": true}], "c": null})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[1].number_text(), "2");
  EXPECT_EQ(a->as_array()[2].find("b")->as_bool(), true);
  EXPECT_TRUE(doc.find("c")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, PreservesMemberOrderAndNumberText) {
  const JsonValue doc = parse_ok(R"({"z": 1.2300, "a": 1e-9, "m": -0.5})");
  const JsonObject& obj = doc.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
  EXPECT_EQ(to_compact_json(doc), R"({"z":1.2300,"a":1e-9,"m":-0.5})");
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(parse_ok(R"("\"\\\/\b\f\n\r\t")").as_string(),
            "\"\\/\b\f\n\r\t");
  EXPECT_EQ(parse_ok(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8.
  EXPECT_EQ(parse_ok(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
  expect_rejected(R"("\ud83d")");      // unpaired high surrogate
  expect_rejected(R"("\udc00")");      // lone low surrogate
  expect_rejected(R"("\x41")");        // not a JSON escape
  expect_rejected("\"raw\ncontrol\"");  // unescaped control char
}

TEST(JsonParser, StrictRejections) {
  expect_rejected("");
  expect_rejected("{");
  expect_rejected("[1,]");
  expect_rejected("{\"a\": 1,}");
  expect_rejected("{\"a\": 1, \"a\": 2}");  // duplicate key
  expect_rejected("01");
  expect_rejected("1.");
  expect_rejected(".5");
  expect_rejected("+1");
  expect_rejected("NaN");
  expect_rejected("Infinity");
  expect_rejected("[1] trailing");
  expect_rejected("'single'");
  // Depth cap: 200 nested arrays exceed the default 128.
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  expect_rejected(deep);
  EXPECT_TRUE(parse_json(deep, 256).ok);
}

TEST(JsonParser, ErrorsCarryOffsets) {
  const JsonParseResult r = parse_json("{\"a\": 12x}");
  ASSERT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(r.offset, 8u);
}

// -- JsonWriter round-trips ---------------------------------------------------

TEST(JsonWriterRoundTrip, EscapingEdgeCases) {
  const std::vector<std::string> cases = {
      "",
      "plain",
      "quote \" backslash \\ slash /",
      std::string("embedded\0nul", 12),
      "tab\tnewline\ncr\r",
      "\x01\x02\x1f control run",
      "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80",  // 2/3/4-byte UTF-8
  };
  for (const std::string& s : cases) {
    JsonWriter w;
    w.begin_object().key("s").value(s).end_object();
    const JsonValue doc = parse_ok(w.str());
    ASSERT_NE(doc.find("s"), nullptr) << "case: " << s;
    EXPECT_EQ(doc.find("s")->as_string(), s);
  }
}

TEST(JsonWriterRoundTrip, NumericFormats) {
  JsonWriter w;
  w.begin_object()
      .key("u64max").value(std::uint64_t{0xFFFFFFFFFFFFFFFFull})
      .key("i64min").value(std::int64_t{-9223372036854775807LL - 1})
      .key("tiny").value(1.25e-300)
      .key("huge").value(8.5e300)
      .key("zero").value(0.0)
      .key("neg").value(-42)
      .end_object();
  const JsonValue doc = parse_ok(w.str());
  EXPECT_EQ(doc.find("u64max")->number_text(), "18446744073709551615");
  EXPECT_EQ(doc.find("i64min")->number_text(), "-9223372036854775808");
  EXPECT_DOUBLE_EQ(doc.find("tiny")->as_double(), 1.25e-300);
  EXPECT_DOUBLE_EQ(doc.find("huge")->as_double(), 8.5e300);
  EXPECT_DOUBLE_EQ(doc.find("neg")->as_double(), -42.0);
}

// -- seeded fuzz --------------------------------------------------------------

/// Emit a random value into `w` and return the same value as a tree.
JsonValue random_value(std::mt19937_64& rng, JsonWriter& w, int depth) {
  std::uniform_int_distribution<int> kind(0, depth >= 4 ? 3 : 5);
  switch (kind(rng)) {
    case 0:
      w.value(false);
      return JsonValue::make_bool(false);
    case 1: {
      const auto v = static_cast<std::int64_t>(rng()) % 1000000;
      w.value(v);
      return JsonValue::make_number(std::to_string(v));
    }
    case 2: {
      std::string s;
      std::uniform_int_distribution<int> len(0, 12);
      std::uniform_int_distribution<int> byte(0, 6);
      const std::vector<std::string> pool = {
          "a", "\"", "\\", "\n", "\x01", "\xc3\xa9", "\xf0\x9f\x98\x80"};
      const int n = len(rng);
      for (int i = 0; i < n; ++i)
        s += pool[static_cast<std::size_t>(byte(rng))];
      w.value(s);
      return JsonValue::make_string(s);
    }
    case 3: {
      std::uniform_real_distribution<double> real(-1e6, 1e6);
      const double v = real(rng);
      w.value(v);
      // The writer's own text is authoritative; reparse to capture it.
      JsonWriter probe;
      probe.begin_array().value(v).end_array();
      JsonParseResult r = parse_json(probe.str());
      EXPECT_TRUE(r.ok);
      return r.value.as_array()[0];
    }
    case 4: {
      std::uniform_int_distribution<int> len(0, 4);
      const int n = len(rng);
      JsonArray items;
      w.begin_array();
      for (int i = 0; i < n; ++i)
        items.push_back(random_value(rng, w, depth + 1));
      w.end_array();
      return JsonValue::make_array(std::move(items));
    }
    default: {
      std::uniform_int_distribution<int> len(0, 4);
      const int n = len(rng);
      JsonObject members;
      w.begin_object();
      for (int i = 0; i < n; ++i) {
        const std::string k = "k" + std::to_string(i);
        w.key(k);
        members.emplace_back(k, random_value(rng, w, depth + 1));
      }
      w.end_object();
      return JsonValue::make_object(std::move(members));
    }
  }
}

TEST(JsonParserFuzz, WriterOutputRoundTripsByteForByte) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 200; ++iter) {
    JsonWriter w;
    w.begin_object().key("doc");
    const JsonValue expected = random_value(rng, w, 0);
    w.end_object();

    // Writer output parses, and matches the expected tree compactly.
    const JsonValue parsed = parse_ok(w.str());
    JsonObject wrapper;
    wrapper.emplace_back("doc", expected);
    EXPECT_EQ(to_compact_json(parsed),
              to_compact_json(JsonValue::make_object(std::move(wrapper))))
        << "iter " << iter;

    // parse -> compact -> parse -> compact is a fixed point.
    const std::string compact = to_compact_json(parsed);
    EXPECT_EQ(to_compact_json(parse_ok(compact)), compact) << "iter " << iter;
  }
}

}  // namespace
}  // namespace memcim::telemetry
