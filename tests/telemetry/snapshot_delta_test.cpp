// MetricsSnapshot::delta is the monitoring plane's foundation: every
// time-series interval is one delta of two registry snapshots, so its
// arithmetic must be exact and its error paths must refuse snapshots
// that are not two points on the same registry epoch.
#include <gtest/gtest.h>

#include <string>

#include "telemetry/telemetry.h"

namespace memcim {
namespace {

using telemetry::CounterSample;
using telemetry::GaugeSample;
using telemetry::HistogramSample;
using telemetry::MetricsSnapshot;

HistogramSample make_hist(const std::string& name,
                          std::vector<double> bounds,
                          std::vector<std::uint64_t> buckets,
                          std::uint64_t count) {
  HistogramSample h;
  h.name = name;
  h.upper_bounds = std::move(bounds);
  h.bucket_counts = std::move(buckets);
  h.count = count;
  return h;
}

TEST(SnapshotDelta, CountersSubtractExactly) {
  MetricsSnapshot earlier;
  earlier.counters = {{"a", 10}, {"b", 0}};
  MetricsSnapshot later;
  later.counters = {{"a", 25}, {"b", 7}, {"registered.mid.interval", 3}};

  MetricsSnapshot out;
  std::string error;
  ASSERT_TRUE(later.delta(earlier, out, error)) << error;
  EXPECT_EQ(out.counter("a"), 15u);
  EXPECT_EQ(out.counter("b"), 7u);
  // Absent from `earlier` means the counter registered mid-interval
  // and its whole value belongs to this interval.
  EXPECT_EQ(out.counter("registered.mid.interval"), 3u);
}

TEST(SnapshotDelta, GaugesKeepTheLaterValue) {
  MetricsSnapshot earlier;
  earlier.gauges = {{"g", 1.5}};
  MetricsSnapshot later;
  later.gauges = {{"g", 9.75}};

  MetricsSnapshot out;
  std::string error;
  ASSERT_TRUE(later.delta(earlier, out, error)) << error;
  ASSERT_EQ(out.gauges.size(), 1u);
  EXPECT_EQ(out.gauges[0].value, 9.75);
}

TEST(SnapshotDelta, HistogramsSubtractPerBucket) {
  MetricsSnapshot earlier;
  earlier.histograms = {make_hist("h", {1.0, 2.0}, {3, 1, 0}, 4)};
  MetricsSnapshot later;
  later.histograms = {make_hist("h", {1.0, 2.0}, {5, 4, 2}, 11)};

  MetricsSnapshot out;
  std::string error;
  ASSERT_TRUE(later.delta(earlier, out, error)) << error;
  const HistogramSample* d = out.histogram("h");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 7u);
  ASSERT_EQ(d->bucket_counts.size(), 3u);
  EXPECT_EQ(d->bucket_counts[0], 2u);
  EXPECT_EQ(d->bucket_counts[1], 3u);
  EXPECT_EQ(d->bucket_counts[2], 2u);
}

TEST(SnapshotDelta, CounterUnderflowIsRefused) {
  MetricsSnapshot earlier;
  earlier.counters = {{"a", 100}};
  MetricsSnapshot later;
  later.counters = {{"a", 99}};

  MetricsSnapshot out;
  out.counters = {{"sentinel", 1}};
  std::string error;
  EXPECT_FALSE(later.delta(earlier, out, error));
  EXPECT_NE(error.find("went backwards"), std::string::npos) << error;
  // `out` untouched on failure.
  ASSERT_EQ(out.counters.size(), 1u);
  EXPECT_EQ(out.counters[0].name, "sentinel");
}

TEST(SnapshotDelta, VanishedNonzeroCounterIsRefused) {
  MetricsSnapshot earlier;
  earlier.counters = {{"a", 5}};
  MetricsSnapshot later;  // no "a" at all — these are swapped snapshots

  MetricsSnapshot out;
  std::string error;
  EXPECT_FALSE(later.delta(earlier, out, error));
  EXPECT_NE(error.find("missing later"), std::string::npos) << error;
}

TEST(SnapshotDelta, HistogramBoundsChangeIsRefused) {
  MetricsSnapshot earlier;
  earlier.histograms = {make_hist("h", {1.0, 2.0}, {0, 0, 0}, 0)};
  MetricsSnapshot later;
  later.histograms = {make_hist("h", {1.0, 4.0}, {0, 0, 0}, 0)};

  MetricsSnapshot out;
  std::string error;
  EXPECT_FALSE(later.delta(earlier, out, error));
  EXPECT_NE(error.find("bounds"), std::string::npos) << error;
}

TEST(SnapshotDelta, HistogramBucketUnderflowIsRefused) {
  MetricsSnapshot earlier;
  earlier.histograms = {make_hist("h", {1.0}, {2, 0}, 2)};
  MetricsSnapshot later;
  later.histograms = {make_hist("h", {1.0}, {1, 1}, 2)};

  MetricsSnapshot out;
  std::string error;
  EXPECT_FALSE(later.delta(earlier, out, error));
}

TEST(SnapshotDelta, RegistryRoundTrip) {
  telemetry::set_enabled(true);
  telemetry::Counter& c =
      telemetry::Registry::global().counter("delta.roundtrip.counter");
  telemetry::Histogram& h = telemetry::Registry::global().histogram(
      "delta.roundtrip.hist", {1.0, 10.0});
  c.add(2);
  h.record(0.5);
  MetricsSnapshot earlier = telemetry::Registry::global().snapshot();
  c.add(40);
  h.record(5.0);
  h.record(100.0);
  const MetricsSnapshot later = telemetry::Registry::global().snapshot();

  MetricsSnapshot out;
  std::string error;
  ASSERT_TRUE(later.delta(earlier, out, error)) << error;
  EXPECT_EQ(out.counter("delta.roundtrip.counter"), 40u);
  const HistogramSample* d = out.histogram("delta.roundtrip.hist");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 2u);
  EXPECT_EQ(d->bucket_counts[1], 1u);  // the 5.0
  EXPECT_EQ(d->bucket_counts[2], 1u);  // the overflow 100.0
}

}  // namespace
}  // namespace memcim
