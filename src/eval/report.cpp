#include "eval/report.h"

#include <sstream>

#include "common/table.h"

namespace memcim {

namespace {

/// Areas render in µm² (SI prefixes do not distribute over squared
/// units, so si_string would mislead here).
std::string um2_string(Area a, int precision = 4) {
  return sci_string(a.value() * 1e12, precision - 1) + " um2";
}

}  // namespace

std::string render_table1(const Table1& t) {
  std::ostringstream os;
  TextTable conv({"Conventional (22nm FinFET)", "value"});
  conv.add_row({"gate delay", si_string(t.finfet.gate_delay.value(), "s")});
  conv.add_row({"area per gate", um2_string(t.finfet.gate_area)});
  conv.add_row({"power per gate", si_string(t.finfet.gate_power.value(), "W")});
  conv.add_row({"leakage per gate",
                si_string(t.finfet.gate_leakage.value(), "W")});
  conv.add_row({"clock", si_string(t.finfet.clock.value(), "Hz")});
  conv.add_row({"L1 cache size", std::to_string(t.cache_dna.size_bytes) + " B"});
  conv.add_row({"L1 cache area", um2_string(t.cache_dna.area)});
  conv.add_row({"cache static power",
                si_string(t.cache_dna.static_power.value(), "W")});
  conv.add_row({"hit ratio (DNA / math)",
                fixed_string(t.cache_dna.hit_ratio, 2) + " / " +
                    fixed_string(t.cache_math.hit_ratio, 2)});
  conv.add_row({"miss penalty",
                fixed_string(t.cache_dna.miss_penalty_cycles, 0) + " cycles"});
  conv.add_row({"CLA adder gates", std::to_string(t.cla.gates)});
  conv.add_row({"CLA adder latency",
                si_string(t.cla.latency(t.finfet).value(), "s")});
  conv.add_row({"clusters (DNA / math)",
                std::to_string(t.clusters_dna.clusters) + " / " +
                    std::to_string(t.clusters_math.clusters)});
  conv.add_row({"units per cluster",
                std::to_string(t.clusters_dna.units_per_cluster)});

  TextTable cim({"CIM (5nm memristor crossbar)", "value"});
  cim.add_row({"memristor write time",
               si_string(t.memristor.write_time.value(), "s")});
  cim.add_row({"area per memristor", um2_string(t.memristor.device_area)});
  cim.add_row({"energy per write",
               si_string(t.memristor.write_energy.value(), "J")});
  cim.add_row({"comparator devices / steps",
               std::to_string(t.cim_comparator.memristors) + " / " +
                   std::to_string(t.cim_comparator.steps)});
  cim.add_row({"comparator latency",
               si_string(t.cim_comparator.latency(t.memristor).value(), "s")});
  cim.add_row({"comparator energy",
               si_string(t.cim_comparator.dynamic_energy.value(), "J")});
  cim.add_row({"TC-adder devices / steps",
               std::to_string(t.cim_adder.memristors) + " / " +
                   std::to_string(t.cim_adder.steps)});
  cim.add_row({"TC-adder latency",
               si_string(t.cim_adder.latency(t.memristor).value(), "s")});
  cim.add_row({"TC-adder energy",
               si_string(t.cim_adder.dynamic_energy.value(), "J")});
  cim.add_row({"static energy", "0 (non-volatile)"});

  os << conv.to_text() << '\n' << cim.to_text();
  return os.str();
}

std::string render_table2(const Table2& table) {
  TextTable t({"Metric", "Workload", "Conv (ours)", "CIM (ours)",
               "Conv (paper)", "CIM (paper)", "gain (ours)", "gain (paper)"});
  for (const Table2Entry& e : table.entries) {
    t.add_row({e.metric, e.workload, sci_string(e.conventional),
               sci_string(e.cim), sci_string(e.paper_conventional),
               sci_string(e.paper_cim), sci_string(e.improvement(), 2),
               sci_string(e.paper_improvement(), 2)});
  }
  return t.to_text();
}

std::string render_table2_audit(const Table2& table) {
  TextTable t({"Workload", "Arch", "T/op", "E/op", "total time",
               "total energy", "area"});
  auto add = [&](const ArchCost& c, const char* wl) {
    t.add_row({wl, c.arch, si_string(c.time_per_op.value(), "s"),
               si_string(c.energy_per_op.value(), "J"),
               si_string(c.total_time.value(), "s"),
               si_string(c.total_energy.value(), "J"),
               fixed_string(c.total_area.value() * 1e6, 4) + " mm2"});
  };
  add(table.dna_conventional, "DNA");
  add(table.dna_cim, "DNA");
  add(table.math_conventional, "math");
  add(table.math_cim, "math");
  return t.to_text();
}

}  // namespace memcim
