// Rendering helpers turning Table-1/Table-2 structures into the
// aligned text tables the bench binaries print.
#pragma once

#include <string>

#include "arch/tech_params.h"
#include "eval/table2.h"

namespace memcim {

/// Render the Table 1 assumption registry (both columns, with units).
[[nodiscard]] std::string render_table1(const Table1& t);

/// Render Table 2 as the paper prints it (metric × arch × workload),
/// side by side with the paper's published values.
[[nodiscard]] std::string render_table2(const Table2& table);

/// Render the intermediate quantities (T/op, E/op, areas) that produce
/// Table 2 — the audit trail for EXPERIMENTS.md.
[[nodiscard]] std::string render_table2_audit(const Table2& table);

}  // namespace memcim
