// The Table 2 evaluator: both workloads × both architectures × the
// three paper metrics, with the paper's published values carried
// alongside for paper-vs-measured reporting.
#pragma once

#include <vector>

#include "arch/cost_model.h"

namespace memcim {

/// One metric row of Table 2.
struct Table2Entry {
  const char* metric = "";
  const char* workload = "";
  double conventional = 0.0;
  double cim = 0.0;
  double paper_conventional = 0.0;  ///< value printed in the paper
  double paper_cim = 0.0;
  /// conventional / cim for "smaller is better" metrics (ED/op), or
  /// cim / conventional for "bigger is better" (efficiency, perf/area).
  [[nodiscard]] double improvement() const;
  [[nodiscard]] double paper_improvement() const;
  bool smaller_is_better = false;
};

struct Table2 {
  ArchCost dna_conventional, dna_cim;
  ArchCost math_conventional, math_cim;
  std::vector<Table2Entry> entries;
};

/// Evaluate Table 2 from the Table 1 assumptions.
[[nodiscard]] Table2 make_table2(const Table1& t);

/// The values published in the paper's Table 2, for reference columns.
struct PaperTable2 {
  // DNA sequencing column.
  static constexpr double kDnaEdConv = 2.0210e-06;
  static constexpr double kDnaEdCim = 2.3382e-09;
  static constexpr double kDnaEffConv = 4.1097e+04;
  static constexpr double kDnaEffCim = 3.7037e+07;
  static constexpr double kDnaPerfAreaConv = 5.7312e+09;
  static constexpr double kDnaPerfAreaCim = 5.1118e+09;
  // 10^6 additions column.
  static constexpr double kMathEdConv = 1.5043e-18;
  static constexpr double kMathEdCim = 9.2570e-21;
  static constexpr double kMathEffConv = 6.5226e+09;
  static constexpr double kMathEffCim = 3.9063e+12;
  static constexpr double kMathPerfAreaConv = 5.1118e+09;
  static constexpr double kMathPerfAreaCim = 4.9164e+12;
};

}  // namespace memcim
