#include "eval/table2.h"

namespace memcim {

double Table2Entry::improvement() const {
  return smaller_is_better ? conventional / cim : cim / conventional;
}

double Table2Entry::paper_improvement() const {
  return smaller_is_better ? paper_conventional / paper_cim
                           : paper_cim / paper_conventional;
}

Table2 make_table2(const Table1& t) {
  Table2 table;
  const WorkloadSpec dna = dna_workload_spec(t);
  const WorkloadSpec math = math_workload_spec(t);
  table.dna_conventional = evaluate_conventional(dna, t);
  table.dna_cim = evaluate_cim(dna, t);
  table.math_conventional = evaluate_conventional(math, t);
  table.math_cim = evaluate_cim(math, t);

  auto push = [&](const char* metric, const char* workload,
                  double conv, double cim, double p_conv, double p_cim,
                  bool smaller_better) {
    Table2Entry e;
    e.metric = metric;
    e.workload = workload;
    e.conventional = conv;
    e.cim = cim;
    e.paper_conventional = p_conv;
    e.paper_cim = p_cim;
    e.smaller_is_better = smaller_better;
    table.entries.push_back(e);
  };

  push("energy-delay/op [J*s]", "DNA sequencing",
       table.dna_conventional.energy_delay_per_op(),
       table.dna_cim.energy_delay_per_op(), PaperTable2::kDnaEdConv,
       PaperTable2::kDnaEdCim, true);
  push("energy-delay/op [J*s]", "10^6 additions",
       table.math_conventional.energy_delay_per_op(),
       table.math_cim.energy_delay_per_op(), PaperTable2::kMathEdConv,
       PaperTable2::kMathEdCim, true);
  push("computing efficiency [ops/J]", "DNA sequencing",
       table.dna_conventional.computing_efficiency(),
       table.dna_cim.computing_efficiency(), PaperTable2::kDnaEffConv,
       PaperTable2::kDnaEffCim, false);
  push("computing efficiency [ops/J]", "10^6 additions",
       table.math_conventional.computing_efficiency(),
       table.math_cim.computing_efficiency(), PaperTable2::kMathEffConv,
       PaperTable2::kMathEffCim, false);
  push("performance/area [ops/s/mm2]", "DNA sequencing",
       table.dna_conventional.performance_per_area_mm2(),
       table.dna_cim.performance_per_area_mm2(),
       PaperTable2::kDnaPerfAreaConv, PaperTable2::kDnaPerfAreaCim, false);
  push("performance/area [ops/s/mm2]", "10^6 additions",
       table.math_conventional.performance_per_area_mm2(),
       table.math_cim.performance_per_area_mm2(),
       PaperTable2::kMathPerfAreaConv, PaperTable2::kMathPerfAreaCim, false);
  return table;
}

}  // namespace memcim
