// Sparse linear algebra: CSR matrix assembled from triplets and a
// Jacobi-preconditioned conjugate-gradient solver.
//
// Crossbar nodal conductance matrices are symmetric positive definite
// (every node has a conductive path to a driven terminal), which makes
// CG the natural large-array backend; dense LU remains the reference.
//
// Nonlinear solves re-stamp the same nodal pattern every sweep, so the
// matrix supports a symbolic-once / numeric-refresh protocol: assemble
// and finalize() once, then per sweep call begin_update() and rewrite
// values in place — by coordinate (set()/add_to()) or, hot-path, by
// slot index resolved once with slot().  No re-sort, no reallocation.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace memcim {

/// Compressed-sparse-row matrix built incrementally from (row, col, value)
/// triplets; duplicate coordinates are summed, which matches the way
/// nodal-analysis stamps accumulate.
class SparseMatrix {
 public:
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Accumulate `value` into entry (r, c).
  void add(std::size_t r, std::size_t c, double value);

  /// Finalize triplets into CSR form.  Must be called before multiply();
  /// further add() calls require a new finalize().  Duplicates are
  /// summed in insertion order (stable), so repeat assemblies of the
  /// same stamp sequence are bitwise reproducible.
  void finalize();

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::size_t nonzeros() const;

  // --- Numeric refresh (structure reuse) ----------------------------------
  // All of these require finalize() to have been called; the sparsity
  // pattern is frozen and only the stored values change.

  /// Reset every stored value to zero, keeping the CSR structure.
  void begin_update();

  /// Reset stored values to `base` (e.g. the constant stamps of a nodal
  /// matrix, captured once via values()).  Size must equal nonzeros().
  void begin_update(const std::vector<double>& base);

  /// Overwrite the value at structural nonzero (r, c).  Throws if the
  /// coordinate is not part of the pattern.
  void set(std::size_t r, std::size_t c, double value);

  /// Accumulate into the value at structural nonzero (r, c).
  void add_to(std::size_t r, std::size_t c, double value);

  /// Index of structural nonzero (r, c) into values(); resolve once,
  /// then refresh with set_slot()/add_slot() at O(1).
  [[nodiscard]] std::size_t slot(std::size_t r, std::size_t c) const;

  void set_slot(std::size_t s, double value);
  void add_slot(std::size_t s, double value);

  /// CSR value array (requires finalize()); index with slot().
  [[nodiscard]] const std::vector<double>& values() const;

  /// y = A·x (requires finalize()).  Row blocks are evaluated on the
  /// global thread pool; per-row accumulation order is fixed, so the
  /// result is bitwise identical at any thread count.
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

  /// Diagonal of the matrix (requires finalize()).
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Densify — for testing and for small systems handed to LU.
  [[nodiscard]] Matrix to_dense() const;

 private:
  struct Triplet {
    std::size_t r, c;
    double v;
  };

  std::size_t rows_, cols_;
  bool finalized_ = false;
  std::vector<Triplet> triplets_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Outcome of an iterative solve.
struct CgResult {
  std::vector<double> x;
  double residual_norm = 0.0;  ///< ‖b − A·x‖₂ at exit.
  std::size_t iterations = 0;
  bool converged = false;
};

/// Options for conjugate_gradient().
struct CgOptions {
  double tolerance = 1e-10;        ///< relative to ‖b‖₂.
  std::size_t max_iterations = 0;  ///< 0 → 10·n.
  /// Warm-start guess (empty → zeros).  Nonlinear sweeps and transient
  /// steps converge in a handful of iterations when seeded with the
  /// previous solution.
  std::vector<double> x0;
};

/// Jacobi-preconditioned CG on a finalized SPD matrix.
[[nodiscard]] CgResult conjugate_gradient(const SparseMatrix& a,
                                          const std::vector<double>& b,
                                          const CgOptions& options = {});

}  // namespace memcim
