// Sparse linear algebra: CSR matrix assembled from triplets and a
// Jacobi-preconditioned conjugate-gradient solver.
//
// Crossbar nodal conductance matrices are symmetric positive definite
// (every node has a conductive path to a driven terminal), which makes
// CG the natural large-array backend; dense LU remains the reference.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace memcim {

/// Compressed-sparse-row matrix built incrementally from (row, col, value)
/// triplets; duplicate coordinates are summed, which matches the way
/// nodal-analysis stamps accumulate.
class SparseMatrix {
 public:
  SparseMatrix(std::size_t rows, std::size_t cols);

  /// Accumulate `value` into entry (r, c).
  void add(std::size_t r, std::size_t c, double value);

  /// Finalize triplets into CSR form.  Must be called before multiply();
  /// further add() calls require a new finalize().
  void finalize();

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::size_t nonzeros() const;

  /// y = A·x (requires finalize()).
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

  /// Diagonal of the matrix (requires finalize()).
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Densify — for testing and for small systems handed to LU.
  [[nodiscard]] Matrix to_dense() const;

 private:
  struct Triplet {
    std::size_t r, c;
    double v;
  };

  std::size_t rows_, cols_;
  bool finalized_ = false;
  std::vector<Triplet> triplets_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Outcome of an iterative solve.
struct CgResult {
  std::vector<double> x;
  double residual_norm = 0.0;  ///< ‖b − A·x‖₂ at exit.
  std::size_t iterations = 0;
  bool converged = false;
};

/// Options for conjugate_gradient().
struct CgOptions {
  double tolerance = 1e-10;     ///< relative to ‖b‖₂.
  std::size_t max_iterations = 0;  ///< 0 → 10·n.
};

/// Jacobi-preconditioned CG on a finalized SPD matrix.
[[nodiscard]] CgResult conjugate_gradient(const SparseMatrix& a,
                                          const std::vector<double>& b,
                                          const CgOptions& options = {});

}  // namespace memcim
