#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.h"
#include "common/units.h"

namespace memcim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MEMCIM_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MEMCIM_CHECK_MSG(cells.size() == headers_.size(),
                   "row has " << cells.size() << " cells, table has "
                              << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c], '-') << (c + 1 < headers_.size() ? "  " : "");
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << csv_escape(row[c]) << (c + 1 < row.size() ? "," : "");
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string sci_string(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

std::string fixed_string(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string si_string(double value, const std::string& unit, int precision) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},  {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  if (value == 0.0) return "0 " + unit;
  const double mag = std::abs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      std::ostringstream os;
      os << std::setprecision(precision) << (value / p.scale) << ' ' << p.prefix
         << unit;
      return os.str();
    }
  }
  return sci_string(value) + ' ' + unit;
}

}  // namespace memcim
