// Deterministic random number generation.
//
// All stochastic behaviour in memcim (device variability, workload
// generation, fault injection) flows through `Rng`, so a fixed seed
// reproduces a simulation bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace memcim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC1Au) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Lognormal parameterized by the *median* and the sigma of ln(x):
  /// the conventional way memristor R_on/R_off spreads are reported.
  [[nodiscard]] double lognormal_median(double median, double sigma_ln);

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Derive an independent child stream (e.g. one per crossbar device).
  [[nodiscard]] Rng fork();

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace memcim
