#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

double Rng::uniform(double lo, double hi) {
  MEMCIM_CHECK(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  MEMCIM_CHECK(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  MEMCIM_CHECK(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal_median(double median, double sigma_ln) {
  MEMCIM_CHECK(median > 0.0 && sigma_ln >= 0.0);
  if (sigma_ln == 0.0) return median;
  return std::lognormal_distribution<double>(std::log(median), sigma_ln)(engine_);
}

bool Rng::bernoulli(double p) {
  MEMCIM_CHECK(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork() {
  // Draw a fresh seed from this stream; mt19937_64 streams seeded from
  // independent draws are effectively decorrelated for simulation use.
  return Rng(engine_());
}

}  // namespace memcim
