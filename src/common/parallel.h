// Minimal reusable thread pool with a chunked parallel_for.
//
// Design constraints (see docs/SOLVER.md):
//  * Determinism — parallel_for partitions [begin, end) into fixed
//    contiguous chunks; which worker executes a chunk never affects the
//    result as long as chunks write disjoint data.  Reductions are the
//    caller's job (accumulate per chunk, combine in chunk order).
//  * No nested parallelism — a parallel_for issued from inside a worker
//    runs serially on that worker, so solver code can use parallel_for
//    freely without deadlock when workloads fan out above it.
//  * Cheap fallback — with one worker (or a range below the grain) the
//    call degenerates to a plain loop; small problems pay nothing.
//
// The pool size defaults to std::thread::hardware_concurrency() and can
// be overridden by the MEMCIM_THREADS environment variable (read once,
// at first use) or at runtime via set_parallel_threads() (tests use
// this to prove 1-vs-N bitwise identity).
#pragma once

#include <cstddef>
#include <functional>

namespace memcim {

/// A chunk of a parallel_for range: callers receive [begin, end).
using ChunkFn = std::function<void(std::size_t, std::size_t)>;

/// Number of workers the global pool currently runs (>= 1).
[[nodiscard]] std::size_t parallel_threads();

/// Resize the global pool.  n = 0 restores the default (MEMCIM_THREADS
/// env override, else hardware concurrency).  Existing workers are
/// joined; safe to call between parallel regions only.
void set_parallel_threads(std::size_t n);

/// Run fn over [begin, end) split into contiguous chunks of at least
/// `grain` indices, using the global pool.  The calling thread
/// participates.  Serial when the pool has one worker, when the range
/// is below 2·grain, or when called from inside another parallel_for.
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         std::size_t grain, const ChunkFn& fn);

/// Per-index convenience wrapper over parallel_for_chunks.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

}  // namespace memcim
