#include "common/matrix.h"

#include <cmath>

namespace memcim {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  MEMCIM_CHECK_MSG(x.size() == cols_, "matrix-vector size mismatch: " << cols_
                                          << " cols vs " << x.size());
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  MEMCIM_CHECK_MSG(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  pivot_.resize(n);
  for (std::size_t i = 0; i < n; ++i) pivot_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    MEMCIM_CHECK_MSG(best > 0.0 && std::isfinite(best),
                     "singular matrix in LU at column " << k);
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(p, c), lu_(k, c));
      std::swap(pivot_[p], pivot_[k]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) / diag;
      lu_(r, k) = factor;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  MEMCIM_CHECK_MSG(b.size() == n, "rhs size mismatch in LU solve");
  // Apply row permutation, then forward/back substitution.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[pivot_[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double LuFactorization::determinant() const {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> solve_dense(Matrix a, const std::vector<double>& b) {
  return LuFactorization(std::move(a)).solve(b);
}

}  // namespace memcim
