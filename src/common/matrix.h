// Dense linear algebra: row-major matrix and LU factorization with
// partial pivoting.  Used for small/medium crossbar nodal systems and as
// the reference solver the sparse CG backend is tested against.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"

namespace memcim {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix of size n×n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = A·x.
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

  /// Max-abs element, useful for residual checks.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting (in-place Doolittle).
///
/// Throws memcim::Error if the matrix is numerically singular.
class LuFactorization {
 public:
  explicit LuFactorization(Matrix a);

  /// Solve A·x = b for x.
  [[nodiscard]] std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant of the factored matrix (sign-corrected for pivoting).
  [[nodiscard]] double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> pivot_;
  int pivot_sign_ = 1;
};

/// Convenience one-shot solve of A·x = b.
[[nodiscard]] std::vector<double> solve_dense(Matrix a, const std::vector<double>& b);

}  // namespace memcim
