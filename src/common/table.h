// Text/CSV table rendering used by every bench binary to print the
// paper's tables and figure series in a uniform, aligned format.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace memcim {

/// A simple column-aligned text table with optional CSV export.
///
/// Cells are stored as strings; numeric helpers format through
/// `si_string`/scientific notation so bench output stays readable.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render with aligned columns and a header rule.
  [[nodiscard]] std::string to_text() const;

  /// Render as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format in scientific notation with `precision` significant decimals,
/// e.g. 2.0210e-06 — the notation Table 2 of the paper uses.
[[nodiscard]] std::string sci_string(double value, int precision = 4);

/// Format with fixed decimals.
[[nodiscard]] std::string fixed_string(double value, int precision = 3);

}  // namespace memcim
