#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace memcim {

namespace {

/// Set while a thread is executing pool work; nested parallel_for calls
/// from such a thread run serially instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

/// Per-thread busy-time counter ("parallel.worker<i>.busy_ns"): worker
/// threads bind theirs on startup, the caller thread binds worker 0 on
/// first use.  Schedule-dependent by nature — excluded from the
/// determinism guarantee like every *.ns metric.
thread_local telemetry::Counter* t_busy_ns = nullptr;

telemetry::Counter& worker_busy_counter(std::size_t worker) {
  return telemetry::Registry::global().counter(
      "parallel.worker" + std::to_string(worker) + ".busy_ns");
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("MEMCIM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// One fork/join region.  Immutable after publication except for the
/// atomics; shared_ptr ownership lets a late-waking worker look at an
/// already-finished job safely (its chunk counter is exhausted, so the
/// worker exits without touching fn).
struct Job {
  ChunkFn fn;
  std::size_t begin = 0, end = 0, chunk = 1, n_chunks = 0;
  /// Submitter's trace context: workers adopt it while draining, so
  /// their spans parent under the dispatching span.
  telemetry::TraceContext trace_ctx;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> remaining{0};
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
};

void drain(Job& job) {
  const bool telem = telemetry::enabled();
  const std::uint64_t t0 = telem ? telemetry::now_ns() : 0;
  const telemetry::TraceContextScope trace_scope(job.trace_ctx);
  std::size_t executed = 0;
  for (;;) {
    const std::size_t c = job.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.n_chunks) break;
    const std::size_t lo = job.begin + c * job.chunk;
    const std::size_t hi = std::min(job.end, lo + job.chunk);
    job.fn(lo, hi);
    ++executed;
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(job.m);
      job.done = true;
      job.cv.notify_all();
    }
  }
  if (telem && executed > 0) {
    static telemetry::Counter& chunks =
        telemetry::Registry::global().counter("parallel.pool.chunks");
    chunks.add(executed);
    if (t_busy_ns == nullptr) t_busy_ns = &worker_busy_counter(0);
    t_busy_ns->add(telemetry::now_ns() - t0);
  }
}

/// Persistent workers; one job active at a time (parallel_for is a
/// blocking fork/join region and nested calls run serially).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_workers) {
    const std::size_t helpers = n_workers > 1 ? n_workers - 1 : 0;
    workers_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i)
      workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  void run(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_job_ = job;
      ++generation_;
    }
    wake_.notify_all();
    t_in_parallel_region = true;
    drain(*job);
    t_in_parallel_region = false;
    std::unique_lock<std::mutex> lock(job->m);
    job->cv.wait(lock, [&job] { return job->done; });
  }

 private:
  void worker_loop(std::size_t worker) {
    std::uint64_t seen_generation = 0;
    t_in_parallel_region = true;
    t_busy_ns = &worker_busy_counter(worker);
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this, seen_generation] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        job = current_job_;
      }
      if (job) drain(*job);
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::shared_ptr<Job> current_job_;
};

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;  // lazily sized

ThreadPool& pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_thread_count());
  return *g_pool;
}

}  // namespace

std::size_t parallel_threads() { return pool().size(); }

void set_parallel_threads(std::size_t n) {
  const std::size_t target = n > 0 ? n : default_thread_count();
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pool && g_pool->size() == target) return;
  g_pool.reset();  // join old workers before spawning the new pool
  g_pool = std::make_unique<ThreadPool>(target);
}

void parallel_for_chunks(std::size_t begin, std::size_t end,
                         std::size_t grain, const ChunkFn& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (grain == 0) grain = 1;
  ThreadPool& p = pool();
  if (t_in_parallel_region || p.size() == 1 || count < 2 * grain) {
    if (telemetry::enabled()) {
      static telemetry::Counter& serial =
          telemetry::Registry::global().counter("parallel.pool.serial_regions");
      serial.add(1);
    }
    fn(begin, end);
    return;
  }
  if (telemetry::enabled()) {
    static telemetry::Counter& jobs =
        telemetry::Registry::global().counter("parallel.pool.jobs");
    jobs.add(1);
  }
  // Chunk size: at least `grain`, at most what spreads the range across
  // every worker; the partition is a pure function of (range, grain,
  // pool size), never of scheduling.
  const std::size_t by_workers = (count + p.size() - 1) / p.size();
  const std::size_t chunk = std::max(grain, by_workers);
  auto job = std::make_shared<Job>();
  job->fn = fn;
  job->trace_ctx = telemetry::current_trace_context();
  job->begin = begin;
  job->end = end;
  job->chunk = chunk;
  job->n_chunks = (count + chunk - 1) / chunk;
  job->remaining.store(job->n_chunks, std::memory_order_relaxed);
  p.run(job);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, grain,
                      [&fn](std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) fn(i);
                      });
}

}  // namespace memcim
