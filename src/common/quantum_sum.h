// Exact replay of repeated-quantum floating-point accumulation.
//
// Several device books accrue energy by adding the same quantum over
// and over (`energy_ += e_per_switch` per transition, `energy += e` per
// CAM mismatch).  A packed engine that recovers *counts* via popcount
// cannot report `count * quantum` for those books: repeated addition of
// a double is not multiplication, so the totals would drift off the
// scalar path by ULPs and break the bitwise-equivalence contract.
//
// QuantumSumTable memoizes the repeated-addition prefix sums
//
//   s(0) = 0.0,  s(k) = s(k-1) + quantum
//
// so a packed kernel can convert an exact transition count into the
// exact double the scalar accumulator would hold.  The table grows
// lazily and is NOT thread-safe: confine one instance per owner (the
// packed paths only query it from their serial reduction).
#pragma once

#include <cstddef>
#include <vector>

namespace memcim {

class QuantumSumTable {
 public:
  explicit QuantumSumTable(double quantum) : quantum_(quantum) {
    partial_.push_back(0.0);
  }

  [[nodiscard]] double quantum() const { return quantum_; }

  /// The value a double accumulator holds after `count` additions of
  /// the quantum, bit-for-bit.
  [[nodiscard]] double sum(std::size_t count) {
    while (partial_.size() <= count)
      partial_.push_back(partial_.back() + quantum_);
    return partial_[count];
  }

 private:
  double quantum_;
  std::vector<double> partial_;
};

}  // namespace memcim
