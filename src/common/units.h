// Dimension-checked physical quantities.
//
// Every physical number in memcim (device energies, gate delays, chip
// areas, ...) is carried as a `Quantity` whose SI dimension is part of
// the type: adding a time to an energy, or passing a resistance where a
// conductance is expected, is a compile error.  The representation is a
// single double, so there is zero runtime overhead.
//
// The dimension basis is (mass, length, time, current); that spans every
// unit the simulator needs (V, A, Ω, S, J, W, C, Hz, m, m²).
#pragma once

#include <cmath>
#include <compare>
#include <ostream>
#include <string>

namespace memcim {

/// A physical quantity with dimension  kg^M · m^L · s^T · A^I.
template <int M, int L, int T, int I>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// Numeric value in base SI units (kg, m, s, A and their products).
  [[nodiscard]] constexpr double value() const { return value_; }

  constexpr Quantity& operator+=(Quantity rhs) {
    value_ += rhs.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity rhs) {
    value_ -= rhs.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  [[nodiscard]] constexpr Quantity operator-() const { return Quantity(-value_); }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity(a.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity(s * a.value_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity(a.value_ / s);
  }
  /// Ratio of two same-dimension quantities is a plain number.
  friend constexpr double operator/(Quantity a, Quantity b) {
    return a.value_ / b.value_;
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) {
    return a.value_ <=> b.value_;
  }
  friend constexpr bool operator==(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

// Dimension algebra: multiplying/dividing quantities adds/subtracts exponents.
template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
[[nodiscard]] constexpr auto operator*(Quantity<M1, L1, T1, I1> a,
                                       Quantity<M2, L2, T2, I2> b) {
  return Quantity<M1 + M2, L1 + L2, T1 + T2, I1 + I2>(a.value() * b.value());
}

template <int M1, int L1, int T1, int I1, int M2, int L2, int T2, int I2>
  requires(M1 != M2 || L1 != L2 || T1 != T2 || I1 != I2)
[[nodiscard]] constexpr auto operator/(Quantity<M1, L1, T1, I1> a,
                                       Quantity<M2, L2, T2, I2> b) {
  return Quantity<M1 - M2, L1 - L2, T1 - T2, I1 - I2>(a.value() / b.value());
}

template <int M, int L, int T, int I>
  requires(M != 0 || L != 0 || T != 0 || I != 0)
[[nodiscard]] constexpr auto operator/(double s, Quantity<M, L, T, I> q) {
  return Quantity<-M, -L, -T, -I>(s / q.value());
}

// ---------------------------------------------------------------------------
// Named dimensions.
// ---------------------------------------------------------------------------
using Scalar = Quantity<0, 0, 0, 0>;
using Time = Quantity<0, 0, 1, 0>;
using Frequency = Quantity<0, 0, -1, 0>;
using Length = Quantity<0, 1, 0, 0>;
using Area = Quantity<0, 2, 0, 0>;
using Current = Quantity<0, 0, 0, 1>;
using Charge = Quantity<0, 0, 1, 1>;
using Energy = Quantity<1, 2, -2, 0>;
using Power = Quantity<1, 2, -3, 0>;
using Voltage = Quantity<1, 2, -3, -1>;
using Resistance = Quantity<1, 2, -3, -2>;
using Conductance = Quantity<-1, -2, 3, 2>;
using Capacitance = Quantity<-1, -2, 4, 2>;
/// Wire capacitance per unit length (F/m) — the NoC power model's base
/// quantity.
using CapacitancePerLength = Quantity<-1, -3, 4, 2>;
/// Energy·time — the numerator of the paper's "energy-delay per operation".
using EnergyDelay = Quantity<1, 2, -1, 0>;

static_assert(std::is_same_v<decltype(Voltage{} * Current{}), Power>);
static_assert(std::is_same_v<decltype(Voltage{} / Current{}), Resistance>);
static_assert(std::is_same_v<decltype(Voltage{} * Conductance{}), Current>);
static_assert(std::is_same_v<decltype(Power{} * Time{}), Energy>);
static_assert(std::is_same_v<decltype(Energy{} * Time{}), EnergyDelay>);
static_assert(std::is_same_v<decltype(Current{} * Time{}), Charge>);
static_assert(std::is_same_v<decltype(Capacitance{} * Voltage{} * Voltage{}), Energy>);
static_assert(std::is_same_v<decltype(CapacitancePerLength{} * Length{}), Capacitance>);
static_assert(std::is_same_v<decltype(Length{} * Length{}), Area>);
static_assert(std::is_same_v<decltype(1.0 / Time{}), Frequency>);
static_assert(std::is_same_v<decltype(1.0 / Resistance{}), Conductance>);

/// |q| of a quantity.
template <int M, int L, int T, int I>
[[nodiscard]] inline Quantity<M, L, T, I> abs(Quantity<M, L, T, I> q) {
  return Quantity<M, L, T, I>(std::abs(q.value()));
}

// ---------------------------------------------------------------------------
// Literals.  Usage: `using namespace memcim::literals;  auto t = 200.0_ps;`
// ---------------------------------------------------------------------------
namespace literals {

// Time.
constexpr Time operator""_s(long double v) { return Time(double(v)); }
constexpr Time operator""_ms(long double v) { return Time(double(v) * 1e-3); }
constexpr Time operator""_us(long double v) { return Time(double(v) * 1e-6); }
constexpr Time operator""_ns(long double v) { return Time(double(v) * 1e-9); }
constexpr Time operator""_ps(long double v) { return Time(double(v) * 1e-12); }

// Frequency.
constexpr Frequency operator""_Hz(long double v) { return Frequency(double(v)); }
constexpr Frequency operator""_MHz(long double v) { return Frequency(double(v) * 1e6); }
constexpr Frequency operator""_GHz(long double v) { return Frequency(double(v) * 1e9); }

// Length / area.
constexpr Length operator""_m(long double v) { return Length(double(v)); }
constexpr Length operator""_mm(long double v) { return Length(double(v) * 1e-3); }
constexpr Length operator""_um(long double v) { return Length(double(v) * 1e-6); }
constexpr Length operator""_nm(long double v) { return Length(double(v) * 1e-9); }
constexpr Area operator""_m2(long double v) { return Area(double(v)); }
constexpr Area operator""_mm2(long double v) { return Area(double(v) * 1e-6); }
constexpr Area operator""_um2(long double v) { return Area(double(v) * 1e-12); }
constexpr Area operator""_nm2(long double v) { return Area(double(v) * 1e-18); }

// Electrical.
constexpr Voltage operator""_V(long double v) { return Voltage(double(v)); }
constexpr Voltage operator""_mV(long double v) { return Voltage(double(v) * 1e-3); }
constexpr Current operator""_A(long double v) { return Current(double(v)); }
constexpr Current operator""_mA(long double v) { return Current(double(v) * 1e-3); }
constexpr Current operator""_uA(long double v) { return Current(double(v) * 1e-6); }
constexpr Current operator""_nA(long double v) { return Current(double(v) * 1e-9); }
constexpr Resistance operator""_ohm(long double v) { return Resistance(double(v)); }
constexpr Resistance operator""_kohm(long double v) { return Resistance(double(v) * 1e3); }
constexpr Resistance operator""_Mohm(long double v) { return Resistance(double(v) * 1e6); }
constexpr Conductance operator""_S(long double v) { return Conductance(double(v)); }
constexpr Conductance operator""_uS(long double v) { return Conductance(double(v) * 1e-6); }

// Energy / power.
constexpr Energy operator""_J(long double v) { return Energy(double(v)); }
constexpr Energy operator""_pJ(long double v) { return Energy(double(v) * 1e-12); }
constexpr Energy operator""_fJ(long double v) { return Energy(double(v) * 1e-15); }
constexpr Power operator""_W(long double v) { return Power(double(v)); }
constexpr Power operator""_mW(long double v) { return Power(double(v) * 1e-3); }
constexpr Power operator""_uW(long double v) { return Power(double(v) * 1e-6); }
constexpr Power operator""_nW(long double v) { return Power(double(v) * 1e-9); }

}  // namespace literals

/// Format a plain number with an engineering (SI) prefix, e.g. 2.34e-9 →
/// "2.34 n".  `unit` is appended after the prefix ("2.34 ns").
[[nodiscard]] std::string si_string(double value, const std::string& unit,
                                    int precision = 3);

template <int M, int L, int T, int I>
std::ostream& operator<<(std::ostream& os, Quantity<M, L, T, I> q) {
  return os << q.value();
}

}  // namespace memcim
