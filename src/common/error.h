// Error handling primitives for memcim.
//
// Policy (see DESIGN.md §6): constructor failures and precondition
// violations throw `memcim::Error`; recoverable "the math did not
// converge"-style outcomes are reported through return values.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace memcim {

/// Base exception for all memcim failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "MEMCIM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace memcim

/// Precondition / invariant check that is always on (not assert()):
/// simulator inputs come from user code and config files, so violations
/// must be diagnosable in release builds.
#define MEMCIM_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::memcim::detail::raise_check_failure(#expr, __FILE__, __LINE__, ""); \
    }                                                                        \
  } while (false)

#define MEMCIM_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream memcim_check_os_;                                   \
      memcim_check_os_ << msg;                                               \
      ::memcim::detail::raise_check_failure(#expr, __FILE__, __LINE__,      \
                                            memcim_check_os_.str());         \
    }                                                                        \
  } while (false)
