#include "common/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "telemetry/telemetry.h"

namespace memcim {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseMatrix::add(std::size_t r, std::size_t c, double value) {
  MEMCIM_CHECK_MSG(r < rows_ && c < cols_,
                   "sparse add out of range: (" << r << ',' << c << ')');
  triplets_.push_back({r, c, value});
  finalized_ = false;
}

void SparseMatrix::finalize() {
  // stable_sort keeps duplicates in insertion order, so their summation
  // order (and hence the rounded value) is reproducible.
  std::stable_sort(triplets_.begin(), triplets_.end(),
                   [](const Triplet& a, const Triplet& b) {
                     return a.r != b.r ? a.r < b.r : a.c < b.c;
                   });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  col_idx_.reserve(triplets_.size());
  values_.reserve(triplets_.size());

  for (std::size_t i = 0; i < triplets_.size();) {
    const std::size_t r = triplets_[i].r;
    const std::size_t c = triplets_[i].c;
    double sum = 0.0;
    while (i < triplets_.size() && triplets_[i].r == r && triplets_[i].c == c) {
      sum += triplets_[i].v;
      ++i;
    }
    col_idx_.push_back(c);
    values_.push_back(sum);
    row_ptr_[r + 1] = col_idx_.size();
  }
  // Rows with no entries inherit the running prefix.
  for (std::size_t r = 1; r <= rows_; ++r)
    row_ptr_[r] = std::max(row_ptr_[r], row_ptr_[r - 1]);
  finalized_ = true;
}

std::size_t SparseMatrix::nonzeros() const {
  MEMCIM_CHECK(finalized_);
  return values_.size();
}

void SparseMatrix::begin_update() {
  MEMCIM_CHECK_MSG(finalized_, "begin_update() requires finalize()");
  std::fill(values_.begin(), values_.end(), 0.0);
}

void SparseMatrix::begin_update(const std::vector<double>& base) {
  MEMCIM_CHECK_MSG(finalized_, "begin_update() requires finalize()");
  MEMCIM_CHECK_MSG(base.size() == values_.size(),
                   "begin_update() base size mismatch");
  values_ = base;
}

std::size_t SparseMatrix::slot(std::size_t r, std::size_t c) const {
  MEMCIM_CHECK_MSG(finalized_, "slot() requires finalize()");
  MEMCIM_CHECK_MSG(r < rows_ && c < cols_,
                   "slot out of range: (" << r << ',' << c << ')');
  const auto first = col_idx_.begin() +
                     static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = col_idx_.begin() +
                    static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  MEMCIM_CHECK_MSG(it != last && *it == c,
                   "slot(): (" << r << ',' << c
                               << ") is not a structural nonzero");
  return static_cast<std::size_t>(it - col_idx_.begin());
}

void SparseMatrix::set(std::size_t r, std::size_t c, double value) {
  values_[slot(r, c)] = value;
}

void SparseMatrix::add_to(std::size_t r, std::size_t c, double value) {
  values_[slot(r, c)] += value;
}

void SparseMatrix::set_slot(std::size_t s, double value) {
  MEMCIM_CHECK_MSG(finalized_ && s < values_.size(), "set_slot out of range");
  values_[s] = value;
}

void SparseMatrix::add_slot(std::size_t s, double value) {
  MEMCIM_CHECK_MSG(finalized_ && s < values_.size(), "add_slot out of range");
  values_[s] += value;
}

const std::vector<double>& SparseMatrix::values() const {
  MEMCIM_CHECK(finalized_);
  return values_;
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  MEMCIM_CHECK_MSG(finalized_, "multiply() on a non-finalized SparseMatrix");
  MEMCIM_CHECK_MSG(x.size() == cols_, "sparse matvec size mismatch");
  std::vector<double> y(rows_, 0.0);
  // Row blocks are independent; the k-loop order inside each row is
  // fixed, so any thread count produces bitwise-identical y.
  parallel_for_chunks(0, rows_, 2048,
                      [this, &x, &y](std::size_t lo, std::size_t hi) {
                        for (std::size_t r = lo; r < hi; ++r) {
                          double acc = 0.0;
                          for (std::size_t k = row_ptr_[r];
                               k < row_ptr_[r + 1]; ++k)
                            acc += values_[k] * x[col_idx_[k]];
                          y[r] = acc;
                        }
                      });
  return y;
}

std::vector<double> SparseMatrix::diagonal() const {
  MEMCIM_CHECK(finalized_);
  std::vector<double> d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      if (col_idx_[k] == r) d[r] = values_[k];
  return d;
}

Matrix SparseMatrix::to_dense() const {
  MEMCIM_CHECK(finalized_);
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_idx_[k]) += values_[k];
  return m;
}

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

namespace {

CgResult cg_impl(const SparseMatrix& a, const std::vector<double>& b,
                 const CgOptions& options) {
  MEMCIM_CHECK_MSG(a.rows() == a.cols(), "CG requires a square matrix");
  MEMCIM_CHECK_MSG(b.size() == a.rows(), "CG rhs size mismatch");
  MEMCIM_CHECK_MSG(options.x0.empty() || options.x0.size() == b.size(),
                   "CG warm-start size mismatch");
  const std::size_t n = a.rows();
  const std::size_t max_iter =
      options.max_iterations > 0 ? options.max_iterations : 10 * n;

  // Jacobi preconditioner M = diag(A); zero diagonals fall back to 1.
  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  CgResult result;
  const double b_norm = norm2(b);
  std::vector<double> r;
  if (options.x0.empty()) {
    result.x.assign(n, 0.0);
    r = b;  // r = b - A·0
  } else {
    result.x = options.x0;
    r = a.multiply(result.x);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  }
  if (b_norm == 0.0 && options.x0.empty()) {
    result.converged = true;
    return result;
  }
  const double target = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);
  result.residual_norm = norm2(r);
  if (result.residual_norm <= target) {
    result.converged = true;  // warm start already solves the system
    return result;
  }

  std::vector<double> z(n), p(n), ap;
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < max_iter; ++it) {
    ap = a.multiply(p);
    const double p_ap = dot(p, ap);
    MEMCIM_CHECK_MSG(p_ap > 0.0, "CG: matrix is not positive definite");
    const double alpha = rz / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    result.iterations = it + 1;
    const double r_norm = norm2(r);
    if (r_norm <= target) {
      result.residual_norm = r_norm;
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = norm2(r);
  return result;
}

}  // namespace

CgResult conjugate_gradient(const SparseMatrix& a, const std::vector<double>& b,
                            const CgOptions& options) {
  CgResult result = cg_impl(a, b, options);
  if (telemetry::enabled()) {
    using telemetry::Registry;
    static telemetry::Counter& calls =
        Registry::global().counter("solver.cg.calls");
    static telemetry::Counter& iterations =
        Registry::global().counter("solver.cg.iterations");
    static telemetry::Histogram& iters_hist = Registry::global().histogram(
        "solver.cg.iterations_per_call",
        telemetry::exponential_bounds(1.0, 2.0, 12));
    static telemetry::Histogram& residual_hist = Registry::global().histogram(
        "solver.cg.residual", telemetry::exponential_bounds(1e-15, 10.0, 16));
    calls.add(1);
    iterations.add(result.iterations);
    iters_hist.record(static_cast<double>(result.iterations));
    residual_hist.record(result.residual_norm);
  }
  return result;
}

}  // namespace memcim
