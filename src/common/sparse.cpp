#include "common/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace memcim {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseMatrix::add(std::size_t r, std::size_t c, double value) {
  MEMCIM_CHECK_MSG(r < rows_ && c < cols_,
                   "sparse add out of range: (" << r << ',' << c << ')');
  triplets_.push_back({r, c, value});
  finalized_ = false;
}

void SparseMatrix::finalize() {
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.r != b.r ? a.r < b.r : a.c < b.c;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_idx_.clear();
  values_.clear();
  col_idx_.reserve(triplets_.size());
  values_.reserve(triplets_.size());

  for (std::size_t i = 0; i < triplets_.size();) {
    const std::size_t r = triplets_[i].r;
    const std::size_t c = triplets_[i].c;
    double sum = 0.0;
    while (i < triplets_.size() && triplets_[i].r == r && triplets_[i].c == c) {
      sum += triplets_[i].v;
      ++i;
    }
    col_idx_.push_back(c);
    values_.push_back(sum);
    row_ptr_[r + 1] = col_idx_.size();
  }
  // Rows with no entries inherit the running prefix.
  for (std::size_t r = 1; r <= rows_; ++r)
    row_ptr_[r] = std::max(row_ptr_[r], row_ptr_[r - 1]);
  finalized_ = true;
}

std::size_t SparseMatrix::nonzeros() const {
  MEMCIM_CHECK(finalized_);
  return values_.size();
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  MEMCIM_CHECK_MSG(finalized_, "multiply() on a non-finalized SparseMatrix");
  MEMCIM_CHECK_MSG(x.size() == cols_, "sparse matvec size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += values_[k] * x[col_idx_[k]];
    y[r] = acc;
  }
  return y;
}

std::vector<double> SparseMatrix::diagonal() const {
  MEMCIM_CHECK(finalized_);
  std::vector<double> d(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      if (col_idx_[k] == r) d[r] = values_[k];
  return d;
}

Matrix SparseMatrix::to_dense() const {
  MEMCIM_CHECK(finalized_);
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_idx_[k]) += values_[k];
  return m;
}

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

double norm2(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

}  // namespace

CgResult conjugate_gradient(const SparseMatrix& a, const std::vector<double>& b,
                            const CgOptions& options) {
  MEMCIM_CHECK_MSG(a.rows() == a.cols(), "CG requires a square matrix");
  MEMCIM_CHECK_MSG(b.size() == a.rows(), "CG rhs size mismatch");
  const std::size_t n = a.rows();
  const std::size_t max_iter =
      options.max_iterations > 0 ? options.max_iterations : 10 * n;

  // Jacobi preconditioner M = diag(A); zero diagonals fall back to 1.
  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  CgResult result;
  result.x.assign(n, 0.0);
  std::vector<double> r = b;  // r = b - A·0
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  const double target = options.tolerance * b_norm;

  std::vector<double> z(n), p(n), ap;
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < max_iter; ++it) {
    ap = a.multiply(p);
    const double p_ap = dot(p, ap);
    MEMCIM_CHECK_MSG(p_ap > 0.0, "CG: matrix is not positive definite");
    const double alpha = rz / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      result.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    result.iterations = it + 1;
    const double r_norm = norm2(r);
    if (r_norm <= target) {
      result.residual_norm = r_norm;
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  result.residual_norm = norm2(r);
  return result;
}

}  // namespace memcim
