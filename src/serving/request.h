// Typed requests and responses of the batched serving front end.
//
// The serving layer makes the ROADMAP's "millions of users" literal:
// independent user requests stream into the host controller, and the
// paper's CIM value proposition — massively parallel in-memory queries
// — only pays off when the host coalesces compatible requests onto the
// packed 64-lane execution windows the fabric natively provides.
// Three request classes map onto the three resident workloads:
//
//   kKmerQuery — match one encoded k-mer against the tile-resident
//                DNA database (Section III.B.1),
//   kCamSearch — one key against the per-tile CRS CAM bank (IV.C),
//   kAddition  — one TC-adder addition from the parallel-math class
//                (III.B.2; batches of 64 fill one packed lane block).
//
// Everything here is plain data on the service's deterministic virtual
// clock (VirtualNs): admission stamps `arrival`, dispatch/completion
// stamps come from the NoC co-simulation, so every latency is bitwise
// reproducible at any MEMCIM_THREADS setting.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/telemetry.h"

namespace memcim::serving {

/// Virtual nanoseconds on the service clock (starts at 0 per run).
using VirtualNs = std::uint64_t;

/// "No such instant" sentinel (the event loop's +infinity).
inline constexpr VirtualNs kNever = ~VirtualNs{0};

enum class RequestClass : std::uint8_t {
  kKmerQuery = 0,
  kCamSearch = 1,
  kAddition = 2,
};
inline constexpr std::size_t kRequestClasses = 3;

[[nodiscard]] const char* to_string(RequestClass cls);

/// One user request.  Payload fields are class-specific: `key` carries
/// the k-mer/CAM search word, `add_a`/`add_b` the addition operands.
struct Request {
  RequestClass cls = RequestClass::kAddition;
  std::uint64_t id = 0;       ///< caller correlation id (unique per trace)
  VirtualNs arrival = 0;      ///< open-loop arrival instant
  std::uint64_t add_a = 0;
  std::uint64_t add_b = 0;
  std::vector<bool> key;
  /// Stamped at admission (telemetry::new_root_context); propagated
  /// through dispatch packets and echoed on the response.
  telemetry::TraceContext trace{};
};

/// Why an arrival was refused at admission.  The typed shed error is
/// the backpressure contract: a full queue rejects *new* work loudly
/// and never drops work it already accepted.
enum class ShedReason : std::uint8_t {
  kQueueFull,
};

[[nodiscard]] const char* to_string(ShedReason reason);

/// Record of one shed arrival (the service's error return channel).
struct ShedRecord {
  std::uint64_t id = 0;
  RequestClass cls = RequestClass::kAddition;
  ShedReason reason = ShedReason::kQueueFull;
  VirtualNs at = 0;            ///< arrival instant of the refusal
  std::size_t queue_depth = 0; ///< class-queue depth at the refusal
};

/// One completed request.  `sum` answers kAddition; `matches` lists
/// global database/CAM rows (ascending) for the two search classes.
struct Response {
  std::uint64_t id = 0;
  RequestClass cls = RequestClass::kAddition;
  std::uint64_t sum = 0;
  std::vector<std::size_t> matches;

  VirtualNs arrival = 0;
  VirtualNs dispatched = 0;  ///< instant the request's batch launched
  VirtualNs completed = 0;   ///< dispatch + batch service time

  std::uint64_t batch_seq = 0;   ///< which batch served this request
  std::uint32_t batch_lanes = 0; ///< occupancy of that batch
  std::uint64_t trace_id = 0;    ///< echo of the admission TraceContext

  [[nodiscard]] VirtualNs latency() const { return completed - arrival; }
};

/// Semantic payload equality: the fields the batched-vs-scalar bitwise
/// contract covers (ids, class, and result values; timestamps and
/// batch/trace bookkeeping legitimately differ between executions).
[[nodiscard]] inline bool payload_equal(const Response& a, const Response& b) {
  return a.id == b.id && a.cls == b.cls && a.sum == b.sum &&
         a.matches == b.matches;
}

}  // namespace memcim::serving
