#include "serving/trace_gen.h"

#include <cmath>

#include "common/error.h"

namespace memcim::serving {

namespace {

std::vector<bool> random_key(std::size_t bits, Rng& rng) {
  std::vector<bool> key(bits);
  for (std::size_t i = 0; i < bits; ++i) key[i] = rng.bernoulli(0.5);
  return key;
}

RequestClass pick_class(const std::array<double, kRequestClasses>& weights,
                        Rng& rng) {
  double total = 0.0;
  for (const double w : weights) {
    MEMCIM_CHECK_MSG(w >= 0.0, "class weights must be non-negative");
    total += w;
  }
  MEMCIM_CHECK_MSG(total > 0.0, "class weights must not all be zero");
  const double u = rng.uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    acc += weights[c];
    if (u < acc) return static_cast<RequestClass>(c);
  }
  return static_cast<RequestClass>(kRequestClasses - 1);
}

}  // namespace

std::vector<std::vector<bool>> random_words(std::size_t count,
                                            std::size_t bits, Rng& rng) {
  std::vector<std::vector<bool>> words;
  words.reserve(count);
  for (std::size_t i = 0; i < count; ++i) words.push_back(random_key(bits, rng));
  return words;
}

std::vector<Request> generate_trace(const TraceParams& params) {
  MEMCIM_CHECK_MSG(params.mean_interarrival_ns > 0.0,
                   "mean interarrival gap must be positive");
  MEMCIM_CHECK_MSG(params.add_width >= 1 && params.add_width <= 63,
                   "trace add_width must be 1..63");
  Rng rng(params.seed);
  const std::uint64_t add_mask =
      (std::uint64_t{1} << params.add_width) - 1;

  std::vector<Request> trace;
  trace.reserve(params.requests);
  VirtualNs clock = 0;
  for (std::size_t i = 0; i < params.requests; ++i) {
    // Exponential gap, rounded to whole virtual ns.  Zero gaps (ties)
    // are legal — the service admits same-instant arrivals in trace
    // order.
    const double u = rng.uniform(0.0, 1.0);
    const double gap = -params.mean_interarrival_ns * std::log1p(-u);
    const long long gap_ns = std::llround(gap);
    clock += gap_ns < 0 ? VirtualNs{0} : static_cast<VirtualNs>(gap_ns);

    Request r;
    r.cls = pick_class(params.class_weights, rng);
    r.id = i;
    r.arrival = clock;
    switch (r.cls) {
      case RequestClass::kKmerQuery:
        r.key = random_key(params.kmer_key_bits, rng);
        break;
      case RequestClass::kCamSearch:
        r.key = random_key(params.cam_key_bits, rng);
        break;
      case RequestClass::kAddition:
        r.add_a = static_cast<std::uint64_t>(rng.uniform_int(
                      0, static_cast<std::int64_t>(add_mask))) &
                  add_mask;
        r.add_b = static_cast<std::uint64_t>(rng.uniform_int(
                      0, static_cast<std::int64_t>(add_mask))) &
                  add_mask;
        break;
    }
    trace.push_back(std::move(r));
  }
  return trace;
}

std::vector<Response> scalar_reference(
    const TileFabricConfig& fabric_config,
    const ServingWorkloadConfig& workload,
    const std::vector<std::vector<bool>>& kmer_database,
    const std::vector<std::vector<bool>>& cam_rows,
    const std::vector<Request>& trace) {
  TileFabric fabric(fabric_config);
  BatchDispatcher dispatcher(fabric, workload, kmer_database, cam_rows);
  std::vector<Response> responses;
  responses.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    Batch batch;
    batch.cls = trace[i].cls;
    batch.seq = i;
    batch.formed = trace[i].arrival;
    batch.partial = true;
    batch.requests.push_back(trace[i]);
    BatchExecution exec = dispatcher.execute(batch);
    responses.push_back(std::move(exec.responses.front()));
  }
  return responses;
}

std::optional<std::size_t> minimal_failing_trace_prefix(
    const std::vector<Request>& trace,
    const std::function<bool(const std::vector<Request>&)>& holds) {
  for (std::size_t length = 1; length <= trace.size(); ++length) {
    const std::vector<Request> prefix(trace.begin(),
                                      trace.begin() +
                                          static_cast<std::ptrdiff_t>(length));
    if (!holds(prefix)) return length;
  }
  return std::nullopt;
}

}  // namespace memcim::serving
