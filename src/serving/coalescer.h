// Request coalescer: packs compatible queued requests into execution
// windows of at most kPackedLanes (64) lanes — the width one packed
// lane block executes in a single pass (logic/packed.h).
//
// Scheduling policy (all decisions are pure functions of queue state
// and the virtual clock, so the schedule is bitwise deterministic):
//
//   * a window closes FULL the instant its class has max_lanes queued;
//   * a window closes PARTIAL once the class's oldest request has
//     waited window_timeout — the starvation guard: a lone request
//     with no co-arrivals never waits longer than the timeout for
//     lane-mates that are not coming;
//   * when several classes are dispatchable, the one whose head
//     request arrived earliest wins; ties break on the smaller class
//     id.  Full windows outrank partial ones at the same instant.
//   * windows never mix classes and requests leave in FIFO order, so
//     batching preserves per-class arrival order end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "logic/packed.h"
#include "serving/queue.h"
#include "serving/request.h"

namespace memcim::serving {

struct CoalescerPolicy {
  /// Lanes per window, 1..kPackedLanes (one packed lane block).
  std::size_t max_lanes = kPackedLanes;
  /// Partial-window timeout: the longest the oldest queued request of
  /// a class waits before its window dispatches under-full.
  VirtualNs window_timeout = 20'000;
};

/// One closed execution window: `requests.size()` <= max_lanes lanes
/// of a single class, in FIFO order.
struct Batch {
  RequestClass cls = RequestClass::kAddition;
  std::uint64_t seq = 0;     ///< monotone batch sequence number
  VirtualNs formed = 0;      ///< instant the window closed
  bool partial = false;      ///< closed by timeout, not by a full window
  std::vector<Request> requests;

  [[nodiscard]] std::size_t lanes() const { return requests.size(); }
};

class Coalescer {
 public:
  explicit Coalescer(const CoalescerPolicy& policy);

  [[nodiscard]] const CoalescerPolicy& policy() const { return policy_; }

  /// The class whose window should dispatch at `now`, if any.
  /// `queues` is indexed by RequestClass value and must have
  /// kRequestClasses entries.
  [[nodiscard]] std::optional<RequestClass> ready(
      const std::vector<AdmissionQueue>& queues, VirtualNs now) const;

  /// Earliest future instant at which some currently-queued partial
  /// window times out (kNever when every queue is empty).  ready() at
  /// that instant is guaranteed to return a class.
  [[nodiscard]] VirtualNs next_deadline(
      const std::vector<AdmissionQueue>& queues) const;

  /// Close a window of `cls` from its queue at `now`: pop up to
  /// max_lanes requests in FIFO order.  The queue must be non-empty.
  [[nodiscard]] Batch close(std::vector<AdmissionQueue>& queues,
                            RequestClass cls, VirtualNs now);

 private:
  CoalescerPolicy policy_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace memcim::serving
