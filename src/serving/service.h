// The batched request-serving front end: a long-running workload
// service over the tile fabric.
//
//   arrivals ──▶ per-class AdmissionQueues (bounded, typed shed)
//            ──▶ Coalescer (64-lane windows, partial-window timeout)
//            ──▶ BatchDispatcher (NoC co-simulated fabric execution)
//            ──▶ Responses + per-request latency telemetry
//
// The whole service runs on one deterministic virtual clock
// (VirtualNs), advanced by a single-threaded event loop with fixed
// tie-breaks: at each instant, arrivals admit first, then at most one
// window dispatches (the fabric is one shared resource; a new window
// launches only when the previous batch's last completion has ejected).
// Parallelism lives only *inside* a batch — the per-tile compute fan
// out — where every path is already bitwise thread-invariant.  The
// result: responses, shed records, stats, and every serving.* metric
// are bitwise identical at any MEMCIM_THREADS setting.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "serving/coalescer.h"
#include "serving/dispatcher.h"
#include "serving/queue.h"
#include "serving/request.h"

namespace memcim::serving {

struct ServingConfig {
  /// Per-class admission queue bound (the backpressure knob).
  std::size_t queue_capacity = 256;
  CoalescerPolicy coalescer{};
  ServingWorkloadConfig workload{};
};

/// Per-class admission/completion books of one run.
struct ClassStats {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
};

struct ServiceRunStats {
  std::array<ClassStats, kRequestClasses> per_class{};
  std::uint64_t batches = 0;
  std::uint64_t partial_batches = 0;
  std::uint64_t total_lanes = 0;  ///< Σ batch occupancy
  std::uint64_t flits = 0;
  /// Virtual instant the last batch completed (0 with no completions).
  VirtualNs makespan = 0;
  /// Σ per-batch service time — fabric busy time on the virtual clock.
  VirtualNs busy_ns = 0;
  Energy compute_energy{0.0};
  Energy noc_energy{0.0};

  [[nodiscard]] std::uint64_t arrivals() const;
  [[nodiscard]] std::uint64_t completed() const;
  [[nodiscard]] std::uint64_t shed() const;
  /// Mean lanes per dispatched batch (0 with no batches).
  [[nodiscard]] double mean_occupancy() const;
  /// Completed requests per virtual second (0 with zero makespan).
  [[nodiscard]] double sustained_qps() const;
  /// Shed arrivals / total arrivals (0 with no arrivals).
  [[nodiscard]] double shed_rate() const;
};

/// One finished run: responses in completion order (batch sequence,
/// then lane order within the batch), shed records in arrival order.
struct ServiceRunResult {
  std::vector<Response> responses;
  std::vector<ShedRecord> shed;
  ServiceRunStats stats;
};

/// Instantaneous service state handed to a probe at each sample
/// boundary.  Everything here is derived from the virtual clock and
/// the single-threaded event loop, so it is bitwise deterministic at
/// any MEMCIM_THREADS setting.
struct ProbeState {
  std::array<std::size_t, kRequestClasses> queue_depth{};
};

/// Observer driven by the serving event loop's virtual clock — the
/// monitoring plane's attachment point (see src/monitor/sampler.h).
///
/// Boundaries fire at multiples of sample_period(): on_sample(b, ...)
/// covers the half-open interval [b - period, b) — telemetry recorded
/// at exactly instant b belongs to the *next* interval.  Completion
/// metrics are booked at the dispatch instant (the completion instant
/// is known deterministically then), so a batch dispatched in an
/// interval counts toward that interval even when its completion lands
/// later.  After the trace drains, boundaries fire up to the makespan
/// and on_run_end() closes the final (possibly short) interval.
class ServiceProbe {
 public:
  virtual ~ServiceProbe() = default;
  /// Sampling period in virtual ns; must be >= 1.
  [[nodiscard]] virtual VirtualNs sample_period() const = 0;
  /// run() is entering its event loop at virtual instant 0 — the
  /// sampler captures its baseline telemetry snapshot here so fabric
  /// setup costs don't leak into the first interval.
  virtual void on_run_start(const ProbeState& state) { (void)state; }
  /// One interval boundary crossed: `boundary` is the interval's
  /// exclusive end instant.
  virtual void on_sample(VirtualNs boundary, const ProbeState& state) = 0;
  /// The run drained at `end` (== stats.makespan); closes the last
  /// partial interval.
  virtual void on_run_end(VirtualNs end, const ProbeState& state) = 0;
};

class WorkloadService {
 public:
  /// `kmer_database` / `cam_rows` shapes as in BatchDispatcher.
  WorkloadService(TileFabric& fabric, const ServingConfig& config,
                  const std::vector<std::vector<bool>>& kmer_database,
                  const std::vector<std::vector<bool>>& cam_rows);

  [[nodiscard]] const ServingConfig& config() const { return config_; }
  [[nodiscard]] const BatchDispatcher& dispatcher() const {
    return dispatcher_;
  }

  /// Attach (or detach with nullptr) a sample-boundary observer; the
  /// caller keeps ownership and the probe must outlive run().
  void set_probe(ServiceProbe* probe) { probe_ = probe; }

  /// Replay an open-loop arrival trace (nondecreasing `arrival`
  /// stamps) through the service to completion.  Admission stamps a
  /// fresh root trace context on every admitted request.
  [[nodiscard]] ServiceRunResult run(const std::vector<Request>& trace);

 private:
  /// NoC cycles → whole virtual nanoseconds (cycle period rounded to
  /// >= 1 ns keeps the clock integral, hence bitwise deterministic).
  [[nodiscard]] VirtualNs cycles_to_ns(NocCycle cycles) const;

  /// Close and execute one window of `cls` at `now`; returns the
  /// batch's completion instant (the fabric's next-free time).
  VirtualNs dispatch(std::vector<AdmissionQueue>& queues, RequestClass cls,
                     VirtualNs now, ServiceRunResult& out);

  TileFabric& fabric_;
  ServingConfig config_;
  Coalescer coalescer_;
  BatchDispatcher dispatcher_;
  VirtualNs cycle_ns_;
  ServiceProbe* probe_ = nullptr;
};

}  // namespace memcim::serving
