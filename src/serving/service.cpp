#include "serving/service.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace memcim::serving {

namespace {

struct ServingMetrics {
  telemetry::Counter& arrivals;
  telemetry::Counter& admitted;
  telemetry::Counter& shed;
  telemetry::Counter& completed;
  telemetry::Counter& batches;
  telemetry::Counter& batches_partial;
  telemetry::Counter& batch_lanes;
  telemetry::Counter& flits;
  telemetry::Histogram& occupancy;
  std::array<telemetry::Histogram*, kRequestClasses> latency;
  // Per-class admission books ("serving.admitted.kmer", ...) — the
  // monitoring plane's sampler deltas these per interval.
  std::array<telemetry::Counter*, kRequestClasses> admitted_cls;
  std::array<telemetry::Counter*, kRequestClasses> shed_cls;
  std::array<telemetry::Counter*, kRequestClasses> completed_cls;
  ServingMetrics()
      : arrivals(telemetry::Registry::global().counter("serving.arrivals")),
        admitted(telemetry::Registry::global().counter("serving.admitted")),
        shed(telemetry::Registry::global().counter("serving.shed")),
        completed(telemetry::Registry::global().counter("serving.completed")),
        batches(telemetry::Registry::global().counter("serving.batches")),
        batches_partial(
            telemetry::Registry::global().counter("serving.batches_partial")),
        batch_lanes(
            telemetry::Registry::global().counter("serving.batch_lanes")),
        flits(telemetry::Registry::global().counter("serving.flits")),
        occupancy(telemetry::Registry::global().histogram(
            "serving.batch.occupancy",
            telemetry::exponential_bounds(1.0, 2.0, 7))) {
    for (std::size_t c = 0; c < kRequestClasses; ++c) {
      const std::string cls = to_string(static_cast<RequestClass>(c));
      latency[c] = &telemetry::Registry::global().histogram(
          "serving.latency_ns." + cls,
          telemetry::exponential_bounds(64.0, 2.0, 28));
      admitted_cls[c] =
          &telemetry::Registry::global().counter("serving.admitted." + cls);
      shed_cls[c] =
          &telemetry::Registry::global().counter("serving.shed." + cls);
      completed_cls[c] =
          &telemetry::Registry::global().counter("serving.completed." + cls);
    }
  }
};

ServingMetrics& serving_metrics() {
  static ServingMetrics m;
  return m;
}

telemetry::SpanSite& run_site() {
  static telemetry::SpanSite site("serving.run");
  return site;
}

}  // namespace

std::uint64_t ServiceRunStats::arrivals() const {
  std::uint64_t n = 0;
  for (const ClassStats& c : per_class) n += c.arrivals;
  return n;
}

std::uint64_t ServiceRunStats::completed() const {
  std::uint64_t n = 0;
  for (const ClassStats& c : per_class) n += c.completed;
  return n;
}

std::uint64_t ServiceRunStats::shed() const {
  std::uint64_t n = 0;
  for (const ClassStats& c : per_class) n += c.shed;
  return n;
}

double ServiceRunStats::mean_occupancy() const {
  return batches == 0 ? 0.0
                      : static_cast<double>(total_lanes) /
                            static_cast<double>(batches);
}

double ServiceRunStats::sustained_qps() const {
  return makespan == 0 ? 0.0
                       : static_cast<double>(completed()) * 1e9 /
                             static_cast<double>(makespan);
}

double ServiceRunStats::shed_rate() const {
  const std::uint64_t n = arrivals();
  return n == 0 ? 0.0 : static_cast<double>(shed()) / static_cast<double>(n);
}

WorkloadService::WorkloadService(
    TileFabric& fabric, const ServingConfig& config,
    const std::vector<std::vector<bool>>& kmer_database,
    const std::vector<std::vector<bool>>& cam_rows)
    : fabric_(fabric),
      config_(config),
      coalescer_(config.coalescer),
      dispatcher_(fabric, config.workload, kmer_database, cam_rows) {
  MEMCIM_CHECK_MSG(config_.queue_capacity >= 1,
                   "admission queues need capacity >= 1");
  const long long ns = std::llround(fabric_.config().noc.cycle.value() * 1e9);
  cycle_ns_ = ns < 1 ? VirtualNs{1} : static_cast<VirtualNs>(ns);
}

VirtualNs WorkloadService::cycles_to_ns(NocCycle cycles) const {
  return cycles * cycle_ns_;
}

VirtualNs WorkloadService::dispatch(std::vector<AdmissionQueue>& queues,
                                    RequestClass cls, VirtualNs now,
                                    ServiceRunResult& out) {
  ServingMetrics& m = serving_metrics();
  Batch batch = coalescer_.close(queues, cls, now);
  BatchExecution exec = dispatcher_.execute(batch);
  const VirtualNs service_ns = cycles_to_ns(exec.service_cycles);
  const VirtualNs completed_at = now + service_ns;

  ServiceRunStats& stats = out.stats;
  ++stats.batches;
  if (batch.partial) ++stats.partial_batches;
  stats.total_lanes += batch.lanes();
  stats.flits += exec.flits;
  stats.busy_ns += service_ns;
  stats.compute_energy += exec.compute_energy;
  stats.noc_energy += exec.noc_energy;
  if (completed_at > stats.makespan) stats.makespan = completed_at;

  m.batches.add(1);
  if (batch.partial) m.batches_partial.add(1);
  m.batch_lanes.add(batch.lanes());
  m.flits.add(exec.flits);
  if (telemetry::enabled())
    m.occupancy.record(static_cast<double>(batch.lanes()));

  const std::size_t ci = static_cast<std::size_t>(cls);
  for (Response& resp : exec.responses) {
    resp.dispatched = now;
    resp.completed = completed_at;
    ++stats.per_class[ci].completed;
    m.completed.add(1);
    m.completed_cls[ci]->add(1);
    if (telemetry::enabled())
      m.latency[ci]->record(static_cast<double>(resp.latency()));
    out.responses.push_back(std::move(resp));
  }
  return completed_at;
}

ServiceRunResult WorkloadService::run(const std::vector<Request>& trace) {
  telemetry::Span span(run_site());
  ServingMetrics& m = serving_metrics();
  ServiceRunResult out;
  out.responses.reserve(trace.size());

  std::vector<AdmissionQueue> queues;
  queues.reserve(kRequestClasses);
  for (std::size_t c = 0; c < kRequestClasses; ++c)
    queues.emplace_back(config_.queue_capacity);

  const auto queues_empty = [&queues] {
    for (const AdmissionQueue& q : queues)
      if (!q.empty()) return false;
    return true;
  };

  VirtualNs now = 0;
  VirtualNs idle_at = 0;  // instant the fabric is next free
  std::size_t next = 0;   // next un-admitted trace index

  const VirtualNs period = probe_ != nullptr ? probe_->sample_period() : 0;
  MEMCIM_CHECK_MSG(probe_ == nullptr || period >= 1,
                   "probe sample period must be >= 1 virtual ns");
  VirtualNs next_boundary = period;  // first interval is [0, period)
  const auto probe_state = [&queues] {
    ProbeState state;
    for (std::size_t c = 0; c < kRequestClasses; ++c)
      state.queue_depth[c] = queues[c].size();
    return state;
  };
  if (probe_ != nullptr) probe_->on_run_start(probe_state());

  while (next < trace.size() || !queues_empty()) {
    // 1. Admit every arrival due at or before `now` (trace order =
    //    arrival order; ties keep trace order).
    while (next < trace.size() && trace[next].arrival <= now) {
      const Request& incoming = trace[next];
      MEMCIM_CHECK_MSG(next == 0 || trace[next - 1].arrival <= incoming.arrival,
                       "arrival trace must be sorted by arrival instant");
      const std::size_t ci = static_cast<std::size_t>(incoming.cls);
      ++out.stats.per_class[ci].arrivals;
      m.arrivals.add(1);
      Request admitted = incoming;
      admitted.trace = telemetry::new_root_context();
      if (queues[ci].try_push(std::move(admitted))) {
        ++out.stats.per_class[ci].admitted;
        m.admitted.add(1);
        m.admitted_cls[ci]->add(1);
      } else {
        ShedRecord rec;
        rec.id = incoming.id;
        rec.cls = incoming.cls;
        rec.reason = ShedReason::kQueueFull;
        rec.at = incoming.arrival;
        rec.queue_depth = queues[ci].size();
        out.shed.push_back(rec);
        ++out.stats.per_class[ci].shed;
        m.shed.add(1);
        m.shed_cls[ci]->add(1);
      }
      ++next;
    }

    // 2. Fabric free and a window ready → dispatch exactly one batch
    //    (the fabric is one shared resource; idle_at serialises it).
    if (now >= idle_at) {
      if (const auto cls = coalescer_.ready(queues, now); cls.has_value()) {
        idle_at = dispatch(queues, *cls, now, out);
        continue;
      }
    }

    // 3. Advance the clock to the next event: the next arrival, the
    //    fabric freeing up, or the earliest partial-window timeout.
    VirtualNs when = kNever;
    if (next < trace.size() && trace[next].arrival < when)
      when = trace[next].arrival;
    if (idle_at > now && idle_at < when) when = idle_at;
    const VirtualNs deadline = coalescer_.next_deadline(queues);
    if (deadline > now && deadline < when) when = deadline;
    MEMCIM_CHECK_MSG(when != kNever && when > now,
                     "serving event loop stalled (no future event)");
    // Fire every boundary the clock is about to cross.  Boundaries are
    // exclusive interval ends: events at exactly `b` (including the
    // admissions and dispatch about to happen at `when`) belong to the
    // next interval, so a boundary equal to `when` fires now.
    if (probe_ != nullptr)
      while (next_boundary <= when) {
        probe_->on_sample(next_boundary, probe_state());
        next_boundary += period;
      }
    now = when;
  }
  if (probe_ != nullptr) {
    // Drain boundaries up to the makespan (completions were booked at
    // dispatch instants, but the series should still span the full
    // virtual run), then close the final partial interval.
    const VirtualNs end = std::max(out.stats.makespan, now);
    while (next_boundary <= end) {
      probe_->on_sample(next_boundary, probe_state());
      next_boundary += period;
    }
    probe_->on_run_end(end, probe_state());
  }
  return out;
}

}  // namespace memcim::serving
