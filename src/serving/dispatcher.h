// Batch dispatcher: executes one coalesced request window across the
// tile fabric, with the host↔tile traffic costed by the mesh NoC
// co-simulation (the same discipline as workloads/sharded.cpp).
//
// The serving data is *resident in the tiles* — the CIM premise — so
// the host ships request payloads out and result descriptors back:
//
//   kKmerQuery — every tile matches the whole query window against its
//     resident database rows (CimTile::parallel_compare per query);
//     one command packet per tile carries all Q keys, one completion
//     carries Q per-row match bitmaps.
//   kCamSearch — per-tile CRS CAMs evaluate the window key by key
//     (CrsCam::search); same one-command/one-completion-per-tile shape.
//   kAddition  — the window is sharded batch-aligned over the tiles'
//     adder farms (run_parallel_add_ops, packed engine); commands
//     carry the operand pairs, completions the sums.
//
// Batch compute runs one task per tile on the process thread pool;
// results merge in tile order and the traffic replays in one NoC
// session where each completion releases after its tile's compute
// time, so compute and communication overlap exactly.  Every output —
// payloads, service cycles, energy — is bitwise deterministic at any
// MEMCIM_THREADS setting.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/tile_fabric.h"
#include "isa/kernels.h"
#include "logic/cam.h"
#include "serving/coalescer.h"
#include "serving/request.h"

namespace memcim::serving {

/// CAM search engine behind kCamSearch requests.
enum class CamEngine : std::uint8_t {
  kDevice,    ///< CrsCam cell walk (device-accurate energy; default)
  kCompiled,  ///< cached masked-equality program on the packed engine
};

/// Adder engine behind kAddition requests.
enum class AddEngine : std::uint8_t {
  kTcFarm,         ///< CRS TC-adder farm (Table 2 device books; default)
  kCompiledImply,  ///< cached IMP ripple-adder program, packed replay
};

/// Shape of the resident workload state behind the service.
struct ServingWorkloadConfig {
  /// Addition operand width in bits (1..63, TC-adder contract).
  std::size_t add_width = 32;
  /// Adder farm slots per tile; window shards are aligned to this so
  /// each op keeps its physical slot (see Partitioner::batch_aligned).
  std::size_t adders_per_tile = 16;
  /// Per-tile CAM geometry (rows × word_bits).
  CamConfig cam{};
  /// Compiled engines are opt-in: payloads are bitwise identical to the
  /// device paths (tests/serving/compiled_engines_test.cpp), but the
  /// books follow the IMP programs' cost model instead of the device
  /// models, so the defaults keep the committed bench baselines.
  CamEngine cam_engine = CamEngine::kDevice;
  AddEngine add_engine = AddEngine::kTcFarm;
};

/// What one executed batch reports back to the service loop.
struct BatchExecution {
  /// One response per batch request, in batch (FIFO) order, with the
  /// payload fields filled; the service stamps the timestamps.
  std::vector<Response> responses;
  /// Virtual NoC cycles from first command injection to last
  /// completion ejection — the batch's service time.
  NocCycle service_cycles = 0;
  std::uint64_t flits = 0;
  Energy compute_energy{0.0};
  Energy noc_energy{0.0};
};

class BatchDispatcher {
 public:
  /// `kmer_database` must hold exactly tiles × tile.rows words of
  /// tile.row_bits bits (row-major fill: global row = tile · rows +
  /// local row).  `cam_rows` holds at most tiles × cam.rows words of
  /// cam.word_bits bits, filled tile-major the same way.
  BatchDispatcher(TileFabric& fabric, const ServingWorkloadConfig& config,
                  const std::vector<std::vector<bool>>& kmer_database,
                  const std::vector<std::vector<bool>>& cam_rows);

  [[nodiscard]] const ServingWorkloadConfig& config() const { return config_; }
  [[nodiscard]] std::size_t kmer_rows() const {
    return fabric_.tiles() * fabric_.config().tile.rows;
  }
  [[nodiscard]] std::size_t cam_rows() const { return cam_rows_; }

  /// Execute one coalesced window.  `batch` must be non-empty.
  [[nodiscard]] BatchExecution execute(const Batch& batch);

 private:
  void execute_kmer(const Batch& batch, BatchExecution& out);
  void execute_cam(const Batch& batch, BatchExecution& out);
  void execute_add(const Batch& batch, BatchExecution& out);

  /// Inject the per-tile command/completion pair and credit busy
  /// cycles; returns the flits injected.
  std::uint64_t inject_pair(std::size_t tile, std::size_t cmd_bits,
                            std::size_t resp_bits, NocCycle release_base,
                            NocCycle compute_cycles, std::uint64_t fingerprint,
                            const telemetry::TraceContext& cmd_ctx,
                            const telemetry::TraceContext& resp_ctx);

  TileFabric& fabric_;
  ServingWorkloadConfig config_;
  std::vector<CrsCam> cams_;
  std::vector<isa::CompiledCamBank> compiled_cams_;
  std::size_t cam_rows_;
  std::uint64_t dispatched_batches_ = 0;
};

}  // namespace memcim::serving
