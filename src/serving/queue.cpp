#include "serving/queue.h"

#include <utility>

#include "common/error.h"

namespace memcim::serving {

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  MEMCIM_CHECK_MSG(capacity_ >= 1, "admission queue capacity must be >= 1");
}

bool AdmissionQueue::try_push(Request&& request) {
  if (full()) return false;
  fifo_.push_back(std::move(request));
  return true;
}

const Request& AdmissionQueue::front() const {
  MEMCIM_CHECK_MSG(!fifo_.empty(), "front() on an empty admission queue");
  return fifo_.front();
}

VirtualNs AdmissionQueue::oldest_arrival() const {
  return fifo_.empty() ? kNever : fifo_.front().arrival;
}

Request AdmissionQueue::pop() {
  MEMCIM_CHECK_MSG(!fifo_.empty(), "pop() on an empty admission queue");
  Request r = std::move(fifo_.front());
  fifo_.pop_front();
  return r;
}

}  // namespace memcim::serving
