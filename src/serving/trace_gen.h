// Seeded request-trace generation, the scalar (batch-of-1) reference
// executor, and the trace shrinker — the serving test/bench kit.
//
// generate_trace draws an open-loop Poisson arrival process (seeded
// mt19937_64 → bitwise reproducible): exponential interarrival gaps,
// class picked by weight, payloads drawn to the workload shapes.  The
// same trace replayed through WorkloadService::run is the soak/bench
// driver; replayed request-by-request through scalar_reference it is
// the golden model the batched responses must match bitwise.
//
// minimal_failing_trace_prefix is the property-test shrinker: the
// shortest trace prefix on which a predicate already fails (the same
// linear-scan discipline as fault/golden.h's minimal_failing_prefix),
// so a 200-request property failure reports as the few requests that
// actually matter.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "serving/dispatcher.h"
#include "serving/request.h"

namespace memcim::serving {

struct TraceParams {
  std::uint64_t seed = 0xC1A0;
  std::size_t requests = 1000;
  /// Mean exponential interarrival gap (virtual ns).  The offered load
  /// knob: 1e9 / mean_interarrival_ns is the offered QPS.
  double mean_interarrival_ns = 400.0;
  /// Relative class mix (kmer, cam, add); need not sum to 1.
  std::array<double, kRequestClasses> class_weights = {0.05, 0.05, 0.90};
  std::size_t kmer_key_bits = 64;  ///< must equal tile row_bits
  std::size_t cam_key_bits = 32;   ///< must equal cam word_bits
  std::size_t add_width = 32;      ///< operand width for kAddition
};

/// `count` random words of `bits` bits each — database/CAM content.
[[nodiscard]] std::vector<std::vector<bool>> random_words(std::size_t count,
                                                          std::size_t bits,
                                                          Rng& rng);

/// A seeded open-loop arrival trace: `requests` entries, ids 0..n-1,
/// nondecreasing arrival stamps starting at the first gap.
[[nodiscard]] std::vector<Request> generate_trace(const TraceParams& params);

/// The golden model: execute `trace` request by request (every batch
/// has exactly one lane) on a fresh fabric and return responses in
/// trace order.  payload_equal against the batched service's responses
/// is the bitwise serving contract.
[[nodiscard]] std::vector<Response> scalar_reference(
    const TileFabricConfig& fabric_config,
    const ServingWorkloadConfig& workload,
    const std::vector<std::vector<bool>>& kmer_database,
    const std::vector<std::vector<bool>>& cam_rows,
    const std::vector<Request>& trace);

/// Smallest prefix length L (1 ≤ L ≤ trace size) for which
/// `holds(prefix)` is already false; nullopt when the property holds
/// on every prefix (including the full trace).  Linear scan from the
/// shortest prefix — the exact minimum, like fault/golden.h.
[[nodiscard]] std::optional<std::size_t> minimal_failing_trace_prefix(
    const std::vector<Request>& trace,
    const std::function<bool(const std::vector<Request>&)>& holds);

}  // namespace memcim::serving
