#include "serving/dispatcher.h"

#include <algorithm>

#include "arch/partitioner.h"
#include "common/error.h"
#include "common/parallel.h"
#include "telemetry/attribution.h"
#include "workloads/parallel_add.h"

namespace memcim::serving {

namespace {

/// splitmix64 finalizer — packet payload fingerprints (same scheme as
/// the sharded workloads).
std::uint64_t mix_fingerprint(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t flits_for_bits(std::size_t bits, const NocParams& params) {
  return std::max<std::size_t>(
      1, (bits + params.flit_payload_bits - 1) / params.flit_payload_bits);
}

/// Command/completion descriptor overhead: opcode + window tag +
/// checksum, on top of the request payload bits.
constexpr std::size_t kDescriptorBits = 64;

telemetry::SpanSite& dispatch_site() {
  static telemetry::SpanSite site("serving.dispatch");
  return site;
}

telemetry::SpanSite& shard_site() {
  static telemetry::SpanSite site("serving.shard_compute");
  return site;
}

}  // namespace

BatchDispatcher::BatchDispatcher(
    TileFabric& fabric, const ServingWorkloadConfig& config,
    const std::vector<std::vector<bool>>& kmer_database,
    const std::vector<std::vector<bool>>& cam_rows)
    : fabric_(fabric), config_(config), cam_rows_(cam_rows.size()) {
  MEMCIM_CHECK_MSG(config_.add_width >= 1 && config_.add_width <= 63,
                   "serving add_width must be 1..63");
  MEMCIM_CHECK(config_.adders_per_tile >= 1);

  const std::size_t tiles = fabric_.tiles();
  const std::size_t rows = fabric_.config().tile.rows;
  const std::size_t row_bits = fabric_.config().tile.row_bits;
  MEMCIM_CHECK_MSG(kmer_database.size() == tiles * rows,
                   "k-mer database must exactly fill the fabric ("
                       << tiles * rows << " rows)");
  for (std::size_t r = 0; r < kmer_database.size(); ++r) {
    MEMCIM_CHECK(kmer_database[r].size() == row_bits);
    fabric_.tile(r / rows).store_row(r % rows, kmer_database[r]);
  }

  MEMCIM_CHECK_MSG(cam_rows.size() <= tiles * config_.cam.rows,
                   "CAM rows exceed the bank capacity");
  cams_.reserve(tiles);
  for (std::size_t t = 0; t < tiles; ++t) cams_.emplace_back(config_.cam);
  if (config_.cam_engine == CamEngine::kCompiled) {
    compiled_cams_.reserve(tiles);
    for (std::size_t t = 0; t < tiles; ++t)
      compiled_cams_.emplace_back(config_.cam.rows, config_.cam.word_bits);
  }
  for (std::size_t r = 0; r < cam_rows.size(); ++r) {
    MEMCIM_CHECK(cam_rows[r].size() == config_.cam.word_bits);
    cams_[r / config_.cam.rows].write_row(r % config_.cam.rows, cam_rows[r]);
    if (config_.cam_engine == CamEngine::kCompiled)
      compiled_cams_[r / config_.cam.rows].write_row(r % config_.cam.rows,
                                                     cam_rows[r]);
  }
}

std::uint64_t BatchDispatcher::inject_pair(
    std::size_t tile, std::size_t cmd_bits, std::size_t resp_bits,
    NocCycle release_base, NocCycle compute_cycles, std::uint64_t fingerprint,
    const telemetry::TraceContext& cmd_ctx,
    const telemetry::TraceContext& resp_ctx) {
  const NocParams& noc = fabric_.config().noc;
  NocPacket cmd;
  cmd.src = fabric_.host();
  cmd.dst = tile;
  cmd.flits = flits_for_bits(cmd_bits, noc);
  cmd.tag = 2 * tile;
  cmd.release = release_base;
  cmd.fingerprint = mix_fingerprint(fingerprint);
  cmd.trace_id = cmd_ctx.trace_id;
  cmd.parent_span = cmd_ctx.span_id;
  const std::size_t cmd_handle = fabric_.noc().inject(cmd);

  fabric_.note_busy(tile, compute_cycles, static_cast<std::uint32_t>(tile));

  NocPacket resp;
  resp.src = tile;
  resp.dst = fabric_.host();
  resp.flits = flits_for_bits(resp_bits, noc);
  resp.tag = 2 * tile + 1;
  resp.after = cmd_handle;
  resp.release = compute_cycles;
  resp.fingerprint = mix_fingerprint(fingerprint ^ 0xFEEDull);
  resp.trace_id = resp_ctx.trace_id;
  resp.parent_span = resp_ctx.span_id;
  (void)fabric_.noc().inject(resp);

  // Charge the transport to the NoC layer of the attribution book —
  // same discipline as workloads/sharded.cpp, but serving batches are
  // not shard-scoped so the shard column stays the sentinel.
  if (telemetry::enabled()) {
    const auto t = static_cast<std::uint32_t>(tile);
    telemetry::attribute_flits(t, telemetry::kNoShard, cmd.flits + resp.flits);
    const Energy e = fabric_.noc().packet_energy(cmd.src, cmd.dst, cmd.flits) +
                     fabric_.noc().packet_energy(resp.src, resp.dst,
                                                 resp.flits);
    telemetry::attribute_energy(telemetry::AttrLayer::kNoc, t,
                                telemetry::kNoShard, e.value());
  }
  return cmd.flits + resp.flits;
}

BatchExecution BatchDispatcher::execute(const Batch& batch) {
  MEMCIM_CHECK_MSG(!batch.requests.empty(), "cannot execute an empty batch");
  MEMCIM_CHECK(batch.requests.size() <= kPackedLanes);
  // The batch executes under the first request's trace context (the
  // window's root); every response still echoes its own request's
  // trace id, so per-request causality survives coalescing.
  const telemetry::TraceContextScope scope(
      batch.requests.front().trace.valid()
          ? batch.requests.front().trace
          : telemetry::current_trace_context());
  telemetry::Span span(dispatch_site());

  BatchExecution out;
  out.responses.resize(batch.requests.size());
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    const Request& r = batch.requests[i];
    Response& resp = out.responses[i];
    resp.id = r.id;
    resp.cls = r.cls;
    resp.arrival = r.arrival;
    resp.batch_seq = batch.seq;
    resp.batch_lanes = static_cast<std::uint32_t>(batch.requests.size());
    resp.trace_id = r.trace.trace_id;
  }

  switch (batch.cls) {
    case RequestClass::kKmerQuery:
      execute_kmer(batch, out);
      break;
    case RequestClass::kCamSearch:
      execute_cam(batch, out);
      break;
    case RequestClass::kAddition:
      execute_add(batch, out);
      break;
  }
  ++dispatched_batches_;
  return out;
}

void BatchDispatcher::execute_kmer(const Batch& batch, BatchExecution& out) {
  const std::size_t tiles = fabric_.tiles();
  const std::size_t rows = fabric_.config().tile.rows;
  const std::size_t row_bits = fabric_.config().tile.row_bits;
  const std::size_t queries = batch.requests.size();
  for (const Request& r : batch.requests)
    MEMCIM_CHECK_MSG(r.key.size() == row_bits,
                     "k-mer query key must be row_bits wide");

  const telemetry::TraceContext ctx = telemetry::current_trace_context();
  const NocCycle noc_before = fabric_.noc().now();
  const Energy noc_e_before = fabric_.noc().dynamic_energy();

  // Compute: every tile matches the whole window against its rows.
  std::vector<std::vector<std::vector<bool>>> tile_matches(tiles);
  std::vector<Time> tile_latency(tiles, Time{0.0});
  std::vector<Energy> tile_energy(tiles, Energy{0.0});
  std::vector<telemetry::TraceContext> shard_ctx(tiles);
  parallel_for(0, tiles, 1, [&](std::size_t t) {
    const telemetry::TileScope tile_scope(static_cast<std::uint32_t>(t));
    telemetry::Span compute_span(shard_site());
    shard_ctx[t] = telemetry::current_trace_context();
    CimTile& tile = fabric_.tile(t);
    const Time l0 = tile.stats().latency;
    const Energy e0 = tile.stats().energy;
    tile_matches[t].reserve(queries);
    for (const Request& r : batch.requests)
      tile_matches[t].push_back(tile.parallel_compare(r.key));
    tile_latency[t] = tile.stats().latency - l0;
    tile_energy[t] = tile.stats().energy - e0;
  });

  // Merge: global row = tile · rows + local row, ascending.
  for (std::size_t q = 0; q < queries; ++q) {
    std::vector<std::size_t>& matches = out.responses[q].matches;
    for (std::size_t t = 0; t < tiles; ++t)
      for (std::size_t r = 0; r < rows; ++r)
        if (tile_matches[t][q][r]) matches.push_back(t * rows + r);
  }

  // Traffic: one command (all Q keys) and one completion (Q match
  // bitmaps) per tile, completion released after the tile's compute.
  const std::size_t cmd_bits = kDescriptorBits + queries * row_bits;
  const std::size_t resp_bits = kDescriptorBits + queries * rows;
  for (std::size_t t = 0; t < tiles; ++t) {
    const NocCycle compute = fabric_.compute_cycles(tile_latency[t]);
    out.flits += inject_pair(t, cmd_bits, resp_bits, noc_before, compute,
                             0x5E4Bull ^ (batch.seq << 8) ^ t, ctx,
                             shard_ctx[t]);
    out.compute_energy += tile_energy[t];
    telemetry::attribute_energy(telemetry::AttrLayer::kCrossbar,
                                static_cast<std::uint32_t>(t),
                                telemetry::kNoShard, tile_energy[t].value());
  }
  fabric_.noc().run_to_completion();
  const NocCycle makespan = fabric_.noc().makespan();
  out.service_cycles = makespan > noc_before ? makespan - noc_before : 0;
  out.noc_energy = fabric_.noc().dynamic_energy() - noc_e_before;
}

void BatchDispatcher::execute_cam(const Batch& batch, BatchExecution& out) {
  const std::size_t tiles = fabric_.tiles();
  const std::size_t rows = config_.cam.rows;
  const std::size_t queries = batch.requests.size();
  for (const Request& r : batch.requests)
    MEMCIM_CHECK_MSG(r.key.size() == config_.cam.word_bits,
                     "CAM search key must be word_bits wide");

  const telemetry::TraceContext ctx = telemetry::current_trace_context();
  const NocCycle noc_before = fabric_.noc().now();
  const Energy noc_e_before = fabric_.noc().dynamic_energy();

  std::vector<std::vector<CamSearchResult>> per_tile(tiles);
  std::vector<Time> tile_latency(tiles, Time{0.0});
  std::vector<telemetry::TraceContext> shard_ctx(tiles);
  parallel_for(0, tiles, 1, [&](std::size_t t) {
    const telemetry::TileScope tile_scope(static_cast<std::uint32_t>(t));
    telemetry::Span compute_span(shard_site());
    shard_ctx[t] = telemetry::current_trace_context();
    per_tile[t].reserve(queries);
    for (const Request& r : batch.requests) {
      if (config_.cam_engine == CamEngine::kCompiled) {
        // Same match set as the device walk, but costed by the cached
        // masked-equality program's packed replay.
        isa::CamBankSearchResult cr = compiled_cams_[t].search(r.key);
        CamSearchResult sr;
        sr.matching_rows = std::move(cr.matching_rows);
        sr.latency = cr.books.latency;
        sr.energy = cr.books.energy;
        per_tile[t].push_back(std::move(sr));
      } else {
        per_tile[t].push_back(cams_[t].search(r.key));
      }
      tile_latency[t] += per_tile[t].back().latency;
    }
  });

  for (std::size_t q = 0; q < queries; ++q) {
    std::vector<std::size_t>& matches = out.responses[q].matches;
    for (std::size_t t = 0; t < tiles; ++t)
      for (const std::size_t r : per_tile[t][q].matching_rows)
        matches.push_back(t * rows + r);
  }

  const std::size_t cmd_bits = kDescriptorBits + queries * config_.cam.word_bits;
  const std::size_t resp_bits = kDescriptorBits + queries * rows;
  for (std::size_t t = 0; t < tiles; ++t) {
    const NocCycle compute = fabric_.compute_cycles(tile_latency[t]);
    out.flits += inject_pair(t, cmd_bits, resp_bits, noc_before, compute,
                             0xCA4Bull ^ (batch.seq << 8) ^ t, ctx,
                             shard_ctx[t]);
    Energy tile_e{0.0};
    for (const CamSearchResult& r : per_tile[t]) tile_e += r.energy;
    out.compute_energy += tile_e;
    telemetry::attribute_energy(telemetry::AttrLayer::kLogic,
                                static_cast<std::uint32_t>(t),
                                telemetry::kNoShard, tile_e.value());
  }
  fabric_.noc().run_to_completion();
  const NocCycle makespan = fabric_.noc().makespan();
  out.service_cycles = makespan > noc_before ? makespan - noc_before : 0;
  out.noc_energy = fabric_.noc().dynamic_energy() - noc_e_before;
}

void BatchDispatcher::execute_add(const Batch& batch, BatchExecution& out) {
  const std::size_t tiles = fabric_.tiles();
  const std::size_t ops = batch.requests.size();
  const std::uint64_t mask =
      (std::uint64_t{1} << config_.add_width) - 1;
  for (const Request& r : batch.requests)
    MEMCIM_CHECK_MSG((r.add_a | r.add_b) <= mask,
                     "addition operands exceed add_width");

  const telemetry::TraceContext ctx = telemetry::current_trace_context();
  const NocCycle noc_before = fabric_.noc().now();
  const Energy noc_e_before = fabric_.noc().dynamic_energy();

  std::vector<std::uint64_t> op_a(ops), op_b(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    op_a[i] = batch.requests[i].add_a;
    op_b[i] = batch.requests[i].add_b;
  }

  // Batch-aligned shards keep each op's physical adder slot, exactly
  // like the sharded workload layer.
  const ShardPlan plan =
      Partitioner::batch_aligned(ops, tiles, config_.adders_per_tile);
  std::vector<ParallelAddResult> per_shard(tiles);
  std::vector<telemetry::TraceContext> shard_ctx(tiles);
  parallel_for(0, tiles, 1, [&](std::size_t t) {
    const Shard& s = plan.shards[t];
    if (s.empty()) return;
    const telemetry::TileScope tile_scope(static_cast<std::uint32_t>(t));
    telemetry::Span compute_span(shard_site());
    shard_ctx[t] = telemetry::current_trace_context();
    ParallelAddParams params;
    params.operations = s.size();
    params.width = config_.add_width;
    params.adders = config_.adders_per_tile;
    const std::vector<std::uint64_t> a(
        op_a.begin() + static_cast<std::ptrdiff_t>(s.begin),
        op_a.begin() + static_cast<std::ptrdiff_t>(s.end));
    const std::vector<std::uint64_t> b(
        op_b.begin() + static_cast<std::ptrdiff_t>(s.begin),
        op_b.begin() + static_cast<std::ptrdiff_t>(s.end));
    if (config_.add_engine == AddEngine::kCompiledImply) {
      // One packed window per operand pair on the cached IMP ripple
      // adder.  The farm still has adders_per_tile physical slots, so
      // wall latency runs the windows in ceil(ops/adders) back-to-back
      // batches, like the TC farm.
      isa::CompiledAddResult cr =
          isa::run_compiled_add(config_.add_width, a, b);
      ParallelAddResult r;
      r.sums = std::move(cr.sums);
      r.total_pulses = cr.books.pulses_per_window * s.size();
      r.total_energy = cr.books.energy;
      const std::size_t batches =
          (s.size() + config_.adders_per_tile - 1) / config_.adders_per_tile;
      r.latency = cr.books.latency * static_cast<double>(batches);
      for (std::size_t i = 0; i < s.size(); ++i) {
        // The TC farm reports sums mod 2^width; fold the compiled
        // adder's carry-out away so the payload is engine-invariant.
        r.sums[i] &= mask;
        if (r.sums[i] != ((a[i] + b[i]) & mask)) ++r.mismatches;
      }
      r.used_packed_engine = true;
      per_shard[t] = std::move(r);
    } else {
      per_shard[t] =
          run_parallel_add_ops(params, fabric_.config().tile.cell, a, b);
    }
  });

  for (const Shard& s : plan.shards) {
    if (s.empty()) continue;
    const ParallelAddResult& r = per_shard[s.tile];
    MEMCIM_CHECK(r.mismatches == 0);
    for (std::size_t i = 0; i < s.size(); ++i)
      out.responses[s.begin + i].sum = r.sums[i];
    out.compute_energy += r.total_energy;
    const auto tid = static_cast<std::uint32_t>(s.tile);
    telemetry::attribute_energy(telemetry::AttrLayer::kLogic, tid,
                                telemetry::kNoShard, r.total_energy.value());
    telemetry::attribute_pulses(telemetry::AttrLayer::kDevice, tid,
                                telemetry::kNoShard, r.total_pulses);
  }

  const std::size_t w = config_.add_width;
  for (const Shard& s : plan.shards) {
    if (s.empty()) continue;
    const std::size_t cmd_bits = kDescriptorBits + s.size() * 2 * w;
    const std::size_t resp_bits = kDescriptorBits + s.size() * w;
    const NocCycle compute =
        fabric_.compute_cycles(per_shard[s.tile].latency);
    out.flits += inject_pair(s.tile, cmd_bits, resp_bits, noc_before, compute,
                             0xADD0ull ^ (batch.seq << 8) ^ s.tile, ctx,
                             shard_ctx[s.tile]);
  }
  fabric_.noc().run_to_completion();
  const NocCycle makespan = fabric_.noc().makespan();
  out.service_cycles = makespan > noc_before ? makespan - noc_before : 0;
  out.noc_energy = fabric_.noc().dynamic_energy() - noc_e_before;
}

}  // namespace memcim::serving
