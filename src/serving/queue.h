// Bounded per-class admission queue with a typed shed policy.
//
// The backpressure contract (tested in tests/serving/queue_test.cpp):
//   * capacity is a hard bound — try_push on a full queue refuses the
//     request, leaves the queue untouched, and the caller records a
//     typed ShedRecord (never a silent drop, never a block);
//   * work that was accepted is never dropped — the only way out of
//     the queue is pop(), in FIFO order;
//   * FIFO order within the class is the service's ordering guarantee
//     (cross-class order is the coalescer's scheduling decision).
#pragma once

#include <cstddef>
#include <deque>

#include "serving/request.h"

namespace memcim::serving {

class AdmissionQueue {
 public:
  /// A queue admitting at most `capacity` (>= 1) requests at once.
  explicit AdmissionQueue(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return fifo_.size(); }
  [[nodiscard]] bool empty() const { return fifo_.empty(); }
  [[nodiscard]] bool full() const { return fifo_.size() >= capacity_; }

  /// Admit `request`, or refuse it (returning false) when full.  A
  /// refused request leaves the queue bit-for-bit unchanged.
  [[nodiscard]] bool try_push(Request&& request);

  /// Oldest queued request; queue must be non-empty.
  [[nodiscard]] const Request& front() const;
  /// Arrival instant of the oldest queued request (kNever when empty)
  /// — the coalescer's partial-window timeout anchor.
  [[nodiscard]] VirtualNs oldest_arrival() const;

  /// Remove and return the oldest request; queue must be non-empty.
  [[nodiscard]] Request pop();

 private:
  std::size_t capacity_;
  std::deque<Request> fifo_;
};

}  // namespace memcim::serving
