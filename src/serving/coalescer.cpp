#include "serving/coalescer.h"

#include "common/error.h"

namespace memcim::serving {

namespace {

/// Saturating deadline: arrival + timeout without u64 wrap.
VirtualNs deadline_of(VirtualNs arrival, VirtualNs timeout) {
  return arrival > kNever - timeout ? kNever : arrival + timeout;
}

}  // namespace

Coalescer::Coalescer(const CoalescerPolicy& policy) : policy_(policy) {
  MEMCIM_CHECK_MSG(policy_.max_lanes >= 1 && policy_.max_lanes <= kPackedLanes,
                   "coalescer max_lanes must be 1.." << kPackedLanes);
}

std::optional<RequestClass> Coalescer::ready(
    const std::vector<AdmissionQueue>& queues, VirtualNs now) const {
  MEMCIM_CHECK(queues.size() == kRequestClasses);
  // Full windows first, then timed-out partial windows; within each
  // tier the earliest head arrival wins, ties on the smaller class id
  // (strict < keeps the first hit).
  std::optional<RequestClass> pick;
  VirtualNs pick_arrival = kNever;
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    if (queues[c].size() < policy_.max_lanes) continue;
    if (queues[c].oldest_arrival() < pick_arrival) {
      pick = static_cast<RequestClass>(c);
      pick_arrival = queues[c].oldest_arrival();
    }
  }
  if (pick.has_value()) return pick;
  for (std::size_t c = 0; c < kRequestClasses; ++c) {
    if (queues[c].empty()) continue;
    const VirtualNs oldest = queues[c].oldest_arrival();
    if (deadline_of(oldest, policy_.window_timeout) > now) continue;
    if (oldest < pick_arrival) {
      pick = static_cast<RequestClass>(c);
      pick_arrival = oldest;
    }
  }
  return pick;
}

VirtualNs Coalescer::next_deadline(
    const std::vector<AdmissionQueue>& queues) const {
  MEMCIM_CHECK(queues.size() == kRequestClasses);
  VirtualNs earliest = kNever;
  for (const AdmissionQueue& q : queues) {
    if (q.empty()) continue;
    const VirtualNs d = deadline_of(q.oldest_arrival(), policy_.window_timeout);
    if (d < earliest) earliest = d;
  }
  return earliest;
}

Batch Coalescer::close(std::vector<AdmissionQueue>& queues, RequestClass cls,
                       VirtualNs now) {
  MEMCIM_CHECK(queues.size() == kRequestClasses);
  AdmissionQueue& queue = queues[static_cast<std::size_t>(cls)];
  MEMCIM_CHECK_MSG(!queue.empty(), "close() on an empty class queue");
  Batch batch;
  batch.cls = cls;
  batch.seq = next_seq_++;
  batch.formed = now;
  const std::size_t lanes = std::min(queue.size(), policy_.max_lanes);
  batch.partial = lanes < policy_.max_lanes;
  batch.requests.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i)
    batch.requests.push_back(queue.pop());
  return batch;
}

}  // namespace memcim::serving
