#include "serving/request.h"

namespace memcim::serving {

const char* to_string(RequestClass cls) {
  switch (cls) {
    case RequestClass::kKmerQuery:
      return "kmer";
    case RequestClass::kCamSearch:
      return "cam";
    case RequestClass::kAddition:
      return "add";
  }
  return "?";
}

const char* to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
  }
  return "?";
}

}  // namespace memcim::serving
