#include "conv/cluster.h"

#include <algorithm>

#include "common/error.h"

namespace memcim {

ClusterRunResult run_cluster(const std::vector<MemoryTrace>& core_traces,
                             const CacheConfig& cache_cfg,
                             const ClusterTiming& timing) {
  MEMCIM_CHECK_MSG(!core_traces.empty(), "cluster needs at least one core");
  MEMCIM_CHECK(timing.clock.value() > 0.0);

  SetAssociativeCache cache(cache_cfg);
  ClusterRunResult result;
  result.core_cycles.assign(core_traces.size(), 0.0);

  // Round-robin interleave until every trace is drained.
  std::vector<std::size_t> cursor(core_traces.size(), 0);
  bool any_left = true;
  while (any_left) {
    any_left = false;
    for (std::size_t core = 0; core < core_traces.size(); ++core) {
      const auto& accesses = core_traces[core].accesses();
      if (cursor[core] >= accesses.size()) continue;
      any_left = true;
      const MemoryAccess& a = accesses[cursor[core]++];
      const bool hit = cache.access(a.address, a.is_write);
      result.core_cycles[core] +=
          timing.compute_cycles_per_op +
          (hit ? timing.hit_cycles : timing.miss_penalty_cycles);
    }
  }
  result.cache = cache.stats();
  const double worst =
      *std::max_element(result.core_cycles.begin(), result.core_cycles.end());
  result.wall_time = Time(worst / timing.clock.value());
  return result;
}

}  // namespace memcim
