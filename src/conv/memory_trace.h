// Memory access traces — the input of the conventional-baseline
// simulator.  The paper *assumes* cache hit ratios (50 % for the DNA
// workload, 98 % for math, Table 1); this subsystem lets us *measure*
// them by replaying the actual address stream of the sorted-index
// algorithm through a real cache model (see conv/cache.h).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace memcim {

struct MemoryAccess {
  std::uint64_t address = 0;
  bool is_write = false;
};

/// An append-only access stream.
class MemoryTrace {
 public:
  void record(std::uint64_t address, bool is_write = false) {
    accesses_.push_back({address, is_write});
  }

  [[nodiscard]] const std::vector<MemoryAccess>& accesses() const {
    return accesses_;
  }
  [[nodiscard]] std::size_t size() const { return accesses_.size(); }
  [[nodiscard]] bool empty() const { return accesses_.empty(); }
  void clear() { accesses_.clear(); }

 private:
  std::vector<MemoryAccess> accesses_;
};

/// Sequential scan of `bytes` bytes in `stride`-byte steps from `base`.
[[nodiscard]] MemoryTrace sequential_trace(std::uint64_t base,
                                           std::uint64_t bytes,
                                           std::uint64_t stride = 8);

/// Uniformly random accesses across a `bytes`-sized region.
[[nodiscard]] MemoryTrace random_trace(std::uint64_t base, std::uint64_t bytes,
                                       std::size_t count, Rng& rng);

}  // namespace memcim
