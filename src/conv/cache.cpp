#include "conv/cache.h"

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {
bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

struct CacheMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& evictions;
  CacheMetrics()
      : hits(telemetry::Registry::global().counter("conv.cache.hits")),
        misses(telemetry::Registry::global().counter("conv.cache.misses")),
        evictions(
            telemetry::Registry::global().counter("conv.cache.evictions")) {}
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}
}  // namespace

SetAssociativeCache::SetAssociativeCache(const CacheConfig& config)
    : config_(config) {
  MEMCIM_CHECK_MSG(is_power_of_two(config_.line_bytes),
                   "line size must be a power of two");
  MEMCIM_CHECK_MSG(config_.ways >= 1, "need at least one way");
  MEMCIM_CHECK_MSG(config_.size_bytes >= config_.line_bytes * config_.ways,
                   "cache smaller than one set");
  MEMCIM_CHECK_MSG(
      config_.size_bytes % (config_.line_bytes * config_.ways) == 0,
      "size must be a whole number of sets");
  sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  MEMCIM_CHECK_MSG(is_power_of_two(sets_), "set count must be a power of two");
  lines_.assign(sets_ * config_.ways, Line{});
}

std::size_t SetAssociativeCache::set_of(std::uint64_t address) const {
  return static_cast<std::size_t>((address / config_.line_bytes) %
                                  sets_);
}

std::uint64_t SetAssociativeCache::tag_of(std::uint64_t address) const {
  return address / config_.line_bytes / sets_;
}

bool SetAssociativeCache::access(std::uint64_t address, bool is_write) {
  (void)is_write;  // write-allocate: identical placement behaviour
  ++clock_;
  const std::size_t set = set_of(address);
  const std::uint64_t tag = tag_of(address);
  Line* base = &lines_[set * config_.ways];

  // Hit?
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru_stamp = clock_;
      ++stats_.hits;
      cache_metrics().hits.add(1);
      return true;
    }
  }
  // Miss: fill an invalid way or evict the LRU one.
  ++stats_.misses;
  cache_metrics().misses.add(1);
  Line* victim = &base[0];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru_stamp < victim->lru_stamp) victim = &base[w];
  }
  if (victim->valid) {
    ++stats_.evictions;
    cache_metrics().evictions.add(1);
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru_stamp = clock_;
  return false;
}

void SetAssociativeCache::run(const MemoryTrace& trace) {
  for (const MemoryAccess& a : trace.accesses()) (void)access(a.address, a.is_write);
}

void SetAssociativeCache::flush() {
  for (Line& line : lines_) line.valid = false;
}

bool SetAssociativeCache::contains(std::uint64_t address) const {
  const std::size_t set = set_of(address);
  const std::uint64_t tag = tag_of(address);
  const Line* base = &lines_[set * config_.ways];
  for (std::size_t w = 0; w < config_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

}  // namespace memcim
