#include "conv/memory_trace.h"

#include "common/error.h"

namespace memcim {

MemoryTrace sequential_trace(std::uint64_t base, std::uint64_t bytes,
                             std::uint64_t stride) {
  MEMCIM_CHECK(stride > 0);
  MemoryTrace trace;
  for (std::uint64_t offset = 0; offset < bytes; offset += stride)
    trace.record(base + offset);
  return trace;
}

MemoryTrace random_trace(std::uint64_t base, std::uint64_t bytes,
                         std::size_t count, Rng& rng) {
  MEMCIM_CHECK(bytes > 0);
  MemoryTrace trace;
  for (std::size_t i = 0; i < count; ++i)
    trace.record(base + static_cast<std::uint64_t>(rng.uniform_int(
                            0, static_cast<std::int64_t>(bytes - 1))));
  return trace;
}

}  // namespace memcim
