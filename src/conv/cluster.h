// Trace-driven cluster model: N cores with a shared L1, the
// organisation of the paper's conventional machine ("a certain number
// of clusters of processing units, each cluster shares an 8kB L1
// cache").  Cores interleave their access streams round-robin into the
// shared cache; the timing model applies Table 1's hit/miss cycle
// accounting to the *measured* hit sequence.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "conv/cache.h"

namespace memcim {

struct ClusterTiming {
  double hit_cycles = 1.0;
  double miss_penalty_cycles = 165.0;  ///< Table 1 [55]
  double compute_cycles_per_op = 1.0;
  Frequency clock{1e9};
};

struct ClusterRunResult {
  CacheStats cache;
  /// Cycles each core spent (memory stalls + compute).
  std::vector<double> core_cycles;
  /// Wall time of the slowest core.
  Time wall_time{0.0};
  /// Average achieved hit rate — the number the paper assumes.
  [[nodiscard]] double hit_rate() const { return cache.hit_rate(); }
};

/// Replay one trace per core against a shared cache.  Accesses are
/// interleaved round-robin (one access per core per turn), modelling
/// the contention that degrades per-core locality.  Each core is
/// charged `compute_cycles_per_op` per access on top of the memory
/// cycles.
[[nodiscard]] ClusterRunResult run_cluster(
    const std::vector<MemoryTrace>& core_traces, const CacheConfig& cache_cfg,
    const ClusterTiming& timing);

}  // namespace memcim
