// Set-associative cache model with LRU replacement — the shared 8 kB
// L1 of the paper's conventional clusters (Table 1), made executable.
#pragma once

#include <cstdint>
#include <vector>

#include "conv/memory_trace.h"

namespace memcim {

struct CacheConfig {
  std::size_t size_bytes = 8 * 1024;  ///< Table 1: 8 kB shared L1
  std::size_t line_bytes = 64;
  std::size_t ways = 4;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(accesses());
  }
};

class SetAssociativeCache {
 public:
  explicit SetAssociativeCache(const CacheConfig& config);

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] std::size_t sets() const { return sets_; }

  /// One access; returns true on hit.  Write misses allocate
  /// (write-allocate policy); replacement is true LRU per set.
  bool access(std::uint64_t address, bool is_write = false);

  /// Replay a whole trace.
  void run(const MemoryTrace& trace);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Drop all lines (cold restart), keeping statistics.
  void flush();

  /// True if the line containing `address` is resident.
  [[nodiscard]] bool contains(std::uint64_t address) const;

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t lru_stamp = 0;  ///< larger = more recently used
  };

  [[nodiscard]] std::size_t set_of(std::uint64_t address) const;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t address) const;

  CacheConfig config_;
  std::size_t sets_;
  std::vector<Line> lines_;  // sets_ × ways, row-major
  std::uint64_t clock_ = 0;
  CacheStats stats_;
};

}  // namespace memcim
