#include "telemetry/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "telemetry/trace_export.h"

namespace memcim::telemetry {

namespace detail {

namespace {
bool initial_enabled() {
#if MEMCIM_TELEMETRY_COMPILED
  if (const char* env = std::getenv("MEMCIM_TELEMETRY"))
    return !(env[0] == '0' && env[1] == '\0');
  return true;
#else
  return false;
#endif
}
}  // namespace

std::atomic<bool> g_enabled{initial_enabled()};
std::atomic<bool> g_tracing{false};

std::size_t assign_shard() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
}

}  // namespace detail

void set_enabled(bool on) {
#if MEMCIM_TELEMETRY_COMPILED
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t epoch_ns() {
  static const std::uint64_t epoch = steady_ns();
  return epoch;
}

}  // namespace

std::uint64_t now_ns() { return steady_ns() - epoch_ns(); }

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

namespace {

thread_local TraceContext t_trace_context;
thread_local std::uint32_t t_current_tile = kNoTile;

std::uint64_t next_unique_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceContext current_trace_context() { return t_trace_context; }

TraceContext new_root_context() {
  if (!enabled()) return {};
  return {next_unique_id(), 0};
}

std::uint64_t new_span_id() { return next_unique_id(); }

TraceContextScope::TraceContextScope(TraceContext ctx)
    : prev_(t_trace_context) {
  t_trace_context = ctx;
}

TraceContextScope::~TraceContextScope() { t_trace_context = prev_; }

std::uint32_t current_tile() { return t_current_tile; }

TileScope::TileScope(std::uint32_t tile) : prev_(t_current_tile) {
  t_current_tile = tile;
}

TileScope::~TileScope() { t_current_tile = prev_; }

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> upper_bounds)
    : name_(std::move(name)),
      bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::record(double v) {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  return counts;
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

double HistogramSample::percentile(double q) const {
  if (count == 0) return 0.0;
  const double fraction = std::min(std::max(q, 0.0), 100.0) / 100.0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(count)));
  rank = std::min(std::max<std::uint64_t>(rank, 1), count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    cumulative += bucket_counts[i];
    if (cumulative >= rank) {
      if (i >= upper_bounds.size()) return max;  // overflow bucket
      return std::min(upper_bounds[i], max);
    }
  }
  return max;  // unreachable when bucket_counts sums to count
}

bool HistogramSample::merge(const HistogramSample& other) {
  if (upper_bounds != other.upper_bounds ||
      bucket_counts.size() != other.bucket_counts.size())
    return false;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i)
    bucket_counts[i] += other.bucket_counts[i];
  count += other.count;
  if (other.count > 0) {
    min = count == other.count ? other.min : std::min(min, other.min);
    max = count == other.count ? other.max : std::max(max, other.max);
  }
  return true;
}

bool MetricsSnapshot::delta(const MetricsSnapshot& earlier,
                            MetricsSnapshot& out, std::string& error) const {
  MetricsSnapshot result;
  result.counters.reserve(counters.size());
  for (const CounterSample& later : counters) {
    const std::uint64_t before = earlier.counter(later.name);
    if (before > later.value) {
      error = "counter '" + later.name +
              "' went backwards (registry reset between snapshots?)";
      return false;
    }
    result.counters.push_back({later.name, later.value - before});
  }
  // A nonzero counter that vanished means the "later" snapshot predates
  // the "earlier" one (or came from a different registry).
  for (const CounterSample& before : earlier.counters) {
    if (before.value == 0) continue;
    bool present = false;
    for (const CounterSample& later : counters)
      if (later.name == before.name) {
        present = true;
        break;
      }
    if (!present) {
      error = "counter '" + before.name +
              "' present earlier but missing later (snapshots swapped?)";
      return false;
    }
  }
  result.gauges = gauges;
  result.histograms.reserve(histograms.size());
  for (const HistogramSample& later : histograms) {
    const HistogramSample* before = earlier.histogram(later.name);
    HistogramSample d = later;  // keeps bounds and the later min/max
    if (before != nullptr) {
      if (before->upper_bounds != later.upper_bounds ||
          before->bucket_counts.size() != later.bucket_counts.size()) {
        error = "histogram '" + later.name +
                "' changed bounds between snapshots";
        return false;
      }
      if (before->count > later.count) {
        error = "histogram '" + later.name +
                "' count went backwards (registry reset between snapshots?)";
        return false;
      }
      for (std::size_t i = 0; i < d.bucket_counts.size(); ++i) {
        if (before->bucket_counts[i] > later.bucket_counts[i]) {
          error = "histogram '" + later.name + "' bucket " +
                  std::to_string(i) + " went backwards";
          return false;
        }
        d.bucket_counts[i] -= before->bucket_counts[i];
      }
      d.count -= before->count;
    }
    result.histograms.push_back(std::move(d));
  }
  out = std::move(result);
  return true;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const CounterSample& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

const HistogramSample* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramSample& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name),
                                                  std::move(upper_bounds)))
             .first;
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.min = h->min();
    s.max = h->max();
    s.upper_bounds = h->upper_bounds();
    s.bucket_counts = h->bucket_counts();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

// ---------------------------------------------------------------------------
// Trace collection
// ---------------------------------------------------------------------------

namespace {

/// Per-thread event buffer.  Owned jointly by the writing thread
/// (thread_local shared_ptr) and the global collector, so events
/// survive thread exit until the next session.
struct ThreadTraceBuffer {
  std::mutex mutex;  // appends are single-writer; export may race
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::atomic<std::uint32_t> next_tid{0};
};

TraceState& trace_state() {
  static TraceState state;
  return state;
}

ThreadTraceBuffer& thread_buffer() {
  static thread_local std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    auto b = std::make_shared<ThreadTraceBuffer>();
    TraceState& state = trace_state();
    b->tid = state.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(state.mutex);
    state.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

thread_local std::uint32_t t_span_depth = 0;

}  // namespace

void start_tracing() {
  TraceState& state = trace_state();
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto& b : state.buffers) {
      std::lock_guard<std::mutex> bl(b->mutex);
      b->events.clear();
    }
  }
  detail::g_tracing.store(true, std::memory_order_relaxed);
}

void stop_tracing() {
  detail::g_tracing.store(false, std::memory_order_relaxed);
}

std::vector<TraceEvent> collected_trace() {
  TraceState& state = trace_state();
  std::vector<TraceEvent> merged;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto& b : state.buffers) {
      std::lock_guard<std::mutex> bl(b->mutex);
      merged.insert(merged.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.depth < b.depth;
            });
  return merged;
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

SpanSite::SpanSite(std::string name)
    : name_(std::move(name)),
      calls_(Registry::global().counter(name_ + ".calls")),
      total_ns_(Registry::global().counter(name_ + ".ns")) {}

void Span::open(SpanSite& site) {
  site_ = &site;
  depth_ = t_span_depth++;
  parent_ = t_trace_context;
  span_id_ = next_unique_id();
  // Install this span as the context for its extent: child spans, pool
  // chunks and NoC packets dispatched from inside parent under it.
  t_trace_context = {parent_.trace_id, span_id_};
  start_ns_ = now_ns();
}

void Span::close() {
  const std::uint64_t end = now_ns();
  const std::uint64_t dur = end - start_ns_;
  if (t_span_depth > 0) --t_span_depth;
  t_trace_context = parent_;
  site_->calls_.add(1);
  site_->total_ns_.add(dur);
  if (tracing()) {
    ThreadTraceBuffer& buffer = thread_buffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back({&site_->name_, start_ns_, dur, buffer.tid, depth_,
                             parent_.trace_id, span_id_, parent_.span_id,
                             t_current_tile});
  }
  site_ = nullptr;
}

void emit_trace_event(const std::string* name, std::uint64_t ts_ns,
                      std::uint64_t dur_ns, std::uint64_t trace_id,
                      std::uint64_t span_id, std::uint64_t parent_span,
                      std::uint32_t tile) {
  if (!enabled() || !tracing()) return;
  ThreadTraceBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back({name, ts_ns, dur_ns, buffer.tid, 0, trace_id,
                           span_id, parent_span, tile});
}

void emit_instant_event(const std::string* name, std::uint64_t ts_ns,
                        std::uint64_t trace_id, std::uint32_t tile) {
  if (!enabled() || !tracing()) return;
  ThreadTraceBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      {name, ts_ns, 0, buffer.tid, 0, trace_id, 0, 0, tile, 'i'});
}

}  // namespace memcim::telemetry
