// Per-layer cost attribution: exact u64 energy/pulse/flit/span-time
// breakdowns keyed by (layer, tile, shard), reconciled bitwise against
// the global cost books.
//
// Every quantum recorded here is also recorded in a global tally
// (device energy books, NoC dynamic_energy, fabric busy cycles), so
// the book answers "where did it go?" without inventing a second
// source of truth: summing a column over all keys must reproduce the
// global number exactly.  Records are u64 at fixed quanta (attojoules
// for energy), merged under a mutex — so totals are bitwise identical
// at any MEMCIM_THREADS, same contract as the counter registry.
//
// Like the rest of telemetry this sits below common/, so energy enters
// as a raw double in joules (units.h lives above us) and is quantised
// once per recorded event via to_attojoules().
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.h"

namespace memcim::telemetry {

/// The architectural layer a cost is charged to.  Mirrors the
/// simulator's layering: device switching, crossbar solves, stateful
/// logic, network-on-chip transport, and architecture-level occupancy.
enum class AttrLayer : std::uint8_t { kDevice, kCrossbar, kLogic, kNoc, kArch };

/// Stable lowercase name ("device", "crossbar", ...).
[[nodiscard]] std::string_view attr_layer_name(AttrLayer layer);

/// "Not chargeable to any shard" marker (host-side / fabric-wide work).
inline constexpr std::uint32_t kNoShard = 0xFFFFFFFFu;

/// Quantise joules to attojoules (the repo-wide energy quantum; see
/// crs_cell.switch_energy_aj).  One rounding per recorded event keeps
/// per-key sums bitwise reproducible.  Negative and NaN inputs clamp
/// to 0 (a cost book only holds non-negative charges; wrapping a
/// negative llround into u64 would inject a ~1.8e19 aJ phantom), and
/// inputs past the llround-representable range (> ~9.2 J per event)
/// saturate instead of hitting llround's out-of-range UB.
[[nodiscard]] inline std::uint64_t to_attojoules(double joules) {
  const double aj = joules * 1e18;
  if (!(aj > 0.0)) return 0;  // negative, -0.0, or NaN
  // Largest double below 2^63; above it llround is undefined.
  constexpr double kMaxExact = 9223372036854774784.0;
  if (aj >= kMaxExact) return static_cast<std::uint64_t>(kMaxExact);
  return static_cast<std::uint64_t>(std::llround(aj));
}

struct AttrKey {
  AttrLayer layer = AttrLayer::kDevice;
  std::uint32_t tile = kNoTile;
  std::uint32_t shard = kNoShard;
  auto operator<=>(const AttrKey&) const = default;
};

/// Accumulated costs for one key.  All exact u64 sums.
struct AttrDelta {
  std::uint64_t energy_aj = 0;
  std::uint64_t pulses = 0;
  std::uint64_t flits = 0;
  std::uint64_t span_ns = 0;  ///< virtual busy time (cycles × cycle_ns)

  AttrDelta& operator+=(const AttrDelta& o) {
    energy_aj += o.energy_aj;
    pulses += o.pulses;
    flits += o.flits;
    span_ns += o.span_ns;
    return *this;
  }
};

struct AttrRecord {
  AttrKey key;
  AttrDelta delta;
};

/// The process-global attribution book.  record() is enabled()-gated
/// like every other telemetry sink and merges under a mutex — callers
/// record coarse quanta (per shard, per packet), not per-event, so the
/// lock is cold.
class AttributionBook {
 public:
  [[nodiscard]] static AttributionBook& global();

  AttributionBook(const AttributionBook&) = delete;
  AttributionBook& operator=(const AttributionBook&) = delete;

  /// Merge `delta` into `key`'s row and bump the attr.<layer>.* rollup
  /// counters.  No-op while telemetry is disabled.
  void record(const AttrKey& key, const AttrDelta& delta);

  /// All rows, sorted by key.
  [[nodiscard]] std::vector<AttrRecord> snapshot() const;

  /// Column totals over every row (the reconciliation side).
  [[nodiscard]] AttrDelta totals() const;
  /// Column totals restricted to one layer.
  [[nodiscard]] AttrDelta layer_totals(AttrLayer layer) const;

  void reset();

 private:
  AttributionBook() = default;

  mutable std::mutex mutex_;
  std::map<AttrKey, AttrDelta> rows_;
};

/// Convenience wrappers charging one column; `joules` is quantised via
/// to_attojoules() at the call.
void attribute_energy(AttrLayer layer, std::uint32_t tile, std::uint32_t shard,
                      double joules);
void attribute_pulses(AttrLayer layer, std::uint32_t tile, std::uint32_t shard,
                      std::uint64_t pulses);
void attribute_flits(std::uint32_t tile, std::uint32_t shard,
                     std::uint64_t flits);
void attribute_span_ns(AttrLayer layer, std::uint32_t tile,
                       std::uint32_t shard, std::uint64_t ns);

/// "memcim-attr-v1" JSON document of the book: column totals plus one
/// row per (layer, tile, shard).  memcim-report renders it as the
/// attribution table.
[[nodiscard]] std::string attribution_json();
void write_attribution_json(const std::string& path);

}  // namespace memcim::telemetry
