// Strict JSON parser that round-trips JsonWriter output.
//
// memcim-report feeds BENCH_*.json envelopes and metric snapshots back
// through this parser, so it accepts exactly RFC 8259 JSON — no
// comments, no trailing commas, no NaN/Infinity, duplicate object keys
// rejected — and preserves enough structure to re-emit what it read:
// object members keep insertion order and numbers keep their source
// text (so a shortest-round-trip double from JsonWriter survives a
// parse → to_compact_json cycle byte-for-byte).
//
// Errors carry a byte offset; parse() either consumes the whole input
// (trailing whitespace allowed) or fails.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace memcim::telemetry {

class JsonValue;

/// Object members in insertion order.  Keys are unique (duplicates are
/// a parse error).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  /// Numeric value (strtod of the source text).
  [[nodiscard]] double as_double() const;
  /// The number's source text, preserved verbatim for re-emission.
  [[nodiscard]] const std::string& number_text() const { return string_; }
  /// Decoded string contents (escapes resolved, \uXXXX → UTF-8).
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const JsonArray& as_array() const { return array_; }
  [[nodiscard]] const JsonObject& as_object() const { return object_; }

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(std::string text);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string string_;  // decoded string, or number source text
  JsonArray array_;
  JsonObject object_;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;        ///< empty on success
  std::size_t offset = 0;   ///< byte offset of the error
};

/// Parse `text` as one JSON document.  Nesting past `max_depth` is an
/// error (stack safety for untrusted files).
[[nodiscard]] JsonParseResult parse_json(std::string_view text,
                                         std::size_t max_depth = 128);

/// Re-emit a parsed value as compact (single-line, no spaces) JSON —
/// the ledger's JSONL row format.  Numbers re-emit their source text.
[[nodiscard]] std::string to_compact_json(const JsonValue& v);

}  // namespace memcim::telemetry
