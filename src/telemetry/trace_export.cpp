#include "telemetry/trace_export.h"

#include <fstream>
#include <sstream>

#include "telemetry/json_writer.h"

namespace memcim::telemetry {

namespace {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name").value(*e.name);
    w.key("cat").value("memcim");
    w.key("ph").value("X");
    w.key("pid").value(0);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    // Trace Event Format timestamps are microseconds; doubles keep
    // sub-microsecond span starts distinct.
    w.key("ts").value(static_cast<double>(e.ts_ns) / 1000.0);
    w.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ns");
  w.end_object();
  return w.str();
}

void write_chrome_trace(const std::string& path) {
  write_file(path, chrome_trace_json(collected_trace()));
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const CounterSample& c : snapshot.counters)
    w.key(c.name).value(c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const GaugeSample& g : snapshot.gauges) w.key(g.name).value(g.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSample& h : snapshot.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    if (h.count > 0) {
      w.key("min").value(h.min);
      w.key("max").value(h.max);
    }
    w.key("upper_bounds").begin_array();
    for (double b : h.upper_bounds) w.value(b);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (std::uint64_t c : h.bucket_counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string metrics_csv(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "kind,name,value\n";
  for (const CounterSample& c : snapshot.counters)
    out << "counter," << c.name << ',' << c.value << '\n';
  for (const GaugeSample& g : snapshot.gauges)
    out << "gauge," << g.name << ',' << g.value << '\n';
  for (const HistogramSample& h : snapshot.histograms) {
    out << "histogram," << h.name << ".count," << h.count << '\n';
    if (h.count > 0) {
      out << "histogram," << h.name << ".min," << h.min << '\n';
      out << "histogram," << h.name << ".max," << h.max << '\n';
    }
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      out << "histogram," << h.name << ".bucket";
      if (i < h.upper_bounds.size())
        out << "_le_" << h.upper_bounds[i];
      else
        out << "_inf";
      out << ',' << h.bucket_counts[i] << '\n';
    }
  }
  return out.str();
}

void write_metrics_json(const std::string& path) {
  write_file(path, metrics_json(Registry::global().snapshot()));
}

void write_metrics_csv(const std::string& path) {
  write_file(path, metrics_csv(Registry::global().snapshot()));
}

}  // namespace memcim::telemetry
