#include "telemetry/trace_export.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>

#include "telemetry/json_writer.h"

namespace memcim::telemetry {

namespace {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

struct TileLabels {
  std::mutex mutex;
  std::map<std::uint32_t, std::string> labels;
};

TileLabels& tile_labels() {
  static TileLabels labels;
  return labels;
}

/// Chrome-trace pid: tiles get pid tile+1 so pid 0 stays the host.
std::uint64_t pid_for_tile(std::uint32_t tile) {
  return tile == kNoTile ? 0 : static_cast<std::uint64_t>(tile) + 1;
}

}  // namespace

void set_tile_trace_label(std::uint32_t tile, std::string label) {
  if (tile == kNoTile) return;
  TileLabels& tl = tile_labels();
  std::lock_guard<std::mutex> lock(tl.mutex);
  tl.labels[tile] = std::move(label);
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  // Index span ids so cross-tile/thread parent links can be drawn as
  // flow arrows (dispatch → child), and collect the pid/tid universe
  // for metadata name events.
  std::unordered_map<std::uint64_t, const TraceEvent*> by_span;
  std::set<std::uint64_t> pids;
  std::set<std::pair<std::uint64_t, std::uint32_t>> threads;
  for (const TraceEvent& e : events) {
    if (e.span_id != 0) by_span.emplace(e.span_id, &e);
    pids.insert(pid_for_tile(e.tile));
    threads.insert({pid_for_tile(e.tile), e.tid});
  }

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Metadata: name processes after tiles and threads after worker ids
  // so Perfetto groups the timeline by tile instead of raw tids.
  {
    TileLabels& tl = tile_labels();
    std::lock_guard<std::mutex> lock(tl.mutex);
    for (std::uint64_t pid : pids) {
      std::string name = "host";
      if (pid != 0) {
        const auto tile = static_cast<std::uint32_t>(pid - 1);
        const auto it = tl.labels.find(tile);
        name = it != tl.labels.end() ? it->second
                                     : "tile " + std::to_string(tile);
      }
      w.begin_object();
      w.key("name").value("process_name");
      w.key("ph").value("M");
      w.key("pid").value(pid);
      w.key("args").begin_object();
      w.key("name").value(name);
      w.end_object();
      w.end_object();
    }
  }
  for (const auto& [pid, tid] : threads) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(static_cast<std::uint64_t>(tid));
    w.key("args").begin_object();
    w.key("name").value("worker " + std::to_string(tid));
    w.end_object();
    w.end_object();
  }

  for (const TraceEvent& e : events) {
    const std::uint64_t pid = pid_for_tile(e.tile);
    w.begin_object();
    w.key("name").value(*e.name);
    w.key("cat").value("memcim");
    if (e.phase == 'i') {
      // Instant event (health alert marker): global scope draws the
      // vertical line across every track.
      w.key("ph").value("i");
      w.key("s").value("g");
      w.key("pid").value(pid);
      w.key("tid").value(static_cast<std::uint64_t>(e.tid));
      w.key("ts").value(static_cast<double>(e.ts_ns) / 1000.0);
      if (e.trace_id != 0) {
        w.key("args").begin_object();
        w.key("trace_id").value(e.trace_id);
        w.end_object();
      }
      w.end_object();
      continue;
    }
    w.key("ph").value("X");
    w.key("pid").value(pid);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    // Trace Event Format timestamps are microseconds; doubles keep
    // sub-microsecond span starts distinct.
    w.key("ts").value(static_cast<double>(e.ts_ns) / 1000.0);
    w.key("dur").value(static_cast<double>(e.dur_ns) / 1000.0);
    if (e.trace_id != 0) {
      w.key("args").begin_object();
      w.key("trace_id").value(e.trace_id);
      w.key("span_id").value(e.span_id);
      w.key("parent_span").value(e.parent_span);
      w.end_object();
    }
    w.end_object();

    // A parent on another tile or thread gets an explicit flow arrow;
    // same-track nesting is already visible from the timeline.
    if (e.parent_span == 0) continue;
    const auto pit = by_span.find(e.parent_span);
    if (pit == by_span.end()) continue;
    const TraceEvent& p = *pit->second;
    const std::uint64_t ppid = pid_for_tile(p.tile);
    if (ppid == pid && p.tid == e.tid) continue;
    const double child_ts = static_cast<double>(e.ts_ns) / 1000.0;
    const double start_ts =
        std::min(static_cast<double>(p.ts_ns) / 1000.0, child_ts);
    w.begin_object();
    w.key("name").value("dispatch");
    w.key("cat").value("memcim.flow");
    w.key("ph").value("s");
    w.key("id").value(e.span_id);
    w.key("pid").value(ppid);
    w.key("tid").value(static_cast<std::uint64_t>(p.tid));
    w.key("ts").value(start_ts);
    w.end_object();
    w.begin_object();
    w.key("name").value("dispatch");
    w.key("cat").value("memcim.flow");
    w.key("ph").value("f");
    w.key("bp").value("e");
    w.key("id").value(e.span_id);
    w.key("pid").value(pid);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    w.key("ts").value(child_ts);
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ns");
  w.end_object();
  return w.str();
}

void write_chrome_trace(const std::string& path) {
  write_file(path, chrome_trace_json(collected_trace()));
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const CounterSample& c : snapshot.counters)
    w.key(c.name).value(c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const GaugeSample& g : snapshot.gauges) w.key(g.name).value(g.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSample& h : snapshot.histograms) {
    w.key(h.name).begin_object();
    w.key("count").value(h.count);
    if (h.count > 0) {
      w.key("min").value(h.min);
      w.key("max").value(h.max);
    }
    w.key("upper_bounds").begin_array();
    for (double b : h.upper_bounds) w.value(b);
    w.end_array();
    w.key("bucket_counts").begin_array();
    for (std::uint64_t c : h.bucket_counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string metrics_csv(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "kind,name,value\n";
  for (const CounterSample& c : snapshot.counters)
    out << "counter," << c.name << ',' << c.value << '\n';
  for (const GaugeSample& g : snapshot.gauges)
    out << "gauge," << g.name << ',' << g.value << '\n';
  for (const HistogramSample& h : snapshot.histograms) {
    out << "histogram," << h.name << ".count," << h.count << '\n';
    if (h.count > 0) {
      out << "histogram," << h.name << ".min," << h.min << '\n';
      out << "histogram," << h.name << ".max," << h.max << '\n';
    }
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      out << "histogram," << h.name << ".bucket";
      if (i < h.upper_bounds.size())
        out << "_le_" << h.upper_bounds[i];
      else
        out << "_inf";
      out << ',' << h.bucket_counts[i] << '\n';
    }
  }
  return out.str();
}

void write_metrics_json(const std::string& path) {
  write_file(path, metrics_json(Registry::global().snapshot()));
}

void write_metrics_csv(const std::string& path) {
  write_file(path, metrics_csv(Registry::global().snapshot()));
}

}  // namespace memcim::telemetry
