// Cross-layer telemetry: named counters/gauges/histograms in a global
// Registry, plus RAII Span timers that feed both per-span aggregates
// and an exportable Chrome-trace buffer (see trace_export.h).
//
// Design constraints:
//
//  * Low overhead — every instrumented hot path costs exactly one
//    predictable branch when telemetry is disabled (the default can be
//    flipped with MEMCIM_TELEMETRY=0, at runtime with set_enabled(),
//    or compiled out entirely with -DMEMCIM_TELEMETRY_COMPILED=0).
//  * Thread-safe and deterministic — counters are sharded per thread
//    and merged on snapshot; a counter total is an exact sum of u64
//    increments, so every tally is bitwise identical for any
//    MEMCIM_THREADS setting (only wall-time aggregates, *.ns, and the
//    thread pool's own scheduling counters depend on the schedule).
//  * No layering debt — this library sits below common/ and depends on
//    nothing but the standard library, so every layer (device, logic,
//    crossbar, arch, workloads, fault) can instrument freely.
//
// Metric names are dot-separated paths ("crossbar.solve.sweeps"); the
// full catalogue lives in docs/TELEMETRY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef MEMCIM_TELEMETRY_COMPILED
#define MEMCIM_TELEMETRY_COMPILED 1
#endif

namespace memcim::telemetry {

namespace detail {
/// Runtime switches. Zero-initialised statically, then set from the
/// MEMCIM_TELEMETRY environment variable before main() — instrumented
/// code only reads them at runtime, so there is no init-order hazard.
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_tracing;

inline constexpr std::size_t kCounterShards = 16;

/// Dense per-thread shard slot (assigned once per thread, round-robin).
[[nodiscard]] std::size_t assign_shard();
[[nodiscard]] inline std::size_t shard_index() {
  static thread_local const std::size_t slot = assign_shard();
  return slot;
}
}  // namespace detail

/// The one branch every instrumented hot path pays when telemetry is
/// off.
[[nodiscard]] inline bool enabled() {
#if MEMCIM_TELEMETRY_COMPILED
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Flip collection at runtime (tests and the overhead bench use this).
void set_enabled(bool on);

/// True while a trace session started by start_tracing() is active
/// (see trace_export.h); spans only append trace events when both
/// enabled() and tracing() hold.
[[nodiscard]] inline bool tracing() {
#if MEMCIM_TELEMETRY_COMPILED
  return detail::g_tracing.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Monotonic nanoseconds since the process telemetry epoch.
[[nodiscard]] std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

/// The causal coordinates of the work currently executing on this
/// thread: which request/run it belongs to (`trace_id`) and which span
/// is its direct parent (`span_id`).  Contexts propagate three ways:
///   * implicitly — every Span adopts the current context as parent and
///     installs itself for its dynamic extent;
///   * across the thread pool — parallel_for captures the submitting
///     thread's context and workers adopt it per chunk, so worker spans
///     parent under the dispatching span instead of floating free;
///   * across the NoC — packets carry (trace_id, parent_span) and the
///     mesh emits a child span per delivery (see noc/message.h).
/// trace_id 0 means "not part of any trace"; span ids are process-
/// unique and never 0 for a live span.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

/// The calling thread's current context ({0, 0} outside any span).
[[nodiscard]] TraceContext current_trace_context();

/// A fresh root context carrying a process-unique trace id (span_id 0:
/// the next span opened under it becomes the trace's root span).
/// Returns {0, 0} while telemetry is disabled.
[[nodiscard]] TraceContext new_root_context();

/// Allocate a process-unique nonzero span id (the mesh uses this for
/// packet-delivery spans it emits without a Span object).
[[nodiscard]] std::uint64_t new_span_id();

/// Adopt `ctx` as the calling thread's context for the scope's
/// lifetime; restores the previous context on destruction.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// "Not executing on behalf of any tile" marker for span/trace events.
inline constexpr std::uint32_t kNoTile = 0xFFFFFFFFu;

/// The tile id spans closed on this thread are attributed to.
[[nodiscard]] std::uint32_t current_tile();

/// Tag the calling thread as executing tile `tile`'s work for the
/// scope's lifetime (sharded workloads wrap per-shard compute in one);
/// trace events carry the tag so Perfetto can group spans by tile.
class TileScope {
 public:
  explicit TileScope(std::uint32_t tile);
  ~TileScope();
  TileScope(const TileScope&) = delete;
  TileScope& operator=(const TileScope&) = delete;

 private:
  std::uint32_t prev_;
};

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Monotone u64 counter, sharded per thread to keep concurrent
/// increments off a shared cache line.  The merged value is an exact
/// integer sum: bitwise identical at any thread count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  std::array<Shard, detail::kCounterShards> shards_;
};

/// Last-write-wins double value.  Gauges are meant to be set from one
/// thread (per-array energy, configuration echoes); they carry no
/// cross-thread determinism guarantee.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bound histogram: bucket i counts samples v <= upper_bounds[i]
/// (first matching bound), with one overflow bucket past the last
/// bound.  Bucket counts and the sample count are exact u64 tallies;
/// min/max are order-independent, so the whole sample is thread-count
/// deterministic.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double v);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// +inf / -inf respectively while the histogram is empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  void reset();

 private:
  std::string name_;
  std::vector<double> bounds_;  // strictly ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// `count` bounds in geometric progression: start, start·factor, ...
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t count);

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;  // upper_bounds.size() + 1

  /// Exact-bucket quantile: the upper bound of the bucket holding the
  /// ceil(q/100 · count)-th sample (q in [0, 100]), clamped to the
  /// observed max.  Samples past the last bound resolve to the max; an
  /// empty histogram returns 0.  Because bucket tallies are exact u64
  /// counts, the answer is bitwise deterministic at any thread count.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  /// Accumulate `other` into this sample (bucket-wise u64 adds,
  /// min/max union).  Both samples must share identical bounds;
  /// returns false (and leaves *this untouched) when they don't.
  bool merge(const HistogramSample& other);
};

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a counter by name; 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  /// Histogram by name; nullptr when absent.
  [[nodiscard]] const HistogramSample* histogram(std::string_view name) const;

  /// Interval arithmetic: `out` = *this − `earlier`, where *this is the
  /// later snapshot of the same registry.  Counters subtract (a metric
  /// absent from `earlier` registered mid-interval and subtracts from
  /// 0); histograms subtract per-bucket, keeping the later min/max
  /// (interval extrema are not tracked); gauges keep the later value
  /// (they are instantaneous, not cumulative).  Returns false with
  /// `error` set — and `out` untouched — when any counter or bucket
  /// would underflow or a histogram's bounds changed between the
  /// snapshots: both mean `earlier` is not actually an earlier snapshot
  /// of the same registry epoch (a reset in between, or snapshots
  /// swapped).  Because every input is an exact u64 tally, the delta is
  /// bitwise deterministic at any thread count.
  [[nodiscard]] bool delta(const MetricsSnapshot& earlier, MetricsSnapshot& out,
                           std::string& error) const;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Process-global name → metric registry.  Lookups take a mutex, so
/// instrumentation sites resolve their metric once (function-local
/// static reference) and then touch only the lock-free primitive.
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// First call fixes the bounds; later calls with the same name ignore
  /// `upper_bounds` and return the existing histogram.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric value (registrations survive — cached references
  /// at instrumentation sites stay valid).
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One static instrumentation site: resolves the per-span aggregate
/// counters ("<name>.calls", "<name>.ns") once.  Declare as a
/// function-local static next to the Span that uses it.
class SpanSite {
 public:
  explicit SpanSite(std::string name);
  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Span;
  std::string name_;
  Counter& calls_;
  Counter& total_ns_;
};

/// RAII wall-time span.  Always feeds the site's aggregate counters;
/// additionally appends a Chrome-trace event to the calling thread's
/// buffer while a trace session is active.  Spans nest (per-thread
/// depth is tracked), and one branch is the whole cost when telemetry
/// is disabled.
///
/// Each open span adopts the thread's current TraceContext as its
/// parent, allocates a process-unique span id, and installs itself as
/// the context for its dynamic extent — so nested spans (and anything
/// dispatched from inside, including pool chunks and NoC packets) form
/// a real parent/child tree instead of a flat per-thread stack.
class Span {
 public:
  explicit Span(SpanSite& site) {
    if (!enabled()) return;
    open(site);
  }
  ~Span() {
    if (site_ != nullptr) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(SpanSite& site);
  void close();

  SpanSite* site_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t span_id_ = 0;
  TraceContext parent_;  // context restored on close
};

}  // namespace memcim::telemetry
