#include "telemetry/json_parser.h"

#include <cstdio>
#include <cstdlib>

namespace memcim::telemetry {

double JsonValue::as_double() const {
  return std::strtod(string_.c_str(), nullptr);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(std::string text) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.string_ = std::move(text);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonParseResult run() {
    JsonParseResult result;
    JsonValue v;
    if (!parse_value(v)) {
      result.error = error_;
      result.offset = error_pos_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing data after document";
      result.offset = pos_;
      return result;
    }
    result.ok = true;
    result.value = std::move(v);
    return result;
  }

 private:
  bool fail(const char* message) {
    if (error_.empty()) {
      error_ = message;
      error_pos_ = pos_;
    }
    return false;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit)
      return fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (depth_ >= max_depth_) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n':
        if (!consume_literal("null")) return false;
        out = JsonValue::make_null();
        return true;
      case 't':
        if (!consume_literal("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!consume_literal("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case '[':
        return parse_array(out);
      case '{':
        return parse_object(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    ++depth_;
    JsonArray items;
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      --depth_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or ']' in array");
      }
    }
    --depth_;
    out = JsonValue::make_array(std::move(items));
    return true;
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    ++depth_;
    JsonObject members;
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      --depth_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      for (const auto& [k, v] : members)
        if (k == key) return fail("duplicate object key");
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') {
        --pos_;
        return fail("expected ',' or '}' in object");
      }
    }
    --depth_;
    out = JsonValue::make_object(std::move(members));
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end()) return fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      return fail("invalid number");
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9')
        return fail("digits required after decimal point");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9')
        return fail("digits required in exponent");
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    out = JsonValue::make_number(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9')
        digit = static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        digit = static_cast<std::uint32_t>(c - 'a') + 10;
      else if (c >= 'A' && c <= 'F')
        digit = static_cast<std::uint32_t>(c - 'A') + 10;
      else
        return fail("invalid hex digit in \\u escape");
      v = (v << 4) | digit;
    }
    pos_ += 4;
    out = v;
    return true;
  }

  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = peek();
      ++pos_;
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) return fail("truncated escape");
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("unpaired high surrogate");
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF)
              return fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::size_t max_depth_;
  std::string error_;
  std::size_t error_pos_ = 0;
};

void append_compact(std::string& out, const JsonValue& v);

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_compact(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      out += v.number_text();
      break;
    case JsonValue::Kind::kString:
      append_escaped(out, v.as_string());
      break;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        append_compact(out, item);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, key);
        out.push_back(':');
        append_compact(out, value);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

JsonParseResult parse_json(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

std::string to_compact_json(const JsonValue& v) {
  std::string out;
  append_compact(out, v);
  return out;
}

}  // namespace memcim::telemetry
