#include "telemetry/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace memcim::telemetry {

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  out_ << '{';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && !stack_.back().is_array && !key_pending_);
  const bool had_members = stack_.back().has_members;
  stack_.pop_back();
  if (had_members) newline_indent();
  out_ << '}';
  if (stack_.empty()) out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  out_ << '[';
  stack_.push_back({true, false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().is_array);
  const bool had_members = stack_.back().has_members;
  stack_.pop_back();
  if (had_members) newline_indent();
  out_ << ']';
  if (stack_.empty()) out_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && !stack_.back().is_array && !key_pending_);
  if (stack_.back().has_members) out_ << ',';
  stack_.back().has_members = true;
  newline_indent();
  write_escaped(k);
  out_ << ": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  begin_value();
  write_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  begin_value();
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null keeps the document loadable.
    out_ << "null";
    return *this;
  }
  // Shortest representation that round-trips, so 0.001 prints as
  // "0.001" rather than 17 significant digits of noise.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  begin_value();
  out_ << v;
  return *this;
}

std::string JsonWriter::str() const { return out_.str(); }

void JsonWriter::begin_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!stack_.empty()) {
    assert(stack_.back().is_array);
    if (stack_.back().has_members) out_ << ',';
    stack_.back().has_members = true;
    newline_indent();
  }
}

void JsonWriter::newline_indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::write_escaped(std::string_view s) {
  out_ << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\t':
        out_ << "\\t";
        break;
      case '\r':
        out_ << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace memcim::telemetry
