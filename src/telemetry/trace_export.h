// Trace sessions and exporters for the telemetry subsystem.
//
// A trace session records every Span that closes between
// start_tracing() and stop_tracing() as a complete ("ph":"X") event.
// The collected events export as Chrome trace JSON — load the file at
// https://ui.perfetto.dev (or chrome://tracing) to see the solver,
// thread-pool and workload spans on a per-thread timeline.
//
// The metrics side of the registry exports as a flat JSON document or
// CSV via metrics_json()/metrics_csv().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace memcim::telemetry {

/// One completed span.  `name` points at the SpanSite's name (static
/// lifetime); `tid` is a dense per-process thread index assigned on
/// first use, `depth` the span nesting level at entry (0 = top level).
/// Trace-tree coordinates: `trace_id`/`span_id`/`parent_span` are 0
/// when the span ran outside any trace context; `tile` is kNoTile for
/// host-side work.
struct TraceEvent {
  const std::string* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< start, relative to the telemetry epoch
  std::uint64_t dur_ns = 0;  ///< wall-clock duration
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint32_t tile = kNoTile;
  /// Chrome-trace phase: 'X' (complete span) or 'i' (instant event —
  /// health alerts and other zero-duration markers).  Last member so
  /// the span-closing brace initialisers stay valid.
  char phase = 'X';
};

/// Append a fully-formed event to the calling thread's trace buffer —
/// for synthesised spans that have no RAII Span object (the mesh NoC
/// emits one per delivered packet on the virtual-time axis).  `name`
/// must have static lifetime.  No-op unless enabled() && tracing().
void emit_trace_event(const std::string* name, std::uint64_t ts_ns,
                      std::uint64_t dur_ns, std::uint64_t trace_id,
                      std::uint64_t span_id, std::uint64_t parent_span,
                      std::uint32_t tile);

/// Append a zero-duration instant event ("ph":"i", global scope) —
/// the monitoring plane stamps health alerts onto the timeline with
/// these.  `name` must have static lifetime.  No-op unless
/// enabled() && tracing().
void emit_instant_event(const std::string* name, std::uint64_t ts_ns,
                        std::uint64_t trace_id, std::uint32_t tile);

/// Register a human-readable label for a tile id ("tile (1,2)") —
/// exported as a Chrome-trace process_name metadata event so Perfetto
/// groups spans by tile instead of raw pids.  TileFabric registers
/// every tile on construction.
void set_tile_trace_label(std::uint32_t tile, std::string label);

/// Begin a trace session: clears previously collected events and makes
/// tracing() true.  Implies nothing about enabled() — spans still need
/// telemetry enabled to record anything.
void start_tracing();

/// End the trace session; collected events stay available until the
/// next start_tracing().
void stop_tracing();

/// All events collected so far, merged across threads and sorted by
/// (tid, ts_ns).  Safe to call during or after a session.
[[nodiscard]] std::vector<TraceEvent> collected_trace();

/// Chrome trace ("Trace Event Format") JSON for the given events.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// chrome_trace_json(collected_trace()) written to `path`.
void write_chrome_trace(const std::string& path);

/// Flat JSON document of a metrics snapshot:
/// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
[[nodiscard]] std::string metrics_json(const MetricsSnapshot& snapshot);

/// CSV (kind,name,value) rows of a metrics snapshot; histograms emit
/// one row per bucket plus count/min/max rows.
[[nodiscard]] std::string metrics_csv(const MetricsSnapshot& snapshot);

/// metrics_json(Registry::global().snapshot()) written to `path`.
void write_metrics_json(const std::string& path);

/// metrics_csv(Registry::global().snapshot()) written to `path`.
void write_metrics_csv(const std::string& path);

}  // namespace memcim::telemetry
