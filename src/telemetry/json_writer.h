// Minimal streaming JSON writer used by the telemetry exporters and
// the bench binaries (BENCH_*.json) — one emitter instead of per-bench
// hand-rolled ofstream formatting.
//
// Output is pretty-printed with 2-space indentation and `"key": value`
// separators.  The writer tracks nesting and inserts commas; misuse
// (value without a pending key inside an object, unbalanced end_*)
// trips an assertion in debug builds and is simply not validated in
// release — this is a trusted-caller utility, not a general library.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace memcim::telemetry {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member (objects only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<std::uint64_t>(v));
  }

  /// The finished document (trailing newline included once complete).
  [[nodiscard]] std::string str() const;

 private:
  void begin_value();
  void newline_indent();
  void write_escaped(std::string_view s);

  struct Scope {
    bool is_array = false;
    bool has_members = false;
  };

  std::ostringstream out_;
  std::vector<Scope> stack_;
  bool key_pending_ = false;
};

}  // namespace memcim::telemetry
