#include "telemetry/attribution.h"

#include <array>
#include <fstream>

#include "telemetry/json_writer.h"

namespace memcim::telemetry {

namespace {

struct LayerCounters {
  Counter& energy_aj;
  Counter& pulses;
  Counter& flits;
  Counter& span_ns;
};

/// attr.<layer>.{energy_aj,pulses,flits,span_ns} rollups: the book's
/// column totals, mirrored into the counter registry so snapshots and
/// the determinism tests see them alongside every other tally.
LayerCounters& layer_counters(AttrLayer layer) {
  static std::array<LayerCounters, 5> counters = [] {
    Registry& r = Registry::global();
    auto make = [&r](std::string_view name) {
      const std::string prefix = "attr." + std::string(name);
      return LayerCounters{r.counter(prefix + ".energy_aj"),
                           r.counter(prefix + ".pulses"),
                           r.counter(prefix + ".flits"),
                           r.counter(prefix + ".span_ns")};
    };
    return std::array<LayerCounters, 5>{
        make("device"), make("crossbar"), make("logic"), make("noc"),
        make("arch")};
  }();
  return counters[static_cast<std::size_t>(layer)];
}

}  // namespace

std::string_view attr_layer_name(AttrLayer layer) {
  switch (layer) {
    case AttrLayer::kDevice:
      return "device";
    case AttrLayer::kCrossbar:
      return "crossbar";
    case AttrLayer::kLogic:
      return "logic";
    case AttrLayer::kNoc:
      return "noc";
    case AttrLayer::kArch:
      return "arch";
  }
  return "unknown";
}

AttributionBook& AttributionBook::global() {
  static AttributionBook book;
  return book;
}

void AttributionBook::record(const AttrKey& key, const AttrDelta& delta) {
  if (!enabled()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows_[key] += delta;
  }
  LayerCounters& c = layer_counters(key.layer);
  if (delta.energy_aj != 0) c.energy_aj.add(delta.energy_aj);
  if (delta.pulses != 0) c.pulses.add(delta.pulses);
  if (delta.flits != 0) c.flits.add(delta.flits);
  if (delta.span_ns != 0) c.span_ns.add(delta.span_ns);
}

std::vector<AttrRecord> AttributionBook::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AttrRecord> rows;
  rows.reserve(rows_.size());
  for (const auto& [key, delta] : rows_) rows.push_back({key, delta});
  return rows;
}

AttrDelta AttributionBook::totals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AttrDelta sum;
  for (const auto& [key, delta] : rows_) sum += delta;
  return sum;
}

AttrDelta AttributionBook::layer_totals(AttrLayer layer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  AttrDelta sum;
  for (const auto& [key, delta] : rows_)
    if (key.layer == layer) sum += delta;
  return sum;
}

void AttributionBook::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  rows_.clear();
}

void attribute_energy(AttrLayer layer, std::uint32_t tile, std::uint32_t shard,
                      double joules) {
  AttrDelta d;
  d.energy_aj = to_attojoules(joules);
  AttributionBook::global().record({layer, tile, shard}, d);
}

void attribute_pulses(AttrLayer layer, std::uint32_t tile, std::uint32_t shard,
                      std::uint64_t pulses) {
  AttrDelta d;
  d.pulses = pulses;
  AttributionBook::global().record({layer, tile, shard}, d);
}

void attribute_flits(std::uint32_t tile, std::uint32_t shard,
                     std::uint64_t flits) {
  AttrDelta d;
  d.flits = flits;
  AttributionBook::global().record({AttrLayer::kNoc, tile, shard}, d);
}

void attribute_span_ns(AttrLayer layer, std::uint32_t tile,
                       std::uint32_t shard, std::uint64_t ns) {
  AttrDelta d;
  d.span_ns = ns;
  AttributionBook::global().record({layer, tile, shard}, d);
}

namespace {

void write_delta(JsonWriter& w, const AttrDelta& d) {
  w.key("energy_aj").value(d.energy_aj);
  w.key("pulses").value(d.pulses);
  w.key("flits").value(d.flits);
  w.key("span_ns").value(d.span_ns);
}

}  // namespace

std::string attribution_json() {
  const AttributionBook& book = AttributionBook::global();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("memcim-attr-v1");
  w.key("totals").begin_object();
  write_delta(w, book.totals());
  w.end_object();
  w.key("rows").begin_array();
  for (const AttrRecord& row : book.snapshot()) {
    w.begin_object();
    w.key("layer").value(attr_layer_name(row.key.layer));
    if (row.key.tile == kNoTile)
      w.key("tile").value(std::int64_t{-1});
    else
      w.key("tile").value(static_cast<std::uint64_t>(row.key.tile));
    if (row.key.shard == kNoShard)
      w.key("shard").value(std::int64_t{-1});
    else
      w.key("shard").value(static_cast<std::uint64_t>(row.key.shard));
    write_delta(w, row.delta);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_attribution_json(const std::string& path) {
  std::ofstream out(path);
  out << attribution_json();
}

}  // namespace memcim::telemetry
