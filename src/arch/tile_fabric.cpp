#include "arch/tile_fabric.h"

#include <cmath>
#include <string>

#include "common/error.h"
#include "telemetry/attribution.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"

namespace memcim {

TileFabric::TileFabric(const TileFabricConfig& config)
    : config_(config),
      noc_(config.width, config.height, config.noc),
      busy_(config.width * config.height, 0) {
  MEMCIM_CHECK_MSG(config_.host < noc_.nodes(),
                   "host node must sit on the mesh");
  tiles_.reserve(noc_.nodes());
  for (std::size_t i = 0; i < noc_.nodes(); ++i) {
    tiles_.emplace_back(config_.tile);
    telemetry::set_tile_trace_label(
        static_cast<std::uint32_t>(i),
        "tile (" + std::to_string(noc_.x_of(i)) + "," +
            std::to_string(noc_.y_of(i)) + ")");
  }
}

CimTile& TileFabric::tile(std::size_t index) {
  MEMCIM_CHECK(index < tiles_.size());
  return tiles_[index];
}

const CimTile& TileFabric::tile(std::size_t index) const {
  MEMCIM_CHECK(index < tiles_.size());
  return tiles_[index];
}

NocCycle TileFabric::compute_cycles(Time t) const {
  MEMCIM_CHECK(t.value() >= 0.0);
  const double cycles = std::ceil(t.value() / config_.noc.cycle.value());
  return static_cast<NocCycle>(cycles);
}

void TileFabric::note_busy(std::size_t tile, NocCycle cycles,
                           std::uint32_t shard) {
  MEMCIM_CHECK(tile < busy_.size());
  busy_[tile] += cycles;
  // Occupancy enters the arch attribution row as virtual nanoseconds
  // (cycles × cycle period) — deterministic, unlike wall-clock spans.
  const auto ns = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(cycles) *
                   config_.noc.cycle.value() * 1e9));
  telemetry::attribute_span_ns(telemetry::AttrLayer::kArch,
                               static_cast<std::uint32_t>(tile), shard, ns);
}

NocCycle TileFabric::busy_cycles(std::size_t tile) const {
  MEMCIM_CHECK(tile < busy_.size());
  return busy_[tile];
}

double TileFabric::utilization() const {
  const NocCycle makespan = noc_.makespan();
  if (makespan == 0) return 0.0;
  NocCycle total = 0;
  for (const NocCycle b : busy_) total += b;
  return static_cast<double>(total) /
         (static_cast<double>(tiles()) * static_cast<double>(makespan));
}

Energy TileFabric::tile_energy() const {
  Energy total{0.0};
  for (const CimTile& t : tiles_) total += t.stats().energy;
  return total;
}

void TileFabric::record_telemetry() const {
  noc_.record_telemetry();
  if (!telemetry::enabled()) return;
  telemetry::Registry& reg = telemetry::Registry::global();
  NocCycle total_busy = 0;
  for (const NocCycle b : busy_) total_busy += b;
  reg.counter("tile.busy_cycles").add(total_busy);
  reg.counter("tile.count").add(tiles());
  reg.gauge("fabric.utilization").set(utilization());

  telemetry::Histogram& busy_hist = reg.histogram(
      "tile.busy_cycles_dist", telemetry::exponential_bounds(1.0, 4.0, 12));
  for (const NocCycle b : busy_) busy_hist.record(static_cast<double>(b));
}

}  // namespace memcim
