// The working-set taxonomy of Figure 1: computing systems classified by
// where the working set lives, from the pre-cache von Neumann machine
// (a) through today's parallel multi-cores (c), processor-in-memory
// (d), to the proposed computation-in-memory crossbar (e).
//
// For each class we model one representative operation (a 32-bit ALU op
// on 2 operands + 1 result) and ask the Figure-2 question: what share
// of the operation's energy and latency is *data movement* rather than
// computation?  The per-hop access numbers follow the Horowitz ISSCC'14
// energy survey the paper cites as ref [4] (45 nm class, rounded).
#pragma once

#include <vector>

#include "common/units.h"

namespace memcim {

enum class SystemClass {
  kMainMemoryEra,      ///< (a) working set in main memory (pre-1980s)
  kCacheEra,           ///< (b) working set in the cache hierarchy
  kParallelCores,      ///< (c) many cores + shared caches (today)
  kProcessorInMemory,  ///< (d) accelerators beside the memory (PIM)
  kComputationInMemory ///< (e) storage and compute in one crossbar (CIM)
};

[[nodiscard]] const char* to_string(SystemClass c);

struct TaxonomyPoint {
  SystemClass cls;
  const char* working_set_location;
  Time access_latency;           ///< one operand fetch
  Energy access_energy;          ///< one operand fetch
  Time op_latency;               ///< full op: 2 fetches + compute + store
  Energy op_energy;              ///< full op energy
  double movement_energy_share;  ///< data movement / total energy
  double movement_time_share;    ///< data movement / total latency
};

/// The Figure 1 series, classes (a) → (e).
[[nodiscard]] std::vector<TaxonomyPoint> taxonomy_survey();

}  // namespace memcim
