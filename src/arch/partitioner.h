// Workload partitioner for the multi-tile fabric: turns "N items over
// T tiles" into contiguous shards whose merge order is fixed, so a
// sharded run can reproduce a single-tile golden run item for item.
//
// Two flavours:
//   * contiguous      — near-equal split, remainder spread over the
//     leading shards (the classic block distribution).
//   * batch_aligned   — every shard boundary is a multiple of `batch`.
//     The TC-adder farm needs this: the op → adder-slot mapping is
//     op mod adders, so only batch-aligned shards preserve each op's
//     physical slot (and therefore its exact pulse schedule) when every
//     tile instantiates the same farm.
//
// Shards are emitted for every tile, possibly empty, in tile order;
// merging per-shard results back in that order reconstructs global item
// order because shards are contiguous and ascending.
#pragma once

#include <cstddef>
#include <vector>

namespace memcim {

/// One tile's contiguous slice [begin, end) of the global item range.
struct Shard {
  std::size_t tile = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin == end; }
};

struct ShardPlan {
  std::size_t items = 0;
  std::vector<Shard> shards;  ///< one per tile, ascending, contiguous

  /// Largest shard size — the quantity load balance minimizes.
  [[nodiscard]] std::size_t max_shard() const;
  /// Tiles with at least one item.
  [[nodiscard]] std::size_t active_tiles() const;
};

class Partitioner {
 public:
  /// Near-equal contiguous split of `items` over `tiles`.
  [[nodiscard]] static ShardPlan contiguous(std::size_t items,
                                            std::size_t tiles);

  /// Contiguous split whose boundaries are multiples of `batch` (the
  /// final boundary is `items` itself, which may be ragged).  Whole
  /// batches are distributed near-equally.
  [[nodiscard]] static ShardPlan batch_aligned(std::size_t items,
                                               std::size_t tiles,
                                               std::size_t batch);
};

}  // namespace memcim
