// The multi-tile CIM fabric: a width × height grid of CimTiles, one
// per mesh-NoC router, plus a host/controller attachment point — the
// scaled-out form of Figure 2 with the inter-tile communication
// actually costed instead of assumed.
//
// Responsibilities are deliberately narrow:
//   * own the tiles and the MeshNoc,
//   * convert tile compute time to NoC cycles (the two sides share the
//     virtual clock through NocParams::cycle),
//   * keep per-tile busy-cycle books and derive fabric utilization,
//   * expose the single energy accounting path — Σ live tile books +
//     NoC dynamic energy, each counted exactly once (the CimMachine
//     reconciliation rule applied fabric-wide).
//
// Workload sharding lives above (src/workloads/sharded.h); the fabric
// has no opinion on what the packets mean.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/cim_tile.h"
#include "noc/mesh.h"

namespace memcim {

struct TileFabricConfig {
  std::size_t width = 2;   ///< mesh columns
  std::size_t height = 2;  ///< mesh rows
  /// Router the host/controller NIC hangs off (command source, result
  /// sink).  Row-major node id.
  std::size_t host = 0;
  CimTileConfig tile{};
  NocParams noc{};
};

class TileFabric {
 public:
  explicit TileFabric(const TileFabricConfig& config);

  [[nodiscard]] const TileFabricConfig& config() const { return config_; }
  [[nodiscard]] std::size_t tiles() const { return noc_.nodes(); }
  [[nodiscard]] std::size_t host() const { return config_.host; }

  [[nodiscard]] CimTile& tile(std::size_t index);
  [[nodiscard]] const CimTile& tile(std::size_t index) const;
  [[nodiscard]] MeshNoc& noc() { return noc_; }
  [[nodiscard]] const MeshNoc& noc() const { return noc_; }

  /// Tile compute time in whole NoC cycles, rounded up — the release
  /// offset a result packet carries relative to its command's arrival.
  [[nodiscard]] NocCycle compute_cycles(Time t) const;

  // -- per-tile busy books ----------------------------------------------------
  /// Credit `cycles` of compute occupancy to a tile (workload drivers
  /// call this once per shard executed there).  `shard` keys the
  /// attribution book's arch row (occupancy as virtual nanoseconds);
  /// pass telemetry::kNoShard for unsharded occupancy.
  void note_busy(std::size_t tile, NocCycle cycles,
                 std::uint32_t shard = 0xFFFFFFFFu);
  [[nodiscard]] NocCycle busy_cycles(std::size_t tile) const;
  /// Mean tile occupancy over the fabric makespan: Σ busy /
  /// (tiles · makespan); 0 before any traffic completes.
  [[nodiscard]] double utilization() const;

  // -- single energy accounting path ------------------------------------------
  /// Σ of the live per-tile cost books.
  [[nodiscard]] Energy tile_energy() const;
  [[nodiscard]] Energy noc_energy() const { return noc_.dynamic_energy(); }
  [[nodiscard]] Energy energy() const { return tile_energy() + noc_energy(); }

  /// Export tile.busy_cycles / fabric.utilization and the NoC metric
  /// set.  Call once per finished run (idempotent counters would double
  /// count).
  void record_telemetry() const;

 private:
  TileFabricConfig config_;
  MeshNoc noc_;
  std::vector<CimTile> tiles_;
  std::vector<NocCycle> busy_;
};

}  // namespace memcim
