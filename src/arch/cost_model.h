// Architecture-level analytical cost models for the conventional
// multi-core machine and the CIM crossbar machine — the engine behind
// the paper's Table 2.
//
// Conventions reconstructed from the paper (verified by reproducing the
// math-workload column of Table 2 to 4 significant digits; see
// EXPERIMENTS.md):
//
//   * One operation performs `reads_per_op` memory reads and
//     `writes_per_op` memory writes around its compute step.  A read
//     costs hit·1 + (1−hit)·165 cycles, a write 1 cycle, at the 1 GHz
//     CMOS clock — on *both* machines (the CIM array is fronted by a
//     CMOS controller at the same clock; Table 1 keeps the hit/miss
//     model for CIM).
//   * Conventional energy per operation charges the full cluster-cache
//     static power (1/64 W) for the operation's duration, plus the
//     compute unit's gate dynamic energy and gate leakage.  The cache
//     static term dominates — this is the paper's energy story.
//   * CIM energy per operation is the memristive unit's dynamic energy
//     alone; static energy is zero (non-volatile crossbar).
#pragma once

#include "arch/tech_params.h"

namespace memcim {

enum class ComputeUnit {
  kComparator,  ///< DNA nucleotide comparator
  kAdder32,     ///< 32-bit adder
};

[[nodiscard]] const char* to_string(ComputeUnit u);

/// Architecture-independent description of a workload.
struct WorkloadSpec {
  const char* name = "";
  double operations = 0.0;       ///< total operation count
  ComputeUnit unit = ComputeUnit::kAdder32;
  double reads_per_op = 2.0;     ///< operand fetches per operation
  double writes_per_op = 1.0;    ///< result stores per operation
  double hit_ratio = 0.5;        ///< memory hit rate (both machines)
  double parallel_units = 1.0;   ///< concurrently operating units
};

/// Cost of running a workload on one architecture.
struct ArchCost {
  const char* arch = "";
  Time time_per_op{0.0};     ///< latency of one operation (incl. memory)
  Energy energy_per_op{0.0};
  Time total_time{0.0};      ///< wall time for the whole workload
  Energy total_energy{0.0};
  Area total_area{0.0};
  double operations = 0.0;

  /// Table 2 row 1: energy-delay per operation (J·s).
  [[nodiscard]] double energy_delay_per_op() const {
    return energy_per_op.value() * time_per_op.value();
  }
  /// Table 2 row 2: computing efficiency (#operations per joule).
  [[nodiscard]] double computing_efficiency() const {
    return 1.0 / energy_per_op.value();
  }
  /// Table 2 row 3: performance per area (operations/s per mm²).
  [[nodiscard]] double performance_per_area_mm2() const {
    const double ops_per_second = operations / total_time.value();
    return ops_per_second / (total_area.value() * 1e6);  // m² → mm²
  }
};

/// Evaluate on the conventional clustered multi-core (Table 1 left).
[[nodiscard]] ArchCost evaluate_conventional(const WorkloadSpec& spec,
                                             const Table1& t);

/// Evaluate on the memristor CIM crossbar machine (Table 1 right).
[[nodiscard]] ArchCost evaluate_cim(const WorkloadSpec& spec, const Table1& t);

/// The two workload specs of Section III.B.
/// DNA: 200 GB of reads vs a 3 GB reference at coverage 50, read length
/// 100 → no_short_reads = 50·3e9/100 = 1.5e9, no_comparisons = 4·that.
[[nodiscard]] WorkloadSpec dna_workload_spec(const Table1& t);
/// Math: 10^6 parallel 32-bit additions at 98 % hit rate.
[[nodiscard]] WorkloadSpec math_workload_spec(const Table1& t);

/// Closed-form operation count of the DNA workload (paper formulas).
[[nodiscard]] double dna_comparison_count(double coverage, double genome_bases,
                                          double read_length);

}  // namespace memcim
