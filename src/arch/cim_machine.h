// A multi-tile CIM machine: the scaled-out form of Figure 2's proposed
// architecture.  Many CimTiles sit behind a CMOS controller; workloads
// larger than one tile are sharded across tiles and executed in
// parallel waves.  The machine aggregates the tile books and adds the
// (CMOS-side) dispatch cost per wave, so examples can report end-to-end
// latency/energy for working sets far beyond a single crossbar.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/cim_tile.h"

namespace memcim {

struct CimMachineConfig {
  std::size_t tiles = 4;
  CimTileConfig tile{};
  /// CMOS controller dispatch overhead per parallel wave (one cycle of
  /// the 1 GHz interface clock per Table 1's conventions).
  Time dispatch_latency{1e-9};
  Energy dispatch_energy{1e-12};
};

/// Machine-side books.  Energy deliberately lives elsewhere: tiles are
/// the single source of truth for crossbar energy (CimMachine::tile_energy
/// sums their live books) and the machine only accumulates its own
/// dispatch overhead — so a joule is counted exactly once no matter how
/// callers interleave machine waves with direct tile(i) operations.
struct CimMachineStats {
  Time latency{0.0};
  std::uint64_t waves = 0;
  std::uint64_t operations = 0;
};

/// A sharded associative-match machine over many tiles.
class CimMachine {
 public:
  explicit CimMachine(const CimMachineConfig& config);

  [[nodiscard]] const CimMachineConfig& config() const { return config_; }
  [[nodiscard]] const CimMachineStats& stats() const { return stats_; }

  /// Crossbar-side energy: the sum of the live per-tile cost books.
  [[nodiscard]] Energy tile_energy() const;
  /// CMOS controller dispatch energy accumulated across waves.
  [[nodiscard]] Energy dispatch_energy() const { return dispatch_energy_; }
  /// End-to-end machine energy — the one accounting path.
  [[nodiscard]] Energy energy() const {
    return tile_energy() + dispatch_energy_;
  }
  [[nodiscard]] std::size_t capacity_rows() const {
    return config_.tiles * config_.tile.rows;
  }

  /// Store a word at a global row index (tiles fill in order).
  void store(std::size_t global_row, const std::vector<bool>& bits);
  [[nodiscard]] std::vector<bool> load(std::size_t global_row);

  /// Match `key` against every stored row on every tile.  All tiles
  /// search concurrently: one wave = one tile-compare latency + one
  /// dispatch overhead.  Returns global row indices of matches.
  [[nodiscard]] std::vector<std::size_t> search(const std::vector<bool>& key);

  /// Lane-wise add of two global rows into a third (must share a tile).
  void add_rows(std::size_t row_a, std::size_t row_b, std::size_t row_dst,
                std::size_t lane_bits);

  [[nodiscard]] CimTile& tile(std::size_t index);

 private:
  struct Location {
    std::size_t tile;
    std::size_t row;
  };
  [[nodiscard]] Location locate(std::size_t global_row) const;

  CimMachineConfig config_;
  std::vector<CimTile> tiles_;
  CimMachineStats stats_;
  Energy dispatch_energy_{0.0};
};

}  // namespace memcim
