#include "arch/cim_machine.h"

#include <algorithm>

#include "common/error.h"

namespace memcim {

CimMachine::CimMachine(const CimMachineConfig& config) : config_(config) {
  MEMCIM_CHECK_MSG(config_.tiles > 0, "machine needs at least one tile");
  tiles_.reserve(config_.tiles);
  for (std::size_t i = 0; i < config_.tiles; ++i)
    tiles_.emplace_back(config_.tile);
}

CimMachine::Location CimMachine::locate(std::size_t global_row) const {
  MEMCIM_CHECK_MSG(global_row < capacity_rows(), "global row out of range");
  return {global_row / config_.tile.rows, global_row % config_.tile.rows};
}

CimTile& CimMachine::tile(std::size_t index) {
  MEMCIM_CHECK(index < tiles_.size());
  return tiles_[index];
}

void CimMachine::store(std::size_t global_row, const std::vector<bool>& bits) {
  const Location loc = locate(global_row);
  tiles_[loc.tile].store_row(loc.row, bits);
}

std::vector<bool> CimMachine::load(std::size_t global_row) {
  const Location loc = locate(global_row);
  return tiles_[loc.tile].load_row(loc.row);
}

Energy CimMachine::tile_energy() const {
  Energy total{0.0};
  for (const CimTile& t : tiles_) total += t.stats().energy;
  return total;
}

std::vector<std::size_t> CimMachine::search(const std::vector<bool>& key) {
  std::vector<std::size_t> matches;
  Time worst_tile{0.0};
  for (std::size_t ti = 0; ti < tiles_.size(); ++ti) {
    CimTile& t = tiles_[ti];
    const Time before_latency = t.stats().latency;
    const std::vector<bool> tile_matches = t.parallel_compare(key);
    worst_tile = std::max(worst_tile, t.stats().latency - before_latency);
    for (std::size_t r = 0; r < tile_matches.size(); ++r)
      if (tile_matches[r]) matches.push_back(ti * config_.tile.rows + r);
  }
  stats_.latency += worst_tile + config_.dispatch_latency;
  dispatch_energy_ += config_.dispatch_energy;
  ++stats_.waves;
  stats_.operations += capacity_rows();
  return matches;
}

void CimMachine::add_rows(std::size_t row_a, std::size_t row_b,
                          std::size_t row_dst, std::size_t lane_bits) {
  const Location a = locate(row_a);
  const Location b = locate(row_b);
  const Location d = locate(row_dst);
  MEMCIM_CHECK_MSG(a.tile == b.tile && b.tile == d.tile,
                   "add_rows operands must live in one tile (no inter-tile "
                   "data path in this machine)");
  CimTile& t = tiles_[a.tile];
  const Time before_latency = t.stats().latency;
  t.parallel_add(a.row, b.row, d.row, lane_bits);
  stats_.latency +=
      (t.stats().latency - before_latency) + config_.dispatch_latency;
  dispatch_energy_ += config_.dispatch_energy;
  ++stats_.waves;
  stats_.operations += config_.tile.row_bits / lane_bits;
}

}  // namespace memcim
