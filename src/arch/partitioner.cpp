#include "arch/partitioner.h"

#include <algorithm>

#include "common/error.h"

namespace memcim {

std::size_t ShardPlan::max_shard() const {
  std::size_t worst = 0;
  for (const Shard& s : shards) worst = std::max(worst, s.size());
  return worst;
}

std::size_t ShardPlan::active_tiles() const {
  std::size_t active = 0;
  for (const Shard& s : shards)
    if (!s.empty()) ++active;
  return active;
}

namespace {

/// Block-distribute `units` over `tiles`: the first `units % tiles`
/// shards get one extra unit.  Returns per-tile unit counts.
std::vector<std::size_t> block_counts(std::size_t units, std::size_t tiles) {
  const std::size_t base = units / tiles;
  const std::size_t extra = units % tiles;
  std::vector<std::size_t> counts(tiles, base);
  for (std::size_t t = 0; t < extra; ++t) ++counts[t];
  return counts;
}

}  // namespace

ShardPlan Partitioner::contiguous(std::size_t items, std::size_t tiles) {
  MEMCIM_CHECK_MSG(tiles > 0, "plan needs at least one tile");
  ShardPlan plan;
  plan.items = items;
  plan.shards.reserve(tiles);
  const std::vector<std::size_t> counts = block_counts(items, tiles);
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < tiles; ++t) {
    plan.shards.push_back({t, cursor, cursor + counts[t]});
    cursor += counts[t];
  }
  MEMCIM_CHECK(cursor == items);
  return plan;
}

ShardPlan Partitioner::batch_aligned(std::size_t items, std::size_t tiles,
                                     std::size_t batch) {
  MEMCIM_CHECK_MSG(tiles > 0, "plan needs at least one tile");
  MEMCIM_CHECK_MSG(batch > 0, "batch size must be positive");
  const std::size_t batches = (items + batch - 1) / batch;
  ShardPlan plan;
  plan.items = items;
  plan.shards.reserve(tiles);
  const std::vector<std::size_t> counts = block_counts(batches, tiles);
  std::size_t batch_cursor = 0;
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t begin = std::min(batch_cursor * batch, items);
    batch_cursor += counts[t];
    const std::size_t end = std::min(batch_cursor * batch, items);
    plan.shards.push_back({t, begin, end});
  }
  MEMCIM_CHECK(plan.shards.back().end == items);
  return plan;
}

}  // namespace memcim
