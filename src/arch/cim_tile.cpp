#include "arch/cim_tile.h"

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "isa/kernels.h"
#include "logic/comparator.h"
#include "logic/ideal_fabric.h"
#include "logic/packed.h"
#include "logic/tc_adder.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {

struct TileMetrics {
  telemetry::Counter& compares;
  telemetry::Counter& adds;
  telemetry::Counter& rows;
  telemetry::Counter& lanes;
  TileMetrics()
      : compares(
            telemetry::Registry::global().counter("cim_tile.compare.ops")),
        adds(telemetry::Registry::global().counter("cim_tile.add.ops")),
        rows(telemetry::Registry::global().counter("cim_tile.compare.rows")),
        lanes(telemetry::Registry::global().counter("cim_tile.add.lanes")) {}
};

TileMetrics& tile_metrics() {
  static TileMetrics m;
  return m;
}

}  // namespace

CimTile::CimTile(const CimTileConfig& config)
    : config_(config), memory_(config.rows, config.row_bits, config.cell) {
  MEMCIM_CHECK(config_.rows > 0 && config_.row_bits > 0);
}

void CimTile::store_row(std::size_t row, const std::vector<bool>& bits) {
  memory_.write_word(row, bits);
}

std::vector<bool> CimTile::load_row(std::size_t row) {
  return memory_.read_word(row);
}

std::vector<bool> CimTile::parallel_compare(const std::vector<bool>& key) {
  MEMCIM_CHECK_MSG(key.size() == config_.row_bits,
                   "key width must equal the row width");
  static telemetry::SpanSite span_site("cim_tile.parallel_compare");
  telemetry::Span span(span_site);
  tile_metrics().compares.add(1);
  tile_metrics().rows.add(config_.rows);

  if (config_.compare_engine == CompareEngine::kScalar) {
    std::vector<bool> matches(config_.rows);
    Time worst_row_latency{0.0};
    Energy total_energy{0.0};
    for (std::size_t r = 0; r < config_.rows; ++r) {
      const std::vector<bool> row = memory_.read_word(r);
      // Each row owns its slice of the fabric: rows run concurrently, so
      // tile latency is the slowest row, energy the sum.
      IdealFabric fabric(config_.cost);
      const std::vector<Reg> key_regs = load_word(fabric, key);
      const std::vector<Reg> row_regs = load_word(fabric, row);
      const Reg eq = word_equality(fabric, key_regs, row_regs);
      matches[r] = fabric.read(eq);
      worst_row_latency = std::max(worst_row_latency, fabric.latency());
      total_energy += fabric.energy();
    }
    stats_.latency += worst_row_latency;
    stats_.energy += total_energy;
    stats_.operations += config_.rows;
    return matches;
  }

  // Compile-once/replay-many: every row is one packed window of the
  // cached word-equality program.  The program IS the recorded scalar
  // walk, so replaying the source form reproduces the kScalar books
  // bitwise: per-row steps/writes are identical, tile latency is the
  // max over equal row latencies, and the energy reproduces the scalar
  // path's ordered per-row fold (NOT one writes × e_write multiply,
  // which rounds differently).
  isa::CompileOptions copts;
  copts.cost = config_.cost;
  const std::shared_ptr<const isa::CompiledProgram> program =
      isa::cached_word_equality(config_.row_bits, copts);
  const bool optimized =
      config_.compare_engine == CompareEngine::kCompiledOptimized;
  const PackedProgram& packed =
      optimized ? program->packed_optimized : program->packed_source;
  const PackedRunOptions& run_options =
      optimized ? program->run_optimized : program->run_source;

  std::vector<std::vector<bool>> windows(config_.rows);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    const std::vector<bool> row = memory_.read_word(r);
    std::vector<bool>& in = windows[r];
    in.reserve(2 * config_.row_bits);
    in.insert(in.end(), key.begin(), key.end());
    in.insert(in.end(), row.begin(), row.end());
  }
  const PackedRunResult result =
      run_program_packed(packed, windows, run_options);

  const std::uint64_t writes_per_row =
      result.writes / static_cast<std::uint64_t>(config_.rows);
  const Time row_latency = result.latency;
  const Energy row_energy =
      config_.cost.e_write * static_cast<double>(writes_per_row);
  Time worst_row_latency{0.0};
  Energy total_energy{0.0};
  for (std::size_t r = 0; r < config_.rows; ++r) {
    worst_row_latency = std::max(worst_row_latency, row_latency);
    total_energy += row_energy;
  }
  stats_.latency += worst_row_latency;
  stats_.energy += total_energy;
  stats_.operations += config_.rows;
  return result.outputs;
}

std::vector<bool> CimTile::parallel_compare_tolerant(
    const std::vector<bool>& key, std::size_t max_mismatched_bits) {
  MEMCIM_CHECK_MSG(key.size() == config_.row_bits,
                   "key width must equal the row width");
  // Circuit model: every bit-pair runs its 13-step XOR on its own
  // column strip (bit-level parallelism, as the paper's comparator runs
  // its two XORs in parallel); the XOR outputs drive a CAM-style match
  // line whose discharge current is proportional to the mismatch count,
  // thresholded by the sense amp in one precharge+evaluate pair.
  static telemetry::SpanSite span_site("cim_tile.parallel_compare_tolerant");
  telemetry::Span span(span_site);
  tile_metrics().compares.add(1);
  tile_metrics().rows.add(config_.rows);
  constexpr std::size_t kXorSteps = 13;
  constexpr std::size_t kSensePulses = 2;
  const Time pass_latency =
      config_.cost.t_step * static_cast<double>(kXorSteps + kSensePulses);

  std::vector<bool> matches(config_.rows);
  Energy total_energy{0.0};
  for (std::size_t r = 0; r < config_.rows; ++r) {
    const std::vector<bool> row = memory_.read_word(r);
    std::size_t mismatches = 0;
    for (std::size_t b = 0; b < config_.row_bits; ++b)
      if (row[b] != key[b]) ++mismatches;
    matches[r] = mismatches <= max_mismatched_bits;
    // 13 writes per bit for the XORs + one discharge quantum per
    // mismatching bit on the match line.
    total_energy +=
        config_.cost.e_write *
        static_cast<double>(kXorSteps * config_.row_bits + mismatches);
  }
  stats_.latency += pass_latency;
  stats_.energy += total_energy;
  stats_.operations += config_.rows;
  return matches;
}

std::uint64_t CimTile::lane_value(const std::vector<bool>& bits,
                                  std::size_t lane,
                                  std::size_t lane_bits) const {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < lane_bits; ++i)
    if (bits[lane * lane_bits + i]) value |= (std::uint64_t{1} << i);
  return value;
}

void CimTile::parallel_add(std::size_t row_a, std::size_t row_b,
                           std::size_t row_dst, std::size_t lane_bits) {
  MEMCIM_CHECK_MSG(lane_bits >= 1 && lane_bits <= 64 &&
                       config_.row_bits % lane_bits == 0,
                   "row width must be a multiple of the lane width");
  static telemetry::SpanSite span_site("cim_tile.parallel_add");
  telemetry::Span span(span_site);
  const std::size_t lanes = config_.row_bits / lane_bits;
  tile_metrics().adds.add(1);
  tile_metrics().lanes.add(lanes);
  const std::vector<bool> a = memory_.read_word(row_a);
  const std::vector<bool> b = memory_.read_word(row_b);

  std::vector<bool> dst(config_.row_bits, false);
  Time worst_lane_latency{0.0};
  Energy total_energy{0.0};
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    CrsTcAdder adder(lane_bits, config_.cell);
    const TcAdderResult r =
        adder.add(lane_value(a, lane, lane_bits), lane_value(b, lane, lane_bits));
    for (std::size_t i = 0; i < lane_bits; ++i)
      dst[lane * lane_bits + i] = (r.sum >> i) & 1u;
    worst_lane_latency = std::max(worst_lane_latency, r.latency);
    total_energy += r.energy;
  }
  memory_.write_word(row_dst, dst);
  stats_.latency += worst_lane_latency;
  stats_.energy += total_energy;
  stats_.operations += lanes;
}

}  // namespace memcim
