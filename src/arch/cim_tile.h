// A functional CIM tile: non-volatile CRS storage rows plus a stateful
// IMPLY compute fabric per row, under one controller — the executable
// version of Figure 2's "proposed architecture" (storage and
// computation integrated in the same physical location).
//
// The tile executes two operation families the paper's examples need:
//
//   * parallel_compare — match a key word against every stored row
//     simultaneously (the DNA primitive).  Latency is one comparator
//     pass (all rows run concurrently on their own row logic); energy
//     sums over rows.
//   * parallel_add — add word lanes of two rows into a destination row
//     using CRS TC-adders, one per lane, all lanes concurrent (the
//     math primitive).
//
// The controller keeps latency/energy books with the Table 1 cost
// quanta so examples and integration tests can report architecture
// numbers straight from functional runs.
#pragma once

#include <cstdint>
#include <vector>

#include "crossbar/crs_memory.h"
#include "logic/fabric.h"

namespace memcim {

/// How parallel_compare executes its per-row word-equality programs.
enum class CompareEngine : std::uint8_t {
  /// Compile-once/replay-many: the cached word-equality program replays
  /// on the packed engine.  Book-exact with kScalar — bitwise-identical
  /// matches, latency, energy and fabric.* tallies — but one packed
  /// pass instead of rows × program virtual-dispatch walks.
  kCompiled,
  /// Replay the pass-pipeline optimized program (fewer pulses, smaller
  /// window).  Books reflect the optimized program's own exact costs,
  /// so they undercut the kScalar books: opt-in.
  kCompiledOptimized,
  /// The legacy per-row fabric walk (reference for differential tests).
  kScalar,
};

struct CimTileConfig {
  std::size_t rows = 64;       ///< stored words
  std::size_t row_bits = 64;   ///< bits per row
  CrsCellParams cell{};        ///< storage/logic cell parameters
  LogicCostModel cost{};       ///< step/energy quanta (Table 1)
  CompareEngine compare_engine = CompareEngine::kCompiled;
};

struct CimTileStats {
  Time latency{0.0};      ///< accumulated critical-path latency
  Energy energy{0.0};     ///< accumulated dynamic energy
  std::uint64_t operations = 0;
};

class CimTile {
 public:
  explicit CimTile(const CimTileConfig& config);

  [[nodiscard]] const CimTileConfig& config() const { return config_; }
  [[nodiscard]] const CimTileStats& stats() const { return stats_; }

  /// Store a word into a row (LSB-first bit order).
  void store_row(std::size_t row, const std::vector<bool>& bits);
  /// Read a row back (with CRS write-back semantics).
  [[nodiscard]] std::vector<bool> load_row(std::size_t row);

  /// Compare `key` against every stored row in parallel; returns the
  /// per-row match vector.  Accrues one comparator-pass latency and the
  /// summed energy of all row comparators.
  [[nodiscard]] std::vector<bool> parallel_compare(
      const std::vector<bool>& key);

  /// Tolerant compare: a row matches when at most `max_mismatched_bits`
  /// bits differ from the key.  Implemented as per-bit XORs followed by
  /// an in-fabric population-count compare — the approximate-matching
  /// mode real read-mapping needs (sequencing reads carry errors).
  [[nodiscard]] std::vector<bool> parallel_compare_tolerant(
      const std::vector<bool>& key, std::size_t max_mismatched_bits);

  /// dst ← a + b, lane-wise: each row is split into `lane_bits`-wide
  /// integers added independently (carry does not cross lanes).
  void parallel_add(std::size_t row_a, std::size_t row_b, std::size_t row_dst,
                    std::size_t lane_bits);

  /// Direct access to the storage bank (for tests).
  [[nodiscard]] const CrsMemory& memory() const { return memory_; }

 private:
  [[nodiscard]] std::uint64_t lane_value(const std::vector<bool>& bits,
                                         std::size_t lane,
                                         std::size_t lane_bits) const;

  CimTileConfig config_;
  CrsMemory memory_;
  CimTileStats stats_;
};

}  // namespace memcim
