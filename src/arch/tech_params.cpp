#include "arch/tech_params.h"

namespace memcim {

Table1 paper_table1() {
  Table1 t;
  t.cache_dna.hit_ratio = 0.5;
  t.cache_math.hit_ratio = 0.98;
  t.clusters_dna.clusters = 18750;       // chip-area limited (Table 1)
  t.clusters_dna.units_per_cluster = 32;
  // "Fully scalable reusing clusters": 10^6 additions at 32 adders each.
  t.clusters_math.clusters = 31250;
  t.clusters_math.units_per_cluster = 32;
  return t;
}

NocParams paper_noc_params() {
  NocParams p;
  p.cycle = Time(1.0 / paper_table1().finfet.clock.value());  // 1 ns
  return p;  // remaining defaults are the 22 nm-class Orion constants
}

}  // namespace memcim
