// Technology parameter registry — a faithful transcription of the
// paper's Table 1 ("Assumptions made for conventional and CIM
// architectures"), with each constant's paper citation.
//
// Known arithmetic inconsistencies in the paper's own numbers are
// resolved in favour of the formulas (see DESIGN.md §5):
//   * TC-adder latency 133 · 200 ps = 26 600 ps (the "16600 ps" in the
//     text is a typo),
//   * TC-adder dynamic energy 8 · 32 · 1 fJ = 256 fJ (the "246 fJ" is a
//     typo; 1/3.9063e12 ops/J in Table 2 confirms 256 fJ was used).
#pragma once

#include <cstddef>

#include "common/units.h"
#include "noc/noc_params.h"

namespace memcim {

/// 22 nm FinFET multi-core technology (Table 1, left column).
struct FinfetTech {
  Time gate_delay{14e-12};        ///< [53, 54]
  Area gate_area{0.248e-12};      ///< 0.248 µm² [30]
  Power gate_power{175e-9};       ///< dynamic, per gate [54]
  Power gate_leakage{42.83e-9};   ///< [30]
  Frequency clock{1e9};           ///< operating frequency
  [[nodiscard]] Time cycle() const { return 1.0 / clock; }
};

/// Shared 8 kB L1 cache per cluster (Table 1).
struct CacheSpec {
  std::size_t size_bytes = 8 * 1024;
  Area area{0.0092e-6};           ///< 0.0092 mm² [57]
  double hit_ratio = 0.5;         ///< 50 % healthcare / 98 % math
  double hit_cycles = 1.0;
  double miss_penalty_cycles = 165.0;  ///< [55]
  double write_cycles = 1.0;
  Power static_power{1.0 / 64.0};  ///< 1/64 W [56]

  /// Expected cycles of one read access.
  [[nodiscard]] double read_cycles() const {
    return hit_ratio * hit_cycles + (1.0 - hit_ratio) * miss_penalty_cycles;
  }
};

/// 5 nm memristor crossbar technology (Table 1, right column).
struct MemristorTech {
  Time write_time{200e-12};   ///< [60]
  Area device_area{1e-16};    ///< 1e-4 µm² [30]
  Energy write_energy{1e-15};  ///< 1 fJ [30]
};

/// Conventional carry-look-ahead adder (Table 1, math example).
struct ClaAdderSpec {
  std::size_t gates = 208;        ///< [52]
  std::size_t gate_delays = 18;
  [[nodiscard]] Time latency(const FinfetTech& tech) const {
    return tech.gate_delay * static_cast<double>(gate_delays);  // 252 ps
  }
};

/// Conventional comparator (healthcare example); the paper gives no
/// explicit CMOS comparator numbers, so we budget the CMOS equivalent
/// of 2 XOR + NAND: 2·6 + 4 = 16 gates, 3 logic levels.
struct CmosComparatorSpec {
  std::size_t gates = 16;
  std::size_t gate_delays = 3;
  [[nodiscard]] Time latency(const FinfetTech& tech) const {
    return tech.gate_delay * static_cast<double>(gate_delays);
  }
};

/// CIM memristive comparator (Table 1: 2 XOR + NAND in IMPLY [58]).
struct CimComparatorSpec {
  std::size_t memristors = 13;    ///< XOR: 5 each, NAND: 3
  Area area{1.3e-15};             ///< 1.3e-3 µm² [58]
  std::size_t steps = 16;         ///< 2 XOR in parallel (13) + NAND (3)
  Energy dynamic_energy{45e-15};  ///< 45 fJ [58]
  Energy static_energy{0.0};      ///< non-volatile: zero leakage [30]
  [[nodiscard]] Time latency(const MemristorTech& tech) const {
    return tech.write_time * static_cast<double>(steps);  // 3.2 ns
  }
};

/// CIM TC-adder (Table 1: CRS crossbar adder [59], N = 32).
struct CimAdderSpec {
  std::size_t bits = 32;
  std::size_t memristors = 34;      ///< N + 2
  Area area{3.4e-15};               ///< 3.4e-3 µm²
  std::size_t steps = 133;          ///< 4N + 5
  Energy dynamic_energy{256e-15};   ///< 8 ops/bit · 32 bit · 1 fJ
  Energy static_energy{0.0};
  [[nodiscard]] Time latency(const MemristorTech& tech) const {
    return tech.write_time * static_cast<double>(steps);  // 26.6 ns
  }
};

/// Cluster organisation of the conventional machine.
struct ClusterSpec {
  std::size_t units_per_cluster = 32;  ///< comparators or adders
  std::size_t clusters = 18750;        ///< healthcare sizing (chip-limited)
};

/// The complete Table 1 assumption set.
struct Table1 {
  FinfetTech finfet;
  MemristorTech memristor;
  CacheSpec cache_dna;    ///< 50 % hit ratio
  CacheSpec cache_math;   ///< 98 % hit ratio
  ClaAdderSpec cla;
  CmosComparatorSpec cmos_comparator;
  CimComparatorSpec cim_comparator;
  CimAdderSpec cim_adder;
  ClusterSpec clusters_dna;
  ClusterSpec clusters_math;
};

/// Factory with every Table 1 value filled in.
[[nodiscard]] Table1 paper_table1();

/// Mesh-NoC parameters matched to the Table 1 conventions: the
/// inter-tile fabric is CMOS controller territory, so it runs on the
/// 1 GHz interface clock of the FinFET column, with Orion-style wire
/// constants for the 22 nm-class node (see src/noc/noc_params.h).
[[nodiscard]] NocParams paper_noc_params();

}  // namespace memcim
