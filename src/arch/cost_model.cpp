#include "arch/cost_model.h"

#include <cmath>

#include "common/error.h"

namespace memcim {

const char* to_string(ComputeUnit u) {
  switch (u) {
    case ComputeUnit::kComparator: return "comparator";
    case ComputeUnit::kAdder32: return "adder32";
  }
  return "?";
}

namespace {

/// Expected memory time of one operation at the 1 GHz controller clock.
Time memory_time_per_op(const WorkloadSpec& spec, const FinfetTech& finfet,
                        const CacheSpec& cache_template) {
  CacheSpec cache = cache_template;
  cache.hit_ratio = spec.hit_ratio;
  const double cycles = spec.reads_per_op * cache.read_cycles() +
                        spec.writes_per_op * cache.write_cycles;
  return finfet.cycle() * cycles;
}

struct UnitNumbers {
  Time compute_latency{0.0};
  Energy dynamic_energy{0.0};
  Area area{0.0};
  double gates = 0.0;  ///< CMOS gate count (0 for memristive units)
};

UnitNumbers conventional_unit(ComputeUnit unit, const Table1& t) {
  UnitNumbers n;
  switch (unit) {
    case ComputeUnit::kComparator: {
      n.compute_latency = t.cmos_comparator.latency(t.finfet);
      n.gates = static_cast<double>(t.cmos_comparator.gates);
      break;
    }
    case ComputeUnit::kAdder32: {
      n.compute_latency = t.cla.latency(t.finfet);
      n.gates = static_cast<double>(t.cla.gates);
      break;
    }
  }
  // Dynamic energy: every gate draws its active power for the unit's
  // critical-path duration.
  n.dynamic_energy = t.finfet.gate_power * n.gates * n.compute_latency;
  n.area = t.finfet.gate_area * n.gates;
  return n;
}

UnitNumbers cim_unit(ComputeUnit unit, const Table1& t) {
  UnitNumbers n;
  switch (unit) {
    case ComputeUnit::kComparator:
      n.compute_latency = t.cim_comparator.latency(t.memristor);
      n.dynamic_energy = t.cim_comparator.dynamic_energy;
      n.area = t.cim_comparator.area;
      break;
    case ComputeUnit::kAdder32:
      n.compute_latency = t.cim_adder.latency(t.memristor);
      n.dynamic_energy = t.cim_adder.dynamic_energy;
      n.area = t.cim_adder.area;
      break;
  }
  return n;
}

/// The CIM crossbar's storage capacity "is assumed to be equal to the
/// sum of all caches for the CMOS based computer" (Table 1); the paper
/// sizes it as clusters·8192 memristive junctions.
Area cim_memory_area(const ClusterSpec& clusters, const Table1& t) {
  const double devices =
      static_cast<double>(clusters.clusters) * 8.0 * 1024.0;
  return t.memristor.device_area * devices;
}

}  // namespace

ArchCost evaluate_conventional(const WorkloadSpec& spec, const Table1& t) {
  MEMCIM_CHECK(spec.operations > 0.0 && spec.parallel_units >= 1.0);
  const UnitNumbers unit = conventional_unit(spec.unit, t);
  const ClusterSpec& clusters = spec.unit == ComputeUnit::kComparator
                                    ? t.clusters_dna
                                    : t.clusters_math;
  const CacheSpec& cache = spec.unit == ComputeUnit::kComparator
                               ? t.cache_dna
                               : t.cache_math;

  ArchCost cost;
  cost.arch = "conventional";
  cost.operations = spec.operations;
  const Time t_mem = memory_time_per_op(spec, t.finfet, cache);
  cost.time_per_op = t_mem + unit.compute_latency;

  // Energy per operation: cluster-cache static power for the whole
  // operation (the paper's dominant term), plus gate dynamics and gate
  // leakage while waiting on memory.
  const Energy e_cache = cache.static_power * cost.time_per_op;
  const Energy e_leak = t.finfet.gate_leakage * unit.gates * t_mem;
  cost.energy_per_op = e_cache + unit.dynamic_energy + e_leak;

  const double batches = std::ceil(spec.operations / spec.parallel_units);
  cost.total_time = cost.time_per_op * batches;
  cost.total_energy = cost.energy_per_op * spec.operations;

  const double n_clusters = static_cast<double>(clusters.clusters);
  const double n_units = static_cast<double>(clusters.units_per_cluster);
  cost.total_area = (cache.area + unit.area * n_units) * n_clusters;
  return cost;
}

ArchCost evaluate_cim(const WorkloadSpec& spec, const Table1& t) {
  MEMCIM_CHECK(spec.operations > 0.0 && spec.parallel_units >= 1.0);
  const UnitNumbers unit = cim_unit(spec.unit, t);
  const ClusterSpec& clusters = spec.unit == ComputeUnit::kComparator
                                    ? t.clusters_dna
                                    : t.clusters_math;
  const CacheSpec& cache = spec.unit == ComputeUnit::kComparator
                               ? t.cache_dna
                               : t.cache_math;

  ArchCost cost;
  cost.arch = "cim";
  cost.operations = spec.operations;
  const Time t_mem = memory_time_per_op(spec, t.finfet, cache);
  cost.time_per_op = t_mem + unit.compute_latency;

  // Non-volatile crossbar: zero static energy; the operation costs the
  // memristive unit's dynamic energy only.
  cost.energy_per_op = unit.dynamic_energy;

  const double batches = std::ceil(spec.operations / spec.parallel_units);
  cost.total_time = cost.time_per_op * batches;
  cost.total_energy = cost.energy_per_op * spec.operations;

  cost.total_area = unit.area * spec.parallel_units +
                    cim_memory_area(clusters, t);
  return cost;
}

WorkloadSpec dna_workload_spec(const Table1& t) {
  WorkloadSpec spec;
  spec.name = "DNA sequencing";
  spec.unit = ComputeUnit::kComparator;
  spec.operations = dna_comparison_count(50.0, 3e9, 100.0);
  spec.reads_per_op = 2.0;
  spec.writes_per_op = 1.0;
  spec.hit_ratio = t.cache_dna.hit_ratio;
  spec.parallel_units =
      static_cast<double>(t.clusters_dna.clusters) *
      static_cast<double>(t.clusters_dna.units_per_cluster);
  return spec;
}

WorkloadSpec math_workload_spec(const Table1& t) {
  WorkloadSpec spec;
  spec.name = "10^6 additions";
  spec.unit = ComputeUnit::kAdder32;
  spec.operations = 1e6;
  spec.reads_per_op = 2.0;
  spec.writes_per_op = 1.0;
  spec.hit_ratio = t.cache_math.hit_ratio;
  spec.parallel_units = 1e6;  // "fully scalable reusing clusters"
  return spec;
}

double dna_comparison_count(double coverage, double genome_bases,
                            double read_length) {
  MEMCIM_CHECK(coverage > 0.0 && genome_bases > 0.0 && read_length > 0.0);
  const double short_reads = coverage * genome_bases / read_length;
  return 4.0 * short_reads;  // one comparison per A, C, G, T
}

}  // namespace memcim
