#include "arch/taxonomy.h"

namespace memcim {

using namespace memcim::literals;

const char* to_string(SystemClass c) {
  switch (c) {
    case SystemClass::kMainMemoryEra: return "(a) main-memory era";
    case SystemClass::kCacheEra: return "(b) cache era";
    case SystemClass::kParallelCores: return "(c) parallel cores";
    case SystemClass::kProcessorInMemory: return "(d) processor-in-memory";
    case SystemClass::kComputationInMemory: return "(e) computation-in-memory";
  }
  return "?";
}

std::vector<TaxonomyPoint> taxonomy_survey() {
  struct ClassSpec {
    SystemClass cls;
    const char* location;
    Time access_latency;
    Energy access_energy;
  };
  // Access cost of reaching the working set, per operand (Horowitz
  // ISSCC'14-class numbers, paper ref [4]):
  //   DRAM ≈ 100 ns / 2 nJ; L2/L3 ≈ 10 ns / 100 pJ (average over the
  //   hierarchy under contention); L1 ≈ 1 ns / 10 pJ; PIM-local SRAM ≈
  //   2 ns / 5 pJ (no interconnect crossing); CIM crossbar: operands
  //   already at the compute site — one memristor access.
  static const ClassSpec kClasses[] = {
      {SystemClass::kMainMemoryEra, "main memory (DRAM)", 100.0_ns,
       Energy(2e-9)},
      {SystemClass::kCacheEra, "cache hierarchy", 10.0_ns, Energy(100e-12)},
      {SystemClass::kParallelCores, "shared L1 caches", 1.0_ns,
       Energy(10e-12)},
      {SystemClass::kProcessorInMemory, "memory-side SRAM", 2.0_ns,
       Energy(5e-12)},
      {SystemClass::kComputationInMemory, "the crossbar itself", 0.2_ns,
       Energy(1e-15)},
  };
  // The computation itself: ~4 pJ for a 32-bit op (ref [4] reports the
  // multiply at < 4 pJ vs 70 pJ for the full instruction) in ~0.25 ns.
  const Energy compute_energy(4e-12);
  const Time compute_latency = 252.0_ps;

  std::vector<TaxonomyPoint> points;
  points.reserve(std::size(kClasses));
  for (const ClassSpec& c : kClasses) {
    TaxonomyPoint p;
    p.cls = c.cls;
    p.working_set_location = c.location;
    p.access_latency = c.access_latency;
    p.access_energy = c.access_energy;
    // 2 operand fetches + compute + 1 result store.
    p.op_latency = c.access_latency * 3.0 + compute_latency;
    p.op_energy = c.access_energy * 3.0 + compute_energy;
    p.movement_energy_share =
        (c.access_energy * 3.0) / p.op_energy;
    p.movement_time_share = (c.access_latency * 3.0) / p.op_latency;
    points.push_back(p);
  }
  return points;
}

}  // namespace memcim
