#include "report/report.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/table.h"

namespace memcim::report {

using telemetry::JsonObject;
using telemetry::JsonValue;

namespace {

void flatten_into(const JsonValue& v, const std::string& path,
                  std::vector<FlatMetric>& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNumber:
      out.push_back({path, v.as_double(), v.number_text()});
      break;
    case JsonValue::Kind::kBool:
      out.push_back(
          {path, v.as_bool() ? 1.0 : 0.0, v.as_bool() ? "true" : "false"});
      break;
    case JsonValue::Kind::kArray: {
      std::size_t i = 0;
      for (const JsonValue& item : v.as_array())
        flatten_into(item, path + "[" + std::to_string(i++) + "]", out);
      break;
    }
    case JsonValue::Kind::kObject:
      for (const auto& [key, value] : v.as_object())
        flatten_into(value, path.empty() ? key : path + "." + key, out);
      break;
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString:
      break;
  }
}

bool read_file(const std::string& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool parse_file(const std::string& path, JsonValue& out, std::string& error) {
  std::string text;
  if (!read_file(path, text, error)) return false;
  telemetry::JsonParseResult result = telemetry::parse_json(text);
  if (!result.ok) {
    error = path + ": " + result.error + " at byte " +
            std::to_string(result.offset);
    return false;
  }
  out = std::move(result.value);
  return true;
}

std::string format_value(double v) {
  std::ostringstream ss;
  ss.precision(12);
  ss << v;
  return ss.str();
}

std::string format_delta(double rel) {
  if (std::isinf(rel)) return rel > 0 ? "+inf%" : "-inf%";
  std::ostringstream ss;
  ss.precision(3);
  ss << (rel >= 0 ? "+" : "") << rel * 100.0 << "%";
  return ss.str();
}

/// Resolve a dotted path with [i] indices ("classes[1].p99_ns") inside
/// a parsed document; nullptr when any step is missing.
const JsonValue* resolve_path(const JsonValue& root, std::string_view path) {
  const JsonValue* v = &root;
  std::size_t i = 0;
  while (i < path.size() && v != nullptr) {
    if (path[i] == '.') {
      ++i;
      continue;
    }
    if (path[i] == '[') {
      const std::size_t close = path.find(']', i);
      if (close == std::string_view::npos || !v->is_array()) return nullptr;
      std::size_t idx = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (path[j] < '0' || path[j] > '9') return nullptr;
        idx = idx * 10 + static_cast<std::size_t>(path[j] - '0');
      }
      const telemetry::JsonArray& arr = v->as_array();
      if (idx >= arr.size()) return nullptr;
      v = &arr[idx];
      i = close + 1;
      continue;
    }
    std::size_t end = i;
    while (end < path.size() && path[end] != '.' && path[end] != '[') ++end;
    if (!v->is_object()) return nullptr;
    v = v->find(path.substr(i, end - i));
    i = end;
  }
  return v;
}

/// The number of trailing samples diff --series and monitor print.
constexpr std::size_t kSeriesTail = 10;

/// Append the last kSeriesTail samples' values of one series column
/// for a breached metric.
void print_series_tail(const JsonValue& series, const std::string& path,
                       const std::string& column, std::ostringstream& os) {
  const JsonValue* samples = series.find("samples");
  if (samples == nullptr || !samples->is_array() ||
      samples->as_array().empty()) {
    os << "  (no samples in the time series)\n";
    return;
  }
  const telemetry::JsonArray& arr = samples->as_array();
  const std::size_t n = std::min(kSeriesTail, arr.size());
  os << "  recent series for " << path << " (column " << column << ", last "
     << n << " of " << arr.size() << " samples):\n";
  TextTable table({"interval", "end_ns", column});
  for (std::size_t i = arr.size() - n; i < arr.size(); ++i) {
    const JsonValue& s = arr[i];
    const JsonValue* interval = s.find("interval");
    const JsonValue* end_ns = s.find("end_ns");
    const JsonValue* value = resolve_path(s, column);
    table.add_row({interval != nullptr && interval->is_number()
                       ? interval->number_text()
                       : "?",
                   end_ns != nullptr && end_ns->is_number()
                       ? end_ns->number_text()
                       : "?",
                   value != nullptr && value->is_number()
                       ? value->number_text()
                       : "?"});
  }
  std::istringstream lines(table.to_text());
  std::string line;
  while (std::getline(lines, line)) os << "  " << line << "\n";
}

}  // namespace

std::vector<FlatMetric> flatten_numeric(const JsonValue& doc) {
  std::vector<FlatMetric> out;
  flatten_into(doc, "", out);
  return out;
}

bool metric_path_match(std::string_view pattern, std::string_view path) {
  // Iterative wildcard match with backtracking; '*' matches any run.
  std::size_t p = 0, s = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (s < path.size()) {
    if (p < pattern.size() &&
        (pattern[p] == path[s] && pattern[p] != '*')) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const MetricGate* Thresholds::gate_for(std::string_view path) const {
  for (const MetricGate& g : gates)
    if (metric_path_match(g.pattern, path)) return &g;
  return nullptr;
}

bool load_thresholds(const JsonValue& doc, std::string_view bench,
                     Thresholds& out, std::string& error) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "memcim-thresholds-v1") {
    error = "thresholds document is not memcim-thresholds-v1";
    return false;
  }
  if (const JsonValue* tol = doc.find("default_rel_tol")) {
    if (!tol->is_number()) {
      error = "default_rel_tol must be a number";
      return false;
    }
    out.default_rel_tol = tol->as_double();
  }
  const JsonValue* benches = doc.find("benches");
  if (benches == nullptr) return true;
  if (!benches->is_object()) {
    error = "benches must be an object";
    return false;
  }
  const JsonValue* entry = benches->find(bench);
  if (entry == nullptr) return true;  // no gates for this bench
  const JsonValue* metrics = entry->find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    error = "benches." + std::string(bench) + ".metrics must be an array";
    return false;
  }
  for (const JsonValue& m : metrics->as_array()) {
    const JsonValue* path = m.find("path");
    if (path == nullptr || !path->is_string()) {
      error = "every gate needs a string path";
      return false;
    }
    MetricGate gate;
    gate.pattern = path->as_string();
    gate.rel_tol = out.default_rel_tol;
    if (const JsonValue* tol = m.find("rel_tol")) {
      if (!tol->is_number()) {
        error = gate.pattern + ": rel_tol must be a number";
        return false;
      }
      gate.rel_tol = tol->as_double();
    }
    if (const JsonValue* dir = m.find("direction")) {
      if (!dir->is_string()) {
        error = gate.pattern + ": direction must be a string";
        return false;
      }
      const std::string& d = dir->as_string();
      if (d == "any")
        gate.direction = DiffDirection::kAny;
      else if (d == "up")
        gate.direction = DiffDirection::kUp;
      else if (d == "down")
        gate.direction = DiffDirection::kDown;
      else {
        error = gate.pattern + ": direction must be any/up/down";
        return false;
      }
    }
    out.gates.push_back(std::move(gate));
  }
  return true;
}

DiffResult diff_benches(const JsonValue& baseline, const JsonValue& current,
                        const Thresholds& thresholds) {
  DiffResult result;
  if (const JsonValue* bench = current.find("bench");
      bench != nullptr && bench->is_string())
    result.bench = bench->as_string();

  const std::vector<FlatMetric> base = flatten_numeric(baseline);
  const std::vector<FlatMetric> cur = flatten_numeric(current);

  auto find_metric = [](const std::vector<FlatMetric>& metrics,
                        const std::string& path) -> const FlatMetric* {
    for (const FlatMetric& m : metrics)
      if (m.path == path) return &m;
    return nullptr;
  };

  auto push = [&result](MetricDiff d) {
    if (d.breached) result.breaches.push_back(d);
    result.metrics.push_back(std::move(d));
  };

  for (const FlatMetric& b : base) {
    MetricDiff d;
    d.path = b.path;
    d.baseline = b.value;
    const MetricGate* gate = thresholds.gate_for(b.path);
    d.gated = gate != nullptr;
    const FlatMetric* c = find_metric(cur, b.path);
    if (c == nullptr) {
      d.note = "missing from current";
      d.breached = d.gated;
      push(std::move(d));
      continue;
    }
    d.current = c->value;
    if (b.value == c->value) {
      d.rel_delta = 0.0;
    } else if (b.value == 0.0) {
      d.rel_delta = c->value > 0.0
                        ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
    } else {
      d.rel_delta = (c->value - b.value) / std::fabs(b.value);
    }
    if (gate != nullptr && d.rel_delta != 0.0) {
      const bool direction_hit =
          gate->direction == DiffDirection::kAny ||
          (gate->direction == DiffDirection::kUp && d.rel_delta > 0.0) ||
          (gate->direction == DiffDirection::kDown && d.rel_delta < 0.0);
      d.breached = direction_hit && std::fabs(d.rel_delta) > gate->rel_tol;
    }
    push(std::move(d));
  }
  for (const FlatMetric& c : cur) {
    if (find_metric(base, c.path) != nullptr) continue;
    MetricDiff d;
    d.path = c.path;
    d.current = c.value;
    d.gated = thresholds.gate_for(c.path) != nullptr;
    d.note = "missing from baseline";
    d.breached = d.gated;
    push(std::move(d));
  }
  return result;
}

std::string ledger_line(const JsonValue& envelope) {
  JsonObject line;
  line.emplace_back("schema", JsonValue::make_string("memcim-ledger-v1"));
  if (const JsonValue* bench = envelope.find("bench");
      bench != nullptr && bench->is_string())
    line.emplace_back("bench", *bench);
  if (const JsonValue* prov = envelope.find("provenance"))
    line.emplace_back("provenance", *prov);
  JsonObject metrics;
  for (const FlatMetric& m : flatten_numeric(envelope)) {
    if (m.path.rfind("provenance.", 0) == 0) continue;  // echoed above
    metrics.emplace_back(m.path, m.text == "true"
                                     ? JsonValue::make_bool(true)
                                 : m.text == "false"
                                     ? JsonValue::make_bool(false)
                                     : JsonValue::make_number(m.text));
  }
  line.emplace_back("metrics", JsonValue::make_object(std::move(metrics)));
  return telemetry::to_compact_json(JsonValue::make_object(std::move(line)));
}

std::string attribution_table(const JsonValue& doc) {
  auto cell = [](const JsonValue* v) -> std::string {
    if (v == nullptr || !v->is_number()) return "?";
    if (v->as_double() == -1.0) return "-";
    return v->number_text();
  };
  TextTable table(
      {"layer", "tile", "shard", "energy_aj", "pulses", "flits", "span_ns"});
  if (const JsonValue* rows = doc.find("rows"); rows != nullptr &&
                                                rows->is_array()) {
    for (const JsonValue& row : rows->as_array()) {
      const JsonValue* layer = row.find("layer");
      table.add_row({layer != nullptr && layer->is_string()
                         ? layer->as_string()
                         : "?",
                     cell(row.find("tile")), cell(row.find("shard")),
                     cell(row.find("energy_aj")), cell(row.find("pulses")),
                     cell(row.find("flits")), cell(row.find("span_ns"))});
    }
  }
  if (const JsonValue* totals = doc.find("totals")) {
    table.add_row({"TOTAL", "", "", cell(totals->find("energy_aj")),
                   cell(totals->find("pulses")), cell(totals->find("flits")),
                   cell(totals->find("span_ns"))});
  }
  return table.to_text();
}

std::string series_column_for(std::string_view path) {
  static constexpr std::pair<std::string_view, std::string_view> kMap[] = {
      {"totals.sustained_qps", "qps"},
      {"totals.shed_rate", "shed_rate"},
      {"totals.mean_batch_occupancy", "occupancy"},
      {"totals.arrivals", "arrivals"},
      {"totals.completed", "completed"},
      {"totals.shed", "shed"},
      {"totals.batches", "batches"},
      {"totals.partial_batches", "partial_batches"},
      {"totals.flits", "flits"},
  };
  for (const auto& [from, to] : kMap)
    if (path == from) return std::string(to);
  // Per-class quantiles and counts share the sample layout:
  // classes[i].{p50_ns,p95_ns,p99_ns,admitted,shed,completed}.
  if (path.rfind("classes[", 0) == 0 &&
      path.find("arrivals") == std::string_view::npos)
    return std::string(path);
  return {};
}

int diff_command(const std::vector<std::string>& args, std::string& out) {
  std::ostringstream os;
  std::vector<std::string> positional;
  std::string thresholds_path;
  std::string series_path;
  bool quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--thresholds") {
      if (i + 1 >= args.size()) {
        out = "--thresholds needs a file argument\n";
        return 2;
      }
      thresholds_path = args[++i];
    } else if (args[i] == "--series") {
      if (i + 1 >= args.size()) {
        out = "--series needs a file argument\n";
        return 2;
      }
      series_path = args[++i];
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 2) {
    out = "usage: memcim-report diff <baseline.json> <current.json> "
          "[--thresholds <file>] [--series <timeseries.json>] [--quiet]\n";
    return 2;
  }

  std::string error;
  JsonValue baseline, current;
  if (!parse_file(positional[0], baseline, error) ||
      !parse_file(positional[1], current, error)) {
    out = error + "\n";
    return 2;
  }

  Thresholds thresholds;
  std::string bench;
  if (const JsonValue* b = current.find("bench");
      b != nullptr && b->is_string())
    bench = b->as_string();
  if (const JsonValue* b = baseline.find("bench");
      b != nullptr && b->is_string() && b->as_string() != bench) {
    out = "bench mismatch: baseline is '" + b->as_string() +
          "', current is '" + bench + "'\n";
    return 2;
  }
  if (!thresholds_path.empty()) {
    JsonValue tdoc;
    if (!parse_file(thresholds_path, tdoc, error) ||
        !load_thresholds(tdoc, bench, thresholds, error)) {
      out = error + "\n";
      return 2;
    }
    // Zero resolved gates means the gate is silently off — a typo'd or
    // missing bench name must not read as a clean pass.
    if (thresholds.gates.empty()) {
      out = "no gates in " + thresholds_path + " for bench '" + bench +
            "'; refusing to run an empty gate\n";
      return 2;
    }
  }

  const DiffResult result = diff_benches(baseline, current, thresholds);
  std::size_t gated = 0;
  for (const MetricDiff& d : result.metrics) {
    if (d.gated) ++gated;
    if (quiet && !d.breached) continue;
    if (!d.gated && d.rel_delta == 0.0 && d.note.empty()) continue;
    os << (d.breached ? "FAIL " : d.gated ? "gate " : "     ") << d.path
       << ": " << format_value(d.baseline) << " -> "
       << format_value(d.current);
    if (!d.note.empty())
      os << " (" << d.note << ")";
    else if (d.rel_delta != 0.0)
      os << " (" << format_delta(d.rel_delta) << ")";
    os << "\n";
  }
  os << result.bench << ": " << result.metrics.size() << " metrics, " << gated
     << " gated, " << result.breaches.size() << " regression(s)\n";

  // Diagnostic context for breaches: the offending metric's recent
  // time-series, so the CI log alone shows *when* in the run the
  // regression shape appeared.
  if (!result.ok() && !series_path.empty()) {
    std::string series_error;
    JsonValue series;
    if (!parse_file(series_path, series, series_error)) {
      os << "(cannot load --series " << series_path << ": " << series_error
         << ")\n";
    } else {
      const JsonValue* schema = series.find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->as_string() != "memcim-timeseries-v1") {
        os << "(--series " << series_path
           << " is not a memcim-timeseries-v1 document)\n";
      } else {
        for (const MetricDiff& breach : result.breaches) {
          const std::string column = series_column_for(breach.path);
          if (column.empty()) continue;
          print_series_tail(series, breach.path, column, os);
        }
      }
    }
  }
  out = os.str();
  return result.ok() ? 0 : 1;
}

int monitor_command(const std::vector<std::string>& args, std::string& out) {
  std::vector<std::string> positional;
  std::size_t last = kSeriesTail;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--last") {
      if (i + 1 >= args.size()) {
        out = "--last needs a count argument\n";
        return 2;
      }
      last = static_cast<std::size_t>(std::strtoull(args[++i].c_str(),
                                                    nullptr, 10));
      if (last == 0) {
        out = "--last needs a positive count\n";
        return 2;
      }
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 1) {
    out = "usage: memcim-report monitor <timeseries.json> [--last <n>]\n";
    return 2;
  }
  std::string error;
  JsonValue doc;
  if (!parse_file(positional[0], doc, error)) {
    out = error + "\n";
    return 2;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "memcim-timeseries-v1") {
    out = positional[0] + " is not a memcim-timeseries-v1 document\n";
    return 2;
  }

  std::ostringstream os;
  const auto number = [&doc](const char* key) -> std::string {
    const JsonValue* v = doc.find(key);
    return v != nullptr && v->is_number() ? v->number_text() : "?";
  };
  os << "time series: " << number("total_intervals") << " interval(s) at "
     << number("period_ns") << " virtual ns (" << number("dropped")
     << " dropped from the ring)\n\n";

  const JsonValue* samples = doc.find("samples");
  if (samples != nullptr && samples->is_array() &&
      !samples->as_array().empty()) {
    const telemetry::JsonArray& arr = samples->as_array();
    const std::size_t n = std::min(last, arr.size());
    os << "last " << n << " sample(s):\n";
    TextTable table({"interval", "end_ns", "completed", "shed", "qps",
                     "shed_rate", "occupancy", "max_qdepth"});
    for (std::size_t i = arr.size() - n; i < arr.size(); ++i) {
      const JsonValue& s = arr[i];
      const auto cell = [&s](const char* key) -> std::string {
        const JsonValue* v = s.find(key);
        return v != nullptr && v->is_number() ? v->number_text() : "?";
      };
      std::uint64_t deepest = 0;
      if (const JsonValue* depth = s.find("queue_depth");
          depth != nullptr && depth->is_array()) {
        for (const JsonValue& d : depth->as_array())
          if (d.is_number() && d.as_double() > static_cast<double>(deepest))
            deepest = static_cast<std::uint64_t>(d.as_double());
      }
      table.add_row({cell("interval"), cell("end_ns"), cell("completed"),
                     cell("shed"), cell("qps"), cell("shed_rate"),
                     cell("occupancy"), std::to_string(deepest)});
    }
    os << table.to_text() << "\n";
  } else {
    os << "(no samples recorded)\n\n";
  }

  const JsonValue* slo = doc.find("slo");
  if (slo == nullptr || !slo->is_object()) {
    os << "no SLO block in the document\n";
    out = os.str();
    return 0;
  }
  if (const JsonValue* objectives = slo->find("objectives");
      objectives != nullptr && objectives->is_array()) {
    os << "objectives:\n";
    TextTable table({"name", "kind", "target", "burn_thresh", "windows"});
    for (const JsonValue& o : objectives->as_array()) {
      const auto cell = [&o](const char* key) -> std::string {
        const JsonValue* v = o.find(key);
        if (v == nullptr) return "-";
        return v->is_string() ? v->as_string()
                              : v->is_number() ? v->number_text() : "?";
      };
      table.add_row({cell("name"), cell("kind"), cell("target_ratio"),
                     cell("burn_threshold"),
                     cell("fast_window") + "/" + cell("slow_window")});
    }
    os << table.to_text() << "\n";
  }

  std::uint64_t alerts = 0;
  if (const JsonValue* fired = slo->find("alerts_fired");
      fired != nullptr && fired->is_number())
    alerts = static_cast<std::uint64_t>(fired->as_double());
  if (const JsonValue* events = slo->find("events");
      events != nullptr && events->is_array() &&
      !events->as_array().empty()) {
    os << "health events:\n";
    TextTable table({"interval", "at_ns", "kind", "rule", "value",
                     "threshold"});
    for (const JsonValue& e : events->as_array()) {
      const auto cell = [&e](const char* key) -> std::string {
        const JsonValue* v = e.find(key);
        if (v == nullptr) return "?";
        return v->is_string() ? v->as_string()
                              : v->is_number() ? v->number_text() : "?";
      };
      table.add_row({cell("interval"), cell("at_ns"), cell("kind"),
                     cell("rule"), cell("value"), cell("threshold")});
    }
    os << table.to_text() << "\n";
  }
  os << "SLO verdict: "
     << (alerts == 0 ? "PASS (no alerts fired)"
                     : "FAIL (" + std::to_string(alerts) +
                           " alert(s) fired)")
     << "\n";
  out = os.str();
  return alerts == 0 ? 0 : 1;
}

int ledger_command(const std::vector<std::string>& args, std::string& out) {
  std::vector<std::string> positional;
  std::string ledger_path = "memcim_ledger.jsonl";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) {
        out = "--out needs a file argument\n";
        return 2;
      }
      ledger_path = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty()) {
    out = "usage: memcim-report ledger <bench.json>... [--out <file>]\n";
    return 2;
  }
  // Validate every input before appending anything: a parse error on a
  // later file must not leave a partially-updated ledger behind.
  std::ostringstream os;
  std::vector<std::string> lines;
  lines.reserve(positional.size());
  for (const std::string& path : positional) {
    std::string error;
    JsonValue envelope;
    if (!parse_file(path, envelope, error)) {
      out = error + "\n";
      return 2;
    }
    lines.push_back(ledger_line(envelope));
  }
  std::ofstream ledger(ledger_path, std::ios::app);
  if (!ledger) {
    out = "cannot open " + ledger_path + " for append\n";
    return 2;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ledger << lines[i] << "\n";
    os << "appended " << positional[i] << " to " << ledger_path << "\n";
  }
  out = os.str();
  return 0;
}

int attribution_command(const std::vector<std::string>& args,
                        std::string& out) {
  if (args.size() != 1) {
    out = "usage: memcim-report attribution <attr.json>\n";
    return 2;
  }
  std::string error;
  JsonValue doc;
  if (!parse_file(args[0], doc, error)) {
    out = error + "\n";
    return 2;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "memcim-attr-v1") {
    out = args[0] + " is not a memcim-attr-v1 document\n";
    return 2;
  }
  out = attribution_table(doc) + "\n";
  return 0;
}

}  // namespace memcim::report
