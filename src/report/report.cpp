#include "report/report.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/table.h"

namespace memcim::report {

using telemetry::JsonObject;
using telemetry::JsonValue;

namespace {

void flatten_into(const JsonValue& v, const std::string& path,
                  std::vector<FlatMetric>& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNumber:
      out.push_back({path, v.as_double(), v.number_text()});
      break;
    case JsonValue::Kind::kBool:
      out.push_back(
          {path, v.as_bool() ? 1.0 : 0.0, v.as_bool() ? "true" : "false"});
      break;
    case JsonValue::Kind::kArray: {
      std::size_t i = 0;
      for (const JsonValue& item : v.as_array())
        flatten_into(item, path + "[" + std::to_string(i++) + "]", out);
      break;
    }
    case JsonValue::Kind::kObject:
      for (const auto& [key, value] : v.as_object())
        flatten_into(value, path.empty() ? key : path + "." + key, out);
      break;
    case JsonValue::Kind::kNull:
    case JsonValue::Kind::kString:
      break;
  }
}

bool read_file(const std::string& path, std::string& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool parse_file(const std::string& path, JsonValue& out, std::string& error) {
  std::string text;
  if (!read_file(path, text, error)) return false;
  telemetry::JsonParseResult result = telemetry::parse_json(text);
  if (!result.ok) {
    error = path + ": " + result.error + " at byte " +
            std::to_string(result.offset);
    return false;
  }
  out = std::move(result.value);
  return true;
}

std::string format_value(double v) {
  std::ostringstream ss;
  ss.precision(12);
  ss << v;
  return ss.str();
}

std::string format_delta(double rel) {
  if (std::isinf(rel)) return rel > 0 ? "+inf%" : "-inf%";
  std::ostringstream ss;
  ss.precision(3);
  ss << (rel >= 0 ? "+" : "") << rel * 100.0 << "%";
  return ss.str();
}

}  // namespace

std::vector<FlatMetric> flatten_numeric(const JsonValue& doc) {
  std::vector<FlatMetric> out;
  flatten_into(doc, "", out);
  return out;
}

bool metric_path_match(std::string_view pattern, std::string_view path) {
  // Iterative wildcard match with backtracking; '*' matches any run.
  std::size_t p = 0, s = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (s < path.size()) {
    if (p < pattern.size() &&
        (pattern[p] == path[s] && pattern[p] != '*')) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const MetricGate* Thresholds::gate_for(std::string_view path) const {
  for (const MetricGate& g : gates)
    if (metric_path_match(g.pattern, path)) return &g;
  return nullptr;
}

bool load_thresholds(const JsonValue& doc, std::string_view bench,
                     Thresholds& out, std::string& error) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "memcim-thresholds-v1") {
    error = "thresholds document is not memcim-thresholds-v1";
    return false;
  }
  if (const JsonValue* tol = doc.find("default_rel_tol")) {
    if (!tol->is_number()) {
      error = "default_rel_tol must be a number";
      return false;
    }
    out.default_rel_tol = tol->as_double();
  }
  const JsonValue* benches = doc.find("benches");
  if (benches == nullptr) return true;
  if (!benches->is_object()) {
    error = "benches must be an object";
    return false;
  }
  const JsonValue* entry = benches->find(bench);
  if (entry == nullptr) return true;  // no gates for this bench
  const JsonValue* metrics = entry->find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    error = "benches." + std::string(bench) + ".metrics must be an array";
    return false;
  }
  for (const JsonValue& m : metrics->as_array()) {
    const JsonValue* path = m.find("path");
    if (path == nullptr || !path->is_string()) {
      error = "every gate needs a string path";
      return false;
    }
    MetricGate gate;
    gate.pattern = path->as_string();
    gate.rel_tol = out.default_rel_tol;
    if (const JsonValue* tol = m.find("rel_tol")) {
      if (!tol->is_number()) {
        error = gate.pattern + ": rel_tol must be a number";
        return false;
      }
      gate.rel_tol = tol->as_double();
    }
    if (const JsonValue* dir = m.find("direction")) {
      if (!dir->is_string()) {
        error = gate.pattern + ": direction must be a string";
        return false;
      }
      const std::string& d = dir->as_string();
      if (d == "any")
        gate.direction = DiffDirection::kAny;
      else if (d == "up")
        gate.direction = DiffDirection::kUp;
      else if (d == "down")
        gate.direction = DiffDirection::kDown;
      else {
        error = gate.pattern + ": direction must be any/up/down";
        return false;
      }
    }
    out.gates.push_back(std::move(gate));
  }
  return true;
}

DiffResult diff_benches(const JsonValue& baseline, const JsonValue& current,
                        const Thresholds& thresholds) {
  DiffResult result;
  if (const JsonValue* bench = current.find("bench");
      bench != nullptr && bench->is_string())
    result.bench = bench->as_string();

  const std::vector<FlatMetric> base = flatten_numeric(baseline);
  const std::vector<FlatMetric> cur = flatten_numeric(current);

  auto find_metric = [](const std::vector<FlatMetric>& metrics,
                        const std::string& path) -> const FlatMetric* {
    for (const FlatMetric& m : metrics)
      if (m.path == path) return &m;
    return nullptr;
  };

  auto push = [&result](MetricDiff d) {
    if (d.breached) result.breaches.push_back(d);
    result.metrics.push_back(std::move(d));
  };

  for (const FlatMetric& b : base) {
    MetricDiff d;
    d.path = b.path;
    d.baseline = b.value;
    const MetricGate* gate = thresholds.gate_for(b.path);
    d.gated = gate != nullptr;
    const FlatMetric* c = find_metric(cur, b.path);
    if (c == nullptr) {
      d.note = "missing from current";
      d.breached = d.gated;
      push(std::move(d));
      continue;
    }
    d.current = c->value;
    if (b.value == c->value) {
      d.rel_delta = 0.0;
    } else if (b.value == 0.0) {
      d.rel_delta = c->value > 0.0
                        ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
    } else {
      d.rel_delta = (c->value - b.value) / std::fabs(b.value);
    }
    if (gate != nullptr && d.rel_delta != 0.0) {
      const bool direction_hit =
          gate->direction == DiffDirection::kAny ||
          (gate->direction == DiffDirection::kUp && d.rel_delta > 0.0) ||
          (gate->direction == DiffDirection::kDown && d.rel_delta < 0.0);
      d.breached = direction_hit && std::fabs(d.rel_delta) > gate->rel_tol;
    }
    push(std::move(d));
  }
  for (const FlatMetric& c : cur) {
    if (find_metric(base, c.path) != nullptr) continue;
    MetricDiff d;
    d.path = c.path;
    d.current = c.value;
    d.gated = thresholds.gate_for(c.path) != nullptr;
    d.note = "missing from baseline";
    d.breached = d.gated;
    push(std::move(d));
  }
  return result;
}

std::string ledger_line(const JsonValue& envelope) {
  JsonObject line;
  line.emplace_back("schema", JsonValue::make_string("memcim-ledger-v1"));
  if (const JsonValue* bench = envelope.find("bench");
      bench != nullptr && bench->is_string())
    line.emplace_back("bench", *bench);
  if (const JsonValue* prov = envelope.find("provenance"))
    line.emplace_back("provenance", *prov);
  JsonObject metrics;
  for (const FlatMetric& m : flatten_numeric(envelope)) {
    if (m.path.rfind("provenance.", 0) == 0) continue;  // echoed above
    metrics.emplace_back(m.path, m.text == "true"
                                     ? JsonValue::make_bool(true)
                                 : m.text == "false"
                                     ? JsonValue::make_bool(false)
                                     : JsonValue::make_number(m.text));
  }
  line.emplace_back("metrics", JsonValue::make_object(std::move(metrics)));
  return telemetry::to_compact_json(JsonValue::make_object(std::move(line)));
}

std::string attribution_table(const JsonValue& doc) {
  auto cell = [](const JsonValue* v) -> std::string {
    if (v == nullptr || !v->is_number()) return "?";
    if (v->as_double() == -1.0) return "-";
    return v->number_text();
  };
  TextTable table(
      {"layer", "tile", "shard", "energy_aj", "pulses", "flits", "span_ns"});
  if (const JsonValue* rows = doc.find("rows"); rows != nullptr &&
                                                rows->is_array()) {
    for (const JsonValue& row : rows->as_array()) {
      const JsonValue* layer = row.find("layer");
      table.add_row({layer != nullptr && layer->is_string()
                         ? layer->as_string()
                         : "?",
                     cell(row.find("tile")), cell(row.find("shard")),
                     cell(row.find("energy_aj")), cell(row.find("pulses")),
                     cell(row.find("flits")), cell(row.find("span_ns"))});
    }
  }
  if (const JsonValue* totals = doc.find("totals")) {
    table.add_row({"TOTAL", "", "", cell(totals->find("energy_aj")),
                   cell(totals->find("pulses")), cell(totals->find("flits")),
                   cell(totals->find("span_ns"))});
  }
  return table.to_text();
}

int diff_command(const std::vector<std::string>& args, std::string& out) {
  std::ostringstream os;
  std::vector<std::string> positional;
  std::string thresholds_path;
  bool quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--thresholds") {
      if (i + 1 >= args.size()) {
        out = "--thresholds needs a file argument\n";
        return 2;
      }
      thresholds_path = args[++i];
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.size() != 2) {
    out = "usage: memcim-report diff <baseline.json> <current.json> "
          "[--thresholds <file>] [--quiet]\n";
    return 2;
  }

  std::string error;
  JsonValue baseline, current;
  if (!parse_file(positional[0], baseline, error) ||
      !parse_file(positional[1], current, error)) {
    out = error + "\n";
    return 2;
  }

  Thresholds thresholds;
  std::string bench;
  if (const JsonValue* b = current.find("bench");
      b != nullptr && b->is_string())
    bench = b->as_string();
  if (const JsonValue* b = baseline.find("bench");
      b != nullptr && b->is_string() && b->as_string() != bench) {
    out = "bench mismatch: baseline is '" + b->as_string() +
          "', current is '" + bench + "'\n";
    return 2;
  }
  if (!thresholds_path.empty()) {
    JsonValue tdoc;
    if (!parse_file(thresholds_path, tdoc, error) ||
        !load_thresholds(tdoc, bench, thresholds, error)) {
      out = error + "\n";
      return 2;
    }
    // Zero resolved gates means the gate is silently off — a typo'd or
    // missing bench name must not read as a clean pass.
    if (thresholds.gates.empty()) {
      out = "no gates in " + thresholds_path + " for bench '" + bench +
            "'; refusing to run an empty gate\n";
      return 2;
    }
  }

  const DiffResult result = diff_benches(baseline, current, thresholds);
  std::size_t gated = 0;
  for (const MetricDiff& d : result.metrics) {
    if (d.gated) ++gated;
    if (quiet && !d.breached) continue;
    if (!d.gated && d.rel_delta == 0.0 && d.note.empty()) continue;
    os << (d.breached ? "FAIL " : d.gated ? "gate " : "     ") << d.path
       << ": " << format_value(d.baseline) << " -> "
       << format_value(d.current);
    if (!d.note.empty())
      os << " (" << d.note << ")";
    else if (d.rel_delta != 0.0)
      os << " (" << format_delta(d.rel_delta) << ")";
    os << "\n";
  }
  os << result.bench << ": " << result.metrics.size() << " metrics, " << gated
     << " gated, " << result.breaches.size() << " regression(s)\n";
  out = os.str();
  return result.ok() ? 0 : 1;
}

int ledger_command(const std::vector<std::string>& args, std::string& out) {
  std::vector<std::string> positional;
  std::string ledger_path = "memcim_ledger.jsonl";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) {
        out = "--out needs a file argument\n";
        return 2;
      }
      ledger_path = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty()) {
    out = "usage: memcim-report ledger <bench.json>... [--out <file>]\n";
    return 2;
  }
  // Validate every input before appending anything: a parse error on a
  // later file must not leave a partially-updated ledger behind.
  std::ostringstream os;
  std::vector<std::string> lines;
  lines.reserve(positional.size());
  for (const std::string& path : positional) {
    std::string error;
    JsonValue envelope;
    if (!parse_file(path, envelope, error)) {
      out = error + "\n";
      return 2;
    }
    lines.push_back(ledger_line(envelope));
  }
  std::ofstream ledger(ledger_path, std::ios::app);
  if (!ledger) {
    out = "cannot open " + ledger_path + " for append\n";
    return 2;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ledger << lines[i] << "\n";
    os << "appended " << positional[i] << " to " << ledger_path << "\n";
  }
  out = os.str();
  return 0;
}

int attribution_command(const std::vector<std::string>& args,
                        std::string& out) {
  if (args.size() != 1) {
    out = "usage: memcim-report attribution <attr.json>\n";
    return 2;
  }
  std::string error;
  JsonValue doc;
  if (!parse_file(args[0], doc, error)) {
    out = error + "\n";
    return 2;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "memcim-attr-v1") {
    out = args[0] + " is not a memcim-attr-v1 document\n";
    return 2;
  }
  out = attribution_table(doc) + "\n";
  return 0;
}

}  // namespace memcim::report
