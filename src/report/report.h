// memcim-report's engine: flatten bench envelopes to metric paths,
// diff them against committed baselines under per-metric thresholds,
// append run-ledger lines, and render attribution tables.
//
// The CLI (tools/memcim_report.cpp) is a thin argv shell over the
// three *_command entry points so tests drive the exact code CI runs.
//
// Metric paths are dotted with [i] array indices ("sweep[3].flits").
// A thresholds document (memcim-thresholds-v1) names the gated metrics
// per bench:
//
//   {
//     "schema": "memcim-thresholds-v1",
//     "default_rel_tol": 0.02,
//     "benches": {
//       "program_engine": {
//         "metrics": [
//           {"path": "program_engine.speedup", "rel_tol": 0.10,
//            "direction": "down"},
//           {"path": "cam_sweep[*].matches_agree", "rel_tol": 0.0}
//         ]
//       }
//     }
//   }
//
// `direction` limits which way a delta counts as a regression: "down"
// (drops breach — speedups), "up" (rises breach — costs), "any"
// (default).  `*` in a path matches any run of characters, so one
// pattern gates a whole sweep column.  Ungated metrics are reported
// but never fail the diff; a gated metric missing from either side
// always fails.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json_parser.h"

namespace memcim::report {

/// One numeric (or boolean, as 0/1) leaf of a JSON document.
struct FlatMetric {
  std::string path;
  double value = 0.0;
  std::string text;  ///< source text (numbers) or "true"/"false"
};

/// Depth-first flatten in document order; strings and nulls are
/// skipped (they name things, they don't measure them).
[[nodiscard]] std::vector<FlatMetric> flatten_numeric(
    const telemetry::JsonValue& doc);

/// `*` matches any (possibly empty) run of characters; everything else
/// is literal.
[[nodiscard]] bool metric_path_match(std::string_view pattern,
                                     std::string_view path);

enum class DiffDirection : std::uint8_t { kAny, kUp, kDown };

struct MetricGate {
  std::string pattern;
  double rel_tol = 0.0;
  DiffDirection direction = DiffDirection::kAny;
};

/// Parsed thresholds for one bench plus the document default.
struct Thresholds {
  double default_rel_tol = 0.02;
  std::vector<MetricGate> gates;

  /// First gate whose pattern matches, or nullptr (ungated).
  [[nodiscard]] const MetricGate* gate_for(std::string_view path) const;
};

/// Extract the gate set for `bench` from a memcim-thresholds-v1
/// document.  Returns false (with `error` set) on a malformed
/// document; an absent bench entry succeeds with no gates.
bool load_thresholds(const telemetry::JsonValue& doc, std::string_view bench,
                     Thresholds& out, std::string& error);

struct MetricDiff {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;  ///< (current - baseline) / |baseline|
  bool gated = false;
  bool breached = false;
  std::string note;  ///< "missing from current", ...
};

struct DiffResult {
  std::string bench;
  std::vector<MetricDiff> metrics;   ///< every compared metric
  std::vector<MetricDiff> breaches;  ///< the gated failures only
  [[nodiscard]] bool ok() const { return breaches.empty(); }
};

/// Compare two parsed bench envelopes under `thresholds`.  Wall-clock
/// policy lives in the thresholds file, not here: gate only metrics
/// that are deterministic (virtual-clock, count, model-derived).
[[nodiscard]] DiffResult diff_benches(const telemetry::JsonValue& baseline,
                                      const telemetry::JsonValue& current,
                                      const Thresholds& thresholds);

/// One memcim-ledger-v1 JSONL line for a bench envelope: schema, bench
/// name, provenance echo, and the flattened metrics.
[[nodiscard]] std::string ledger_line(const telemetry::JsonValue& envelope);

/// Render a parsed memcim-attr-v1 document as the attribution table
/// (one row per (layer, tile, shard) plus totals).
[[nodiscard]] std::string attribution_table(const telemetry::JsonValue& doc);

/// Map a gated serving-bench metric path to the matching
/// memcim-timeseries-v1 sample column ("totals.sustained_qps" → "qps",
/// "classes[1].p99_ns" → itself); empty when the metric has no series
/// column.
[[nodiscard]] std::string series_column_for(std::string_view path);

// -- CLI entry points (exit codes: 0 ok, 1 regression, 2 usage/parse) ---------

/// `memcim-report diff <baseline.json> <current.json>
///                     [--thresholds <file>] [--quiet]
///                     [--series <timeseries.json>]`
/// With --series, each breached serving metric prints its recent
/// time-series (last 10 samples) so a QPS/latency regression is
/// diagnosable from the CI log alone.
int diff_command(const std::vector<std::string>& args, std::string& out);

/// `memcim-report monitor <timeseries.json> [--last <n>]`
/// Renders the sample table (last n, default 10), the SLO objective
/// set, and every fired health event.  Exit 1 when the document
/// records any fired alert, 2 on parse/schema errors.
int monitor_command(const std::vector<std::string>& args, std::string& out);

/// `memcim-report ledger <bench.json> [--out <ledger.jsonl>]`
/// Appends to the ledger file (default "memcim_ledger.jsonl").
int ledger_command(const std::vector<std::string>& args, std::string& out);

/// `memcim-report attribution <attr.json>`
int attribution_command(const std::vector<std::string>& args,
                        std::string& out);

}  // namespace memcim::report
