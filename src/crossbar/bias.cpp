#include "crossbar/bias.h"

#include "common/error.h"

namespace memcim {

const char* to_string(BiasScheme s) {
  switch (s) {
    case BiasScheme::kFloating: return "floating";
    case BiasScheme::kGrounded: return "grounded";
    case BiasScheme::kVHalf: return "v/2";
    case BiasScheme::kVThird: return "v/3";
  }
  return "?";
}

LineBias access_bias(std::size_t rows, std::size_t cols, std::size_t row,
                     std::size_t col, Voltage v_access, BiasScheme scheme) {
  MEMCIM_CHECK_MSG(row < rows && col < cols, "access outside array");
  LineBias bias;
  bias.rows.assign(rows, std::nullopt);
  bias.cols.assign(cols, std::nullopt);
  switch (scheme) {
    case BiasScheme::kFloating:
      break;
    case BiasScheme::kGrounded:
      bias.rows.assign(rows, Voltage(0.0));
      bias.cols.assign(cols, Voltage(0.0));
      break;
    case BiasScheme::kVHalf:
      bias.rows.assign(rows, v_access / 2.0);
      bias.cols.assign(cols, v_access / 2.0);
      break;
    case BiasScheme::kVThird:
      bias.rows.assign(rows, v_access / 3.0);
      bias.cols.assign(cols, v_access * (2.0 / 3.0));
      break;
  }
  bias.rows[row] = v_access;
  bias.cols[col] = Voltage(0.0);
  return bias;
}

}  // namespace memcim
