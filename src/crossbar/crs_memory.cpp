#include "crossbar/crs_memory.h"

#include "common/error.h"

namespace memcim {

CrsMemory::CrsMemory(std::size_t rows, std::size_t cols,
                     const CrsCellParams& cell_params)
    : rows_(rows), cols_(cols) {
  MEMCIM_CHECK_MSG(rows > 0 && cols > 0, "memory dimensions must be positive");
  cells_.assign(rows * cols, CrsCell(cell_params));
}

CrsCell& CrsMemory::at(std::size_t r, std::size_t c) {
  MEMCIM_CHECK(r < rows_ && c < cols_);
  return cells_[r * cols_ + c];
}

const CrsCell& CrsMemory::cell(std::size_t r, std::size_t c) const {
  MEMCIM_CHECK(r < rows_ && c < cols_);
  return cells_[r * cols_ + c];
}

CrsCell& CrsMemory::cell_mut(std::size_t r, std::size_t c) { return at(r, c); }

void CrsMemory::write(std::size_t r, std::size_t c, bool bit) {
  at(r, c).write(bit);
  ++writes_;
}

bool CrsMemory::read(std::size_t r, std::size_t c) {
  const CrsReadResult result = at(r, c).read_with_writeback();
  ++reads_;
  if (result.destructive) ++destructive_reads_;
  return result.bit;
}

void CrsMemory::write_word(std::size_t r, const std::vector<bool>& bits) {
  MEMCIM_CHECK_MSG(bits.size() == cols_, "word width mismatch");
  for (std::size_t c = 0; c < cols_; ++c) write(r, c, bits[c]);
}

std::vector<bool> CrsMemory::read_word(std::size_t r) {
  std::vector<bool> bits(cols_);
  for (std::size_t c = 0; c < cols_; ++c) bits[c] = read(r, c);
  return bits;
}

std::uint64_t CrsMemory::total_pulses() const {
  std::uint64_t total = 0;
  for (const CrsCell& cell : cells_) total += cell.pulses();
  return total;
}

Energy CrsMemory::total_energy() const {
  Energy total{0.0};
  for (const CrsCell& cell : cells_) total += cell.energy();
  return total;
}

Time CrsMemory::total_time() const {
  if (cells_.empty()) return Time(0.0);
  return cells_.front().params().t_pulse * static_cast<double>(total_pulses());
}

}  // namespace memcim
