#include "crossbar/crossbar.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/matrix.h"
#include "common/parallel.h"
#include "common/sparse.h"
#include "telemetry/telemetry.h"

namespace memcim {

namespace {

/// Solver metric bundle, resolved once (see docs/TELEMETRY.md for the
/// catalogue).  Counter::add() is already a no-op while disabled, so
/// call sites need no guard of their own.
struct CrossbarMetrics {
  telemetry::Counter& solves;
  telemetry::Counter& sweeps;
  telemetry::Counter& assembles;
  telemetry::Counter& warm_hits;
  telemetry::Counter& dense_solves;
  telemetry::Counter& cg_solves;
  telemetry::Counter& pulses;
  CrossbarMetrics()
      : solves(telemetry::Registry::global().counter("crossbar.solve.count")),
        sweeps(telemetry::Registry::global().counter("crossbar.solve.sweeps")),
        assembles(
            telemetry::Registry::global().counter("crossbar.assemble.count")),
        warm_hits(
            telemetry::Registry::global().counter("crossbar.warm_start.hits")),
        dense_solves(
            telemetry::Registry::global().counter("crossbar.backend.dense")),
        cg_solves(telemetry::Registry::global().counter("crossbar.backend.cg")),
        pulses(telemetry::Registry::global().counter("crossbar.pulse.count")) {}
};

CrossbarMetrics& xbar_metrics() {
  static CrossbarMetrics m;
  return m;
}

/// Conductance floor keeping the nodal matrix nonsingular when lines
/// float behind fully-HRS junctions; far below any device G_off.
constexpr double kGFloor = 1e-15;

/// Ideal drivers are stamped as a very stiff source resistance so the
/// distributed formulation can keep every node as an unknown.
constexpr double kIdealDriverOhms = 1e-3;

/// Junctions per parallel_for chunk when evaluating device conductance
/// or current (virtual call + possible sinh per junction).
constexpr std::size_t kDeviceGrain = 512;

/// Slot quadruple of one junction's nodal stamps; kNoSlot marks stamps
/// that do not exist (an endpoint is pinned).
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
struct JunctionSlots {
  std::size_t rr = kNoSlot;  ///< (row diag, row diag)
  std::size_t cc = kNoSlot;  ///< (col diag, col diag)
  std::size_t rc = kNoSlot;  ///< (row, col) off-diagonal
  std::size_t cr = kNoSlot;  ///< (col, row) off-diagonal
};

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

}  // namespace

const char* to_string(NetworkModel m) {
  switch (m) {
    case NetworkModel::kLumpedLines: return "lumped-lines";
    case NetworkModel::kDistributed: return "distributed";
  }
  return "?";
}

CrossbarArray::CrossbarArray(const CrossbarConfig& config,
                             const Device& prototype)
    : config_(config) {
  MEMCIM_CHECK_MSG(config_.rows > 0 && config_.cols > 0,
                   "crossbar dimensions must be positive");
  MEMCIM_CHECK(config_.wire_segment.value() > 0.0);
  MEMCIM_CHECK(config_.driver.value() >= 0.0);
  MEMCIM_CHECK(config_.damping > 0.0 && config_.damping <= 1.0);
  MEMCIM_CHECK(config_.cg_tolerance > 0.0);
  devices_.reserve(config_.rows * config_.cols);
  for (std::size_t i = 0; i < config_.rows * config_.cols; ++i)
    devices_.push_back(prototype.clone());
}

Device& CrossbarArray::device(std::size_t r, std::size_t c) {
  MEMCIM_CHECK(r < rows() && c < cols());
  return *devices_[r * cols() + c];
}

const Device& CrossbarArray::device(std::size_t r, std::size_t c) const {
  MEMCIM_CHECK(r < rows() && c < cols());
  return *devices_[r * cols() + c];
}

void CrossbarArray::store_bit(std::size_t r, std::size_t c, bool bit) {
  device(r, c).set_state(bit ? 1.0 : 0.0);
}

bool CrossbarArray::stored_bit(std::size_t r, std::size_t c) const {
  return device(r, c).is_lrs();
}

CrossbarSolution CrossbarArray::solve(const LineBias& bias) const {
  MEMCIM_CHECK_MSG(bias.rows.size() == rows() && bias.cols.size() == cols(),
                   "bias vector sizes must match the array");
  return config_.model == NetworkModel::kLumpedLines ? solve_lumped(bias)
                                                     : solve_distributed(bias);
}

// ---------------------------------------------------------------------------
// Lumped-line model: one node per word line and per bit line.
// ---------------------------------------------------------------------------
CrossbarSolution CrossbarArray::solve_lumped(const LineBias& bias) const {
  static telemetry::SpanSite span_site("crossbar.solve_lumped");
  telemetry::Span span(span_site);
  const std::size_t m = rows(), n = cols();
  const std::size_t lines = m + n;
  const bool ideal_drivers = config_.driver.value() == 0.0;
  const double g_drv =
      ideal_drivers ? 0.0 : 1.0 / config_.driver.value();

  // Line voltage estimate; floating lines warm-start from the previous
  // solve (a transient step's network barely moves between pulses),
  // driven lines start at their source value.
  std::vector<double> v(lines, 0.0);
  if (config_.warm_start && warm_lumped_.size() == lines) {
    v = warm_lumped_;
    xbar_metrics().warm_hits.add(1);
  }
  std::vector<bool> driven(lines, false);
  std::vector<double> src(lines, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    if (bias.rows[r]) {
      driven[r] = true;
      src[r] = bias.rows[r]->value();
      v[r] = src[r];
    }
  for (std::size_t c = 0; c < n; ++c)
    if (bias.cols[c]) {
      driven[m + c] = true;
      src[m + c] = bias.cols[c]->value();
      v[m + c] = src[m + c];
    }

  // Unknowns: floating lines always; driven lines too unless drivers are
  // ideal (then their voltage is pinned).
  std::vector<std::ptrdiff_t> unknown_of(lines, -1);
  std::size_t n_unknown = 0;
  for (std::size_t l = 0; l < lines; ++l)
    if (!driven[l] || !ideal_drivers)
      unknown_of[l] = static_cast<std::ptrdiff_t>(n_unknown++);

  CrossbarSolution sol;
  sol.row_voltage.resize(m);
  sol.col_voltage.resize(n);
  sol.device_voltage.assign(m * n, 0.0);
  sol.device_current.assign(m * n, 0.0);
  sol.row_terminal_current.assign(m, 0.0);
  sol.col_terminal_current.assign(n, 0.0);

  std::vector<double> g(m * n, 0.0);

  // The nodal sparsity pattern is fixed by the array topology for the
  // lifetime of this solve: assemble the CSR structure once (junction
  // stamps structural with value 0, constant driver stamps with their
  // value), then refresh only the junction chord conductances on every
  // sweep through pre-resolved slot indices.  No triplet sort per sweep.
  SparseMatrix a(n_unknown, n_unknown);
  std::vector<double> base_values;       // constant stamps (drivers)
  std::vector<JunctionSlots> jslots;     // per junction, row-major
  bool structure_ready = false;
  const auto build_structure = [&] {
    static telemetry::SpanSite assemble_site("crossbar.assemble");
    telemetry::Span assemble_span(assemble_site);
    xbar_metrics().assembles.add(1);
    a = SparseMatrix(n_unknown, n_unknown);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        const std::ptrdiff_t ur = unknown_of[r];
        const std::ptrdiff_t uc = unknown_of[m + c];
        if (ur >= 0) a.add(static_cast<std::size_t>(ur),
                           static_cast<std::size_t>(ur), 0.0);
        if (uc >= 0) a.add(static_cast<std::size_t>(uc),
                           static_cast<std::size_t>(uc), 0.0);
        if (ur >= 0 && uc >= 0) {
          a.add(static_cast<std::size_t>(ur), static_cast<std::size_t>(uc),
                0.0);
          a.add(static_cast<std::size_t>(uc), static_cast<std::size_t>(ur),
                0.0);
        }
      }
    // Non-ideal drivers tie their line to the source (constant stamps).
    if (!ideal_drivers)
      for (std::size_t l = 0; l < lines; ++l)
        if (driven[l]) {
          const auto u = static_cast<std::size_t>(unknown_of[l]);
          a.add(u, u, g_drv);
        }
    a.finalize();
    base_values = a.values();
    jslots.assign(m * n, JunctionSlots{});
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        const std::ptrdiff_t ur = unknown_of[r];
        const std::ptrdiff_t uc = unknown_of[m + c];
        JunctionSlots& s = jslots[r * n + c];
        if (ur >= 0)
          s.rr = a.slot(static_cast<std::size_t>(ur),
                        static_cast<std::size_t>(ur));
        if (uc >= 0)
          s.cc = a.slot(static_cast<std::size_t>(uc),
                        static_cast<std::size_t>(uc));
        if (ur >= 0 && uc >= 0) {
          s.rc = a.slot(static_cast<std::size_t>(ur),
                        static_cast<std::size_t>(uc));
          s.cr = a.slot(static_cast<std::size_t>(uc),
                        static_cast<std::size_t>(ur));
        }
      }
    structure_ready = config_.reuse_structure;
  };

  // Damping is adapted: stiff junction nonlinearities (sinh selectors)
  // make the plain fixed point oscillate, so whenever the update grows
  // we halve the step.
  double lambda_adaptive = config_.damping;
  double prev_max_dv = std::numeric_limits<double>::infinity();
  for (std::size_t sweep = 0; sweep < config_.max_nonlinear_iterations;
       ++sweep) {
    // Chord conductance of every junction at the present estimate.
    parallel_for_chunks(
        0, m * n, kDeviceGrain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            const Voltage vd(v[j / n] - v[m + j % n]);
            g[j] = std::max(kGFloor, devices_[j]->conductance(vd).value());
          }
        });

    if (n_unknown > 0) {
      if (!structure_ready)
        build_structure();
      else
        a.begin_update(base_values);
      // Numeric refresh: serial on purpose — diagonal slots are shared
      // across junctions of a line, so this accumulation must stay in a
      // fixed order for bitwise reproducibility.
      std::vector<double> rhs(n_unknown, 0.0);
      for (std::size_t r = 0; r < m; ++r)
        for (std::size_t c = 0; c < n; ++c) {
          const double grc = g[r * n + c];
          const JunctionSlots& s = jslots[r * n + c];
          if (s.rr != kNoSlot) a.add_slot(s.rr, grc);
          if (s.cc != kNoSlot) a.add_slot(s.cc, grc);
          if (s.rc != kNoSlot) {
            a.add_slot(s.rc, -grc);
            a.add_slot(s.cr, -grc);
          } else if (s.rr != kNoSlot && s.cc == kNoSlot) {
            rhs[static_cast<std::size_t>(unknown_of[r])] += grc * v[m + c];
          } else if (s.cc != kNoSlot && s.rr == kNoSlot) {
            rhs[static_cast<std::size_t>(unknown_of[m + c])] += grc * v[r];
          }
        }
      if (!ideal_drivers)
        for (std::size_t l = 0; l < lines; ++l)
          if (driven[l])
            rhs[static_cast<std::size_t>(unknown_of[l])] += g_drv * src[l];

      static telemetry::SpanSite linear_site("crossbar.linear_solve");
      std::vector<double> x;
      if (n_unknown <= config_.dense_solver_max_unknowns) {
        telemetry::Span linear_span(linear_site);
        xbar_metrics().dense_solves.add(1);
        x = solve_dense(a.to_dense(), rhs);
      } else {
        telemetry::Span linear_span(linear_site);
        xbar_metrics().cg_solves.add(1);
        CgOptions opts;
        opts.tolerance = config_.cg_tolerance;
        if (config_.warm_start) {
          opts.x0.resize(n_unknown);
          for (std::size_t l = 0; l < lines; ++l)
            if (unknown_of[l] >= 0)
              opts.x0[static_cast<std::size_t>(unknown_of[l])] = v[l];
        }
        auto cg = conjugate_gradient(a, rhs, opts);
        MEMCIM_CHECK_MSG(cg.converged || cg.residual_norm < 1e-9,
                         "crossbar CG failed to converge");
        x = std::move(cg.x);
      }

      // Damped update (first sweep undamped so ohmic arrays settle in
      // one solve).
      const double lambda = sweep == 0 ? 1.0 : lambda_adaptive;
      double max_dv = 0.0;
      for (std::size_t l = 0; l < lines; ++l)
        if (unknown_of[l] >= 0) {
          const double target = x[static_cast<std::size_t>(unknown_of[l])];
          const double next = lambda * target + (1.0 - lambda) * v[l];
          max_dv = std::max(max_dv, std::abs(next - v[l]));
          v[l] = next;
        }
      sol.nonlinear_iterations = sweep + 1;
      if (sweep > 0 && max_dv < config_.nonlinear_tolerance) {
        sol.converged = true;
        break;
      }
      if (sweep > 0 && max_dv >= prev_max_dv)
        lambda_adaptive = std::max(0.05, 0.5 * lambda_adaptive);
      prev_max_dv = max_dv;
    } else {
      sol.nonlinear_iterations = 1;
      sol.converged = true;
      break;
    }
  }
  if (!sol.converged && n_unknown == 0) sol.converged = true;
  warm_lumped_ = v;

  for (std::size_t r = 0; r < m; ++r) sol.row_voltage[r] = v[r];
  for (std::size_t c = 0; c < n; ++c) sol.col_voltage[c] = v[m + c];

  parallel_for_chunks(
      0, m * n, kDeviceGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          const double vd = v[j / n] - v[m + j % n];
          sol.device_voltage[j] = vd;
          sol.device_current[j] = devices_[j]->current(Voltage(vd)).value();
        }
      });
  // Terminal currents.
  for (std::size_t r = 0; r < m; ++r) {
    if (!driven[r]) continue;
    if (ideal_drivers) {
      double sum = 0.0;
      for (std::size_t c = 0; c < n; ++c) sum += sol.device_current[r * n + c];
      sol.row_terminal_current[r] = sum;
    } else {
      sol.row_terminal_current[r] = (src[r] - v[r]) * g_drv;
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (!driven[m + c]) continue;
    if (ideal_drivers) {
      // Junction current is positive row→col, i.e. *into* the column
      // node; the terminal convention is source→array, so negate.
      double sum = 0.0;
      for (std::size_t r = 0; r < m; ++r) sum += sol.device_current[r * n + c];
      sol.col_terminal_current[c] = -sum;
    } else {
      sol.col_terminal_current[c] = (src[m + c] - v[m + c]) * g_drv;
    }
  }
  xbar_metrics().solves.add(1);
  xbar_metrics().sweeps.add(sol.nonlinear_iterations);
  return sol;
}

// ---------------------------------------------------------------------------
// Distributed model: a node per junction on each wire layer.
// ---------------------------------------------------------------------------
CrossbarSolution CrossbarArray::solve_distributed(const LineBias& bias) const {
  static telemetry::SpanSite span_site("crossbar.solve_distributed");
  telemetry::Span span(span_site);
  const std::size_t m = rows(), n = cols();
  MEMCIM_CHECK_MSG(m * n <= 256 * 256,
                   "distributed model is intended for arrays up to 256x256; "
                   "use kLumpedLines beyond that");
  const std::size_t n_nodes = 2 * m * n;
  const auto row_node = [n](std::size_t r, std::size_t c) { return r * n + c; };
  const auto col_node = [m, n](std::size_t r, std::size_t c) {
    return m * n + c * m + r;
  };
  const double g_wire = 1.0 / config_.wire_segment.value();
  const double g_drv = 1.0 / (config_.driver.value() > 0.0
                                  ? config_.driver.value()
                                  : kIdealDriverOhms);

  std::vector<double> v(n_nodes, 0.0);
  if (config_.warm_start && warm_distributed_.size() == n_nodes) {
    // Previous transient step's node voltages: strictly better than the
    // flat line seeding below.
    v = warm_distributed_;
    xbar_metrics().warm_hits.add(1);
  } else {
    // Seed driven lines so the first chord-conductance pass is sensible.
    for (std::size_t r = 0; r < m; ++r)
      if (bias.rows[r])
        for (std::size_t c = 0; c < n; ++c)
          v[row_node(r, c)] = bias.rows[r]->value();
    for (std::size_t c = 0; c < n; ++c)
      if (bias.cols[c])
        for (std::size_t r = 0; r < m; ++r)
          v[col_node(r, c)] = bias.cols[c]->value();
  }

  CrossbarSolution sol;
  sol.row_voltage.resize(m);
  sol.col_voltage.resize(n);
  sol.device_voltage.assign(m * n, 0.0);
  sol.device_current.assign(m * n, 0.0);
  sol.row_terminal_current.assign(m, 0.0);
  sol.col_terminal_current.assign(n, 0.0);

  // Symbolic-once assembly: wire-segment and driver stamps are constant
  // for the whole solve, junction stamps are refreshed per sweep.
  SparseMatrix a(n_nodes, n_nodes);
  std::vector<double> base_values;
  std::vector<JunctionSlots> jslots;
  bool structure_ready = false;
  const auto stamp_structural = [&a](std::size_t i, std::size_t j, double gc) {
    a.add(i, i, gc);
    a.add(j, j, gc);
    a.add(i, j, -gc);
    a.add(j, i, -gc);
  };
  const auto build_structure = [&] {
    static telemetry::SpanSite assemble_site("crossbar.assemble");
    telemetry::Span assemble_span(assemble_site);
    xbar_metrics().assembles.add(1);
    a = SparseMatrix(n_nodes, n_nodes);
    // Wire segments along rows (driver at column 0) and columns (driver
    // at row 0) — constant values.
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c + 1 < n; ++c)
        stamp_structural(row_node(r, c), row_node(r, c + 1), g_wire);
    for (std::size_t c = 0; c < n; ++c)
      for (std::size_t r = 0; r + 1 < m; ++r)
        stamp_structural(col_node(r, c), col_node(r + 1, c), g_wire);
    // Junction devices — structural only, refreshed numerically.
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c)
        stamp_structural(row_node(r, c), col_node(r, c), 0.0);
    // Drivers — constant values.
    for (std::size_t r = 0; r < m; ++r)
      if (bias.rows[r]) {
        const std::size_t node = row_node(r, 0);
        a.add(node, node, g_drv);
      }
    for (std::size_t c = 0; c < n; ++c)
      if (bias.cols[c]) {
        const std::size_t node = col_node(0, c);
        a.add(node, node, g_drv);
      }
    a.finalize();
    base_values = a.values();
    jslots.assign(m * n, JunctionSlots{});
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c) {
        const std::size_t rn = row_node(r, c), cn = col_node(r, c);
        JunctionSlots& s = jslots[r * n + c];
        s.rr = a.slot(rn, rn);
        s.cc = a.slot(cn, cn);
        s.rc = a.slot(rn, cn);
        s.cr = a.slot(cn, rn);
      }
    structure_ready = config_.reuse_structure;
  };

  // Driver injection is constant across sweeps.
  std::vector<double> rhs(n_nodes, 0.0);
  for (std::size_t r = 0; r < m; ++r)
    if (bias.rows[r]) rhs[row_node(r, 0)] += g_drv * bias.rows[r]->value();
  for (std::size_t c = 0; c < n; ++c)
    if (bias.cols[c]) rhs[col_node(0, c)] += g_drv * bias.cols[c]->value();
  const double rhs_norm = norm2(rhs);

  double lambda_adaptive = config_.damping;
  double prev_max_dv = std::numeric_limits<double>::infinity();
  std::vector<double> gj(m * n, 0.0);
  for (std::size_t sweep = 0; sweep < config_.max_nonlinear_iterations;
       ++sweep) {
    parallel_for_chunks(
        0, m * n, kDeviceGrain, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t j = lo; j < hi; ++j) {
            const std::size_t r = j / n, c = j % n;
            const Voltage vd(v[row_node(r, c)] - v[col_node(r, c)]);
            gj[j] = std::max(kGFloor, devices_[j]->conductance(vd).value());
          }
        });
    if (!structure_ready)
      build_structure();
    else
      a.begin_update(base_values);
    for (std::size_t j = 0; j < m * n; ++j) {
      const JunctionSlots& s = jslots[j];
      const double gc = gj[j];
      a.add_slot(s.rr, gc);
      a.add_slot(s.cc, gc);
      a.add_slot(s.rc, -gc);
      a.add_slot(s.cr, -gc);
    }

    static telemetry::SpanSite linear_site("crossbar.linear_solve");
    std::vector<double> x;
    if (n_nodes <= config_.dense_solver_max_unknowns) {
      telemetry::Span linear_span(linear_site);
      xbar_metrics().dense_solves.add(1);
      x = solve_dense(a.to_dense(), rhs);
    } else {
      telemetry::Span linear_span(linear_site);
      xbar_metrics().cg_solves.add(1);
      CgOptions opts;
      opts.tolerance = config_.cg_tolerance;
      if (config_.warm_start) opts.x0 = v;
      auto cg = conjugate_gradient(a, rhs, opts);
      MEMCIM_CHECK_MSG(cg.converged ||
                           cg.residual_norm <= 1e-6 * rhs_norm,
                       "distributed crossbar CG failed to converge");
      x = std::move(cg.x);
    }

    const double lambda = sweep == 0 ? 1.0 : lambda_adaptive;
    double max_dv = 0.0;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const double next = lambda * x[i] + (1.0 - lambda) * v[i];
      max_dv = std::max(max_dv, std::abs(next - v[i]));
      v[i] = next;
    }
    sol.nonlinear_iterations = sweep + 1;
    if (sweep > 0 && max_dv < config_.nonlinear_tolerance) {
      sol.converged = true;
      break;
    }
    if (sweep > 0 && max_dv >= prev_max_dv)
      lambda_adaptive = std::max(0.05, 0.5 * lambda_adaptive);
    prev_max_dv = max_dv;
  }
  warm_distributed_ = v;

  for (std::size_t r = 0; r < m; ++r) sol.row_voltage[r] = v[row_node(r, 0)];
  for (std::size_t c = 0; c < n; ++c) sol.col_voltage[c] = v[col_node(0, c)];
  parallel_for_chunks(
      0, m * n, kDeviceGrain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          const std::size_t r = j / n, c = j % n;
          const double vd = v[row_node(r, c)] - v[col_node(r, c)];
          sol.device_voltage[j] = vd;
          sol.device_current[j] = devices_[j]->current(Voltage(vd)).value();
        }
      });
  for (std::size_t r = 0; r < m; ++r)
    if (bias.rows[r])
      sol.row_terminal_current[r] =
          (bias.rows[r]->value() - v[row_node(r, 0)]) * g_drv;
  for (std::size_t c = 0; c < n; ++c)
    if (bias.cols[c])
      sol.col_terminal_current[c] =
          (bias.cols[c]->value() - v[col_node(0, c)]) * g_drv;
  xbar_metrics().solves.add(1);
  xbar_metrics().sweeps.add(sol.nonlinear_iterations);
  return sol;
}

CrossbarSolution CrossbarArray::apply_pulse(const LineBias& bias, Time dt) {
  static telemetry::SpanSite span_site("crossbar.apply_pulse");
  telemetry::Span span(span_site);
  CrossbarSolution sol = solve(bias);
  const std::size_t count = rows() * cols();
  // Device state advancement is embarrassingly parallel: each junction
  // integrates its own state under its solved voltage.
  parallel_for_chunks(0, count, kDeviceGrain,
                      [&](std::size_t lo, std::size_t hi) {
                        for (std::size_t j = lo; j < hi; ++j)
                          devices_[j]->apply(Voltage(sol.device_voltage[j]),
                                             dt);
                      });
  xbar_metrics().pulses.add(1);
  if (telemetry::enabled()) {
    // Per-array energy surfaced through the registry; last-writer-wins
    // across arrays is fine for a gauge, exact sums come from the
    // attojoule counters on the device layer.
    static telemetry::Gauge& energy =
        telemetry::Registry::global().gauge("crossbar.array_energy_j");
    energy.set(total_device_energy().value());
  }
  return sol;
}

Energy CrossbarArray::total_device_energy() const {
  Energy total{0.0};
  for (const auto& d : devices_) total += d->energy_dissipated();
  return total;
}

}  // namespace memcim
