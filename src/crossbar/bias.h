// Bias schemes for crossbar access — the third class of sneak-path
// mitigation the paper lists in Section IV.B ("Bias schemes, where the
// voltage bias applied to non-accessed wordlines and bitlines are set
// to values different from those applied to accessed wordline and
// bitlines in order to minimize the sneak path current").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/units.h"

namespace memcim {

enum class BiasScheme {
  kFloating,  ///< unaccessed lines left floating (cheapest drivers,
              ///< worst sneak currents — the Figure 3 "passive" case)
  kGrounded,  ///< unaccessed lines at 0 V: sneak-free sensing, but the
              ///< selected row burns current through its whole row
  kVHalf,     ///< unaccessed rows & columns at V/2: unselected cells see
              ///< 0 V, half-selected see V/2
  kVThird,    ///< unaccessed rows at V/3, unaccessed columns at 2V/3:
              ///< every unselected cell sees ±V/3
};

[[nodiscard]] const char* to_string(BiasScheme s);

/// Per-line bias assignment: a driven voltage or floating (nullopt).
struct LineBias {
  std::vector<std::optional<Voltage>> rows;
  std::vector<std::optional<Voltage>> cols;
};

/// Build the line-bias pattern for accessing cell (row, col) with
/// amplitude `v_access` under `scheme`.  The selected column is driven
/// to 0 V (the sense/ground side); the selected row to `v_access`.
[[nodiscard]] LineBias access_bias(std::size_t rows, std::size_t cols,
                                   std::size_t row, std::size_t col,
                                   Voltage v_access, BiasScheme scheme);

}  // namespace memcim
