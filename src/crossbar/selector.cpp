#include "crossbar/selector.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace memcim {

SelectorIv diode_selector(Current saturation, Voltage thermal, double ideality) {
  MEMCIM_CHECK(saturation.value() > 0.0 && thermal.value() > 0.0 &&
               ideality >= 1.0);
  const double is = saturation.value();
  const double nvt = ideality * thermal.value();
  return SelectorIv{
      .current =
          [is, nvt](Voltage v) {
            // Clamp the exponent so pathological solver probes can't
            // overflow; 60·nVt is far above any array bias.
            const double e = std::min(v.value() / nvt, 60.0);
            return Current(is * (std::exp(e) - 1.0));
          },
      .name = "diode",
  };
}

SelectorIv nonlinear_selector(Conductance g_on, Voltage v0) {
  MEMCIM_CHECK(g_on.value() > 0.0 && v0.value() > 0.0);
  const double g = g_on.value();
  const double vv0 = v0.value();
  return SelectorIv{
      .current =
          [g, vv0](Voltage v) {
            const double e = std::clamp(v.value() / vv0, -60.0, 60.0);
            return Current(g * vv0 * std::sinh(e));
          },
      .name = "nonlinear",
  };
}

namespace {

/// Solve the internal node of a series stack: find the base-device
/// share v_d with f(v_d) = I_base(v_d) − I_series(v − v_d) = 0, where f
/// is strictly increasing.  ~60 bisection steps give < 1e-18 V error.
Voltage solve_series_split(const Device& base,
                           const std::function<Current(Voltage)>& series_iv,
                           Voltage v) {
  double lo = std::min(0.0, v.value());
  double hi = std::max(0.0, v.value());
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double f = base.current(Voltage(mid)).value() -
                     series_iv(Voltage(v.value() - mid)).value();
    if (f <= 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return Voltage(0.5 * (lo + hi));
}

}  // namespace

// ---------------------------------------------------------------------------
// SelectorDevice
// ---------------------------------------------------------------------------

SelectorDevice::SelectorDevice(std::unique_ptr<Device> base, SelectorIv selector)
    : base_(std::move(base)), selector_(std::move(selector)) {
  MEMCIM_CHECK(base_ != nullptr && selector_.current != nullptr);
}

SelectorDevice::SelectorDevice(const SelectorDevice& other)
    : Device(other), base_(other.base_->clone()), selector_(other.selector_) {}

SelectorDevice& SelectorDevice::operator=(const SelectorDevice& other) {
  if (this != &other) {
    Device::operator=(other);
    base_ = other.base_->clone();
    selector_ = other.selector_;
  }
  return *this;
}

Voltage SelectorDevice::device_share(Voltage v) const {
  return solve_series_split(*base_, selector_.current, v);
}

Current SelectorDevice::current(Voltage v) const {
  return base_->current(device_share(v));
}

void SelectorDevice::apply(Voltage v, Time dt) {
  const Voltage vd = device_share(v);
  const Current i = base_->current(vd);
  const double x_before = base_->state();
  base_->apply(vd, dt);
  record_step(v, i, dt, x_before, base_->state());
}

std::unique_ptr<Device> SelectorDevice::clone() const {
  return std::make_unique<SelectorDevice>(*this);
}

// ---------------------------------------------------------------------------
// TransistorDevice
// ---------------------------------------------------------------------------

TransistorDevice::TransistorDevice(std::unique_ptr<Device> base, Resistance r_on,
                                   Resistance r_off)
    : base_(std::move(base)), r_on_(r_on), r_off_(r_off) {
  MEMCIM_CHECK(base_ != nullptr);
  MEMCIM_CHECK(r_on.value() > 0.0 && r_off.value() > r_on.value());
}

TransistorDevice::TransistorDevice(const TransistorDevice& other)
    : Device(other),
      base_(other.base_->clone()),
      r_on_(other.r_on_),
      r_off_(other.r_off_),
      enabled_(other.enabled_) {}

TransistorDevice& TransistorDevice::operator=(const TransistorDevice& other) {
  if (this != &other) {
    Device::operator=(other);
    base_ = other.base_->clone();
    r_on_ = other.r_on_;
    r_off_ = other.r_off_;
    enabled_ = other.enabled_;
  }
  return *this;
}

Current TransistorDevice::current(Voltage v) const {
  const Resistance rs = series_resistance();
  const auto channel_iv = [rs](Voltage vc) { return vc / rs; };
  const Voltage vd = solve_series_split(*base_, channel_iv, v);
  return base_->current(vd);
}

void TransistorDevice::apply(Voltage v, Time dt) {
  const Resistance rs = series_resistance();
  const auto channel_iv = [rs](Voltage vc) { return vc / rs; };
  const Voltage vd = solve_series_split(*base_, channel_iv, v);
  const Current i = base_->current(vd);
  const double x_before = base_->state();
  base_->apply(vd, dt);
  record_step(v, i, dt, x_before, base_->state());
}

std::unique_ptr<Device> TransistorDevice::clone() const {
  return std::make_unique<TransistorDevice>(*this);
}

}  // namespace memcim
